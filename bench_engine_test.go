package ssa

// Serving-engine benchmarks: the throughput/latency view of the
// system the ROADMAP's north star asks for, complementing the
// per-auction Figure 12/13 reproductions in bench_test.go.
//
//	go test -bench=Engine -benchmem
//
// BenchmarkEngineThroughput sweeps shard counts on the Section V
// workload (n = 1000 advertisers, 15 slots, 10 keywords, method RH);
// the reported qps metric is end-to-end engine throughput including
// routing and channel hand-off. On a multicore host the GOMAXPROCS
// row must beat workers=1 by ≥2×; on a single-core host the sweep
// degenerates (GOMAXPROCS = 1) and only measures queuing overhead.
//
// BenchmarkMarketSteadyStateRH isolates one shard's hot path — the
// full auction pipeline under the reduced Hungarian method — and
// proves it allocation-free in steady state (0 allocs/op with
// -benchmem). BenchmarkMarketSteadyStateTALU is the same measurement
// under the Section IV threshold-algorithm + logical-updates path,
// also allocation-free; its per-auction work scales with winners and
// due triggers rather than n, so it must beat RH at large n (the
// acceptance bar recorded in BENCH_ENGINE.json).

import (
	"fmt"
	"runtime"
	"testing"
)

// benchShardCounts returns the shard sweep: 1, 2, 4, … capped at
// GOMAXPROCS, always including GOMAXPROCS itself.
func benchShardCounts() []int {
	maxp := runtime.GOMAXPROCS(0)
	var out []int
	for p := 1; p < maxp; p *= 2 {
		out = append(out, p)
	}
	return append(out, maxp)
}

func BenchmarkEngineThroughput(b *testing.B) {
	benchEngineThroughput(b, SimRH)
}

// BenchmarkEngineThroughputTALU is the shard sweep with the Section IV
// method on the serving path: every keyword market maintains its
// logical-update lists and trigger queues, and per-slot winners come
// from the threshold algorithm.
func BenchmarkEngineThroughputTALU(b *testing.B) {
	benchEngineThroughput(b, SimRHTALU)
}

func benchEngineThroughput(b *testing.B, method SimMethod) {
	const n, warmup = 1000, 2000
	inst := GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
	for _, shards := range benchShardCounts() {
		b.Run(fmt.Sprintf("n=%d/workers=%d", n, shards), func(b *testing.B) {
			e := NewEngine(inst, EngineConfig{Shards: shards, Method: method, ClickSeed: 7})
			e.Serve(QueryStream(inst, 9, warmup))
			queries := QueryStream(inst, 11, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			st := e.Serve(queries)
			b.StopTimer()
			b.ReportMetric(st.Throughput, "qps")
			b.ReportMetric(float64(st.P99.Nanoseconds()), "p99-ns")
		})
	}
}

// BenchmarkMarketSteadyStateRH measures one sequential market's
// steady-state auction under MethodRH — the allocation-free serving
// hot path (winner determination + GSP pricing + accounting). The
// allocs/op column is the guarantee TestMarketSteadyStateAllocs pins.
func BenchmarkMarketSteadyStateRH(b *testing.B) {
	benchMarketSteadyState(b, SimRH)
}

// BenchmarkMarketSteadyStateTALU measures one sequential market's
// steady-state auction under MethodRHTALU: trigger firings, O(1)
// logical updates, per-slot threshold algorithm, workspace winner
// determination, GSP pricing, and the winners' recomputes — zero
// allocations (TestTALUSteadyStateAllocs), and per-auction time that
// grows with winners and due triggers rather than n, which is why its
// large-n rows must undercut BenchmarkMarketSteadyStateRH.
func BenchmarkMarketSteadyStateTALU(b *testing.B) {
	benchMarketSteadyState(b, SimRHTALU)
}

func benchMarketSteadyState(b *testing.B, method SimMethod) {
	for _, n := range []int{500, 1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
			w := NewSimWorld(inst, method, 7)
			const warmup = 2000
			queries := QueryStream(inst, 9, warmup+b.N)
			for _, q := range queries[:warmup] {
				w.Run(q)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(queries[warmup+i])
			}
		})
	}
}
