package ssa

// Serving-engine benchmarks: the throughput/latency view of the
// system the ROADMAP's north star asks for, complementing the
// per-auction Figure 12/13 reproductions in bench_test.go.
//
//	go test -bench=Engine -benchmem
//
// BenchmarkEngineThroughput sweeps shard counts on the Section V
// workload (n = 1000 advertisers, 15 slots, 10 keywords, method RH);
// the reported qps metric is end-to-end engine throughput including
// routing and channel hand-off. On a multicore host the GOMAXPROCS
// row must beat workers=1 by ≥2×; on a single-core host the sweep
// degenerates (GOMAXPROCS = 1) and only measures queuing overhead.
//
// BenchmarkMarketSteadyStateRH isolates one shard's hot path — the
// full auction pipeline under the reduced Hungarian method — and
// proves it allocation-free in steady state (0 allocs/op with
// -benchmem). BenchmarkMarketSteadyStateTALU is the same measurement
// under the Section IV threshold-algorithm + logical-updates path,
// also allocation-free; its per-auction work scales with winners and
// due triggers rather than n, so it must beat RH at large n (the
// acceptance bar recorded in BENCH_ENGINE.json).
//
// BenchmarkMarketSteadyStateHeavy, …HeavyParallel, …VCG, and
// …HeavyVCG extend the same allocation-free steady-state measurement
// to the Section III-F heavyweight path (sequential and worker-pool
// pattern enumeration) and to Vickrey pricing; all the families feed
// the CI allocation-regression gate, which fails if any steady-state
// row reports a nonzero allocs/op.

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkStreamSteadyState measures the open-world serving path end
// to end: Submit admission, the bounded-channel hand-off, the
// persistent shard worker's auction (engine.ServeOne under MethodRH),
// and the rolling-window stats bookkeeping. Like the market rows it
// must report 0 allocs/op in steady state — the streaming layer adds
// no per-query garbage on top of the allocation-free auction — and it
// feeds the same CI allocation-regression gate. The qps metric is
// end-to-end streamed throughput over the timed run.
func BenchmarkStreamSteadyState(b *testing.B) {
	const n, warmup = 1000, 2000
	inst := GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
	s := NewStreamServer(inst, StreamConfig{
		Engine: EngineConfig{Shards: 0, QueueDepth: 256, Method: SimRH, ClickSeed: 7},
	})
	queries := QueryStream(inst, 9, warmup+b.N)
	for _, q := range queries[:warmup] {
		s.Submit(q)
	}
	// Quiesce so warmup auctions don't bleed into the timed window.
	for s.Stats().Pending > 0 {
		runtime.Gosched()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(queries[warmup+i])
	}
	// Stop before Close: the timed region and its alloc accounting
	// cover only the steady-state Submit→serve path (backpressure
	// paces submissions to serving), not the one-off drain and final
	// stats flush — so the 0 allocs/op gate holds at any -benchtime.
	b.StopTimer()
	st := s.Close()
	if got := int(st.Served); got != warmup+b.N {
		b.Fatalf("served %d of %d", got, warmup+b.N)
	}
	// WindowThroughput covers the most recent rolling window — the
	// steady-state figure, uncontaminated by warmup and quiesce time.
	b.ReportMetric(st.WindowThroughput, "qps")
	b.ReportMetric(float64(st.P99.Nanoseconds()), "p99-ns")
}

// BenchmarkBroadmatchSteadyState measures the broad-match serving
// path end to end: SubmitText admission, allocation-free kwmatch
// scoring in the router, the seeded match draw, the bounded-channel
// hand-off, and the weighted reserve-priced auction in the winning
// shard. Like every steady-state row it must report 0 allocs/op —
// broad match adds no per-query garbage on top of the exact path —
// and it feeds the CI allocation-regression gate under both methods.
func BenchmarkBroadmatchSteadyState(b *testing.B) {
	b.Run("rh", func(b *testing.B) { benchBroadmatchSteadyState(b, SimRH) })
	b.Run("talu", func(b *testing.B) { benchBroadmatchSteadyState(b, SimRHTALU) })
}

func benchBroadmatchSteadyState(b *testing.B, method SimMethod) {
	const n, warmup = 1000, 2000
	inst := GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
	names := BigramKeywordNames(DefaultKeywords)
	s := NewStreamServer(inst, StreamConfig{
		Engine: EngineConfig{
			Shards: 0, QueueDepth: 256, Method: method, ClickSeed: 7,
			KeywordNames: names,
			Broadmatch:   BroadmatchConfig{Enabled: true, Threshold: 0.4, Squash: 0.5, Seed: 11},
			Reserve:      10,
		},
	})
	texts := TextQueries(9, DefaultKeywords, warmup+b.N, 3, 1.2)
	for _, q := range texts[:warmup] {
		s.SubmitText(q)
	}
	for s.Stats().Pending > 0 {
		runtime.Gosched()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SubmitText(texts[warmup+i])
	}
	b.StopTimer()
	st := s.Close()
	// Under broad match a submission may be unrouted or overmatched, so
	// the drain check is the accounting identity, not Served == N.
	if st.Submitted != st.Served+st.Shed+st.Unrouted+st.Overmatched {
		b.Fatalf("identity: %+v", st)
	}
	if st.Submitted != int64(warmup+b.N)+st.Overmatched {
		b.Fatalf("submitted %d of %d (+%d overmatched)", st.Submitted, warmup+b.N, st.Overmatched)
	}
	b.ReportMetric(st.WindowThroughput, "qps")
	b.ReportMetric(float64(st.P99.Nanoseconds()), "p99-ns")
}

// benchShardCounts returns the shard sweep: 1, 2, 4, … capped at
// GOMAXPROCS, always including GOMAXPROCS itself.
func benchShardCounts() []int {
	maxp := runtime.GOMAXPROCS(0)
	var out []int
	for p := 1; p < maxp; p *= 2 {
		out = append(out, p)
	}
	return append(out, maxp)
}

func BenchmarkEngineThroughput(b *testing.B) {
	benchEngineThroughput(b, SimRH)
}

// BenchmarkEngineThroughputTALU is the shard sweep with the Section IV
// method on the serving path: every keyword market maintains its
// logical-update lists and trigger queues, and per-slot winners come
// from the threshold algorithm.
func BenchmarkEngineThroughputTALU(b *testing.B) {
	benchEngineThroughput(b, SimRHTALU)
}

func benchEngineThroughput(b *testing.B, method SimMethod) {
	const n, warmup = 1000, 2000
	inst := GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
	for _, shards := range benchShardCounts() {
		b.Run(fmt.Sprintf("n=%d/workers=%d", n, shards), func(b *testing.B) {
			e := NewEngine(inst, EngineConfig{Shards: shards, Method: method, ClickSeed: 7})
			e.Serve(QueryStream(inst, 9, warmup))
			queries := QueryStream(inst, 11, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			st := e.Serve(queries)
			b.StopTimer()
			b.ReportMetric(st.Throughput, "qps")
			b.ReportMetric(float64(st.P99.Nanoseconds()), "p99-ns")
		})
	}
}

// BenchmarkMarketSteadyStateRH measures one sequential market's
// steady-state auction under MethodRH — the allocation-free serving
// hot path (winner determination + GSP pricing + accounting). The
// allocs/op column is the guarantee TestMarketSteadyStateAllocs pins.
func BenchmarkMarketSteadyStateRH(b *testing.B) {
	benchMarketSteadyState(b, SimRH)
}

// BenchmarkMarketSteadyStateTALU measures one sequential market's
// steady-state auction under MethodRHTALU: trigger firings, O(1)
// logical updates, per-slot threshold algorithm, workspace winner
// determination, GSP pricing, and the winners' recomputes — zero
// allocations (TestTALUSteadyStateAllocs), and per-auction time that
// grows with winners and due triggers rather than n, which is why its
// large-n rows must undercut BenchmarkMarketSteadyStateRH.
func BenchmarkMarketSteadyStateTALU(b *testing.B) {
	benchMarketSteadyState(b, SimRHTALU)
}

func benchMarketSteadyState(b *testing.B, method SimMethod) {
	for _, n := range []int{500, 1000, 5000} {
		benchMarketSteadyStateCfg(b, fmt.Sprintf("n=%d", n), func() *SimInstance {
			return GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
		}, method, PricingGSP, 2000)
	}
}

func benchMarketSteadyStateCfg(b *testing.B, name string, gen func() *SimInstance, method SimMethod, pricing SimPricing, warmup int) {
	b.Run(name, func(b *testing.B) {
		inst := gen()
		w := NewSimWorldPriced(inst, method, pricing, 7)
		queries := QueryStream(inst, 9, warmup+b.N)
		for _, q := range queries[:warmup] {
			w.Run(q)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Run(queries[warmup+i])
		}
	})
}

// BenchmarkMarketSteadyStateHeavy measures the Section III-F serving
// path: explicit bid updates, the full 2^k heavyweight pattern
// enumeration in the market's reused HeavyDeterminer, and
// pattern-conditional GSP pricing — zero allocations in steady state
// (TestHeavySteadyStateAllocs). The enumeration is exponential in k
// (the paper's O(n log k + k⁵) bound assumes 2^k processing units),
// but each pattern's sub-matchings now run over the top-(k+1)
// candidates per slot instead of the full advertiser set, so the
// per-pattern solve is O(k³) after an O(n·k) scan and the Section V
// n=5000 row is servable rather than aspirational.
func BenchmarkMarketSteadyStateHeavy(b *testing.B) {
	for _, n := range []int{150, 400, 5000} {
		benchMarketSteadyStateCfg(b, fmt.Sprintf("n=%d", n), func() *SimInstance {
			return GenerateHeavyInstance(42, n, 5, DefaultKeywords, 0.2, 0.3)
		}, SimHeavy, PricingGSP, 300)
	}
}

// BenchmarkMarketSteadyStateHeavyParallel is the same Section III-F
// steady state with the market's determiner in worker-pool mode
// (EngineConfig.HeavyParallelism): par=1 is the sequential baseline,
// par=4 claims the 2^k patterns across four persistent workers with
// per-worker preallocated solvers. Results are bit-identical to the
// sequential row by the deterministic (revenue, lowest pattern)
// reduction, and both rows must stay at 0 allocs/op — wakeups,
// pattern claims, and the local-best merge all run on preallocated
// state. The par=4 row only demonstrates speedup on a host with ≥4
// cores (CI's bench-multicore job); on fewer cores it measures
// oversubscribed scheduling overhead instead.
func BenchmarkMarketSteadyStateHeavyParallel(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			const n, warmup = 2000, 200
			inst := GenerateHeavyInstance(42, n, 5, DefaultKeywords, 0.2, 0.3)
			w := NewSimWorldOpts(inst, SimWorldOpts{
				Method: SimHeavy, Pricing: PricingGSP, ClickSeed: 7, HeavyParallelism: par,
			})
			queries := QueryStream(inst, 9, warmup+b.N)
			for _, q := range queries[:warmup] {
				w.Run(q)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(queries[warmup+i])
			}
		})
	}
}

// BenchmarkMarketSteadyStateVCG measures MethodRH with Vickrey
// pricing: the main reduced solve plus one counterfactual reduced
// solve per winner, all in reused workspaces — still zero allocations
// in steady state (TestVCGSteadyStateAllocs). Per-auction cost is
// roughly (winners+1)× the GSP row, the price of exact
// opportunity-cost pricing on the serving path.
func BenchmarkMarketSteadyStateVCG(b *testing.B) {
	for _, n := range []int{500, 1000} {
		benchMarketSteadyStateCfg(b, fmt.Sprintf("n=%d", n), func() *SimInstance {
			return GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
		}, SimRH, PricingVCG, 500)
	}
}

// BenchmarkMarketSteadyStateHeavyVCG is the engine's most expressive
// configuration — heavyweight winner determination and Vickrey
// pricing, one counterfactual 2^k enumeration per winner — also
// allocation-free once warm (TestHeavyVCGSteadyStateAllocs).
func BenchmarkMarketSteadyStateHeavyVCG(b *testing.B) {
	benchMarketSteadyStateCfg(b, "n=150", func() *SimInstance {
		return GenerateHeavyInstance(42, 150, 4, DefaultKeywords, 0.2, 0.3)
	}, SimHeavy, PricingVCG, 200)
}

// BenchmarkMarketSteadyStateBudget measures the budget-enabled hot
// path on both serving engines: cross-keyword Hard enforcement over a
// population whose caps bind mid-run, so the steady state mixes gate
// consults, denials, spend charges, and periodic ledger publishes on
// top of the normal auction pipeline. Both rows must stay at 0
// allocs/op (TestBudgetSteadyStateAllocs pins the same guarantee per
// policy); the ns/op delta against the unbudgeted RH/TALU rows is the
// whole cost of enforcement.
func BenchmarkMarketSteadyStateBudget(b *testing.B) {
	for _, sub := range []struct {
		name   string
		method SimMethod
	}{
		{"rh-n=1000", SimRH},
		{"talu-n=1000", SimRHTALU},
	} {
		b.Run(sub.name, func(b *testing.B) {
			const n, warmup = 1000, 2000
			inst := GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
			AttachBudgets(43, inst, 1000)
			w := NewSimWorldBudget(inst, sub.method, PricingGSP, 7,
				BudgetConfig{Policy: PolicyHard, RefreshEvery: 64})
			queries := QueryStream(inst, 9, warmup+b.N)
			for _, q := range queries[:warmup] {
				w.Run(q)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(queries[warmup+i])
			}
		})
	}
}

// BenchmarkMarketSteadyStateBudgetJournal is the budgeted steady
// state with the durable spend journal attached: every charge also
// lands in the lane's preallocated batch buffer, and each ledger
// publish flushes a checksummed record through the writer's reused
// encode buffer. Durability must be allocation-free too — both rows
// stay at 0 allocs/op — and the ns/op delta against the plain Budget
// rows is the whole cost of crash safety at FsyncNever.
func BenchmarkMarketSteadyStateBudgetJournal(b *testing.B) {
	for _, sub := range []struct {
		name   string
		method SimMethod
	}{
		{"rh-n=1000", SimRH},
		{"talu-n=1000", SimRHTALU},
	} {
		b.Run(sub.name, func(b *testing.B) {
			const n, warmup = 1000, 2000
			inst := GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
			AttachBudgets(43, inst, 1000)
			w := NewSimWorldBudget(inst, sub.method, PricingGSP, 7,
				BudgetConfig{Policy: PolicyHard, RefreshEvery: 64})
			jw, err := OpenSpendJournal(b.TempDir(), SpendJournalOptions{SnapshotEvery: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			defer jw.Close()
			if err := w.BudgetLane().Ledger().AttachJournal(jw); err != nil {
				b.Fatal(err)
			}
			queries := QueryStream(inst, 9, warmup+b.N)
			for _, q := range queries[:warmup] {
				w.Run(q)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(queries[warmup+i])
			}
		})
	}
}
