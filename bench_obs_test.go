package ssa

// Telemetry benchmarks: the observability subsystem's two promises,
// measured. BenchmarkObsSteadyStateTraced re-runs the streaming
// steady-state measurement with the full instrument set hot — shard
// counters, the revenue float cell, the latency histogram, and a live
// 1-in-8 trace sampler stamping lifecycle timestamps into the ring —
// and must still report 0 allocs/op: turning telemetry on cannot add
// per-query garbage. BenchmarkObsSteadyStateRender scrapes a live
// serving stack's registry (counters, lanes, gauges reading engine
// internals, histogram buckets) into the reused exposition buffer,
// also 0 allocs/op — a Prometheus scrape never pressures the
// collector the metrics exist to observe. Both rows feed the CI
// allocation-regression gate.
//
//	go test -bench=ObsSteadyState -benchmem

import (
	"runtime"
	"testing"
)

func BenchmarkObsSteadyStateTraced(b *testing.B) {
	const n, warmup = 1000, 2000
	inst := GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
	s := NewStreamServer(inst, StreamConfig{
		Engine: EngineConfig{
			Shards: 0, QueueDepth: 256, Method: SimRH, ClickSeed: 7,
			TraceSample: 8,
		},
	})
	queries := QueryStream(inst, 9, warmup+b.N)
	for _, q := range queries[:warmup] {
		s.Submit(q)
	}
	for s.Stats().Pending > 0 {
		runtime.Gosched()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(queries[warmup+i])
	}
	b.StopTimer()
	st := s.Close()
	if got := int(st.Served); got != warmup+b.N {
		b.Fatalf("served %d of %d", got, warmup+b.N)
	}
	ring := s.Engine().TraceRing()
	if ring == nil || ring.Total() == 0 {
		b.Fatal("trace sampler recorded nothing")
	}
	b.ReportMetric(st.WindowThroughput, "qps")
	b.ReportMetric(float64(st.P99.Nanoseconds()), "p99-ns")
}

func BenchmarkObsSteadyStateRender(b *testing.B) {
	inst := GenerateInstance(42, 1000, DefaultSlots, DefaultKeywords)
	s := NewStreamServer(inst, StreamConfig{
		Engine: EngineConfig{Shards: 0, QueueDepth: 256, Method: SimRH, ClickSeed: 7},
	})
	defer s.Close()
	for _, q := range QueryStream(inst, 9, 2000) {
		s.Submit(q)
	}
	reg := s.Engine().Metrics().Registry
	var bytes int
	reg.Render() // warm the exposition buffer to its final size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bytes = len(reg.Render())
	}
	b.StopTimer()
	b.ReportMetric(float64(bytes), "bytes")
}
