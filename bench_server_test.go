package ssa

// Networked-tier benchmarks: the same steady-state measurement as
// BenchmarkStreamSteadyState, but through the full loopback socket
// path — client encode, TCP write, server frame decode, connection
// window, shard queue, auction, outcome encode on the shard
// goroutine, TCP write back, client decode and copy-out. Both method
// rows must report 0 allocs/op (the measurement is process-wide, so
// it covers server-side goroutines too); they feed the same CI
// allocation-regression gate as the market and stream rows. The qps
// metric is end-to-end networked throughput for one synchronous
// client; p99-ns is the server-side service-time percentile.
//
//	go test -bench=ServerSteadyState -benchmem

import (
	"math/rand"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/wire"
	"repro/internal/workload"
)

func benchServerSteadyState(b *testing.B, method engine.Method) {
	const n, warmup = 1000, 2000
	inst := workload.Generate(rand.New(rand.NewSource(42)), n, DefaultSlots, DefaultKeywords)
	s, err := server.Listen("127.0.0.1:0", inst, server.Config{Stream: stream.Config{
		Engine: engine.Config{Shards: 0, QueueDepth: 256, Method: method, ClickSeed: 7},
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := client.Dial(s.Addr(), client.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(9))
	var out wire.Outcome
	for i := 0; i < warmup; i++ {
		if err := c.AuctionInto(rng.Intn(inst.Keywords), &out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.AuctionInto(rng.Intn(inst.Keywords), &out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Close()
	if got := int(st.Served); got != warmup+b.N {
		b.Fatalf("served %d of %d", got, warmup+b.N)
	}
	sub, served, shed, rejected := int64(0), int64(0), int64(0), int64(0)
	sub, served, shed, rejected, _ = s.Counters()
	if sub != served+shed+rejected || served != int64(warmup+b.N) {
		b.Fatalf("identity: submitted=%d served=%d shed=%d rejected=%d", sub, served, shed, rejected)
	}
	b.ReportMetric(st.WindowThroughput, "qps")
	b.ReportMetric(float64(st.P99.Nanoseconds()), "p99-ns")
}

func BenchmarkServerSteadyState(b *testing.B) {
	b.Run("rh", func(b *testing.B) { benchServerSteadyState(b, engine.MethodRH) })
	b.Run("talu", func(b *testing.B) { benchServerSteadyState(b, engine.MethodRHTALU) })
}
