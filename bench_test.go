package ssa

// Benchmarks regenerating the paper's evaluation (Section V).
//
// Figure 12 — winner-determination performance: average time per
// auction for LP, H, RH, and RHTALU as the number of advertisers
// grows, with k = 15 slots and 10 keywords, every bidder running the
// ROI-equalizing heuristic, and a generalized second-price rule
// charging clicks. The paper sweeps n to 5000; LP is capped at
// n = 500 here because our from-scratch dense simplex is far slower
// than GLPK (see DESIGN.md "Substitutions") — the ordering
// LP ≫ H ≫ RH is what matters and is visible well before that.
//
// Figure 13 — reducing program evaluation: RH vs RHTALU out to
// n = 20000; RH grows linearly in n (every program is evaluated every
// auction), RHTALU stays near-flat (threshold algorithm + logical
// updates, Section IV).
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=Fig13 -benchmem
//
// The cmd/experiments binary produces the same sweeps as aligned
// tables (and drives EXPERIMENTS.md).

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/lp"
	"repro/internal/matching"
	"repro/internal/probmodel"
	"repro/internal/topk"
)

// Warmup before timing so the market is in a mixed steady state: the
// initial wave — every bidder climbing from value/2 toward his
// maximum — has passed, winners and losers coexist, and both spending
// statuses occur. (The cmd/experiments harness instead reproduces the
// paper's exact cold-start protocol: the average over the first 100
// or 1000 auctions of a fresh market.) LP and H worlds get short
// warmups: each of their warmup auctions pays the same full
// per-auction cost as a timed one, and that cost is insensitive to
// market state.
const (
	warmupAuctions     = 2000
	warmupAuctionsLP   = 16
	warmupAuctionsFull = 128
)

func benchWorld(b *testing.B, n int, method SimMethod) {
	b.Helper()
	warmup := warmupAuctions
	switch method {
	case SimLP:
		warmup = warmupAuctionsLP
	case SimH:
		warmup = warmupAuctionsFull
	}
	inst := GenerateInstance(42, n, DefaultSlots, DefaultKeywords)
	w := NewSimWorld(inst, method, 7)
	queries := QueryStream(inst, 9, warmup+b.N)
	for _, q := range queries[:warmup] {
		w.RunAuction(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunAuction(queries[warmup+i])
	}
}

// BenchmarkFig12 regenerates Figure 12's four curves. Reported value
// = time per auction.
func BenchmarkFig12(b *testing.B) {
	type curve struct {
		method SimMethod
		sizes  []int
	}
	curves := []curve{
		{SimLP, []int{100, 250, 500}}, // capped; see file comment
		{SimH, []int{500, 1000, 2000, 3500, 5000}},
		{SimRH, []int{500, 1000, 2000, 3500, 5000}},
		{SimRHTALU, []int{500, 1000, 2000, 3500, 5000}},
	}
	for _, c := range curves {
		for _, n := range c.sizes {
			b.Run(fmt.Sprintf("method=%v/n=%d", c.method, n), func(b *testing.B) {
				benchWorld(b, n, c.method)
			})
		}
	}
}

// BenchmarkFig13 regenerates Figure 13: RH vs RHTALU at large n.
func BenchmarkFig13(b *testing.B) {
	sizes := []int{2000, 5000, 10000, 15000, 20000}
	for _, method := range []SimMethod{SimRH, SimRHTALU} {
		for _, n := range sizes {
			b.Run(fmt.Sprintf("method=%v/n=%d", method, n), func(b *testing.B) {
				benchWorld(b, n, method)
			})
		}
	}
}

// BenchmarkAblationSeparable contrasts the platforms' O(n log k)
// sort-based allocation with the Hungarian matching it replaces —
// valid only because the instance is separable (Section III-C).
func BenchmarkAblationSeparable(b *testing.B) {
	const n, k = 5000, 15
	adv := make([]float64, n)
	slot := make([]float64, k)
	for i := range adv {
		adv[i] = float64(i%97) + 1
	}
	for j := range slot {
		slot[j] = 1 / float64(j+2)
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, k)
		for j := range w[i] {
			w[i][j] = adv[i] * slot[j]
		}
	}
	b.Run("separable-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.Separable(adv, slot)
		}
	})
	b.Run("hungarian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.MaxWeight(w)
		}
	})
	b.Run("reduced-hungarian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.MaxWeightReduced(w)
		}
	})
}

// BenchmarkAblationParallelTopK measures the Section III-E
// aggregation tree: per-slot top-k with 1 worker vs GOMAXPROCS
// workers.
func BenchmarkAblationParallelTopK(b *testing.B) {
	const n, k = 200000, 15
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = make([]float64, k)
		for j := range scores[i] {
			scores[i][j] = float64((i*31+j*17)%10007) / 10007
		}
	}
	score := func(i, j int) float64 { return scores[i][j] }
	for _, p := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topk.ParallelSelect(n, k, p, score)
			}
		})
	}
}

// BenchmarkAblationHeavyweight measures the Section III-F 2^k pattern
// enumeration, serial vs parallel, at k = 8 (256 patterns).
func BenchmarkAblationHeavyweight(b *testing.B) {
	const n, k = 400, 8
	base := probmodel.New(n, k)
	h := &HeavyAuction{Slots: k, Model: &probmodel.HeavyModel{
		Base:   base,
		Factor: probmodel.ShadowFactors(k, 0.25),
	}}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			base.Click[i][j] = float64((i*13+j*7)%89+1) / 100
		}
		h.Advertisers = append(h.Advertisers, Advertiser{
			ID:    fmt.Sprintf("a%d", i),
			Bids:  MustParseBids("Click : 5\nSlot1 AND NOT Heavy2 : 3"),
			Heavy: i%5 == 0,
		})
	}
	for _, parallel := range []bool{false, true} {
		b.Run(fmt.Sprintf("parallel=%v", parallel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.Determine(parallel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelHungarian isolates the matching solvers from the
// simulation (pure winner-determination cost on a fixed matrix).
func BenchmarkKernelHungarian(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		const k = 15
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, k)
			for j := range w[i] {
				w[i][j] = float64((i*131+j*37)%9973) / 100
			}
		}
		b.Run(fmt.Sprintf("H/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matching.MaxWeight(w)
			}
		})
		b.Run(fmt.Sprintf("RH/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matching.MaxWeightReduced(w)
			}
		})
	}
}

// BenchmarkKernelLP isolates the simplex solver on assignment LPs.
func BenchmarkKernelLP(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		const k = 15
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, k)
			for j := range w[i] {
				w[i][j] = float64((i*131+j*37)%9973) / 100
			}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lp.SolveAssignment(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAuctionAlgorithm compares the three assignment
// solvers on one reduced-size problem (k² candidates, the RH tail)
// and one full-size problem: Bertsekas's auction algorithm vs the
// Hungarian kernel, with the LP at the reduced size for scale.
func BenchmarkAblationAuctionAlgorithm(b *testing.B) {
	const k = 15
	for _, n := range []int{225, 5000} {
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, k)
			for j := range w[i] {
				w[i][j] = float64((i*53 + j*29) % 101) // integer weights: exact
			}
		}
		weight := func(i, j int) float64 { return w[i][j] }
		b.Run(fmt.Sprintf("auction/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matching.AuctionAssign(n, k, weight, 0)
			}
		})
		b.Run(fmt.Sprintf("hungarian/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matching.MaxWeight(w)
			}
		})
	}
}
