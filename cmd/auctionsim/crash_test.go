package main

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/stream"
	"repro/internal/workload"
)

// The crash test re-execs this test binary as a child serving a
// budgeted stream into a journal, SIGKILLs it mid-traffic, and
// recovers. Parent and child share these parameters: the population
// is regenerated deterministically on both sides, exactly as a real
// operator restart regenerates it from the same flags.
const (
	crashChildEnv = "AUCTIONSIM_CRASH_CHILD"
	crashN        = 60
	crashKeywords = 6
	crashRefresh  = 8
)

func crashInstance() *workload.Instance {
	inst := workload.Generate(rand.New(rand.NewSource(501)), crashN, 4, crashKeywords)
	workload.AttachBudgets(rand.New(rand.NewSource(502)), inst, 50)
	return inst
}

func crashBudgetConfig() budget.Config {
	return budget.Config{Policy: budget.PolicyHard, RefreshEvery: crashRefresh}
}

// crashChild runs the victim: a budgeted streaming server journaling
// into the given directory, submitting forever and reporting progress
// on stdout until the parent kills it. Each progress line carries the
// journal's durable total at print time — the writer appends a record
// entirely before Stats can observe it, so with the default
// FsyncNever every reported cent has completed its write(2) into the
// kernel page cache and survives SIGKILL.
func crashChild(dir string) {
	inst := crashInstance()
	w, err := journal.Open(dir, journal.Options{SnapshotEvery: 1 << 16})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: ", err)
		os.Exit(1)
	}
	s := stream.NewServer(inst, stream.Config{
		Engine: engine.Config{Shards: 3, QueueDepth: 16, Method: engine.MethodRHTALU,
			ClickSeed: 11, Budget: crashBudgetConfig(), Journal: w},
		BudgetFlush: time.Millisecond,
	})
	rng := rand.New(rand.NewSource(503))
	for {
		for _, q := range inst.Queries(rng, 400) {
			s.Submit(q)
		}
		jst := w.Stats()
		sst := s.Stats()
		fmt.Printf("progress spend=%.17g records=%d exhausted=%d snapshots=%d\n",
			jst.TotalSpend, jst.Records, sst.BudgetExhausted, jst.Snapshots)
	}
}

// TestCrashRecoverySIGKILL is the ISSUE's fault-injected restart
// soak: kill a journaling server mid-traffic with no warning, recover,
// and check the durability contract — nothing the journal reported
// durable is lost, per-advertiser overspend stays inside the K·R·P
// staleness bound even across the crash boundary, and a restarted
// engine resumes from the recovered state whose own graceful shutdown
// then recovers bitwise.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary and serves real traffic")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Track the child's progress until budgets bind, then pull the
	// trigger between (or during — that is the point) appends.
	var lastSpend float64
	var lastRecords int64
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	progress := make(chan struct{}, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		for sc.Scan() {
			var spend float64
			var records, exhausted, snapshots int64
			if _, err := fmt.Sscanf(sc.Text(), "progress spend=%g records=%d exhausted=%d snapshots=%d",
				&spend, &records, &exhausted, &snapshots); err != nil {
				continue
			}
			lastSpend, lastRecords = spend, records
			if exhausted > 0 && records > 20 {
				select {
				case progress <- struct{}{}:
				default:
				}
			}
		}
	}()
	select {
	case <-progress:
	case <-deadline:
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child never reported exhausted budgets under load")
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no flush, no goodbye
		t.Fatal(err)
	}
	cmd.Wait()
	<-scanDone // pipe EOF: the scanner's last writes happen-before here

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatalf("recover after SIGKILL: %v", err)
	}
	if rec.State == nil {
		t.Fatal("nothing recovered from a journal the child reported writing")
	}
	if rec.CorruptOffset >= 0 {
		// A kill between a frame's header and payload writes legally
		// tears the final record; recovery reports it and keeps the
		// prefix. Anything else would fail the spend floor below.
		t.Logf("torn tail at byte %d (%s) — recovered the prefix", rec.CorruptOffset, rec.CorruptReason)
	}
	inst := crashInstance()
	if int(rec.State.N) != inst.N || int(rec.State.Lanes) != inst.Keywords {
		t.Fatalf("recovered %dx%d, want %dx%d", rec.State.N, rec.State.Lanes, inst.N, inst.Keywords)
	}
	// Durability floor: everything reported appended before the kill
	// is in the recovered state (page cache survives SIGKILL). The
	// tolerance only covers float summation order, not lost records.
	got := rec.State.TotalSpend()
	if got < lastSpend-1e-6*math.Max(1, lastSpend) {
		t.Fatalf("recovered %.3f < last journaled report %.3f (records=%d): durable spend was lost", got, lastSpend, lastRecords)
	}
	// Staleness bound across the crash: a lane can overshoot by at
	// most its unflushed window, RefreshEvery auctions at the maximum
	// per-auction charge, on each of the K lanes.
	slack := float64(inst.Keywords) * crashRefresh * workload.MaxClickValue
	for i := 0; i < inst.N; i++ {
		if b := inst.Budget[i]; b > 0 && rec.State.Spent(i) > b+slack {
			t.Fatalf("advertiser %d recovered spend %.1f exceeds budget %.1f + K·R·P slack %.1f", i, rec.State.Spent(i), b, slack)
		}
	}

	// Restart: resume serving from the recovered state with a fresh
	// journal session, drain gracefully, and re-recover bitwise.
	w2, err := journal.Open(dir, journal.Options{SnapshotEvery: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(inst, engine.Config{Shards: 3, Method: engine.MethodRHTALU, ClickSeed: 11,
		Budget: crashBudgetConfig(), Journal: w2, Restore: rec.State})
	e2.Serve(inst.Queries(rand.New(rand.NewSource(504)), 3000))
	final := make([]uint64, inst.N)
	for i := 0; i < inst.N; i++ {
		final[i] = math.Float64bits(e2.Ledger().ExactSpent(i))
		if b := inst.Budget[i]; b > 0 && e2.Ledger().ExactSpent(i) > b+slack {
			t.Fatalf("advertiser %d post-restart spend %.1f breaks the cross-crash bound", i, e2.Ledger().ExactSpent(i))
		}
		if e2.Ledger().ExactSpent(i) < rec.State.Spent(i) {
			t.Fatalf("advertiser %d lost spend across the restart", i)
		}
	}
	e2.Close()
	rec2, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.CorruptOffset >= 0 {
		t.Fatalf("graceful shutdown left a corrupt journal at %d (%s)", rec2.CorruptOffset, rec2.CorruptReason)
	}
	for i := 0; i < inst.N; i++ {
		if math.Float64bits(rec2.State.Spent(i)) != final[i] {
			t.Fatalf("advertiser %d: post-restart recovery not bitwise (%#x != %#x)",
				i, math.Float64bits(rec2.State.Spent(i)), final[i])
		}
	}
}

func TestMain(m *testing.M) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		crashChild(dir) // loops until the parent kills the process
		return
	}
	if dir := os.Getenv(netServeEnv); dir != "" {
		netServeChild(dir) // serves until a connect child drains it
		return
	}
	if addr := os.Getenv(netConnectEnv); addr != "" {
		netConnectChild(addr)
		return
	}
	os.Exit(m.Run())
}
