// Command auctionsim runs the Section V auction market and reports
// market-level statistics: provider revenue, fill rate, click-through
// volume, and a distribution summary of advertiser spending against
// targets. It is the "operator's view" of the simulation — useful for
// sanity-checking workloads and for exploring how the ROI-equalizing
// population behaves over time.
//
// With -engine it becomes a load generator for the concurrent
// keyword-sharded serving engine: queries are fanned out across
// -shards worker goroutines over bounded queues, and every report
// window prints end-to-end throughput plus p50/p99 per-auction
// service latency. The -method flag selects the winner-determination
// pipeline in both modes — rh (reduced Hungarian, explicit program
// evaluation), rh-talu (the Section IV threshold algorithm + logical
// updates, the allocation-free fast path), h (full Hungarian), lp
// (assignment LP), or heavy (the Section III-F heavyweight 2^k
// pattern enumeration; per-auction cost grows as 2^slots, so pair it
// with a small -slots) — so the load generator can drive and compare
// every engine method. Method names are case-insensitive; RHTALU and
// rh-talu are synonyms. The -pricing flag selects the payment rule:
// gsp (generalized second pricing, the default) or vcg (Vickrey
// opportunity costs via per-winner counterfactual solves). Unknown
// -method or -pricing values are rejected with the list of valid
// names.
//
// With -stream it becomes an open-world load generator against the
// streaming server: arrivals are paced to -qps for -duration (Poisson
// by default; -burst > 1 adds on/off bursts and -zipf > 1 skews
// keyword popularity), -churn scripted advertiser add/remove events
// are applied live at auction boundaries, and -overload picks the
// admission policy when a shard queue saturates — block (backpressure)
// or shed (never block the submitter; dropped queries are counted,
// never silently lost). A rolling status line prints every -report
// auctions' worth of window, and the final drain flushes cumulative
// accounting plus the per-shard breakdown.
//
// With -broadmatch t (engine or stream mode) queries become free text
// over the bigram keyword catalog and the probabilistic broad-match
// router fans each query out to every keyword whose name scores at
// least t under subset relevance scoring; per-(query,keyword) match
// draws are seeded and replayable, the highest-relevance admitted
// market serves the impression, and the matched-but-unserved rest are
// counted as overmatched. -squash e weights eligible bids by
// relevance^e before GSP/VCG pricing, and -reserve r (also available
// without -broadmatch) excludes effective bids below the reserve and
// floors charged prices at it. The drained accounting identity
// becomes submitted == served + shed + unrouted + overmatched.
// Invalid knob values, -broadmatch outside -engine/-stream, and
// -broadmatch with -serve/-connect (the wire protocol carries keyword
// ids, not text) are rejected.
//
// With -budget N (in every mode) each advertiser gets a daily budget
// scaled so an on-target spender exhausts it after roughly N
// auctions, and the cross-keyword budget subsystem enforces the caps:
// -budget-policy picks hard (excluded at the cap, like the bidding
// language's budget-guard program) or paced (deterministic throttling
// that smooths spend across the run), and -budget-refresh sets the
// spend-ledger snapshot cadence in per-keyword auctions (the
// eventual-consistency knob: smaller is tighter, larger is cheaper).
// A budget summary line — total enforced spend, advertisers at their
// caps, gate denials — is printed after the run.
//
// With -journal <dir> (requires -budget) every charge is batched into
// an append-only, checksummed spend journal with periodic snapshot
// compaction, and the drain summary compares the journaled total
// against the in-memory ledger. -fsync picks the durability point:
// never (default) keeps records in the kernel page cache — they
// survive a SIGKILL but not power loss — while always fsyncs every
// append. A later run with the same population flags plus -recover
// replays the journal first, prints a recovery summary (recovered
// advertisers, replayed records, snapshot age, any corruption), and
// resumes serving from the recovered spend state; -recover without
// -journal is rejected.
//
// With -serve <addr> it becomes the networked serving tier: the
// streaming server is put behind TCP speaking the internal/wire frame
// protocol, and the process blocks until a client requests a graceful
// drain over the wire, then prints the connection-layer accounting
// identity (submitted == served + shed + rejected), the stream
// drain summary, and — with budgets — a bitwise spend fingerprint.
// With -connect <addr> it is the matching load generator: -conns
// connections times -pipeline concurrent workers drive -auctions
// auctions through a serving process (typically a separate OS
// process) and print client-side dispositions with end-to-end
// latency percentiles; -resets fences the run with mid-traffic budget
// resets, and -drain finishes by draining the server. The CI network
// soak runs one -serve and several -connect processes over loopback
// and checks the two sides' counters agree exactly.
//
// Usage:
//
//	auctionsim -n 2000 -auctions 5000 -method rh-talu -report 1000
//	auctionsim -engine -method rh-talu -shards 8 -queue 256 -n 2000 -auctions 200000
//	auctionsim -method heavy -pricing vcg -slots 6 -n 500 -heavy-frac 0.2 -shadow 0.3
//	auctionsim -stream -qps 3000 -duration 10s -churn 6 -overload shed -zipf 1.2
//	auctionsim -engine -broadmatch 0.4 -squash 0.5 -reserve 3 -zipf 1.2 -auctions 50000
//	auctionsim -stream -broadmatch 0.4 -reserve 3 -qps 3000 -duration 10s
//	auctionsim -engine -budget 300 -budget-policy paced -budget-refresh 32 -auctions 20000
//	auctionsim -stream -budget 200 -journal /var/tmp/ssa-journal -duration 10s
//	auctionsim -stream -budget 200 -journal /var/tmp/ssa-journal -recover -duration 10s
//	auctionsim -serve 127.0.0.1:7071 -method rh-talu -budget 200 -journal /var/tmp/ssa-journal
//	auctionsim -connect 127.0.0.1:7071 -conns 4 -pipeline 8 -auctions 100000 -drain
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/broadmatch"
	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/strategy"
	"repro/internal/stream"
	"repro/internal/workload"
)

// startMetrics exposes reg (plus /debug/pprof and, when ring is
// non-nil, the /trace dump) over HTTP and prints the bound address in
// the same machine-parseable shape the serve-mode listener uses, so
// the network soak can scrape a child's endpoint mid-traffic.
func startMetrics(addr string, reg *obs.Registry, ring *obs.TraceRing) *obs.HTTPServer {
	hs, err := obs.Serve(addr, reg, ring)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auctionsim: metrics:", err)
		os.Exit(1)
	}
	fmt.Printf("metrics: listening addr=%s\n", hs.Addr())
	return hs
}

func main() {
	var (
		n         = flag.Int("n", 2000, "number of advertisers")
		slots     = flag.Int("slots", workload.DefaultSlots, "number of slots (k)")
		keywords  = flag.Int("keywords", workload.DefaultKeywords, "number of keywords")
		auctions  = flag.Int("auctions", 5000, "number of auctions to run")
		method    = flag.String("method", "rh-talu", "winner determination: lp, h, rh, rh-talu (alias RHTALU), rh-parallel, heavy")
		pricing   = flag.String("pricing", "gsp", "payment rule: gsp, vcg")
		heavyFrac = flag.Float64("heavy-frac", 0.2, "heavyweight advertiser fraction (method heavy)")
		shadow    = flag.Float64("shadow", 0.3, "heavyweight click-shadowing strength (method heavy)")
		heavyPar  = flag.Int("heavy-parallel", 0, "method heavy: pattern-enumeration workers per market (0 = GOMAXPROCS, 1 = sequential)")
		report    = flag.Int("report", 1000, "print a summary every this many auctions")
		seed      = flag.Int64("seed", 1, "random seed")
		useEng    = flag.Bool("engine", false, "serve through the concurrent sharded engine (load-generator mode)")
		shards    = flag.Int("shards", 0, "engine worker shards (0 = GOMAXPROCS, capped at keywords)")
		queue     = flag.Int("queue", 0, "engine per-shard queue depth (0 = default)")
		useStream = flag.Bool("stream", false, "serve an open-world stream through the long-running streaming server")
		qps       = flag.Float64("qps", 2000, "stream mode: mean arrival rate")
		duration  = flag.Duration("duration", 5*time.Second, "stream mode: stream length")
		churn     = flag.Int("churn", 0, "stream mode: scripted advertiser add/remove events over the run")
		overload  = flag.String("overload", "block", "stream mode: admission policy at queue saturation: block, shed")
		zipf      = flag.Float64("zipf", 0, "stream/broad-match mode: Zipf keyword- or token-popularity exponent (> 1; 0 = uniform)")
		broadTh   = flag.Float64("broadmatch", 0, "broad-match relevance threshold in (0, 1]: route free-text queries to every keyword scoring at least this (0 = exact routing; needs -engine or -stream)")
		reserve   = flag.Float64("reserve", 0, "per-click reserve price: bids below reserve/weight are excluded and prices floored at the reserve (needs -engine or -stream)")
		squash    = flag.Float64("squash", 1, "broad-match squashing exponent: eligible bids are weighted by relevance^squash before pricing (needs -broadmatch)")
		burst     = flag.Float64("burst", 1, "stream mode: burst rate factor (> 1 enables on/off bursts)")
		budgetAt  = flag.Float64("budget", 0, "attach daily budgets scaled to this many on-target auctions and enforce them (0 = budgets off)")
		budgetPol = flag.String("budget-policy", "hard", "budget enforcement: hard (exclude at cap), paced (smooth spend over the run)")
		budgetRef = flag.Int("budget-refresh", 0, "budget ledger snapshot refresh, in per-keyword auctions (0 = default)")
		jdir      = flag.String("journal", "", "durable spend-journal directory (requires -budget); spend is batched, checksummed, and compacted there")
		doRecover = flag.Bool("recover", false, "replay the -journal directory before serving and resume from the recovered spend state")
		fsyncMode = flag.String("fsync", "never", "journal durability: never (kernel page cache — survives SIGKILL), always (fsync every append — survives power loss)")
		serveAddr = flag.String("serve", "", "serve mode: listen for networked wire-protocol clients on this address and block until a client drains the server")
		connAddr  = flag.String("connect", "", "connect mode: drive auctions against a -serve process at this address")
		conns     = flag.Int("conns", 2, "connect mode: client connections to open")
		pipeline  = flag.Int("pipeline", 4, "connect mode: concurrent in-flight workers per connection")
		doDrain   = flag.Bool("drain", false, "connect mode: request a graceful server drain after the load finishes")
		resets    = flag.Int("resets", 0, "connect mode: budget resets fenced into the run at even intervals")
		metrics   = flag.String("metrics-addr", "", "expose live /metrics (Prometheus text), /debug/pprof, and /trace on this HTTP address (engine, stream, serve, connect modes)")
		traceN    = flag.Int("trace-sample", 0, "record every Nth auction into the in-memory trace ring, dumpable at /trace (0 = off; needs -engine, -stream, or -serve)")
	)
	flag.Parse()

	m, err := parseMethod(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auctionsim:", err)
		flag.Usage()
		os.Exit(2)
	}
	pr, err := parsePricing(*pricing)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auctionsim:", err)
		flag.Usage()
		os.Exit(2)
	}
	if m == strategy.MethodHeavy && *slots > 20 {
		fmt.Fprintf(os.Stderr, "auctionsim: -method heavy enumerates 2^slots patterns and needs -slots <= 20, got %d\n", *slots)
		os.Exit(2)
	}
	if *heavyPar < 0 {
		fmt.Fprintf(os.Stderr, "auctionsim: -heavy-parallel wants a non-negative worker count (0 = GOMAXPROCS), got %d\n", *heavyPar)
		flag.Usage()
		os.Exit(2)
	}
	if *broadTh < 0 || *broadTh > 1 {
		fmt.Fprintf(os.Stderr, "auctionsim: -broadmatch wants a relevance threshold in (0, 1] (0 = exact routing), got %v\n", *broadTh)
		flag.Usage()
		os.Exit(2)
	}
	if *reserve < 0 {
		fmt.Fprintf(os.Stderr, "auctionsim: -reserve wants a non-negative per-click price, got %v\n", *reserve)
		flag.Usage()
		os.Exit(2)
	}
	if *squash <= 0 {
		fmt.Fprintf(os.Stderr, "auctionsim: -squash wants a positive exponent (1 = rank by raw relevance), got %v\n", *squash)
		flag.Usage()
		os.Exit(2)
	}
	if *broadTh > 0 && !*useEng && !*useStream {
		fmt.Fprintln(os.Stderr, "auctionsim: -broadmatch routes free text through the sharded engine and needs -engine or -stream")
		flag.Usage()
		os.Exit(2)
	}
	if *broadTh > 0 && (*serveAddr != "" || *connAddr != "") {
		fmt.Fprintln(os.Stderr, "auctionsim: -broadmatch is not available over the wire protocol (it carries keyword ids, not text) — drop -serve/-connect")
		flag.Usage()
		os.Exit(2)
	}
	if *reserve > 0 && !*useEng && !*useStream {
		fmt.Fprintln(os.Stderr, "auctionsim: -reserve is enforced by the sharded engine's markets and needs -engine or -stream")
		flag.Usage()
		os.Exit(2)
	}
	if *squash != 1 && *broadTh == 0 {
		fmt.Fprintln(os.Stderr, "auctionsim: -squash weights broad-match candidates and needs -broadmatch > 0")
		flag.Usage()
		os.Exit(2)
	}
	if *traceN < 0 {
		fmt.Fprintf(os.Stderr, "auctionsim: -trace-sample wants a non-negative sampling period (0 = off), got %d\n", *traceN)
		flag.Usage()
		os.Exit(2)
	}
	if *traceN > 0 && !*useEng && !*useStream && *serveAddr == "" {
		fmt.Fprintln(os.Stderr, "auctionsim: -trace-sample records engine-side auction traces and needs -engine, -stream, or -serve")
		flag.Usage()
		os.Exit(2)
	}
	if *metrics != "" && !*useEng && !*useStream && *serveAddr == "" && *connAddr == "" {
		fmt.Fprintln(os.Stderr, "auctionsim: -metrics-addr exposes the serving-tier registry and needs -engine, -stream, -serve, or -connect")
		flag.Usage()
		os.Exit(2)
	}
	bm := broadOpts{threshold: *broadTh, squash: *squash, reserve: *reserve, zipf: *zipf, seed: *seed + 5}

	if *connAddr != "" {
		// Connect mode needs no local instance — the serving process
		// owns the population; only the keyword range matters here.
		runConnect(connectOpts{
			addr: *connAddr, conns: *conns, pipeline: *pipeline,
			auctions: *auctions, keywords: *keywords,
			resets: *resets, drain: *doDrain, seed: *seed,
			metricsAddr: *metrics,
		})
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	var inst *workload.Instance
	if m == strategy.MethodHeavy {
		inst = workload.GenerateHeavy(rng, *n, *slots, *keywords, *heavyFrac, *shadow)
	} else {
		inst = workload.Generate(rng, *n, *slots, *keywords)
	}

	var bcfg budget.Config // PolicyOff unless -budget is set
	if *budgetAt > 0 {
		pol, err := parseBudgetPolicy(*budgetPol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim:", err)
			flag.Usage()
			os.Exit(2)
		}
		workload.AttachBudgets(rng, inst, *budgetAt)
		// The pacing horizon is per lane (per keyword in engine/stream
		// mode; the whole run for the single-market sequential mode).
		// The per-keyword split assumes uniform traffic: under -zipf
		// skew a hot lane reaches its horizon early and paces greedily
		// from there, while cold lanes never finish theirs — adaptive
		// per-keyword forecasts are a ROADMAP follow-up.
		horizon := *auctions / *keywords
		if *useStream {
			horizon = int(*qps * duration.Seconds() / float64(*keywords))
		} else if !*useEng && *serveAddr == "" {
			horizon = *auctions
		}
		bcfg = budget.Config{Policy: pol, RefreshEvery: *budgetRef, Horizon: horizon, Seed: *seed + 4}
	}

	if *doRecover && *jdir == "" {
		fmt.Fprintln(os.Stderr, "auctionsim: -recover replays a journal and needs -journal <dir> to say which one")
		flag.Usage()
		os.Exit(2)
	}
	var (
		jw      *journal.Writer
		restore *journal.LedgerState
	)
	if *jdir != "" {
		if bcfg.Policy == budget.PolicyOff {
			fmt.Fprintln(os.Stderr, "auctionsim: -journal records budget spend and needs -budget > 0")
			flag.Usage()
			os.Exit(2)
		}
		fs, err := journal.ParseFsync(*fsyncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim:", err)
			flag.Usage()
			os.Exit(2)
		}
		// Lanes are per keyword in engine/stream mode; the sequential
		// world runs one cross-keyword lane.
		lanes := *keywords
		if !*useEng && !*useStream && *serveAddr == "" {
			lanes = 1
		}
		if *doRecover {
			r, err := journal.Recover(*jdir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "auctionsim: recover:", err)
				os.Exit(1)
			}
			printRecoverySummary(r)
			if r.State != nil {
				// Resuming assumes the same population: identical -seed,
				// -n, and -keywords regenerate it deterministically.
				if int(r.State.N) != inst.N || int(r.State.Lanes) != lanes {
					fmt.Fprintf(os.Stderr, "auctionsim: journal covers %d advertisers x %d lanes, this run has %d x %d — rerun with the flags that wrote it\n",
						r.State.N, r.State.Lanes, inst.N, lanes)
					os.Exit(1)
				}
				restore = r.State
			}
		}
		if jw, err = journal.Open(*jdir, journal.Options{Fsync: fs}); err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim: journal:", err)
			os.Exit(1)
		}
	}

	if *serveAddr != "" {
		pol, err := parsePolicy(*overload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim:", err)
			flag.Usage()
			os.Exit(2)
		}
		runServe(inst, serveOpts{
			addr: *serveAddr, method: m, pricing: pr,
			shards: *shards, queue: *queue, clickSeed: *seed + 2,
			policy: pol, budget: bcfg, journal: jw, restore: restore,
			metricsAddr: *metrics, traceSample: *traceN,
		})
		return
	}

	if *useStream {
		pol, err := parsePolicy(*overload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim:", err)
			flag.Usage()
			os.Exit(2)
		}
		runStream(inst, streamOpts{
			method: m, pricing: pr, shards: *shards, queue: *queue,
			clickSeed: *seed + 2, report: *report, qps: *qps,
			duration: *duration, churn: *churn, policy: pol,
			zipf: *zipf, burst: *burst, seed: *seed + 3, budget: bcfg,
			heavyPar: *heavyPar, journal: jw, restore: restore, broad: bm,
			metricsAddr: *metrics, traceSample: *traceN,
		})
		return
	}

	queries := inst.Queries(rand.New(rand.NewSource(*seed+1)), *auctions)

	if *useEng {
		runEngine(inst, queries, m, pr, *shards, *queue, *seed+2, *report, bcfg, *heavyPar, jw, restore, bm, *metrics, *traceN)
		return
	}

	wo := strategy.WorldOpts{Method: m, Pricing: pr, ClickSeed: *seed + 2, HeavyParallelism: *heavyPar}
	if bcfg.Policy != budget.PolicyOff {
		// A sequential world owns a single-lane ledger: cross-keyword
		// budgets are exact here (one market sees all keywords).
		led := budget.NewLedger(inst.N, 1, inst.Budget, bcfg)
		if restore != nil {
			led = budget.NewLedgerState(restore, inst.Budget, bcfg)
		}
		if jw != nil {
			if err := led.AttachJournal(jw); err != nil {
				fmt.Fprintln(os.Stderr, "auctionsim: journal:", err)
				os.Exit(1)
			}
		}
		wo.Lane = led.Lane(0)
	}
	w := strategy.NewWorldOpts(inst, wo)

	fmt.Printf("auctionsim: n=%d k=%d keywords=%d method=%v pricing=%v auctions=%d\n",
		*n, *slots, *keywords, m, pr, *auctions)
	fmt.Println("auction\trevenue\tclicks\tfill%\tms/auction")

	var (
		revenue   float64
		clicks    int
		filled    int
		slotTotal int
	)
	windowStart := time.Now()
	for a, q := range queries {
		o := w.RunAuction(q)
		revenue += o.Revenue
		for j := range o.AdvOf {
			slotTotal++
			if o.AdvOf[j] >= 0 {
				filled++
			}
			if o.Clicked[j] {
				clicks++
			}
		}
		if (a+1)%*report == 0 {
			elapsed := time.Since(windowStart)
			fmt.Printf("%d\t%.0f\t%d\t%.1f\t%.3f\n",
				a+1, revenue, clicks,
				100*float64(filled)/float64(slotTotal),
				float64(elapsed.Microseconds())/1000/float64(*report))
			windowStart = time.Now()
		}
	}

	printSpendSummary(inst, spendTotals(inst, w), float64(w.Auctions()))
	if lane := w.BudgetLane(); lane != nil {
		lane.Publish() // also flushes the lane's journal batch
		printBudgetSummary(lane.Ledger())
		if jw != nil {
			if err := jw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "auctionsim: journal degraded:", err)
			}
			printJournalSummary(jw, lane.Ledger())
		}
	}
}

// broadMaxTokens caps free-text query length in broad-match mode:
// 1…3 tokens over the bigram catalog's vocabulary, enough to reach
// every relevance class (1/2, 2/3, 1) the scorer can produce.
const broadMaxTokens = 3

// broadOpts bundles the broad-match serving knobs shared by engine
// and stream mode.
type broadOpts struct {
	threshold, squash, reserve float64
	zipf                       float64 // token-popularity skew for generated text
	seed                       int64
}

func (o broadOpts) on() bool { return o.threshold > 0 }

// apply merges the knobs into an engine config: the reserve applies
// in every mode, the router and bigram catalog names only when broad
// match is on.
func (o broadOpts) apply(cfg *engine.Config, keywords int) {
	cfg.Reserve = o.reserve
	if o.on() {
		cfg.KeywordNames = workload.BigramKeywordNames(keywords)
		cfg.Broadmatch = broadmatch.Config{Enabled: true, Threshold: o.threshold, Squash: o.squash, Seed: o.seed}
	}
}

// runEngine is load-generator mode: the stream is served in
// report-sized batches through the sharded engine, each batch printing
// throughput and per-auction latency percentiles. With broad match on
// the batches are free-text queries routed by relevance instead of
// pre-resolved keyword indices.
func runEngine(inst *workload.Instance, queries []int, m engine.Method, pr engine.Pricing, shards, queue int, clickSeed int64, report int, bcfg budget.Config, heavyPar int, jw *journal.Writer, restore *journal.LedgerState, bm broadOpts, metricsAddr string, traceSample int) {
	cfg := engine.Config{
		Shards:           shards,
		QueueDepth:       queue,
		Method:           m,
		Pricing:          pr,
		ClickSeed:        clickSeed,
		Budget:           bcfg,
		HeavyParallelism: heavyPar,
		Journal:          jw,
		Restore:          restore,
		TraceSample:      traceSample,
	}
	bm.apply(&cfg, inst.Keywords)
	e := engine.New(inst, cfg)
	if metricsAddr != "" {
		defer startMetrics(metricsAddr, e.Metrics().Registry, e.TraceRing()).Close()
	}
	var texts []string
	if bm.on() {
		texts = workload.TextQueries(rand.New(rand.NewSource(bm.seed+1)), inst.Keywords, len(queries), broadMaxTokens, bm.zipf)
		fmt.Printf("auctionsim: engine mode (broad match: threshold=%v squash=%v reserve=%v), n=%d k=%d keywords=%d method=%v pricing=%v queries=%d shards=%d\n",
			bm.threshold, bm.squash, bm.reserve, inst.N, inst.Slots, inst.Keywords, m, pr, len(texts), e.Shards())
	} else {
		fmt.Printf("auctionsim: engine mode, n=%d k=%d keywords=%d method=%v pricing=%v auctions=%d shards=%d\n",
			inst.N, inst.Slots, inst.Keywords, m, pr, len(queries), e.Shards())
	}
	fmt.Println("auction\trevenue\tclicks\tfill%\tqps\tp50µs\tp99µs")

	var total engine.Stats
	for off := 0; off < len(queries); off += report {
		end := off + report
		if end > len(queries) {
			end = len(queries)
		}
		var st *engine.Stats
		if bm.on() {
			st = e.ServeText(texts[off:end])
		} else {
			st = e.Serve(queries[off:end])
		}
		total.Auctions += st.Auctions
		total.Revenue += st.Revenue
		total.Clicks += st.Clicks
		total.Filled += st.Filled
		total.TotalSlots += st.TotalSlots
		total.Elapsed += st.Elapsed
		total.Unrouted += st.Unrouted
		total.Overmatched += st.Overmatched
		fmt.Printf("%d\t%.0f\t%d\t%.1f\t%.0f\t%.1f\t%.1f\n",
			total.Auctions, total.Revenue, total.Clicks,
			100*float64(total.Filled)/float64(total.TotalSlots),
			st.Throughput,
			float64(st.P50.Nanoseconds())/1000,
			float64(st.P99.Nanoseconds())/1000)
	}
	fmt.Printf("total: %d auctions in %v (%.0f qps overall)\n",
		total.Auctions, total.Elapsed.Round(time.Millisecond),
		float64(total.Auctions)/total.Elapsed.Seconds())
	if bm.on() {
		fmt.Printf("broad match: unrouted=%d overmatched=%d (served+unrouted = %d submitted queries)\n",
			total.Unrouted, total.Overmatched, total.Auctions+total.Unrouted)
	}

	// Aggregate per-keyword market accounting into the advertiser view.
	spent := make([]float64, inst.N)
	for q := 0; q < inst.Keywords; q++ {
		acct := e.KeywordMarket(q).Accounting()
		for i := 0; i < inst.N; i++ {
			spent[i] += acct.SpentTotal[i]
		}
	}
	printSpendSummary(inst, spent, float64(total.Auctions))
	led := e.Ledger()
	if led != nil {
		printBudgetSummary(led) // Serve flushed the lanes: the snapshot is current
	}
	e.Close() // flushes the last journal batches and closes the writer
	if jw != nil {
		if err := jw.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim: journal degraded:", err)
		}
		printJournalSummary(jw, led)
	}
}

// printBudgetSummary reports the ledger's published view — total
// spend under enforcement, advertisers at their caps, and gate
// denials.
func printBudgetSummary(led *budget.Ledger) {
	spent, exhausted, denied := led.Totals()
	fmt.Printf("budget[%v]: spent=%.0f exhausted=%d/%d denied=%d (refresh=%d)\n",
		led.Config().Policy, spent, exhausted, led.N(), denied, led.Config().RefreshEvery)
}

// streamOpts bundles stream-mode configuration.
type streamOpts struct {
	method    engine.Method
	pricing   engine.Pricing
	shards    int
	queue     int
	clickSeed int64
	report    int
	qps       float64
	duration  time.Duration
	churn     int
	policy    stream.Policy
	zipf      float64
	burst     float64
	seed      int64
	budget    budget.Config
	heavyPar  int
	journal   *journal.Writer
	restore   *journal.LedgerState
	broad     broadOpts

	metricsAddr string // "" = no HTTP exposition
	traceSample int    // 0 = tracing off
}

// runStream is open-world mode: a deterministic workload.Stream paces
// submissions (and live churn events) into the long-running streaming
// server; every report window prints the rolling view, and Close
// flushes the drain summary.
func runStream(inst *workload.Instance, o streamOpts) {
	total := int(o.qps * o.duration.Seconds())
	if total < 1 {
		total = 1
	}
	rng := rand.New(rand.NewSource(o.seed))
	scfg := workload.StreamConfig{
		Queries: total, QPS: o.qps, ZipfS: o.zipf, BurstFactor: o.burst,
		Churn: workload.ScriptChurn(rng, inst, o.churn, total),
	}
	if o.broad.on() {
		scfg.TextTokens = broadMaxTokens
	}
	events := workload.NewStream(inst, rng, scfg)
	ecfg := engine.Config{
		Shards: o.shards, QueueDepth: o.queue,
		Method: o.method, Pricing: o.pricing, ClickSeed: o.clickSeed,
		Budget: o.budget, HeavyParallelism: o.heavyPar,
		Journal: o.journal, Restore: o.restore,
		TraceSample: o.traceSample,
	}
	o.broad.apply(&ecfg, inst.Keywords)
	srv := stream.NewServer(inst, stream.Config{
		Engine:   ecfg,
		Overload: o.policy,
	})
	if o.metricsAddr != "" {
		eng := srv.Engine()
		defer startMetrics(o.metricsAddr, eng.Metrics().Registry, eng.TraceRing()).Close()
	}
	if o.broad.on() {
		fmt.Printf("auctionsim: stream mode (broad match: threshold=%v squash=%v reserve=%v), n=%d k=%d keywords=%d method=%v pricing=%v qps=%.0f duration=%v overload=%v churn=%d shards=%d\n",
			o.broad.threshold, o.broad.squash, o.broad.reserve,
			inst.N, inst.Slots, inst.Keywords, o.method, o.pricing, o.qps, o.duration, o.policy, o.churn, srv.Shards())
	} else {
		fmt.Printf("auctionsim: stream mode, n=%d k=%d keywords=%d method=%v pricing=%v qps=%.0f duration=%v overload=%v churn=%d shards=%d\n",
			inst.N, inst.Slots, inst.Keywords, o.method, o.pricing, o.qps, o.duration, o.policy, o.churn, srv.Shards())
	}
	fmt.Println("t\tsubmitted\tserved\tshed\tadv\tepoch\tqps(win)\tp50µs\tp95µs\tp99µs")

	start := time.Now()
	submitted, nextReport := 0, o.report
	for {
		ev, ok := events.Next()
		if !ok {
			break
		}
		if ev.Churn != nil {
			if ev.Churn.Add != nil {
				if _, err := srv.AddAdvertiser(*ev.Churn.Add); err != nil {
					fmt.Fprintln(os.Stderr, "auctionsim: churn add:", err)
					os.Exit(1)
				}
			} else if err := srv.RemoveAdvertiser(ev.Churn.Remove); err != nil {
				fmt.Fprintln(os.Stderr, "auctionsim: churn remove:", err)
				os.Exit(1)
			}
			continue
		}
		// Pace to the scripted arrival offset; sleeping only for gaps
		// the OS timer can resolve keeps high-qps streams accurate.
		if ahead := ev.At - time.Since(start); ahead > 200*time.Microsecond {
			time.Sleep(ahead)
		}
		if ev.Text != "" {
			srv.SubmitText(ev.Text)
		} else {
			srv.Submit(ev.Keyword)
		}
		submitted++
		if submitted >= nextReport {
			nextReport += o.report
			st := srv.Stats()
			fmt.Printf("%.1fs\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.1f\t%.1f\t%.1f\n",
				time.Since(start).Seconds(), st.Submitted, st.Served, st.Shed,
				st.Advertisers, st.Epoch, st.WindowThroughput,
				float64(st.P50.Nanoseconds())/1000,
				float64(st.P95.Nanoseconds())/1000,
				float64(st.P99.Nanoseconds())/1000)
		}
	}
	st := srv.Close()
	// Under broad match every text query is an admission unit, so the
	// drained identity gains the unrouted and overmatched legs.
	identity := st.Served+st.Shed == st.Submitted
	if o.broad.on() {
		identity = st.Served+st.Shed+st.Unrouted+st.Overmatched == st.Submitted
	}
	fmt.Printf("drained: submitted=%d served=%d shed=%d (identity %v) unrouted=%d overmatched=%d epochs=%d advertisers=%d\n",
		st.Submitted, st.Served, st.Shed, identity,
		st.Unrouted, st.Overmatched, st.Epoch, st.Advertisers)
	fmt.Printf("totals: revenue=%.0f clicks=%d fill=%.1f%% in %v (%.0f qps lifetime)\n",
		st.Revenue, st.Clicks, 100*float64(st.Filled)/float64(st.TotalSlots),
		st.Elapsed.Round(time.Millisecond), st.Throughput)
	for i, ps := range st.PerShard {
		fmt.Printf("  shard %d: served=%d shed=%d epoch=%d\n", i, ps.Served, ps.Shed, ps.Epoch)
	}
	if o.budget.Policy != budget.PolicyOff {
		fmt.Printf("budget[%v]: spent=%.0f exhausted=%d denied=%d\n",
			o.budget.Policy, st.BudgetSpent, st.BudgetExhausted, st.BudgetDenied)
	}
	if o.journal != nil { // the drain closed the engine, and with it the writer
		if err := o.journal.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim: journal degraded:", err)
		}
		printJournalSummary(o.journal, srv.Engine().Ledger())
	}
}

// printRecoverySummary reports what -recover reconstructed before the
// run resumes: how much spend came back, how it was pieced together
// (snapshot + replayed tail), and any damage that truncated the
// replay.
func printRecoverySummary(r *journal.Recovery) {
	if r.State == nil {
		fmt.Println("recovery: journal empty — starting fresh")
	} else {
		recovered := 0
		for i := 0; i < int(r.State.N); i++ {
			if r.State.Spent(i) > 0 {
				recovered++
			}
		}
		fmt.Printf("recovery: advertisers=%d/%d with spend=%.0f epoch=%d (replayed=%d records, covered=%d, stale=%d)\n",
			recovered, r.State.N, r.State.TotalSpend(), r.State.Epoch,
			r.Replayed, r.Covered, r.Stale)
		if r.SnapshotLoaded {
			fmt.Printf("recovery: snapshot seq=%d age=%v\n", r.SnapshotSeq, r.SnapshotAge.Round(time.Millisecond))
		}
	}
	if r.SnapshotErr != "" {
		fmt.Printf("recovery: snapshot unusable (%s) — rebuilt from the journal alone\n", r.SnapshotErr)
	}
	if r.CorruptOffset >= 0 {
		fmt.Printf("recovery: journal damaged at byte %d (%s) — recovered the prefix before it\n",
			r.CorruptOffset, r.CorruptReason)
	}
}

// printJournalSummary compares what the (now flushed and closed)
// journal durably holds against the in-memory ledger — equal totals
// mean a crash right now would lose nothing.
func printJournalSummary(w *journal.Writer, led *budget.Ledger) {
	st := w.Stats()
	var exact float64
	if led != nil {
		for i := 0; i < led.N(); i++ {
			exact += led.ExactSpent(i)
		}
	}
	fmt.Printf("journal: spent(journal)=%.0f spent(memory)=%.0f epoch=%d records=%d snapshots=%d tail=%dB staleDropped=%d\n",
		st.TotalSpend, exact, st.Epoch, st.Records, st.Snapshots, st.JournalBytes, st.StaleDropped)
}

func parseBudgetPolicy(s string) (budget.Policy, error) {
	switch strings.ToLower(s) {
	case "hard":
		return budget.PolicyHard, nil
	case "paced":
		return budget.PolicyPaced, nil
	}
	return 0, fmt.Errorf("unknown budget policy %q (want hard, paced)", s)
}

func parsePolicy(s string) (stream.Policy, error) {
	switch strings.ToLower(s) {
	case "block":
		return stream.Block, nil
	case "shed":
		return stream.Shed, nil
	}
	return 0, fmt.Errorf("unknown overload policy %q (want block, shed)", s)
}

func parseMethod(s string) (strategy.Method, error) {
	switch strings.ToUpper(s) {
	case "LP":
		return strategy.MethodLP, nil
	case "H":
		return strategy.MethodH, nil
	case "RH":
		return strategy.MethodRH, nil
	case "RHTALU", "RH-TALU", "TALU":
		return strategy.MethodRHTALU, nil
	case "RH-PARALLEL", "RHPARALLEL":
		return strategy.MethodRHParallel, nil
	case "HEAVY":
		return strategy.MethodHeavy, nil
	}
	return 0, fmt.Errorf("unknown method %q (want lp, h, rh, rh-talu, rh-parallel, heavy)", s)
}

func parsePricing(s string) (strategy.Pricing, error) {
	switch strings.ToUpper(s) {
	case "GSP":
		return strategy.PricingGSP, nil
	case "VCG":
		return strategy.PricingVCG, nil
	}
	return 0, fmt.Errorf("unknown pricing %q (want gsp, vcg)", s)
}

// spendTotals extracts per-advertiser total spend from a sequential
// world.
func spendTotals(inst *workload.Instance, w *strategy.World) []float64 {
	spent := make([]float64, inst.N)
	copy(spent, w.Accounting().SpentTotal)
	return spent
}

// printSpendSummary shows how well the ROI-equalizing population
// tracked its target spending rates — the quantity the Figure 5
// heuristic steers.
func printSpendSummary(inst *workload.Instance, spent []float64, t float64) {
	ratios := make([]float64, 0, inst.N)
	for i := 0; i < inst.N; i++ {
		ratios = append(ratios, spent[i]/t/float64(inst.Target[i]))
	}
	sort.Float64s(ratios)
	pct := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(ratios)))) - 1
		if idx < 0 {
			idx = 0
		}
		return ratios[idx]
	}
	fmt.Println()
	fmt.Println("spend-rate / target-rate distribution (1.0 = exactly on target):")
	fmt.Printf("  p10=%.3f  p50=%.3f  p90=%.3f  max=%.3f\n",
		pct(0.10), pct(0.50), pct(0.90), ratios[len(ratios)-1])
	over := 0
	for _, r := range ratios {
		if r > 1 {
			over++
		}
	}
	fmt.Printf("  advertisers over target: %d / %d\n", over, inst.N)
}
