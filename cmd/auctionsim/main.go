// Command auctionsim runs the Section V auction market and reports
// market-level statistics: provider revenue, fill rate, click-through
// volume, and a distribution summary of advertiser spending against
// targets. It is the "operator's view" of the simulation — useful for
// sanity-checking workloads and for exploring how the ROI-equalizing
// population behaves over time.
//
// Usage:
//
//	auctionsim -n 2000 -auctions 5000 -method RHTALU -report 1000
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/strategy"
	"repro/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 2000, "number of advertisers")
		slots    = flag.Int("slots", workload.DefaultSlots, "number of slots (k)")
		keywords = flag.Int("keywords", workload.DefaultKeywords, "number of keywords")
		auctions = flag.Int("auctions", 5000, "number of auctions to run")
		method   = flag.String("method", "RHTALU", "winner determination: LP, H, RH, RHTALU, RH-parallel")
		report   = flag.Int("report", 1000, "print a summary every this many auctions")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	m, err := parseMethod(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auctionsim:", err)
		os.Exit(2)
	}

	inst := workload.Generate(rand.New(rand.NewSource(*seed)), *n, *slots, *keywords)
	queries := inst.Queries(rand.New(rand.NewSource(*seed+1)), *auctions)
	w := strategy.NewWorld(inst, m, *seed+2)

	fmt.Printf("auctionsim: n=%d k=%d keywords=%d method=%v auctions=%d\n",
		*n, *slots, *keywords, m, *auctions)
	fmt.Println("auction\trevenue\tclicks\tfill%\tms/auction")

	var (
		revenue   float64
		clicks    int
		filled    int
		slotTotal int
	)
	windowStart := time.Now()
	for a, q := range queries {
		o := w.RunAuction(q)
		revenue += o.Revenue
		for j := range o.AdvOf {
			slotTotal++
			if o.AdvOf[j] >= 0 {
				filled++
			}
			if o.Clicked[j] {
				clicks++
			}
		}
		if (a+1)%*report == 0 {
			elapsed := time.Since(windowStart)
			fmt.Printf("%d\t%.0f\t%d\t%.1f\t%.3f\n",
				a+1, revenue, clicks,
				100*float64(filled)/float64(slotTotal),
				float64(elapsed.Microseconds())/1000/float64(*report))
			windowStart = time.Now()
		}
	}

	printSpendSummary(inst, w)
}

func parseMethod(s string) (strategy.Method, error) {
	switch strings.ToUpper(s) {
	case "LP":
		return strategy.MethodLP, nil
	case "H":
		return strategy.MethodH, nil
	case "RH":
		return strategy.MethodRH, nil
	case "RHTALU":
		return strategy.MethodRHTALU, nil
	case "RH-PARALLEL", "RHPARALLEL":
		return strategy.MethodRHParallel, nil
	}
	return 0, fmt.Errorf("unknown method %q (want LP, H, RH, RHTALU, RH-parallel)", s)
}

// printSpendSummary shows how well the ROI-equalizing population
// tracked its target spending rates — the quantity the Figure 5
// heuristic steers.
func printSpendSummary(inst *workload.Instance, w *strategy.World) {
	acct := w.Accounting()
	t := float64(w.Auctions())
	ratios := make([]float64, 0, inst.N)
	for i := 0; i < inst.N; i++ {
		ratios = append(ratios, acct.SpentTotal[i]/t/float64(inst.Target[i]))
	}
	sort.Float64s(ratios)
	pct := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(ratios)))) - 1
		if idx < 0 {
			idx = 0
		}
		return ratios[idx]
	}
	fmt.Println()
	fmt.Println("spend-rate / target-rate distribution (1.0 = exactly on target):")
	fmt.Printf("  p10=%.3f  p50=%.3f  p90=%.3f  max=%.3f\n",
		pct(0.10), pct(0.50), pct(0.90), ratios[len(ratios)-1])
	over := 0
	for _, r := range ratios {
		if r > 1 {
			over++
		}
	}
	fmt.Printf("  advertisers over target: %d / %d\n", over, inst.N)
}
