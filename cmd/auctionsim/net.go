package main

// Networked modes: -serve puts the streaming server behind TCP
// (internal/server), -connect drives auctions against one from a
// separate process (internal/client) — together they are the
// multi-process load generator the CI network soak runs over
// loopback. Both modes print machine-parseable summary lines
// ("listening addr=", "net:", "connect:", "spendbits=") that the soak
// parent scrapes for its cross-process accounting identity and
// bitwise journal-recovery checks.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/wire"
	"repro/internal/workload"
)

// serveOpts bundles serve-mode configuration.
type serveOpts struct {
	addr      string
	method    engine.Method
	pricing   engine.Pricing
	shards    int
	queue     int
	clickSeed int64
	policy    stream.Policy
	budget    budget.Config
	journal   *journal.Writer
	restore   *journal.LedgerState

	metricsAddr string // "" = no HTTP exposition
	traceSample int    // 0 = tracing off
}

// runServe listens for networked clients and blocks until a wire
// drain request completes, then prints the drained accounting —
// connection layer first (the four-way identity), stream layer
// underneath, budgets and journal last.
func runServe(inst *workload.Instance, o serveOpts) {
	s, err := server.Listen(o.addr, inst, server.Config{
		Stream: stream.Config{
			Engine: engine.Config{
				Shards: o.shards, QueueDepth: o.queue,
				Method: o.method, Pricing: o.pricing, ClickSeed: o.clickSeed,
				Budget: o.budget, Journal: o.journal, Restore: o.restore,
				TraceSample: o.traceSample,
			},
			Overload: o.policy,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "auctionsim: serve:", err)
		os.Exit(1)
	}
	fmt.Printf("auctionsim: serve mode, listening addr=%s n=%d k=%d keywords=%d method=%v pricing=%v overload=%v shards=%d\n",
		s.Addr(), inst.N, inst.Slots, inst.Keywords, o.method, o.pricing, o.policy, s.Stream().Shards())
	if o.metricsAddr != "" {
		defer startMetrics(o.metricsAddr, s.Registry(), s.Stream().Engine().TraceRing()).Close()
	}

	<-s.Drained() // a client's wire drain request stops intake and drains the shards
	st := s.Close()

	// The CI soak asks for a post-drain registry render as a build
	// artifact: every counter at its final, reconcilable value.
	if out := os.Getenv("AUCTIONSIM_METRICS_OUT"); out != "" && o.metricsAddr != "" {
		if err := os.WriteFile(out, s.Registry().Render(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim: metrics dump:", err)
		}
	}

	sub, served, shed, rejected, unrouted := s.Counters()
	fmt.Printf("net: submitted=%d served=%d shed=%d rejected=%d unrouted=%d (identity %v)\n",
		sub, served, shed, rejected, unrouted, sub == served+shed+rejected)
	fmt.Printf("drained: submitted=%d served=%d shed=%d (identity %v) unrouted=%d epochs=%d advertisers=%d\n",
		st.Submitted, st.Served, st.Shed, st.Served+st.Shed == st.Submitted,
		st.Unrouted, st.Epoch, st.Advertisers)
	fmt.Printf("totals: revenue=%.0f clicks=%d fill=%.1f%% in %v (%.0f qps lifetime)\n",
		st.Revenue, st.Clicks, 100*float64(st.Filled)/float64(st.TotalSlots),
		st.Elapsed.Round(time.Millisecond), st.Throughput)
	if o.budget.Policy != budget.PolicyOff {
		fmt.Printf("budget[%v]: spent=%.0f exhausted=%d denied=%d\n",
			o.budget.Policy, st.BudgetSpent, st.BudgetExhausted, st.BudgetDenied)
		led := s.Stream().Engine().Ledger()
		fmt.Printf("spendbits=%016x n=%d\n", spendFingerprint(led), led.N())
	}
	if o.journal != nil {
		if err := o.journal.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim: journal degraded:", err)
		}
		printJournalSummary(o.journal, s.Stream().Engine().Ledger())
	}
}

// spendFingerprint hashes the ledger's exact per-advertiser spend,
// bit for bit, in advertiser order. A recovery that lands on the same
// fingerprint reconstructed every float64 exactly — this is what the
// network soak's parent process compares against journal.Recover.
func spendFingerprint(led *budget.Ledger) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < led.N(); i++ {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(led.ExactSpent(i)))
		h.Write(b[:])
	}
	return h.Sum64()
}

// recoveryFingerprint is spendFingerprint over a recovered journal
// state — the other half of the cross-process bitwise comparison.
func recoveryFingerprint(st *journal.LedgerState) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < int(st.N); i++ {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(st.Spent(i)))
		h.Write(b[:])
	}
	return h.Sum64()
}

// connectOpts bundles connect-mode configuration.
type connectOpts struct {
	addr     string
	conns    int // client connections to open
	pipeline int // concurrent in-flight workers per connection
	auctions int // total auctions across all workers
	keywords int
	resets   int  // budget resets spread through the run (0 = none)
	drain    bool // request a graceful server drain when done
	seed     int64

	metricsAddr string // "" = no HTTP exposition
}

// runConnect opens conns connections, drives auctions through them
// with pipeline concurrent workers each, and prints client-side
// dispositions plus end-to-end latency percentiles. With -drain it
// finishes by requesting a graceful server drain and printing the
// server's final stats as the server reported them over the wire.
func runConnect(o connectOpts) {
	if o.conns < 1 {
		o.conns = 1
	}
	if o.pipeline < 1 {
		o.pipeline = 1
	}
	// With -metrics-addr the client side grows its own registry: the
	// end-to-end RTT histogram is shared across every connection
	// (records are atomic), and the in-flight gauge sums window
	// occupancy at scrape time.
	var rtt *obs.Histogram
	cs := make([]*client.Conn, o.conns)
	if o.metricsAddr != "" {
		reg := obs.NewRegistry()
		rtt = reg.Histogram("ssa_client_rtt_ns", "end-to-end auction round-trip time, client-observed")
		reg.Gauge("ssa_client_inflight", "requests currently occupying pipeline window slots", func() float64 {
			n := 0
			for _, c := range cs {
				if c != nil {
					n += c.Inflight()
				}
			}
			return float64(n)
		})
		defer startMetrics(o.metricsAddr, reg, nil).Close()
	}
	for i := range cs {
		c, err := client.Dial(o.addr, client.Options{Window: o.pipeline, Timeout: 30 * time.Second, RTT: rtt})
		if err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim: connect:", err)
			os.Exit(1)
		}
		cs[i] = c
		defer c.Close()
	}

	workers := o.conns * o.pipeline
	var served, shed, rejected atomic.Int64
	lat := make([][]int64, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		per := o.auctions / workers
		if w < o.auctions%workers {
			per++
		}
		wg.Add(1)
		go func(w, per int) {
			defer wg.Done()
			c := cs[w%o.conns]
			rng := rand.New(rand.NewSource(o.seed + int64(w)))
			durs := make([]int64, 0, per)
			// Worker 0 fences the run with budget resets at even
			// intervals while the other workers keep submitting — the
			// soak's mid-traffic reset-fence pressure.
			resetEvery := 0
			if o.resets > 0 && w == 0 {
				resetEvery = per / (o.resets + 1)
			}
			var out wire.Outcome
			for i := 0; i < per; i++ {
				if resetEvery > 0 && i > 0 && i%resetEvery == 0 && i/resetEvery <= o.resets {
					if err := c.ResetBudgets(); err != nil {
						fmt.Fprintln(os.Stderr, "auctionsim: reset:", err)
						os.Exit(1)
					}
				}
				t0 := time.Now()
				err := c.AuctionInto(rng.Intn(o.keywords), &out)
				durs = append(durs, time.Since(t0).Nanoseconds())
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, client.ErrShed):
					shed.Add(1)
				case errors.Is(err, client.ErrRejected):
					rejected.Add(1)
				default:
					fmt.Fprintln(os.Stderr, "auctionsim: auction:", err)
					os.Exit(1)
				}
			}
			lat[w] = durs
		}(w, per)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, d := range lat {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return time.Duration(all[i])
	}
	fmt.Printf("connect: done auctions=%d served=%d shed=%d rejected=%d conns=%d pipeline=%d elapsed=%v qps=%.0f p50=%v p99=%v\n",
		o.auctions, served.Load(), shed.Load(), rejected.Load(), o.conns, o.pipeline,
		elapsed.Round(time.Millisecond), float64(o.auctions)/elapsed.Seconds(),
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))

	if o.drain {
		st, err := cs[0].Drain()
		if err != nil {
			fmt.Fprintln(os.Stderr, "auctionsim: drain:", err)
			os.Exit(1)
		}
		fmt.Printf("drain: submitted=%d served=%d shed=%d rejected=%d (identity %v) stream-served=%d epoch=%d\n",
			st.Submitted, st.Served, st.Shed, st.Rejected,
			st.Submitted == st.Served+st.Shed+st.Rejected, st.StreamServed, st.Epoch)
	}
}
