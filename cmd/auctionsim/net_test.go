package main

// The network soak re-execs this test binary as one serving process
// plus several connecting processes over loopback — real sockets,
// real process isolation — and checks the two sides of the wire agree
// exactly: the server's connection-layer identity (submitted ==
// served + shed + rejected), the cross-process counter agreement
// (every client-side disposition equals the server's count), and
// bitwise journal recovery (the parent replays the journal the serve
// child wrote and must land on the same spend fingerprint the child
// printed from its in-memory ledger). TestMain dispatches the
// children, same as the crash soak.

import (
	"bufio"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/stream"
	"repro/internal/workload"
)

const (
	netServeEnv    = "AUCTIONSIM_NET_SERVE"   // journal dir: run the serve child
	netConnectEnv  = "AUCTIONSIM_NET_CONNECT" // server addr: run a connect child
	netAuctionsEnv = "AUCTIONSIM_NET_AUCTIONS"
	netResetsEnv   = "AUCTIONSIM_NET_RESETS"
	netDrainEnv    = "AUCTIONSIM_NET_DRAIN"
	netSeedEnv     = "AUCTIONSIM_NET_SEED"

	netN        = 80
	netKeywords = 5
	netResets   = 2
)

// netInstance regenerates the soak population deterministically in
// the serve child — the connect children never see it; only the
// keyword range crosses the wire.
func netInstance() *workload.Instance {
	inst := workload.Generate(rand.New(rand.NewSource(601)), netN, 4, netKeywords)
	workload.AttachBudgets(rand.New(rand.NewSource(602)), inst, 60)
	return inst
}

// netServeChild is the serving process: a budgeted, journaling
// networked server on an ephemeral loopback port. runServe prints the
// listening address (the parent scrapes the port), blocks until a
// connect child drains it, and prints the accounting the parent
// asserts on.
func netServeChild(dir string) {
	w, err := journal.Open(dir, journal.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "net serve child:", err)
		os.Exit(1)
	}
	runServe(netInstance(), serveOpts{
		addr: "127.0.0.1:0", method: engine.MethodRHTALU, pricing: engine.PricingGSP,
		shards: 3, queue: 16, clickSeed: 13, policy: stream.Block,
		budget:  budget.Config{Policy: budget.PolicyHard, RefreshEvery: 8},
		journal: w,
		// The soak parent scrapes this endpoint mid-traffic and, via
		// AUCTIONSIM_METRICS_OUT, reads the post-drain render.
		metricsAddr: "127.0.0.1:0", traceSample: 16,
	})
}

// netConnectChild is one load-generating process.
func netConnectChild(addr string) {
	auctions, _ := strconv.Atoi(os.Getenv(netAuctionsEnv))
	resets, _ := strconv.Atoi(os.Getenv(netResetsEnv))
	seed, _ := strconv.ParseInt(os.Getenv(netSeedEnv), 10, 64)
	runConnect(connectOpts{
		addr: addr, conns: 2, pipeline: 4,
		auctions: auctions, keywords: netKeywords,
		resets: resets, drain: os.Getenv(netDrainEnv) == "1", seed: seed,
	})
}

// scrapeMetric GETs the serve child's /metrics endpoint and returns
// the named series' value — the live half of the soak's telemetry
// checks (the post-drain half reads the AUCTIONSIM_METRICS_OUT dump).
func scrapeMetric(t *testing.T, addr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", addr, err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if v, ok := strings.CutPrefix(sc.Text(), name+" "); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("scrape %s: %v", name, err)
			}
			return f
		}
	}
	t.Fatalf("scrape: metric %s absent", name)
	return 0
}

// connectCounts is one connect child's parsed summary line.
type connectCounts struct {
	auctions, served, shed, rejected int64
}

func runConnectChild(t *testing.T, addr string, auctions, resets int, drain bool, seed int64) (connectCounts, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		netConnectEnv+"="+addr,
		netAuctionsEnv+"="+strconv.Itoa(auctions),
		netResetsEnv+"="+strconv.Itoa(resets),
		netSeedEnv+"="+strconv.FormatInt(seed, 10),
	)
	if drain {
		cmd.Env = append(cmd.Env, netDrainEnv+"=1")
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("connect child: %v\n%s", err, out)
	}
	var cc connectCounts
	var connsN, pipelineN int64
	found := false
	for _, line := range strings.Split(string(out), "\n") {
		if _, err := fmt.Sscanf(line, "connect: done auctions=%d served=%d shed=%d rejected=%d conns=%d pipeline=%d",
			&cc.auctions, &cc.served, &cc.shed, &cc.rejected, &connsN, &pipelineN); err == nil {
			found = true
		}
	}
	if !found {
		t.Fatalf("connect child printed no summary:\n%s", out)
	}
	if cc.auctions != cc.served+cc.shed+cc.rejected {
		t.Fatalf("connect child identity: %+v", cc)
	}
	return cc, string(out)
}

// TestNetworkSoak: one serving process, two concurrent load
// processes, then a third that fences budget resets into live traffic
// and finally drains the server over the wire. Exact accounting must
// survive all three process boundaries.
func TestNetworkSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary and serves real network traffic")
	}
	dir := t.TempDir()

	// The serve child dumps its post-drain registry render here; CI
	// points AUCTIONSIM_METRICS_OUT at the workspace to upload it.
	metricsOut := os.Getenv("AUCTIONSIM_METRICS_OUT")
	if metricsOut == "" {
		metricsOut = filepath.Join(dir, "metrics.prom")
	}

	serve := exec.Command(os.Args[0])
	serve.Env = append(os.Environ(), netServeEnv+"="+dir, "AUCTIONSIM_METRICS_OUT="+metricsOut)
	serve.Stderr = os.Stderr
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill()

	// Scrape the ephemeral wire and metrics addresses from the two
	// listening lines, then keep scanning: the drain summary arrives
	// after the last child exits.
	addrCh := make(chan string, 1)
	metricsCh := make(chan string, 1)
	var serveOut []string
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			serveOut = append(serveOut, line)
			if i := strings.Index(line, "listening addr="); i >= 0 {
				addr := line[i+len("listening addr="):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				ch := addrCh
				if strings.HasPrefix(line, "metrics:") {
					ch = metricsCh
				}
				select {
				case ch <- addr:
				default:
				}
			}
		}
	}()
	var addr, metricsAddr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("serve child never printed its listening address")
	}
	select {
	case metricsAddr = <-metricsCh:
	case <-time.After(30 * time.Second):
		t.Fatal("serve child never printed its metrics address")
	}

	// Two concurrent load processes.
	const loadAuctions = 3000
	var mu sync.Mutex
	var clients []connectCounts
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cc, _ := runConnectChild(t, addr, loadAuctions, 0, false, seed)
			mu.Lock()
			clients = append(clients, cc)
			mu.Unlock()
		}(int64(700 + i*100))
	}
	// First live scrape lands while the load children are submitting.
	scrape1 := scrapeMetric(t, metricsAddr, "ssa_auctions_total")
	wg.Wait()
	if t.Failed() {
		return
	}
	// Second scrape after the first wave: the live counter must be
	// monotone, and it covers at least every auction a client already
	// saw answered (the response happens after the engine's count).
	scrape2 := scrapeMetric(t, metricsAddr, "ssa_auctions_total")
	if scrape2 < scrape1 || scrape2 <= 0 {
		t.Fatalf("live ssa_auctions_total not monotone: %v then %v", scrape1, scrape2)
	}
	var waveServed int64
	for _, c := range clients {
		waveServed += c.served
	}
	if scrape2 < float64(waveServed) {
		t.Fatalf("post-wave ssa_auctions_total %v below the %d auctions clients saw served", scrape2, waveServed)
	}

	// Third process: budget resets fenced into live traffic, then the
	// graceful wire drain.
	const drainAuctions = 1000
	cc, drainOut := runConnectChild(t, addr, drainAuctions, netResets, true, 900)
	clients = append(clients, cc)
	if !strings.Contains(drainOut, "(identity true)") {
		t.Fatalf("drain child's server-final stats flunked the identity:\n%s", drainOut)
	}

	// The drain lets the serve child finish; its exit closes stdout.
	if err := serve.Wait(); err != nil {
		t.Fatalf("serve child exit: %v", err)
	}
	<-scanDone

	// Cross-process counter agreement: the server's connection-layer
	// counts must equal the sum of every client-side disposition.
	var want connectCounts
	for _, c := range clients {
		want.auctions += c.auctions
		want.served += c.served
		want.shed += c.shed
		want.rejected += c.rejected
	}
	var got connectCounts
	var unrouted int64
	var spendbits uint64
	var fpN int
	foundNet, foundBits := false, false
	for _, line := range serveOut {
		if _, err := fmt.Sscanf(line, "net: submitted=%d served=%d shed=%d rejected=%d unrouted=%d",
			&got.auctions, &got.served, &got.shed, &got.rejected, &unrouted); err == nil {
			foundNet = true
		}
		if _, err := fmt.Sscanf(line, "spendbits=%x n=%d", &spendbits, &fpN); err == nil {
			foundBits = true
		}
	}
	if !foundNet || !foundBits {
		t.Fatalf("serve child summary incomplete (net=%v spendbits=%v):\n%s",
			foundNet, foundBits, strings.Join(serveOut, "\n"))
	}
	if got != want {
		t.Fatalf("cross-process counters: server %+v != clients %+v", got, want)
	}
	if got.auctions != int64(2*loadAuctions+drainAuctions) {
		t.Fatalf("submitted %d, want %d", got.auctions, 2*loadAuctions+drainAuctions)
	}

	// The post-drain registry render must reconcile exactly with the
	// printed connection-layer identity: the scraped counters ARE the
	// accounting, not a parallel tally.
	prom, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("serve child wrote no metrics dump: %v", err)
	}
	fromProm := func(name string) int64 {
		for _, line := range strings.Split(string(prom), "\n") {
			if v, ok := strings.CutPrefix(line, name+" "); ok {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					t.Fatalf("metric %s: %v", name, err)
				}
				return int64(f)
			}
		}
		t.Fatalf("metric %s absent from dump:\n%s", name, prom)
		return 0
	}
	promCounts := connectCounts{
		auctions: fromProm("ssa_server_submitted_total"),
		served:   fromProm("ssa_server_served_total"),
		shed:     fromProm("ssa_server_shed_total"),
		rejected: fromProm("ssa_server_rejected_total"),
	}
	if promCounts != got {
		t.Fatalf("scraped counters %+v != printed drain identity %+v", promCounts, got)
	}

	// Bitwise journal recovery: replaying the journal the child wrote
	// must land exactly on the fingerprint of its in-memory ledger.
	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CorruptOffset != -1 {
		t.Fatalf("clean drain recovered corrupt at %d (%s)", rec.CorruptOffset, rec.CorruptReason)
	}
	if rec.State == nil {
		t.Fatal("recovered no state from the soak journal")
	}
	if int(rec.State.Epoch) != 1+netResets {
		t.Fatalf("recovered epoch %d, want %d (boot + %d wire resets)",
			rec.State.Epoch, 1+netResets, netResets)
	}
	if int(rec.State.N) != fpN {
		t.Fatalf("recovered %d advertisers, serve child fingerprinted %d", rec.State.N, fpN)
	}
	if fp := recoveryFingerprint(rec.State); fp != spendbits {
		t.Fatalf("recovered spend fingerprint %016x != serve child's ledger %016x", fp, spendbits)
	}
}
