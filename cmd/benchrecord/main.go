// Command benchrecord turns `go test -bench` output into
// BENCH_ENGINE.json rows. It exists to close the ROADMAP's standing
// loop on benchmark provenance: the CI bench-multicore job runs the
// engine shard sweep on genuinely parallel hardware and uploads its
// bench.out as an artifact, and this tool parses that artifact (or
// any local bench run) and merges the measured rows into the
// checked-in baseline — replacing rows with matching names, appending
// new ones, and preserving hand-written annotations (note, benchtime)
// on rows it updates.
//
// Usage:
//
//	go test -bench 'EngineThroughput' -benchtime=2000x -benchmem -run xxx . | tee bench.out
//	go run ./cmd/benchrecord -bench bench.out -json BENCH_ENGINE.json -date 2026-07-27 -w
//
// Without -w the merged document is printed to stdout for review.
// Benchmark names are recorded without the trailing -GOMAXPROCS
// suffix, matching the baseline's convention. Standard metrics map to
// the baseline's keys (ns/op → ns_per_op, B/op → bytes_per_op,
// allocs/op → allocs_per_op) and the engine's custom metrics keep
// their names with dashes flattened (qps, p99-ns → p99_ns).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Row is one benchmark result in the BENCH_ENGINE.json schema. The
// zero-able alloc columns are pointers so that a measured 0 — the
// whole point of the steady-state rows — still serializes.
type Row struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations,omitempty"`
	NsPerOp     float64  `json:"ns_per_op,omitempty"`
	Qps         *float64 `json:"qps,omitempty"`
	P99Ns       *float64 `json:"p99_ns,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Benchtime   string   `json:"benchtime,omitempty"`
	Note        string   `json:"note,omitempty"`
}

// File is the BENCH_ENGINE.json document.
type File struct {
	Name       string         `json:"name"`
	Date       string         `json:"date,omitempty"`
	Host       map[string]any `json:"host,omitempty"`
	Command    string         `json:"command,omitempty"`
	Workload   string         `json:"workload,omitempty"`
	Acceptance string         `json:"acceptance,omitempty"`
	Results    []Row          `json:"results"`
}

// benchLine matches one `go test -bench` result line: the name (with
// its -P procs suffix), the iteration count, and the metric tail.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*\S)\s*$`)

// parseBench extracts rows from go-test benchmark output. Non-result
// lines (goos/pkg headers, PASS, progress output) are skipped.
func parseBench(r io.Reader) ([]Row, error) {
	var rows []Row
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchrecord: bad iteration count in %q: %v", sc.Text(), err)
		}
		row := Row{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchrecord: odd metric tail in %q", sc.Text())
		}
		for f := 0; f < len(fields); f += 2 {
			val, err := strconv.ParseFloat(fields[f], 64)
			if err != nil {
				return nil, fmt.Errorf("benchrecord: bad metric value %q in %q: %v", fields[f], sc.Text(), err)
			}
			switch unit := fields[f+1]; unit {
			case "ns/op":
				row.NsPerOp = val
			case "B/op":
				row.BytesPerOp = ptr(val)
			case "allocs/op":
				row.AllocsPerOp = ptr(val)
			case "qps":
				row.Qps = ptr(val)
			case "p99-ns", "p99_ns":
				row.P99Ns = ptr(val)
			case "MB/s":
				// throughput column of -benchtime byte benchmarks; the
				// baseline schema has no slot for it — skip.
			default:
				// Unknown custom metric: ignore rather than fail, so the
				// tool survives future ReportMetric additions.
			}
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("benchrecord: no benchmark result lines found")
	}
	return rows, nil
}

func ptr(f float64) *float64 { return &f }

// merge folds the measured rows into doc: rows with matching names
// are updated in place (measured metrics overwrite, hand annotations
// survive, and a metric absent from the new measurement — e.g. no
// -benchmem — keeps its recorded value), new names append in
// measurement order. Returns the counts for the summary line.
func merge(doc *File, rows []Row) (updated, added int) {
	index := make(map[string]int, len(doc.Results))
	for i, r := range doc.Results {
		index[r.Name] = i
	}
	for _, row := range rows {
		i, ok := index[row.Name]
		if !ok {
			doc.Results = append(doc.Results, row)
			index[row.Name] = len(doc.Results) - 1
			added++
			continue
		}
		dst := &doc.Results[i]
		dst.Iterations = row.Iterations
		dst.NsPerOp = row.NsPerOp
		if row.Qps != nil {
			dst.Qps = row.Qps
		}
		if row.P99Ns != nil {
			dst.P99Ns = row.P99Ns
		}
		if row.BytesPerOp != nil {
			dst.BytesPerOp = row.BytesPerOp
		}
		if row.AllocsPerOp != nil {
			dst.AllocsPerOp = row.AllocsPerOp
		}
		updated++
	}
	return updated, added
}

// load reads the baseline document, or starts a fresh one when the
// file does not exist yet.
func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{Name: "engine-baseline"}, nil
	}
	if err != nil {
		return nil, err
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("benchrecord: %s: %v", path, err)
	}
	return &doc, nil
}

func run(benchPath, jsonPath, date, filter string, write bool, stdout, stderr io.Writer) error {
	var in io.Reader
	if benchPath == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rows, err := parseBench(in)
	if err != nil {
		return err
	}
	if filter != "" {
		re, err := regexp.Compile(filter)
		if err != nil {
			return fmt.Errorf("benchrecord: bad -filter: %v", err)
		}
		kept := rows[:0]
		for _, r := range rows {
			if re.MatchString(r.Name) {
				kept = append(kept, r)
			}
		}
		rows = kept
		if len(rows) == 0 {
			return fmt.Errorf("benchrecord: -filter %q matched no rows", filter)
		}
	}
	doc, err := load(jsonPath)
	if err != nil {
		return err
	}
	updated, added := merge(doc, rows)
	if date != "" {
		doc.Date = date
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if write {
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			return err
		}
	} else {
		if _, err := stdout.Write(out); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "benchrecord: %d rows updated, %d added (%d parsed from %s)\n",
		updated, added, len(rows), benchPath)
	return nil
}

func main() {
	var (
		benchPath = flag.String("bench", "bench.out", "go test -bench output to parse (\"-\" for stdin)")
		jsonPath  = flag.String("json", "BENCH_ENGINE.json", "baseline document to merge into")
		date      = flag.String("date", "", "stamp the document's date field (YYYY-MM-DD; empty keeps the recorded date)")
		filter    = flag.String("filter", "", "only merge benchmark names matching this regexp")
		write     = flag.Bool("w", false, "write the merged document back to -json instead of stdout")
	)
	flag.Parse()
	if err := run(*benchPath, *jsonPath, *date, *filter, *write, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
}
