package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineThroughput/n=1000/workers=1-4         	    2000	    200100 ns/op	      5100 qps	    280000 p99-ns	       0 B/op	       0 allocs/op
BenchmarkEngineThroughput/n=1000/workers=4-4         	    2000	     60100 ns/op	     16600 qps	    310000 p99-ns	       0 B/op	       0 allocs/op
BenchmarkMarketSteadyStateBudget/rh-n=1000-4         	     100	    190000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	rows, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("parsed %d rows, want 3", len(rows))
	}
	r := rows[0]
	if r.Name != "BenchmarkEngineThroughput/n=1000/workers=1" {
		t.Fatalf("procs suffix not stripped: %q", r.Name)
	}
	if r.Iterations != 2000 || r.NsPerOp != 200100 {
		t.Fatalf("core metrics wrong: %+v", r)
	}
	if r.Qps == nil || *r.Qps != 5100 || r.P99Ns == nil || *r.P99Ns != 280000 {
		t.Fatalf("custom metrics wrong: %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Fatalf("zero alloc columns must be recorded, not dropped: %+v", r)
	}
	if rows[2].Qps != nil {
		t.Fatalf("market row grew a qps metric: %+v", rows[2])
	}
	if _, err := parseBench(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("result-free input accepted")
	}
}

func TestMergePreservesAnnotations(t *testing.T) {
	doc := &File{
		Name: "engine-baseline",
		Date: "2026-01-01",
		Results: []Row{
			{Name: "BenchmarkEngineThroughput/n=1000/workers=1", Iterations: 1, NsPerOp: 999999,
				Qps: ptr(10), BytesPerOp: ptr(0), AllocsPerOp: ptr(0),
				Note: "recorded on a 1-core host"},
			{Name: "BenchmarkMarketSteadyStateRH/n=500", Iterations: 5, NsPerOp: 5,
				Benchtime: "100x", Note: "untouched"},
		},
	}
	rows, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	updated, added := merge(doc, rows)
	if updated != 1 || added != 2 {
		t.Fatalf("updated=%d added=%d, want 1/2", updated, added)
	}
	got := doc.Results[0]
	if got.NsPerOp != 200100 || *got.Qps != 5100 || got.Iterations != 2000 {
		t.Fatalf("matched row not updated: %+v", got)
	}
	if got.Note != "recorded on a 1-core host" {
		t.Fatalf("hand annotation clobbered: %+v", got)
	}
	if r := doc.Results[1]; r.NsPerOp != 5 || r.Note != "untouched" || r.Benchtime != "100x" {
		t.Fatalf("unmeasured row modified: %+v", r)
	}
	if doc.Results[3].Name != "BenchmarkMarketSteadyStateBudget/rh-n=1000" {
		t.Fatalf("new rows not appended in order: %+v", doc.Results)
	}
}

// TestRunRoundTrip drives the tool end to end against the repository's
// actual BENCH_ENGINE.json schema: parse, merge, write, re-load.
func TestRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.out")
	jsonPath := filepath.Join(dir, "BENCH_ENGINE.json")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	seed := `{
  "name": "engine-baseline",
  "date": "2026-01-01",
  "host": {"goos": "linux"},
  "results": [
    {"name": "BenchmarkEngineThroughput/n=1000/workers=1", "iterations": 1, "ns_per_op": 1, "qps": 1, "p99_ns": 1, "bytes_per_op": 8, "allocs_per_op": 1, "note": "stale"}
  ]
}`
	if err := os.WriteFile(jsonPath, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if err := run(benchPath, jsonPath, "2026-07-27", "EngineThroughput", true, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("merged document is not valid JSON: %v", err)
	}
	if doc.Date != "2026-07-27" || doc.Host["goos"] != "linux" {
		t.Fatalf("document metadata wrong: %+v", doc)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("filter leaked rows: %d results (want workers=1 updated + workers=4 added)", len(doc.Results))
	}
	if doc.Results[0].NsPerOp != 200100 || *doc.Results[0].BytesPerOp != 0 || doc.Results[0].Note != "stale" {
		t.Fatalf("round-trip row wrong: %+v", doc.Results[0])
	}
	if !strings.Contains(stderr.String(), "1 rows updated, 1 added") {
		t.Fatalf("summary line wrong: %q", stderr.String())
	}
}
