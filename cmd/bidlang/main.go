// Command bidlang runs a bidding program (the Section II language)
// against a small advertiser database and prints the resulting Bids
// table — a REPL-style harness for developing strategies before
// submitting them to the auction platform.
//
// The database is described by a plain-text setup block, the program
// by a source file:
//
//	bidlang -program roi.sql -keywords keywords.tsv \
//	        -amtSpent 10 -time 5 -target 2 -query boot
//
// keywords.tsv holds one keyword per line:
//
//	text <TAB> formula <TAB> maxbid <TAB> roi <TAB> bid <TAB> relevance
//
// With no -keywords flag the Figure 4 table (boot/shoe) is used, so
//
//	bidlang -program fig5.sql -query boot
//
// reproduces the paper's worked example end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/sqlmini"
	"repro/internal/table"
)

func main() {
	var (
		programPath = flag.String("program", "", "bidding-program source file (required)")
		keywordPath = flag.String("keywords", "", "keywords TSV (default: the paper's Figure 4 table)")
		amtSpent    = flag.Float64("amtSpent", 10, "amount spent so far")
		timeNow     = flag.Float64("time", 5, "current time")
		target      = flag.Float64("target", 2, "target spending rate")
		query       = flag.String("query", "boot", "keyword of the incoming search query")
		selectQ     = flag.String("select", "", "optional SELECT to run after the program, e.g. 'SELECT text, bid FROM Keywords ORDER BY bid DESC'")
	)
	flag.Parse()
	if *programPath == "" {
		fmt.Fprintln(os.Stderr, "bidlang: -program is required")
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	prog, err := sqlmini.Compile(string(src))
	if err != nil {
		fatal(err)
	}

	db := table.NewDB()
	kw, err := loadKeywords(*keywordPath)
	if err != nil {
		fatal(err)
	}
	db.Add(kw)

	// Relevance: 1 for the query keyword, 0 otherwise (the §V model).
	textCol, _ := kw.Col("text")
	relCol, _ := kw.Col("relevance")
	found := false
	for _, row := range kw.Rows {
		if row[textCol].S == *query {
			row[relCol] = table.F(1)
			found = true
		} else {
			row[relCol] = table.F(0)
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "bidlang: warning: query %q matches no keyword\n", *query)
	}

	// One Bids row per distinct formula in the Keywords table.
	bids := table.New("Bids",
		table.Column{Name: "formula", Kind: table.String},
		table.Column{Name: "value", Kind: table.Float})
	fCol, _ := kw.Col("formula")
	seen := map[string]bool{}
	for _, row := range kw.Rows {
		f := row[fCol].S
		if !seen[f] {
			seen[f] = true
			bids.Insert(table.Row{table.S(f), table.F(0)})
		}
	}
	db.Add(bids)
	db.Add(table.New("Query", table.Column{Name: "kw", Kind: table.String}))

	db.SetScalar("amtSpent", table.F(*amtSpent))
	db.SetScalar("time", table.F(*timeNow))
	db.SetScalar("targetSpendRate", table.F(*target))

	if err := prog.Install(db); err != nil {
		fatal(err)
	}
	qt, _ := db.Table("Query")
	if err := qt.Insert(table.Row{table.S(*query)}); err != nil {
		fatal(err)
	}

	fmt.Println("Keywords after program run:")
	fmt.Println("  text\tformula\tmaxbid\troi\tbid\trelevance")
	for _, row := range kw.Rows {
		fields := make([]string, len(row))
		for i, v := range row {
			fields[i] = v.String()
		}
		fmt.Println("  " + strings.Join(fields, "\t"))
	}
	fmt.Println()
	fmt.Println("Bids table (the program's output):")
	for _, row := range bids.Rows {
		fmt.Printf("  %-30s %s\n", row[0].S, row[1].String())
	}

	if *selectQ != "" {
		rows, err := sqlmini.Query(db, *selectQ)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Printf("%s\n", sqlmini.FormatRows(rows))
	}
}

// loadKeywords reads the TSV, or returns the Figure 4 table when path
// is empty.
func loadKeywords(path string) (*table.Table, error) {
	kw := table.New("Keywords",
		table.Column{Name: "text", Kind: table.String},
		table.Column{Name: "formula", Kind: table.String},
		table.Column{Name: "maxbid", Kind: table.Float},
		table.Column{Name: "roi", Kind: table.Float},
		table.Column{Name: "bid", Kind: table.Float},
		table.Column{Name: "relevance", Kind: table.Float},
	)
	if path == "" {
		kw.Insert(table.Row{table.S("boot"), table.S("Click AND Slot1"),
			table.F(5), table.F(2), table.F(4), table.F(0.8)})
		kw.Insert(table.Row{table.S("shoe"), table.S("Click"),
			table.F(6), table.F(1), table.F(8), table.F(0.2)})
		return kw, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 6 {
			return nil, fmt.Errorf("keywords line %d: want 6 tab-separated fields, got %d", lineNo+1, len(parts))
		}
		nums := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i+2]), 64)
			if err != nil {
				return nil, fmt.Errorf("keywords line %d: bad number %q", lineNo+1, parts[i+2])
			}
			nums[i] = v
		}
		kw.Insert(table.Row{
			table.S(parts[0]), table.S(parts[1]),
			table.F(nums[0]), table.F(nums[1]), table.F(nums[2]), table.F(nums[3]),
		})
	}
	return kw, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bidlang:", err)
	os.Exit(1)
}
