// Command experiments regenerates the paper's evaluation (Section V)
// using the paper's own protocol: a fresh auction market per data
// point, the average wall-clock time per auction over the first T
// auctions (T = 100 for Figure 12, T = 1000 for Figure 13), queries
// at a constant rate with one uniform keyword each, every bidder
// running the ROI-equalizing heuristic, and generalized second
// pricing.
//
// Usage:
//
//	experiments -fig 12            # LP, H, RH, RHTALU vs n (Figure 12)
//	experiments -fig 13            # RH vs RHTALU at large n (Figure 13)
//	experiments -fig 12 -auctions 50 -lpmax 250 -sizes 500,1000
//	experiments -fig 0             # both figures
//	experiments -broad             # broad-match revenue/efficiency sweep (CSV)
//	experiments -broad -bn 1000 -auctions 30000 -zipf 1.3 -threshold 0.4
//
// Output is a tab-separated table: one row per (method, n) with the
// average milliseconds per auction — the same series the paper plots.
//
// -broad runs a different study: the probabilistic broad-match
// router's revenue/efficiency trade-off. One Zipf-skewed free-text
// workload over the bigram keyword catalog is served repeatedly —
// exact routing vs broad match, each crossed with a ladder of reserve
// prices and (for broad) squashing exponents 1 and 0.5 — and each
// configuration emits one CSV row with served/unrouted/overmatched
// counts, revenue, clicks, fill, and a welfare proxy (total
// advertiser value gained, Σ GainedKw). Populations and match draws
// are regenerated from the same seeds per row, so rows differ only in
// the knobs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/broadmatch"
	"repro/internal/engine"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate: 12, 13, or 0 for both")
		auctions = flag.Int("auctions", 0, "auctions per data point (0 = paper default: 100 for fig 12, 1000 for fig 13)")
		sizes    = flag.String("sizes", "", "comma-separated advertiser counts (default: paper's sweep)")
		lpmax    = flag.Int("lpmax", 500, "largest n at which the LP method runs (our dense simplex is far slower than GLPK)")
		lpcap    = flag.Int("lpauctions", 10, "auctions per LP data point (the LP is orders of magnitude slower)")
		slots    = flag.Int("slots", workload.DefaultSlots, "number of advertising slots (k)")
		keywords = flag.Int("keywords", workload.DefaultKeywords, "number of keywords")
		seed     = flag.Int64("seed", 42, "workload seed")
		broad    = flag.Bool("broad", false, "run the broad-match revenue/efficiency sweep instead of a figure (CSV output)")
		broadN   = flag.Int("bn", 1000, "broad sweep: number of advertisers")
		zipfS    = flag.Float64("zipf", 1.2, "broad sweep: Zipf token-popularity exponent (> 1; 0 = uniform)")
		thresh   = flag.Float64("threshold", 0.4, "broad sweep: broad-match relevance threshold in (0, 1]")
	)
	flag.Parse()

	if *broad {
		if *thresh <= 0 || *thresh > 1 {
			fmt.Fprintf(os.Stderr, "experiments: -threshold wants a relevance threshold in (0, 1], got %v\n", *thresh)
			os.Exit(2)
		}
		q := *auctions
		if q == 0 {
			q = 20000
		}
		broadSweep(*broadN, q, *slots, *keywords, *seed, *zipfS, *thresh)
		return
	}

	switch *fig {
	case 12:
		fig12(*auctions, parseSizes(*sizes), *lpmax, *lpcap, *slots, *keywords, *seed)
	case 13:
		fig13(*auctions, parseSizes(*sizes), *slots, *keywords, *seed)
	case 0:
		fig12(*auctions, parseSizes(*sizes), *lpmax, *lpcap, *slots, *keywords, *seed)
		fmt.Println()
		fig13(0, nil, *slots, *keywords, *seed)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %d (want 12, 13, or 0)\n", *fig)
		os.Exit(2)
	}
}

func parseSizes(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// measure runs one data point: a fresh market with n advertisers, T
// auctions from a cold start, returning milliseconds per auction.
func measure(method strategy.Method, n, T, slots, keywords int, seed int64) float64 {
	inst := workload.Generate(newRand(seed), n, slots, keywords)
	queries := inst.Queries(newRand(seed+1), T)
	w := strategy.NewWorld(inst, method, seed+2)
	start := time.Now()
	for _, q := range queries {
		w.RunAuction(q)
	}
	return float64(time.Since(start).Milliseconds()) / float64(T)
}

func fig12(T int, sizes []int, lpmax, lpAuctions, slots, keywords int, seed int64) {
	if T == 0 {
		T = 100 // the paper averages over 100 auctions in Figure 12
	}
	if sizes == nil {
		sizes = []int{500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000}
	}
	fmt.Println("# Figure 12: winner-determination performance")
	fmt.Printf("# avg time per auction (ms) over %d auctions, k=%d slots, %d keywords\n", T, slots, keywords)
	fmt.Printf("# LP capped at n<=%d with %d auctions per point (dense simplex; see DESIGN.md)\n", lpmax, lpAuctions)
	fmt.Println("method\tn\tms_per_auction")
	// The LP sweep has its own, smaller size ladder: the dense simplex
	// grows fast in n, and the paper's point — LP an order of
	// magnitude above H — is visible long before n=500.
	lpSizes := []int{100, 200, 300, 400, 500, 750, 1000}
	for _, n := range lpSizes {
		if n > lpmax {
			continue
		}
		ms := measure(strategy.MethodLP, n, lpAuctions, slots, keywords, seed)
		fmt.Printf("%v\t%d\t%.3f\n", strategy.MethodLP, n, ms)
	}
	for _, m := range []strategy.Method{strategy.MethodH, strategy.MethodRH, strategy.MethodRHTALU} {
		for _, n := range sizes {
			ms := measure(m, n, T, slots, keywords, seed)
			fmt.Printf("%v\t%d\t%.3f\n", m, n, ms)
		}
	}
}

// broadSweep serves one Zipf free-text workload through every
// router × reserve × squash configuration and emits a CSV row per
// run. Welfare is the advertisers' side of the ledger — total value
// gained from clicks — so the squashing/reserve trade-off (provider
// revenue vs allocation efficiency) is visible in one table.
func broadSweep(n, queries, slots, keywords int, seed int64, zipfS, threshold float64) {
	names := workload.BigramKeywordNames(keywords)
	texts := workload.TextQueries(newRand(seed+1), keywords, queries, 3, zipfS)
	fmt.Printf("# broad-match sweep: n=%d queries=%d k=%d keywords=%d zipf=%v threshold=%v method=%v\n",
		n, queries, slots, keywords, zipfS, threshold, engine.MethodRHTALU)
	fmt.Println("# exact = threshold 1 (only full-relevance matches route, the exact-match mechanism);")
	fmt.Println("# broad = the configured threshold (partial matches admitted probabilistically)")
	fmt.Println("router,threshold,squash,reserve,queries,served,unrouted,overmatched,revenue,clicks,fill_pct,welfare")
	run := func(router string, th, squash, reserve float64) {
		// A fresh deterministic population per row: engines mutate
		// advertiser strategy state, and rows must differ only in knobs.
		inst := workload.Generate(newRand(seed), n, slots, keywords)
		cfg := engine.Config{
			Method: engine.MethodRHTALU, ClickSeed: seed + 2,
			KeywordNames: names, Reserve: reserve,
			Broadmatch: broadmatch.Config{Enabled: true, Threshold: th, Squash: squash, Seed: seed + 3},
		}
		e := engine.New(inst, cfg)
		st := e.ServeText(texts)
		welfare := 0.0
		for q := 0; q < keywords; q++ {
			acct := e.KeywordMarket(q).Accounting()
			for i := 0; i < inst.N; i++ {
				welfare += acct.GainedKw[i][q]
			}
		}
		e.Close()
		fmt.Printf("%s,%g,%g,%g,%d,%d,%d,%d,%.0f,%d,%.1f,%.0f\n",
			router, th, squash, reserve, len(texts), st.Auctions, st.Unrouted, st.Overmatched,
			st.Revenue, st.Clicks, 100*float64(st.Filled)/float64(st.TotalSlots), welfare)
	}
	// Reserve ladder in bid units: the workload's equilibrium prices sit
	// in the tens, so the low rungs floor thin slots while the top rung
	// visibly filters.
	reserves := []float64{0, 10, 25, 50}
	for _, r := range reserves {
		run("exact", 1, 1, r)
	}
	for _, sq := range []float64{1, 0.5} {
		for _, r := range reserves {
			run("broad", threshold, sq, r)
		}
	}
}

func fig13(T int, sizes []int, slots, keywords int, seed int64) {
	if T == 0 {
		T = 1000 // the paper averages over 1000 auctions in Figure 13
	}
	if sizes == nil {
		sizes = []int{2000, 4000, 6000, 8000, 10000, 12000, 14000, 16000, 18000, 20000}
	}
	fmt.Println("# Figure 13: reducing program evaluation")
	fmt.Printf("# avg time per auction (ms) over %d auctions, k=%d slots, %d keywords\n", T, slots, keywords)
	fmt.Println("method\tn\tms_per_auction")
	for _, m := range []strategy.Method{strategy.MethodRH, strategy.MethodRHTALU} {
		for _, n := range sizes {
			ms := measure(m, n, T, slots, keywords, seed)
			fmt.Printf("%v\t%d\t%.3f\n", m, n, ms)
		}
	}
}
