// Command experiments regenerates the paper's evaluation (Section V)
// using the paper's own protocol: a fresh auction market per data
// point, the average wall-clock time per auction over the first T
// auctions (T = 100 for Figure 12, T = 1000 for Figure 13), queries
// at a constant rate with one uniform keyword each, every bidder
// running the ROI-equalizing heuristic, and generalized second
// pricing.
//
// Usage:
//
//	experiments -fig 12            # LP, H, RH, RHTALU vs n (Figure 12)
//	experiments -fig 13            # RH vs RHTALU at large n (Figure 13)
//	experiments -fig 12 -auctions 50 -lpmax 250 -sizes 500,1000
//	experiments -fig 0             # both figures
//
// Output is a tab-separated table: one row per (method, n) with the
// average milliseconds per auction — the same series the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/strategy"
	"repro/internal/workload"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate: 12, 13, or 0 for both")
		auctions = flag.Int("auctions", 0, "auctions per data point (0 = paper default: 100 for fig 12, 1000 for fig 13)")
		sizes    = flag.String("sizes", "", "comma-separated advertiser counts (default: paper's sweep)")
		lpmax    = flag.Int("lpmax", 500, "largest n at which the LP method runs (our dense simplex is far slower than GLPK)")
		lpcap    = flag.Int("lpauctions", 10, "auctions per LP data point (the LP is orders of magnitude slower)")
		slots    = flag.Int("slots", workload.DefaultSlots, "number of advertising slots (k)")
		keywords = flag.Int("keywords", workload.DefaultKeywords, "number of keywords")
		seed     = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	switch *fig {
	case 12:
		fig12(*auctions, parseSizes(*sizes), *lpmax, *lpcap, *slots, *keywords, *seed)
	case 13:
		fig13(*auctions, parseSizes(*sizes), *slots, *keywords, *seed)
	case 0:
		fig12(*auctions, parseSizes(*sizes), *lpmax, *lpcap, *slots, *keywords, *seed)
		fmt.Println()
		fig13(0, nil, *slots, *keywords, *seed)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %d (want 12, 13, or 0)\n", *fig)
		os.Exit(2)
	}
}

func parseSizes(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// measure runs one data point: a fresh market with n advertisers, T
// auctions from a cold start, returning milliseconds per auction.
func measure(method strategy.Method, n, T, slots, keywords int, seed int64) float64 {
	inst := workload.Generate(newRand(seed), n, slots, keywords)
	queries := inst.Queries(newRand(seed+1), T)
	w := strategy.NewWorld(inst, method, seed+2)
	start := time.Now()
	for _, q := range queries {
		w.RunAuction(q)
	}
	return float64(time.Since(start).Milliseconds()) / float64(T)
}

func fig12(T int, sizes []int, lpmax, lpAuctions, slots, keywords int, seed int64) {
	if T == 0 {
		T = 100 // the paper averages over 100 auctions in Figure 12
	}
	if sizes == nil {
		sizes = []int{500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000}
	}
	fmt.Println("# Figure 12: winner-determination performance")
	fmt.Printf("# avg time per auction (ms) over %d auctions, k=%d slots, %d keywords\n", T, slots, keywords)
	fmt.Printf("# LP capped at n<=%d with %d auctions per point (dense simplex; see DESIGN.md)\n", lpmax, lpAuctions)
	fmt.Println("method\tn\tms_per_auction")
	// The LP sweep has its own, smaller size ladder: the dense simplex
	// grows fast in n, and the paper's point — LP an order of
	// magnitude above H — is visible long before n=500.
	lpSizes := []int{100, 200, 300, 400, 500, 750, 1000}
	for _, n := range lpSizes {
		if n > lpmax {
			continue
		}
		ms := measure(strategy.MethodLP, n, lpAuctions, slots, keywords, seed)
		fmt.Printf("%v\t%d\t%.3f\n", strategy.MethodLP, n, ms)
	}
	for _, m := range []strategy.Method{strategy.MethodH, strategy.MethodRH, strategy.MethodRHTALU} {
		for _, n := range sizes {
			ms := measure(m, n, T, slots, keywords, seed)
			fmt.Printf("%v\t%d\t%.3f\n", m, n, ms)
		}
	}
}

func fig13(T int, sizes []int, slots, keywords int, seed int64) {
	if T == 0 {
		T = 1000 // the paper averages over 1000 auctions in Figure 13
	}
	if sizes == nil {
		sizes = []int{2000, 4000, 6000, 8000, 10000, 12000, 14000, 16000, 18000, 20000}
	}
	fmt.Println("# Figure 13: reducing program evaluation")
	fmt.Printf("# avg time per auction (ms) over %d auctions, k=%d slots, %d keywords\n", T, slots, keywords)
	fmt.Println("method\tn\tms_per_auction")
	for _, m := range []strategy.Method{strategy.MethodRH, strategy.MethodRHTALU} {
		for _, n := range sizes {
			ms := measure(m, n, T, slots, keywords, seed)
			fmt.Printf("%v\t%d\t%.3f\n", m, n, ms)
		}
	}
}
