package main

import "math/rand"

// newRand returns a seeded PRNG; a helper so every seed derivation in
// the harness reads the same way.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
