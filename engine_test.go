package ssa

import (
	"math/rand"
	"testing"
)

// TestEngineMatchesSequentialWorld is the public-API form of the
// engine's sequential-equivalence contract, meant to run under -race:
// Engine.Serve over a shuffled query stream, on several shard counts,
// must produce for every keyword exactly the outcome sequence of a
// sequential SimWorld fed that keyword's subsequence with the
// matching KeywordClickSeed — allocations, prices, clicks, and
// revenue, bit for bit.
func TestEngineMatchesSequentialWorld(t *testing.T) {
	for _, method := range []SimMethod{SimRH, SimRHTALU} {
		inst := GenerateInstance(21, 100, 6, 8)
		queries := QueryStream(inst, 22, 1000)
		const clickSeed = 33

		for _, shards := range []int{1, 3, 8} {
			shuffled := append([]int(nil), queries...)
			rand.New(rand.NewSource(int64(shards))).Shuffle(len(shuffled), func(a, b int) {
				shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
			})

			e := NewEngine(inst, EngineConfig{Shards: shards, QueueDepth: 16, Method: method, ClickSeed: clickSeed})
			outs, st := e.ServeOutcomes(shuffled)
			if st.Auctions != len(shuffled) {
				t.Fatalf("method=%v shards=%d: served %d of %d auctions", method, shards, st.Auctions, len(shuffled))
			}

			worlds := make([]*SimWorld, inst.Keywords)
			for q := range worlds {
				worlds[q] = NewSimWorld(inst, method, KeywordClickSeed(clickSeed, q))
			}
			for idx, got := range outs {
				q := shuffled[idx]
				want := worlds[q].RunAuction(q)
				if got.Query != q || got.Revenue != want.Revenue {
					t.Fatalf("method=%v shards=%d auction=%d kw=%d: engine revenue %g, world %g",
						method, shards, idx, q, got.Revenue, want.Revenue)
				}
				for j := range want.AdvOf {
					if got.AdvOf[j] != want.AdvOf[j] ||
						got.PricePerClick[j] != want.PricePerClick[j] ||
						got.Clicked[j] != want.Clicked[j] {
						t.Fatalf("method=%v shards=%d auction=%d kw=%d slot=%d: engine %+v != world %+v",
							method, shards, idx, q, j, got, want)
					}
				}
			}
			// Final bid state must match too: the engine is the world,
			// not merely an outcome-compatible approximation.
			for q := 0; q < inst.Keywords; q++ {
				for i := 0; i < inst.N; i++ {
					if got, want := e.KeywordMarket(q).Bid(i, q), worlds[q].Bid(i, q); got != want {
						t.Fatalf("method=%v shards=%d: bid[%d][%d] engine %d, world %d",
							method, shards, i, q, got, want)
					}
				}
			}
		}
	}
}
