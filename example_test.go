package ssa_test

import (
	"fmt"
	"log"

	ssa "repro"
)

// Example runs a complete multi-feature auction: two advertisers with
// different outcome preferences, winner determination by the paper's
// reduced Hungarian algorithm, and the optimal expected revenue.
func Example() {
	model := ssa.NewModel(2, 2)
	model.Click[0][0], model.Click[0][1] = 0.5, 0.25 // brand
	model.Click[1][0], model.Click[1][1] = 0.5, 0.25 // shop
	model.Purchase[1][0], model.Purchase[1][1] = 0.2, 0.2

	auction := &ssa.Auction{
		Slots: 2,
		Probs: model,
		Advertisers: []ssa.Advertiser{
			// Pays for presence at the top, clicked or not.
			{ID: "brand", Bids: ssa.MustParseBids("Slot1 : 8")},
			// Pays per click and a premium per purchase.
			{ID: "shop", Bids: ssa.MustParseBids("Click : 4\nPurchase : 30")},
		},
	}
	res, err := auction.Determine(ssa.RH)
	if err != nil {
		log.Fatal(err)
	}
	for j, i := range res.AdvOf {
		fmt.Printf("slot %d: %s\n", j+1, auction.Advertisers[i].ID)
	}
	fmt.Printf("expected revenue: %.2f\n", res.ExpectedRevenue)
	// Output:
	// slot 1: brand
	// slot 2: shop
	// expected revenue: 10.50
}

// ExampleParseBids shows the paper's Figure 3 Bids table: the
// advertiser owes the sum of all true rows, so a purchase from slot 1
// costs him 7.
func ExampleParseBids() {
	bids, err := ssa.ParseBids(`
Purchase : 5
Slot1 OR Slot2 : 2
`)
	if err != nil {
		log.Fatal(err)
	}
	both := ssa.Outcome{Slot: 1, Clicked: true, Purchased: true}
	fmt.Println(bids.Payment(both))
	// Output:
	// 7
}

// ExampleOneDependent shows the Theorem 2 / Theorem 3 boundary: bids
// on one's own placement are tractable, bids relating two
// advertisers' placements are not.
func ExampleOneDependent() {
	mine := ssa.MustParseFormula("Click AND (Slot1 OR Slot2)")
	rivalry := ssa.MustParseFormula("Slot1 AND Adv(rival)@2")
	fmt.Println(ssa.OneDependent(mine), ssa.OneDependent(rivalry))
	// Output:
	// true false
}

// ExampleCompileProgram compiles and runs a miniature bidding
// program: a trigger that raises a bid whenever a query arrives.
func ExampleCompileProgram() {
	db := ssa.NewDB()
	kw := ssa.NewTable("Keywords",
		ssa.Column{Name: "text", Kind: ssa.String},
		ssa.Column{Name: "bid", Kind: ssa.Float})
	if err := kw.Insert(ssa.Row{ssa.S("boot"), ssa.F(3)}); err != nil {
		log.Fatal(err)
	}
	db.Add(kw)
	db.Add(ssa.NewTable("Query", ssa.Column{Name: "kw", Kind: ssa.String}))

	prog, err := ssa.CompileProgram(`
CREATE TRIGGER up AFTER INSERT ON Query
{
  UPDATE Keywords SET bid = bid + 1 WHERE text = NEW.kw;
}`)
	if err != nil {
		log.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		log.Fatal(err)
	}
	q, _ := db.Table("Query")
	for i := 0; i < 3; i++ {
		if err := q.Insert(ssa.Row{ssa.S("boot")}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(kw.Rows[0][1])
	// Output:
	// 6
}

// ExampleNewSimWorld runs a tiny Section V market under the
// threshold-algorithm engine and reports provider revenue.
func ExampleNewSimWorld() {
	inst := ssa.GenerateInstance(7, 100, 5, 4)
	world := ssa.NewSimWorld(inst, ssa.SimRHTALU, 11)
	var revenue float64
	for _, q := range ssa.QueryStream(inst, 13, 500) {
		revenue += world.RunAuction(q).Revenue
	}
	fmt.Println(revenue > 0, world.Auctions())
	// Output:
	// true 500
}
