// brandawareness demonstrates the Section I-A scenarios that
// single-feature auctions cannot express:
//
//   - an advertiser who wants the topmost slot or nothing at all
//     ("perceived market leader");
//   - an advertiser who wants top or bottom but not the middle;
//   - and how the engine rejects the tempting next step — bidding on
//     being placed above a named competitor — because winner
//     determination for such 2-dependent bids is APX-hard (Theorem 3).
//
// Run:  go run ./examples/brandawareness
package main

import (
	"errors"
	"fmt"
	"log"

	ssa "repro"
)

func main() {
	const slots = 4
	const n = 5

	model := ssa.NewModel(n, slots)
	for i := 0; i < n; i++ {
		for j := 0; j < slots; j++ {
			// Click probability decays with position, differently per
			// advertiser (non-separable).
			model.Click[i][j] = 0.8/float64(j+1) - 0.05*float64(i%3)
			model.Purchase[i][j] = 0.2
		}
	}

	auction := &ssa.Auction{
		Slots: slots,
		Probs: model,
		Advertisers: []ssa.Advertiser{
			// Leader wants slot 1 or nothing: a large bid on Slot1 only.
			// (If it can't have the top, it prefers to stay out — and
			// the engine will happily leave it out.)
			{ID: "leader", Bids: ssa.MustParseBids(`Slot1 : 55`)},
			// Edge-seeker values top or bottom, but NOT the middle.
			{ID: "edges", Bids: ssa.MustParseBids(`
				Slot1 OR Slot4 : 25
				Click AND (Slot1 OR Slot4) : 10`)},
			// Three ordinary click bidders.
			{ID: "clicker-a", Bids: ssa.MustParseBids(`Click : 30`)},
			{ID: "clicker-b", Bids: ssa.MustParseBids(`Click : 24`)},
			{ID: "clicker-c", Bids: ssa.MustParseBids(`Click : 18`)},
		},
	}

	res, err := auction.Determine(ssa.RH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-feature allocation (expected revenue %.2f):\n", res.ExpectedRevenue)
	for j, i := range res.AdvOf {
		name := "(empty)"
		if i >= 0 {
			name = auction.Advertisers[i].ID
		}
		fmt.Printf("  slot %d: %s\n", j+1, name)
	}
	fmt.Println()
	for i := range auction.Advertisers {
		if res.SlotOf[i] < 0 {
			fmt.Printf("  %s stayed out (its conditional preferences were not worth a slot)\n",
				auction.Advertisers[i].ID)
		}
	}

	// Cross-check against exhaustive enumeration: the reduced graph
	// provably contains an optimal matching.
	brute, err := auction.Determine(ssa.Brute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbrute-force expected revenue agrees: %.2f\n", brute.ExpectedRevenue)

	// The Theorem 3 boundary: "pay 40 if I appear above clicker-a" is
	// a 2-dependent event; the tractable engine must refuse it.
	rival := auction.Advertisers
	rival[1].Bids = append(rival[1].Bids, ssa.Bid{
		F:     ssa.MustParseFormula("Adv(clicker-a)@2 AND Slot1"),
		Value: 40,
	})
	_, err = auction.Determine(ssa.RH)
	switch {
	case errors.Is(err, ssa.ErrNotOneDependent):
		fmt.Printf("\nbidding on a rival's position was rejected, as Theorem 3 requires:\n  %v\n", err)
	case err == nil:
		log.Fatal("engine accepted a 2-dependent bid; this is a bug")
	default:
		log.Fatal(err)
	}
}
