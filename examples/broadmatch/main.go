// Broad match: probabilistic routing of multi-token queries to
// scored keyword markets, with reserve prices and click squashing.
//
// The paper's serving engine maps each query to exactly one keyword
// market. Broad match (after "GSP with Probabilistic Broad Match" and
// the Feldman–Muthukrishnan survey) relaxes that: a free-text query
// fans out to every keyword whose name scores at least a relevance
// threshold under subset scoring, a seeded per-(query, keyword) draw
// admits each candidate with probability equal to its relevance, the
// highest-relevance admitted market serves the impression — bids
// squashed by relevance^Squash, reserve-filtered, prices floored at
// the reserve — and the matched-but-unserved rest are counted as
// overmatched. The drained accounting identity becomes
//
//	submitted == served + shed + unrouted + overmatched.
//
// Run:  go run ./examples/broadmatch
package main

import (
	"fmt"

	ssa "repro"
)

func main() {
	// A Section V population over a bigram keyword catalog: keyword q
	// is named "t<q> t<q+1>", so adjacent keywords share a token and
	// fractional relevances (the broad-match regime) are reachable.
	inst := ssa.GenerateInstance(1, 400, ssa.DefaultSlots, ssa.DefaultKeywords)
	names := ssa.BigramKeywordNames(ssa.DefaultKeywords)

	// A standalone router first, to show the mechanism: "t3" is only
	// half-relevant to the markets named "t2 t3" and "t3 t4", so each
	// admits it with probability 1/2 — deterministically, from a seeded
	// hash of (query, keyword), so reruns replay identically.
	router := ssa.NewBroadmatchRouter(names, ssa.BroadmatchConfig{
		Enabled: true, Threshold: 0.4, Squash: 0.5, Seed: 7,
	})
	for _, q := range []string{"t3 t4", "t3", "t9 t9 t2", "no such tokens"} {
		if best, matched, ok := router.RouteBest(q); ok {
			fmt.Printf("%-16q -> keyword %d (relevance %.2f, weight %.2f) of %d admitted\n",
				q, best.Keyword, best.Relevance, best.Weight, matched)
		} else {
			fmt.Printf("%-16q -> unrouted\n", q)
		}
	}

	// The same router inside a streaming server: free-text queries with
	// Zipf token skew, a moderate reserve, and squashing enabled.
	srv := ssa.NewStreamServer(inst, ssa.StreamConfig{
		Engine: ssa.EngineConfig{
			Method:       ssa.SimRHTALU,
			ClickSeed:    7,
			KeywordNames: names,
			Broadmatch: ssa.BroadmatchConfig{
				Enabled: true, Threshold: 0.4, Squash: 0.5, Seed: 7,
			},
			Reserve: 10,
		},
	})
	for _, q := range ssa.TextQueries(2, ssa.DefaultKeywords, 10000, 3, 1.2) {
		srv.SubmitText(q)
	}
	st := srv.Close()

	fmt.Printf("\nserved %d of %d queries (unrouted %d, overmatched %d)\n",
		st.Served, st.Submitted, st.Unrouted, st.Overmatched)
	fmt.Printf("identity: submitted %d == served %d + shed %d + unrouted %d + overmatched %d (%v)\n",
		st.Submitted, st.Served, st.Shed, st.Unrouted, st.Overmatched,
		st.Submitted == st.Served+st.Shed+st.Unrouted+st.Overmatched)
	fmt.Printf("revenue %.0f over %d clicks at reserve 10 with squash 0.5\n",
		st.Revenue, st.Clicks)
}
