// budget ties the paper's bidding language to the serving engine's
// cross-keyword budget subsystem: the same daily-budget constraint is
// expressed twice — once as the Section II budget-guard program (a
// trigger that zeroes the advertiser's bids when amtSpent reaches the
// budget, the construction the paper's introduction names) and once
// as the engine's Hard budget policy over the spend ledger — and the
// two are driven over the same auction trace, asserting that they cut
// the advertiser off at exactly the same auction.
//
// The population is a single-keyword market where advertiser 0
// dominates (value 50 against competitors at 10), so it holds the top
// slot every auction until its budget gate fires; with one keyword
// the ledger's spend estimate is exact, making the serving-side gate
// fire at precisely the program's threshold.
//
// Run:  go run ./examples/budget
package main

import (
	"fmt"
	"log"

	ssa "repro"
)

// The budget guard in the bidding language: the "daily budget"
// pre-defined parameter of classical platforms becomes a one-line
// trigger (the same program pinned by the sqlmini tests).
const budgetGuard = `
CREATE TRIGGER spendcap AFTER INSERT ON Query
{
  IF amtSpent >= budget THEN
    UPDATE Keywords SET bid = 0;
  ENDIF;
}
`

const dailyBudget = 60.0

func main() {
	// A hand-built single-keyword Section V-style population.
	// Advertiser 0: value 50, always underspending (target 50 per
	// auction is unreachable), so its bid only climbs — it wins the
	// top slot every auction it is allowed to enter.
	inst := &ssa.SimInstance{
		N: 3, Slots: 2, Keywords: 1,
		Value:      [][]int{{50}, {10}, {10}},
		InitialBid: [][]int{{25}, {5}, {5}},
		Target:     []int{50, 10, 10},
		ClickProb: [][]float64{
			{0.90, 0.80},
			{0.85, 0.75},
			{0.82, 0.72},
		},
		Budget: []float64{dailyBudget, 0, 0}, // competitors unlimited
	}

	// Serving side: the engine's Hard policy over the spend ledger.
	eng := ssa.NewEngine(inst, ssa.EngineConfig{
		Shards:    1,
		Method:    ssa.SimRH,
		ClickSeed: 7,
		Budget:    ssa.BudgetConfig{Policy: ssa.PolicyHard, RefreshEvery: 1},
	})

	// Language side: the advertiser's private database running the
	// budget-guard program, with the provider-maintained amtSpent
	// pushed in before every auction — the engine's ledger IS that
	// provider state.
	db := ssa.NewDB()
	kw := ssa.NewTable("Keywords",
		ssa.Column{Name: "text", Kind: ssa.String},
		ssa.Column{Name: "bid", Kind: ssa.Float})
	if err := kw.Insert(ssa.Row{ssa.S("boot"), ssa.F(25)}); err != nil {
		log.Fatal(err)
	}
	db.Add(kw)
	db.Add(ssa.NewTable("Query", ssa.Column{Name: "kw", Kind: ssa.String}))
	db.SetScalar("budget", ssa.F(dailyBudget))
	prog, err := ssa.CompileProgram(budgetGuard)
	if err != nil {
		log.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		log.Fatal(err)
	}
	queryTable, _ := db.Table("Query")

	fmt.Printf("daily budget %.0f, hard policy vs the budget-guard program\n", dailyBudget)
	fmt.Println("auction\tspent\tprogram-bid\tengine-serves")

	market := eng.KeywordMarket(0)
	programCutAt, engineCutAt := -1, -1
	for a := 0; a < 40; a++ {
		// The provider pushes the maintained spend into the program's
		// world, then the query arrives and the trigger fires.
		spent := market.Accounting().SpentTotal[0]
		db.SetScalar("amtSpent", ssa.F(spent))
		if err := queryTable.Insert(ssa.Row{ssa.S("boot")}); err != nil {
			log.Fatal(err)
		}
		programLive := kw.Rows[0][1].F > 0
		if !programLive && programCutAt < 0 {
			programCutAt = a
		}

		// The engine serves the same auction under the Hard policy.
		outs, _ := eng.ServeOutcomes([]int{0})
		engineServed := false
		for _, adv := range outs[0].AdvOf {
			if adv == 0 {
				engineServed = true
			}
		}
		if !engineServed && engineCutAt < 0 {
			engineCutAt = a
		}

		fmt.Printf("%d\t%.1f\t%v\t%v\n", a, spent, programLive, engineServed)

		// The two formulations must agree auction for auction: the
		// program zeroes its bids at exactly the spend threshold where
		// the engine's gate stops serving the advertiser.
		if programLive != engineServed {
			log.Fatalf("auction %d: program live=%v but engine served=%v (spent %.2f of %.0f)",
				a, programLive, engineServed, spent, dailyBudget)
		}
	}
	if programCutAt < 0 || engineCutAt < 0 {
		log.Fatalf("budget never bound (program cut at %d, engine at %d) — trace too short", programCutAt, engineCutAt)
	}

	// And the ledger settles exactly to the market accounting.
	led := eng.Ledger()
	if exact, acct := led.ExactSpent(0), market.Accounting().SpentTotal[0]; exact != acct {
		log.Fatalf("ledger %v != accounting %v", exact, acct)
	}
	fmt.Printf("\nboth formulations cut advertiser 0 off at auction %d with %.2f spent (cap %.0f)\n",
		engineCutAt, led.ExactSpent(0), dailyBudget)
	fmt.Printf("ledger settled exactly: ExactSpent == accounting == %.2f; exhausted=%v\n",
		led.ExactSpent(0), led.Exhausted(0))
}
