// durability walks the spend journal through the lifecycle the
// crash-recovery tests pin: a budgeted engine journals every charge,
// the process "dies" mid-run without flushing (the engine is simply
// abandoned, exactly what SIGKILL leaves behind), and recovery
// reconstructs the ledger from snapshot + tail. The walk shows the
// two halves of the durability contract —
//
//   - nothing the journal appended is lost, and what was still
//     batched in the lanes is bounded by the same K·R·P argument
//     that bounds snapshot staleness (K lanes × RefreshEvery
//     auctions × the maximum per-auction charge), so recovered
//     spend is within K·R·P of the true pre-crash spend;
//
//   - a restarted engine resumes from the recovered state (exhausted
//     advertisers stay excluded), a budget reset opens the next
//     "day" as a journaled epoch re-admitting them, and a graceful
//     close recovers bitwise — byte-for-byte the ledger it flushed.
//
// Run:  go run ./examples/durability
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	ssa "repro"
)

func main() {
	inst := ssa.GenerateInstance(1, 400, ssa.DefaultSlots, ssa.DefaultKeywords)
	ssa.AttachBudgets(2, inst, 150) // caps bind well inside the run

	dir, err := os.MkdirTemp("", "ssa-journal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	bcfg := ssa.BudgetConfig{Policy: ssa.PolicyHard, RefreshEvery: 32}

	// Day 1: serve an open-world stream with the journal attached,
	// then crash mid-traffic. The streaming server is abandoned
	// without Close, so the drain flush never happens — whatever each
	// lane had batched since its last publish dies with the process,
	// exactly what SIGKILL leaves behind.
	w, err := ssa.OpenSpendJournal(dir, ssa.SpendJournalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	s := ssa.NewStreamServer(inst, ssa.StreamConfig{Engine: ssa.EngineConfig{
		Shards: 4, QueueDepth: 64, Method: ssa.SimRHTALU,
		ClickSeed: 7, Budget: bcfg, Journal: w}})
	for _, q := range ssa.QueryStream(inst, 9, 2600) {
		s.Submit(q)
	}
	for s.Stats().Pending > 0 { // quiesce so the exact totals are stable
		runtime.Gosched()
	}
	time.Sleep(10 * time.Millisecond)
	exact := make([]float64, inst.N)
	var exactTotal float64
	exhausted := 0
	for i := 0; i < inst.N; i++ {
		exact[i] = s.Engine().Ledger().ExactSpent(i)
		exactTotal += exact[i]
		if s.Engine().Ledger().Exhausted(i) {
			exhausted++
		}
	}
	fmt.Printf("pre-crash:  spend=%.0f exhausted=%d/%d journaled=%.0f\n",
		exactTotal, exhausted, inst.N, w.Stats().TotalSpend)

	rec, err := ssa.RecoverSpendJournal(dir)
	if err != nil {
		log.Fatal(err)
	}
	// The durability bound is per advertiser, like the staleness bound
	// it mirrors: an advertiser wins at most one slot per auction, so
	// each of the K lanes holds at most RefreshEvery unflushed
	// auctions at P = MaxClickValue per charge.
	bound := float64(inst.Keywords) * float64(bcfg.RefreshEvery) * ssa.MaxClickValue
	var maxLost, totalLost float64
	for i := 0; i < inst.N; i++ {
		lost := exact[i] - rec.State.Spent(i)
		if lost < -1e-6 || lost > bound {
			log.Fatalf("advertiser %d outside the documented bound: lost %.2f, bound %.2f", i, lost, bound)
		}
		totalLost += lost
		maxLost = math.Max(maxLost, lost)
	}
	fmt.Printf("recovered:  spend=%.0f (lost %.0f unflushed; worst advertiser %.0f <= K·R·P bound %.0f) replayed=%d records\n",
		rec.State.TotalSpend(), totalLost, maxLost, bound, rec.Replayed)

	// Restart: resume from the recovered state, then open day 2 with
	// a budget reset — a journaled epoch that re-admits the exhausted
	// advertisers without touching the population or bid state.
	w2, err := ssa.OpenSpendJournal(dir, ssa.SpendJournalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	e2 := ssa.NewEngine(inst, ssa.EngineConfig{Shards: 4, Method: ssa.SimRHTALU,
		ClickSeed: 7, Budget: bcfg, Journal: w2, Restore: rec.State})
	if e2.ResetBudgets() == nil {
		log.Fatal("reset failed with budgets enabled")
	}
	e2.Serve(ssa.QueryStream(inst, 10, 4000))
	e2.Close() // graceful: flushes every lane, closes the journal

	final, err := ssa.RecoverSpendJournal(dir)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < inst.N; i++ {
		if math.Float64bits(final.State.Spent(i)) != math.Float64bits(e2.Ledger().ExactSpent(i)) {
			log.Fatalf("advertiser %d: graceful recovery is not bitwise", i)
		}
	}
	fmt.Printf("day 2:      spend=%.0f epoch=%d — graceful close recovers bitwise\n",
		final.State.TotalSpend(), final.State.Epoch)
}
