// heavyweight demonstrates the Section III-F model: click
// probabilities that depend on which slots hold famous ("heavyweight")
// advertisers, and bids that reference that pattern — "pay extra if
// the slot above me holds a lightweight".
//
// Winner determination enumerates the 2^k heavyweight-slot patterns,
// solving two independent matchings per pattern; the example runs the
// enumeration both serially and in parallel and confirms they agree.
//
// Run:  go run ./examples/heavyweight
package main

import (
	"fmt"
	"log"
	"time"

	ssa "repro"
)

func main() {
	const slots = 6
	const n = 40

	base := ssa.NewModel(n, slots)
	advertisers := make([]ssa.Advertiser, n)
	for i := 0; i < n; i++ {
		heavy := i < 6 // the first six are household names
		for j := 0; j < slots; j++ {
			p := 0.7 / float64(j+1)
			if heavy {
				p = 0.9 / float64(j+1) // famous ads get clicked more
			}
			base.Click[i][j] = p
			base.Purchase[i][j] = 0.15
		}
		bids := ssa.MustParseBids(fmt.Sprintf("Click : %d", 10+(i*7)%25))
		if !heavy {
			// Small shops fear standing directly under a giant: pay a
			// premium for slot 2 only when slot 1 holds a lightweight.
			bids = append(bids, ssa.Bid{
				F:     ssa.MustParseFormula("Slot2 AND NOT Heavy1"),
				Value: 12,
			})
		}
		advertisers[i] = ssa.Advertiser{
			ID:    fmt.Sprintf("adv%02d", i),
			Bids:  bids,
			Heavy: heavy,
		}
	}

	auction := &ssa.HeavyAuction{
		Slots:       slots,
		Advertisers: advertisers,
		Model: &ssa.HeavyModel{
			Base: base,
			// Every heavyweight above a slot siphons 30% of its clicks.
			Factor: ssa.ShadowFactors(slots, 0.30),
		},
	}

	start := time.Now()
	serial, err := auction.Determine(false)
	if err != nil {
		log.Fatal(err)
	}
	serialDur := time.Since(start)

	start = time.Now()
	parallel, err := auction.Determine(true)
	if err != nil {
		log.Fatal(err)
	}
	parallelDur := time.Since(start)

	fmt.Printf("2^%d = %d heavyweight patterns enumerated\n", slots, 1<<slots)
	fmt.Printf("serial:   revenue %.2f in %v\n", serial.ExpectedRevenue, serialDur)
	fmt.Printf("parallel: revenue %.2f in %v\n", parallel.ExpectedRevenue, parallelDur)
	if diff := serial.ExpectedRevenue - parallel.ExpectedRevenue; diff > 1e-9 || diff < -1e-9 {
		log.Fatal("serial and parallel enumeration disagree; this is a bug")
	}

	fmt.Println("\nwinning allocation (H = heavyweight):")
	for j, i := range serial.AdvOf {
		if i < 0 {
			fmt.Printf("  slot %d: (empty)\n", j+1)
			continue
		}
		tag := " "
		if advertisers[i].Heavy {
			tag = "H"
		}
		fmt.Printf("  slot %d: %s %s\n", j+1, advertisers[i].ID, tag)
	}

	// How much does pattern-awareness matter? Compare with a run that
	// ignores shadowing (factor 1 everywhere) and pattern bids.
	flat := &ssa.HeavyAuction{
		Slots:       slots,
		Advertisers: advertisers,
		Model:       &ssa.HeavyModel{Base: base}, // nil Factor: no shadowing
	}
	flatRes, err := flat.Determine(false)
	if err != nil {
		log.Fatal(err)
	}
	blindScore, err := auction.Score(flatRes.AdvOf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nignoring heavyweight shadowing, the provider would *predict* revenue %.2f,\n", flatRes.ExpectedRevenue)
	fmt.Printf("but under the true pattern-aware model that allocation earns %.2f,\n", blindScore)
	fmt.Printf("vs the pattern-aware optimum of %.2f\n", serial.ExpectedRevenue)
}
