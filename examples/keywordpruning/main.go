// keywordpruning shows the provider-side pipeline of Section IV: the
// keyword index prunes the advertiser population before any bidding
// program runs, fractional relevance scores flow into each program's
// Keywords table (Figure 4's 0.8 / 0.2 column), and winner
// determination sees only the pruned set.
//
// Run:  go run ./examples/keywordpruning
package main

import (
	"fmt"
	"log"

	ssa "repro"
)

func main() {
	// A small advertiser population with registered keyword interests.
	registered := map[int][]string{
		0: {"leather boot", "winter boot"},
		1: {"running shoe"},
		2: {"boot polish kit"},
		3: {"piano tuner"}, // never relevant to footwear queries
		4: {"boot"},
	}
	index := ssa.NewKeywordIndex()
	for adv, kws := range registered {
		for _, kw := range kws {
			index.Register(adv, kw)
		}
	}

	query := "red leather boot"
	fmt.Printf("query: %q\n\nmatches:\n", query)
	matches := index.Query(query)
	for _, m := range matches {
		fmt.Printf("  advertiser %d  keyword %-16q relevance %.2f\n",
			m.Advertiser, m.Keyword, m.Relevance)
	}
	interested := index.Interested(query)
	fmt.Printf("\nprograms to evaluate: %v of %d registered advertisers\n\n",
		interested, len(registered))

	// Each interested advertiser's program sees its best relevance for
	// the query and produces a Click bid scaled by it — a miniature
	// stand-in for the Figure 5 machinery (which examples/roiprogram
	// runs in full).
	bestRel := map[int]float64{}
	for _, m := range matches {
		if m.Relevance > bestRel[m.Advertiser] {
			bestRel[m.Advertiser] = m.Relevance
		}
	}
	baseValue := map[int]float64{0: 40, 1: 35, 2: 20, 3: 50, 4: 25}

	const slots = 2
	model := ssa.NewModel(len(interested), slots)
	auction := &ssa.Auction{Slots: slots, Probs: model}
	for row, adv := range interested {
		model.Click[row][0], model.Click[row][1] = 0.5, 0.3
		bid := baseValue[adv] * bestRel[adv]
		auction.Advertisers = append(auction.Advertisers, ssa.Advertiser{
			ID:   fmt.Sprintf("adv%d", adv),
			Bids: ssa.MustParseBids(fmt.Sprintf("Click : %g", bid)),
		})
	}
	res, err := auction.Determine(ssa.RH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("allocation over the pruned set:")
	for j, i := range res.AdvOf {
		name := "(empty)"
		if i >= 0 {
			name = auction.Advertisers[i].ID
		}
		fmt.Printf("  slot %d: %s\n", j+1, name)
	}
	fmt.Printf("expected revenue: %.2f\n", res.ExpectedRevenue)
}
