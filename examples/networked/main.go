// Networked: the serving tier behind a real TCP socket.
//
// A NetServer wraps a StreamServer in the library's wire protocol —
// length-prefixed, CRC-checked binary frames — and a NetClient drives
// auctions through it exactly as a separate process would (auctionsim
// -serve / -connect are this example split across two OS processes).
// Concurrent callers pipeline onto one connection up to its window;
// text queries route through the keyword matcher server-side; churn
// and budget resets travel as control frames through the same ordered
// stream, so the stream layer's fence semantics hold over the network
// too. After the graceful wire drain, the connection-layer identity
// is exact: submitted == served + shed + rejected.
//
// The serving stack is also observable while it runs: every layer
// records into the server's metrics registry (wait-free, zero
// allocations on the auction path), ServeMetrics exposes it over
// HTTP as Prometheus text plus pprof, and the stats-v2 wire call
// ships the server's latency histogram to the client, which can then
// compute any percentile locally. The equivalent auctionsim flags are
// -metrics-addr (engine/stream/serve/connect modes) and
// -trace-sample (adds the /trace ring of sampled per-auction
// lifecycle timestamps).
//
// Run:  go run ./examples/networked
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"

	ssa "repro"
)

func main() {
	inst := ssa.GenerateInstance(1, 300, ssa.DefaultSlots, ssa.DefaultKeywords)

	// Serve on an ephemeral loopback port.
	srv, err := ssa.ListenNetServer("127.0.0.1:0", inst, ssa.NetServerConfig{
		Stream: ssa.StreamConfig{
			Engine: ssa.EngineConfig{Method: ssa.SimRHTALU, QueueDepth: 64, ClickSeed: 7},
		},
		Window: 16, // per-connection in-flight cap
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving on %s\n", srv.Addr())

	// Live telemetry: the server's registry behind HTTP. /metrics is
	// Prometheus text exposition, /debug/pprof the standard profiles.
	ms, err := ssa.ServeMetrics("127.0.0.1:0", srv.Registry(), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ms.Close()
	fmt.Printf("metrics on http://%s/metrics\n", ms.Addr())

	// One client connection, eight concurrent workers pipelining onto
	// it — the wire protocol correlates responses by request ID, so
	// synchronous calls from many goroutines overlap on the socket.
	c, err := ssa.DialNetClient(srv.Addr(), ssa.NetClientOptions{Window: 16})
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out ssa.NetOutcome
			for i := 0; i < 500; i++ {
				if err := c.AuctionInto((w+i)%inst.Keywords, &out); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Batch submit and a server-side stats snapshot, same connection.
	br, err := c.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: served %d/%d, revenue %.0f\n", br.Served, br.Requested, br.Revenue)

	// One mid-run scrape: the registry is the accounting, readable
	// while shards serve.
	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(prom), "\n") {
		if strings.HasPrefix(line, "ssa_auctions_total ") ||
			strings.HasPrefix(line, "ssa_server_submitted_total ") {
			fmt.Println("scraped:", line)
		}
	}

	// The stats-v2 wire call carries the server's lifetime latency
	// histogram; rebuilding a snapshot from the sparse buckets lets
	// the client compute any percentile without a metrics endpoint.
	v2, err := c.StatsV2()
	if err != nil {
		log.Fatal(err)
	}
	var hs ssa.LatencySnapshot
	hs.Count, hs.Sum, hs.Max = v2.HistCount, v2.HistSum, v2.HistMax
	for _, bk := range v2.Buckets {
		hs.Counts[bk.Index] = bk.Count
	}
	fmt.Printf("server latency over the wire: p50=%dns p99=%dns max=%dns (%d auctions)\n",
		hs.Quantile(0.50), hs.Quantile(0.99), hs.Max, hs.Count)

	// Graceful drain over the wire: intake stops, every queued auction
	// is served, and the final stats come back on the draining
	// connection.
	final, err := c.Drain()
	if err != nil {
		log.Fatal(err)
	}
	c.Close()
	srv.Close()
	fmt.Printf("drained: submitted=%d served=%d shed=%d rejected=%d (identity %v)\n",
		final.Submitted, final.Served, final.Shed, final.Rejected,
		final.Submitted == final.Served+final.Shed+final.Rejected)
	fmt.Printf("revenue=%.0f clicks=%d over %d advertisers\n",
		final.Revenue, final.Clicks, final.Advertisers)
}
