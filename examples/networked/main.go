// Networked: the serving tier behind a real TCP socket.
//
// A NetServer wraps a StreamServer in the library's wire protocol —
// length-prefixed, CRC-checked binary frames — and a NetClient drives
// auctions through it exactly as a separate process would (auctionsim
// -serve / -connect are this example split across two OS processes).
// Concurrent callers pipeline onto one connection up to its window;
// text queries route through the keyword matcher server-side; churn
// and budget resets travel as control frames through the same ordered
// stream, so the stream layer's fence semantics hold over the network
// too. After the graceful wire drain, the connection-layer identity
// is exact: submitted == served + shed + rejected.
//
// Run:  go run ./examples/networked
package main

import (
	"fmt"
	"log"
	"sync"

	ssa "repro"
)

func main() {
	inst := ssa.GenerateInstance(1, 300, ssa.DefaultSlots, ssa.DefaultKeywords)

	// Serve on an ephemeral loopback port.
	srv, err := ssa.ListenNetServer("127.0.0.1:0", inst, ssa.NetServerConfig{
		Stream: ssa.StreamConfig{
			Engine: ssa.EngineConfig{Method: ssa.SimRHTALU, QueueDepth: 64, ClickSeed: 7},
		},
		Window: 16, // per-connection in-flight cap
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving on %s\n", srv.Addr())

	// One client connection, eight concurrent workers pipelining onto
	// it — the wire protocol correlates responses by request ID, so
	// synchronous calls from many goroutines overlap on the socket.
	c, err := ssa.DialNetClient(srv.Addr(), ssa.NetClientOptions{Window: 16})
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out ssa.NetOutcome
			for i := 0; i < 500; i++ {
				if err := c.AuctionInto((w+i)%inst.Keywords, &out); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Batch submit and a server-side stats snapshot, same connection.
	br, err := c.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: served %d/%d, revenue %.0f\n", br.Served, br.Requested, br.Revenue)

	// Graceful drain over the wire: intake stops, every queued auction
	// is served, and the final stats come back on the draining
	// connection.
	final, err := c.Drain()
	if err != nil {
		log.Fatal(err)
	}
	c.Close()
	srv.Close()
	fmt.Printf("drained: submitted=%d served=%d shed=%d rejected=%d (identity %v)\n",
		final.Submitted, final.Served, final.Shed, final.Rejected,
		final.Submitted == final.Served+final.Shed+final.Rejected)
	fmt.Printf("revenue=%.0f clicks=%d over %d advertisers\n",
		final.Revenue, final.Clicks, final.Advertisers)
}
