// Quickstart: a complete multi-feature sponsored search auction.
//
// Four advertisers bid on different features of the outcome — plain
// clicks, purchases, and slot positions — and the engine computes the
// expected-revenue-maximizing allocation with the paper's reduced
// Hungarian algorithm, then Vickrey (VCG) payments.
//
// Run:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ssa "repro"
)

func main() {
	const slots = 3

	// Click probability for each advertiser in each slot (top slot
	// first), and purchase probability given a click. Note the matrix
	// is NOT separable — no advertiser×slot factorization exists — so
	// the traditional sort-based allocation would not even apply.
	model := ssa.NewModel(4, slots)
	clicks := [][]float64{
		{0.70, 0.40, 0.20}, // bigshoes
		{0.60, 0.35, 0.30}, // quickfit
		{0.50, 0.45, 0.25}, // brandco
		{0.40, 0.20, 0.10}, // nichekicks
	}
	purchases := [][]float64{
		{0.30, 0.30, 0.30},
		{0.10, 0.10, 0.10},
		{0.05, 0.05, 0.05},
		{0.50, 0.50, 0.50},
	}
	for i := range clicks {
		copy(model.Click[i], clicks[i])
		copy(model.Purchase[i], purchases[i])
	}

	auction := &ssa.Auction{
		Slots: slots,
		Probs: model,
		Advertisers: []ssa.Advertiser{
			// A classic single-feature bidder: pays per click.
			{ID: "bigshoes", Bids: ssa.MustParseBids(`Click : 40`)},
			// Values purchases far above clicks.
			{ID: "quickfit", Bids: ssa.MustParseBids(`
				Click : 10
				Purchase : 120`)},
			// Brand awareness: wants the TOP slot specifically, clicked
			// or not, and pays a little extra for a click there.
			{ID: "brandco", Bids: ssa.MustParseBids(`
				Slot1 : 30
				Click AND Slot1 : 15`)},
			// A niche shop: any slot is fine, purchases are everything.
			{ID: "nichekicks", Bids: ssa.MustParseBids(`
				Slot1 OR Slot2 OR Slot3 : 4
				Purchase : 90`)},
		},
	}

	res, err := auction.Determine(ssa.RH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected revenue: %.2f\n\n", res.ExpectedRevenue)
	for j, i := range res.AdvOf {
		if i < 0 {
			fmt.Printf("slot %d: (empty)\n", j+1)
			continue
		}
		fmt.Printf("slot %d: %-11s bids={%s}\n", j+1, auction.Advertisers[i].ID,
			oneLine(auction.Advertisers[i].Bids))
	}

	// Vickrey pricing: each winner pays the opportunity cost his
	// presence imposes on the others — truthful, per the paper's
	// pricing discussion.
	payments, err := auction.VCGPayments(res, ssa.RH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nVCG payments (expected):")
	for i, p := range payments {
		if res.SlotOf[i] >= 0 {
			fmt.Printf("  %-11s %.2f\n", auction.Advertisers[i].ID, p)
		}
	}

	// The same auction restricted to everyone's click bid alone shows
	// what expressiveness is worth to the provider.
	single := &ssa.Auction{Slots: slots, Probs: model}
	for _, a := range auction.Advertisers {
		click := 0.0
		for _, b := range a.Bids {
			if b.F.String() == "Click" {
				click = b.Value
			}
		}
		single.Advertisers = append(single.Advertisers, ssa.Advertiser{
			ID: a.ID, Bids: ssa.MustParseBids(fmt.Sprintf("Click : %g", click)),
		})
	}
	sres, err := single.Determine(ssa.RH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-feature (click-only) revenue would be: %.2f  (%.0f%% of multi-feature)\n",
		sres.ExpectedRevenue, 100*sres.ExpectedRevenue/res.ExpectedRevenue)
}

func oneLine(b ssa.Bids) string {
	s := ""
	for i, bid := range b {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%s:%g", bid.F, bid.Value)
	}
	return s
}
