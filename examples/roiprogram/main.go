// roiprogram runs the paper's Figure 5 bidding program — the
// ROI-equalizing dynamic strategy, written in the Section II SQL
// dialect — through the interpreter, reproducing the worked example
// of Figures 4 and 6 and then letting the strategy evolve over a
// stream of queries.
//
// Run:  go run ./examples/roiprogram
package main

import (
	"fmt"
	"log"

	ssa "repro"
)

// The Figure 5 program (line 11's comparison corrected to `>`, per
// the surrounding prose).
const fig5 = `
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi = ( SELECT MIN( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value = ( SELECT SUM( K.bid )
                FROM Keywords K
                WHERE K.relevance > 0.7
                  AND K.formula = Bids.formula );
}
`

func main() {
	db := ssa.NewDB()

	// The advertiser's private Keywords table, exactly Figure 4.
	kw := ssa.NewTable("Keywords",
		ssa.Column{Name: "text", Kind: ssa.String},
		ssa.Column{Name: "formula", Kind: ssa.String},
		ssa.Column{Name: "maxbid", Kind: ssa.Float},
		ssa.Column{Name: "roi", Kind: ssa.Float},
		ssa.Column{Name: "bid", Kind: ssa.Float},
		ssa.Column{Name: "relevance", Kind: ssa.Float},
	)
	check(kw.Insert(ssa.Row{ssa.S("boot"), ssa.S("Click AND Slot1"), ssa.F(5), ssa.F(2), ssa.F(4), ssa.F(0.8)}))
	check(kw.Insert(ssa.Row{ssa.S("shoe"), ssa.S("Click"), ssa.F(6), ssa.F(1), ssa.F(8), ssa.F(0.2)}))
	db.Add(kw)

	bids := ssa.NewTable("Bids",
		ssa.Column{Name: "formula", Kind: ssa.String},
		ssa.Column{Name: "value", Kind: ssa.Float},
	)
	check(bids.Insert(ssa.Row{ssa.S("Click AND Slot1"), ssa.F(0)}))
	check(bids.Insert(ssa.Row{ssa.S("Click"), ssa.F(0)}))
	db.Add(bids)

	query := ssa.NewTable("Query", ssa.Column{Name: "kw", Kind: ssa.String})
	db.Add(query)

	// Provider-maintained scalars: pin spending exactly on target so
	// the first run leaves bids as in Figure 4.
	db.SetScalar("amtSpent", ssa.F(10))
	db.SetScalar("time", ssa.F(5))
	db.SetScalar("targetSpendRate", ssa.F(2))

	prog, err := ssa.CompileProgram(fig5)
	if err != nil {
		log.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		log.Fatal(err)
	}

	// Auction 1: the worked example. The output Bids table must be
	// Figure 6: Click∧Slot1 → 4, Click → 0.
	check(query.Insert(ssa.Row{ssa.S("boot")}))
	fmt.Println("after the Figure 4 auction (spending on target):")
	printBids(bids)

	// Now let the strategy breathe: underspend for three auctions
	// (bids on the max-ROI keyword climb, capped at maxbid), then
	// overspend for two (the min-ROI keyword's bid falls).
	fmt.Println("\nunderspending (amtSpent/time < target): boot bid climbs to its max of 5")
	db.SetScalar("amtSpent", ssa.F(1))
	for i := 0; i < 3; i++ {
		check(query.Insert(ssa.Row{ssa.S("boot")}))
		printKeywordBids(kw)
	}

	fmt.Println("\noverspending: shoe (lowest ROI) decrements")
	db.SetScalar("amtSpent", ssa.F(100))
	for i := 0; i < 2; i++ {
		check(query.Insert(ssa.Row{ssa.S("shoe")}))
		printKeywordBids(kw)
	}

	fmt.Println("\nfinal Bids table for a 'shoe' query:")
	printBids(bids)
}

func printBids(bids *ssa.Table) {
	for _, row := range bids.Rows {
		fmt.Printf("  %-17s -> %s\n", row[0].S, row[1].String())
	}
}

func printKeywordBids(kw *ssa.Table) {
	fmt.Print("  bids:")
	for _, row := range kw.Rows {
		fmt.Printf("  %s=%s", row[0].S, row[4].String())
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
