// Streaming: open-world serving with admission control and live
// advertiser churn.
//
// A long-running StreamServer wraps the keyword-sharded engine with
// persistent workers: queries arrive continuously (here a bursty
// Poisson stream with Zipf-skewed keyword popularity), a saturated
// shard queue sheds load instead of blocking the submitter (every
// dropped query is counted — submitted always equals served + shed
// after the drain), and advertisers join and leave the live market at
// auction boundaries through epoch fences, so no auction is ever torn
// and post-churn outcomes match a freshly built engine over the new
// population bit for bit.
//
// Run:  go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	ssa "repro"
)

func main() {
	// A Section V population: 500 advertisers, 15 slots, 10 keywords,
	// every bidder running the ROI-equalizing strategy of Figure 5.
	inst := ssa.GenerateInstance(1, 500, ssa.DefaultSlots, ssa.DefaultKeywords)

	srv := ssa.NewStreamServer(inst, ssa.StreamConfig{
		Engine: ssa.EngineConfig{
			Method:     ssa.SimRHTALU, // the §IV fast path
			QueueDepth: 64,
			ClickSeed:  7,
		},
		Overload: ssa.OverloadShed, // never block the query front end
	})

	// An open-world workload: 20k queries at a nominal 50k qps with
	// 4× bursts, hot keywords per a Zipf law, and six scripted churn
	// events (alternating admissions and evictions).
	const queries = 20000
	events := ssa.NewSimStream(inst, 2, ssa.SimStreamConfig{
		Queries:     queries,
		QPS:         50000,
		BurstFactor: 4,
		ZipfS:       1.3,
		Churn:       ssa.ScriptChurn(3, inst, 6, queries),
	})

	// Drive the stream as fast as it arrives. A real front end would
	// pace by ev.At; here we saturate to show load shedding.
	for {
		ev, ok := events.Next()
		if !ok {
			break
		}
		if ev.Churn != nil {
			if ev.Churn.Add != nil {
				idx, err := srv.AddAdvertiser(*ev.Churn.Add)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("· advertiser %d joined the live market (epoch %d)\n", idx, srv.Stats().Epoch)
			} else {
				if err := srv.RemoveAdvertiser(ev.Churn.Remove); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("· advertiser %d left the live market (epoch %d)\n", ev.Churn.Remove, srv.Stats().Epoch)
			}
			continue
		}
		srv.Submit(ev.Keyword)
	}

	// Graceful drain: intake stops, queues empty, final stats flush.
	st := srv.Close()
	fmt.Printf("\nsubmitted %d = served %d + shed %d (exact: %v)\n",
		st.Submitted, st.Served, st.Shed, st.Submitted == st.Served+st.Shed)
	fmt.Printf("revenue %.0f over %d clicks; %d advertisers after %d churn events\n",
		st.Revenue, st.Clicks, st.Advertisers, st.Epoch)
	fmt.Printf("rolling window: %.0f qps, p50 %v, p95 %v, p99 %v\n",
		st.WindowThroughput, st.P50, st.P95, st.P99)
	for i, ps := range st.PerShard {
		fmt.Printf("  shard %d: served %d, shed %d\n", i, ps.Served, ps.Shed)
	}
}
