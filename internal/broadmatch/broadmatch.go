// Package broadmatch implements the probabilistic broad-match query
// router from "Generalized Second Price Auction with Probabilistic
// Broad Match" (arXiv 1404.3828), adapted to this repo's
// keyword-sharded serving engine. A multi-token user query no longer
// maps to exactly one keyword market: it fans out to every market
// whose catalog keyword scores at or above a relevance threshold
// under kwmatch subset scoring, each candidate is admitted with
// probability equal to its relevance (a deterministic seeded draw, so
// runs replay bit for bit), and admitted candidates carry a squashed
// pricing weight relevance^squash — the Feldman–Muthukrishnan
// squashing knob — that the market applies to every GSP/VCG charge.
//
// The serving layers resolve one winner per query (the
// highest-relevance admitted candidate, ties to the lowest keyword
// id — exactly the exact router's ordering); the losing candidates
// are "overmatched": matched but not serving the impression. With the
// neutral knobs (threshold 1, squash 1) every admitted candidate has
// relevance exactly 1 and weight exactly 1, which is why a
// broad-neutral run is byte-identical to exact routing whenever
// queries name catalog keywords.
package broadmatch

import (
	"math"
	"sync"

	"repro/internal/kwmatch"
)

// Config tunes a Router. The zero value (Enabled false) means exact
// routing: the engine never consults a Router at all, keeping the
// historical path byte-identical.
type Config struct {
	// Enabled switches text routing from exact keyword lookup to
	// broad match.
	Enabled bool
	// Threshold is the minimum kwmatch relevance, in (0, 1], for a
	// catalog keyword to become a candidate. 0 admits any positive
	// relevance; 1 admits only full-overlap matches.
	Threshold float64
	// Squash is the squashing exponent: an admitted candidate's
	// pricing weight is Relevance^Squash. 0 is treated as 1 (plain
	// relevance weighting). Values below 1 flatten the weight toward
	// 1; above 1 sharpen it.
	Squash float64
	// Seed drives the per-(query, keyword) match draws. Two routers
	// with the same seed and catalog route identically, so a seeded
	// run is replayable.
	Seed int64
}

// Candidate is one market a query matched.
type Candidate struct {
	// Keyword is the engine keyword id (the market's shard key).
	Keyword int
	// Relevance is the kwmatch subset score of the query against
	// this keyword, in (0, 1].
	Relevance float64
	// Weight is Relevance^Squash — the squashed pricing weight the
	// market applies to every charge for this query.
	Weight float64
}

// Router resolves free-text queries to broad-matched candidate sets.
// It is safe for concurrent use; the query path reuses one internal
// kwmatch Scratch under a mutex and performs zero steady-state heap
// allocations.
type Router struct {
	cfg Config
	idx *kwmatch.Index

	mu  sync.Mutex
	sc  kwmatch.Scratch
	buf []kwmatch.Match
}

// New builds a Router over the engine's keyword catalog: names[q] is
// the text of keyword q, registered so that kwmatch scores queries
// against it. A zero Squash is normalized to 1.
func New(names []string, cfg Config) *Router {
	if cfg.Squash == 0 {
		cfg.Squash = 1
	}
	idx := kwmatch.New()
	for q, name := range names {
		idx.Register(q, name)
	}
	return &Router{cfg: cfg, idx: idx}
}

// Config returns the (normalized) configuration the router runs with.
func (r *Router) Config() Config { return r.cfg }

// RouteBest resolves the query's admitted candidate set and returns
// the winning candidate — highest relevance, ties to the lowest
// keyword id, the same ordering exact routing uses — along with the
// total number of admitted candidates. ok is false when nothing
// matched (the query is unrouted). Deterministic for a fixed seed,
// catalog, and query.
func (r *Router) RouteBest(query string) (best Candidate, matched int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.idx.QueryInto(query, &r.sc, r.buf[:0])
	for _, m := range r.buf {
		c, admitted := r.admit(query, m)
		if !admitted {
			continue
		}
		if matched == 0 {
			best = c
		}
		matched++
	}
	return best, matched, matched > 0
}

// Route appends every admitted candidate for the query to out, winner
// first (descending relevance, ties ascending keyword id), and
// returns the extended slice — the inspection twin of RouteBest, for
// tools and tests that want the whole matched set.
func (r *Router) Route(query string, out []Candidate) []Candidate {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.idx.QueryInto(query, &r.sc, r.buf[:0])
	for _, m := range r.buf {
		if c, admitted := r.admit(query, m); admitted {
			out = append(out, c)
		}
	}
	return out
}

// admit applies the threshold filter and the probabilistic match draw
// to one kwmatch hit. Full-relevance hits always match; a hit with
// relevance rel < 1 matches with probability rel.
func (r *Router) admit(query string, m kwmatch.Match) (Candidate, bool) {
	rel := m.Relevance
	if rel < r.cfg.Threshold {
		return Candidate{}, false
	}
	if rel < 1 && r.draw(query, m.Advertiser) >= rel {
		return Candidate{}, false
	}
	w := rel
	if r.cfg.Squash != 1 {
		w = math.Pow(rel, r.cfg.Squash)
	}
	return Candidate{Keyword: m.Advertiser, Relevance: rel, Weight: w}, true
}

// draw returns the uniform [0, 1) variate for (seed, query, keyword):
// FNV-64a over the seed bytes, the keyword id bytes, and the query
// bytes. Pure and allocation-free, so match decisions replay exactly.
func (r *Router) draw(query string, kw int) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for s := uint(0); s < 64; s += 8 {
		h = (h ^ (uint64(r.cfg.Seed)>>s)&0xff) * prime64
	}
	for s := uint(0); s < 64; s += 8 {
		h = (h ^ (uint64(kw)>>s)&0xff) * prime64
	}
	for i := 0; i < len(query); i++ {
		h = (h ^ uint64(query[i])) * prime64
	}
	return float64(h>>11) / (1 << 53)
}
