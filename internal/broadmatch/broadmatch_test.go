package broadmatch

import (
	"math"
	"testing"
)

func bigram(n int) []string {
	names := make([]string, n)
	for q := range names {
		names[q] = "t" + itoa(q) + " t" + itoa(q+1)
	}
	return names
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestNeutralKnobsAdmitExactMatches pins the byte-identity regime:
// threshold 1 admits only relevance-1 candidates, which always match
// and carry weight exactly 1 regardless of seed.
func TestNeutralKnobsAdmitExactMatches(t *testing.T) {
	r := New(bigram(8), Config{Enabled: true, Threshold: 1, Squash: 1, Seed: 99})
	best, matched, ok := r.RouteBest("t3 t4")
	if !ok || matched != 1 {
		t.Fatalf("exact bigram query: ok=%v matched=%d", ok, matched)
	}
	if best.Keyword != 3 || best.Relevance != 1 || best.Weight != 1 {
		t.Fatalf("best = %+v, want keyword 3 rel 1 weight 1", best)
	}
	if _, _, ok := r.RouteBest("t5"); ok {
		t.Fatal("half-relevance query admitted under threshold 1")
	}
}

// TestWinnerOrdering pins the exact router's tie-break: highest
// relevance first, then lowest keyword id.
func TestWinnerOrdering(t *testing.T) {
	// Threshold 0, squash 1, and a catalog where "t3 t4" scores 1
	// against keyword 3 and 1/2 against keywords 2 and 4.
	r := New(bigram(8), Config{Enabled: true, Seed: 4})
	cands := r.Route("t3 t4", nil)
	if len(cands) == 0 || cands[0].Keyword != 3 || cands[0].Relevance != 1 {
		t.Fatalf("winner should be the full match: %+v", cands)
	}
	for i := 1; i < len(cands); i++ {
		a, b := cands[i-1], cands[i]
		if a.Relevance < b.Relevance || (a.Relevance == b.Relevance && a.Keyword > b.Keyword) {
			t.Fatalf("candidates out of order: %+v", cands)
		}
	}
	best, matched, ok := r.RouteBest("t3 t4")
	if !ok || matched != len(cands) || best != cands[0] {
		t.Fatalf("RouteBest (%+v, %d, %v) disagrees with Route %+v", best, matched, ok, cands)
	}
}

// TestDrawsAreDeterministic pins replayability: two routers with the
// same seed and catalog route every query identically; a different
// seed changes at least one admission on a probe set large enough to
// make a no-op seed essentially impossible.
func TestDrawsAreDeterministic(t *testing.T) {
	cfg := Config{Enabled: true, Threshold: 0.4, Squash: 0.5, Seed: 7}
	a, b := New(bigram(32), cfg), New(bigram(32), cfg)
	other := cfg
	other.Seed = 8
	c := New(bigram(32), other)
	diff := false
	var bufA, bufB, bufC []Candidate
	for q := 0; q < 32; q++ {
		query := "t" + itoa(q)
		bufA = a.Route(query, bufA[:0])
		bufB = b.Route(query, bufB[:0])
		bufC = c.Route(query, bufC[:0])
		if len(bufA) != len(bufB) {
			t.Fatalf("same seed, different candidate count for %q", query)
		}
		for i := range bufA {
			if bufA[i] != bufB[i] {
				t.Fatalf("same seed, different candidate %d for %q: %+v vs %+v", i, query, bufA[i], bufB[i])
			}
		}
		if len(bufA) != len(bufC) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 7 and 8 admitted identical sets on every probe query")
	}
}

// TestSquashWeights pins Weight = Relevance^Squash and the zero-value
// normalization Squash 0 → 1.
func TestSquashWeights(t *testing.T) {
	r := New(bigram(8), Config{Enabled: true, Squash: 0.5, Seed: 1})
	cands := r.Route("t2 t3 t4", nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		want := math.Pow(c.Relevance, 0.5)
		if c.Weight != want {
			t.Fatalf("weight %g for relevance %g, want %g", c.Weight, c.Relevance, want)
		}
	}
	if got := New(nil, Config{}).Config().Squash; got != 1 {
		t.Fatalf("zero Squash normalized to %g, want 1", got)
	}
}

// TestProbabilisticAdmission checks the match draw actually gates:
// across many half-relevance probes, some are admitted and some are
// not, and the admitted fraction is loosely near the relevance.
func TestProbabilisticAdmission(t *testing.T) {
	r := New(bigram(400), Config{Enabled: true, Seed: 3})
	admitted := 0
	probes := 0
	var buf []Candidate
	for q := 1; q < 400; q += 2 {
		// Single-token query "t<q>" scores 1/2 against keywords q-1
		// and q (no full match exists for a lone token).
		buf = r.Route("t"+itoa(q), buf[:0])
		probes += 2
		admitted += len(buf)
	}
	frac := float64(admitted) / float64(probes)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("admitted fraction %g for relevance-1/2 probes, want ≈0.5", frac)
	}
}

// TestRouteSteadyStateAllocs pins the serving path's zero-allocation
// contract end to end through the router.
func TestRouteSteadyStateAllocs(t *testing.T) {
	r := New(bigram(64), Config{Enabled: true, Threshold: 0.4, Squash: 0.5, Seed: 11})
	queries := []string{"t3 t4", "t10", "t20 t21 t22", "none here", "t63 t64"}
	for _, q := range queries {
		r.RouteBest(q)
	}
	n := testing.AllocsPerRun(200, func() {
		for _, q := range queries {
			r.RouteBest(q)
		}
	})
	if n != 0 {
		t.Fatalf("RouteBest steady state allocated %.1f times per run, want 0", n)
	}
}
