// Package budget is the cross-keyword spend subsystem of the serving
// engine: an eventually-consistent global ledger of per-advertiser
// spend, plus the enforcement policies that decide — per advertiser,
// per auction — whether a budgeted advertiser participates.
//
// The paper's bidding language makes daily budgets a first-class
// constraint (the budget-guarded program pinned in
// internal/sqlmini/programs_test.go zeroes its bids once amtSpent
// reaches the budget), and budget-constrained bidders are the central
// modeling concern of the sponsored-search literature the ROADMAP
// cites (Feldman & Muthukrishnan; Iyengar & Kumar). The serving
// engine, however, partitions state by keyword: each keyword's market
// tracks spend independently, so no single market can see an
// advertiser's global spend. This package closes that gap without
// giving up the partition.
//
// # Consistency model
//
// A Ledger holds one Lane per keyword market. The lane is owned by
// the shard goroutine serving that keyword: spend charges
// (Lane.Charge) are plain single-writer array writes on the auction
// hot path — no locks, no atomics, no allocations. Each lane
// periodically publishes its unpublished spend into the ledger's
// shared snapshot (Lane.Publish, driven every Config.RefreshEvery of
// the lane's own auctions, by the streaming layer's in-band flush
// fences, and at batch/drain boundaries). The snapshot is an array of
// atomically-updated float64 bits: reading an advertiser's global
// spend estimate is one atomic load plus the reader's own lane's
// unpublished delta — wait-free, and exact with respect to the
// reader's own market.
//
// The estimate is therefore eventually consistent: it can trail true
// global spend by at most the other lanes' unpublished windows. With
// K lanes, a refresh interval of R auctions, and a maximum
// per-auction charge of P (one slot per advertiser per auction, price
// capped at the bid, bids capped at the click value), enforcement
// admits at most
//
//	overspend ≤ K · R · P
//
// beyond the cap: each lane independently admits only while its own
// estimate is below the budget, and its estimate can miss at most
// R·P unpublished spend from each of the other lanes plus the charge
// of its own in-flight auction. TestHardOverspendBound in
// internal/engine drives an adversarial trace against this bound.
//
// # Exactness at drain
//
// A lane's cumulative spend array receives exactly the same sequence
// of float64 additions as its market's Accounting.SpentTotal, so the
// two are bitwise equal at every instant. Once serving has quiesced
// (batch Serve returned, or the streaming server drained),
// Ledger.ExactSpent sums the lanes in lane order — the same
// summation any cross-market accounting aggregate performs — so
// ledger totals equal the per-market spend sums exactly, not
// approximately. The published snapshot may differ from the exact
// total in the last ulp (its additions interleave across lanes);
// Ledger.Spent is the operational read, ExactSpent the settlement
// read.
//
// # Policies
//
// PolicyHard zeroes a budgeted advertiser's participation the moment
// the spend estimate reaches the cap — the serving-side analogue of
// the sqlmini budget-guarded program's "UPDATE Keywords SET bid = 0".
// PolicyPaced smooths spend across a configured horizon instead of
// spending greedily until the cap: while the advertiser's spent
// fraction runs ahead of the elapsed fraction of the horizon, it
// participates with probability (1−spentFrac)/(1−elapsedFrac), drawn
// deterministically from Config.Seed, the lane, the advertiser, and
// the lane's auction count — so a paced market is exactly
// reproducible given its configuration and trace. Paced enforcement
// still hard-stops at the cap.
package budget

import (
	"math"
	"sync/atomic"

	"repro/internal/journal"
)

// Policy selects the enforcement rule applied to budgeted
// advertisers.
type Policy uint8

const (
	// PolicyOff disables the subsystem entirely: no ledger is built
	// and the serving hot path is untouched (byte-identical outcomes
	// to an engine without budget support).
	PolicyOff Policy = iota
	// PolicyHard excludes an advertiser from every auction once the
	// spend estimate reaches the budget.
	PolicyHard
	// PolicyPaced probabilistically throttles participation to smooth
	// spend across Config.Horizon auctions, and hard-stops at the cap.
	PolicyPaced
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyOff:
		return "off"
	case PolicyHard:
		return "hard"
	case PolicyPaced:
		return "paced"
	default:
		return "Policy(?)"
	}
}

// Config tunes a Ledger. Budgets themselves live with the population
// (workload.Instance.Budget); the config carries only the enforcement
// parameters, so it survives advertiser churn unchanged.
type Config struct {
	// Policy selects the enforcement rule; PolicyOff disables the
	// subsystem.
	Policy Policy
	// RefreshEvery is the lane-local publish cadence: a lane folds its
	// unpublished spend into the shared snapshot every this many of
	// its own auctions. Smaller values tighten the overspend bound and
	// cost one O(n) scan per refresh per lane; 0 means 64.
	RefreshEvery int
	// Horizon is the pacing horizon in lane-local auctions
	// (PolicyPaced only): the number of auctions a lane's paced
	// advertisers should spread their budgets across. 0 means 10000.
	Horizon int
	// Seed drives the deterministic pacing draws.
	Seed int64
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 64
	}
	if c.Horizon <= 0 {
		c.Horizon = 10000
	}
	return c
}

// Ledger is one population's cross-keyword spend state: per-advertiser
// budgets, the shared published snapshot, and one Lane per market.
// Construct with NewLedger; a Ledger is tied to one population
// generation (advertiser churn builds a fresh ledger, exactly as it
// rebuilds markets and accounting — the engine's fresh-engine churn
// contract).
type Ledger struct {
	n      int
	cfg    Config
	budget []float64 // per advertiser; 0 (or negative) = unlimited
	snap   []uint64  // published spend, atomic float64 bits
	lanes  []Lane

	// Durability (optional): the attached journal writer, the journal
	// epoch this ledger's spend belongs to, and the journal sequence
	// number the ledger was restored at (0 for a fresh ledger). A
	// retired ledger's lanes keep flushing with their old epoch; the
	// writer drops those batches, which is what makes churn/reset
	// swaps race-free without coordinating the old lanes.
	jw     *journal.Writer
	jEpoch uint64
	jSeq   uint64
}

// NewLedger builds a ledger for n advertisers and the given number of
// lanes (one per keyword market; a sequential world uses one).
// budgets is the per-advertiser cap in currency — nil, or an entry
// ≤ 0, means unlimited. The slice is copied.
func NewLedger(n, lanes int, budgets []float64, cfg Config) *Ledger {
	l := &Ledger{
		n:    n,
		cfg:  cfg.withDefaults(),
		snap: make([]uint64, n),
	}
	if budgets != nil {
		l.budget = make([]float64, n)
		copy(l.budget, budgets)
	}
	l.jEpoch = 1
	l.lanes = make([]Lane, lanes)
	for q := range l.lanes {
		mark := make([]uint64, n)
		for i := range mark {
			mark[i] = ^uint64(0) // never matches an auction count
		}
		l.lanes[q] = Lane{
			led:      l,
			id:       q,
			cum:      make([]float64, n),
			pub:      make([]float64, n),
			mark:     mark,
			decision: make([]bool, n),
		}
	}
	return l
}

// NewLedgerState rebuilds a ledger from a recovered journal state:
// every lane's cumulative spend array, auction clock, and denial
// counter resume exactly where the journal left them, fully published
// (the snapshot is the lane-order sum, bitwise identical to what
// ExactSpent returns). budgets and cfg are supplied by the caller —
// they are population/configuration state, not spend state, and are
// not journaled.
func NewLedgerState(st *journal.LedgerState, budgets []float64, cfg Config) *Ledger {
	l := NewLedger(st.N, st.Lanes, budgets, cfg)
	for q := range l.lanes {
		lane := &l.lanes[q]
		copy(lane.cum, st.Cum[q])
		copy(lane.pub, st.Cum[q])
		lane.t = int(st.LaneT[q])
		lane.denied = st.Denied[q]
		lane.deniedPub.Store(st.Denied[q])
	}
	for i := 0; i < l.n; i++ {
		var s float64
		for q := range l.lanes {
			s += l.lanes[q].cum[i]
		}
		l.snap[i] = math.Float64bits(s)
	}
	l.jEpoch = st.Epoch
	if l.jEpoch == 0 {
		l.jEpoch = 1
	}
	l.jSeq = st.Seq
	return l
}

// State captures the ledger's spend state in journal form — the value
// a recovery of a journal fed by this ledger reproduces. The caller
// must have quiesced the lane owners (same contract as ExactSpent).
func (l *Ledger) State() *journal.LedgerState {
	st := &journal.LedgerState{
		Seq:    l.jSeq,
		Epoch:  l.jEpoch,
		N:      l.n,
		Lanes:  len(l.lanes),
		Cum:    make([][]float64, len(l.lanes)),
		LaneT:  make([]uint64, len(l.lanes)),
		Denied: make([]int64, len(l.lanes)),
	}
	for q := range l.lanes {
		lane := &l.lanes[q]
		st.Cum[q] = append([]float64(nil), lane.cum...)
		st.LaneT[q] = uint64(lane.t)
		st.Denied[q] = lane.denied
	}
	return st
}

// AttachJournal makes the ledger durable: it begins a new journal
// session whose base snapshot is the ledger's current state (all
// zeros for a fresh ledger, the recovered spend for one built by
// NewLedgerState) and routes every subsequent charge through
// per-lane batch buffers into w. Call before serving starts.
func (l *Ledger) AttachJournal(w *journal.Writer) error {
	if err := w.Begin(l.State()); err != nil {
		return err
	}
	l.bindJournal(w)
	return nil
}

// AttachJournalNextEpoch attaches a *fresh* ledger (churn rebuild or
// budget reset) to an already-begun journal by starting a new epoch
// instead of a new session. The retired ledger's lanes may still
// flush their final batches concurrently; the writer drops them as
// stale. Errors are sticky in the writer (surfaced by Err/Close), so
// swap paths that cannot abort may ignore the return.
func (l *Ledger) AttachJournalNextEpoch(w *journal.Writer, reason journal.Reason) error {
	ep, err := w.BeginEpoch(l.n, len(l.lanes), reason)
	if err != nil {
		return err
	}
	l.jEpoch = ep
	l.bindJournal(w)
	return nil
}

func (l *Ledger) bindJournal(w *journal.Writer) {
	l.jw = w
	for q := range l.lanes {
		lane := &l.lanes[q]
		lane.jw = w
		lane.jbuf = make([]journal.Spend, 0, w.MaxBatch())
		lane.jT = uint64(lane.t)
		lane.jDenied = lane.denied
	}
}

// Journal returns the attached journal writer, or nil.
func (l *Ledger) Journal() *journal.Writer { return l.jw }

// N returns the advertiser count the ledger was built for.
func (l *Ledger) N() int { return l.n }

// Lanes returns the number of lanes.
func (l *Ledger) Lanes() int { return len(l.lanes) }

// Lane returns lane q. Each lane must be driven by exactly one
// goroutine at a time (the market's serving shard).
func (l *Ledger) Lane(q int) *Lane { return &l.lanes[q] }

// Config returns the enforcement configuration (defaults applied).
func (l *Ledger) Config() Config { return l.cfg }

// Budget returns advertiser i's cap, or 0 when unlimited.
func (l *Ledger) Budget(i int) float64 {
	if l.budget == nil || l.budget[i] <= 0 {
		return 0
	}
	return l.budget[i]
}

// Spent returns the published global spend of advertiser i — the
// wait-free snapshot read, trailing true spend by at most the lanes'
// unpublished windows.
func (l *Ledger) Spent(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&l.snap[i]))
}

// Exhausted reports whether advertiser i's published spend has
// reached its budget (always false for unlimited advertisers).
func (l *Ledger) Exhausted(i int) bool {
	b := l.Budget(i)
	return b > 0 && l.Spent(i) >= b
}

// ExactSpent returns advertiser i's exact global spend: the sum of
// the lanes' cumulative spend arrays in lane order. Each lane's array
// is bitwise equal to its market's Accounting.SpentTotal, so this sum
// equals the cross-market accounting aggregate exactly. The caller
// must have quiesced serving (batch Serve returned, or the streaming
// server drained); the plain reads are otherwise racy.
func (l *Ledger) ExactSpent(i int) float64 {
	var total float64
	for q := range l.lanes {
		total += l.lanes[q].cum[i]
	}
	return total
}

// Totals summarizes the published snapshot: total spend across all
// advertisers, the number of budgeted advertisers at or over their
// cap, and the cumulative published count of participation denials.
// All reads are atomic; safe while serving runs.
func (l *Ledger) Totals() (spent float64, exhausted int, denied int64) {
	for i := 0; i < l.n; i++ {
		s := l.Spent(i)
		spent += s
		if b := l.Budget(i); b > 0 && s >= b {
			exhausted++
		}
	}
	for q := range l.lanes {
		denied += l.lanes[q].deniedPub.Load()
	}
	return spent, exhausted, denied
}

// PublishAll publishes every lane. The caller must have quiesced all
// lane owners (the batch engine calls it after its workers join).
func (l *Ledger) PublishAll() {
	for q := range l.lanes {
		l.lanes[q].Publish()
	}
}

// Lane is one market's slice of the ledger: the cumulative spend this
// market has charged, the portion already published, and the
// per-auction gating state. All methods except the ledger-level
// atomic reads must be called from the single goroutine that owns the
// market.
type Lane struct {
	led *Ledger
	id  int

	t      int       // auctions begun on this lane
	cum    []float64 // cumulative spend per advertiser (single writer)
	pub    []float64 // portion of cum already folded into led.snap
	denied int64     // cumulative participation denials

	deniedPub atomic.Int64 // published view of denied

	// Per-auction decision cache: mark[i] == uint64(t) iff decision[i]
	// holds this auction's verdict for advertiser i. One decision per
	// (advertiser, auction) no matter how many times the winner
	// -determination path consults the gate.
	mark     []uint64
	decision []bool

	// Durability (optional): charges batch into jbuf (preallocated to
	// the writer's MaxBatch, so the append path never allocates) and
	// flush to jw on every Publish trigger or when the buffer fills.
	// jT/jDenied remember the clock and denial counter last flushed so
	// a publish with no new charges still journals counter movement
	// (and an idle lane appends nothing at all).
	jw      *journal.Writer
	jbuf    []journal.Spend
	jT      uint64
	jDenied int64
}

// Ledger returns the lane's owning ledger.
func (l *Lane) Ledger() *Ledger { return l.led }

// BeginAuction advances the lane to its next auction, invalidating
// the per-auction decision cache, and publishes on the refresh
// cadence. Call once at the top of every market auction.
func (l *Lane) BeginAuction() {
	l.t++
	if l.t%l.led.cfg.RefreshEvery == 0 {
		l.Publish()
	}
}

// Auctions returns the number of auctions begun on this lane.
func (l *Lane) Auctions() int { return l.t }

// Charge records that advertiser i was charged amount in this lane's
// market. The market calls it with exactly the values it adds to
// Accounting.SpentTotal, keeping the two bitwise equal.
func (l *Lane) Charge(i int, amount float64) {
	l.cum[i] += amount
	if l.jw != nil {
		if len(l.jbuf) == cap(l.jbuf) {
			l.flushJournal()
		}
		l.jbuf = append(l.jbuf, journal.Spend{Adv: uint32(i), Bits: math.Float64bits(amount)})
	}
}

// flushJournal hands the lane's batched charges to the journal writer
// in charge order (which is what makes replayed lane sums bitwise
// equal to the live ones). A write failure is sticky in the writer
// and surfaced at Close — the auction path never stalls on the disk.
func (l *Lane) flushJournal() {
	if l.jw == nil {
		return
	}
	if len(l.jbuf) == 0 && uint64(l.t) == l.jT && l.denied == l.jDenied {
		return
	}
	_ = l.jw.AppendSpend(l.led.jEpoch, l.id, uint64(l.t), l.denied, l.jbuf)
	l.jT = uint64(l.t)
	l.jDenied = l.denied
	l.jbuf = l.jbuf[:0]
}

// Spent returns this lane's own cumulative charge to advertiser i
// (owner read).
func (l *Lane) Spent(i int) float64 { return l.cum[i] }

// Estimate returns the lane's view of advertiser i's global spend:
// the published snapshot plus this lane's own unpublished delta —
// exact for the lane's own market, stale by at most the refresh
// window for every other lane.
func (l *Lane) Estimate(i int) float64 {
	return l.led.Spent(i) + (l.cum[i] - l.pub[i])
}

// Allowed reports whether advertiser i participates in the lane's
// current auction. The first call per auction decides (and counts a
// denial when it gates); repeated calls return the cached verdict, so
// the threshold-algorithm path can consult the gate per lookup
// without re-drawing pacing decisions. Allocation-free.
func (l *Lane) Allowed(i int) bool {
	if l.mark[i] == uint64(l.t) {
		return l.decision[i]
	}
	l.mark[i] = uint64(l.t)
	d := l.decide(i)
	l.decision[i] = d
	if !d {
		l.denied++
	}
	return d
}

// decide computes the per-auction participation verdict.
func (l *Lane) decide(i int) bool {
	b := l.led.Budget(i)
	if b == 0 {
		return true
	}
	spent := l.Estimate(i)
	if spent >= b {
		return false // both policies hard-stop at the cap
	}
	if l.led.cfg.Policy != PolicyPaced {
		return true
	}
	h := float64(l.led.cfg.Horizon)
	elapsed := float64(l.t) / h
	if elapsed >= 1 {
		return true // horizon over: nothing left to smooth
	}
	if spent/b <= elapsed {
		return true // on or behind schedule
	}
	// Ahead of schedule: participate with probability proportional to
	// the remaining budget over the remaining horizon.
	p := (b - spent) / (b * (1 - elapsed))
	return l.u01(i) < p
}

// u01 derives the deterministic pacing draw for (lane, advertiser,
// auction) in [0, 1).
func (l *Lane) u01(i int) float64 {
	x := uint64(l.led.cfg.Seed) ^
		uint64(l.id+1)*0x9e3779b97f4a7c15 ^
		uint64(i+1)*0xbf58476d1ce4e5b9 ^
		uint64(l.t)*0x94d049bb133111eb
	x = splitmix64(x)
	return float64(x>>11) / (1 << 53)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Publish folds the lane's unpublished spend into the shared
// snapshot and publishes the denial counter. Owner-called (refresh
// cadence, flush fences, drain); the snapshot additions are lock-free
// CAS loops, contended only when two lanes publish the same
// advertiser simultaneously. Allocation-free. When a journal is
// attached, every publish trigger also flushes the lane's batched
// charges, so journal staleness is bounded by the same K·R·P argument
// as snapshot staleness.
func (l *Lane) Publish() {
	l.flushJournal()
	for i := range l.cum {
		if d := l.cum[i] - l.pub[i]; d != 0 {
			addFloat(&l.led.snap[i], d)
			l.pub[i] = l.cum[i]
		}
	}
	l.deniedPub.Store(l.denied)
}

// addFloat atomically adds delta to the float64 stored in bits at p.
func addFloat(p *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(p)
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(p, old, nw) {
			return
		}
	}
}
