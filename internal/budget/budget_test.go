package budget

import (
	"math"
	"sync"
	"testing"

	"repro/internal/racetest"
)

// TestHardGate: the hard policy admits until the estimate reaches the
// cap and gates from then on; unlimited advertisers are never gated.
func TestHardGate(t *testing.T) {
	led := NewLedger(3, 1, []float64{10, 0, 5}, Config{Policy: PolicyHard, RefreshEvery: 1})
	lane := led.Lane(0)

	lane.BeginAuction()
	for i := 0; i < 3; i++ {
		if !lane.Allowed(i) {
			t.Fatalf("advertiser %d gated with zero spend", i)
		}
	}
	lane.Charge(0, 10) // exactly at cap
	lane.Charge(2, 4.5)
	lane.BeginAuction() // publishes (RefreshEvery=1)
	if lane.Allowed(0) {
		t.Fatal("advertiser 0 at cap still allowed")
	}
	if !lane.Allowed(1) {
		t.Fatal("unlimited advertiser gated")
	}
	if !lane.Allowed(2) {
		t.Fatal("advertiser 2 under cap gated")
	}
	if !led.Exhausted(0) || led.Exhausted(1) || led.Exhausted(2) {
		t.Fatalf("exhausted flags wrong: %v %v %v",
			led.Exhausted(0), led.Exhausted(1), led.Exhausted(2))
	}
}

// TestDecisionCachedPerAuction: one verdict (and at most one denial)
// per advertiser per auction, however many times the gate is
// consulted.
func TestDecisionCachedPerAuction(t *testing.T) {
	led := NewLedger(1, 1, []float64{1}, Config{Policy: PolicyHard, RefreshEvery: 1})
	lane := led.Lane(0)
	lane.Charge(0, 2)
	lane.BeginAuction()
	for r := 0; r < 5; r++ {
		if lane.Allowed(0) {
			t.Fatal("over-cap advertiser allowed")
		}
	}
	lane.Publish()
	if _, _, denied := led.Totals(); denied != 1 {
		t.Fatalf("denied = %d, want 1 (one per auction, not per consult)", denied)
	}
}

// TestEstimateSeesOwnLaneExactly: a lane's estimate includes its own
// unpublished spend immediately, and other lanes' spend only after
// they publish.
func TestEstimateSeesOwnLaneExactly(t *testing.T) {
	led := NewLedger(1, 2, []float64{100}, Config{Policy: PolicyHard, RefreshEvery: 1 << 30})
	a, b := led.Lane(0), led.Lane(1)
	a.Charge(0, 7)
	if got := a.Estimate(0); got != 7 {
		t.Fatalf("own-lane estimate %v, want 7", got)
	}
	if got := b.Estimate(0); got != 0 {
		t.Fatalf("cross-lane estimate %v before publish, want 0", got)
	}
	a.Publish()
	if got := b.Estimate(0); got != 7 {
		t.Fatalf("cross-lane estimate %v after publish, want 7", got)
	}
	// Publishing twice must not double-count.
	a.Publish()
	if got := led.Spent(0); got != 7 {
		t.Fatalf("snapshot %v after republish, want 7", got)
	}
}

// TestExactSpentMatchesPerLaneSums: ExactSpent is the lane-order sum
// of the cumulative arrays — bitwise equal to summing the per-market
// accounting the same way, including awkward floating-point values.
func TestExactSpentMatchesPerLaneSums(t *testing.T) {
	led := NewLedger(1, 3, nil, Config{Policy: PolicyHard})
	vals := [][]float64{{0.1, 0.7, 1e-9}, {3.3}, {0.2, 0.2, 0.2, 1e17}}
	var mirror [3]float64
	for q, charges := range vals {
		for _, c := range charges {
			led.Lane(q).Charge(0, c)
			mirror[q] += c
		}
	}
	var want float64
	for q := 0; q < 3; q++ {
		want += mirror[q]
	}
	if got := led.ExactSpent(0); got != want {
		t.Fatalf("ExactSpent %v != lane-order sum %v", got, want)
	}
}

// TestPacedDeterministicAndSmoothing: paced decisions are a pure
// function of (config, lane, advertiser, auction); an advertiser
// ahead of schedule is throttled but not silenced, and the cap still
// hard-stops.
func TestPacedDeterministicAndSmoothing(t *testing.T) {
	cfg := Config{Policy: PolicyPaced, RefreshEvery: 1, Horizon: 1000, Seed: 9}
	run := func() []bool {
		led := NewLedger(1, 1, []float64{100}, cfg)
		lane := led.Lane(0)
		var out []bool
		for a := 0; a < 400; a++ {
			lane.BeginAuction()
			ok := lane.Allowed(0)
			out = append(out, ok)
			if ok {
				lane.Charge(0, 1) // spending 1/auction: 10x the smooth rate
			}
		}
		return out
	}
	first, second := run(), run()
	allowed, denied := 0, 0
	for a := range first {
		if first[a] != second[a] {
			t.Fatalf("auction %d: paced decision not deterministic", a)
		}
		if first[a] {
			allowed++
		} else {
			denied++
		}
	}
	if denied == 0 {
		t.Fatal("advertiser 10x ahead of schedule was never throttled")
	}
	if allowed == 0 {
		t.Fatal("paced advertiser never participated")
	}
	// The budget must never be breached by more than one auction's
	// charge (single lane: the estimate is exact).
	led := NewLedger(1, 1, []float64{100}, cfg)
	lane := led.Lane(0)
	for a := 0; a < 5000; a++ {
		lane.BeginAuction()
		if lane.Allowed(0) {
			lane.Charge(0, 1)
		}
	}
	if got := lane.Spent(0); got > 100 {
		t.Fatalf("paced spend %v exceeded the cap", got)
	}
}

// TestPacedBehindScheduleAlwaysAllowed: an advertiser at or behind
// the smooth spend schedule is never throttled.
func TestPacedBehindScheduleAlwaysAllowed(t *testing.T) {
	led := NewLedger(1, 1, []float64{1000}, Config{Policy: PolicyPaced, Horizon: 1000, Seed: 3})
	lane := led.Lane(0)
	for a := 0; a < 900; a++ {
		lane.BeginAuction()
		if !lane.Allowed(0) {
			t.Fatalf("auction %d: behind-schedule advertiser throttled", a)
		}
		lane.Charge(0, 0.5) // half the smooth rate
	}
}

// TestConcurrentPublishAndRead: lanes charging and publishing from
// separate goroutines while a reader polls the snapshot — the -race
// proof of the single-writer-lane / atomic-snapshot split. The final
// snapshot must equal the exact total up to float summation-order
// slack.
func TestConcurrentPublishAndRead(t *testing.T) {
	const lanes, perLane = 4, 2000
	led := NewLedger(2, lanes, []float64{1e18, 0}, Config{Policy: PolicyHard, RefreshEvery: 7})
	stop := make(chan struct{})
	var pollers, owners sync.WaitGroup
	pollers.Add(1)
	go func() { // snapshot poller
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s := led.Spent(0); s < 0 || math.IsNaN(s) {
				t.Error("snapshot read returned garbage")
				return
			}
			led.Totals()
		}
	}()
	for q := 0; q < lanes; q++ {
		owners.Add(1)
		go func(q int) {
			defer owners.Done()
			lane := led.Lane(q)
			for a := 0; a < perLane; a++ {
				lane.BeginAuction()
				if lane.Allowed(0) {
					lane.Charge(0, 0.25)
				}
			}
			lane.Publish()
		}(q)
	}
	owners.Wait()
	close(stop)
	pollers.Wait()
	exact := led.ExactSpent(0)
	if exact != float64(lanes*perLane)*0.25 {
		t.Fatalf("exact total %v, want %v", exact, float64(lanes*perLane)*0.25)
	}
	if snap := led.Spent(0); math.Abs(snap-exact) > 1e-6 {
		t.Fatalf("published snapshot %v far from exact %v", snap, exact)
	}
}

// TestLaneSteadyStateAllocs: the per-auction lane operations —
// BeginAuction (including its periodic Publish), Allowed under both
// policies, and Charge — perform zero heap allocations.
func TestLaneSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	for _, pol := range []Policy{PolicyHard, PolicyPaced} {
		const n = 200
		budgets := make([]float64, n)
		for i := range budgets {
			budgets[i] = float64(50 + i)
		}
		led := NewLedger(n, 1, budgets, Config{Policy: pol, RefreshEvery: 8, Horizon: 500, Seed: 4})
		lane := led.Lane(0)
		allocs := testing.AllocsPerRun(500, func() {
			lane.BeginAuction()
			for i := 0; i < n; i++ {
				if lane.Allowed(i) {
					lane.Charge(i, 0.5)
				}
			}
		})
		if allocs != 0 {
			t.Fatalf("policy %v: steady-state lane ops allocate %.2f objects/op, want 0", pol, allocs)
		}
	}
}

// TestPolicyString covers the operator-facing names.
func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{PolicyOff: "off", PolicyHard: "hard", PolicyPaced: "paced", Policy(9): "Policy(?)"} {
		if got := p.String(); got != want {
			t.Fatalf("Policy(%d).String() = %q, want %q", p, got, want)
		}
	}
}
