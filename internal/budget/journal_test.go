package budget

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/journal"
)

// driveLanes runs a deterministic charge/deny trace over every lane.
func driveLanes(l *Ledger, seed int64, auctions int) {
	rng := rand.New(rand.NewSource(seed))
	for a := 0; a < auctions; a++ {
		for q := 0; q < l.Lanes(); q++ {
			lane := l.Lane(q)
			lane.BeginAuction()
			for c := 0; c < 3; c++ {
				i := rng.Intn(l.N())
				if lane.Allowed(i) {
					lane.Charge(i, float64(rng.Intn(400))/8)
				}
			}
		}
	}
}

// TestLedgerJournalRoundTrip pins the bitwise replay contract at the
// ledger level: journal → Recover → NewLedgerState reproduces every
// per-advertiser ExactSpent bit for bit, and a resumed session keeps
// accumulating on top of the restored base.
func TestLedgerJournalRoundTrip(t *testing.T) {
	for _, snapEvery := range []int64{-1, 1 << 10} { // tail-only and compacted
		dir := t.TempDir()
		w, err := journal.Open(dir, journal.Options{SnapshotEvery: snapEvery, MaxBatch: 16})
		if err != nil {
			t.Fatal(err)
		}
		const n, lanes = 50, 4
		budgets := make([]float64, n)
		for i := range budgets {
			budgets[i] = 900 + float64(i)
		}
		led := NewLedger(n, lanes, budgets, Config{Policy: PolicyHard, RefreshEvery: 8})
		if err := led.AttachJournal(w); err != nil {
			t.Fatal(err)
		}
		driveLanes(led, 11, 300)
		led.PublishAll()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		rec, err := journal.Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rec.CorruptOffset != -1 {
			t.Fatalf("snapEvery=%d: corrupt at %d (%s)", snapEvery, rec.CorruptOffset, rec.CorruptReason)
		}
		restored := NewLedgerState(rec.State, budgets, led.Config())
		for i := 0; i < n; i++ {
			want := led.ExactSpent(i)
			got := restored.ExactSpent(i)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("snapEvery=%d: advertiser %d restored %v, want %v (bitwise)", snapEvery, i, got, want)
			}
			if math.Float64bits(restored.Spent(i)) != math.Float64bits(got) {
				t.Fatalf("snapEvery=%d: advertiser %d snapshot %v != exact %v after restore", snapEvery, i, restored.Spent(i), got)
			}
		}
		for q := 0; q < lanes; q++ {
			if restored.Lane(q).Auctions() != led.Lane(q).Auctions() {
				t.Fatalf("snapEvery=%d: lane %d clock %d, want %d", snapEvery, q, restored.Lane(q).Auctions(), led.Lane(q).Auctions())
			}
		}

		// Resume: a second session over the restored ledger.
		w2, err := journal.Open(dir, journal.Options{MaxBatch: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.AttachJournal(w2); err != nil {
			t.Fatal(err)
		}
		driveLanes(restored, 12, 100)
		restored.PublishAll()
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		rec2, err := journal.Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		final := NewLedgerState(rec2.State, budgets, led.Config())
		for i := 0; i < n; i++ {
			if math.Float64bits(final.ExactSpent(i)) != math.Float64bits(restored.ExactSpent(i)) {
				t.Fatalf("snapEvery=%d: advertiser %d resumed-recovery mismatch", snapEvery, i)
			}
		}
	}
}

// TestLedgerJournalEpochSwap pins the churn/reset contract: a fresh
// ledger attached with AttachJournalNextEpoch starts a new epoch, and
// the retired ledger's late flushes are dropped rather than polluting
// the new epoch's recovery.
func TestLedgerJournalEpochSwap(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(dir, journal.Options{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n, lanes = 20, 2
	old := NewLedger(n, lanes, nil, Config{Policy: PolicyHard})
	if err := old.AttachJournal(w); err != nil {
		t.Fatal(err)
	}
	driveLanes(old, 21, 50)
	old.PublishAll()

	fresh := NewLedger(n, lanes, nil, Config{Policy: PolicyHard})
	if err := fresh.AttachJournalNextEpoch(w, journal.ReasonReset); err != nil {
		t.Fatal(err)
	}
	// Straggler: the retired ledger flushes after the swap.
	old.Lane(0).Charge(3, 1e8)
	old.Lane(0).Publish()
	if got := w.Stats().StaleDropped; got == 0 {
		t.Fatal("retired ledger's flush was not dropped")
	}

	driveLanes(fresh, 22, 40)
	fresh.PublishAll()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State.Epoch != 2 {
		t.Fatalf("recovered epoch %d, want 2", rec.State.Epoch)
	}
	restored := NewLedgerState(rec.State, nil, fresh.Config())
	for i := 0; i < n; i++ {
		if math.Float64bits(restored.ExactSpent(i)) != math.Float64bits(fresh.ExactSpent(i)) {
			t.Fatalf("advertiser %d: recovered %v, want the fresh ledger's %v", i, restored.ExactSpent(i), fresh.ExactSpent(i))
		}
	}
	if restored.ExactSpent(3) >= 1e8 {
		t.Fatal("stale spend leaked across the epoch swap")
	}
}
