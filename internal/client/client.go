// Package client is the Go driver for the networked serving tier: a
// Conn dials internal/server's wire protocol, pipelines requests over
// one TCP connection, and surfaces every serving disposition as a
// typed error.
//
// # Concurrency model
//
// A Conn is safe for concurrent use: pipelining comes from many
// goroutines issuing synchronous calls over the same connection. Each
// call takes one of Window request slots (the slot index is the wire
// request ID, so correlation is a direct array index — no map, no
// allocation), encodes under the write lock, and parks on its slot's
// channel until the single reader goroutine decodes the matching
// response. Slot payloads decode into per-slot reused buffers and the
// results are copied into caller-owned storage (AuctionInto) before
// the slot is released, so a warm caller's auction loop allocates
// nothing end to end — the guarantee BenchmarkServerSteadyState gates
// through the full client → server → client path.
//
// # Failure model
//
// The connection fails as a unit: a write error, torn frame, checksum
// mismatch, protocol violation, or response timeout marks the Conn
// down with a sticky error, fails every in-flight and subsequent call
// with it, and closes the socket. Per-request dispositions that are
// not failures of the connection — shed, rejected, unrouted — are
// typed sentinel errors (ErrShed, ErrRejected, ErrUnrouted) the
// load-generator counts rather than fears.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Typed errors. Dial failures: ErrServerFull, ErrDraining. Per-call
// dispositions: ErrShed, ErrRejected (wrapped with the reason),
// ErrUnrouted. Connection failures: ErrClosed, ErrTimeout (both
// sticky once set).
var (
	ErrServerFull = errors.New("client: server at connection cap")
	ErrDraining   = errors.New("client: server draining")
	ErrShed       = errors.New("client: query shed by overload policy")
	ErrRejected   = errors.New("client: rejected at connection layer")
	ErrUnrouted   = errors.New("client: text matched no keyword")
	ErrClosed     = errors.New("client: connection closed")
	ErrTimeout    = errors.New("client: response timeout")
)

// Options tunes a Conn.
type Options struct {
	// Window is the pipelining depth: the number of request slots,
	// and so the number of concurrent calls one Conn supports
	// (default 32). Callers beyond it block for a free slot.
	Window int
	// Timeout bounds the wait for any response while calls are in
	// flight; exceeding it fails the connection with ErrTimeout.
	// Zero means no timeout. Note a Drain call legitimately waits for
	// the server's full queue drain — use a generous timeout or a
	// dedicated Conn for control traffic.
	Timeout time.Duration
	// MaxFrame bounds accepted response frames (default
	// wire.MaxFrame).
	MaxFrame int
	// DialTimeout bounds the TCP connect + handshake (default 10s).
	DialTimeout time.Duration
	// RTT, when non-nil, receives the end-to-end latency of every
	// successful auction-carrying call (AuctionInto/TextInto), from
	// send to decoded response, in nanoseconds. A histogram may be
	// shared by many Conns (its writes are atomic); nil skips the
	// time.Now calls entirely. Register it in an obs.Registry to
	// expose it.
	RTT *obs.Histogram
}

func (o *Options) window() int {
	if o.Window > 0 {
		return o.Window
	}
	return 32
}

func (o *Options) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	return 10 * time.Second
}

// slot is one in-flight request: the caller parks on done; the reader
// decodes into resp (reused buffers) and signals.
type slot struct {
	done     chan struct{}
	resp     wire.Response
	inflight atomic.Bool
}

// Conn is one connection to a serving tier. Construct with Dial.
type Conn struct {
	nc   net.Conn
	opts Options
	fr   *wire.FrameReader

	wmu sync.Mutex // guards bw and enc
	bw  *bufio.Writer
	enc []byte

	slots   []slot
	free    chan int32
	pending atomic.Int64 // calls awaiting a response (timeout arming)

	emu  sync.Mutex
	err  error
	down chan struct{} // closed when the sticky error is set

	readerDone chan struct{}
}

// Dial connects, performs the magic handshake, and starts the reader.
// A server at its connection cap fails with ErrServerFull, a draining
// server with ErrDraining.
func Dial(addr string, opts Options) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	nc.SetDeadline(time.Now().Add(opts.dialTimeout()))
	if _, err := nc.Write([]byte(wire.Magic)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake write: %w", err)
	}
	var hs [len(wire.Magic) + 1]byte
	if _, err := io.ReadFull(nc, hs[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake read: %w", err)
	}
	if string(hs[:len(wire.Magic)]) != wire.Magic {
		nc.Close()
		return nil, fmt.Errorf("client: bad handshake magic %q", hs[:len(wire.Magic)])
	}
	switch hs[len(wire.Magic)] {
	case wire.HandshakeOK:
	case wire.HandshakeFull:
		nc.Close()
		return nil, ErrServerFull
	case wire.HandshakeDraining:
		nc.Close()
		return nil, ErrDraining
	default:
		nc.Close()
		return nil, fmt.Errorf("client: unknown handshake status %d", hs[len(wire.Magic)])
	}
	nc.SetDeadline(time.Time{})

	w := opts.window()
	c := &Conn{
		nc:         nc,
		opts:       opts,
		fr:         wire.NewFrameReader(bufio.NewReaderSize(nc, 64<<10), opts.MaxFrame),
		bw:         bufio.NewWriterSize(nc, 64<<10),
		slots:      make([]slot, w),
		free:       make(chan int32, w),
		down:       make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	for i := range c.slots {
		c.slots[i].done = make(chan struct{}, 1)
		c.free <- int32(i)
	}
	go c.readLoop()
	return c, nil
}

// Err returns the sticky connection error, nil while healthy.
func (c *Conn) Err() error {
	c.emu.Lock()
	defer c.emu.Unlock()
	return c.err
}

// fatal sets the sticky error once, wakes all waiters, and closes the
// socket.
func (c *Conn) fatal(err error) {
	c.emu.Lock()
	if c.err == nil {
		c.err = err
		close(c.down)
	}
	c.emu.Unlock()
	c.nc.Close()
}

// Close marks the connection closed and tears it down. In-flight
// calls fail with ErrClosed. Always returns nil.
func (c *Conn) Close() error {
	c.fatal(ErrClosed)
	<-c.readerDone
	return nil
}

func (c *Conn) readLoop() {
	defer close(c.readerDone)
	for {
		p, err := c.fr.Next()
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				c.fatal(fmt.Errorf("%w: server closed the connection", ErrClosed))
			case isTimeout(err):
				c.fatal(fmt.Errorf("%w: no response within %v", ErrTimeout, c.opts.Timeout))
			default:
				c.fatal(err)
			}
			return
		}
		_, id, err := wire.PeekID(p)
		if err != nil || id >= uint64(len(c.slots)) {
			c.fatal(fmt.Errorf("client: response correlation: bad request id %d", id))
			return
		}
		sl := &c.slots[id]
		if !sl.inflight.Load() {
			c.fatal(fmt.Errorf("client: response for idle slot %d", id))
			return
		}
		if err := sl.resp.Decode(p); err != nil {
			c.fatal(err)
			return
		}
		sl.inflight.Store(false)
		sl.done <- struct{}{}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// acquire blocks for a free slot (or the connection's death).
func (c *Conn) acquire() (int32, error) {
	select {
	case si := <-c.free:
		return si, nil
	case <-c.down:
		return 0, c.Err()
	}
}

// send encodes under the write lock via enc (a frame appender over
// the shared buffer) and flushes.
func (c *Conn) send(si int32, enc func(dst []byte, id uint64) []byte) error {
	sl := &c.slots[si]
	sl.inflight.Store(true)
	c.pending.Add(1)
	c.wmu.Lock()
	c.enc = enc(c.enc[:0], uint64(si))
	_, err := c.bw.Write(c.enc)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.pending.Add(-1)
		c.fatal(fmt.Errorf("client: write: %w", err))
		return c.Err()
	}
	if c.opts.Timeout > 0 {
		// Concurrent SetReadDeadline re-arms even a blocked read.
		c.nc.SetReadDeadline(time.Now().Add(c.opts.Timeout))
	}
	return nil
}

// wait parks until the slot's response arrives; the caller must copy
// what it needs from the returned Response before calling release.
func (c *Conn) wait(si int32) (*wire.Response, error) {
	sl := &c.slots[si]
	select {
	case <-sl.done:
	case <-c.down:
		// The reader may have signaled done concurrently with the
		// connection dying; drain the signal so the slot channel
		// stays clean, then fail the call either way.
		select {
		case <-sl.done:
		default:
		}
		return nil, c.Err()
	}
	if n := c.pending.Add(-1); n == 0 && c.opts.Timeout > 0 {
		c.nc.SetReadDeadline(time.Time{})
	}
	return &sl.resp, nil
}

func (c *Conn) release(si int32) {
	c.free <- si
}

// Inflight reports the number of occupied request slots — the window
// occupancy a telemetry gauge over one or many Conns sums. Safe to
// call concurrently with serving calls.
func (c *Conn) Inflight() int {
	return len(c.slots) - len(c.free)
}

// rejectedErr maps a KindRejected reason into ErrRejected-wrapped
// sentinels without allocating for the common reasons.
var (
	errRejWindow   = fmt.Errorf("%w: %s", ErrRejected, wire.ReasonWindow)
	errRejDraining = fmt.Errorf("%w: %s", ErrRejected, wire.ReasonDraining)
	errRejClosed   = fmt.Errorf("%w: %s", ErrRejected, wire.ReasonClosed)
)

func rejectedErr(r wire.RejectReason) error {
	switch r {
	case wire.ReasonWindow:
		return errRejWindow
	case wire.ReasonDraining:
		return errRejDraining
	case wire.ReasonClosed:
		return errRejClosed
	default:
		return fmt.Errorf("%w: %s", ErrRejected, r)
	}
}

// AuctionInto runs one auction for keyword q and deep-copies the
// outcome into out (reusing its slices): the allocation-free serving
// call. Dispositions: nil with the outcome filled, ErrShed,
// ErrRejected, or a sticky connection error.
func (c *Conn) AuctionInto(q int, out *wire.Outcome) error {
	si, err := c.acquire()
	if err != nil {
		return err
	}
	var t0 time.Time
	if c.opts.RTT != nil {
		t0 = time.Now()
	}
	if err := c.send(si, func(dst []byte, id uint64) []byte {
		return wire.AppendAuctionReq(dst, id, q)
	}); err != nil {
		return err
	}
	resp, err := c.wait(si)
	if err != nil {
		return err
	}
	if c.opts.RTT != nil {
		c.opts.RTT.Record(time.Since(t0).Nanoseconds())
	}
	defer c.release(si)
	switch resp.Kind {
	case wire.KindOutcome:
		out.CopyFrom(&resp.Out)
		return nil
	case wire.KindShed:
		return ErrShed
	case wire.KindRejected:
		return rejectedErr(resp.Reason)
	case wire.KindError:
		return fmt.Errorf("client: server error: %s", resp.Msg)
	default:
		return fmt.Errorf("client: unexpected response kind 0x%02x", uint8(resp.Kind))
	}
}

// Auction is AuctionInto with a freshly allocated outcome.
func (c *Conn) Auction(q int) (*wire.Outcome, error) {
	var out wire.Outcome
	if err := c.AuctionInto(q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TextInto routes free text server-side and runs the matched
// keyword's auction; ErrUnrouted when no keyword matches.
func (c *Conn) TextInto(query string, out *wire.Outcome) error {
	si, err := c.acquire()
	if err != nil {
		return err
	}
	var t0 time.Time
	if c.opts.RTT != nil {
		t0 = time.Now()
	}
	if err := c.send(si, func(dst []byte, id uint64) []byte {
		return wire.AppendTextReq(dst, id, query)
	}); err != nil {
		return err
	}
	resp, err := c.wait(si)
	if err != nil {
		return err
	}
	if c.opts.RTT != nil {
		c.opts.RTT.Record(time.Since(t0).Nanoseconds())
	}
	defer c.release(si)
	switch resp.Kind {
	case wire.KindOutcome:
		out.CopyFrom(&resp.Out)
		return nil
	case wire.KindUnrouted:
		return ErrUnrouted
	case wire.KindShed:
		return ErrShed
	case wire.KindRejected:
		return rejectedErr(resp.Reason)
	case wire.KindError:
		return fmt.Errorf("client: server error: %s", resp.Msg)
	default:
		return fmt.Errorf("client: unexpected response kind 0x%02x", uint8(resp.Kind))
	}
}

// Batch submits qs under one request and one server window slot,
// returning the aggregate dispositions.
func (c *Conn) Batch(qs []int) (wire.BatchResult, error) {
	si, err := c.acquire()
	if err != nil {
		return wire.BatchResult{}, err
	}
	if err := c.send(si, func(dst []byte, id uint64) []byte {
		return wire.AppendBatchReq(dst, id, qs)
	}); err != nil {
		return wire.BatchResult{}, err
	}
	resp, err := c.wait(si)
	if err != nil {
		return wire.BatchResult{}, err
	}
	defer c.release(si)
	switch resp.Kind {
	case wire.KindBatchResult:
		return resp.Batch, nil
	case wire.KindError:
		return wire.BatchResult{}, fmt.Errorf("client: server error: %s", resp.Msg)
	default:
		return wire.BatchResult{}, fmt.Errorf("client: unexpected response kind 0x%02x", uint8(resp.Kind))
	}
}

// Stats snapshots the server's connection-layer counters and the
// stream layer beneath.
func (c *Conn) Stats() (wire.ServerStats, error) {
	return c.statsCall(wire.AppendStatsReq)
}

// StatsV2 snapshots the server like Stats and additionally carries
// the serving latency histogram (totals plus nonzero buckets). The
// returned Buckets slice is caller-owned.
func (c *Conn) StatsV2() (wire.ServerStatsV2, error) {
	si, err := c.acquire()
	if err != nil {
		return wire.ServerStatsV2{}, err
	}
	if err := c.send(si, wire.AppendStatsV2Req); err != nil {
		return wire.ServerStatsV2{}, err
	}
	resp, err := c.wait(si)
	if err != nil {
		return wire.ServerStatsV2{}, err
	}
	defer c.release(si)
	switch resp.Kind {
	case wire.KindStatsV2Result:
		st := resp.StatsV2
		// The decode reuses the slot's bucket slice; copy out.
		st.Buckets = append([]wire.HistBucket(nil), resp.StatsV2.Buckets...)
		return st, nil
	case wire.KindError:
		return wire.ServerStatsV2{}, fmt.Errorf("client: server error: %s", resp.Msg)
	default:
		return wire.ServerStatsV2{}, fmt.Errorf("client: unexpected response kind 0x%02x", uint8(resp.Kind))
	}
}

// Drain asks the server to gracefully drain — intake stops, every
// queued auction is served — and returns the final stats. The call
// legitimately blocks for the full drain.
func (c *Conn) Drain() (wire.ServerStats, error) {
	return c.statsCall(wire.AppendDrainReq)
}

func (c *Conn) statsCall(enc func([]byte, uint64) []byte) (wire.ServerStats, error) {
	si, err := c.acquire()
	if err != nil {
		return wire.ServerStats{}, err
	}
	if err := c.send(si, enc); err != nil {
		return wire.ServerStats{}, err
	}
	resp, err := c.wait(si)
	if err != nil {
		return wire.ServerStats{}, err
	}
	defer c.release(si)
	switch resp.Kind {
	case wire.KindStatsResult:
		return resp.Stats, nil
	case wire.KindError:
		return wire.ServerStats{}, fmt.Errorf("client: server error: %s", resp.Msg)
	default:
		return wire.ServerStats{}, fmt.Errorf("client: unexpected response kind 0x%02x", uint8(resp.Kind))
	}
}

// ResetBudgets issues the "next day" budget-reset fence via the wire.
func (c *Conn) ResetBudgets() error {
	return c.okCall(wire.AppendResetReq)
}

func (c *Conn) okCall(enc func([]byte, uint64) []byte) error {
	si, err := c.acquire()
	if err != nil {
		return err
	}
	if err := c.send(si, enc); err != nil {
		return err
	}
	resp, err := c.wait(si)
	if err != nil {
		return err
	}
	defer c.release(si)
	switch resp.Kind {
	case wire.KindOK:
		return nil
	case wire.KindError:
		return fmt.Errorf("client: server error: %s", resp.Msg)
	default:
		return fmt.Errorf("client: unexpected response kind 0x%02x", uint8(resp.Kind))
	}
}

// AddAdvertiser admits a into the live population (an epoch-fence
// churn via the wire) and returns the new advertiser index.
func (c *Conn) AddAdvertiser(a *workload.Advertiser) (int, error) {
	si, err := c.acquire()
	if err != nil {
		return 0, err
	}
	if err := c.send(si, func(dst []byte, id uint64) []byte {
		return wire.AppendAddReq(dst, id, a)
	}); err != nil {
		return 0, err
	}
	resp, err := c.wait(si)
	if err != nil {
		return 0, err
	}
	defer c.release(si)
	switch resp.Kind {
	case wire.KindAdded:
		return resp.Index, nil
	case wire.KindError:
		return 0, fmt.Errorf("client: server error: %s", resp.Msg)
	default:
		return 0, fmt.Errorf("client: unexpected response kind 0x%02x", uint8(resp.Kind))
	}
}

// RemoveAdvertiser evicts advertiser i via the wire.
func (c *Conn) RemoveAdvertiser(i int) error {
	si, err := c.acquire()
	if err != nil {
		return err
	}
	if err := c.send(si, func(dst []byte, id uint64) []byte {
		return wire.AppendRemoveReq(dst, id, i)
	}); err != nil {
		return err
	}
	resp, err := c.wait(si)
	if err != nil {
		return err
	}
	defer c.release(si)
	switch resp.Kind {
	case wire.KindOK:
		return nil
	case wire.KindError:
		return fmt.Errorf("client: server error: %s", resp.Msg)
	default:
		return fmt.Errorf("client: unexpected response kind 0x%02x", uint8(resp.Kind))
	}
}
