// Package core is the auction engine: it ties the bidding language
// (internal/formula), the outcome probability models
// (internal/probmodel), and the winner-determination solvers
// (internal/matching, internal/lp) into the multi-feature sponsored
// search auction of the paper.
//
// The central object is Auction: a set of advertisers with Bids
// tables over Click/Purchase/Slot predicates plus a probability
// model. Determine solves winner determination — the allocation of
// slots to advertisers maximizing expected revenue under the
// pay-what-you-bid assumption — by any of the paper's methods (LP, H,
// RH, parallel RH, the separable fast path, or brute force), after
// verifying the bids lie in the tractable 1-dependent fragment of
// Theorem 2. Bids on 2-dependent events (such as "I am placed above
// my rival", Theorem 3) are rejected by these methods and handled
// only by the exponential DetermineGeneral oracle.
package core

import (
	"errors"
	"fmt"

	"repro/internal/formula"
	"repro/internal/probmodel"
)

// Advertiser is one bidder: an identifier, a Bids table produced by
// its bidding program, and (for the Section III-F model) its
// heavyweight classification.
type Advertiser struct {
	ID    string
	Bids  formula.Bids
	Heavy bool
}

// Auction is one winner-determination instance.
type Auction struct {
	// Slots is k, the number of advertising slots on the page.
	Slots int
	// Advertisers holds the bidders; Probs rows are indexed in
	// parallel.
	Advertisers []Advertiser
	// Probs gives click and purchase probabilities per advertiser and
	// slot (n×k).
	Probs *probmodel.Model
}

// ErrNotOneDependent reports bids outside the tractable fragment.
var ErrNotOneDependent = errors.New(
	"core: bids reference other advertisers' placements (not 1-dependent); " +
		"winner determination for such bids is APX-hard (Theorem 3) — " +
		"use DetermineGeneral for tiny instances")

// Validate checks structural consistency.
func (a *Auction) Validate() error {
	if a.Slots < 0 {
		return fmt.Errorf("core: negative slot count %d", a.Slots)
	}
	if a.Probs == nil {
		return errors.New("core: nil probability model")
	}
	if err := a.Probs.Validate(); err != nil {
		return err
	}
	if got := a.Probs.Advertisers(); got != len(a.Advertisers) {
		return fmt.Errorf("core: model covers %d advertisers, auction has %d", got, len(a.Advertisers))
	}
	if len(a.Advertisers) > 0 && a.Probs.Slots() != a.Slots {
		return fmt.Errorf("core: model covers %d slots, auction has %d", a.Probs.Slots(), a.Slots)
	}
	return nil
}

// Result is a winner-determination outcome.
type Result struct {
	// AdvOf maps slot index (0-based, slot 0 topmost) to advertiser
	// index, or -1 for an empty slot.
	AdvOf []int
	// SlotOf maps advertiser index to slot index, or -1.
	SlotOf []int
	// ExpectedRevenue is the total expected payment over all
	// advertisers (assigned and unassigned) under pay-what-you-bid.
	ExpectedRevenue float64
	// Method records which algorithm produced the result.
	Method Method
}

// Assigned returns the number of filled slots.
func (r *Result) Assigned() int {
	n := 0
	for _, i := range r.AdvOf {
		if i >= 0 {
			n++
		}
	}
	return n
}
