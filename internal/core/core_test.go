package core

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/formula"
	"repro/internal/matching"
	"repro/internal/probmodel"
)

const tol = 1e-7

// randAuction builds a random auction with 1-dependent multi-feature
// bids (Click, Purchase, slot predicates, negations, Unplaced).
func randAuction(rng *rand.Rand, n, k int) *Auction {
	m := probmodel.New(n, k)
	a := &Auction{Slots: k, Probs: m}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			m.Click[i][j] = rng.Float64()
			m.Purchase[i][j] = rng.Float64() * 0.5
		}
		var bids formula.Bids
		nb := 1 + rng.Intn(3)
		for b := 0; b < nb; b++ {
			bids = append(bids, formula.Bid{F: randOneDepFormula(rng, k), Value: float64(rng.Intn(20))})
		}
		a.Advertisers = append(a.Advertisers, Advertiser{ID: "a" + strconv.Itoa(i), Bids: bids})
	}
	return a
}

func randOneDepFormula(rng *rand.Rand, k int) formula.Expr {
	var leaf func(depth int) formula.Expr
	leaf = func(depth int) formula.Expr {
		if depth == 0 || rng.Intn(2) == 0 {
			switch rng.Intn(5) {
			case 0:
				return formula.Click{}
			case 1:
				return formula.Purchase{}
			case 2:
				return formula.Slot{J: 1 + rng.Intn(k)}
			case 3:
				return formula.Unplaced{}
			default:
				return formula.SlotIn(1+rng.Intn(k), 1+rng.Intn(k))
			}
		}
		switch rng.Intn(3) {
		case 0:
			return formula.Not{X: leaf(depth - 1)}
		case 1:
			return formula.And{X: leaf(depth - 1), Y: leaf(depth - 1)}
		default:
			return formula.Or{X: leaf(depth - 1), Y: leaf(depth - 1)}
		}
	}
	return leaf(2)
}

// TestAllMethodsAgree: LP, H, RH, parallel RH, and Brute must produce
// the same expected revenue on random multi-feature instances, and it
// must equal the outcome-level general oracle (which validates the
// whole Theorem 2 reduction, baselines included).
func TestAllMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	methods := []Method{MethodLP, MethodHungarian, MethodReduced, MethodReducedParallel, MethodBrute}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(6)
		k := 1 + rng.Intn(4)
		a := randAuction(rng, n, k)
		general, err := a.DetermineGeneral()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range methods {
			res, err := a.Determine(m)
			if err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			if math.Abs(res.ExpectedRevenue-general.ExpectedRevenue) > tol {
				t.Fatalf("trial %d: %v revenue %g != general %g (n=%d k=%d)",
					trial, m, res.ExpectedRevenue, general.ExpectedRevenue, n, k)
			}
		}
	}
}

// TestUnplacedBidsBaseline: with a bid on being unplaced, leaving an
// advertiser out earns money, and the engine must weigh that against
// placement revenue.
func TestUnplacedBidsBaseline(t *testing.T) {
	m := probmodel.New(2, 1)
	m.Click[0][0], m.Click[1][0] = 1, 1
	a := &Auction{
		Slots: 1,
		Probs: m,
		Advertisers: []Advertiser{
			// Pays 10 if unplaced, only 3 if clicked in slot 1.
			{ID: "stayout", Bids: formula.Bids{
				{F: formula.Unplaced{}, Value: 10},
				{F: formula.MustParse("Click AND Slot1"), Value: 3},
			}},
			// Pays 5 for a click.
			{ID: "normal", Bids: formula.Bids{{F: formula.Click{}, Value: 5}}},
		},
	}
	res, err := a.Determine(MethodReduced)
	if err != nil {
		t.Fatal(err)
	}
	// Best: stayout unplaced (10) + normal in slot (5) = 15.
	if math.Abs(res.ExpectedRevenue-15) > tol {
		t.Fatalf("revenue %g, want 15", res.ExpectedRevenue)
	}
	if res.AdvOf[0] != 1 {
		t.Fatalf("slot should go to 'normal', got %d", res.AdvOf[0])
	}
	general, err := a.DetermineGeneral()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(general.ExpectedRevenue-15) > tol {
		t.Fatalf("general revenue %g, want 15", general.ExpectedRevenue)
	}
}

// TestExpectedPaymentHandRolled pins the valuation arithmetic on a
// hand-computed case.
func TestExpectedPaymentHandRolled(t *testing.T) {
	m := probmodel.New(1, 2)
	m.Click[0][0], m.Click[0][1] = 0.5, 0.2
	m.Purchase[0][0], m.Purchase[0][1] = 0.4, 0.1
	a := &Auction{Slots: 2, Probs: m, Advertisers: []Advertiser{{
		ID: "x",
		Bids: formula.Bids{
			{F: formula.MustParse("Purchase"), Value: 10},
			{F: formula.MustParse("Slot1 OR Slot2"), Value: 2},
			{F: formula.MustParse("Click AND Slot1"), Value: 4},
		},
	}}}
	// Slot 1 (index 0): P(purchase)=0.5·0.4=0.2 → 2 ; slots bid → 2 ;
	// click∧slot1: P(click)=0.5 → 2. Total 6.
	if got := a.expectedPayment(0, 0); math.Abs(got-6) > tol {
		t.Fatalf("slot1 expected payment %g, want 6", got)
	}
	// Slot 2 (index 1): purchase 0.2·0.1=0.02 → 0.2 ; slots bid → 2 ;
	// click∧slot1 never true. Total 2.2.
	if got := a.expectedPayment(0, 1); math.Abs(got-2.2) > tol {
		t.Fatalf("slot2 expected payment %g, want 2.2", got)
	}
}

// TestTwoDependentRejected: bids on "above my rival" must be rejected
// by every fast method (Theorem 3) and handled by the general oracle.
func TestTwoDependentRejected(t *testing.T) {
	m := probmodel.New(2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m.Click[i][j] = 0.5
		}
	}
	a := &Auction{Slots: 2, Probs: m, Advertisers: []Advertiser{
		{ID: "me", Bids: formula.Bids{{F: formula.Above("rival", 2), Value: 7}}},
		{ID: "rival", Bids: formula.Bids{{F: formula.Click{}, Value: 1}}},
	}}
	for _, method := range []Method{MethodLP, MethodHungarian, MethodReduced, MethodBrute} {
		if _, err := a.Determine(method); !errors.Is(err, ErrNotOneDependent) {
			t.Fatalf("%v: err = %v, want ErrNotOneDependent", method, err)
		}
	}
	res, err := a.DetermineGeneral()
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: me above rival (7) + rival's click value 0.5·1.
	if math.Abs(res.ExpectedRevenue-7.5) > tol {
		t.Fatalf("general revenue %g, want 7.5", res.ExpectedRevenue)
	}
	if res.SlotOf[0] != 0 || res.SlotOf[1] != 1 {
		t.Fatalf("allocation %v, want me above rival", res.SlotOf)
	}
}

func TestGeneralRefusesLargeInstances(t *testing.T) {
	a := randAuction(rand.New(rand.NewSource(1)), 11, 2)
	if _, err := a.DetermineGeneral(); err == nil {
		t.Fatal("expected size refusal")
	}
}

func TestHeavyPredicateRoutedToHeavyAuction(t *testing.T) {
	m := probmodel.New(1, 2)
	a := &Auction{Slots: 2, Probs: m, Advertisers: []Advertiser{
		{ID: "x", Bids: formula.Bids{{F: formula.MustParse("Slot2 AND NOT Heavy1"), Value: 3}}},
	}}
	if _, err := a.Determine(MethodReduced); err == nil {
		t.Fatal("heavyweight bids must be rejected by Auction.Determine")
	}
}

// TestSeparableMethod: on a separable model with click-only bids the
// fast path equals the Hungarian optimum; on non-separable input it
// errors.
func TestSeparableMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n, k := 20, 4
	adv := make([]float64, n)
	slot := make([]float64, k)
	for i := range adv {
		adv[i] = 0.5 + rng.Float64()
	}
	for j := range slot {
		slot[j] = rng.Float64() * 0.5
	}
	m := probmodel.New(n, k)
	a := &Auction{Slots: k, Probs: m}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			m.Click[i][j] = adv[i] * slot[j]
		}
		a.Advertisers = append(a.Advertisers, Advertiser{
			ID:   "a" + strconv.Itoa(i),
			Bids: formula.Bids{{F: formula.Click{}, Value: float64(1 + rng.Intn(30))}},
		})
	}
	fast, err := a.Determine(MethodSeparable)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := a.Determine(MethodHungarian)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.ExpectedRevenue-slow.ExpectedRevenue) > 1e-6 {
		t.Fatalf("separable %g != hungarian %g", fast.ExpectedRevenue, slow.ExpectedRevenue)
	}

	// Break separability (the paper's Figure 7 shape) → error.
	m.Click[0][0] = math.Min(1, m.Click[0][0]+0.3)
	if _, err := a.Determine(MethodSeparable); err == nil {
		t.Fatal("non-separable input must be rejected")
	}

	// Multi-feature bids → error even when probabilities separate.
	m.Click[0][0] = adv[0] * slot[0]
	a.Advertisers[0].Bids = formula.Bids{{F: formula.MustParse("Slot1 OR Slot2"), Value: 5}}
	if _, err := a.Determine(MethodSeparable); err == nil {
		t.Fatal("multi-feature bids must be rejected by the separable path")
	}
}

// heavyOracle enumerates all partial allocations, scoring each under
// its induced heavyweight pattern.
func heavyOracle(h *HeavyAuction) float64 {
	best := math.Inf(-1)
	matching.EnumeratePartial(len(h.Advertisers), h.Slots, func(advOf []int) {
		var pattern uint64
		for j, i := range advOf {
			if i >= 0 && h.Advertisers[i].Heavy {
				pattern |= 1 << uint(j)
			}
		}
		rev := 0.0
		for i := range h.Advertisers {
			placed := -1
			for j, ii := range advOf {
				if ii == i {
					placed = j
					break
				}
			}
			if placed < 0 {
				rev += h.Advertisers[i].Bids.Payment(formula.Outcome{HeavySlots: pattern})
			} else {
				rev += h.expectedPaymentPattern(i, placed, pattern)
			}
		}
		if rev > best {
			best = rev
		}
	})
	return best
}

func TestHeavyDetermineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(5)
		k := 1 + rng.Intn(3)
		base := probmodel.New(n, k)
		h := &HeavyAuction{Slots: k, Model: &probmodel.HeavyModel{
			Base:   base,
			Factor: probmodel.ShadowFactors(k, 0.3),
		}}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				base.Click[i][j] = rng.Float64()
				base.Purchase[i][j] = rng.Float64() * 0.3
			}
			var bids formula.Bids
			bids = append(bids, formula.Bid{F: randOneDepFormula(rng, k), Value: float64(rng.Intn(10))})
			if rng.Intn(2) == 0 {
				// A heavyweight-pattern bid, e.g. "slot above me is light".
				f := formula.And{X: formula.Slot{J: 1 + rng.Intn(k)}, Y: formula.Not{X: formula.Heavy{J: 1 + rng.Intn(k)}}}
				bids = append(bids, formula.Bid{F: f, Value: float64(rng.Intn(10))})
			}
			h.Advertisers = append(h.Advertisers, Advertiser{
				ID:    "a" + strconv.Itoa(i),
				Bids:  bids,
				Heavy: rng.Intn(2) == 0,
			})
			h.Model.IsHeavy = append(h.Model.IsHeavy, h.Advertisers[i].Heavy)
		}
		want := heavyOracle(h)
		for _, parallel := range []bool{false, true} {
			res, err := h.Determine(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.ExpectedRevenue-want) > tol {
				t.Fatalf("trial %d parallel=%v: heavy2k %g != oracle %g (n=%d k=%d)",
					trial, parallel, res.ExpectedRevenue, want, n, k)
			}
			if res.Method != MethodHeavy2K {
				t.Fatalf("method %v", res.Method)
			}
		}
	}
}

// TestVCGProperties: non-negative, individually rational (never above
// the winner's adjusted value), zero for losers; and for a single
// slot with click-only bids, equal to the second-highest expected
// revenue (the classic Vickrey auction).
func TestVCGProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		k := 1 + rng.Intn(3)
		a := randAuction(rng, n, k)
		res, err := a.Determine(MethodHungarian)
		if err != nil {
			t.Fatal(err)
		}
		pay, err := a.VCGPayments(res, MethodHungarian)
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := a.adjustedMatrix()
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pay {
			if p < -tol {
				t.Fatalf("negative VCG payment %g", p)
			}
			j := res.SlotOf[i]
			if j < 0 {
				if p != 0 {
					t.Fatalf("loser pays %g", p)
				}
				continue
			}
			if p > w[i][j]+tol {
				t.Fatalf("VCG payment %g exceeds value %g (not IR)", p, w[i][j])
			}
		}
	}
}

func TestVCGSecondPriceSingleSlot(t *testing.T) {
	m := probmodel.New(3, 1)
	m.Click[0][0], m.Click[1][0], m.Click[2][0] = 0.5, 0.5, 0.5
	a := &Auction{Slots: 1, Probs: m, Advertisers: []Advertiser{
		{ID: "hi", Bids: formula.Bids{{F: formula.Click{}, Value: 10}}}, // EV 5
		{ID: "mid", Bids: formula.Bids{{F: formula.Click{}, Value: 6}}}, // EV 3
		{ID: "lo", Bids: formula.Bids{{F: formula.Click{}, Value: 2}}},  // EV 1
	}}
	res, err := a.Determine(MethodBrute)
	if err != nil {
		t.Fatal(err)
	}
	pay, err := a.VCGPayments(res, MethodBrute)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdvOf[0] != 0 {
		t.Fatalf("winner %d, want 0", res.AdvOf[0])
	}
	if math.Abs(pay[0]-3) > tol {
		t.Fatalf("VCG payment %g, want second-highest EV 3", pay[0])
	}
}

func TestValidateCatchesShapeErrors(t *testing.T) {
	a := &Auction{Slots: 2, Probs: probmodel.New(3, 2)}
	if err := a.Validate(); err == nil {
		t.Fatal("advertiser count mismatch not caught")
	}
	b := &Auction{Slots: 3, Probs: probmodel.New(1, 2),
		Advertisers: []Advertiser{{ID: "x"}}}
	if err := b.Validate(); err == nil {
		t.Fatal("slot count mismatch not caught")
	}
	c := &Auction{Slots: 1}
	if err := c.Validate(); err == nil {
		t.Fatal("nil model not caught")
	}
	bad := probmodel.New(1, 1)
	bad.Click[0][0] = 1.5
	d := &Auction{Slots: 1, Probs: bad, Advertisers: []Advertiser{{ID: "x"}}}
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range probability not caught")
	}
}

func TestResultAssigned(t *testing.T) {
	r := &Result{AdvOf: []int{2, -1, 0}}
	if r.Assigned() != 2 {
		t.Fatalf("Assigned = %d", r.Assigned())
	}
}

// TestHeavyScoreConsistency: Determine's reported revenue equals
// Score of its own allocation, and Score rejects malformed input.
func TestHeavyScoreConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		k := 1 + rng.Intn(3)
		base := probmodel.New(n, k)
		h := &HeavyAuction{Slots: k, Model: &probmodel.HeavyModel{
			Base:   base,
			Factor: probmodel.ShadowFactors(k, 0.2),
		}}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				base.Click[i][j] = rng.Float64()
			}
			h.Advertisers = append(h.Advertisers, Advertiser{
				ID:    "a" + strconv.Itoa(i),
				Bids:  formula.Bids{{F: formula.Click{}, Value: float64(1 + rng.Intn(9))}},
				Heavy: rng.Intn(2) == 0,
			})
		}
		res, err := h.Determine(false)
		if err != nil {
			t.Fatal(err)
		}
		score, err := h.Score(res.AdvOf)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(score-res.ExpectedRevenue) > tol {
			t.Fatalf("Score %g != Determine revenue %g", score, res.ExpectedRevenue)
		}
	}
	h := &HeavyAuction{Slots: 2, Model: &probmodel.HeavyModel{Base: probmodel.New(1, 2)},
		Advertisers: []Advertiser{{ID: "x"}}}
	if _, err := h.Score([]int{0}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := h.Score([]int{0, 0}); err == nil {
		t.Fatal("duplicate assignment accepted")
	}
	if _, err := h.Score([]int{0, 5}); err == nil {
		t.Fatal("unknown advertiser accepted")
	}
}
