package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/formula"
	"repro/internal/probmodel"
)

// randCrossFormula builds a formula over exactly one *other*
// advertiser's placement (Definition 1: still 1-dependent).
func randCrossFormula(rng *rand.Rand, other string, k int) formula.Expr {
	var e formula.Expr = formula.AdvSlot{Adv: other, J: 1 + rng.Intn(k)}
	switch rng.Intn(3) {
	case 0:
		e = formula.Not{X: e}
	case 1:
		e = formula.Or{X: e, Y: formula.AdvSlot{Adv: other, J: 1 + rng.Intn(k)}}
	}
	return e
}

// TestCrossBidsMatchGeneral drives the full Theorem 2 construction:
// auctions mixing own-placement bids with bids on one other
// advertiser's slot must agree with the outcome-level oracle across
// every fast method.
func TestCrossBidsMatchGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	methods := []Method{MethodLP, MethodHungarian, MethodReduced, MethodBrute}
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		k := 1 + rng.Intn(3)
		a := randAuction(rng, n, k)
		// Sprinkle cross bids: each advertiser may bid on one other's
		// placement.
		for i := range a.Advertisers {
			if rng.Intn(2) == 0 {
				continue
			}
			other := rng.Intn(n)
			if other == i {
				continue
			}
			a.Advertisers[i].Bids = append(a.Advertisers[i].Bids, formula.Bid{
				F:     randCrossFormula(rng, a.Advertisers[other].ID, k),
				Value: float64(rng.Intn(15)),
			})
		}
		general, err := a.DetermineGeneral()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range methods {
			res, err := a.Determine(m)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, m, err)
			}
			if math.Abs(res.ExpectedRevenue-general.ExpectedRevenue) > tol {
				t.Fatalf("trial %d %v: %g != general %g (n=%d k=%d)",
					trial, m, res.ExpectedRevenue, general.ExpectedRevenue, n, k)
			}
		}
	}
}

// TestCrossBidOnSelfViaAdvSlot: referencing one's own ID through
// AdvSlot is equivalent to a Slot predicate and stays tractable.
func TestCrossBidOnSelfViaAdvSlot(t *testing.T) {
	m := probmodel.New(1, 2)
	a := &Auction{Slots: 2, Probs: m, Advertisers: []Advertiser{{
		ID:   "me",
		Bids: formula.Bids{{F: formula.AdvSlot{Adv: "me", J: 1}, Value: 5}},
	}}}
	res, err := a.Determine(MethodReduced)
	if err != nil {
		t.Fatal(err)
	}
	general, err := a.DetermineGeneral()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ExpectedRevenue-5) > tol || math.Abs(general.ExpectedRevenue-5) > tol {
		t.Fatalf("revenues %g / %g, want 5", res.ExpectedRevenue, general.ExpectedRevenue)
	}
}

// TestCrossBidOnAbsentAdvertiser: a bid on an advertiser not in the
// auction is constant (the target is never placed).
func TestCrossBidOnAbsentAdvertiser(t *testing.T) {
	m := probmodel.New(1, 1)
	m.Click[0][0] = 1
	a := &Auction{Slots: 1, Probs: m, Advertisers: []Advertiser{{
		ID: "me",
		Bids: formula.Bids{
			{F: formula.Not{X: formula.AdvSlot{Adv: "ghost", J: 1}}, Value: 3}, // always true
			{F: formula.AdvSlot{Adv: "ghost", J: 1}, Value: 100},               // never true
			{F: formula.Click{}, Value: 2},
		},
	}}}
	res, err := a.Determine(MethodHungarian)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ExpectedRevenue-5) > tol {
		t.Fatalf("revenue %g, want 3 (constant) + 2 (click) = 5", res.ExpectedRevenue)
	}
	general, err := a.DetermineGeneral()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(general.ExpectedRevenue-5) > tol {
		t.Fatalf("general %g, want 5", general.ExpectedRevenue)
	}
}

// TestMixedSelfOtherRejected: Self ∧ Other dependence is 2-dependent.
func TestMixedSelfOtherRejected(t *testing.T) {
	m := probmodel.New(2, 2)
	a := &Auction{Slots: 2, Probs: m, Advertisers: []Advertiser{
		{ID: "a", Bids: formula.Bids{{
			F:     formula.And{X: formula.Slot{J: 1}, Y: formula.AdvSlot{Adv: "b", J: 2}},
			Value: 3,
		}}},
		{ID: "b", Bids: formula.Bids{{F: formula.Click{}, Value: 1}}},
	}}
	if _, err := a.Determine(MethodReduced); err == nil {
		t.Fatal("Self∧Other bid must be rejected")
	}
}
