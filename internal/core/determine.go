package core

import (
	"fmt"

	"repro/internal/formula"
	"repro/internal/matching"
)

// Method selects a winner-determination algorithm.
type Method int

// Winner-determination methods, in the order the paper evaluates them
// (Section V), plus the separable fast path and the brute-force
// oracle.
const (
	// MethodLP solves the assignment linear program with the simplex
	// method (paper method 1).
	MethodLP Method = iota
	// MethodHungarian runs the Hungarian algorithm on the full
	// bipartite graph (paper method 2, "H").
	MethodHungarian
	// MethodReduced runs the paper's reduced-graph algorithm
	// (Section III-E, method 3, "RH").
	MethodReduced
	// MethodReducedParallel is RH with the tree-parallel top-k phase.
	MethodReducedParallel
	// MethodSeparable is the platforms' sort-based allocation; it
	// requires a separable click-probability matrix and bids on Click
	// only, and returns an error otherwise (Section III-C).
	MethodSeparable
	// MethodBrute enumerates all allocations; the correctness oracle.
	MethodBrute
	// MethodHeavy2K is the Section III-F heavyweight/lightweight
	// pattern enumeration, reported by HeavyAuction.Determine.
	MethodHeavy2K
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodLP:
		return "LP"
	case MethodHungarian:
		return "H"
	case MethodReduced:
		return "RH"
	case MethodReducedParallel:
		return "RH-parallel"
	case MethodSeparable:
		return "Separable"
	case MethodBrute:
		return "Brute"
	case MethodHeavy2K:
		return "Heavy2K"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Determine solves winner determination with the given method. All
// bids must be 1-dependent and heavyweight-free (Theorem 2); bids on
// other advertisers' placements yield ErrNotOneDependent, and bids on
// the heavyweight pattern must go through HeavyAuction. Callers who
// determine many auctions in a row should hold a Determiner instead;
// this convenience builds a throwaway one per call.
func (a *Auction) Determine(method Method) (*Result, error) {
	return NewDeterminer().Determine(a, method)
}

// separableAssign implements the existing platforms' allocation: it
// demands that every advertiser bids a single value on Click and that
// the click-probability matrix is separable; then expected revenue
// separates as (bid·advFactor)·slotFactor and sorting wins.
func (a *Auction) separableAssign() (matching.Assignment, error) {
	const tol = 1e-9
	advF, slotF, ok := matching.IsSeparable(a.Probs.Click, tol)
	if !ok {
		return matching.Assignment{}, fmt.Errorf(
			"core: click probabilities are not separable; %s requires separability (Section III-C)", MethodSeparable)
	}
	n := len(a.Advertisers)
	adv := make([]float64, n)
	for i := 0; i < n; i++ {
		bid, ok := clickOnlyBid(a.Advertisers[i].Bids)
		if !ok {
			return matching.Assignment{}, fmt.Errorf(
				"core: advertiser %s has multi-feature bids; %s supports single-feature Click bids only",
				a.Advertisers[i].ID, MethodSeparable)
		}
		adv[i] = bid * advF[i]
	}
	return matching.Separable(adv, slotF), nil
}

// clickOnlyBid reports whether the table is the traditional
// single-feature bid — exactly one row on the bare Click predicate —
// and returns its value.
func clickOnlyBid(b formula.Bids) (float64, bool) {
	if len(b) != 1 {
		return 0, false
	}
	if _, ok := b[0].F.(formula.Click); !ok {
		return 0, false
	}
	return b[0].Value, true
}
