package core

import (
	"fmt"
	"runtime"

	"repro/internal/lp"
	"repro/internal/matching"
)

// Determiner solves winner determination repeatedly without rebuilding
// per-call state: the Theorem 2 adjusted matrix lives in one reused
// flat buffer, and the reduced Hungarian solve runs in a
// matching.Workspace. A serving worker holds one Determiner and feeds
// it auction after auction; after the first call on a given shape the
// matrix construction performs no per-row allocations. A Determiner is
// not safe for concurrent use.
type Determiner struct {
	ws   *matching.Workspace
	rows [][]float64 // row headers into flat
	flat []float64   // n×k backing, reused across calls
}

// NewDeterminer returns a Determiner with empty buffers; they grow to
// the largest auction seen.
func NewDeterminer() *Determiner {
	return &Determiner{ws: matching.NewWorkspace()}
}

// matrix returns a zeroed n×k view over the reused backing buffer.
func (d *Determiner) matrix(n, k int) [][]float64 {
	if cap(d.flat) < n*k {
		d.flat = make([]float64, n*k)
	}
	d.flat = d.flat[:n*k]
	for i := range d.flat {
		d.flat[i] = 0
	}
	if cap(d.rows) < n {
		d.rows = make([][]float64, n)
	}
	d.rows = d.rows[:n]
	for i := 0; i < n; i++ {
		d.rows[i] = d.flat[i*k : (i+1)*k]
	}
	return d.rows
}

// Determine solves winner determination for a with the given method,
// reusing the Determiner's buffers. Results are freshly allocated and
// safe to retain; the intermediate matrix is valid only until the next
// call.
func (d *Determiner) Determine(a *Auction, method Method) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	w := d.matrix(len(a.Advertisers), a.Slots)
	baseline, err := a.adjustedMatrixInto(w)
	if err != nil {
		return nil, err
	}
	var assign matching.Assignment
	switch method {
	case MethodLP:
		res, err := lp.SolveAssignment(w)
		if err != nil {
			return nil, err
		}
		assign = matching.Assignment{SlotOf: res.SlotOf, AdvOf: res.AdvOf, Value: res.Value}
	case MethodHungarian:
		assign = matching.MaxWeight(w)
	case MethodReduced:
		assign = d.ws.MaxWeightReduced(w)
	case MethodReducedParallel:
		assign = matching.MaxWeightReducedParallel(w, runtime.GOMAXPROCS(0))
	case MethodSeparable:
		var err error
		assign, err = a.separableAssign()
		if err != nil {
			return nil, err
		}
	case MethodBrute:
		assign = matching.BruteForce(w)
	default:
		return nil, fmt.Errorf("core: unknown method %v", method)
	}
	return &Result{
		AdvOf:           assign.AdvOf,
		SlotOf:          assign.SlotOf,
		ExpectedRevenue: assign.Value + baseline,
		Method:          method,
	}, nil
}
