package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/formula"
	"repro/internal/probmodel"
)

// TestDeterminerMatchesDetermine drives one Determiner across a stream
// of auctions of varying shape and checks each result against the
// one-shot Auction.Determine for every method that applies, proving
// buffer reuse never leaks state between calls.
func TestDeterminerMatchesDetermine(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := NewDeterminer()
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		k := 1 + rng.Intn(4)
		m := probmodel.New(n, k)
		a := &Auction{Slots: k, Probs: m}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				m.Click[i][j] = rng.Float64()
				m.Purchase[i][j] = rng.Float64()
			}
			bids, err := formula.ParseBids("Click : 5\nPurchase : 20")
			if err != nil {
				t.Fatal(err)
			}
			a.Advertisers = append(a.Advertisers, Advertiser{
				ID:   string(rune('a' + i)),
				Bids: bids,
			})
		}
		for _, method := range []Method{MethodReduced, MethodHungarian, MethodBrute} {
			got, err := d.Determine(a, method)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, method, err)
			}
			want, err := a.Determine(method)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, method, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v: determiner %+v != one-shot %+v", trial, method, got, want)
			}
		}
	}
}
