package core

import (
	"fmt"

	"repro/internal/formula"
	"repro/internal/matching"
)

// DetermineGeneral is the exponential-time oracle for bids of
// arbitrary m-dependence: it enumerates every partial allocation and
// evaluates the expected revenue directly, with each advertiser's
// formulas seeing the full slot assignment (so 2-dependent events
// like "I am above my rival" are priced exactly). Click and purchase
// probabilities remain 1-dependent, per Section III-A.
//
// Theorem 3 shows no polynomial algorithm can approximate this beyond
// constant factors (APX-hardness); the oracle exists for tests and
// tiny instances, mirroring the paper's "conceptually, winners can be
// determined by a brute force algorithm" remark in Section III-F.
func (a *Auction) DetermineGeneral() (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	n := len(a.Advertisers)
	if n > 10 || a.Slots > 6 {
		return nil, fmt.Errorf("core: DetermineGeneral is exponential; refusing n=%d, k=%d (max 10 advertisers, 6 slots)",
			n, a.Slots)
	}
	best := &Result{
		AdvOf:  make([]int, a.Slots),
		SlotOf: make([]int, n),
		Method: MethodBrute,
	}
	first := true
	matching.EnumeratePartial(n, a.Slots, func(advOf []int) {
		rev := a.expectedRevenueOf(advOf)
		if first || rev > best.ExpectedRevenue {
			first = false
			best.ExpectedRevenue = rev
			copy(best.AdvOf, advOf)
		}
	})
	for i := range best.SlotOf {
		best.SlotOf[i] = -1
	}
	for j, i := range best.AdvOf {
		if i >= 0 {
			best.SlotOf[i] = j
		}
	}
	return best, nil
}

// expectedRevenueOf computes total expected payment for a concrete
// allocation, letting formulas reference other advertisers' slots.
func (a *Auction) expectedRevenueOf(advOf []int) float64 {
	// Build the shared OtherSlots view (1-based slots).
	others := make(map[string]int, len(advOf))
	for j, i := range advOf {
		if i >= 0 {
			others[a.Advertisers[i].ID] = j + 1
		}
	}
	var total float64
	slotOf := make([]int, len(a.Advertisers))
	for i := range slotOf {
		slotOf[i] = -1
	}
	for j, i := range advOf {
		if i >= 0 {
			slotOf[i] = j
		}
	}
	for i := range a.Advertisers {
		bids := a.Advertisers[i].Bids
		j := slotOf[i]
		if j < 0 {
			total += bids.Payment(formula.Outcome{OtherSlots: others})
			continue
		}
		w := a.Probs.Click[i][j]
		q := a.Probs.Purchase[i][j]
		slot := j + 1
		if p := 1 - w; p > 0 {
			total += p * bids.Payment(formula.Outcome{Slot: slot, OtherSlots: others})
		}
		if p := w * (1 - q); p > 0 {
			total += p * bids.Payment(formula.Outcome{Slot: slot, Clicked: true, OtherSlots: others})
		}
		if p := w * q; p > 0 {
			total += p * bids.Payment(formula.Outcome{Slot: slot, Clicked: true, Purchased: true, OtherSlots: others})
		}
	}
	return total
}
