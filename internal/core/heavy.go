package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/formula"
	"repro/internal/probmodel"
)

// HeavyAuction is the Section III-F model: advertisers are classified
// as heavyweights or lightweights, click probabilities may depend on
// the heavyweight pattern over slots, and bids may reference Heavy_j
// predicates ("pay 3 if I get slot 2 and slot 1 holds a lightweight").
type HeavyAuction struct {
	Slots       int
	Advertisers []Advertiser // Heavy field classifies each bidder
	Model       *probmodel.HeavyModel
}

// validate checks the structural preconditions of heavyweight winner
// determination: a bounded slot count (the enumeration is 2^k), a
// well-formed base model covering every advertiser, and bids inside
// the 1-dependent fragment (heavyweight predicates are allowed — they
// condition on the class pattern, not on individuals).
func (h *HeavyAuction) validate() error {
	if h.Slots < 0 || h.Slots > 20 {
		return fmt.Errorf("core: heavyweight enumeration needs 0 ≤ k ≤ 20, got %d", h.Slots)
	}
	if h.Model == nil || h.Model.Base == nil {
		return fmt.Errorf("core: heavyweight auction needs a model")
	}
	if err := h.Model.Base.Validate(); err != nil {
		return err
	}
	if got := h.Model.Base.Advertisers(); got != len(h.Advertisers) {
		return fmt.Errorf("core: model covers %d advertisers, auction has %d", got, len(h.Advertisers))
	}
	for i := range h.Advertisers {
		if m, _ := h.Advertisers[i].Bids.MaxDependence(); m > 1 {
			return fmt.Errorf("advertiser %s: %w", h.Advertisers[i].ID, ErrNotOneDependent)
		}
	}
	return nil
}

// Determine solves heavyweight winner determination by the paper's
// 2^k enumeration: for each choice of heavyweight slots S, match
// heavyweight advertisers to S and lightweights to the complement
// with two independent maximum-weight matchings, then take the best
// pattern. With parallel=true the patterns are evaluated concurrently
// (the paper's O(n log k + k⁵) bound with 2^k processing units);
// either way the number of workers is independent of n.
//
// A pattern S is only consistent if every slot in S actually receives
// a heavyweight advertiser; patterns that cannot fill their slots are
// skipped (the allocation they would produce is scored under the
// pattern that matches its true heavyweight placement).
func (h *HeavyAuction) Determine(parallel bool) (*Result, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}

	var heavyIdx, lightIdx []int
	for i := range h.Advertisers {
		if h.Advertisers[i].Heavy {
			heavyIdx = append(heavyIdx, i)
		} else {
			lightIdx = append(lightIdx, i)
		}
	}

	// Both branches reduce through the same deterministic argmax —
	// highest revenue, lowest pattern index on exact ties — which is
	// what an ascending scan with a strict > running best selects, so
	// sequential, parallel, and the serving-path HeavyDeterminer agree
	// bit for bit (pinned by TestHeavyParallelPathsAgree).
	type localBest struct {
		ok      bool
		rev     float64
		pattern int
		advOf   []int
	}
	better := func(b *localBest, ok bool, rev float64, pattern int) bool {
		return ok && (!b.ok || rev > b.rev || (rev == b.rev && pattern < b.pattern))
	}

	patterns := 1 << uint(h.Slots)
	var best localBest
	if parallel {
		// A bounded worker pool: the paper's bound assumes 2^k
		// processing units, but spawning a goroutine per pattern at
		// k=20 (a million) would only add scheduler overhead. Each
		// worker claims patterns in ascending order off the shared
		// counter and keeps a local best; the merge below applies the
		// same rule across workers, so the result is independent of
		// how the claims interleaved.
		workers := runtime.GOMAXPROCS(0)
		if workers > patterns {
			workers = patterns
		}
		bests := make([]localBest, workers)
		var wg sync.WaitGroup
		var next int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(lb *localBest) {
				defer wg.Done()
				for {
					p := int(atomic.AddInt64(&next, 1)) - 1
					if p >= patterns {
						return
					}
					r := h.solvePattern(uint64(p), heavyIdx, lightIdx)
					if better(lb, r.ok, r.rev, p) {
						*lb = localBest{ok: true, rev: r.rev, pattern: p, advOf: r.advOf}
					}
				}
			}(&bests[w])
		}
		wg.Wait()
		for w := range bests {
			lb := &bests[w]
			if better(&best, lb.ok, lb.rev, lb.pattern) {
				best = *lb
			}
		}
	} else {
		for p := 0; p < patterns; p++ {
			r := h.solvePattern(uint64(p), heavyIdx, lightIdx)
			if better(&best, r.ok, r.rev, p) {
				best = localBest{ok: true, rev: r.rev, pattern: p, advOf: r.advOf}
			}
		}
	}

	if !best.ok {
		return nil, fmt.Errorf("core: no consistent heavyweight pattern (internal error)")
	}
	res := &Result{
		AdvOf:           best.advOf,
		SlotOf:          make([]int, len(h.Advertisers)),
		ExpectedRevenue: best.rev,
		Method:          MethodHeavy2K,
	}
	for i := range res.SlotOf {
		res.SlotOf[i] = -1
	}
	for j, i := range best.advOf {
		if i >= 0 {
			res.SlotOf[i] = j
		}
	}
	return res, nil
}

// solvePattern scores one heavyweight-slot pattern: two disjoint
// matchings plus the unassigned baselines, all computed conditional
// on the pattern.
func (h *HeavyAuction) solvePattern(pattern uint64, heavyIdx, lightIdx []int) (out struct {
	ok    bool
	rev   float64
	advOf []int
}) {
	k := h.Slots
	var heavySlots, lightSlots []int
	for j := 0; j < k; j++ {
		if pattern&(1<<uint(j)) != 0 {
			heavySlots = append(heavySlots, j)
		} else {
			lightSlots = append(lightSlots, j)
		}
	}
	if len(heavySlots) > len(heavyIdx) {
		return // cannot fill every heavyweight slot
	}

	// Baselines: unassigned advertisers still see the pattern.
	baseOutcome := formula.Outcome{HeavySlots: pattern}
	var baseline float64
	base := make([]float64, len(h.Advertisers))
	for i := range h.Advertisers {
		base[i] = h.Advertisers[i].Bids.Payment(baseOutcome)
		baseline += base[i]
	}

	// Forcing constant: adding M to heavy-side edges makes the
	// matching prefer maximum cardinality on the heavyweight slots,
	// guaranteeing all of them are filled when enough heavyweights
	// exist.
	var maxAbs float64
	weight := func(i, j int) float64 {
		w := h.expectedPaymentPattern(i, j, pattern) - base[i]
		if a := math.Abs(w); a > maxAbs {
			maxAbs = a
		}
		return w
	}
	heavyW := buildSub(weight, heavyIdx, heavySlots)
	lightW := buildSub(weight, lightIdx, lightSlots)
	forcing := (maxAbs + 1) * float64(len(h.Advertisers)+k+1)
	for _, row := range heavyW {
		for j := range row {
			row[j] += forcing
		}
	}

	// Both sub-matchings run through the same top-(k+1)
	// candidate-reduced solve as the serving-path HeavyDeterminer (a
	// fresh solver per pattern — this is the cold, allocating path).
	// The reduction preserves the exact optimal value (see
	// heavySolver.matchReduced), and sharing one implementation keeps
	// the two paths bit-identical even on instances with exact weight
	// ties, where equally-optimal assignments exist and any
	// independent solve could legitimately pick a different one.
	solver := newHeavySolver()
	heavyAdvOf := make([]int, len(heavySlots))
	solver.matchReduced(heavyW, len(heavyIdx), len(heavySlots), k+1, heavyAdvOf)
	for _, i := range heavyAdvOf {
		if i < 0 {
			return // a heavyweight slot stayed empty: inconsistent pattern
		}
	}
	lightAdvOf := make([]int, len(lightSlots))
	solver.matchReduced(lightW, len(lightIdx), len(lightSlots), k+1, lightAdvOf)

	advOf := make([]int, k)
	for j := range advOf {
		advOf[j] = -1
	}
	rev := baseline
	for sj, ri := range heavyAdvOf {
		i, j := heavyIdx[ri], heavySlots[sj]
		advOf[j] = i
		rev += h.expectedPaymentPattern(i, j, pattern) - base[i]
	}
	for sj, ri := range lightAdvOf {
		if ri < 0 {
			continue
		}
		i, j := lightIdx[ri], lightSlots[sj]
		advOf[j] = i
		rev += h.expectedPaymentPattern(i, j, pattern) - base[i]
	}
	out.ok = true
	out.rev = rev
	out.advOf = advOf
	return out
}

// buildSub materializes the weight sub-matrix for the given
// advertiser and slot index sets.
func buildSub(weight func(i, j int) float64, advIdx, slots []int) [][]float64 {
	w := make([][]float64, len(advIdx))
	for a, i := range advIdx {
		w[a] = make([]float64, len(slots))
		for s, j := range slots {
			w[a][s] = weight(i, j)
		}
	}
	return w
}

// expectedPaymentPattern is expectedPayment conditional on a
// heavyweight pattern: both the click probability and the formulas
// see the pattern.
func (h *HeavyAuction) expectedPaymentPattern(i, j int, pattern uint64) float64 {
	w := h.Model.ClickProb(i, j, pattern)
	q := h.Model.PurchaseProb(i, j, pattern)
	bids := h.Advertisers[i].Bids
	slot := j + 1
	var total float64
	if p := 1 - w; p > 0 {
		total += p * bids.Payment(formula.Outcome{Slot: slot, HeavySlots: pattern})
	}
	if p := w * (1 - q); p > 0 {
		total += p * bids.Payment(formula.Outcome{Slot: slot, Clicked: true, HeavySlots: pattern})
	}
	if p := w * q; p > 0 {
		total += p * bids.Payment(formula.Outcome{Slot: slot, Clicked: true, Purchased: true, HeavySlots: pattern})
	}
	return total
}

// Score evaluates an arbitrary allocation (slot → advertiser index,
// −1 for empty) under the pattern-aware model: the heavyweight
// pattern is induced from the allocation itself, and every
// advertiser's expected payment — placed or not — is computed
// conditional on it. Useful for comparing a pattern-blind allocation
// against the Determine optimum.
func (h *HeavyAuction) Score(advOf []int) (float64, error) {
	if len(advOf) != h.Slots {
		return 0, fmt.Errorf("core: allocation covers %d slots, auction has %d", len(advOf), h.Slots)
	}
	var pattern uint64
	slotOf := make([]int, len(h.Advertisers))
	for i := range slotOf {
		slotOf[i] = -1
	}
	for j, i := range advOf {
		if i < 0 {
			continue
		}
		if i >= len(h.Advertisers) {
			return 0, fmt.Errorf("core: slot %d assigned unknown advertiser %d", j, i)
		}
		if slotOf[i] >= 0 {
			return 0, fmt.Errorf("core: advertiser %d assigned two slots", i)
		}
		slotOf[i] = j
		if h.Advertisers[i].Heavy {
			pattern |= 1 << uint(j)
		}
	}
	var total float64
	for i := range h.Advertisers {
		if j := slotOf[i]; j >= 0 {
			total += h.expectedPaymentPattern(i, j, pattern)
		} else {
			total += h.Advertisers[i].Bids.Payment(formula.Outcome{HeavySlots: pattern})
		}
	}
	return total, nil
}
