package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/formula"
	"repro/internal/matching"
	"repro/internal/probmodel"
	"repro/internal/topk"
)

// HeavyDeterminer solves Section III-F heavyweight winner
// determination repeatedly without rebuilding per-call state: the
// 2^k pattern enumeration runs over cached scratch — the
// heavyweight/lightweight index partitions, the per-pattern baseline
// vector, the two sub-matching weight matrices (flat backing buffers
// with reused row headers), and a matching.Workspace for the
// Jonker–Volgenant solves — so a serving worker can feed it auction
// after auction with zero heap allocations in steady state. Results
// are byte-identical to the sequential HeavyAuction.Determine path
// (same enumeration order, same matrix construction, same tie
// handling), which the equivalence tests pin exactly.
//
// Two serving-path optimizations ride on top of the plain
// enumeration, both outcome-preserving (see DESIGN.md, "Heavy path at
// scale"):
//
//   - Pattern-parallel solving: the per-pattern solves are
//     independent (the paper's "2^k processing units" remark), so a
//     determiner built with NewHeavyDeterminerParallel fans them
//     across a persistent worker pool. Each worker owns a full
//     heavySolver (workspace, matrices, candidate scratch) and keeps
//     a local argmax; the coordinator merges the local bests under
//     the deterministic (highest revenue, lowest pattern index) rule,
//     which is exactly the argmax the sequential ascending strict->
//     scan selects.
//   - Reduced per-pattern matching: each pattern's two sub-matchings
//     restrict the Jonker–Volgenant solve to every slot's top-(k+1)
//     candidates (boundary ties included), using the topk bounded
//     heap over the already-materialized weight columns. The weight
//     matrices are still filled in full — the shared forcing
//     constant's maxAbs must see every entry to stay bit-identical —
//     but the superlinear assignment solve runs on O(k²) rows
//     instead of n.
//
// Like Determiner, a HeavyDeterminer is not safe for concurrent use
// (its internal pool parallelism is invisible to callers).
// Structural validation is cached per (auction pointer, advertiser
// count, slot count): callers that mutate bid *values* in place
// between calls (the serving engine's pattern) skip revalidation, but
// swapping in different formulas, models, or Heavy flags under the
// same auction pointer is the caller's contract to revalidate — pass
// a fresh auction value (or call Invalidate) when the shape changes.
type HeavyDeterminer struct {
	// parallelism is the resolved worker count (≥ 1); solvers holds one
	// heavySolver per worker, with solvers[0] doubling as the
	// sequential path and the coordinating goroutine's share of a
	// parallel enumeration. pool is spawned lazily on the first
	// enumeration that can use more than one worker.
	parallelism int
	solvers     []*heavySolver
	pool        *heavyPool
	released    bool

	heavyIdx, lightIdx []int

	// Validation cache: DetermineInto skips structural validation when
	// the auction pointer and shape match the last validated call.
	lastH *HeavyAuction
	lastN int
	lastK int

	// VCG counterfactual state: a persistent sub-auction (advertiser,
	// probability-row, and class slices reused across solves) and a
	// nested determiner that owns its enumeration scratch.
	vals        []float64
	subAdvs     []Advertiser
	subClick    [][]float64
	subPurchase [][]float64
	subIsHeavy  []bool
	subModel    probmodel.HeavyModel
	subBase     probmodel.Model
	subAuction  HeavyAuction
	subRes      Result
	sub         *HeavyDeterminer
}

// NewHeavyDeterminer returns a sequential determiner with empty
// buffers; they grow to the largest auction seen and then stay
// allocation-free.
func NewHeavyDeterminer() *HeavyDeterminer { return NewHeavyDeterminerParallel(1) }

// NewHeavyDeterminerParallel returns a determiner that solves the
// 2^k pattern enumeration on up to parallelism workers (the calling
// goroutine plus parallelism−1 pooled goroutines, spawned lazily and
// parked between calls). parallelism ≤ 0 means GOMAXPROCS; the
// effective worker count of any one call is additionally capped by
// its pattern count. parallelism 1 is exactly NewHeavyDeterminer: no
// goroutines, ever. Results are byte-identical at every setting.
//
// A parallel determiner holds pooled goroutines once used; Release
// stops them (a finalizer covers determiners dropped without it).
func NewHeavyDeterminerParallel(parallelism int) *HeavyDeterminer {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	d := &HeavyDeterminer{
		parallelism: parallelism,
		solvers:     make([]*heavySolver, parallelism),
	}
	for i := range d.solvers {
		d.solvers[i] = newHeavySolver()
	}
	return d
}

// Parallelism reports the determiner's resolved worker count.
func (d *HeavyDeterminer) Parallelism() int { return d.parallelism }

// Invalidate drops the cached structural validation, forcing the next
// DetermineInto to revalidate. Call it after changing an auction's
// formulas, model, or Heavy flags in place.
func (d *HeavyDeterminer) Invalidate() { d.lastH = nil }

// Release stops the determiner's pooled goroutines (a parallel
// determiner parks parallelism−1 workers between calls) and those of
// its nested VCG determiner. Idempotent; must not race an in-flight
// Determine, and a released determiner must not be used again. A
// finalizer calls Release for determiners dropped without one, so
// leaking a determiner leaks no goroutines permanently — Release just
// makes the reclamation deterministic (the serving engine calls it
// when a market is rebuilt or closed).
func (d *HeavyDeterminer) Release() {
	if d.released {
		return
	}
	d.released = true
	if d.pool != nil {
		close(d.pool.stop)
		runtime.SetFinalizer(d, nil)
	}
	if d.sub != nil {
		d.sub.Release()
	}
}

// growF, growI resize scratch slices, reusing backing arrays whenever
// they are large enough.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// subMatrix returns an r×c view over the flat backing buffer,
// growing both to the largest shape seen.
func subMatrix(flat *[]float64, rows *[][]float64, r, c int) [][]float64 {
	if cap(*flat) < r*c {
		*flat = make([]float64, r*c)
	}
	*flat = (*flat)[:r*c]
	if cap(*rows) < r {
		*rows = make([][]float64, r)
	}
	*rows = (*rows)[:r]
	for i := 0; i < r; i++ {
		(*rows)[i] = (*flat)[i*c : (i+1)*c]
	}
	return *rows
}

// Determine solves heavyweight winner determination for h, reusing
// the determiner's scratch. The Result is freshly allocated and safe
// to retain.
func (d *HeavyDeterminer) Determine(h *HeavyAuction) (*Result, error) {
	res := &Result{}
	if err := d.DetermineInto(h, res); err != nil {
		return nil, err
	}
	return res, nil
}

// DetermineInto is Determine writing into a caller-owned Result whose
// AdvOf/SlotOf slices are reused when large enough — the serving
// engine's allocation-free entry point.
func (d *HeavyDeterminer) DetermineInto(h *HeavyAuction, res *Result) error {
	if h != d.lastH || len(h.Advertisers) != d.lastN || h.Slots != d.lastK {
		if err := h.validate(); err != nil {
			return err
		}
		d.lastH, d.lastN, d.lastK = h, len(h.Advertisers), h.Slots
	}
	n, k := len(h.Advertisers), h.Slots

	d.heavyIdx, d.lightIdx = d.heavyIdx[:0], d.lightIdx[:0]
	for i := range h.Advertisers {
		if h.Advertisers[i].Heavy {
			d.heavyIdx = append(d.heavyIdx, i)
		} else {
			d.lightIdx = append(d.lightIdx, i)
		}
	}

	// Patterns are enumerated in ascending order under the
	// deterministic (highest revenue, lowest pattern index) argmax —
	// the same winner the sequential HeavyAuction.Determine scan's
	// strict > running best selects. With no heavyweight advertisers
	// only pattern 0 can be consistent (every other pattern has a
	// heavyweight slot nobody can fill), so the enumeration collapses
	// to the flat single-matching path.
	patterns := 1 << uint(k)
	if len(d.heavyIdx) == 0 {
		patterns = 1
	}
	for _, s := range d.solvers {
		s.resetBest(n, k)
	}
	if d.parallelism == 1 || patterns == 1 {
		s := d.solvers[0]
		for p := 0; p < patterns; p++ {
			s.solvePattern(h, uint64(p), d.heavyIdx, d.lightIdx)
		}
	} else {
		d.runParallel(h, patterns)
	}

	// Merge the per-worker local bests. Each worker claimed patterns
	// in ascending order and kept the lowest pattern attaining its
	// local maximum, so the rule below reproduces the global ascending
	// scan regardless of how the atomic claims interleaved.
	var best *heavySolver
	for _, s := range d.solvers {
		if !s.bestOK {
			continue
		}
		if best == nil || s.bestRev > best.bestRev ||
			(s.bestRev == best.bestRev && s.bestPattern < best.bestPattern) {
			best = s
		}
	}
	if best == nil {
		return fmt.Errorf("core: no consistent heavyweight pattern (internal error)")
	}

	res.AdvOf = growI(res.AdvOf, k)
	res.SlotOf = growI(res.SlotOf, n)
	copy(res.AdvOf, best.bestAdvOf)
	for i := range res.SlotOf {
		res.SlotOf[i] = -1
	}
	for j, i := range res.AdvOf {
		if i >= 0 {
			res.SlotOf[i] = j
		}
	}
	res.ExpectedRevenue = best.bestRev
	res.Method = MethodHeavy2K
	return nil
}

// runParallel fans one enumeration across the persistent pool,
// spawning it on first use. The coordinator participates as a worker
// (solvers[0]), so parallelism goroutines in total claim patterns
// from the shared atomic counter; the call allocates nothing once the
// pool exists.
func (d *HeavyDeterminer) runParallel(h *HeavyAuction, patterns int) {
	if d.pool == nil {
		p := &heavyPool{
			stop: make(chan struct{}),
			wake: make([]chan struct{}, len(d.solvers)-1),
		}
		for w := range p.wake {
			p.wake[w] = make(chan struct{}, 1)
			go p.worker(d.solvers[w+1], p.wake[w])
		}
		d.pool = p
		// The workers reference the pool and the solvers, never the
		// determiner, so an abandoned determiner stays collectable;
		// the finalizer then stops its goroutines.
		runtime.SetFinalizer(d, (*HeavyDeterminer).Release)
	}
	p := d.pool
	p.h, p.patterns = h, patterns
	p.heavyIdx, p.lightIdx = d.heavyIdx, d.lightIdx
	p.next.Store(0)
	p.wg.Add(len(p.wake))
	for _, c := range p.wake {
		c <- struct{}{}
	}
	p.claim(d.solvers[0])
	p.wg.Wait()
	p.h = nil // drop the auction reference between calls
}

// heavyPool is the persistent worker set behind a parallel
// HeavyDeterminer: parallelism−1 goroutines parked on buffered
// per-worker wake channels, a shared atomic pattern-claim counter,
// and the job fields the coordinator publishes before waking (the
// channel send orders the publication before the worker's reads, and
// wg.Done orders the worker's solver writes before the coordinator's
// merge).
type heavyPool struct {
	stop chan struct{}
	wake []chan struct{}
	wg   sync.WaitGroup
	next atomic.Int64

	h        *HeavyAuction
	patterns int
	heavyIdx []int
	lightIdx []int
}

// claim pulls patterns off the shared counter until the enumeration
// is exhausted, folding each into s's local best.
func (p *heavyPool) claim(s *heavySolver) {
	for {
		pat := p.next.Add(1) - 1
		if pat >= int64(p.patterns) {
			return
		}
		s.solvePattern(p.h, uint64(pat), p.heavyIdx, p.lightIdx)
	}
}

func (p *heavyPool) worker(s *heavySolver, wake <-chan struct{}) {
	for {
		select {
		case <-p.stop:
			return
		case <-wake:
			p.claim(s)
			p.wg.Done()
		}
	}
}

// heavySolver is the per-worker half of a HeavyDeterminer: every
// scratch buffer one pattern solve touches — slot partitions, the
// baseline vector, both weight matrices, the reduced-matching
// candidate machinery, and a matching.Workspace — plus a local
// running argmax, so parallel workers share nothing mutable.
type heavySolver struct {
	ws *matching.Workspace

	heavySlots, lightSlots []int
	base                   []float64

	heavyFlat, lightFlat []float64
	heavyRows, lightRows [][]float64

	heavyAdvOf, lightAdvOf []int
	curAdvOf               []int

	// Reduced-matching scratch: the bounded top-depth heap, the
	// stamp-cleared candidate marks (mark[a] == stamp iff row a is in
	// cands for the current reduction), and the ascending candidate
	// union.
	heap  *topk.Heap
	depth int
	mark  []int
	stamp int
	cands []int

	// Local argmax under the deterministic reduction rule: highest
	// revenue, lowest pattern index on exact ties.
	bestOK      bool
	bestRev     float64
	bestPattern uint64
	bestAdvOf   []int
}

func newHeavySolver() *heavySolver {
	return &heavySolver{ws: matching.NewWorkspace()}
}

// resetBest clears the local argmax before an enumeration and sizes
// the per-pattern buffers for n advertisers and k slots.
func (s *heavySolver) resetBest(n, k int) {
	s.bestOK = false
	s.bestRev = math.Inf(-1)
	s.bestPattern = 0
	s.base = growF(s.base, n)
	s.curAdvOf = growI(s.curAdvOf, k)
	s.bestAdvOf = growI(s.bestAdvOf, k)
}

// solvePattern scores one heavyweight-slot pattern — mirroring
// HeavyAuction.solvePattern operation for operation: baseline sums,
// weight-matrix fill order, the shared forcing constant, the two
// Jonker–Volgenant sub-matchings, and the revenue summation order are
// all identical — and folds a consistent pattern into the solver's
// local best. The sub-matchings run candidate-reduced when the board
// is tall enough (matchReduced), which preserves the exact optimum.
func (s *heavySolver) solvePattern(h *HeavyAuction, pattern uint64, heavyIdx, lightIdx []int) {
	k := h.Slots
	s.heavySlots, s.lightSlots = s.heavySlots[:0], s.lightSlots[:0]
	for j := 0; j < k; j++ {
		if pattern&(1<<uint(j)) != 0 {
			s.heavySlots = append(s.heavySlots, j)
		} else {
			s.lightSlots = append(s.lightSlots, j)
		}
	}
	if len(s.heavySlots) > len(heavyIdx) {
		return // cannot fill every heavyweight slot
	}

	baseOutcome := formula.Outcome{HeavySlots: pattern}
	var baseline float64
	base := s.base
	for i := range h.Advertisers {
		base[i] = h.Advertisers[i].Bids.Payment(baseOutcome)
		baseline += base[i]
	}

	// The sub-matrices are filled in the exact order buildSub visits
	// them (heavy rows first, then light), with the forcing constant's
	// maxAbs accumulated over both — only then is forcing added to the
	// heavy side, as in the sequential path. Both matrices are always
	// filled in full: the reduced matching below still needs every
	// column materialized, and maxAbs must see every entry for the
	// forcing constant (and hence the heavy-side solve) to stay
	// bit-identical to the full-graph reference.
	var maxAbs float64
	hw := subMatrix(&s.heavyFlat, &s.heavyRows, len(heavyIdx), len(s.heavySlots))
	for a, i := range heavyIdx {
		for sj, j := range s.heavySlots {
			w := h.expectedPaymentPattern(i, j, pattern) - base[i]
			if abs := math.Abs(w); abs > maxAbs {
				maxAbs = abs
			}
			hw[a][sj] = w
		}
	}
	lw := subMatrix(&s.lightFlat, &s.lightRows, len(lightIdx), len(s.lightSlots))
	for a, i := range lightIdx {
		for sj, j := range s.lightSlots {
			w := h.expectedPaymentPattern(i, j, pattern) - base[i]
			if abs := math.Abs(w); abs > maxAbs {
				maxAbs = abs
			}
			lw[a][sj] = w
		}
	}
	forcing := (maxAbs + 1) * float64(len(h.Advertisers)+k+1)
	for _, row := range hw {
		for sj := range row {
			row[sj] += forcing
		}
	}

	depth := k + 1
	s.heavyAdvOf = growI(s.heavyAdvOf, len(s.heavySlots))
	s.matchReduced(hw, len(heavyIdx), len(s.heavySlots), depth, s.heavyAdvOf)
	for _, a := range s.heavyAdvOf {
		if a < 0 {
			return // a heavyweight slot stayed empty: inconsistent pattern
		}
	}
	s.lightAdvOf = growI(s.lightAdvOf, len(s.lightSlots))
	s.matchReduced(lw, len(lightIdx), len(s.lightSlots), depth, s.lightAdvOf)

	advOf := s.curAdvOf
	for j := range advOf {
		advOf[j] = -1
	}
	rev := baseline
	for sj, ri := range s.heavyAdvOf {
		i, j := heavyIdx[ri], s.heavySlots[sj]
		advOf[j] = i
		rev += h.expectedPaymentPattern(i, j, pattern) - base[i]
	}
	for sj, ri := range s.lightAdvOf {
		if ri < 0 {
			continue
		}
		i, j := lightIdx[ri], s.lightSlots[sj]
		advOf[j] = i
		rev += h.expectedPaymentPattern(i, j, pattern) - base[i]
	}

	if !s.bestOK || rev > s.bestRev || (rev == s.bestRev && pattern < s.bestPattern) {
		s.bestOK = true
		s.bestRev = rev
		s.bestPattern = pattern
		copy(s.bestAdvOf, advOf)
	}
}

// matchReduced runs one maximum-weight sub-matching over the
// materialized rows×cols matrix w, writing the winning row of each
// column into advOf (−1 for unmatched, non-positive matched edges
// dropped — MaxWeightInto's contract). When the board has more than
// depth rows, the Jonker–Volgenant solve is restricted to the union
// of each column's top-depth strictly-positive rows, boundary ties
// included: since depth = k+1 ≥ cols, any optimal matching that uses
// a row outside a column's list can swap in an unmatched listed row
// of no smaller weight, so the restriction preserves the exact
// optimum (DESIGN.md, "Heavy path at scale"). Short boards take the
// full solve — the candidate union would be all rows anyway.
func (s *heavySolver) matchReduced(w [][]float64, rows, cols, depth int, advOf []int) {
	if rows <= depth || cols == 0 {
		s.ws.MaxWeightInto(rows, cols,
			func(a, sj int) float64 { return w[a][sj] }, advOf)
		return
	}
	s.reduceCands(w, rows, cols, depth)
	cands := s.cands
	s.ws.MaxWeightInto(len(cands), cols,
		func(a, sj int) float64 { return w[cands[a]][sj] }, advOf)
	for sj, ri := range advOf {
		if ri >= 0 {
			advOf[sj] = cands[ri]
		}
	}
}

// reduceCands fills s.cands with the ascending union of each column's
// top-depth strictly-positive rows of w, including every row tied
// with the depth-th value (boundary ties widen a list, never cut it,
// so exact-tie optima stay reachable). Ascending order matters: the
// reduced solve must visit surviving rows in the same relative order
// as the full solve for its tie-breaking to coincide.
func (s *heavySolver) reduceCands(w [][]float64, rows, cols, depth int) {
	if s.heap == nil || s.depth != depth {
		s.heap = topk.NewHeap(depth)
		s.depth = depth
	}
	s.mark = growI(s.mark, rows)
	s.stamp++
	stamp := s.stamp
	for sj := 0; sj < cols; sj++ {
		hp := s.heap
		hp.Reset()
		for a := 0; a < rows; a++ {
			if v := w[a][sj]; v > 0 {
				hp.Offer(topk.Item{ID: a, Score: v})
			}
		}
		switch {
		case hp.Len() == 0:
			// No positive rows: the full solve would match nothing
			// here either (non-positive edges are dropped).
		case hp.Len() == depth:
			// Full heap: everything at or above the depth-th value is
			// a candidate — a second scan against the threshold picks
			// up the retained rows and their boundary ties at once.
			kth := hp.Min().Score
			for a := 0; a < rows; a++ {
				if w[a][sj] >= kth {
					s.mark[a] = stamp
				}
			}
		default:
			// Fewer than depth positive rows: all of them qualify.
			for a := 0; a < rows; a++ {
				if w[a][sj] > 0 {
					s.mark[a] = stamp
				}
			}
		}
	}
	s.cands = s.cands[:0]
	for a := 0; a < rows; a++ {
		if s.mark[a] == stamp {
			s.cands = append(s.cands, a)
		}
	}
}
