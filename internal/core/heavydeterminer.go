package core

import (
	"fmt"
	"math"

	"repro/internal/formula"
	"repro/internal/matching"
	"repro/internal/probmodel"
)

// HeavyDeterminer solves Section III-F heavyweight winner
// determination repeatedly without rebuilding per-call state: the
// 2^k pattern enumeration runs over cached scratch — the
// heavyweight/lightweight index partitions, the per-pattern baseline
// vector, the two sub-matching weight matrices (flat backing buffers
// with reused row headers), and a matching.Workspace for the
// Jonker–Volgenant solves — so a serving worker can feed it auction
// after auction with zero heap allocations in steady state. Results
// are byte-identical to the sequential HeavyAuction.Determine path
// (same enumeration order, same matrix construction, same tie
// handling), which the equivalence tests pin exactly.
//
// Like Determiner, a HeavyDeterminer is not safe for concurrent use.
// Structural validation is cached per (auction pointer, advertiser
// count, slot count): callers that mutate bid *values* in place
// between calls (the serving engine's pattern) skip revalidation, but
// swapping in different formulas, models, or Heavy flags under the
// same auction pointer is the caller's contract to revalidate — pass
// a fresh auction value (or call Invalidate) when the shape changes.
type HeavyDeterminer struct {
	ws *matching.Workspace

	heavyIdx, lightIdx     []int
	heavySlots, lightSlots []int
	base                   []float64

	heavyFlat, lightFlat []float64
	heavyRows, lightRows [][]float64

	heavyAdvOf, lightAdvOf []int
	curAdvOf, bestAdvOf    []int

	// Validation cache: DetermineInto skips structural validation when
	// the auction pointer and shape match the last validated call.
	lastH *HeavyAuction
	lastN int
	lastK int

	// VCG counterfactual state: a persistent sub-auction (advertiser,
	// probability-row, and class slices reused across solves) and a
	// nested determiner that owns its enumeration scratch.
	vals        []float64
	subAdvs     []Advertiser
	subClick    [][]float64
	subPurchase [][]float64
	subIsHeavy  []bool
	subModel    probmodel.HeavyModel
	subBase     probmodel.Model
	subAuction  HeavyAuction
	subRes      Result
	sub         *HeavyDeterminer
}

// NewHeavyDeterminer returns a determiner with empty buffers; they
// grow to the largest auction seen and then stay allocation-free.
func NewHeavyDeterminer() *HeavyDeterminer {
	return &HeavyDeterminer{ws: matching.NewWorkspace()}
}

// Invalidate drops the cached structural validation, forcing the next
// DetermineInto to revalidate. Call it after changing an auction's
// formulas, model, or Heavy flags in place.
func (d *HeavyDeterminer) Invalidate() { d.lastH = nil }

// growF, growI, growRows resize scratch slices, reusing backing
// arrays whenever they are large enough.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// subMatrix returns an r×c view over the flat backing buffer,
// growing both to the largest shape seen.
func subMatrix(flat *[]float64, rows *[][]float64, r, c int) [][]float64 {
	if cap(*flat) < r*c {
		*flat = make([]float64, r*c)
	}
	*flat = (*flat)[:r*c]
	if cap(*rows) < r {
		*rows = make([][]float64, r)
	}
	*rows = (*rows)[:r]
	for i := 0; i < r; i++ {
		(*rows)[i] = (*flat)[i*c : (i+1)*c]
	}
	return *rows
}

// Determine solves heavyweight winner determination for h, reusing
// the determiner's scratch. The Result is freshly allocated and safe
// to retain.
func (d *HeavyDeterminer) Determine(h *HeavyAuction) (*Result, error) {
	res := &Result{}
	if err := d.DetermineInto(h, res); err != nil {
		return nil, err
	}
	return res, nil
}

// DetermineInto is Determine writing into a caller-owned Result whose
// AdvOf/SlotOf slices are reused when large enough — the serving
// engine's allocation-free entry point.
func (d *HeavyDeterminer) DetermineInto(h *HeavyAuction, res *Result) error {
	if h != d.lastH || len(h.Advertisers) != d.lastN || h.Slots != d.lastK {
		if err := h.validate(); err != nil {
			return err
		}
		d.lastH, d.lastN, d.lastK = h, len(h.Advertisers), h.Slots
	}
	n, k := len(h.Advertisers), h.Slots

	d.heavyIdx, d.lightIdx = d.heavyIdx[:0], d.lightIdx[:0]
	for i := range h.Advertisers {
		if h.Advertisers[i].Heavy {
			d.heavyIdx = append(d.heavyIdx, i)
		} else {
			d.lightIdx = append(d.lightIdx, i)
		}
	}
	d.base = growF(d.base, n)
	d.curAdvOf = growI(d.curAdvOf, k)
	d.bestAdvOf = growI(d.bestAdvOf, k)

	// Enumerate patterns in ascending order with a strict > running
	// best — the same argmax (first pattern attaining the maximum) the
	// sequential HeavyAuction.Determine scan selects.
	patterns := 1 << uint(k)
	bestRev := math.Inf(-1)
	found := false
	for p := 0; p < patterns; p++ {
		ok, rev := d.solvePattern(h, uint64(p))
		if ok && rev > bestRev {
			bestRev = rev
			found = true
			copy(d.bestAdvOf, d.curAdvOf)
		}
	}
	if !found {
		return fmt.Errorf("core: no consistent heavyweight pattern (internal error)")
	}

	res.AdvOf = growI(res.AdvOf, k)
	res.SlotOf = growI(res.SlotOf, n)
	copy(res.AdvOf, d.bestAdvOf)
	for i := range res.SlotOf {
		res.SlotOf[i] = -1
	}
	for j, i := range res.AdvOf {
		if i >= 0 {
			res.SlotOf[i] = j
		}
	}
	res.ExpectedRevenue = bestRev
	res.Method = MethodHeavy2K
	return nil
}

// solvePattern mirrors HeavyAuction.solvePattern operation for
// operation — baseline sums, weight-matrix fill order, the shared
// forcing constant, the two Jonker–Volgenant sub-matchings, and the
// revenue summation order are all identical — but runs entirely in
// the determiner's scratch. The winning allocation is left in
// d.curAdvOf.
func (d *HeavyDeterminer) solvePattern(h *HeavyAuction, pattern uint64) (ok bool, rev float64) {
	k := h.Slots
	d.heavySlots, d.lightSlots = d.heavySlots[:0], d.lightSlots[:0]
	for j := 0; j < k; j++ {
		if pattern&(1<<uint(j)) != 0 {
			d.heavySlots = append(d.heavySlots, j)
		} else {
			d.lightSlots = append(d.lightSlots, j)
		}
	}
	if len(d.heavySlots) > len(d.heavyIdx) {
		return false, 0 // cannot fill every heavyweight slot
	}

	baseOutcome := formula.Outcome{HeavySlots: pattern}
	var baseline float64
	base := d.base
	for i := range h.Advertisers {
		base[i] = h.Advertisers[i].Bids.Payment(baseOutcome)
		baseline += base[i]
	}

	// The sub-matrices are filled in the exact order buildSub visits
	// them (heavy rows first, then light), with the forcing constant's
	// maxAbs accumulated over both — only then is forcing added to the
	// heavy side, as in the sequential path.
	var maxAbs float64
	hw := subMatrix(&d.heavyFlat, &d.heavyRows, len(d.heavyIdx), len(d.heavySlots))
	for a, i := range d.heavyIdx {
		for s, j := range d.heavySlots {
			w := h.expectedPaymentPattern(i, j, pattern) - base[i]
			if abs := math.Abs(w); abs > maxAbs {
				maxAbs = abs
			}
			hw[a][s] = w
		}
	}
	lw := subMatrix(&d.lightFlat, &d.lightRows, len(d.lightIdx), len(d.lightSlots))
	for a, i := range d.lightIdx {
		for s, j := range d.lightSlots {
			w := h.expectedPaymentPattern(i, j, pattern) - base[i]
			if abs := math.Abs(w); abs > maxAbs {
				maxAbs = abs
			}
			lw[a][s] = w
		}
	}
	forcing := (maxAbs + 1) * float64(len(h.Advertisers)+k+1)
	for _, row := range hw {
		for s := range row {
			row[s] += forcing
		}
	}

	d.heavyAdvOf = growI(d.heavyAdvOf, len(d.heavySlots))
	d.ws.MaxWeightInto(len(d.heavyIdx), len(d.heavySlots),
		func(a, s int) float64 { return hw[a][s] }, d.heavyAdvOf)
	for _, a := range d.heavyAdvOf {
		if a < 0 {
			return false, 0 // a heavyweight slot stayed empty: inconsistent pattern
		}
	}
	d.lightAdvOf = growI(d.lightAdvOf, len(d.lightSlots))
	d.ws.MaxWeightInto(len(d.lightIdx), len(d.lightSlots),
		func(a, s int) float64 { return lw[a][s] }, d.lightAdvOf)

	advOf := d.curAdvOf
	for j := range advOf {
		advOf[j] = -1
	}
	rev = baseline
	for sj, ri := range d.heavyAdvOf {
		i, j := d.heavyIdx[ri], d.heavySlots[sj]
		advOf[j] = i
		rev += h.expectedPaymentPattern(i, j, pattern) - base[i]
	}
	for sj, ri := range d.lightAdvOf {
		if ri < 0 {
			continue
		}
		i, j := d.lightIdx[ri], d.lightSlots[sj]
		advOf[j] = i
		rev += h.expectedPaymentPattern(i, j, pattern) - base[i]
	}
	return true, rev
}
