package core

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/formula"
	"repro/internal/probmodel"
	"repro/internal/racetest"
)

// randHeavyAuction builds a random Section III-F instance: shadowed
// click factors, mixed heavyweight flags, and bids that may reference
// the heavyweight pattern.
func randHeavyAuction(rng *rand.Rand, n, k int) *HeavyAuction {
	base := probmodel.New(n, k)
	h := &HeavyAuction{Slots: k, Model: &probmodel.HeavyModel{
		Base:   base,
		Factor: probmodel.ShadowFactors(k, 0.3),
	}}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			base.Click[i][j] = rng.Float64()
			base.Purchase[i][j] = rng.Float64() * 0.3
		}
		var bids formula.Bids
		bids = append(bids, formula.Bid{F: randOneDepFormula(rng, k), Value: float64(rng.Intn(10))})
		if rng.Intn(2) == 0 {
			f := formula.And{X: formula.Slot{J: 1 + rng.Intn(k)}, Y: formula.Not{X: formula.Heavy{J: 1 + rng.Intn(k)}}}
			bids = append(bids, formula.Bid{F: f, Value: float64(rng.Intn(10))})
		}
		h.Advertisers = append(h.Advertisers, Advertiser{
			ID:    "a" + strconv.Itoa(i),
			Bids:  bids,
			Heavy: rng.Intn(2) == 0,
		})
		h.Model.IsHeavy = append(h.Model.IsHeavy, h.Advertisers[i].Heavy)
	}
	return h
}

// TestHeavyDeterminerMatchesDetermine drives one HeavyDeterminer
// across a stream of heavyweight auctions of varying shape and checks
// every result — allocation, slot map, revenue, method — against the
// one-shot sequential HeavyAuction.Determine, bit for bit. Buffer
// reuse across shapes must never leak state between calls.
func TestHeavyDeterminerMatchesDetermine(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	d := NewHeavyDeterminer()
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		k := 1 + rng.Intn(4)
		h := randHeavyAuction(rng, n, k)
		got, err := d.Determine(h)
		if err != nil {
			t.Fatalf("trial %d: determiner: %v", trial, err)
		}
		want, err := h.Determine(false)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d): determiner %+v != sequential %+v", trial, n, k, got, want)
		}
	}
}

// TestHeavyDeterminerValueMutation is the serving engine's exact use
// pattern: one auction object whose bid values are mutated in place
// between calls (formulas and shape unchanged, so the cached
// validation is reused). Every call must still match the cold
// sequential path bit for bit.
func TestHeavyDeterminerValueMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	const n, k = 12, 3
	h := &HeavyAuction{Slots: k, Model: &probmodel.HeavyModel{
		Base:   probmodel.New(n, k),
		Factor: probmodel.ShadowFactors(k, 0.4),
	}}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			h.Model.Base.Click[i][j] = 0.1 + 0.8*rng.Float64()
		}
		h.Advertisers = append(h.Advertisers, Advertiser{
			ID:    "a" + strconv.Itoa(i),
			Bids:  formula.Bids{{F: formula.Click{}, Value: 0}},
			Heavy: i%3 == 0,
		})
		h.Model.IsHeavy = append(h.Model.IsHeavy, h.Advertisers[i].Heavy)
	}
	d := NewHeavyDeterminer()
	var res Result
	for round := 0; round < 30; round++ {
		for i := range h.Advertisers {
			h.Advertisers[i].Bids[0].Value = float64(rng.Intn(20))
		}
		if err := d.DetermineInto(h, &res); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want, err := h.Determine(false)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(&res, want) {
			t.Fatalf("round %d: determiner %+v != sequential %+v", round, &res, want)
		}
	}
}

// TestHeavyDeterminerSteadyStateAllocs: after the first call on a
// given shape, DetermineInto with in-place bid-value mutations must
// not allocate at all — the property that makes MethodHeavy a
// servable engine path.
func TestHeavyDeterminerSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	rng := rand.New(rand.NewSource(107))
	const n, k = 60, 4
	h := &HeavyAuction{Slots: k, Model: &probmodel.HeavyModel{
		Base:   probmodel.New(n, k),
		Factor: probmodel.ShadowFactors(k, 0.3),
	}}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			h.Model.Base.Click[i][j] = 0.1 + 0.8*rng.Float64()
		}
		h.Advertisers = append(h.Advertisers, Advertiser{
			ID:    "a" + strconv.Itoa(i),
			Bids:  formula.Bids{{F: formula.Click{}, Value: float64(rng.Intn(20))}},
			Heavy: i%4 == 0,
		})
		h.Model.IsHeavy = append(h.Model.IsHeavy, h.Advertisers[i].Heavy)
	}
	d := NewHeavyDeterminer()
	var res Result
	if err := d.DetermineInto(h, &res); err != nil {
		t.Fatal(err)
	}
	var tick int
	allocs := testing.AllocsPerRun(200, func() {
		tick++
		h.Advertisers[tick%n].Bids[0].Value = float64(tick % 17)
		if err := d.DetermineInto(h, &res); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state heavyweight determination allocates %.2f objects/op, want 0", allocs)
	}
}

// TestHeavyVCGPaymentsMatchColdReference: the determiner's
// buffer-reusing counterfactual solves must reproduce, bit for bit, a
// cold implementation that rebuilds a fresh sub-auction and runs the
// sequential Determine per winner.
func TestHeavyVCGPaymentsMatchColdReference(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	d := NewHeavyDeterminer()
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		k := 1 + rng.Intn(3)
		h := randHeavyAuction(rng, n, k)
		res, err := h.Determine(false)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		if err := d.VCGPaymentsInto(h, res, got); err != nil {
			t.Fatal(err)
		}

		// Cold reference: values under the realized pattern, one fresh
		// sub-auction per winner.
		pattern := heavyPattern(h.Advertisers, res.AdvOf)
		vals := make([]float64, n)
		var total float64
		for i := range h.Advertisers {
			if j := res.SlotOf[i]; j >= 0 {
				vals[i] = h.expectedPaymentPattern(i, j, pattern)
			} else {
				vals[i] = h.Advertisers[i].Bids.Payment(formula.Outcome{HeavySlots: pattern})
			}
			total += vals[i]
		}
		for i := 0; i < n; i++ {
			j := res.SlotOf[i]
			var want float64
			if j >= 0 {
				sub := &HeavyAuction{Slots: k, Model: &probmodel.HeavyModel{
					Base:   &probmodel.Model{},
					Factor: h.Model.Factor,
				}}
				for l := 0; l < n; l++ {
					if l == i {
						continue
					}
					sub.Advertisers = append(sub.Advertisers, h.Advertisers[l])
					sub.Model.Base.Click = append(sub.Model.Base.Click, h.Model.Base.Click[l])
					sub.Model.Base.Purchase = append(sub.Model.Base.Purchase, h.Model.Base.Purchase[l])
					sub.Model.IsHeavy = append(sub.Model.IsHeavy, h.Model.IsHeavy[l])
				}
				r, err := sub.Determine(false)
				if err != nil {
					t.Fatal(err)
				}
				want = r.ExpectedRevenue - (total - vals[i])
				if want < 0 {
					want = 0
				}
			}
			if got[i] != want {
				t.Fatalf("trial %d advertiser %d: determiner VCG %g != cold reference %g", trial, i, got[i], want)
			}
		}

		// The allocating wrapper must agree with the reused path.
		wrapped, err := h.VCGPayments(res)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wrapped, got) {
			t.Fatalf("trial %d: VCGPayments %v != VCGPaymentsInto %v", trial, wrapped, got)
		}
	}
}
