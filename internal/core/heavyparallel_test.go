package core

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/formula"
	"repro/internal/matching"
	"repro/internal/probmodel"
	"repro/internal/racetest"
)

// tieHeavyAuction builds a heavyweight instance engineered for exact
// revenue ties across patterns: no shadowing (click probabilities are
// pattern-independent), no pattern-referencing bids, exact binary
// fractions for probabilities, and small integer bid values. Many
// patterns then attain the same optimal revenue bit for bit, so any
// path that does not implement the (highest revenue, lowest pattern
// index) reduction rule exactly is caught.
func tieHeavyAuction(rng *rand.Rand, n, k int) *HeavyAuction {
	base := probmodel.New(n, k)
	h := &HeavyAuction{Slots: k, Model: &probmodel.HeavyModel{Base: base}}
	fractions := []float64{0.25, 0.5, 0.75, 1}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			base.Click[i][j] = fractions[rng.Intn(len(fractions))]
		}
		h.Advertisers = append(h.Advertisers, Advertiser{
			ID:    "t" + strconv.Itoa(i),
			Bids:  formula.Bids{{F: formula.Click{}, Value: float64(rng.Intn(4))}},
			Heavy: rng.Intn(2) == 0,
		})
		h.Model.IsHeavy = append(h.Model.IsHeavy, h.Advertisers[i].Heavy)
	}
	return h
}

// TestHeavyParallelPathsAgree pins the unified parallelism story:
// HeavyAuction.Determine(false), HeavyAuction.Determine(true), a
// sequential HeavyDeterminer, and a parallel HeavyDeterminer must all
// produce bit-identical results — same allocation, slot map, revenue,
// and method — on both generic random instances and tie-engineered
// ones, because every path reduces through the same deterministic
// (highest revenue, lowest pattern index) argmax.
func TestHeavyParallelPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	seq := NewHeavyDeterminer()
	par := NewHeavyDeterminerParallel(4)
	defer par.Release()
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(30)
		k := 1 + rng.Intn(4)
		var h *HeavyAuction
		if trial%2 == 0 {
			h = randHeavyAuction(rng, n, k)
		} else {
			h = tieHeavyAuction(rng, n, k)
		}
		want, err := h.Determine(false)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		goroutines, err := h.Determine(true)
		if err != nil {
			t.Fatalf("trial %d: parallel Determine: %v", trial, err)
		}
		if !reflect.DeepEqual(goroutines, want) {
			t.Fatalf("trial %d (n=%d k=%d): Determine(true) %+v != Determine(false) %+v",
				trial, n, k, goroutines, want)
		}
		fromSeq, err := seq.Determine(h)
		if err != nil {
			t.Fatalf("trial %d: sequential determiner: %v", trial, err)
		}
		if !reflect.DeepEqual(fromSeq, want) {
			t.Fatalf("trial %d (n=%d k=%d): sequential determiner %+v != Determine(false) %+v",
				trial, n, k, fromSeq, want)
		}
		fromPar, err := par.Determine(h)
		if err != nil {
			t.Fatalf("trial %d: parallel determiner: %v", trial, err)
		}
		if !reflect.DeepEqual(fromPar, want) {
			t.Fatalf("trial %d (n=%d k=%d): parallel determiner %+v != Determine(false) %+v",
				trial, n, k, fromPar, want)
		}
	}
}

// fullGraphDetermine is the independent oracle for the reduced
// per-pattern matching: the pre-reduction Determine algorithm — 2^k
// pattern enumeration with *full-graph* Jonker–Volgenant
// sub-matchings over every advertiser, and the ascending strict->
// argmax. It is deliberately reimplemented here, against
// matching.MaxWeight directly, so the production code under test
// shares no matching path with it.
func fullGraphDetermine(t *testing.T, h *HeavyAuction) *Result {
	t.Helper()
	var heavyIdx, lightIdx []int
	for i := range h.Advertisers {
		if h.Advertisers[i].Heavy {
			heavyIdx = append(heavyIdx, i)
		} else {
			lightIdx = append(lightIdx, i)
		}
	}
	bestRev := math.Inf(-1)
	var bestAdv []int
patterns:
	for pattern := uint64(0); pattern < 1<<uint(h.Slots); pattern++ {
		var heavySlots, lightSlots []int
		for j := 0; j < h.Slots; j++ {
			if pattern&(1<<uint(j)) != 0 {
				heavySlots = append(heavySlots, j)
			} else {
				lightSlots = append(lightSlots, j)
			}
		}
		if len(heavySlots) > len(heavyIdx) {
			continue
		}
		baseline := 0.0
		base := make([]float64, len(h.Advertisers))
		for i := range h.Advertisers {
			base[i] = h.Advertisers[i].Bids.Payment(formula.Outcome{HeavySlots: pattern})
			baseline += base[i]
		}
		var maxAbs float64
		weight := func(i, j int) float64 {
			w := h.expectedPaymentPattern(i, j, pattern) - base[i]
			if a := math.Abs(w); a > maxAbs {
				maxAbs = a
			}
			return w
		}
		heavyW := buildSub(weight, heavyIdx, heavySlots)
		lightW := buildSub(weight, lightIdx, lightSlots)
		forcing := (maxAbs + 1) * float64(len(h.Advertisers)+h.Slots+1)
		for _, row := range heavyW {
			for j := range row {
				row[j] += forcing
			}
		}
		heavyAssign := matching.MaxWeight(heavyW)
		for _, ri := range heavyAssign.AdvOf {
			if ri < 0 {
				continue patterns
			}
		}
		lightAssign := matching.MaxWeight(lightW)
		advOf := make([]int, h.Slots)
		for j := range advOf {
			advOf[j] = -1
		}
		rev := baseline
		for sj, ri := range heavyAssign.AdvOf {
			i, j := heavyIdx[ri], heavySlots[sj]
			advOf[j] = i
			rev += h.expectedPaymentPattern(i, j, pattern) - base[i]
		}
		for sj, ri := range lightAssign.AdvOf {
			if ri < 0 {
				continue
			}
			i, j := lightIdx[ri], lightSlots[sj]
			advOf[j] = i
			rev += h.expectedPaymentPattern(i, j, pattern) - base[i]
		}
		if rev > bestRev {
			bestRev, bestAdv = rev, advOf
		}
	}
	if bestAdv == nil {
		t.Fatal("full-graph oracle found no consistent pattern")
	}
	return &Result{AdvOf: bestAdv, ExpectedRevenue: bestRev, Method: MethodHeavy2K}
}

// TestHeavyDeterminerReducedMatchesFullGraph is the exhaustive
// randomized cross-check of the reduced per-pattern matching, on
// boards tall enough that every pattern solve takes the top-(k+1)
// candidate restriction. Two contracts are pinned:
//
//   - Against HeavyAuction.Determine (which runs the same reduced
//     matchings): bit-identical results, always.
//   - Against the independent full-graph oracle above: exactly equal
//     expected revenue and exactly equal assignment Score — not
//     approximately. The candidate restriction keeps every optimal
//     matching intact (a row outside a column's top-(k+1) is strictly
//     dominated there by an unmatched candidate), so the optimum is
//     preserved to the bit; only *which* equally-optimal assignment
//     is returned may differ on instances with exact weight ties,
//     which is why the allocation itself is compared through
//     Score rather than element-wise.
func TestHeavyDeterminerReducedMatchesFullGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	d := NewHeavyDeterminer()
	for trial := 0; trial < 30; trial++ {
		n := 30 + rng.Intn(50) // n >> k+1: the reduction is always active
		k := 1 + rng.Intn(5)
		var h *HeavyAuction
		if trial%3 == 2 {
			h = tieHeavyAuction(rng, n, k) // exact ties: value-level agreement still required
		} else {
			h = randHeavyAuction(rng, n, k)
		}
		got, err := d.Determine(h)
		if err != nil {
			t.Fatalf("trial %d: determiner: %v", trial, err)
		}
		want, err := h.Determine(false)
		if err != nil {
			t.Fatalf("trial %d: Determine: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d): determiner %+v != Determine %+v", trial, n, k, got, want)
		}
		full := fullGraphDetermine(t, h)
		if got.ExpectedRevenue != full.ExpectedRevenue {
			t.Fatalf("trial %d (n=%d k=%d): reduced revenue %g != full-graph %g",
				trial, n, k, got.ExpectedRevenue, full.ExpectedRevenue)
		}
		gotScore, err := h.Score(got.AdvOf)
		if err != nil {
			t.Fatalf("trial %d: score reduced: %v", trial, err)
		}
		fullScore, err := h.Score(full.AdvOf)
		if err != nil {
			t.Fatalf("trial %d: score full: %v", trial, err)
		}
		if gotScore != fullScore {
			t.Fatalf("trial %d (n=%d k=%d): assignment score %g != full-graph %g",
				trial, n, k, gotScore, fullScore)
		}
	}
}

// TestHeavyDeterminerDegenerate covers the shapes that exercise the
// enumeration's edges, each against HeavyAuction.Determine: no
// heavyweight advertisers (the determiner shortcuts to the flat
// single-pattern path — only pattern 0 is consistent), all-heavy (the
// lightweight board is empty), and fewer advertisers than slots.
func TestHeavyDeterminerDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	check := func(t *testing.T, d *HeavyDeterminer, h *HeavyAuction) {
		t.Helper()
		got, err := d.Determine(h)
		if err != nil {
			t.Fatalf("determiner: %v", err)
		}
		want, err := h.Determine(false)
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("determiner %+v != sequential %+v", got, want)
		}
	}
	for _, par := range []int{1, 3} {
		d := NewHeavyDeterminerParallel(par)
		t.Run("parallelism="+strconv.Itoa(par), func(t *testing.T) {
			t.Run("no-heavy", func(t *testing.T) {
				for trial := 0; trial < 10; trial++ {
					h := randHeavyAuction(rng, 5+rng.Intn(20), 1+rng.Intn(4))
					for i := range h.Advertisers {
						h.Advertisers[i].Heavy = false
						h.Model.IsHeavy[i] = false
					}
					check(t, d, h)
				}
			})
			t.Run("all-heavy", func(t *testing.T) {
				for trial := 0; trial < 10; trial++ {
					h := randHeavyAuction(rng, 5+rng.Intn(20), 1+rng.Intn(4))
					for i := range h.Advertisers {
						h.Advertisers[i].Heavy = true
						h.Model.IsHeavy[i] = true
					}
					check(t, d, h)
				}
			})
			t.Run("fewer-advertisers-than-slots", func(t *testing.T) {
				for trial := 0; trial < 10; trial++ {
					h := randHeavyAuction(rng, 1+rng.Intn(3), 4)
					check(t, d, h)
				}
			})
		})
		d.Release()
	}
}

// TestHeavyParallelVCGMatches: VCG payments computed through a
// parallel determiner (whose nested counterfactual determiner
// inherits the pool parallelism) must equal the allocating sequential
// HeavyAuction.VCGPayments bit for bit.
func TestHeavyParallelVCGMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	d := NewHeavyDeterminerParallel(4)
	defer d.Release()
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		h := randHeavyAuction(rng, n, k)
		res, err := d.Determine(h)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		if err := d.VCGPaymentsInto(h, res, got); err != nil {
			t.Fatal(err)
		}
		want, err := h.VCGPayments(res)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: parallel VCG %v != sequential %v", trial, got, want)
		}
	}
}

// TestHeavyDeterminerParallelSteadyStateAllocs: the worker pool is
// persistent, so after the first call on a given shape a parallel
// determiner must be exactly as allocation-free as the sequential one
// — wakeups, pattern claims, and the local-best merge all run on
// preallocated state.
func TestHeavyDeterminerParallelSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	rng := rand.New(rand.NewSource(233))
	const n, k = 60, 4
	h := &HeavyAuction{Slots: k, Model: &probmodel.HeavyModel{
		Base:   probmodel.New(n, k),
		Factor: probmodel.ShadowFactors(k, 0.3),
	}}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			h.Model.Base.Click[i][j] = 0.1 + 0.8*rng.Float64()
		}
		h.Advertisers = append(h.Advertisers, Advertiser{
			ID:    "a" + strconv.Itoa(i),
			Bids:  formula.Bids{{F: formula.Click{}, Value: float64(rng.Intn(20))}},
			Heavy: i%4 == 0,
		})
		h.Model.IsHeavy = append(h.Model.IsHeavy, h.Advertisers[i].Heavy)
	}
	d := NewHeavyDeterminerParallel(4)
	defer d.Release()
	var res Result
	if err := d.DetermineInto(h, &res); err != nil {
		t.Fatal(err)
	}
	var tick int
	allocs := testing.AllocsPerRun(200, func() {
		tick++
		h.Advertisers[tick%n].Bids[0].Value = float64(tick % 17)
		if err := d.DetermineInto(h, &res); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state parallel heavyweight determination allocates %.2f objects/op, want 0", allocs)
	}
}

// TestHeavyDeterminerRelease: Release is idempotent, stops the pool,
// and a determiner that never went parallel (or never ran) releases
// without incident.
func TestHeavyDeterminerRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(239))
	h := randHeavyAuction(rng, 10, 3)

	used := NewHeavyDeterminerParallel(2)
	if _, err := used.Determine(h); err != nil {
		t.Fatal(err)
	}
	used.Release()
	used.Release() // idempotent

	idle := NewHeavyDeterminerParallel(2)
	idle.Release() // no pool was ever spawned

	seq := NewHeavyDeterminer()
	if _, err := seq.Determine(h); err != nil {
		t.Fatal(err)
	}
	seq.Release() // sequential: nothing to stop
}
