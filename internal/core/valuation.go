package core

import (
	"fmt"

	"repro/internal/formula"
)

// This file implements the Theorem 2 construction: for 1-dependent
// bids, every bid of $d on event E contributes, per slot j, exactly
// d·P(E | advertiser in slot j) to the expected revenue of assigning
// that slot, plus a slot-independent contribution for the unassigned
// outcome. Filling out the advertiser×slot table of these expected
// values turns winner determination into maximum-weight bipartite
// matching.

// expectedPayment returns the expected payment of advertiser i if
// placed in slot j (0-based), under the auction's click and purchase
// model, over all of i's own bids.
func (a *Auction) expectedPayment(i, j int) float64 {
	return a.expectedPaymentBids(a.Advertisers[i].Bids, i, j)
}

// expectedPaymentBids evaluates a bid subset: with w = P(click | slot)
// and q = P(purchase | click, slot), the reachable outcomes are
// (no click), (click, no purchase), and (click, purchase) with
// probabilities 1−w, w(1−q), and wq.
func (a *Auction) expectedPaymentBids(bids formula.Bids, i, j int) float64 {
	w := a.Probs.Click[i][j]
	q := a.Probs.Purchase[i][j]
	slot := j + 1 // formula predicates are 1-based
	var total float64
	if p := 1 - w; p > 0 {
		total += p * bids.Payment(formula.Outcome{Slot: slot})
	}
	if p := w * (1 - q); p > 0 {
		total += p * bids.Payment(formula.Outcome{Slot: slot, Clicked: true})
	}
	if p := w * q; p > 0 {
		total += p * bids.Payment(formula.Outcome{Slot: slot, Clicked: true, Purchased: true})
	}
	return total
}

// unassignedPayment returns advertiser i's payment in the unassigned
// outcome (no slot ⇒ no click ⇒ no purchase), which is deterministic.
// Bids like "pay 1 if NOT Slot1" make this non-zero, so it cannot be
// ignored: the matching runs on weights shifted by this baseline.
func (a *Auction) unassignedPayment(i int) float64 {
	return a.Advertisers[i].Bids.Payment(formula.Outcome{})
}

// RevenueMatrix returns the n×k matrix of expected payments (the
// paper's Figure 9 "revenue matrix"), without baseline adjustment.
func (a *Auction) RevenueMatrix() [][]float64 {
	n := len(a.Advertisers)
	w := make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = make([]float64, a.Slots)
		for j := 0; j < a.Slots; j++ {
			w[i][j] = a.expectedPayment(i, j)
		}
	}
	return w
}

// adjustedMatrix builds the Theorem 2 table: w[i][j] is the total
// expected-revenue change, relative to everyone-unassigned, of
// placing advertiser i in slot j — summed over every bid (from any
// advertiser) whose event depends on advertiser i's placement.
// baseline is the total payment in the all-unassigned outcome. The
// matching optimum over w plus baseline equals the expected-revenue
// optimum.
//
// Bids fall into three classes by their dependence set:
//
//   - own-placement bids (Click/Purchase/Slot/Unplaced only): their
//     expected value per slot comes from the click/purchase model;
//   - constant bids (no predicates): pure baseline;
//   - single-other bids (AdvSlot(x, ·) only): deterministic given x's
//     slot, attributed to x's row — the paper's proof converts the
//     bid into OR-bids on E ∧ Slot^x_j, which is exactly this;
//   - anything else is not 1-dependent and yields ErrNotOneDependent
//     (heavyweight references are directed to HeavyAuction).
func (a *Auction) adjustedMatrix() (w [][]float64, baseline float64, err error) {
	w = make([][]float64, len(a.Advertisers))
	for i := range w {
		w[i] = make([]float64, a.Slots)
	}
	baseline, err = a.adjustedMatrixInto(w)
	if err != nil {
		return nil, 0, err
	}
	return w, baseline, nil
}

// adjustedMatrixInto is adjustedMatrix writing into a caller-owned,
// zeroed n×k buffer — the Determiner's reuse point.
func (a *Auction) adjustedMatrixInto(w [][]float64) (baseline float64, err error) {
	n := len(a.Advertisers)
	index := make(map[string]int, n)
	for i := range a.Advertisers {
		index[a.Advertisers[i].ID] = i
	}
	for x := 0; x < n; x++ {
		var own formula.Bids
		for _, bid := range a.Advertisers[x].Bids {
			d := formula.Analyze(bid.F)
			switch {
			case d.Heavy:
				return 0, fmt.Errorf(
					"core: advertiser %s bids on the heavyweight pattern; use HeavyAuction.Determine",
					a.Advertisers[x].ID)
			case len(d.Others) == 0:
				// Own-placement or constant: expected-value machinery.
				own = append(own, bid)
			case len(d.Others) == 1 && !d.Self:
				// 1-dependent on one other advertiser's slot: the event
				// is deterministic given that slot.
				other, ok := index[d.Others[0]]
				if !ok {
					// References an advertiser not in this auction: the
					// target is never placed, so the bid is constant.
					if bid.F.Eval(formula.Outcome{}) {
						baseline += bid.Value
					}
					continue
				}
				unplaced := bid.F.Eval(formula.Outcome{OtherSlots: map[string]int{}})
				base := 0.0
				if unplaced {
					base = bid.Value
				}
				baseline += base
				slotView := map[string]int{}
				for j := 0; j < a.Slots; j++ {
					slotView[d.Others[0]] = j + 1
					if bid.F.Eval(formula.Outcome{OtherSlots: slotView}) {
						w[other][j] += bid.Value - base
					} else {
						w[other][j] -= base
					}
				}
			default:
				return 0, fmt.Errorf("advertiser %s: %w", a.Advertisers[x].ID, ErrNotOneDependent)
			}
		}
		// Own bids: expected payment per slot minus the unassigned
		// baseline.
		b := own.Payment(formula.Outcome{})
		baseline += b
		for j := 0; j < a.Slots; j++ {
			w[x][j] += a.expectedPaymentBids(own, x, j) - b
		}
	}
	return baseline, nil
}
