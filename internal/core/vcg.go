package core

import (
	"fmt"

	"repro/internal/formula"
	"repro/internal/probmodel"
)

// VCG pricing (Vickrey–Clarke–Groves): each winner is charged his
// social opportunity cost — the amount by which his presence lowers
// the best achievable total value of everyone else. The paper notes
// that given winner determination as a subroutine, Vickrey pricing is
// "a very simple computation": one winner-determination call per
// winner, on the auction with that advertiser removed.
//
// Values here are expected payments under pay-what-you-bid, i.e. the
// same objective winner determination maximizes; a bidder's VCG
// charge replaces that face value as what he actually pays.

// VCGPayments computes the Vickrey payment of every advertiser for
// the allocation res (which should be an optimal allocation produced
// by Determine). Losers pay zero... and winners pay
//
//	p_i = OPT(without i) − (OPT − v_i)
//
// where v_i is advertiser i's expected payment in the optimal
// allocation (net of his unassigned baseline, which he obtains no
// matter what). The method used for the counterfactual solves is
// given by method.
func (a *Auction) VCGPayments(res *Result, method Method) ([]float64, error) {
	n := len(a.Advertisers)
	payments := make([]float64, n)
	if n == 0 {
		return payments, nil
	}
	// VCG charges each winner his externality on the *others*; that
	// accounting assumes w[i][j] is advertiser i's own value for slot
	// j. Bids on other advertisers' placements break the attribution,
	// so they are rejected here even though Determine accepts them.
	for i := range a.Advertisers {
		for _, bid := range a.Advertisers[i].Bids {
			if d := formula.Analyze(bid.F); len(d.Others) > 0 {
				return nil, fmt.Errorf(
					"core: VCG pricing is undefined for bids on other advertisers' placements (advertiser %s)",
					a.Advertisers[i].ID)
			}
		}
	}
	w, _, err := a.adjustedMatrix()
	if err != nil {
		return nil, err
	}
	// Welfare here is the matching value over adjusted weights: the
	// baseline terms cancel in the VCG formula for everyone (each
	// advertiser's baseline is obtained in every allocation).
	optOthers := func(skip int) (float64, error) {
		sub := &Auction{
			Slots:       a.Slots,
			Advertisers: make([]Advertiser, 0, n-1),
			Probs:       nil,
		}
		// Build a reduced auction without advertiser skip.
		click := make([][]float64, 0, n-1)
		purchase := make([][]float64, 0, n-1)
		for i := 0; i < n; i++ {
			if i == skip {
				continue
			}
			sub.Advertisers = append(sub.Advertisers, a.Advertisers[i])
			click = append(click, a.Probs.Click[i])
			purchase = append(purchase, a.Probs.Purchase[i])
		}
		sub.Probs = &probmodel.Model{Click: click, Purchase: purchase}
		r, err := sub.Determine(method)
		if err != nil {
			return 0, err
		}
		// Convert back to adjusted welfare by removing the baseline.
		_, base, err := sub.adjustedMatrix()
		if err != nil {
			return 0, err
		}
		return r.ExpectedRevenue - base, nil
	}

	// Total adjusted welfare of the given allocation.
	var total float64
	for j, i := range res.AdvOf {
		if i >= 0 {
			total += w[i][j]
		}
	}
	for i := 0; i < n; i++ {
		j := res.SlotOf[i]
		if j < 0 {
			continue // losers pay nothing under VCG
		}
		withoutI, err := optOthers(i)
		if err != nil {
			return nil, err
		}
		othersNow := total - w[i][j]
		p := withoutI - othersNow
		if p < 0 {
			p = 0 // numerical guard; VCG payments are non-negative at optimum
		}
		payments[i] = p
	}
	return payments, nil
}

// VCGPayments computes Vickrey payments for a heavyweight allocation
// res (an optimal allocation produced by Determine). Winner i pays
// the drop his presence causes in everyone else's realized value,
//
//	p_i = OPT(without i) − (V(S*) − v_i(S*))
//
// where V(S*) is the total expected payment of allocation res over
// all advertisers — placed or not, conditional on res's heavyweight
// pattern — v_i(S*) its i-th term, and OPT(without i) re-solves the
// full 2^k enumeration on the auction with advertiser i removed
// (slots and the pattern-factor table are unchanged; only the row is
// deleted, so a heavyweight's removal frees its pattern constraints
// exactly as the formula requires). Losers pay zero. Unlike the flat
// Auction.VCGPayments, bids may reference the heavyweight pattern:
// Heavy_j is a class-level predicate, so attributing each bid to its
// own bidder remains sound.
//
// One counterfactual determination runs per winner; batch callers
// should hold a HeavyDeterminer and use its VCGPaymentsInto, which
// reuses the enumeration scratch across the n+1 solves instead of
// re-running cold auctions.
func (h *HeavyAuction) VCGPayments(res *Result) ([]float64, error) {
	payments := make([]float64, len(h.Advertisers))
	if err := NewHeavyDeterminer().VCGPaymentsInto(h, res, payments); err != nil {
		return nil, err
	}
	return payments, nil
}

// heavyPattern reads the heavyweight pattern off an allocation.
func heavyPattern(advs []Advertiser, advOf []int) uint64 {
	var pattern uint64
	for j, i := range advOf {
		if i >= 0 && advs[i].Heavy {
			pattern |= 1 << uint(j)
		}
	}
	return pattern
}

// VCGPaymentsInto computes heavyweight Vickrey payments into the
// caller-owned payments slice (length = number of advertisers),
// running every counterfactual winner determination in the
// determiner's cached scratch: the sub-auction's advertiser,
// probability-row, and class slices are reused across winners and
// across calls, and a nested determiner keeps the 2^k enumeration
// buffers warm. Results are bit-identical to HeavyAuction.VCGPayments.
func (d *HeavyDeterminer) VCGPaymentsInto(h *HeavyAuction, res *Result, payments []float64) error {
	n := len(h.Advertisers)
	if len(payments) != n {
		return fmt.Errorf("core: payments slice covers %d advertisers, auction has %d", len(payments), n)
	}
	for i := range payments {
		payments[i] = 0
	}
	if n == 0 {
		return nil
	}

	// Every advertiser's realized value under res, conditional on the
	// allocation's own heavyweight pattern.
	pattern := heavyPattern(h.Advertisers, res.AdvOf)
	baseOutcome := formula.Outcome{HeavySlots: pattern}
	d.vals = growF(d.vals, n)
	var total float64
	for i := range h.Advertisers {
		if j := res.SlotOf[i]; j >= 0 {
			d.vals[i] = h.expectedPaymentPattern(i, j, pattern)
		} else {
			d.vals[i] = h.Advertisers[i].Bids.Payment(baseOutcome)
		}
		total += d.vals[i]
	}

	for i := 0; i < n; i++ {
		if res.SlotOf[i] < 0 {
			continue // losers pay nothing under VCG
		}
		withoutI, err := d.solveWithout(h, i)
		if err != nil {
			return err
		}
		p := withoutI - (total - d.vals[i])
		if p < 0 {
			p = 0 // numerical guard; VCG payments are non-negative at optimum
		}
		payments[i] = p
	}
	return nil
}

// solveWithout determines the optimal expected revenue of h with
// advertiser skip removed, rebuilding the sub-auction in reused
// buffers and solving it with a nested determiner.
func (d *HeavyDeterminer) solveWithout(h *HeavyAuction, skip int) (float64, error) {
	n := len(h.Advertisers)
	d.subAdvs = d.subAdvs[:0]
	d.subClick = d.subClick[:0]
	d.subPurchase = d.subPurchase[:0]
	d.subIsHeavy = d.subIsHeavy[:0]
	for i := 0; i < n; i++ {
		if i == skip {
			continue
		}
		d.subAdvs = append(d.subAdvs, h.Advertisers[i])
		d.subClick = append(d.subClick, h.Model.Base.Click[i])
		d.subPurchase = append(d.subPurchase, h.Model.Base.Purchase[i])
		if h.Model.IsHeavy != nil {
			d.subIsHeavy = append(d.subIsHeavy, h.Model.IsHeavy[i])
		}
	}
	isHeavy := d.subIsHeavy
	if h.Model.IsHeavy == nil {
		isHeavy = nil
	}
	d.subBase = probmodel.Model{Click: d.subClick, Purchase: d.subPurchase}
	d.subModel = probmodel.HeavyModel{Base: &d.subBase, IsHeavy: isHeavy, Factor: h.Model.Factor}
	d.subAuction = HeavyAuction{Slots: h.Slots, Advertisers: d.subAdvs, Model: &d.subModel}
	if d.sub == nil {
		// The nested determiner inherits the parent's parallelism:
		// each counterfactual is a full 2^k enumeration, so VCG
		// pricing benefits from the pool exactly as the primary solve
		// does. Release cascades to it.
		d.sub = NewHeavyDeterminerParallel(d.parallelism)
	}
	// The sub-auction struct is reused, so its pointer-keyed validation
	// cache stays warm across winners and across calls: structural
	// validation runs once per shape, not once per counterfactual.
	if err := d.sub.DetermineInto(&d.subAuction, &d.subRes); err != nil {
		return 0, err
	}
	return d.subRes.ExpectedRevenue, nil
}
