package core

import (
	"fmt"

	"repro/internal/formula"
	"repro/internal/probmodel"
)

// VCG pricing (Vickrey–Clarke–Groves): each winner is charged his
// social opportunity cost — the amount by which his presence lowers
// the best achievable total value of everyone else. The paper notes
// that given winner determination as a subroutine, Vickrey pricing is
// "a very simple computation": one winner-determination call per
// winner, on the auction with that advertiser removed.
//
// Values here are expected payments under pay-what-you-bid, i.e. the
// same objective winner determination maximizes; a bidder's VCG
// charge replaces that face value as what he actually pays.

// VCGPayments computes the Vickrey payment of every advertiser for
// the allocation res (which should be an optimal allocation produced
// by Determine). Losers pay zero... and winners pay
//
//	p_i = OPT(without i) − (OPT − v_i)
//
// where v_i is advertiser i's expected payment in the optimal
// allocation (net of his unassigned baseline, which he obtains no
// matter what). The method used for the counterfactual solves is
// given by method.
func (a *Auction) VCGPayments(res *Result, method Method) ([]float64, error) {
	n := len(a.Advertisers)
	payments := make([]float64, n)
	if n == 0 {
		return payments, nil
	}
	// VCG charges each winner his externality on the *others*; that
	// accounting assumes w[i][j] is advertiser i's own value for slot
	// j. Bids on other advertisers' placements break the attribution,
	// so they are rejected here even though Determine accepts them.
	for i := range a.Advertisers {
		for _, bid := range a.Advertisers[i].Bids {
			if d := formula.Analyze(bid.F); len(d.Others) > 0 {
				return nil, fmt.Errorf(
					"core: VCG pricing is undefined for bids on other advertisers' placements (advertiser %s)",
					a.Advertisers[i].ID)
			}
		}
	}
	w, _, err := a.adjustedMatrix()
	if err != nil {
		return nil, err
	}
	// Welfare here is the matching value over adjusted weights: the
	// baseline terms cancel in the VCG formula for everyone (each
	// advertiser's baseline is obtained in every allocation).
	optOthers := func(skip int) (float64, error) {
		sub := &Auction{
			Slots:       a.Slots,
			Advertisers: make([]Advertiser, 0, n-1),
			Probs:       nil,
		}
		// Build a reduced auction without advertiser skip.
		click := make([][]float64, 0, n-1)
		purchase := make([][]float64, 0, n-1)
		for i := 0; i < n; i++ {
			if i == skip {
				continue
			}
			sub.Advertisers = append(sub.Advertisers, a.Advertisers[i])
			click = append(click, a.Probs.Click[i])
			purchase = append(purchase, a.Probs.Purchase[i])
		}
		sub.Probs = &probmodel.Model{Click: click, Purchase: purchase}
		r, err := sub.Determine(method)
		if err != nil {
			return 0, err
		}
		// Convert back to adjusted welfare by removing the baseline.
		_, base, err := sub.adjustedMatrix()
		if err != nil {
			return 0, err
		}
		return r.ExpectedRevenue - base, nil
	}

	// Total adjusted welfare of the given allocation.
	var total float64
	for j, i := range res.AdvOf {
		if i >= 0 {
			total += w[i][j]
		}
	}
	for i := 0; i < n; i++ {
		j := res.SlotOf[i]
		if j < 0 {
			continue // losers pay nothing under VCG
		}
		withoutI, err := optOthers(i)
		if err != nil {
			return nil, err
		}
		othersNow := total - w[i][j]
		p := withoutI - othersNow
		if p < 0 {
			p = 0 // numerical guard; VCG payments are non-negative at optimum
		}
		payments[i] = p
	}
	return payments, nil
}
