package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestVCGPaymentsAcrossMethods exercises Auction.VCGPayments with
// every winner-determination method usable for the counterfactual
// solves — LP, H, RH — on randomized instances, and pins the VCG
// axioms per method: payments are non-negative, losers pay exactly
// zero, and no winner is charged above his adjusted value
// (individual rationality). All methods price the same optimal
// allocation, so their payment vectors must also agree with each
// other up to solver arithmetic.
func TestVCGPaymentsAcrossMethods(t *testing.T) {
	methods := []Method{MethodLP, MethodHungarian, MethodReduced}
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		k := 1 + rng.Intn(3)
		a := randAuction(rng, n, k)
		res, err := a.Determine(MethodHungarian)
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := a.adjustedMatrix()
		if err != nil {
			t.Fatal(err)
		}
		pays := make([][]float64, len(methods))
		for mi, method := range methods {
			pay, err := a.VCGPayments(res, method)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, method, err)
			}
			pays[mi] = pay
			for i, p := range pay {
				if p < 0 {
					t.Fatalf("trial %d %v: negative VCG payment %g", trial, method, p)
				}
				j := res.SlotOf[i]
				if j < 0 {
					if p != 0 {
						t.Fatalf("trial %d %v: loser %d pays %g, want exactly 0", trial, method, i, p)
					}
					continue
				}
				if p > w[i][j]+tol {
					t.Fatalf("trial %d %v: payment %g exceeds value %g (not IR)", trial, method, p, w[i][j])
				}
			}
		}
		// Counterfactual optima are method-independent, so the payment
		// vectors agree up to LP/matching floating-point differences.
		for mi := 1; mi < len(methods); mi++ {
			for i := range pays[0] {
				if math.Abs(pays[mi][i]-pays[0][i]) > 1e-6 {
					t.Fatalf("trial %d: %v pays advertiser %d %g, %v pays %g",
						trial, methods[mi], i, pays[mi][i], methods[0], pays[0][i])
				}
			}
		}
	}
}

// TestHeavyVCGPaymentsProperties is the heavyweight (§III-F) leg of
// the VCG axioms on randomized instances: losers pay exactly zero,
// payments are non-negative, and every winner's charge stays at or
// below his realized value under the allocation's heavyweight pattern
// (individual rationality — the counterfactual optimum without the
// winner can never exceed the with-winner optimum by more than his
// own contribution).
func TestHeavyVCGPaymentsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		k := 1 + rng.Intn(3)
		h := randHeavyAuction(rng, n, k)
		res, err := h.Determine(false)
		if err != nil {
			t.Fatal(err)
		}
		pay, err := h.VCGPayments(res)
		if err != nil {
			t.Fatal(err)
		}
		pattern := heavyPattern(h.Advertisers, res.AdvOf)
		for i, p := range pay {
			if p < 0 {
				t.Fatalf("trial %d: negative heavyweight VCG payment %g", trial, p)
			}
			j := res.SlotOf[i]
			if j < 0 {
				if p != 0 {
					t.Fatalf("trial %d: loser %d pays %g, want exactly 0", trial, i, p)
				}
				continue
			}
			v := h.expectedPaymentPattern(i, j, pattern)
			if p > v+tol {
				t.Fatalf("trial %d: payment %g exceeds realized value %g (not IR)", trial, p, v)
			}
		}
	}
}
