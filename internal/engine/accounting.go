package engine

import "repro/internal/workload"

// roi is the provider-maintained return-on-investment statistic for
// one (advertiser, keyword) pair: total value gained over total spend,
// add-one smoothed so it is defined before any spending occurs (the
// paper leaves the zero-spend case unspecified; smoothing gives every
// keyword the identical neutral ROI of 1 at the start, which the
// MAX/MIN selections of the Figure 5 program then treat as ties, as
// its SQL semantics dictate).
func roi(gained, spent float64) float64 { return (gained + 1) / (spent + 1) }

// spendStatus compares the advertiser's realized spending rate with
// the target: −1 under, 0 on target, +1 over.
func spendStatus(spentTotal float64, t float64, target int) int {
	rate := spentTotal / t
	switch {
	case rate < float64(target):
		return -1
	case rate > float64(target):
		return 1
	default:
		return 0
	}
}

// Accounting is the provider-maintained advertiser state (Section
// II-B notes amounts spent, budgets, and per-keyword ROI are
// maintained by the search provider for every program).
type Accounting struct {
	SpentTotal []float64   // per advertiser
	SpentKw    [][]float64 // per advertiser, keyword
	GainedKw   [][]float64 // per advertiser, keyword
}

func newAccounting(n, keywords int) *Accounting {
	a := &Accounting{
		SpentTotal: make([]float64, n),
		SpentKw:    make([][]float64, n),
		GainedKw:   make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		a.SpentKw[i] = make([]float64, keywords)
		a.GainedKw[i] = make([]float64, keywords)
	}
	return a
}

// ROIOf returns the smoothed ROI of advertiser i on keyword q — the
// value the provider would surface in the program's Keywords table.
func (a *Accounting) ROIOf(i, q int) float64 {
	return roi(a.GainedKw[i][q], a.SpentKw[i][q])
}

// roiRange returns the max and min smoothed ROI over advertiser i's
// keywords.
func (a *Accounting) roiRange(i int) (maxR, minR float64) {
	maxR, minR = a.ROIOf(i, 0), a.ROIOf(i, 0)
	for q := 1; q < len(a.SpentKw[i]); q++ {
		r := a.ROIOf(i, q)
		if r > maxR {
			maxR = r
		}
		if r < minR {
			minR = r
		}
	}
	return maxR, minR
}

// modeConst, modeInc, modeDec name a bidder's current behavior for
// one keyword: what the Figure 5 program would do to that keyword's
// bid on a matching query.
const (
	modeConst = 0
	modeInc   = 1
	modeDec   = 2
)

// bidMode computes the behavior of bidder i for keyword q given the
// current bid: the direct transliteration of the Figure 5 guards.
func bidMode(inst *workload.Instance, acct *Accounting, i, q int, bid int, status int) int {
	switch status {
	case -1: // underspending: increment the max-ROI keyword if below max bid
		maxR, _ := acct.roiRange(i)
		if acct.ROIOf(i, q) == maxR && bid < inst.Value[i][q] {
			return modeInc
		}
	case 1: // overspending: decrement the min-ROI keyword if above zero
		_, minR := acct.roiRange(i)
		if acct.ROIOf(i, q) == minR && bid > 0 {
			return modeDec
		}
	}
	return modeConst
}
