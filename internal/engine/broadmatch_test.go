package engine

import (
	"math/rand"
	"testing"

	"repro/internal/broadmatch"
	"repro/internal/workload"
)

// TestRunWeightedNeutralIsRun pins the off switch at the market
// level: RunWeighted(q, 1, 1) on a reserve-free market is Run, byte
// for byte, across methods.
func TestRunWeightedNeutralIsRun(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(42)), 60, 10, 4)
	queries := inst.Queries(rand.New(rand.NewSource(7)), 400)
	for _, method := range []Method{MethodRH, MethodRHTALU} {
		a := NewMarket(inst, method, 11)
		b := NewMarket(inst, method, 11)
		for i, q := range queries {
			oa := a.Run(q)
			ob := b.RunWeighted(q, 1, 1)
			if !oa.Equal(ob) {
				t.Fatalf("method %v query %d: Run %+v != RunWeighted(1,1) %+v", method, i, oa, ob)
			}
		}
	}
}

// TestReserveRHMatchesTALU pins the methods' equivalence contract
// under reserve pricing and broad-match weights: the explicit RH gate
// and the TALU lazy reserve source must exclude the same advertisers
// and price identically, across plain and weighted auctions.
func TestReserveRHMatchesTALU(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(43)), 60, 10, 4)
	queries := inst.Queries(rand.New(rand.NewSource(8)), 600)
	wrng := rand.New(rand.NewSource(9))
	rels := make([]float64, len(queries))
	for i := range rels {
		// A mix of exact (1) and broad fractional relevances.
		if wrng.Intn(2) == 0 {
			rels[i] = 1
		} else {
			rels[i] = 0.25 + 0.75*wrng.Float64()
		}
	}
	for _, reserve := range []float64{0, 3, 8} {
		rh := NewMarketOpts(inst, MarketOpts{Method: MethodRH, ClickSeed: 21, Reserve: reserve})
		talu := NewMarketOpts(inst, MarketOpts{Method: MethodRHTALU, ClickSeed: 21, Reserve: reserve})
		for i, q := range queries {
			rel := rels[i]
			w := rel // squash exponent 1
			oa := rh.RunWeighted(q, rel, w)
			ob := talu.RunWeighted(q, rel, w)
			if !oa.Equal(ob) {
				t.Fatalf("reserve %v query %d (rel %v): RH %+v != TALU %+v", reserve, i, rel, oa, ob)
			}
		}
	}
}

// TestReserveFiltersAndFloors pins the reserve semantics directly: no
// winner's raw bid is below reserve/w, and every charged price is at
// least the reserve.
func TestReserveFiltersAndFloors(t *testing.T) {
	// A thin population (barely more bidders than slots) leaves some
	// slots without runner-up pressure, so the reserve floor binds.
	inst := workload.Generate(rand.New(rand.NewSource(44)), 10, 8, 3)
	const reserve = 6.0
	queries := inst.Queries(rand.New(rand.NewSource(10)), 500)
	wrng := rand.New(rand.NewSource(11))
	for _, method := range []Method{MethodRH, MethodRHTALU} {
		m := NewMarketOpts(inst, MarketOpts{Method: method, ClickSeed: 31, Reserve: reserve})
		filtered, floored := 0, 0
		for _, q := range queries {
			rel := 0.5 + 0.5*wrng.Float64()
			out := m.RunWeighted(q, rel, rel)
			cut := reserve / rel
			for j, i := range out.AdvOf {
				if i < 0 {
					continue
				}
				if bid := float64(m.Bid(i, q)); bid < cut {
					t.Fatalf("method %v: winner %d bid %v below cutoff %v", method, i, bid, cut)
				}
				if p := out.PricePerClick[j]; p < reserve {
					t.Fatalf("method %v: price %v below reserve %v", method, p, reserve)
				} else if p == reserve {
					floored++
				}
			}
			for i := 0; i < inst.N; i++ {
				if float64(m.Bid(i, q)) < cut {
					filtered++
				}
			}
		}
		if filtered == 0 {
			t.Fatalf("method %v: reserve %v never excluded anyone — test instance too easy", method, reserve)
		}
		if floored == 0 {
			t.Fatalf("method %v: reserve %v never floored a price", method, reserve)
		}
	}
}

// TestServeTextBroadNeutralMatchesExact pins the batch off switch one
// level up: with neutral knobs (threshold 1, squash 1, reserve 0) and
// exact-keyword queries, the broad ServeText serves identical
// auctions to the exact router — same revenue, clicks, and fill — and
// the accounting columns agree exactly.
func TestServeTextBroadNeutralMatchesExact(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(45)), 60, 10, 4)
	queries := inst.Queries(rand.New(rand.NewSource(12)), 800)
	texts := make([]string, len(queries))
	for i, q := range queries {
		texts[i] = workload.BigramKeywordNames(inst.Keywords)[q]
	}
	names := workload.BigramKeywordNames(inst.Keywords)
	for _, method := range []Method{MethodRH, MethodRHTALU} {
		exact := New(inst, Config{Shards: 3, Method: method, ClickSeed: 5, KeywordNames: names})
		broad := New(inst, Config{Shards: 3, Method: method, ClickSeed: 5, KeywordNames: names,
			Broadmatch: broadmatch.Config{Enabled: true, Threshold: 1, Squash: 1, Seed: 77}})
		sa := exact.ServeText(texts)
		sb := broad.ServeText(texts)
		if sa.Auctions != sb.Auctions || sa.Revenue != sb.Revenue ||
			sa.Clicks != sb.Clicks || sa.Filled != sb.Filled || sa.Unrouted != sb.Unrouted {
			t.Fatalf("method %v: exact %+v != broad-neutral %+v", method, sa, sb)
		}
		if sb.Overmatched != 0 {
			t.Fatalf("method %v: neutral broad match overmatched %d", method, sb.Overmatched)
		}
		for q := 0; q < inst.Keywords; q++ {
			am, bm := exact.KeywordMarket(q), broad.KeywordMarket(q)
			for i := 0; i < inst.N; i++ {
				if am.Accounting().SpentTotal[i] != bm.Accounting().SpentTotal[i] {
					t.Fatalf("method %v keyword %d: spend diverged for advertiser %d", method, q, i)
				}
			}
		}
		exact.Close()
		broad.Close()
	}
}
