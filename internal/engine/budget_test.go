package engine

import (
	"math/rand"
	"testing"

	"repro/internal/budget"
	"repro/internal/racetest"
	"repro/internal/workload"
)

// budgetTestInstance builds a small hand-written population for the
// adversarial budget tests: advertiser 0 dominates every keyword
// (value 50, high click probabilities, a target rate it never
// reaches, so its bids only climb) while the others provide positive
// runner-up prices. Deterministic by construction.
func budgetTestInstance(keywords int) *workload.Instance {
	const n, k = 3, 2
	inst := &workload.Instance{
		N:          n,
		Slots:      k,
		Keywords:   keywords,
		Value:      make([][]int, n),
		Target:     make([]int, n),
		InitialBid: make([][]int, n),
		ClickProb:  make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		inst.Value[i] = make([]int, keywords)
		inst.InitialBid[i] = make([]int, keywords)
		val := 10
		if i == 0 {
			val = 50
		}
		for q := 0; q < keywords; q++ {
			inst.Value[i][q] = val
			inst.InitialBid[i][q] = val / 2
		}
		inst.Target[i] = val // spend rate per auction never reaches this: always underspending
		inst.ClickProb[i] = []float64{0.9, 0.8}
	}
	return inst
}

// driveRoundRobin serves T auctions round-robin across the keywords
// on a single goroutine — the deterministic reference drive for
// budget-enabled markets.
func driveRoundRobin(e *Engine, T int) {
	queries := make([]int, T)
	for a := range queries {
		queries[a] = a % e.inst.Keywords
	}
	e.Serve(queries)
}

// TestBudgetUnlimitedByteIdentical: enabling the budget subsystem
// with every advertiser unlimited changes nothing — outcomes are
// byte-identical to a budgets-off engine across the RH, TALU, and
// heavyweight serving paths. This is the budgets-disabled equivalence
// contract from the other side: the gating plumbing itself is
// outcome-neutral until a cap actually binds.
func TestBudgetUnlimitedByteIdentical(t *testing.T) {
	for _, method := range []Method{MethodRH, MethodRHTALU, MethodHeavy} {
		var inst *workload.Instance
		if method == MethodHeavy {
			inst = workload.GenerateHeavy(rand.New(rand.NewSource(91)), 40, 4, 5, 0.25, 0.3)
		} else {
			inst = workload.Generate(rand.New(rand.NewSource(91)), 60, 6, 5)
		}
		queries := inst.Queries(rand.New(rand.NewSource(92)), 400)

		off := New(inst, Config{Shards: 2, Method: method, ClickSeed: 7})
		on := New(inst, Config{Shards: 2, Method: method, ClickSeed: 7,
			Budget: budget.Config{Policy: budget.PolicyHard, RefreshEvery: 3}})
		wantOuts, _ := off.ServeOutcomes(queries)
		gotOuts, _ := on.ServeOutcomes(queries)
		for a := range wantOuts {
			if !gotOuts[a].Equal(wantOuts[a]) {
				t.Fatalf("method=%v auction %d: unlimited-budget outcome %+v != budgets-off %+v",
					method, a, gotOuts[a], wantOuts[a])
			}
		}
		if led := on.Ledger(); led == nil {
			t.Fatalf("method=%v: budget-enabled engine has no ledger", method)
		} else {
			// The ledger still counted spend even though it never gated:
			// per advertiser, the lane-order sum equals the per-market
			// accounting summed the same way, bitwise.
			for i := 0; i < inst.N; i++ {
				var want float64
				for q := 0; q < inst.Keywords; q++ {
					want += on.KeywordMarket(q).Accounting().SpentTotal[i]
				}
				if got := led.ExactSpent(i); got != want {
					t.Fatalf("method=%v advertiser %d: ledger %v != accounting %v", method, i, got, want)
				}
			}
		}
	}
}

// TestBudgetRHMatchesTALU: under budget enforcement the explicit and
// TALU engines remain exactly equivalent — the explicit path gates by
// zeroing effective bids, the TALU path gates lazily inside the
// threshold algorithm, and both must produce identical outcomes (and
// hence identical ledgers) over the same trace. Hard and paced.
func TestBudgetRHMatchesTALU(t *testing.T) {
	for _, pol := range []budget.Policy{budget.PolicyHard, budget.PolicyPaced} {
		inst := workload.Generate(rand.New(rand.NewSource(93)), 50, 5, 6)
		workload.AttachBudgets(rand.New(rand.NewSource(94)), inst, 40)
		queries := inst.Queries(rand.New(rand.NewSource(95)), 1200)
		cfg := budget.Config{Policy: pol, RefreshEvery: 5, Horizon: 300, Seed: 11}

		rh := New(inst, Config{Shards: 1, Method: MethodRH, ClickSeed: 7, Budget: cfg})
		talu := New(inst, Config{Shards: 1, Method: MethodRHTALU, ClickSeed: 7, Budget: cfg})
		rhOuts, _ := rh.ServeOutcomes(queries)
		taluOuts, _ := talu.ServeOutcomes(queries)
		gated := false
		for a := range rhOuts {
			if !taluOuts[a].Equal(rhOuts[a]) {
				t.Fatalf("policy=%v auction %d: TALU %+v != RH %+v", pol, a, taluOuts[a], rhOuts[a])
			}
		}
		for i := 0; i < inst.N; i++ {
			if rh.Ledger().Exhausted(i) {
				gated = true
			}
			if rh.Ledger().ExactSpent(i) != talu.Ledger().ExactSpent(i) {
				t.Fatalf("policy=%v advertiser %d: RH spend %v != TALU spend %v",
					pol, i, rh.Ledger().ExactSpent(i), talu.Ledger().ExactSpent(i))
			}
		}
		if pol == budget.PolicyHard && !gated {
			t.Fatal("trace never exhausted a budget — the equivalence was not exercised")
		}
	}
}

// TestHardOverspendBound drives the documented eventual-consistency
// bound on an adversarial trace: advertiser 0 bids at the cap on
// every keyword, every keyword market admits it while the local spend
// estimate is below the budget, and the final exact spend must stay
// within budget + K·R·P (K lanes, refresh every R lane auctions,
// per-auction charge at most P = the advertiser's maximum value). A
// tight-refresh run must land within the correspondingly tight
// bound, and the loose-refresh run must actually overspend — the test
// bites on both sides.
func TestHardOverspendBound(t *testing.T) {
	const (
		keywords = 6
		B        = 30.0
		P        = 50.0 // max value = max bid = max per-click, one slot per auction
		T        = 3000
	)
	run := func(refresh int) float64 {
		inst := budgetTestInstance(keywords)
		inst.Budget = []float64{B, 0, 0}
		e := New(inst, Config{Shards: 1, ClickSeed: 3, Method: MethodRH,
			Budget: budget.Config{Policy: budget.PolicyHard, RefreshEvery: refresh}})
		driveRoundRobin(e, T)
		return e.Ledger().ExactSpent(0)
	}

	tight := run(1)
	loose := run(400)
	// R=1: a lane publishes at the top of every auction, so the
	// estimate can miss at most one auction's charge per lane plus the
	// admitting auction itself.
	if bound := B + (keywords+1)*P; tight > bound {
		t.Fatalf("refresh=1 spend %v exceeded staleness bound %v", tight, bound)
	}
	if bound := B + keywords*400*P; loose > bound {
		t.Fatalf("refresh=400 spend %v exceeded staleness bound %v", loose, bound)
	}
	if loose <= B {
		t.Fatalf("adversarial loose-refresh run never overspent (spend %v, budget %v) — the bound test is vacuous", loose, B)
	}
	if tight >= loose {
		t.Logf("note: tight-refresh spend %v >= loose %v (possible, but unexpected)", tight, loose)
	}
	t.Logf("budget=%v spend: refresh=1 %.2f, refresh=400 %.2f", B, tight, loose)
}

// TestBudgetHardStopsSpending: in a single-keyword market the
// estimate is exact, so a hard-policy advertiser's spend never
// exceeds its cap by more than one auction's charge.
func TestBudgetHardStopsSpending(t *testing.T) {
	inst := budgetTestInstance(1)
	inst.Budget = []float64{40, 0, 0}
	e := New(inst, Config{Shards: 1, ClickSeed: 5, Method: MethodRH,
		Budget: budget.Config{Policy: budget.PolicyHard, RefreshEvery: 1}})
	driveRoundRobin(e, 500)
	spent := e.Ledger().ExactSpent(0)
	if spent <= 0 {
		t.Fatal("dominant advertiser never spent")
	}
	if spent > 40+50 {
		t.Fatalf("single-lane spend %v exceeded cap+one-auction bound", spent)
	}
	if !e.Ledger().Exhausted(0) {
		t.Fatalf("advertiser 0 spent %v of 40 but is not marked exhausted", spent)
	}
	// Everyone else keeps serving: the market still fills slots.
	if e.KeywordMarket(0).Accounting().SpentTotal[1]+e.KeywordMarket(0).Accounting().SpentTotal[2] == 0 {
		t.Fatal("competitors never spent after the leader was gated")
	}
}

// TestBudgetPacedSmoothsSpend: over the same trace, a paced
// advertiser reaches its cap later than a hard-policy one (greedy
// spend-until-cap), and still never exceeds it in the single-lane
// exact setting.
func TestBudgetPacedSmoothsSpend(t *testing.T) {
	const B = 60.0
	firstExhausted := func(pol budget.Policy) (int, float64) {
		inst := budgetTestInstance(1)
		inst.Budget = []float64{B, 0, 0}
		e := New(inst, Config{Shards: 1, ClickSeed: 5, Method: MethodRH,
			Budget: budget.Config{Policy: pol, RefreshEvery: 1, Horizon: 2000, Seed: 21}})
		for a := 0; a < 2500; a++ {
			e.Serve([]int{0})
			if e.Ledger().Exhausted(0) {
				return a, e.Ledger().ExactSpent(0)
			}
		}
		return 2500, e.Ledger().ExactSpent(0)
	}
	hardAt, hardSpend := firstExhausted(budget.PolicyHard)
	pacedAt, pacedSpend := firstExhausted(budget.PolicyPaced)
	if pacedAt <= hardAt {
		t.Fatalf("paced exhausted at auction %d, not later than hard at %d", pacedAt, hardAt)
	}
	if hardSpend > B+50 || pacedSpend > B+50 {
		t.Fatalf("cap breached: hard %v, paced %v", hardSpend, pacedSpend)
	}
	t.Logf("exhaustion: hard at auction %d (%.1f), paced at %d (%.1f)", hardAt, hardSpend, pacedAt, pacedSpend)
}

// TestBudgetSteadyStateAllocs: the budget-enabled hot path — gate
// consults, charges, and periodic publishes — adds zero allocations
// per auction on both the explicit RH and the TALU serving paths,
// under both policies.
func TestBudgetSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	for _, method := range []Method{MethodRH, MethodRHTALU} {
		for _, pol := range []budget.Policy{budget.PolicyHard, budget.PolicyPaced} {
			inst := workload.Generate(rand.New(rand.NewSource(96)), 300, workload.DefaultSlots, workload.DefaultKeywords)
			workload.AttachBudgets(rand.New(rand.NewSource(97)), inst, 150)
			m := NewMarketBudget(inst, method, PricingGSP, 7,
				budget.NewLedger(inst.N, 1, inst.Budget, budget.Config{Policy: pol, RefreshEvery: 16, Horizon: 1000, Seed: 5}).Lane(0))
			queries := inst.Queries(rand.New(rand.NewSource(98)), 2000)
			for _, q := range queries {
				m.Run(q)
			}
			var qi int
			allocs := testing.AllocsPerRun(300, func() {
				m.Run(queries[qi%len(queries)])
				qi++
			})
			if allocs != 0 {
				t.Fatalf("method=%v policy=%v: budget-enabled steady state allocates %.2f objects/op, want 0",
					method, pol, allocs)
			}
		}
	}
}
