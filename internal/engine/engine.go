// Package engine is the concurrent auction-serving engine: the
// production-shaped layer the ROADMAP's "heavy traffic" north star
// asks for, built from the paper's own ingredients. It owns the full
// per-query pipeline — keyword routing (internal/kwmatch), bid
// evaluation (the explicit engine or the Section IV threshold
// algorithm + logical updates), winner determination (the reduced
// Hungarian algorithm of Section III-E running in a reusable
// matching.Workspace), generalized second pricing, user simulation,
// and accounting — behind Engine.Serve.
//
// # Sharding model
//
// Auctions for different keywords share no state in the paper's
// Section V workload beyond the advertisers' global spend totals, and
// a serving system that partitions traffic by keyword can therefore
// run keywords in parallel. The engine embraces that partition as its
// concurrency contract: every keyword owns an independent Market
// (bids, accounting, ROI statistics, and click randomness seeded by
// KeywordSeed), keywords are assigned round-robin to shards, and each
// shard is one worker goroutine consuming a bounded channel. Because
// a keyword lives on exactly one shard and each shard drains its
// queue in FIFO order, the auctions of any one keyword execute
// sequentially in arrival order no matter how many shards exist —
// which yields the engine's central guarantee:
//
// # Sequential equivalence
//
// For every keyword q, the outcome sequence the engine produces is
// identical — allocations, prices, clicks, revenue, and bid
// trajectories, bit for bit — to a sequential strategy.World over the
// same instance and method, seeded with KeywordSeed(cfg.ClickSeed, q),
// fed only q's queries. Shard count and queue depth are pure
// performance knobs; they cannot change any outcome. The -race
// equivalence test in this package pins exactly this contract.
//
// The price of the partition is that an advertiser's spend total is
// tracked per keyword market rather than summed across keywords (the
// cross-keyword coupling a single sequential World has). Section V's
// evaluation never exercises that coupling — each query involves one
// keyword — and the per-keyword ROI statistics the Figure 5 strategy
// steers by are per-keyword already. Daily budgets, the one
// cross-keyword constraint the paper's language makes first-class,
// are recovered without re-coupling the shards by the internal/budget
// subsystem: Config.Budget builds an eventually-consistent spend
// ledger whose lanes the markets charge and consult (wait-free reads,
// bounded overspend; see that package's doc).
//
// Memory: each market carries full-width per-advertiser state (the
// Figure 5 strategy's roiRange scans every keyword's ROI, so a market
// equivalent to a sequential World cannot drop the other columns),
// making the engine O(n·keywords²) overall. That is comfortable at
// the Section V catalog size (10 keywords) the engine currently
// targets; keyword-scoped markets for large catalogs are a ROADMAP
// item and imply a (documented) departure from World equivalence.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broadmatch"
	"repro/internal/budget"
	"repro/internal/journal"
	"repro/internal/kwmatch"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Config tunes an Engine. The zero value serves with MethodRH on
// GOMAXPROCS shards.
type Config struct {
	// Shards is the number of worker goroutines (and keyword
	// partitions). 0 means min(GOMAXPROCS, keywords). More shards than
	// keywords is never useful; the constructor clamps.
	Shards int
	// QueueDepth is the per-shard bounded-channel capacity; the feeder
	// blocks when a shard falls this far behind (backpressure rather
	// than unbounded buffering). 0 means 256.
	QueueDepth int
	// Method selects the winner-determination pipeline (default
	// MethodRH, the paper's scalable choice).
	Method Method
	// Pricing selects the payment rule (default PricingGSP; PricingVCG
	// charges Vickrey opportunity costs via per-winner counterfactual
	// solves in each market's reused workspace).
	Pricing Pricing
	// ClickSeed is the base seed for simulated user clicks; keyword q's
	// market draws from KeywordSeed(ClickSeed, q).
	ClickSeed int64
	// HeavyParallelism is the per-market worker count of the
	// heavyweight pattern enumeration (MethodHeavy only): 0 means
	// GOMAXPROCS, 1 fully sequential, and any setting is capped per
	// auction by the 2^k pattern count. Like Shards it is a pure
	// performance knob — outcomes are byte-identical at every setting,
	// which the parallel-heavy equivalence tests pin. Each keyword
	// market owns its pool (parallelism−1 goroutines, parked between
	// auctions), so total heavyweight workers scale with
	// keywords × HeavyParallelism.
	HeavyParallelism int
	// KeywordNames optionally names the instance's keywords for
	// text-query routing (ServeText); defaults to "kw0", "kw1", …
	KeywordNames []string
	// Broadmatch configures the probabilistic broad-match query
	// router (internal/broadmatch): when Enabled, ServeText and the
	// streaming layer's SubmitText fan each text query out to every
	// catalog keyword scoring at or above Broadmatch.Threshold under
	// kwmatch subset scoring, admit candidates by deterministic
	// seeded per-(query, keyword) draws, serve the highest-relevance
	// admitted market (ties to the lowest keyword id) with the
	// squashed pricing weight relevance^Squash, and count the losing
	// candidates as Overmatched. The zero value (Enabled false) keeps
	// exact routing, byte for byte.
	Broadmatch broadmatch.Config
	// Reserve is the per-click reserve price, applied in every
	// method and pricing rule: advertisers whose (squash-weighted)
	// bid falls below it are excluded from winner determination, and
	// every charged click pays at least it. 0 disables reserve
	// pricing byte-identically.
	Reserve float64
	// Budget configures cross-keyword budget enforcement
	// (internal/budget). The zero value (PolicyOff) disables the
	// subsystem entirely: no ledger is built and outcomes are
	// byte-identical to an engine without budget support. With a
	// policy set, the engine builds one budget.Ledger over the
	// instance's Budget column, hands each keyword market its lane,
	// and publishes lane deltas on Budget.RefreshEvery plus at batch
	// boundaries (the streaming layer adds time-based flush fences).
	Budget budget.Config
	// Journal, when non-nil, makes budget spend durable: the ledger is
	// attached to it at construction (requires a Budget policy), every
	// lane's charges are journaled on the publish triggers, churn
	// rebuilds and budget resets begin fresh journal epochs, and
	// Engine.Close flushes and closes it (the engine takes ownership).
	// Journal write errors are sticky and surfaced by JournalErr and
	// Close — a full disk degrades durability, never serving.
	Journal *journal.Writer
	// Restore, when non-nil, seeds the budget ledger from a recovered
	// journal state (journal.Recover) instead of starting from zero:
	// every advertiser resumes with exactly the spend the journal
	// replay reconstructed. Its dimensions must match the instance
	// (N advertisers, Keywords lanes).
	Restore *journal.LedgerState
	// TraceSample enables the per-auction trace ring (obs.TraceRing):
	// a deterministic 1 in TraceSample of auctions stamps its pipeline
	// phases (solve, price, charge — time.Now only on sampled
	// auctions) into a fixed 4096-event ring, dumpable as JSON from
	// the telemetry endpoint's /trace and auctionsim -trace-sample.
	// 0 — the default — disables tracing entirely: no ring, no
	// per-auction sampling branch cost beyond one nil check.
	TraceSample int
}

// KeywordSeed derives the click-RNG seed of keyword q's market from
// the engine-wide base seed. The mixing constant keeps neighboring
// keywords' streams far apart; the exact function is part of the
// sequential-equivalence contract (reference Worlds must use it too).
func KeywordSeed(base int64, q int) int64 {
	return base ^ int64(q+1)*-0x61c8864680b583eb // 2^64 / golden ratio
}

// Stats aggregates one Serve call.
type Stats struct {
	// Auctions is the number of auctions run.
	Auctions int
	// Revenue is the total amount charged across all auctions.
	Revenue float64
	// Clicks counts clicked impressions; Filled and TotalSlots give the
	// fill rate.
	Clicks     int
	Filled     int
	TotalSlots int
	// Unrouted counts ServeText queries that matched no keyword (always
	// 0 for Serve).
	Unrouted int
	// Overmatched counts broad-match candidates that matched a query
	// but lost the impression to a higher-relevance market (always 0
	// for Serve and for exact routing).
	Overmatched int
	// Elapsed is the wall-clock span of the Serve call; Throughput is
	// Auctions/Elapsed in queries per second.
	Elapsed    time.Duration
	Throughput float64
	// P50, P95, P99, Max summarize per-auction service latency
	// (dequeue to outcome).
	P50, P95, P99, Max time.Duration
}

// Engine is the concurrent sharded serving engine. Construct with New;
// Serve may be called repeatedly (markets persist and keep evolving,
// exactly like a long-running World), but not concurrently — the
// engine serializes whole batches, parallelism lives inside a batch.
// The streaming layer (internal/stream) drives the same markets
// through persistent workers instead: one goroutine per shard calling
// ServeOne, with RebuildShard applying live advertiser churn at
// auction boundaries.
type Engine struct {
	inst    *workload.Instance
	cfg     Config
	markets []*Market // one per keyword
	shardOf []int     // keyword -> shard
	kwIndex *kwmatch.Index
	router  *broadmatch.Router // nil = exact routing

	// ledger holds the current budget ledger (nil pointer value when
	// Budget.Policy == PolicyOff). It is an atomic pointer so the
	// telemetry gauges can read it at render time concurrently with
	// churn/reset swaps.
	ledger atomic.Pointer[budget.Ledger]

	// met is the engine's telemetry (never nil); tracer the optional
	// per-auction trace sampler (nil unless Config.TraceSample > 0).
	met    *Metrics
	tracer *obs.Tracer

	mu        sync.Mutex // serializes Serve calls
	closeOnce sync.Once

	// Persistent batch-serve scratch: the per-shard feed channels, the
	// per-shard totals, and the latency sample buffer are allocated once
	// (lazily, at the first serve) and reused by every subsequent batch,
	// so a long-running server's steady per-batch cost is goroutine
	// spawns only, not O(shards + len(queries)) fresh buffers.
	chans  []chan int
	totals []Totals
	lat    []int64
}

// New builds an engine over inst. Every keyword gets an independent
// market seeded with KeywordSeed(cfg.ClickSeed, q).
func New(inst *workload.Instance, cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards > inst.Keywords {
		cfg.Shards = inst.Keywords
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	e := &Engine{
		inst:    inst,
		cfg:     cfg,
		markets: make([]*Market, inst.Keywords),
		shardOf: make([]int, inst.Keywords),
		kwIndex: kwmatch.New(),
	}
	if cfg.Reserve < 0 {
		panic(fmt.Sprintf("engine: negative Reserve %v", cfg.Reserve))
	}
	if cfg.Journal != nil && cfg.Budget.Policy == budget.PolicyOff {
		panic("engine: Config.Journal requires a budget policy (there is no other durable state)")
	}
	if cfg.Restore != nil {
		if cfg.Budget.Policy == budget.PolicyOff {
			panic("engine: Config.Restore requires a budget policy")
		}
		if cfg.Restore.N != inst.N || cfg.Restore.Lanes != inst.Keywords {
			panic(fmt.Sprintf("engine: recovered ledger state is %d advertisers x %d lanes, instance is %d x %d",
				cfg.Restore.N, cfg.Restore.Lanes, inst.N, inst.Keywords))
		}
		led := budget.NewLedgerState(cfg.Restore, inst.Budget, cfg.Budget)
		if cfg.Journal != nil {
			if err := led.AttachJournal(cfg.Journal); err != nil {
				panic(fmt.Sprintf("engine: attach journal: %v", err))
			}
		}
		e.ledger.Store(led)
	} else {
		e.ledger.Store(e.newLedger(inst, true))
	}
	// The batch-serve scratch is allocated here rather than lazily so
	// the queue-depth gauge below can read the channel slice without
	// racing a first Serve call.
	e.chans = make([]chan int, cfg.Shards)
	for s := range e.chans {
		e.chans[s] = make(chan int, cfg.QueueDepth)
	}
	e.totals = make([]Totals, cfg.Shards)
	if cfg.TraceSample > 0 {
		e.tracer = obs.NewTracer(obs.NewTraceRing(4096), cfg.TraceSample)
	}
	e.met = newMetrics(e)
	names := make([]string, inst.Keywords)
	for q := 0; q < inst.Keywords; q++ {
		e.shardOf[q] = q % cfg.Shards
		e.markets[q] = NewMarketOpts(inst, e.marketOpts(q, e.Ledger()))
		name := fmt.Sprintf("kw%d", q)
		if q < len(cfg.KeywordNames) && cfg.KeywordNames[q] != "" {
			name = cfg.KeywordNames[q]
		}
		names[q] = name
		// The kwmatch inverted index is advertiser-oriented; the engine
		// indexes its keyword catalog by using the keyword id as the
		// "advertiser": Query then prunes the catalog to the keywords
		// sharing tokens with the search text, Section IV's
		// keyword-matching step.
		e.kwIndex.Register(q, name)
	}
	if cfg.Broadmatch.Enabled {
		e.router = broadmatch.New(names, cfg.Broadmatch)
	}
	return e
}

// NewLedger builds a cross-keyword budget ledger for inst under the
// engine's budget configuration, or nil when budgets are off. The
// streaming layer calls it during churn: a fresh population gets a
// fresh ledger, exactly as it gets fresh markets and accounting (the
// fresh-engine churn contract extends to budgets). With a journal
// configured, the new ledger begins a fresh journal epoch
// (journal.ReasonChurn): recovery reconstructs the post-churn ledger
// only, and the retired ledger's final flushes are dropped as stale.
func (e *Engine) NewLedger(inst *workload.Instance) *budget.Ledger {
	return e.newLedger(inst, false)
}

// NewResetLedger builds a fresh ledger over the engine's current
// instance for a budget reset ("next day": same population, zero
// spend, exhausted advertisers re-admitted), journaled as a
// journal.ReasonReset epoch. Nil when budgets are off.
func (e *Engine) NewResetLedger() *budget.Ledger {
	if e.cfg.Budget.Policy == budget.PolicyOff {
		return nil
	}
	led := budget.NewLedger(e.inst.N, e.inst.Keywords, e.inst.Budget, e.cfg.Budget)
	if e.cfg.Journal != nil {
		// Errors are sticky in the writer (JournalErr/Close surface
		// them); the swap itself must not abort halfway.
		_ = led.AttachJournalNextEpoch(e.cfg.Journal, journal.ReasonReset)
	}
	return led
}

func (e *Engine) newLedger(inst *workload.Instance, boot bool) *budget.Ledger {
	if e.cfg.Budget.Policy == budget.PolicyOff {
		return nil
	}
	led := budget.NewLedger(inst.N, inst.Keywords, inst.Budget, e.cfg.Budget)
	if e.cfg.Journal != nil {
		if boot {
			if err := led.AttachJournal(e.cfg.Journal); err != nil {
				panic(fmt.Sprintf("engine: attach journal: %v", err))
			}
		} else {
			_ = led.AttachJournalNextEpoch(e.cfg.Journal, journal.ReasonChurn)
		}
	}
	return led
}

// laneOf returns keyword q's lane of led, or nil for a nil ledger.
func (e *Engine) laneOf(led *budget.Ledger, q int) *budget.Lane {
	if led == nil {
		return nil
	}
	return led.Lane(q)
}

// Ledger returns the engine's current budget ledger (nil when budgets
// are off). After a churn it is the post-churn ledger; markets on
// shards that have not yet applied their fence still charge the
// previous one. Safe to call concurrently with churn swaps (the
// telemetry gauges read it at render time).
func (e *Engine) Ledger() *budget.Ledger { return e.ledger.Load() }

// FlushShard publishes the unpublished budget spend of every market
// owned by shard s. Must run on the goroutine that currently owns the
// shard (the streaming layer's in-band flush fences and drain); no-op
// when budgets are off.
func (e *Engine) FlushShard(s int) {
	for q := range e.markets {
		if e.shardOf[q] == s {
			e.markets[q].FlushBudget()
		}
	}
}

// Shards returns the number of worker shards the engine runs.
func (e *Engine) Shards() int { return e.cfg.Shards }

// QueueDepth returns the per-shard bounded-queue capacity after the
// constructor's defaulting — the streaming layer sizes its own
// channels from it.
func (e *Engine) QueueDepth() int { return e.cfg.QueueDepth }

// ShardOf returns the shard that owns keyword q; all of q's auctions
// run on that shard's goroutine, batch or streaming alike.
func (e *Engine) ShardOf(q int) int { return e.shardOf[q] }

// KeywordMarket exposes keyword q's market for inspection (bids,
// accounting) — test and diagnostic use; do not call while Serve runs.
func (e *Engine) KeywordMarket(q int) *Market { return e.markets[q] }

// ProgramEvaluations sums the per-market strategy-evaluation counters.
func (e *Engine) ProgramEvaluations() int64 {
	var total int64
	for _, m := range e.markets {
		total += m.ProgramEvaluations()
	}
	return total
}

// RouteText resolves a free-text search to the best-matching keyword
// (highest token-overlap relevance; ties to the lowest keyword id),
// reporting false when no catalog keyword shares a token with it.
func (e *Engine) RouteText(query string) (int, bool) {
	ms := e.kwIndex.Query(query)
	if len(ms) == 0 {
		return 0, false
	}
	return ms[0].Advertiser, true
}

// Broadmatch returns the engine's broad-match router, or nil when
// Config.Broadmatch is disabled (exact routing). The streaming layer
// uses nil-ness to pick its SubmitText path.
func (e *Engine) Broadmatch() *broadmatch.Router { return e.router }

// RouteBroad resolves a free-text search through the broad-match
// router: the winning candidate (highest admitted relevance, ties to
// the lowest keyword id), the total admitted-candidate count, and
// whether anything matched. Panics when broad match is disabled.
func (e *Engine) RouteBroad(query string) (broadmatch.Candidate, int, bool) {
	return e.router.RouteBest(query)
}

// Serve runs one auction per query (queries are keyword indices, as
// produced by workload.Instance.Queries), fanning them out to the
// keyword shards, and blocks until all have completed. Outcomes are
// discarded after aggregation; use ServeOutcomes to retain them.
func (e *Engine) Serve(queries []int) *Stats {
	return e.serve(queries, nil, nil, nil)
}

// ServeOutcomes is Serve, additionally returning every auction's
// outcome in query order (index i of the result is queries[i]'s
// outcome).
func (e *Engine) ServeOutcomes(queries []int) ([]*Outcome, *Stats) {
	results := make([]*Outcome, len(queries))
	st := e.serve(queries, nil, nil, results)
	return results, st
}

// ServeText routes free-text searches and serves the matched ones;
// unmatched queries are counted in Stats.Unrouted (no auction runs —
// no keyword means no interested advertisers). With broad match
// enabled each query fans out to its admitted candidate set, the
// highest-relevance candidate is served with its relevance and
// squashed weight, and the losers are counted in Stats.Overmatched.
func (e *Engine) ServeText(queries []string) *Stats {
	routed := make([]int, 0, len(queries))
	unrouted := 0
	if e.router != nil {
		overmatched := 0
		rels := make([]float64, 0, len(queries))
		ws := make([]float64, 0, len(queries))
		for _, s := range queries {
			best, matched, ok := e.router.RouteBest(s)
			if !ok {
				unrouted++
				continue
			}
			overmatched += matched - 1
			routed = append(routed, best.Keyword)
			rels = append(rels, best.Relevance)
			ws = append(ws, best.Weight)
		}
		st := e.serve(routed, rels, ws, nil)
		st.Unrouted = unrouted
		st.Overmatched = overmatched
		return st
	}
	for _, s := range queries {
		if q, ok := e.RouteText(s); ok {
			routed = append(routed, q)
		} else {
			unrouted++
		}
	}
	st := e.serve(routed, nil, nil, nil)
	st.Unrouted = unrouted
	return st
}

// Totals is one serving worker's private aggregate: the batch path
// merges per-shard Totals after the batch completes, and the
// streaming layer accumulates into a per-shard Totals under its stats
// lock — both through the same Add, so the two paths cannot drift in
// what they count.
type Totals struct {
	Auctions, Clicks, Filled, Slots int
	Revenue                         float64
}

// Add accumulates one auction outcome.
func (t *Totals) Add(out *Outcome) {
	t.Auctions++
	t.Revenue += out.Revenue
	for j := range out.AdvOf {
		t.Slots++
		if out.AdvOf[j] >= 0 {
			t.Filled++
		}
		if out.Clicked[j] {
			t.Clicks++
		}
	}
}

// ServeOne runs one auction for keyword q on the calling goroutine and
// accumulates it into tot — the single per-query serving step shared
// by the batch workers and the streaming layer's persistent workers.
// The returned outcome is owned by q's market and valid only until its
// next auction. The caller must be the sole concurrent runner of q's
// shard; allocation-free in steady state under MethodRH/MethodRHTALU.
func (e *Engine) ServeOne(q int, tot *Totals) *Outcome {
	out := e.markets[q].Run(q)
	tot.Add(out)
	return out
}

// ServeOneWeighted is ServeOne for a broad-matched query: rel and w
// are the winning candidate's relevance and squashed pricing weight
// (see Market.RunWeighted). ServeOneWeighted(q, 1, 1, tot) is
// ServeOne(q, tot), byte for byte.
func (e *Engine) ServeOneWeighted(q int, rel, w float64, tot *Totals) *Outcome {
	out := e.markets[q].RunWeighted(q, rel, w)
	tot.Add(out)
	e.met.observe(e.shardOf[q], out)
	return out
}

// RebuildShard replaces every market owned by shard s with a freshly
// constructed market over inst, seeded with the engine's own
// KeywordSeed — the streaming layer's churn fence. Because the caller
// invokes it between auctions on the goroutine that owns shard s, no
// in-flight auction is ever torn, and because a fresh market over inst
// is exactly what New would build, the shard's subsequent outcomes are
// byte-identical to a freshly constructed engine over inst. The
// keyword catalog must be unchanged (only the advertiser population
// churns). led is the post-churn budget ledger the rebuilt markets
// charge (nil when budgets are off); it travels with the fence rather
// than being read from the engine so that a slow shard applying an
// old fence never observes a newer churn's ledger.
func (e *Engine) RebuildShard(s int, inst *workload.Instance, led *budget.Ledger) {
	if inst.Keywords != len(e.markets) {
		panic(fmt.Sprintf("engine: RebuildShard keyword catalog changed (%d != %d)", inst.Keywords, len(e.markets)))
	}
	for q := range e.markets {
		if e.shardOf[q] == s {
			old := e.markets[q]
			e.markets[q] = NewMarketOpts(inst, e.marketOpts(q, led))
			// The replaced market is between auctions on this very
			// goroutine, so its heavyweight worker pool (if any) is
			// idle and safe to stop.
			old.Close()
		}
	}
}

// marketOpts assembles keyword q's market options from the engine
// configuration and the given ledger — the one place New and
// RebuildShard derive construction parameters, so a rebuilt market is
// exactly what New would build.
func (e *Engine) marketOpts(q int, led *budget.Ledger) MarketOpts {
	return MarketOpts{
		Method:           e.cfg.Method,
		Pricing:          e.cfg.Pricing,
		ClickSeed:        KeywordSeed(e.cfg.ClickSeed, q),
		Lane:             e.laneOf(led, q),
		HeavyParallelism: e.cfg.HeavyParallelism,
		Reserve:          e.cfg.Reserve,
		Tracer:           e.tracer,
		TraceKeyword:     q,
		TraceShard:       e.shardOf[q],
	}
}

// ResetShardBudgets swaps every market owned by shard s onto its lane
// of led — the budget-reset analogue of RebuildShard's churn fence.
// Unlike churn, the markets themselves persist: bids, accounting, and
// ROI trajectories continue; only the spend ledger is replaced. Must
// run on the goroutine that owns shard s, between auctions (the
// streaming layer's in-band reset fences); each market publishes its
// old lane's tail before switching. No-op when budgets are off.
func (e *Engine) ResetShardBudgets(s int, led *budget.Ledger) {
	if led == nil {
		return
	}
	for q := range e.markets {
		if e.shardOf[q] == s {
			e.markets[q].SetLane(led.Lane(q))
		}
	}
}

// ResetBudgets performs a batch-mode budget reset: a fresh ledger
// (journaled as a reset epoch) replaces the current one across every
// market, re-admitting exhausted advertisers while bid state
// continues. The caller must have quiesced serving — it takes the
// batch lock, so no Serve call may be in flight. Returns the new
// ledger, or nil when budgets are off. Streaming callers use
// stream.Server.ResetBudgets, which applies the same swap through
// in-band fences instead.
func (e *Engine) ResetBudgets() *budget.Ledger {
	e.mu.Lock()
	defer e.mu.Unlock()
	led := e.NewResetLedger()
	if led == nil {
		return nil
	}
	for s := 0; s < e.cfg.Shards; s++ {
		e.ResetShardBudgets(s, led)
	}
	e.ledger.Store(led)
	return led
}

// Journal returns the configured journal writer, or nil.
func (e *Engine) Journal() *journal.Writer { return e.cfg.Journal }

// JournalErr returns the journal's sticky write error, if any — the
// non-blocking way to notice degraded durability while serving.
func (e *Engine) JournalErr() error {
	if e.cfg.Journal == nil {
		return nil
	}
	return e.cfg.Journal.Err()
}

// Close releases every market's background resources (heavyweight
// worker pools), publishes any unpublished budget spend, and flushes
// and closes the journal if one is configured. Call it when the
// engine is retired and no Serve is in flight; the streaming layer
// does so at the end of its drain. Close is idempotent: the first
// call does the work (one flush, one journal close), later calls are
// no-ops.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		if e.Ledger() != nil {
			// The caller has quiesced serving, so the lane owners are
			// parked and the final publish (which also flushes the
			// lanes' journal batches) is safe here.
			for _, m := range e.markets {
				m.FlushBudget()
			}
		}
		if e.cfg.Journal != nil {
			// The engine owns the writer; sticky errors surface in
			// JournalErr before this and in the writer's Close result.
			_ = e.cfg.Journal.Close()
		}
		for _, m := range e.markets {
			m.Close()
		}
	})
}

// SetInstance repoints the engine's population reference (and budget
// ledger) after a churn — batch-serve validation, diagnostics, and
// statistics read them. The caller must ensure no Serve call is in
// flight; the streaming layer invokes it under its churn lock.
func (e *Engine) SetInstance(inst *workload.Instance, led *budget.Ledger) {
	if inst.Keywords != len(e.markets) {
		panic(fmt.Sprintf("engine: SetInstance keyword catalog changed (%d != %d)", inst.Keywords, len(e.markets)))
	}
	e.inst = inst
	e.ledger.Store(led)
}

// serve fans queries out to the keyword shards. rels/ws, when
// non-nil, carry the per-query broad-match relevance and squashed
// weight (parallel to queries); nil means exact routing, every query
// at (1, 1).
func (e *Engine) serve(queries []int, rels, ws []float64, results []*Outcome) *Stats {
	e.mu.Lock()
	defer e.mu.Unlock()

	for _, q := range queries {
		if q < 0 || q >= e.inst.Keywords {
			panic(fmt.Sprintf("engine: query keyword %d out of range [0,%d)", q, e.inst.Keywords))
		}
	}

	shards := e.cfg.Shards
	if cap(e.lat) < len(queries) {
		e.lat = make([]int64, len(queries))
	}
	latencies := e.lat[:len(queries)]
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < shards; s++ {
		ch := e.chans[s]
		wg.Add(1)
		go func(s int, ch <-chan int) {
			defer wg.Done()
			// Accumulate into a worker-local Totals and publish it once
			// on exit: adjacent e.totals entries share cache lines, and
			// per-auction writes there would ping-pong them across cores.
			var tot Totals
			defer func() { e.totals[s] = tot }()
			// The channels persist across batches, so workers stop on a
			// −1 sentinel rather than channel close.
			for idx := range ch {
				if idx < 0 {
					return
				}
				q := queries[idx]
				rel, w := 1.0, 1.0
				if rels != nil {
					rel, w = rels[idx], ws[idx]
				}
				t0 := time.Now()
				out := e.ServeOneWeighted(q, rel, w, &tot)
				latencies[idx] = int64(time.Since(t0))
				e.met.Latency.Record(latencies[idx])
				if results != nil {
					results[idx] = out.Clone()
				}
			}
		}(s, ch)
	}
	// Feed in arrival order. A keyword lives on exactly one shard, so
	// the per-keyword auction order is the arrival order regardless of
	// how shards interleave; the bounded channels provide backpressure.
	for idx, q := range queries {
		e.chans[e.shardOf[q]] <- idx
	}
	for _, ch := range e.chans {
		ch <- -1
	}
	wg.Wait()
	elapsed := time.Since(start)

	if e.Ledger() != nil {
		// Batch boundary: the workers have joined (their lane writes
		// happen-before this), so fold every market's unpublished spend
		// into the snapshot — after Serve returns, the published ledger
		// is current.
		for _, m := range e.markets {
			m.FlushBudget()
		}
	}

	st := &Stats{Elapsed: elapsed}
	for s := range e.totals {
		tot := &e.totals[s]
		st.Auctions += tot.Auctions
		st.Revenue += tot.Revenue
		st.Clicks += tot.Clicks
		st.Filled += tot.Filled
		st.TotalSlots += tot.Slots
	}
	if elapsed > 0 {
		st.Throughput = float64(st.Auctions) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		st.P50, st.P95, st.P99, st.Max = SummarizeLatencies(latencies)
	}
	return st
}

// SummarizeLatencies sorts lat (in place, nanoseconds) and returns
// the p50/p95/p99/max service latencies — the one percentile
// convention shared by the batch Stats and the streaming layer's
// rolling windows.
func SummarizeLatencies(lat []int64) (p50, p95, p99, max time.Duration) {
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pct := func(p float64) time.Duration {
		return time.Duration(lat[int(p*float64(len(lat)-1))])
	}
	return pct(0.50), pct(0.95), pct(0.99), time.Duration(lat[len(lat)-1])
}
