package engine

import (
	"math/rand"
	"testing"

	"repro/internal/racetest"
	"repro/internal/workload"
)

// referenceOutcomes runs, for each keyword, a fresh sequential Market
// (the strategy.World implementation) over just that keyword's
// subsequence of the query stream — the engine's documented
// equivalence reference.
func referenceOutcomes(inst *workload.Instance, method Method, clickSeed int64, queries []int) [][]*Outcome {
	ref := make([][]*Outcome, inst.Keywords)
	markets := make([]*Market, inst.Keywords)
	for q := 0; q < inst.Keywords; q++ {
		markets[q] = NewMarket(inst, method, KeywordSeed(clickSeed, q))
	}
	for _, q := range queries {
		ref[q] = append(ref[q], markets[q].RunAuction(q))
	}
	return ref
}

// TestEngineMatchesSequentialMarkets: the core serving contract. For
// several shard counts and a shuffled stream, every keyword's outcome
// sequence (and final bid state) must match the sequential reference
// exactly. Run under -race this also proves the shard workers share no
// state.
func TestEngineMatchesSequentialMarkets(t *testing.T) {
	for _, method := range []Method{MethodRH, MethodRHTALU} {
		inst := workload.Generate(rand.New(rand.NewSource(61)), 80, 6, 7)
		queries := inst.Queries(rand.New(rand.NewSource(62)), 900)
		const clickSeed = 17
		ref := referenceOutcomes(inst, method, clickSeed, queries)

		for _, shards := range []int{1, 2, 3, 7} {
			// A different interleaving per shard count: per-keyword
			// subsequences are what the contract pins, not the global
			// order.
			shuffled := append([]int(nil), queries...)
			rand.New(rand.NewSource(int64(100+shards))).Shuffle(len(shuffled), func(a, b int) {
				shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
			})
			e := New(inst, Config{Shards: shards, QueueDepth: 8, Method: method, ClickSeed: clickSeed})
			outs, st := e.ServeOutcomes(shuffled)
			if st.Auctions != len(shuffled) {
				t.Fatalf("method=%v shards=%d: served %d of %d", method, shards, st.Auctions, len(shuffled))
			}

			// Regroup engine outcomes by keyword in arrival order and
			// compare against the per-keyword reference streams. The
			// shuffle permutes arrivals, so compare against a reference
			// for the shuffled stream.
			want := referenceOutcomes(inst, method, clickSeed, shuffled)
			got := make([][]*Outcome, inst.Keywords)
			for idx, o := range outs {
				if o == nil {
					t.Fatalf("method=%v shards=%d: missing outcome %d", method, shards, idx)
				}
				got[o.Query] = append(got[o.Query], o)
			}
			for q := 0; q < inst.Keywords; q++ {
				if len(got[q]) != len(want[q]) {
					t.Fatalf("method=%v shards=%d kw=%d: %d outcomes, want %d",
						method, shards, q, len(got[q]), len(want[q]))
				}
				for a := range want[q] {
					if !got[q][a].Equal(want[q][a]) {
						t.Fatalf("method=%v shards=%d kw=%d auction=%d: engine %+v != sequential %+v",
							method, shards, q, a, got[q][a], want[q][a])
					}
				}
			}
			_ = ref // the unshuffled reference pins determinism below
		}
	}
}

// TestEngineShardCountInvariance: shard count and queue depth are pure
// performance knobs — two engines over the same stream must agree
// outcome for outcome, whatever their configuration.
func TestEngineShardCountInvariance(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(63)), 60, 5, 9)
	queries := inst.Queries(rand.New(rand.NewSource(64)), 700)
	base, _ := New(inst, Config{Shards: 1, QueueDepth: 1, Method: MethodRH, ClickSeed: 5}).ServeOutcomes(queries)
	for _, cfg := range []Config{
		{Shards: 4, QueueDepth: 2, Method: MethodRH, ClickSeed: 5},
		{Shards: 9, QueueDepth: 512, Method: MethodRH, ClickSeed: 5},
	} {
		outs, _ := New(inst, cfg).ServeOutcomes(queries)
		for i := range base {
			if !outs[i].Equal(base[i]) {
				t.Fatalf("cfg %+v: outcome %d differs: %+v vs %+v", cfg, i, outs[i], base[i])
			}
		}
	}
}

// TestEngineServeAccumulates: repeated Serve calls continue the same
// markets (a long-running server, not a per-batch reset).
func TestEngineServeAccumulates(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(65)), 40, 4, 5)
	queries := inst.Queries(rand.New(rand.NewSource(66)), 400)
	e := New(inst, Config{Shards: 3, Method: MethodRH, ClickSeed: 9})
	e.Serve(queries[:250])
	e.Serve(queries[250:])
	whole := referenceOutcomes(inst, MethodRH, 9, queries)
	for q := 0; q < inst.Keywords; q++ {
		if got, want := e.KeywordMarket(q).Auctions(), len(whole[q]); got != want {
			t.Fatalf("kw %d: %d auctions, want %d", q, got, want)
		}
	}
	// Bid state must equal the reference's final state.
	for q := 0; q < inst.Keywords; q++ {
		m := NewMarket(inst, MethodRH, KeywordSeed(9, q))
		for range whole[q] {
			m.RunAuction(q)
		}
		for i := 0; i < inst.N; i++ {
			if got, want := e.KeywordMarket(q).Bid(i, q), m.Bid(i, q); got != want {
				t.Fatalf("kw %d advertiser %d: bid %d, want %d", q, i, got, want)
			}
		}
	}
}

// TestEngineTextRouting: free-text queries route through the kwmatch
// inverted index to the catalog keyword with the highest token
// overlap; unmatched text runs no auction.
func TestEngineTextRouting(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(67)), 30, 3, 3)
	e := New(inst, Config{
		Shards:       2,
		Method:       MethodRH,
		KeywordNames: []string{"leather boot", "running shoe", "boot polish kit"},
	})
	if q, ok := e.RouteText("red leather boot"); !ok || q != 0 {
		t.Fatalf("RouteText(leather boot query) = %d, %v", q, ok)
	}
	if q, ok := e.RouteText("shoe"); !ok || q != 1 {
		t.Fatalf("RouteText(shoe) = %d, %v", q, ok)
	}
	if _, ok := e.RouteText("quantum gravity"); ok {
		t.Fatal("unrelated text should not route")
	}
	st := e.ServeText([]string{"red leather boot", "buy running shoe online", "quantum gravity", ""})
	if st.Auctions != 2 || st.Unrouted != 2 {
		t.Fatalf("ServeText: %d auctions, %d unrouted; want 2 and 2", st.Auctions, st.Unrouted)
	}
}

// TestEngineServeReusesBuffers: the batch path's per-call scratch —
// feed channels, per-shard totals, and the latency sample buffer — is
// allocated once and reused, so a long-running server's steady
// per-batch overhead is goroutine spawns only.
func TestEngineServeReusesBuffers(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(80)), 40, 4, 6)
	queries := inst.Queries(rand.New(rand.NewSource(81)), 600)
	e := New(inst, Config{Shards: 3, Method: MethodRH, ClickSeed: 4})
	e.Serve(queries)
	lat0, ch0 := &e.lat[0], e.chans[0]
	e.Serve(queries[:300]) // smaller batch: the latency buffer must not shrink
	if &e.lat[0] != lat0 || e.chans[0] != ch0 {
		t.Fatal("Serve reallocated its persistent scratch on a second batch")
	}
	if cap(e.lat) < len(queries) {
		t.Fatalf("latency buffer shrank to %d, want >= %d", cap(e.lat), len(queries))
	}
	// And a larger batch grows the buffer without disturbing outcomes.
	st := e.Serve(append(append([]int(nil), queries...), queries...))
	if st.Auctions != 2*len(queries) {
		t.Fatalf("grown batch served %d, want %d", st.Auctions, 2*len(queries))
	}
}

// TestEngineServeTextMixedAccounting: under a long interleaved stream
// of routed and unrouted free-text queries, every query is accounted
// exactly once — Auctions + Unrouted == submitted — and the unrouted
// ones are pure no-ops: the routed subsequence produces the same
// market evolution as serving it alone.
func TestEngineServeTextMixedAccounting(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(82)), 40, 4, 3)
	names := []string{"leather boot", "running shoe", "garden hose"}
	mk := func() *Engine {
		return New(inst, Config{Shards: 2, Method: MethodRH, ClickSeed: 13, KeywordNames: names})
	}
	junk := []string{"quantum gravity", "", "zzz unknown tokens", "plasma lattice"}
	rng := rand.New(rand.NewSource(83))
	var text []string
	var routedOnly []string
	wantUnrouted := 0
	for i := 0; i < 800; i++ {
		if rng.Intn(3) == 0 {
			text = append(text, junk[rng.Intn(len(junk))])
			wantUnrouted++
		} else {
			s := names[rng.Intn(len(names))]
			text = append(text, s)
			routedOnly = append(routedOnly, s)
		}
	}
	a := mk()
	st := a.ServeText(text)
	if st.Unrouted != wantUnrouted {
		t.Fatalf("Unrouted = %d, want %d", st.Unrouted, wantUnrouted)
	}
	if st.Auctions+st.Unrouted != len(text) {
		t.Fatalf("accounting leak: %d auctions + %d unrouted != %d submitted",
			st.Auctions, st.Unrouted, len(text))
	}
	b := mk()
	st2 := b.ServeText(routedOnly)
	if st2.Unrouted != 0 || st2.Auctions != len(routedOnly) {
		t.Fatalf("routed-only control: %d auctions, %d unrouted", st2.Auctions, st2.Unrouted)
	}
	if st.Revenue != st2.Revenue || st.Clicks != st2.Clicks || st.Filled != st2.Filled {
		t.Fatalf("unrouted queries perturbed the market: mixed (rev=%g clicks=%d) vs routed-only (rev=%g clicks=%d)",
			st.Revenue, st.Clicks, st2.Revenue, st2.Clicks)
	}
	for q := 0; q < inst.Keywords; q++ {
		for i := 0; i < inst.N; i++ {
			if a.KeywordMarket(q).Bid(i, q) != b.KeywordMarket(q).Bid(i, q) {
				t.Fatalf("bid[%d][%d] differs between mixed and routed-only streams", i, q)
			}
		}
	}
}

// TestMarketRunMatchesRunAuction: the reused-outcome hot path and the
// retainable-outcome facade must report the same auctions.
func TestMarketRunMatchesRunAuction(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(68)), 50, 5, 6)
	queries := inst.Queries(rand.New(rand.NewSource(69)), 500)
	a := NewMarket(inst, MethodRH, 3)
	b := NewMarket(inst, MethodRH, 3)
	for _, q := range queries {
		oa := a.Run(q)
		ob := b.RunAuction(q)
		if !oa.Equal(ob) {
			t.Fatalf("Run %+v != RunAuction %+v", oa, ob)
		}
	}
}

// TestMarketSteadyStateAllocs is the allocation-free guarantee of the
// serving hot path: after warmup, MethodRH auctions must not allocate
// at all — selection, reduced matching, pricing, click simulation, and
// accounting all run in reused buffers.
func TestMarketSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	inst := workload.Generate(rand.New(rand.NewSource(70)), 500, 15, 10)
	queries := inst.Queries(rand.New(rand.NewSource(71)), 4096)
	m := NewMarket(inst, MethodRH, 7)
	for _, q := range queries[:2048] {
		m.Run(q)
	}
	next := 2048
	allocs := testing.AllocsPerRun(1000, func() {
		m.Run(queries[next%len(queries)])
		next++
	})
	if allocs != 0 {
		t.Fatalf("steady-state RH auction allocates %.2f objects/op, want 0", allocs)
	}
}

// TestTALUSteadyStateAllocs extends the zero-allocation guarantee to
// the paper's own fast path: after warmup, a MethodRHTALU auction —
// trigger firings, logical updates, per-slot threshold algorithm over
// the persistent merged source, workspace winner determination,
// pricing, clicks, accounting, and the winners' recomputes (including
// treap membership churn, recycled through the per-keyword node
// pools) — must not allocate at all.
func TestTALUSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	inst := workload.Generate(rand.New(rand.NewSource(70)), 500, 15, 10)
	queries := inst.Queries(rand.New(rand.NewSource(71)), 4096)
	m := NewMarket(inst, MethodRHTALU, 7)
	for _, q := range queries[:2048] {
		m.Run(q)
	}
	next := 2048
	allocs := testing.AllocsPerRun(1000, func() {
		m.Run(queries[next%len(queries)])
		next++
	})
	if allocs != 0 {
		t.Fatalf("steady-state TALU auction allocates %.2f objects/op, want 0", allocs)
	}
}

// stormInstance hand-builds a workload where every bidder shares the
// same click value, target, and starting bid: all start underspending
// with identical (smoothed) ROI, so every bidder lands in the
// increment list of every keyword and their count triggers all carry
// the same critical count — the maximal simultaneous trigger storm.
func stormInstance(n, slots, keywords int) *workload.Instance {
	inst := &workload.Instance{
		N: n, Slots: slots, Keywords: keywords,
		Value:      make([][]int, n),
		Target:     make([]int, n),
		InitialBid: make([][]int, n),
		ClickProb:  make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		inst.Value[i] = make([]int, keywords)
		inst.InitialBid[i] = make([]int, keywords)
		inst.ClickProb[i] = make([]float64, slots)
		for q := 0; q < keywords; q++ {
			inst.Value[i][q] = 10
			inst.InitialBid[i][q] = 5
		}
		inst.Target[i] = 3
		for j := 0; j < slots; j++ {
			// Distinct per-bidder probabilities (descending in slot)
			// keep winner determination free of mass ties.
			inst.ClickProb[i][j] = 0.8 - 0.1*float64(j) - 0.002*float64(i)
		}
	}
	return inst
}

// TestTALUTriggerStorm drives the regime where many bidders cross the
// same critical count on the same auction — all n count triggers of a
// keyword fire together as the drifting bids hit their caps. Outcomes
// and final bids must stay byte-identical to the explicit engine
// through the storm, the storm auction must charge ~n recomputes at
// once, and total recomputes must stay far below the explicit
// engine's n-per-auction.
func TestTALUTriggerStorm(t *testing.T) {
	const (
		n        = 64
		slots    = 3
		keywords = 2
		auctions = 400
	)
	inst := stormInstance(n, slots, keywords)
	queries := inst.Queries(rand.New(rand.NewSource(73)), auctions)
	ex := NewMarket(inst, MethodRH, 11)
	ta := NewMarket(inst, MethodRHTALU, 11)

	var stormBatch int64
	prevEvals := ta.ProgramEvaluations()
	for a, q := range queries {
		exO := ex.Run(q)
		taO := ta.Run(q)
		if !taO.Equal(exO) {
			t.Fatalf("auction %d (kw %d): TALU %+v != explicit %+v", a, q, taO, exO)
		}
		evals := ta.ProgramEvaluations()
		if d := evals - prevEvals; d > stormBatch {
			stormBatch = d
		}
		prevEvals = evals
	}
	for q := 0; q < keywords; q++ {
		for i := 0; i < n; i++ {
			if got, want := ta.Bid(i, q), ex.Bid(i, q); got != want {
				t.Fatalf("bid[%d][%d]: TALU %d, explicit %d", i, q, got, want)
			}
		}
	}

	// The storm: with identical values and bids, (nearly) all n count
	// triggers of a keyword share one critical count. Clicks before
	// the storm recompute a few bidders early, so demand most of n
	// rather than all of it.
	if stormBatch < n/2 {
		t.Fatalf("largest single-auction recompute batch = %d, want a storm of >= %d", stormBatch, n/2)
	}
	// And the point of §IV: even including the storm, total recomputes
	// stay far below the explicit engine's n per auction.
	total := ta.ProgramEvaluations()
	explicit := int64(n) * int64(auctions)
	if total*4 > explicit {
		t.Fatalf("TALU recomputes %d vs explicit %d: §IV reduction lost", total, explicit)
	}
}
