package engine

import (
	"repro/internal/topk"
	"repro/internal/workload"
)

// explicitEngine evaluates every bidding program on every auction:
// the straightforward implementation of the Section II flow, used by
// methods LP, H, and RH. Its per-auction cost is Θ(n·keywords) before
// winner determination even starts — the cost Section IV eliminates.
type explicitEngine struct {
	inst *workload.Instance
	bid  [][]int // bid[i][q], integral by construction
}

func newExplicitEngine(inst *workload.Instance) *explicitEngine {
	e := &explicitEngine{inst: inst, bid: make([][]int, inst.N)}
	for i := range e.bid {
		e.bid[i] = make([]int, inst.Keywords)
		copy(e.bid[i], inst.InitialBid[i])
	}
	return e
}

// step runs every advertiser's ROI program for the auction on keyword
// q at time t: the native equivalent of firing the Figure 5 trigger
// once per advertiser. Only the query keyword has positive relevance,
// so only its bid can change.
func (e *explicitEngine) step(q int, t float64, acct *Accounting) {
	for i := 0; i < e.inst.N; i++ {
		status := spendStatus(acct.SpentTotal[i], t, e.inst.Target[i])
		switch bidMode(e.inst, acct, i, q, e.bid[i][q], status) {
		case modeInc:
			e.bid[i][q]++
		case modeDec:
			e.bid[i][q]--
		}
	}
}

// scanLists materializes per-slot top-(k+1) candidate lists by a full
// scan — the pricing helper for the full-graph methods.
func scanLists(n, k int, score func(i, j int) float64) [][]topk.Item {
	lists := make([][]topk.Item, k)
	for j := 0; j < k; j++ {
		j := j
		lists[j] = topk.Select(n, k+1, func(i int) float64 { return score(i, j) })
	}
	return lists
}
