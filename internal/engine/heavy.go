package engine

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/formula"
	"repro/internal/probmodel"
	"repro/internal/workload"
)

// heavyEngine is the Section III-F serving path of a market: a
// persistent core.HeavyAuction over the instance's advertisers
// (single Click-bid rows whose values are mutated in place each
// auction — never reallocated, so the HeavyDeterminer's cached
// validation stays warm) and a reusable HeavyDeterminer whose 2^k
// pattern enumeration runs allocation-free in steady state. The
// heavyweight model conditions click probabilities on the realized
// pattern via the shadowing factors of probmodel.ShadowFactors, built
// from the instance's Heavy classification and Shadow strength.
type heavyEngine struct {
	model   *probmodel.HeavyModel
	auction *core.HeavyAuction
	det     *core.HeavyDeterminer
	res     core.Result

	// pattern is the realized heavyweight pattern of the current
	// auction's allocation; pricing and the user simulation condition
	// on it.
	pattern uint64

	// payments is the VCG scratch (per-advertiser expected charges).
	payments []float64

	// scoreFn scores (advertiser, slot) under the current pattern and
	// the market's bid vector — the GSP candidate ranking. Built once
	// so per-auction selection creates no closures.
	scoreFn func(i, j int) float64
}

// newHeavyEngine builds the serving path with a determiner solving
// its 2^k enumeration on up to parallelism workers (0 means
// GOMAXPROCS, 1 fully sequential; see MarketOpts.HeavyParallelism).
// The pool is per market and persists across auctions, so shard
// workers never re-spawn goroutines on the hot path.
func newHeavyEngine(inst *workload.Instance, m *Market, parallelism int) *heavyEngine {
	n, k := inst.N, inst.Slots
	if k > 20 {
		panic(fmt.Sprintf("engine: MethodHeavy enumerates 2^k patterns and needs k ≤ 20, got %d slots", k))
	}
	isHeavy := make([]bool, n)
	copy(isHeavy, inst.Heavy) // nil Heavy ⇒ all lightweight
	purchase := make([][]float64, n)
	for i := range purchase {
		purchase[i] = make([]float64, k)
	}
	var factor [][]float64
	if inst.Shadow != 0 {
		factor = probmodel.ShadowFactors(k, inst.Shadow)
	}
	model := &probmodel.HeavyModel{
		Base:    &probmodel.Model{Click: inst.ClickProb, Purchase: purchase},
		IsHeavy: isHeavy,
		Factor:  factor,
	}
	advs := make([]core.Advertiser, n)
	for i := range advs {
		advs[i] = core.Advertiser{
			ID:    "adv" + strconv.Itoa(i),
			Bids:  formula.Bids{{F: formula.Click{}, Value: 0}},
			Heavy: isHeavy[i],
		}
	}
	hv := &heavyEngine{
		model:    model,
		auction:  &core.HeavyAuction{Slots: k, Advertisers: advs, Model: model},
		det:      core.NewHeavyDeterminerParallel(parallelism),
		payments: make([]float64, n),
	}
	hv.scoreFn = func(i, j int) float64 {
		return hv.model.ClickProb(i, j, hv.pattern) * m.bidf[i]
	}
	return hv
}

// determine pushes the market's current bid vector into the
// persistent auction, solves the 2^k enumeration, copies the winning
// allocation into advOf, and records the realized heavyweight
// pattern. bidf must already hold this keyword's bids.
func (hv *heavyEngine) determine(bidf []float64, advOf []int) {
	for i := range hv.auction.Advertisers {
		hv.auction.Advertisers[i].Bids[0].Value = bidf[i]
	}
	if err := hv.det.DetermineInto(hv.auction, &hv.res); err != nil {
		// The auction shape is fixed at construction and validated on
		// the first call; a failure here is a programming error.
		panic("engine: heavyweight winner determination failed: " + err.Error())
	}
	copy(advOf, hv.res.AdvOf)
	hv.pattern = 0
	for j, i := range advOf {
		if i >= 0 && hv.model.IsHeavy[i] {
			hv.pattern |= 1 << uint(j)
		}
	}
}

// priceVCG fills the outcome's per-click prices from the heavyweight
// Vickrey payments: winner i's expected charge divided by his click
// probability under the realized pattern. hv.res still holds the
// current auction's allocation.
func (hv *heavyEngine) priceVCG(advOf []int, out *Outcome) {
	if err := hv.det.VCGPaymentsInto(hv.auction, &hv.res, hv.payments); err != nil {
		panic("engine: heavyweight VCG pricing failed: " + err.Error())
	}
	for j, i := range advOf {
		if i < 0 {
			continue
		}
		if p := hv.payments[i]; p > 0 {
			out.PricePerClick[j] = p / hv.model.ClickProb(i, j, hv.pattern)
		}
	}
}
