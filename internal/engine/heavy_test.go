package engine

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/formula"
	"repro/internal/matching"
	"repro/internal/probmodel"
	"repro/internal/racetest"
	"repro/internal/workload"
)

// heavyReference is the sequential Section III-F reference a
// MethodHeavy market must match byte for byte: the same explicit
// bid-update engine, but a *fresh* core.HeavyAuction — fresh
// advertisers, fresh Bids rows, fresh model, fresh shadow factors —
// built and solved with the cold sequential HeavyAuction.Determine on
// every auction, followed by the same pattern-conditional GSP pricing
// and user simulation. Any state the engine's HeavyDeterminer or
// persistent auction carries across auctions that is not
// behavior-neutral shows up as a diff here.
type heavyReference struct {
	inst *workload.Instance
	ex   *explicitEngine
	acct *Accounting
	rng  *rand.Rand
	t    int
}

func newHeavyReference(inst *workload.Instance, clickSeed int64) *heavyReference {
	return &heavyReference{
		inst: inst,
		ex:   newExplicitEngine(inst),
		acct: newAccounting(inst.N, inst.Keywords),
		rng:  rand.New(rand.NewSource(clickSeed)),
	}
}

func (r *heavyReference) run(q int) *Outcome {
	r.t++
	t := float64(r.t)
	inst := r.inst
	n, k := inst.N, inst.Slots
	r.ex.step(q, t, r.acct)

	// A cold auction from scratch every time.
	purchase := make([][]float64, n)
	advs := make([]core.Advertiser, n)
	isHeavy := make([]bool, n)
	copy(isHeavy, inst.Heavy)
	for i := 0; i < n; i++ {
		purchase[i] = make([]float64, k)
		advs[i] = core.Advertiser{
			ID:    "adv" + strconv.Itoa(i),
			Bids:  formula.Bids{{F: formula.Click{}, Value: float64(r.ex.bid[i][q])}},
			Heavy: isHeavy[i],
		}
	}
	var factor [][]float64
	if inst.Shadow != 0 {
		factor = probmodel.ShadowFactors(k, inst.Shadow)
	}
	model := &probmodel.HeavyModel{
		Base:    &probmodel.Model{Click: inst.ClickProb, Purchase: purchase},
		IsHeavy: isHeavy,
		Factor:  factor,
	}
	h := &core.HeavyAuction{Slots: k, Advertisers: advs, Model: model}
	res, err := h.Determine(false)
	if err != nil {
		panic(err)
	}
	var pattern uint64
	for j, i := range res.AdvOf {
		if i >= 0 && isHeavy[i] {
			pattern |= 1 << uint(j)
		}
	}

	out := &Outcome{
		Query:         q,
		AdvOf:         append([]int(nil), res.AdvOf...),
		PricePerClick: make([]float64, k),
		Clicked:       make([]bool, k),
	}
	cp := func(i, j int) float64 { return model.ClickProb(i, j, pattern) }
	score := func(i, j int) float64 { return cp(i, j) * float64(r.ex.bid[i][q]) }
	lists := matching.NewWorkspace().SelectCandidates(n, k, k+1, score)
	assigned := make(map[int]bool)
	for _, i := range res.AdvOf {
		if i >= 0 {
			assigned[i] = true
		}
	}
	for j, i := range res.AdvOf {
		if i < 0 {
			continue
		}
		runner := 0.0
		for _, it := range lists[j] {
			if !assigned[it.ID] {
				runner = it.Score
				break
			}
		}
		price := 0.0
		if c := cp(i, j); c > 0 {
			price = runner / c
		}
		if bid := float64(r.ex.bid[i][q]); price > bid {
			price = bid
		}
		out.PricePerClick[j] = price
	}
	for j := 0; j < k; j++ {
		u := r.rng.Float64()
		i := res.AdvOf[j]
		if i < 0 || u >= cp(i, j) {
			continue
		}
		out.Clicked[j] = true
		price := out.PricePerClick[j]
		out.Revenue += price
		r.acct.SpentTotal[i] += price
		r.acct.SpentKw[i][q] += price
		r.acct.GainedKw[i][q] += float64(inst.Value[i][q])
	}
	return out
}

// TestHeavyMarketMatchesSequentialHeavyAuction is the MethodHeavy
// acceptance contract: the serving market — persistent auction,
// value-mutated bids, cached HeavyDeterminer enumeration state — must
// reproduce the cold per-auction core.HeavyAuction pipeline exactly,
// outcome for outcome and bid for bid.
func TestHeavyMarketMatchesSequentialHeavyAuction(t *testing.T) {
	inst := workload.GenerateHeavy(rand.New(rand.NewSource(151)), 60, 4, 5, 0.25, 0.35)
	queries := inst.Queries(rand.New(rand.NewSource(152)), 500)
	m := NewMarket(inst, MethodHeavy, 19)
	ref := newHeavyReference(inst, 19)
	for a, q := range queries {
		got := m.Run(q)
		want := ref.run(q)
		if !got.Equal(want) {
			t.Fatalf("auction %d (kw %d): engine %+v != sequential heavy %+v", a, q, got, want)
		}
	}
	for q := 0; q < inst.Keywords; q++ {
		for i := 0; i < inst.N; i++ {
			if got, want := m.Bid(i, q), ref.ex.bid[i][q]; got != want {
				t.Fatalf("bid[%d][%d]: engine %d, sequential %d", i, q, got, want)
			}
		}
	}
}

// TestEngineHeavyAndVCGMatchSequentialMarkets extends the engine's
// concurrency contract to the new method/pricing axes: for MethodHeavy
// and for VCG pricing (flat and heavyweight), Engine.Serve over a
// shuffled stream must reproduce each keyword's sequential market
// exactly. Run under -race this also proves the new paths share no
// state across shards.
func TestEngineHeavyAndVCGMatchSequentialMarkets(t *testing.T) {
	flat := workload.Generate(rand.New(rand.NewSource(153)), 50, 4, 5)
	heavy := workload.GenerateHeavy(rand.New(rand.NewSource(154)), 40, 4, 5, 0.3, 0.4)
	cases := []struct {
		name    string
		inst    *workload.Instance
		method  Method
		pricing Pricing
	}{
		{"heavy-gsp", heavy, MethodHeavy, PricingGSP},
		{"heavy-vcg", heavy, MethodHeavy, PricingVCG},
		{"rh-vcg", flat, MethodRH, PricingVCG},
		{"talu-vcg", flat, MethodRHTALU, PricingVCG},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			queries := tc.inst.Queries(rand.New(rand.NewSource(155)), 400)
			const clickSeed = 23
			for _, shards := range []int{1, 3} {
				shuffled := append([]int(nil), queries...)
				rand.New(rand.NewSource(int64(10+shards))).Shuffle(len(shuffled), func(a, b int) {
					shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
				})
				e := New(tc.inst, Config{
					Shards: shards, QueueDepth: 8,
					Method: tc.method, Pricing: tc.pricing, ClickSeed: clickSeed,
				})
				outs, st := e.ServeOutcomes(shuffled)
				if st.Auctions != len(shuffled) {
					t.Fatalf("shards=%d: served %d of %d", shards, st.Auctions, len(shuffled))
				}
				markets := make([]*Market, tc.inst.Keywords)
				for q := range markets {
					markets[q] = NewMarketPriced(tc.inst, tc.method, tc.pricing, KeywordSeed(clickSeed, q))
				}
				for idx, got := range outs {
					q := shuffled[idx]
					want := markets[q].RunAuction(q)
					if !got.Equal(want) {
						t.Fatalf("shards=%d auction=%d kw=%d: engine %+v != sequential %+v",
							shards, idx, q, got, want)
					}
				}
			}
		})
	}
}

// TestHeavySteadyStateAllocs extends the zero-allocation guarantee to
// the Section III-F serving path: after warmup, a MethodHeavy auction
// — explicit bid updates, in-place bid-value pushes, the full 2^k
// pattern enumeration in the HeavyDeterminer, pattern-conditional GSP
// pricing, clicks, and accounting — must not allocate at all.
func TestHeavySteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	inst := workload.GenerateHeavy(rand.New(rand.NewSource(157)), 150, 4, 6, 0.2, 0.3)
	queries := inst.Queries(rand.New(rand.NewSource(158)), 1024)
	m := NewMarket(inst, MethodHeavy, 7)
	for _, q := range queries[:512] {
		m.Run(q)
	}
	next := 512
	allocs := testing.AllocsPerRun(200, func() {
		m.Run(queries[next%len(queries)])
		next++
	})
	if allocs != 0 {
		t.Fatalf("steady-state heavy auction allocates %.2f objects/op, want 0", allocs)
	}
}

// TestVCGSteadyStateAllocs: MethodRH with Vickrey pricing — the main
// solve plus one counterfactual reduced solve per winner, all in
// reused workspaces — stays allocation-free in steady state.
func TestVCGSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	inst := workload.Generate(rand.New(rand.NewSource(159)), 300, 8, 6)
	queries := inst.Queries(rand.New(rand.NewSource(160)), 2048)
	m := NewMarketPriced(inst, MethodRH, PricingVCG, 7)
	for _, q := range queries[:1024] {
		m.Run(q)
	}
	next := 1024
	allocs := testing.AllocsPerRun(300, func() {
		m.Run(queries[next%len(queries)])
		next++
	})
	if allocs != 0 {
		t.Fatalf("steady-state RH+VCG auction allocates %.2f objects/op, want 0", allocs)
	}
}

// TestHeavyVCGSteadyStateAllocs: the most expressive configuration the
// engine serves — heavyweight winner determination with Vickrey
// pricing, one counterfactual 2^k enumeration per winner — also runs
// allocation-free once warm.
func TestHeavyVCGSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	inst := workload.GenerateHeavy(rand.New(rand.NewSource(161)), 80, 4, 5, 0.25, 0.3)
	queries := inst.Queries(rand.New(rand.NewSource(162)), 1024)
	m := NewMarketPriced(inst, MethodHeavy, PricingVCG, 7)
	for _, q := range queries[:512] {
		m.Run(q)
	}
	next := 512
	allocs := testing.AllocsPerRun(150, func() {
		m.Run(queries[next%len(queries)])
		next++
	})
	if allocs != 0 {
		t.Fatalf("steady-state heavy+VCG auction allocates %.2f objects/op, want 0", allocs)
	}
}
