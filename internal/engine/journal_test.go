package engine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/budget"
	"repro/internal/journal"
	"repro/internal/racetest"
	"repro/internal/workload"
)

// journaledInstance builds a budgeted population whose caps bind well
// inside the test's query counts.
func journaledInstance(seed int64, n, keywords int, meanAuctions float64) *workload.Instance {
	inst := workload.Generate(rand.New(rand.NewSource(seed)), n, 4, keywords)
	workload.AttachBudgets(rand.New(rand.NewSource(seed+1)), inst, meanAuctions)
	return inst
}

// TestEngineJournalReplayDeterminism is the replay-determinism
// acceptance gate: a served engine's journal recovers to lane totals
// bitwise equal to the live ledger, a restarted engine resumes from
// exactly that state, and the resumed session's journal recovers to
// the final totals — snapshot+tail, with and without compaction.
func TestEngineJournalReplayDeterminism(t *testing.T) {
	for _, snapEvery := range []int64{-1, 1 << 12} {
		dir := t.TempDir()
		inst := journaledInstance(301, 50, 6, 60)
		queries := inst.Queries(rand.New(rand.NewSource(303)), 2500)
		bcfg := budget.Config{Policy: budget.PolicyHard, RefreshEvery: 8}

		w, err := journal.Open(dir, journal.Options{SnapshotEvery: snapEvery, MaxBatch: 32})
		if err != nil {
			t.Fatal(err)
		}
		e := New(inst, Config{Shards: 3, Method: MethodRHTALU, ClickSeed: 17, Budget: bcfg, Journal: w})
		e.Serve(queries)
		live := make([]uint64, inst.N)
		exhausted := 0
		for i := 0; i < inst.N; i++ {
			live[i] = math.Float64bits(e.Ledger().ExactSpent(i))
			if e.Ledger().Exhausted(i) {
				exhausted++
			}
		}
		if exhausted == 0 {
			t.Fatal("trace never exhausted a budget — recovery would be unexercised")
		}
		e.Close()
		if err := w.Err(); err != nil {
			t.Fatalf("journal error after serve: %v", err)
		}

		rec, err := journal.Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rec.CorruptOffset != -1 {
			t.Fatalf("snapEvery=%d: clean journal reported corrupt at %d (%s)", snapEvery, rec.CorruptOffset, rec.CorruptReason)
		}
		if snapEvery > 0 && !rec.SnapshotLoaded {
			t.Fatal("compacting run recovered without its snapshot")
		}
		for i := 0; i < inst.N; i++ {
			if got := math.Float64bits(rec.State.Spent(i)); got != live[i] {
				t.Fatalf("snapEvery=%d advertiser %d: recovered %#x, live %#x — replay must be bitwise", snapEvery, i, got, live[i])
			}
		}

		// Restart: a second engine resumes from the recovered state.
		w2, err := journal.Open(dir, journal.Options{SnapshotEvery: snapEvery, MaxBatch: 32})
		if err != nil {
			t.Fatal(err)
		}
		e2 := New(inst, Config{Shards: 3, Method: MethodRHTALU, ClickSeed: 17, Budget: bcfg, Journal: w2, Restore: rec.State})
		for i := 0; i < inst.N; i++ {
			if got := math.Float64bits(e2.Ledger().ExactSpent(i)); got != live[i] {
				t.Fatalf("advertiser %d: restored ledger %#x, want %#x", i, got, live[i])
			}
		}
		// The restored ledger still enforces: every exhausted advertiser
		// stays gated from the first post-restart auction.
		for i := 0; i < inst.N; i++ {
			if b := e2.Ledger().Budget(i); b > 0 && rec.State.Spent(i) >= b && !e2.Ledger().Exhausted(i) {
				t.Fatalf("advertiser %d exhausted pre-crash but re-admitted after restore", i)
			}
		}
		e2.Serve(queries[:800])
		final := make([]uint64, inst.N)
		for i := 0; i < inst.N; i++ {
			final[i] = math.Float64bits(e2.Ledger().ExactSpent(i))
		}
		e2.Close()
		rec2, err := journal.Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < inst.N; i++ {
			if got := math.Float64bits(rec2.State.Spent(i)); got != final[i] {
				t.Fatalf("snapEvery=%d advertiser %d: resumed-session recovery %#x, want %#x", snapEvery, i, got, final[i])
			}
		}
	}
}

// TestEngineBudgetReset: ResetBudgets re-admits exhausted PolicyHard
// advertisers, and the post-reset outcome stream is byte-identical to
// an identically-evolved engine handed a fresh ledger directly — on
// both the explicit RH and TALU serving paths (the TALU gate's bid
// sources must be repointed too). The journaled engine's reset also
// begins a reset epoch. Single shard: with parallel shards the
// cross-lane publish interleaving is only boundedly stale, so
// outcome-level equality between two engines needs a total order.
func TestEngineBudgetReset(t *testing.T) {
	for _, method := range []Method{MethodRH, MethodRHTALU} {
		inst := journaledInstance(311, 40, 5, 50)
		phase1 := inst.Queries(rand.New(rand.NewSource(313)), 1500)
		phase2 := inst.Queries(rand.New(rand.NewSource(314)), 600)
		bcfg := budget.Config{Policy: budget.PolicyHard, RefreshEvery: 4}

		dir := t.TempDir()
		w, err := journal.Open(dir, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		reset := New(inst, Config{Shards: 1, Method: method, ClickSeed: 23, Budget: bcfg, Journal: w})
		manual := New(inst, Config{Shards: 1, Method: method, ClickSeed: 23, Budget: bcfg})
		control := New(inst, Config{Shards: 1, Method: method, ClickSeed: 23, Budget: bcfg})
		reset.Serve(phase1)
		manual.Serve(phase1)
		control.Serve(phase1)

		_, preExhausted, _ := reset.Ledger().Totals()
		if preExhausted == 0 {
			t.Fatalf("method=%v: phase 1 exhausted nobody — reset would be a no-op", method)
		}
		oldLedger := reset.Ledger()

		led := reset.ResetBudgets()
		if led == nil || reset.Ledger() != led || led == oldLedger {
			t.Fatalf("method=%v: ResetBudgets did not install a fresh ledger", method)
		}
		if _, ex, _ := led.Totals(); ex != 0 {
			t.Fatalf("method=%v: fresh ledger starts with %d exhausted advertisers", method, ex)
		}
		for i := 0; i < inst.N; i++ {
			if led.ExactSpent(i) != 0 {
				t.Fatalf("method=%v: advertiser %d starts the new epoch with spend %v", method, i, led.ExactSpent(i))
			}
		}
		if got := w.Stats().Epoch; got != 2 {
			t.Fatalf("method=%v: journal epoch %d after reset, want 2", method, got)
		}
		// The manual reference swaps a directly constructed fresh ledger
		// onto every market — "a fresh-ledger engine" by hand.
		manLed := budget.NewLedger(inst.N, inst.Keywords, inst.Budget, bcfg)
		for q := 0; q < inst.Keywords; q++ {
			manual.KeywordMarket(q).SetLane(manLed.Lane(q))
		}
		manual.SetInstance(inst, manLed)

		resetOuts, _ := reset.ServeOutcomes(phase2)
		manualOuts, _ := manual.ServeOutcomes(phase2)
		controlOuts, _ := control.ServeOutcomes(phase2)
		diverged := false
		for a := range resetOuts {
			if !resetOuts[a].Equal(manualOuts[a]) {
				t.Fatalf("method=%v auction %d: reset outcome %+v != fresh-ledger outcome %+v",
					method, a, resetOuts[a], manualOuts[a])
			}
			if !resetOuts[a].Equal(controlOuts[a]) {
				diverged = true
			}
		}
		if !diverged {
			t.Fatalf("method=%v: post-reset outcomes identical to the no-reset engine — the gate never mattered", method)
		}
		for i := 0; i < inst.N; i++ {
			if math.Float64bits(reset.Ledger().ExactSpent(i)) != math.Float64bits(manLed.ExactSpent(i)) {
				t.Fatalf("method=%v advertiser %d: post-reset spend %v != fresh-ledger spend %v",
					method, i, reset.Ledger().ExactSpent(i), manLed.ExactSpent(i))
			}
		}
		// An advertiser exhausted before the reset spent again after it.
		respent := false
		for i := 0; i < inst.N; i++ {
			if oldLedger.Exhausted(i) && reset.Ledger().ExactSpent(i) > 0 {
				respent = true
				break
			}
		}
		if !respent {
			t.Fatalf("method=%v: no exhausted advertiser spent after re-admission", method)
		}
		reset.Close()
		manual.Close()
		control.Close()
		if err := w.Err(); err != nil {
			t.Fatalf("journal error: %v", err)
		}
	}
}

// TestEngineCloseIdempotent: Close with an open journal flushes once
// and closes the writer; a second Close is a no-op (and the journal
// recovers the final state).
func TestEngineCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	inst := journaledInstance(321, 30, 4, 80)
	w, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(inst, Config{Shards: 2, Method: MethodRH, ClickSeed: 31, Budget: budget.Config{Policy: budget.PolicyHard, RefreshEvery: 16}, Journal: w})
	e.Serve(inst.Queries(rand.New(rand.NewSource(322)), 500))
	live := make([]uint64, inst.N)
	for i := range live {
		live[i] = math.Float64bits(e.Ledger().ExactSpent(i))
	}
	e.Close()
	e.Close() // must be a no-op, not a double flush or double close
	if err := w.Close(); err != nil {
		t.Fatalf("journal already closed by the engine; extra Close must stay nil, got %v", err)
	}
	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		if math.Float64bits(rec.State.Spent(i)) != live[i] {
			t.Fatalf("advertiser %d: recovery after double close diverged", i)
		}
	}
}

// TestBudgetJournalSteadyStateAllocs: durability must not cost the
// click path its allocation-freedom — charges batch into the lane's
// preallocated buffer and the writer's append path reuses its encode
// buffer, so the journaled steady state stays at 0 allocs/op on both
// serving paths. (CI runs this by the SteadyStateAllocs pattern; the
// complementary gate is BenchmarkMarketSteadyStateBudgetJournal.)
func TestBudgetJournalSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	for _, method := range []Method{MethodRH, MethodRHTALU} {
		inst := workload.Generate(rand.New(rand.NewSource(331)), 300, workload.DefaultSlots, workload.DefaultKeywords)
		workload.AttachBudgets(rand.New(rand.NewSource(332)), inst, 150)
		w, err := journal.Open(t.TempDir(), journal.Options{SnapshotEvery: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		led := budget.NewLedger(inst.N, 1, inst.Budget, budget.Config{Policy: budget.PolicyHard, RefreshEvery: 16})
		if err := led.AttachJournal(w); err != nil {
			t.Fatal(err)
		}
		m := NewMarketBudget(inst, method, PricingGSP, 7, led.Lane(0))
		queries := inst.Queries(rand.New(rand.NewSource(333)), 2000)
		for _, q := range queries {
			m.Run(q)
		}
		var qi int
		allocs := testing.AllocsPerRun(300, func() {
			m.Run(queries[qi%len(queries)])
			qi++
		})
		if allocs != 0 {
			t.Fatalf("method=%v: journaled steady state allocates %.2f objects/op, want 0", method, allocs)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
