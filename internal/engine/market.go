package engine

import (
	"math/rand"
	"runtime"
	"time"

	"repro/internal/budget"
	"repro/internal/lp"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/topk"
	"repro/internal/workload"
)

// Market is one running auction market: an instance, the accounting
// state, and the bid engine for the chosen method. It is the
// sequential unit of the serving engine — each keyword shard drives
// one or more Markets — and also the implementation behind the
// sequential strategy.World facade. Distinct Markets over the same
// instance, query stream, and click seed evolve identically (up to
// winner-determination ties), which is how the four methods are
// compared on equal footing. A Market is not safe for concurrent use;
// concurrency lives one level up, in Engine.
type Market struct {
	Inst   *workload.Instance
	Method Method

	t       int // auctions processed
	acct    *Accounting
	rng     *rand.Rand // user click simulation
	pricing Pricing

	// lane is the market's slice of the cross-keyword budget ledger;
	// nil when budget enforcement is off, in which case every
	// budget-related branch below is skipped and the market behaves
	// byte-identically to a pre-budget market. When set, the market
	// consults it before winner determination (gated advertisers score
	// zero and are never assigned — dropNonPositive discards
	// non-positive edges) and reports every click charge to it with
	// exactly the values added to the accounting.
	lane *budget.Lane

	// reserve is the per-click reserve price (0 = off): advertisers
	// whose squash-weighted bid w·bid falls below it sit out the
	// auction in every method, and every charged click pays at least
	// it. curRel/curW carry the in-flight auction's broad-match
	// relevance and squashed pricing weight (both 1 for exact
	// routing), and resCut caches reserve/curW — the raw-bid
	// participation cutoff — once per auction.
	reserve float64
	curRel  float64
	curW    float64
	resCut  float64

	ex    *explicitEngine
	talu  *taluEngine
	heavy *heavyEngine

	// LPStats accumulates simplex iterations (method LP only).
	LPStats int

	// Steady-state scratch for the allocation-free RH hot path: the
	// reduced-matching workspace, the per-keyword float bid vector, and
	// the reusable outcome. weightFn is built once (capturing bidf) so
	// per-auction winner determination creates no closures.
	ws       *matching.Workspace
	bidf     []float64
	weightFn func(i, j int) float64
	out      Outcome

	// GSP pricing scratch: assignedMark[i] == assignedStamp iff
	// advertiser i holds a slot in the current auction (the stamp
	// avoids clearing an O(n) array per auction), and clickedWinners
	// collects this auction's charged advertisers for the TALU
	// after-auction recomputes.
	assignedMark   []int
	assignedStamp  int
	clickedWinners []int

	// Per-auction trace sampling (nil tracer = off): sampled auctions
	// stamp solve/price/charge boundaries into the shared ring.
	tracer     *obs.Tracer
	traceKw    int32
	traceShard int32

	// VCG counterfactual scratch (PricingVCG only): a dedicated
	// workspace so the per-winner reduced solves never disturb the main
	// solve's candidate lists, an advOf sink, the skipped-advertiser
	// cursor read by vcgWeightFn (built once — no per-solve closures),
	// and the reused LP sub-matrix.
	vcgWS       *matching.Workspace
	vcgAdvOf    []int
	vcgSkip     int
	vcgWeightFn func(r, j int) float64
	vcgFlat     []float64
	vcgRows     [][]float64
}

// NewMarket builds a fresh market with generalized second pricing.
// clickSeed drives the simulated user clicks; two markets with equal
// instances and seeds see identical users.
func NewMarket(inst *workload.Instance, method Method, clickSeed int64) *Market {
	return NewMarketPriced(inst, method, PricingGSP, clickSeed)
}

// NewMarketPriced is NewMarket with an explicit payment rule.
func NewMarketPriced(inst *workload.Instance, method Method, pricing Pricing, clickSeed int64) *Market {
	return NewMarketBudget(inst, method, pricing, clickSeed, nil)
}

// NewMarketBudget is NewMarketPriced with a budget-ledger lane. A nil
// lane disables budget enforcement for this market (the historical
// behavior, bit for bit).
func NewMarketBudget(inst *workload.Instance, method Method, pricing Pricing, clickSeed int64, lane *budget.Lane) *Market {
	return NewMarketOpts(inst, MarketOpts{Method: method, Pricing: pricing, ClickSeed: clickSeed, Lane: lane})
}

// MarketOpts bundles every market-construction knob; the zero value
// of each field is its historical default, so the positional
// constructors above are thin wrappers.
type MarketOpts struct {
	// Method selects the winner-determination pipeline.
	Method Method
	// Pricing selects the payment rule.
	Pricing Pricing
	// ClickSeed seeds the simulated user clicks.
	ClickSeed int64
	// Lane is the market's slice of the cross-keyword budget ledger;
	// nil disables budget enforcement.
	Lane *budget.Lane
	// HeavyParallelism is the worker count of the heavyweight pattern
	// enumeration (MethodHeavy only): 0 means GOMAXPROCS, 1 fully
	// sequential, and any setting is capped per auction by the 2^k
	// pattern count. Outcomes are byte-identical at every setting —
	// this is a pure performance knob, like Config.Shards one level up.
	HeavyParallelism int
	// Reserve is the per-click reserve price: advertisers bidding
	// below it (below Reserve/weight under a broad-match squash
	// weight) are excluded from winner determination in every method,
	// and every charged click pays at least Reserve. 0 — the zero
	// value — disables reserve pricing byte-identically.
	Reserve float64
	// Tracer, when non-nil, samples this market's auctions into the
	// per-auction trace ring (obs.Tracer's deterministic 1-in-N);
	// TraceKeyword/TraceShard identify the market in the events. Nil
	// disables tracing at the cost of one nil check per auction.
	Tracer       *obs.Tracer
	TraceKeyword int
	TraceShard   int
}

// NewMarketOpts builds a market from an options bundle — the full
// constructor behind NewMarket/NewMarketPriced/NewMarketBudget.
func NewMarketOpts(inst *workload.Instance, o MarketOpts) *Market {
	method, pricing := o.Method, o.Pricing
	m := &Market{
		Inst:       inst,
		Method:     method,
		pricing:    pricing,
		acct:       newAccounting(inst.N, inst.Keywords),
		rng:        rand.New(rand.NewSource(o.ClickSeed)),
		lane:       o.Lane,
		reserve:    o.Reserve,
		curRel:     1,
		curW:       1,
		tracer:     o.Tracer,
		traceKw:    int32(o.TraceKeyword),
		traceShard: int32(o.TraceShard),
	}
	if method == MethodRHTALU {
		m.talu = newTALUEngine(inst, m.acct, o.Lane, o.Reserve > 0)
	} else {
		m.ex = newExplicitEngine(inst)
	}
	m.ws = matching.NewWorkspace()
	m.bidf = make([]float64, inst.N)
	m.weightFn = func(i, j int) float64 {
		return m.Inst.ClickProb[i][j] * m.bidf[i]
	}
	if method == MethodHeavy {
		m.heavy = newHeavyEngine(inst, m, o.HeavyParallelism)
	}
	if pricing == PricingVCG {
		m.vcgWS = matching.NewWorkspace()
		m.vcgAdvOf = make([]int, inst.Slots)
		m.vcgWeightFn = func(r, j int) float64 {
			i := r
			if i >= m.vcgSkip {
				i++
			}
			return m.Inst.ClickProb[i][j] * m.bidf[i]
		}
	}
	k := inst.Slots
	m.out = Outcome{
		AdvOf:         make([]int, k),
		PricePerClick: make([]float64, k),
		Clicked:       make([]bool, k),
	}
	m.assignedMark = make([]int, inst.N)
	return m
}

// Pricing reports the market's payment rule.
func (m *Market) Pricing() Pricing { return m.pricing }

// gateBids applies the budget gate to the effective bid vector: an
// advertiser over its cap (or paced out) participates with a bid of
// zero this auction — the serving-side analogue of the sqlmini budget
// program's "UPDATE Keywords SET bid = 0". Bid *state* keeps evolving
// normally (the gate masks participation, not the program), which is
// exactly what the TALU path's lazy gating does, keeping the methods
// equivalent under budgets. Zero bids skip the gate: they cannot win
// regardless. No-op without a lane.
func (m *Market) gateBids() {
	if m.lane == nil {
		return
	}
	for i := range m.bidf {
		if m.bidf[i] != 0 && !m.lane.Allowed(i) {
			m.bidf[i] = 0
		}
	}
}

// gateReserve applies the reserve-price filter to the effective bid
// vector: an advertiser whose raw bid falls below resCut = reserve/w
// — i.e. whose squash-weighted bid w·bid falls below the reserve —
// participates with a bid of zero this auction, exactly like the
// budget gate masks over-cap advertisers. No-op when the reserve is
// off or nothing this auction set a cutoff.
func (m *Market) gateReserve() {
	if m.resCut == 0 {
		return
	}
	for i := range m.bidf {
		if m.bidf[i] != 0 && m.bidf[i] < m.resCut {
			m.bidf[i] = 0
		}
	}
}

// clickProbOf is the click probability the pricing and user-simulation
// stages see: the instance matrix, conditioned on the realized
// heavyweight pattern under MethodHeavy.
func (m *Market) clickProbOf(i, j int) float64 {
	if m.heavy != nil {
		return m.heavy.model.ClickProb(i, j, m.heavy.pattern)
	}
	return m.Inst.ClickProb[i][j]
}

// Bid returns advertiser i's current bid for keyword q — used by the
// engine-equivalence tests.
func (m *Market) Bid(i, q int) int {
	if m.talu != nil {
		return m.talu.bid(i, q)
	}
	return m.ex.bid[i][q]
}

// Accounting exposes the provider-maintained state (read-only use).
func (m *Market) Accounting() *Accounting { return m.acct }

// BudgetLane exposes the market's ledger lane (nil when budget
// enforcement is off) — inspection and test use.
func (m *Market) BudgetLane() *budget.Lane { return m.lane }

// FlushBudget publishes the market's unpublished spend into the
// ledger snapshot. Must run on the goroutine that owns the market
// (the streaming layer's in-band flush fences, the batch engine after
// its workers join). No-op without a lane.
func (m *Market) FlushBudget() {
	if m.lane != nil {
		m.lane.Publish()
	}
}

// SetLane swaps the market's budget lane — the budget-reset fence.
// The old lane's tail is published first (its ledger's settlement
// reads stay exact), then every budget consumer in the market (the
// gate, the TALU bid sources, the charge path) switches to the new
// lane. The market's own state — bids, accounting, ROI, click RNG —
// is untouched: a reset re-admits exhausted advertisers without
// rewinding anyone's trajectory. Must run on the owning goroutine
// between auctions. Toggling enforcement on or off is not supported
// (the TALU fast path bakes the gate's presence into its sources at
// construction): both lanes must be non-nil, or both nil.
func (m *Market) SetLane(lane *budget.Lane) {
	if (m.lane == nil) != (lane == nil) {
		panic("engine: SetLane cannot toggle budget enforcement on a live market")
	}
	if m.lane != nil {
		m.lane.Publish()
	}
	m.lane = lane
	if m.talu != nil {
		m.talu.setLane(lane)
	}
}

// Close releases the market's background resources — today that is
// the heavyweight determiner's parked worker goroutines (MethodHeavy
// with HeavyParallelism > 1). Idempotent; must not race a Run. A
// market dropped without Close leaks nothing permanently (the
// determiner's finalizer stops its pool), Close just makes the
// reclamation deterministic — the engine calls it when a churn fence
// replaces a shard's markets, and Engine.Close sweeps the rest.
func (m *Market) Close() {
	if m.heavy != nil {
		m.heavy.det.Release()
	}
}

// Auctions returns the number of auctions processed.
func (m *Market) Auctions() int { return m.t }

// ProgramEvaluations returns the cumulative number of per-advertiser
// strategy evaluations the market has performed. The explicit engine
// (LP, H, RH) runs every program on every auction — n·t evaluations —
// while the TALU engine re-evaluates a program only when it wins a
// click or one of its triggers fires (Section IV's point, made
// quantitative).
func (m *Market) ProgramEvaluations() int64 {
	if m.talu != nil {
		return m.talu.recomputes
	}
	return int64(m.Inst.N) * int64(m.t)
}

// RunAuction advances the market by one auction on keyword q and
// returns a freshly allocated Outcome the caller may retain — the
// historical World API. Hot paths use Run instead.
func (m *Market) RunAuction(q int) *Outcome {
	return m.Run(q).Clone()
}

// Run advances the market by one auction on keyword q: program
// evaluation, winner determination, GSP pricing, user simulation, and
// accounting. The returned Outcome is owned by the market and valid
// only until the next Run; under MethodRH and MethodRHTALU the whole
// call is allocation-free in steady state.
func (m *Market) Run(q int) *Outcome {
	return m.RunWeighted(q, 1, 1)
}

// RunWeighted is Run for a broad-matched query: rel is the query's
// relevance to this market's keyword (it scales the winners' click
// probabilities in the user simulation — a loosely related query
// draws proportionally fewer clicks), and w is the squashed pricing
// weight (every charge is scaled by w, the winner's cap becomes
// w·bid, and reserve participation requires w·bid ≥ reserve).
// RunWeighted(q, 1, 1) is Run, byte for byte: every weighted branch
// is gated on rel != 1, w != 1, or reserve > 0.
func (m *Market) RunWeighted(q int, rel, w float64) *Outcome {
	m.t++
	t := float64(m.t)
	k := m.Inst.Slots

	// Trace sampling: the 1-in-N decision is one atomic add; only
	// sampled auctions pay for time.Now stamps. ev lives on the stack —
	// TraceRing.Append copies it into the ring's preallocated slots.
	var ev obs.TraceEvent
	traced := m.tracer.Sample()
	if traced {
		ev.Keyword = m.traceKw
		ev.Shard = m.traceShard
		ev.Auction = int64(m.t)
		ev.Start = time.Now().UnixNano()
	}

	m.curRel, m.curW = rel, w
	m.resCut = 0
	if m.reserve > 0 {
		m.resCut = m.reserve / w
	}
	if m.talu != nil {
		m.talu.resCut = m.resCut
	}

	if m.lane != nil {
		// Advance the budget lane: one gating decision per advertiser
		// for this auction, and a snapshot publish on the refresh
		// cadence. Must precede bid evaluation — both engines consult
		// the gate during selection.
		m.lane.BeginAuction()
	}

	out := &m.out
	out.Query = q
	out.Revenue = 0
	for j := 0; j < k; j++ {
		out.PricePerClick[j] = 0
		out.Clicked[j] = false
	}

	var lists [][]topk.Item
	var advOf []int

	if m.talu != nil {
		// The §IV pipeline: trigger firings, logical updates, per-slot
		// threshold algorithm, then winner determination in the
		// market's workspace — writing straight into the reused
		// outcome, zero allocations in steady state.
		lists = m.talu.prepare(q, t, m.ws, out.AdvOf)
		advOf = out.AdvOf
	} else {
		m.ex.step(q, t, m.acct)
		for i := 0; i < m.Inst.N; i++ {
			m.bidf[i] = float64(m.ex.bid[i][q])
		}
		m.gateBids()
		m.gateReserve()
		score := m.weightFn

		// Candidate lists (k+1 deep) serve both the reduced matching
		// and GSP pricing; see the pricing loop for why k+1 suffices.
		// Under VCG pricing the methods that need lists only for GSP
		// (H, LP, Heavy) skip building them.
		switch m.Method {
		case MethodHeavy:
			// Section III-F: the 2^k pattern enumeration in the market's
			// HeavyDeterminer; the realized heavyweight pattern then
			// conditions GSP candidate scores, per-click prices, and the
			// user simulation.
			m.heavy.determine(m.bidf, out.AdvOf)
			advOf = out.AdvOf
			if m.pricing == PricingGSP {
				lists = m.ws.SelectCandidates(m.Inst.N, k, k+1, m.heavy.scoreFn)
			}
		case MethodRH:
			// The scalable serving path: workspace-backed top-(k+1)
			// selection and reduced assignment, zero allocations in
			// steady state.
			lists = m.ws.SelectCandidates(m.Inst.N, k, k+1, score)
			m.ws.AssignCandidatesInto(score, lists, out.AdvOf)
			advOf = out.AdvOf
		case MethodRHParallel:
			lists = topk.ParallelSelectDepth(m.Inst.N, k, k+1, runtime.GOMAXPROCS(0), score)
			advOf, _ = matching.AssignCandidates(score, lists)
			copy(out.AdvOf, advOf)
			advOf = out.AdvOf
		case MethodH:
			advOf = matching.MaxWeightFunc(m.Inst.N, k, score).AdvOf
			if m.pricing == PricingGSP {
				lists = scanLists(m.Inst.N, k, score)
			}
			copy(out.AdvOf, advOf)
			advOf = out.AdvOf
		case MethodLP:
			w := make([][]float64, m.Inst.N)
			for i := range w {
				w[i] = make([]float64, k)
				for j := 0; j < k; j++ {
					w[i][j] = score(i, j)
				}
			}
			res, err := lp.SolveAssignment(w)
			if err != nil {
				// The assignment LP is always feasible and bounded; an
				// error here is a solver bug worth crashing on.
				panic("engine: assignment LP failed: " + err.Error())
			}
			m.LPStats += res.Iterations
			advOf = res.AdvOf
			if m.pricing == PricingGSP {
				lists = scanLists(m.Inst.N, k, score)
			}
			copy(out.AdvOf, advOf)
			advOf = out.AdvOf
		default:
			panic("engine: unknown method")
		}
	}

	if traced {
		ev.Solve = time.Now().UnixNano()
	}

	if m.pricing == PricingVCG {
		// Vickrey pricing: one counterfactual winner-determination
		// solve per winner in the dedicated VCG workspace (engine/vcg.go).
		// The TALU engine fills bidf lazily — its explicit bid vector
		// otherwise never materializes.
		if m.talu != nil {
			for i := 0; i < m.Inst.N; i++ {
				m.bidf[i] = float64(m.talu.bid(i, q))
			}
			// Same gates the selection phase applied (decisions are
			// cached per auction), so the counterfactual solves see the
			// same effective bids.
			m.gateBids()
			m.gateReserve()
		}
		m.priceVCG(advOf, out)
		if m.curW != 1 || m.reserve > 0 {
			// The broad-match/reserve price transform: counterfactual
			// prices scale by the squash weight and floor at the
			// reserve (participants cleared w·bid ≥ reserve, so the
			// floor never exceeds a winner's weighted bid).
			for j, i := range advOf {
				if i < 0 {
					continue
				}
				p := out.PricePerClick[j]
				if m.curW != 1 {
					p *= m.curW
				}
				if m.reserve > 0 && p < m.reserve {
					p = m.reserve
				}
				out.PricePerClick[j] = p
			}
		}
	} else {
		// Generalized second pricing: the winner of slot j pays, per
		// click, the highest competing score for that slot divided by his
		// own click probability — the amount that prices the slot at its
		// best alternative use — capped at his own bid (Section V's
		// "slight generalization of generalized second-pricing"). Under
		// MethodHeavy both the candidate scores and the divisor are
		// conditioned on the realized heavyweight pattern.
		m.assignedStamp++
		for _, i := range advOf {
			if i >= 0 {
				m.assignedMark[i] = m.assignedStamp
			}
		}
		for j, i := range advOf {
			if i < 0 {
				continue
			}
			runner := 0.0
			for _, it := range lists[j] {
				if m.assignedMark[it.ID] != m.assignedStamp {
					runner = it.Score
					break
				}
			}
			// A zero click probability is possible only for a pattern-forced
			// heavyweight (fully shadowed); such a winner is never charged.
			price := 0.0
			if cp := m.clickProbOf(i, j); cp > 0 {
				price = runner / cp
			}
			if bid := float64(m.Bid(i, q)); price > bid {
				price = bid
			}
			if m.curW != 1 {
				// Squashed pricing: the per-click charge — runner-up
				// pressure and bid cap alike — scales by the query's
				// weight, so a loosely matched impression is cheaper.
				price *= m.curW
			}
			if m.reserve > 0 && price < m.reserve {
				// The reserve is also the price floor; participants
				// cleared w·bid ≥ reserve, so the floor respects caps.
				price = m.reserve
			}
			out.PricePerClick[j] = price
		}
	}

	if traced {
		ev.Price = time.Now().UnixNano()
	}

	// User action: one uniform draw per slot (always k draws, so
	// markets with equal click seeds stay aligned), a click when the
	// draw falls under the winner's click probability (conditioned on
	// the heavyweight pattern under MethodHeavy).
	m.clickedWinners = m.clickedWinners[:0]
	for j := 0; j < k; j++ {
		u := m.rng.Float64()
		i := advOf[j]
		if i < 0 {
			continue
		}
		cp := m.clickProbOf(i, j)
		if m.curRel != 1 {
			// Broad match: a partially relevant impression draws
			// proportionally fewer clicks. The draw count is unchanged
			// (always k per auction), so equal click seeds stay aligned.
			cp *= m.curRel
		}
		if u >= cp {
			continue
		}
		out.Clicked[j] = true
		price := out.PricePerClick[j]
		out.Revenue += price
		m.acct.SpentTotal[i] += price
		m.acct.SpentKw[i][q] += price
		m.acct.GainedKw[i][q] += float64(m.Inst.Value[i][q])
		if m.lane != nil {
			// Report the identical value the accounting recorded, so
			// the lane's cumulative array stays bitwise equal to
			// SpentTotal — the ledger's drain-exactness contract.
			m.lane.Charge(i, price)
		}
		m.clickedWinners = append(m.clickedWinners, i)
	}

	if traced {
		ev.Charge = time.Now().UnixNano()
	}

	if m.talu != nil {
		m.talu.afterAuction(t, m.clickedWinners)
	}

	if traced {
		ev.Done = time.Now().UnixNano()
		m.tracer.Ring.Append(&ev)
	}
	return out
}
