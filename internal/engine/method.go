package engine

// Method selects the winner-determination pipeline of Section V.
type Method int

// The four methods of Figure 12, plus the parallel-RH ablation.
const (
	// MethodLP solves the per-auction assignment LP with the simplex
	// method.
	MethodLP Method = iota
	// MethodH runs the Hungarian algorithm on the full bipartite graph.
	MethodH
	// MethodRH runs the reduced-graph algorithm of Section III-E.
	MethodRH
	// MethodRHTALU is RH plus the program-evaluation reductions of
	// Section IV (threshold algorithm + logical updates).
	MethodRHTALU
	// MethodRHParallel is RH with the tree-parallel top-k scan.
	MethodRHParallel
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodLP:
		return "LP"
	case MethodH:
		return "H"
	case MethodRH:
		return "RH"
	case MethodRHTALU:
		return "RHTALU"
	case MethodRHParallel:
		return "RH-parallel"
	default:
		return "Method(?)"
	}
}
