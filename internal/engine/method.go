package engine

// Method selects the winner-determination pipeline of Section V.
type Method int

// The four methods of Figure 12, plus the parallel-RH ablation and
// the Section III-F heavyweight path.
const (
	// MethodLP solves the per-auction assignment LP with the simplex
	// method.
	MethodLP Method = iota
	// MethodH runs the Hungarian algorithm on the full bipartite graph.
	MethodH
	// MethodRH runs the reduced-graph algorithm of Section III-E.
	MethodRH
	// MethodRHTALU is RH plus the program-evaluation reductions of
	// Section IV (threshold algorithm + logical updates).
	MethodRHTALU
	// MethodRHParallel is RH with the tree-parallel top-k scan.
	MethodRHParallel
	// MethodHeavy is the Section III-F heavyweight/lightweight model on
	// the serving path: winner determination enumerates the 2^k
	// heavyweight patterns through a reusable core.HeavyDeterminer, and
	// click probabilities (pricing, user simulation) are conditioned on
	// the realized pattern. Requires Slots ≤ 20; per-auction cost grows
	// as 2^Slots, so it is meant for small slot counts.
	MethodHeavy
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodLP:
		return "LP"
	case MethodH:
		return "H"
	case MethodRH:
		return "RH"
	case MethodRHTALU:
		return "RHTALU"
	case MethodRHParallel:
		return "RH-parallel"
	case MethodHeavy:
		return "Heavy"
	default:
		return "Method(?)"
	}
}

// Pricing selects the payment rule applied to each auction's winners.
type Pricing int

const (
	// PricingGSP is the generalized second-price rule of Section V: the
	// winner of a slot pays, per click, the best competing score for
	// that slot divided by his own click probability, capped at his bid.
	PricingGSP Pricing = iota
	// PricingVCG charges each winner his social opportunity cost
	// (Theorem 1 / Section III-E's "very simple computation" given
	// winner determination): one counterfactual winner-determination
	// solve per winner, run in a dedicated reused workspace rather than
	// as a cold auction. The expected charge is converted to a per-click
	// price by dividing by the winner's click probability, so realized
	// revenue matches the VCG expectation.
	PricingVCG
)

// String implements fmt.Stringer.
func (p Pricing) String() string {
	switch p {
	case PricingGSP:
		return "GSP"
	case PricingVCG:
		return "VCG"
	default:
		return "Pricing(?)"
	}
}
