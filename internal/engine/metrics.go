package engine

import (
	"time"

	"repro/internal/budget"
	"repro/internal/obs"
)

// Metrics is the engine's slice of the telemetry registry: one lane
// per shard for the serving counters (each shard goroutine writes
// only its own cache-line-padded lane, so instrumentation adds a
// handful of wait-free atomic operations per auction and no
// contention), plus the per-method auction latency histogram shared
// by the batch workers and the streaming layer's persistent workers.
//
// The counters are the authoritative serving account: stream.Stats is
// a view over them (Served, Revenue, Clicks, Filled, TotalSlots read
// the lanes in shard order, reproducing the legacy per-shard
// accumulation bit for bit), and the batch Stats' per-batch totals
// reconcile against them in TestStatsViewMatchesRegistry.
type Metrics struct {
	Registry *obs.Registry

	// Per-shard serving counters; lane = shard id.
	Auctions *obs.Counter
	Revenue  *obs.FloatCounter
	Clicks   *obs.Counter
	Filled   *obs.Counter
	Slots    *obs.Counter

	// Latency is the per-auction service latency histogram (dequeue to
	// outcome, nanoseconds) of the configured method — the source of
	// the streaming layer's p50/p95/p99.
	Latency *obs.Histogram
}

// methodMetricName maps a Method to its Prometheus-safe lowercase
// token (metric names admit [a-z0-9_] only).
func methodMetricName(m Method) string {
	switch m {
	case MethodLP:
		return "lp"
	case MethodH:
		return "h"
	case MethodRH:
		return "rh"
	case MethodRHTALU:
		return "rhtalu"
	case MethodRHParallel:
		return "rh_parallel"
	case MethodHeavy:
		return "heavy"
	default:
		return "unknown"
	}
}

// newMetrics builds and registers the engine's instruments. Called
// once from New, before any serving, so every hot-path handle is
// preregistered (registration is the only allocating step).
func newMetrics(e *Engine) *Metrics {
	reg := obs.NewRegistry()
	shards := e.cfg.Shards
	m := &Metrics{
		Registry: reg,
		Auctions: reg.Counter("ssa_auctions_total",
			"auctions served, across batch and streaming paths", shards).
			RenderLanes("shard", nil),
		Revenue: reg.FloatCounter("ssa_revenue_total",
			"total revenue charged across all served auctions", shards),
		Clicks: reg.Counter("ssa_clicks_total",
			"clicked impressions", shards),
		Filled: reg.Counter("ssa_filled_slots_total",
			"slots filled by a winner", shards),
		Slots: reg.Counter("ssa_slots_total",
			"slots offered (filled or not)", shards),
		Latency: reg.Histogram("ssa_auction_latency_"+methodMetricName(e.cfg.Method)+"_ns",
			"per-auction service latency, nanoseconds, method "+e.cfg.Method.String()),
	}
	reg.Gauge("ssa_engine_queue_depth",
		"queued queries across the batch feed channels", func() float64 {
			var n int
			for _, ch := range e.chans {
				n += len(ch)
			}
			return float64(n)
		})
	if e.cfg.Budget.Policy != budget.PolicyOff {
		reg.Gauge("ssa_budget_spent",
			"published budget spend of the current ledger", func() float64 {
				if led := e.Ledger(); led != nil {
					spent, _, _ := led.Totals()
					return spent
				}
				return 0
			})
		reg.Gauge("ssa_budget_exhausted",
			"budgeted advertisers at or over their cap (published)", func() float64 {
				if led := e.Ledger(); led != nil {
					_, ex, _ := led.Totals()
					return float64(ex)
				}
				return 0
			})
		reg.Gauge("ssa_budget_denied",
			"published budget-gate denials of the current ledger", func() float64 {
				if led := e.Ledger(); led != nil {
					_, _, denied := led.Totals()
					return float64(denied)
				}
				return 0
			})
	}
	if w := e.cfg.Journal; w != nil {
		fsync := reg.Histogram("ssa_journal_fsync_ns",
			"journal fsync latency, nanoseconds")
		w.SetFsyncRecorder(fsync)
		reg.Gauge("ssa_journal_records",
			"spend records appended this journal session", func() float64 {
				return float64(w.Stats().Records)
			})
		reg.Gauge("ssa_journal_snapshots",
			"snapshot compactions performed this session", func() float64 {
				return float64(w.Stats().Snapshots)
			})
		reg.Gauge("ssa_journal_bytes",
			"journal bytes since the last snapshot", func() float64 {
				return float64(w.Stats().JournalBytes)
			})
		reg.Gauge("ssa_journal_stale_dropped",
			"stale lane flushes dropped after epoch changes", func() float64 {
				return float64(w.Stats().StaleDropped)
			})
		reg.Gauge("ssa_journal_snapshot_age_seconds",
			"seconds since the last snapshot was written", func() float64 {
				ns := w.LastSnapshotNanos()
				if ns == 0 {
					return 0
				}
				return time.Since(time.Unix(0, ns)).Seconds()
			})
	}
	return m
}

// observe accounts one served auction into shard's lanes — the
// registry twin of Totals.Add, counting exactly the same quantities.
func (m *Metrics) observe(shard int, out *Outcome) {
	m.Auctions.Inc(shard)
	m.Revenue.Add(shard, out.Revenue)
	var clicks, filled int64
	for j := range out.AdvOf {
		if out.AdvOf[j] >= 0 {
			filled++
		}
		if out.Clicked[j] {
			clicks++
		}
	}
	m.Slots.Add(shard, int64(len(out.AdvOf)))
	m.Filled.Add(shard, filled)
	m.Clicks.Add(shard, clicks)
}

// Metrics returns the engine's telemetry instruments; never nil.
func (e *Engine) Metrics() *Metrics { return e.met }

// TraceRing returns the per-auction trace ring, or nil when tracing
// is disabled (Config.TraceSample == 0).
func (e *Engine) TraceRing() *obs.TraceRing {
	if e.tracer == nil {
		return nil
	}
	return e.tracer.Ring
}
