package engine

// Outcome reports one auction's results.
type Outcome struct {
	// Query is the keyword of this auction.
	Query int
	// AdvOf maps slot index to advertiser index or −1.
	AdvOf []int
	// PricePerClick is the GSP charge for each slot's winner.
	PricePerClick []float64
	// Clicked marks the slots whose ads were clicked.
	Clicked []bool
	// Revenue is the total amount charged this auction.
	Revenue float64
}

// Clone returns a deep copy safe to retain after the producing
// Market's next Run.
func (o *Outcome) Clone() *Outcome {
	c := &Outcome{
		Query:         o.Query,
		AdvOf:         make([]int, len(o.AdvOf)),
		PricePerClick: make([]float64, len(o.PricePerClick)),
		Clicked:       make([]bool, len(o.Clicked)),
		Revenue:       o.Revenue,
	}
	copy(c.AdvOf, o.AdvOf)
	copy(c.PricePerClick, o.PricePerClick)
	copy(c.Clicked, o.Clicked)
	return c
}

// Equal reports whether two outcomes are identical (prices compared
// exactly — the equivalence guarantees of this package are bit-level,
// not approximate).
func (o *Outcome) Equal(p *Outcome) bool {
	if o.Query != p.Query || o.Revenue != p.Revenue ||
		len(o.AdvOf) != len(p.AdvOf) {
		return false
	}
	for j := range o.AdvOf {
		if o.AdvOf[j] != p.AdvOf[j] ||
			o.PricePerClick[j] != p.PricePerClick[j] ||
			o.Clicked[j] != p.Clicked[j] {
			return false
		}
	}
	return true
}
