package engine

import (
	"math"
	"sort"

	"repro/internal/budget"
	"repro/internal/logical"
	"repro/internal/matching"
	"repro/internal/ta"
	"repro/internal/topk"
	"repro/internal/workload"
)

// taluEngine implements Section IV: instead of running every bidding
// program on every auction, it exploits the structure of the ROI
// heuristic.
//
// Logical updates (Section IV-B). For each keyword, bidders are
// partitioned into an increment list, a decrement list, and a
// constant list according to what the Figure 5 program would do to
// their bid on a query for that keyword. Each list is sorted by
// stored bid and carries a shared adjustment variable, so "every
// underspending max-ROI bidder raises his bid by one" is a single
// O(1) adjustment. A bidder changes lists only when
//
//   - he wins a click (his spending and ROI statistics move), or
//   - a shared monotone variable crosses a precomputed critical value:
//     the time at which a loser's falling spend rate meets his target,
//     or the per-keyword auction count at which his drifting bid would
//     hit zero or his maximum —
//
// and those crossings are managed by trigger queues with generation
// tags, so the per-auction maintenance cost is proportional to the
// number of winners and due triggers, not to n.
//
// Threshold algorithm (Section IV-A). The per-slot top-(k+1) bidders
// by clickProb·bid are found by Fagin's threshold algorithm over two
// sorted sources — the static click-probability list for the slot and
// the merged (increment ∪ decrement ∪ constant) bid lists — again
// without touching most bidders.
//
// Steady-state allocation discipline. Everything the per-auction path
// touches is persistent: the per-slot SliceSources and their Get
// closures, the one reusable MergedSource (Reset per slot instead of
// rebuilt), the runner's heap and scratch, the per-slot candidate
// list backing arrays, the aggregation and score closures, and the
// trigger queues (index-based registrations, pre-grown). Group
// membership churn recycles treap nodes through a per-keyword shared
// pool (a bidder occupies exactly one of a keyword's three groups, so
// the pool never grows after construction), and winner determination
// runs in the caller's matching.Workspace. A steady-state auction
// therefore performs zero heap allocations — the guarantee
// TestTALUSteadyStateAllocs enforces.
type taluEngine struct {
	inst *workload.Instance
	acct *Accounting

	// lane is the market's budget-ledger lane (nil = enforcement off).
	// Gating is lazy, preserving Section IV's sublinearity: instead of
	// scanning all n advertisers per auction, the gate is consulted
	// only for advertisers the threshold algorithm actually touches —
	// the merged bid source's random accesses return 0 for gated
	// advertisers (gatedBidSource below), and the winner-determination
	// score does the same. Sorted accesses still surface the ungated
	// stored bids, which keeps the TA threshold a valid upper bound
	// (gating only lowers true scores), so the algorithm remains
	// correct and merely scans past gated entries. Because the explicit
	// engine gates by zeroing effective bids while leaving bid *state*
	// drifting, the two engines stay exactly equivalent under budgets.
	// gated is the lane-consulting bid-source wrapper wired into srcs
	// at construction; setLane repoints both for budget resets.
	lane  *budget.Lane
	gated *gatedBidSource

	// resCut is the in-flight auction's reserve cutoff (reserve/w; 0
	// when the reserve is off), set by Market.RunWeighted before
	// prepare. Like the budget gate it is applied lazily: the bid
	// source's random accesses return 0 for below-cutoff advertisers
	// (reservedBidSource), sorted accesses pass through so the TA
	// threshold stays a sound upper bound, and the
	// winner-determination score applies the same cutoff.
	resCut float64

	// groups[q][mode] holds the bidders whose behavior for keyword q
	// is mode (modeConst/modeInc/modeDec); member[i][q] records which.
	groups [][]*logical.Group
	member [][]int8
	// genTime[i] is bumped on every recompute of bidder i,
	// invalidating his pending time trigger; genKw[i][q] is bumped
	// only when (i, q)'s group membership actually changes,
	// invalidating just that keyword's count trigger. Keeping the two
	// apart lets a recompute skip keywords whose behavior is
	// unchanged: their pending count triggers remain exactly correct,
	// because the critical count registered at join time assumed
	// uninterrupted membership — which is precisely what "unchanged"
	// means.
	genTime []int
	genKw   [][]int

	timeTr logical.Triggers   // keyed on auction time
	kwTr   []logical.Triggers // keyed on per-keyword auction counts
	count  []int              // per-keyword auction counters

	// wSorted[j] lists advertisers by descending click probability in
	// slot j — the static sorted lists the threshold algorithm reads.
	// wSources[j] adapts the list (plus its invariant random-access
	// closure) as a ta.Source, reset per auction rather than rebuilt.
	wSorted  [][]topk.Item
	wSources []*ta.SliceSource
	// bidSource is the one merged increment ∪ decrement ∪ constant
	// view, re-seeded onto the auction keyword's groups before each
	// slot's threshold-algorithm run.
	bidSource *logical.MergedSource
	// srcs[j] is the invariant source pair {wSources[j], bidSource}
	// handed to the runner for slot j.
	srcs [][]ta.Source
	// lists[j] is slot j's top-(k+1) candidate list, workspace-style
	// reused backing arrays filled by TopKInto.
	lists [][]topk.Item
	// product aggregates (clickProb, bid) — invariant, built once.
	product func(v []float64) float64
	// score is the winner-determination weight clickProb·bid for the
	// in-flight auction's keyword (read through curQ) — built once.
	score func(i, j int) float64
	// runner is the reusable threshold-algorithm executor.
	runner *ta.Runner

	t    float64 // current auction time
	curQ int     // keyword of the auction being processed

	// recomputes counts strategy re-evaluations: the TALU analogue of
	// "programs run". The explicit engine runs all n programs every
	// auction; this engine touches a program only on wins and trigger
	// firings, and the counter makes that claim measurable.
	recomputes int64
}

// newTALUEngine builds the §IV engine. withReserve bakes the
// reserve-consulting bid-source wrapper into srcs, mirroring how lane
// presence bakes in the budget gate; the cutoff itself (resCut) is set
// per auction by Market.RunWeighted.
func newTALUEngine(inst *workload.Instance, acct *Accounting, lane *budget.Lane, withReserve bool) *taluEngine {
	e := &taluEngine{
		inst:    inst,
		acct:    acct,
		lane:    lane,
		groups:  make([][]*logical.Group, inst.Keywords),
		member:  make([][]int8, inst.N),
		genTime: make([]int, inst.N),
		genKw:   make([][]int, inst.N),
		kwTr:    make([]logical.Triggers, inst.Keywords),
		count:   make([]int, inst.Keywords),
		runner:  ta.NewRunner(inst.N),
		curQ:    -1,
	}
	var seed uint64 = 1
	for q := 0; q < inst.Keywords; q++ {
		// The three groups of a keyword share one treap-node pool:
		// every bidder is in exactly one of them, so membership churn
		// recycles nodes instead of allocating.
		e.groups[q] = logical.NewGroupSet(seed, inst.N, 3)
		seed += 3
	}
	for i := 0; i < inst.N; i++ {
		e.member[i] = make([]int8, inst.Keywords)
		e.genKw[i] = make([]int, inst.Keywords)
	}

	// Pre-grow the trigger queues: a keyword queue holds at most one
	// fresh registration per bidder plus stale leftovers; the time
	// queue likewise. 2n bounds the pending depth in practice, keeping
	// Add off the allocator during serving.
	e.timeTr.Grow(2*inst.N + 64)
	for q := range e.kwTr {
		e.kwTr[q].Grow(2*inst.N + 64)
	}

	// Static per-slot click-probability lists and their sources.
	e.wSorted = make([][]topk.Item, inst.Slots)
	e.wSources = make([]*ta.SliceSource, inst.Slots)
	e.bidSource = &logical.MergedSource{}
	bidSrc := ta.Source(e.bidSource)
	if lane != nil {
		e.gated = &gatedBidSource{inner: e.bidSource, lane: lane}
		bidSrc = e.gated
	}
	if withReserve {
		bidSrc = &reservedBidSource{inner: bidSrc, eng: e}
	}
	e.srcs = make([][]ta.Source, inst.Slots)
	e.lists = make([][]topk.Item, inst.Slots)
	for j := 0; j < inst.Slots; j++ {
		items := make([]topk.Item, inst.N)
		for i := 0; i < inst.N; i++ {
			items[i] = topk.Item{ID: i, Score: inst.ClickProb[i][j]}
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].Score != items[b].Score {
				return items[a].Score > items[b].Score
			}
			return items[a].ID < items[b].ID
		})
		e.wSorted[j] = items
		j := j
		e.wSources[j] = &ta.SliceSource{
			Items: items,
			Get:   func(id int) float64 { return inst.ClickProb[id][j] },
		}
		e.srcs[j] = []ta.Source{e.wSources[j], bidSrc}
		e.lists[j] = make([]topk.Item, 0, inst.Slots+1)
	}
	e.product = func(v []float64) float64 { return v[0] * v[1] }
	e.score = func(i, j int) float64 {
		if e.lane != nil && !e.lane.Allowed(i) {
			return 0
		}
		b := float64(e.bid(i, e.curQ))
		if e.resCut > 0 && b < e.resCut {
			return 0
		}
		return e.inst.ClickProb[i][j] * b
	}

	// Initial placement: zero spend against a positive target means
	// every bidder starts underspending.
	for i := 0; i < inst.N; i++ {
		const statusUnder = -1
		for q := 0; q < inst.Keywords; q++ {
			bid := inst.InitialBid[i][q]
			mode := bidMode(inst, acct, i, q, bid, statusUnder)
			e.member[i][q] = int8(mode)
			e.groups[q][mode].Insert(i, float64(bid))
			e.registerCountTrigger(i, q, mode, bid, false)
		}
		// No time trigger: underspending is absorbing for losers.
	}
	return e
}

// setLane swaps the budget lane (Market.SetLane's reset fence): the
// winner-determination score closure reads e.lane dynamically, and the
// gated bid source baked into srcs is repointed in place. Lane
// presence cannot change (Market.SetLane enforces it), so a non-nil
// gated always receives a non-nil lane.
func (e *taluEngine) setLane(lane *budget.Lane) {
	e.lane = lane
	if e.gated != nil {
		e.gated.lane = lane
	}
}

// bid returns advertiser i's current effective bid for keyword q.
func (e *taluEngine) bid(i, q int) int {
	eff, ok := e.groups[q][e.member[i][q]].Effective(i)
	if !ok {
		panic("strategy: bidder missing from its group")
	}
	return int(math.Round(eff))
}

// FireTrigger implements logical.Handler: a due registration —
// whether from the time queue or a keyword count queue — re-derives
// the bidder's state against the in-flight auction's keyword. The
// handler indirection replaces the closure the queues used to
// capture per registration.
func (e *taluEngine) FireTrigger(bidder, _ int) {
	e.recompute(bidder, e.curQ)
}

// registerCountTrigger schedules the recompute for the auction count
// at which (i, q)'s drifting bid hits its bound. preAdjust reports
// whether the current auction's adjustment for keyword q has not yet
// been applied (trigger-phase recomputes of the current keyword), in
// which case the pending adjustment counts toward the drift.
func (e *taluEngine) registerCountTrigger(i, q, mode, bid int, preAdjust bool) {
	var remaining int
	switch mode {
	case modeInc:
		remaining = e.inst.Value[i][q] - bid
	case modeDec:
		remaining = bid
	default:
		return
	}
	offset := 1
	if preAdjust {
		offset = 0
	}
	critical := float64(e.count[q] + remaining + offset)
	e.kwTr[q].Add(critical, &e.genKw[i][q], i, q)
}

// recompute re-derives bidder i's group memberships and triggers from
// current state. preAdjustKw names the keyword (if any) whose
// adjustment for the in-flight auction is still pending; −1 when the
// recompute happens after the auction's adjustments (winner updates).
func (e *taluEngine) recompute(i int, preAdjustKw int) {
	e.recomputes++
	status := spendStatus(e.acct.SpentTotal[i], e.t, e.inst.Target[i])
	for q := 0; q < e.inst.Keywords; q++ {
		old := int(e.member[i][q])
		eff, ok := e.groups[q][old].Effective(i)
		if !ok {
			panic("strategy: bidder missing from its group during recompute")
		}
		bid := int(math.Round(eff))
		mode := bidMode(e.inst, e.acct, i, q, bid, status)
		if mode == old {
			// Behavior unchanged: the group keeps drifting this bid
			// exactly as before, and any pending count trigger's
			// critical value remains correct. Nothing to do.
			continue
		}
		e.genKw[i][q]++
		e.groups[q][old].Remove(i)
		e.member[i][q] = int8(mode)
		e.groups[q][mode].Insert(i, float64(bid))
		e.registerCountTrigger(i, q, mode, bid, q == preAdjustKw)
	}
	e.genTime[i]++
	switch status {
	case 1:
		// Overspending: a loser's rate S/t falls to the target exactly
		// at t* = S/target; recompute then.
		tstar := e.acct.SpentTotal[i] / float64(e.inst.Target[i])
		e.timeTr.Add(tstar, &e.genTime[i], i, -1)
	case 0:
		// Exactly on target now; strictly under at the next tick.
		e.timeTr.Add(e.t+1, &e.genTime[i], i, -1)
	}
}

// prepare advances the engine for one auction on keyword q at time t,
// fills advOf (len = slots) with the optimal slot assignment computed
// in ws, and returns the per-slot top-(k+1) candidate lists. The
// lists are owned by the engine and valid until the next prepare.
func (e *taluEngine) prepare(q int, t float64, ws *matching.Workspace, advOf []int) [][]topk.Item {
	e.t = t
	e.curQ = q
	e.count[q]++

	// Fire due triggers: these recomputes see the pre-update state of
	// this auction, exactly as the explicit engine would.
	e.timeTr.Advance(t, e)
	e.kwTr[q].Advance(float64(e.count[q]), e)

	// Logical updates: every incrementing bidder +1, every
	// decrementing bidder −1, in O(1) each.
	e.groups[q][modeInc].Adjust(1)
	e.groups[q][modeDec].Adjust(-1)

	// Threshold algorithm per slot: the static click-probability
	// source rewinds, the merged bid source re-seeds onto this
	// keyword's groups, and the runner fills the slot's reused list.
	k := e.inst.Slots
	for j := 0; j < k; j++ {
		e.wSources[j].Reset()
		e.bidSource.Reset(e.groups[q])
		e.lists[j], _ = e.runner.TopKInto(k+1, e.srcs[j], e.product, e.lists[j][:0])
	}

	ws.AssignCandidatesInto(e.score, e.lists, advOf)
	return e.lists
}

// afterAuction applies the winners' state changes: every advertiser
// charged for a click gets a full recompute (his spending status and
// ROI statistics moved).
func (e *taluEngine) afterAuction(t float64, clickedWinners []int) {
	e.t = t
	for _, i := range clickedWinners {
		e.recompute(i, -1)
	}
	e.curQ = -1
}

// gatedBidSource wraps the merged bid source with the budget gate:
// random accesses for gated advertisers return 0, so their aggregate
// score is 0 and winner determination never assigns them. Sorted
// accesses pass through unmodified — the threshold is computed from
// stored (ungated) bids, which over-approximates gated advertisers'
// true scores and therefore keeps the TA stopping rule sound: an
// unseen object's true score never exceeds the frontier product. The
// wrapper is built once per market; the per-lookup gate consult is an
// array read (decisions are cached per auction), so the hot path
// stays allocation-free.
type gatedBidSource struct {
	inner ta.Source
	lane  *budget.Lane
}

func (g *gatedBidSource) Next() (int, float64, bool) { return g.inner.Next() }

func (g *gatedBidSource) Lookup(id int) float64 {
	if !g.lane.Allowed(id) {
		return 0
	}
	return g.inner.Lookup(id)
}

// reservedBidSource wraps the (possibly budget-gated) bid source with
// the reserve-price cutoff, the same lazy-gating shape as
// gatedBidSource: random accesses for advertisers bidding below
// resCut = reserve/w return 0 — their aggregate score is 0 and winner
// determination never assigns them — while sorted accesses surface
// stored bids unmodified, over-approximating true scores and keeping
// the TA stopping rule sound. Built once per market when the reserve
// is configured; resCut is a field read, so the hot path stays
// allocation-free. A cutoff of 0 (exact routing with the reserve off,
// or w large enough) passes everything through.
type reservedBidSource struct {
	inner ta.Source
	eng   *taluEngine
}

func (r *reservedBidSource) Next() (int, float64, bool) { return r.inner.Next() }

func (r *reservedBidSource) Lookup(id int) float64 {
	v := r.inner.Lookup(id)
	if c := r.eng.resCut; c > 0 && v < c {
		return 0
	}
	return v
}
