package engine

import (
	"repro/internal/lp"
)

// VCG pricing on the serving path. Winner i's expected charge is his
// social opportunity cost,
//
//	p_i = OPT(without i) − (OPT − v_ij),
//
// mirroring core.Auction.VCGPayments term for term on the engine's
// scalar weights v_ij = clickProb·bid, so the equivalence tests can
// demand exact equality. The n+1 counterfactual winner-determination
// solves reuse a dedicated matching.Workspace (m.vcgWS) held by the
// market instead of re-running cold auctions: the workspace keeps the
// bounded selection heap, per-slot candidate lists, and the
// Jonker–Volgenant scratch warm across winners and across auctions,
// making MethodRH + VCG allocation-free in steady state. The
// counterfactual algorithm follows the market's method (reduced
// matching for the RH family, full Hungarian for H, simplex for LP),
// matching what core.VCGPayments runs for the same method.

// priceVCG replaces the GSP block of Market.Run: it fills
// out.PricePerClick with each winner's Vickrey charge per click.
// bidf must already hold this keyword's bids.
func (m *Market) priceVCG(advOf []int, out *Outcome) {
	if m.heavy != nil {
		m.heavy.priceVCG(advOf, out)
		return
	}
	// Total welfare of the allocation, summed in slot order exactly as
	// core.VCGPayments sums it.
	var total float64
	for j, i := range advOf {
		if i >= 0 {
			total += m.weightFn(i, j)
		}
	}
	for j, i := range advOf {
		if i < 0 {
			continue
		}
		withoutI := m.solveWithout(i)
		p := withoutI - (total - m.weightFn(i, j))
		if p < 0 {
			p = 0 // numerical guard; VCG payments are non-negative at optimum
		}
		if p > 0 {
			// A winner with p > 0 has positive weight, hence positive
			// click probability; the division is safe.
			out.PricePerClick[j] = p / m.Inst.ClickProb[i][j]
		}
	}
}

// solveWithout determines the optimal matching value over all
// advertisers except skip, with the market's method, in the dedicated
// counterfactual workspace. The row remap (reduced index r ↦ original
// advertiser r or r+1) reproduces exactly the sub-auction reindexing
// core.VCGPayments performs, so selection order, tie handling, and
// the value summation are bit-identical to a cold
// core.Auction.Determine on the reduced instance.
func (m *Market) solveWithout(skip int) float64 {
	n, k := m.Inst.N, m.Inst.Slots
	m.vcgSkip = skip
	switch m.Method {
	case MethodH:
		return m.vcgWS.MaxWeightInto(n-1, k, m.vcgWeightFn, m.vcgAdvOf)
	case MethodLP:
		w := m.vcgMatrix(n-1, k)
		for r := 0; r < n-1; r++ {
			for j := 0; j < k; j++ {
				w[r][j] = m.vcgWeightFn(r, j)
			}
		}
		res, err := lp.SolveAssignment(w)
		if err != nil {
			panic("engine: counterfactual assignment LP failed: " + err.Error())
		}
		m.LPStats += res.Iterations
		return res.Value
	default:
		// The RH family (RH, RH-parallel, RHTALU): the reduced solve of
		// Section III-E, exactly core.Determiner's MethodReduced — depth-k
		// candidate lists over the surviving advertisers, then the
		// workspace assignment.
		lists := m.vcgWS.SelectCandidates(n-1, k, k, m.vcgWeightFn)
		return m.vcgWS.AssignCandidatesInto(m.vcgWeightFn, lists, m.vcgAdvOf)
	}
}

// vcgMatrix returns an r×k view over the reused LP scratch. Contents
// are unspecified (stale from the previous solve); callers must fill
// every cell.
func (m *Market) vcgMatrix(r, k int) [][]float64 {
	if cap(m.vcgFlat) < r*k {
		m.vcgFlat = make([]float64, r*k)
	}
	m.vcgFlat = m.vcgFlat[:r*k]
	if cap(m.vcgRows) < r {
		m.vcgRows = make([][]float64, r)
	}
	m.vcgRows = m.vcgRows[:r]
	for i := 0; i < r; i++ {
		m.vcgRows[i] = m.vcgFlat[i*k : (i+1)*k]
	}
	return m.vcgRows
}
