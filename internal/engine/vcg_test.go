package engine

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/formula"
	"repro/internal/probmodel"
	"repro/internal/workload"
)

// coreMethodFor maps an engine method to the core winner-determination
// method its VCG counterfactuals implement.
func coreMethodFor(m Method) core.Method {
	switch m {
	case MethodH:
		return core.MethodHungarian
	case MethodLP:
		return core.MethodLP
	default: // the RH family
		return core.MethodReduced
	}
}

// snapshotAuction rebuilds the core.Auction a market just ran: every
// advertiser bids his current integer bid on the bare Click predicate
// and the probability model is the instance's click matrix with no
// purchases — the exact expressive-bid form of the engine's scalar
// weights (expected payment = clickProb·bid, zero baseline).
func snapshotAuction(inst *workload.Instance, m *Market, q int) *core.Auction {
	n, k := inst.N, inst.Slots
	purchase := make([][]float64, n)
	advs := make([]core.Advertiser, n)
	for i := 0; i < n; i++ {
		purchase[i] = make([]float64, k)
		advs[i] = core.Advertiser{
			ID:   "adv" + strconv.Itoa(i),
			Bids: formula.Bids{{F: formula.Click{}, Value: float64(m.Bid(i, q))}},
		}
	}
	return &core.Auction{
		Slots:       k,
		Advertisers: advs,
		Probs:       &probmodel.Model{Click: inst.ClickProb, Purchase: purchase},
	}
}

// resultFromOutcome lifts an engine outcome's allocation into a
// core.Result for pricing.
func resultFromOutcome(n int, out *Outcome) *core.Result {
	res := &core.Result{
		AdvOf:  append([]int(nil), out.AdvOf...),
		SlotOf: make([]int, n),
	}
	for i := range res.SlotOf {
		res.SlotOf[i] = -1
	}
	for j, i := range res.AdvOf {
		if i >= 0 {
			res.SlotOf[i] = j
		}
	}
	return res
}

// TestMarketVCGMatchesCoreVCGPayments is the VCG acceptance contract:
// for every winner-determination method, the engine's workspace-reusing
// counterfactual solves must price each auction exactly as
// core.Auction.VCGPayments prices the equivalent expressive-bid
// auction at the engine's own allocation — per-click prices equal bit
// for bit, not approximately.
func TestMarketVCGMatchesCoreVCGPayments(t *testing.T) {
	for _, method := range []Method{MethodRH, MethodH, MethodLP, MethodRHTALU} {
		t.Run(method.String(), func(t *testing.T) {
			inst := workload.Generate(rand.New(rand.NewSource(171)), 30, 4, 4)
			queries := inst.Queries(rand.New(rand.NewSource(172)), 250)
			m := NewMarketPriced(inst, method, PricingVCG, 29)
			for a, q := range queries {
				out := m.Run(q)
				// After Run, Bid(i, q) is exactly the bid vector this
				// auction was determined and priced with.
				snap := snapshotAuction(inst, m, q)
				res := resultFromOutcome(inst.N, out)
				pay, err := snap.VCGPayments(res, coreMethodFor(method))
				if err != nil {
					t.Fatalf("auction %d: %v", a, err)
				}
				for j, i := range out.AdvOf {
					want := 0.0
					if i >= 0 && pay[i] > 0 {
						want = pay[i] / inst.ClickProb[i][j]
					}
					if out.PricePerClick[j] != want {
						t.Fatalf("auction %d slot %d: engine VCG price %g != core %g",
							a, j, out.PricePerClick[j], want)
					}
				}
				for i := 0; i < inst.N; i++ {
					if res.SlotOf[i] < 0 && pay[i] != 0 {
						t.Fatalf("auction %d: loser %d charged %g", a, i, pay[i])
					}
				}
			}
		})
	}
}

// TestHeavyMarketVCGMatchesHeavyVCGPayments is the heavyweight leg:
// a MethodHeavy market with Vickrey pricing must charge exactly what
// core.HeavyAuction.VCGPayments computes on the equivalent snapshot
// auction — counterfactual 2^k enumerations and all.
func TestHeavyMarketVCGMatchesHeavyVCGPayments(t *testing.T) {
	inst := workload.GenerateHeavy(rand.New(rand.NewSource(173)), 25, 3, 4, 0.3, 0.4)
	queries := inst.Queries(rand.New(rand.NewSource(174)), 250)
	m := NewMarketPriced(inst, MethodHeavy, PricingVCG, 31)
	n, k := inst.N, inst.Slots
	factor := probmodel.ShadowFactors(k, inst.Shadow)
	for a, q := range queries {
		out := m.Run(q)
		purchase := make([][]float64, n)
		advs := make([]core.Advertiser, n)
		isHeavy := make([]bool, n)
		copy(isHeavy, inst.Heavy)
		for i := 0; i < n; i++ {
			purchase[i] = make([]float64, k)
			advs[i] = core.Advertiser{
				ID:    "adv" + strconv.Itoa(i),
				Bids:  formula.Bids{{F: formula.Click{}, Value: float64(m.Bid(i, q))}},
				Heavy: isHeavy[i],
			}
		}
		model := &probmodel.HeavyModel{
			Base:    &probmodel.Model{Click: inst.ClickProb, Purchase: purchase},
			IsHeavy: isHeavy,
			Factor:  factor,
		}
		snap := &core.HeavyAuction{Slots: k, Advertisers: advs, Model: model}
		res := resultFromOutcome(n, out)
		pay, err := snap.VCGPayments(res)
		if err != nil {
			t.Fatalf("auction %d: %v", a, err)
		}
		var pattern uint64
		for j, i := range out.AdvOf {
			if i >= 0 && isHeavy[i] {
				pattern |= 1 << uint(j)
			}
		}
		for j, i := range out.AdvOf {
			want := 0.0
			if i >= 0 && pay[i] > 0 {
				want = pay[i] / model.ClickProb(i, j, pattern)
			}
			if out.PricePerClick[j] != want {
				t.Fatalf("auction %d slot %d: engine heavy VCG price %g != core %g",
					a, j, out.PricePerClick[j], want)
			}
		}
	}
}
