package formula

import (
	"fmt"
	"strings"
)

// Bid is one row of an advertiser's Bids table (Section II-A): the
// advertiser pays Value if F is true in the realized outcome.
type Bid struct {
	F     Expr
	Value float64
}

// Bids is an advertiser's Bids table: an OR-bid over formulas. When
// several formulas hold simultaneously, the advertiser owes the sum
// of the corresponding values — exactly the paper's semantics for the
// table in Figure 3 (5¢ for Purchase, 2¢ for Slot1 ∨ Slot2, hence 7¢
// for both).
type Bids []Bid

// Payment returns the total amount owed in outcome o: the sum of
// values of all rows whose formula is true.
func (b Bids) Payment(o Outcome) float64 {
	var total float64
	for _, bid := range b {
		if bid.F.Eval(o) {
			total += bid.Value
		}
	}
	return total
}

// OneDependent reports whether every row's event is 1-dependent and
// heavyweight-free, i.e. the whole table lies in the Theorem 2
// fragment.
func (b Bids) OneDependent() bool {
	for _, bid := range b {
		if !OneDependent(bid.F) {
			return false
		}
	}
	return true
}

// MaxDependence returns the largest m-dependence over the table's
// rows and whether any row references the heavyweight pattern.
func (b Bids) MaxDependence() (m int, heavy bool) {
	for _, bid := range b {
		d := Analyze(bid.F)
		mm := len(d.Others)
		if d.Self {
			mm++
		}
		if mm > m {
			m = mm
		}
		heavy = heavy || d.Heavy
	}
	return m, heavy
}

// String renders the table, one "formula : value" row per line.
func (b Bids) String() string {
	var sb strings.Builder
	for i, bid := range b {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%s : %g", bid.F, bid.Value)
	}
	return sb.String()
}

// ParseBids parses a textual Bids table: one "formula : value" row
// per line; blank lines and lines starting with '#' are skipped.
func ParseBids(src string) (Bids, error) {
	var out Bids
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndex(line, ":")
		if idx < 0 {
			return nil, fmt.Errorf("formula: bids line %d: missing ':' in %q", lineNo+1, line)
		}
		f, err := Parse(line[:idx])
		if err != nil {
			return nil, fmt.Errorf("formula: bids line %d: %v", lineNo+1, err)
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(line[idx+1:]), "%g", &v); err != nil {
			return nil, fmt.Errorf("formula: bids line %d: bad value %q", lineNo+1, line[idx+1:])
		}
		out = append(out, Bid{F: f, Value: v})
	}
	return out, nil
}
