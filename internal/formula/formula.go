// Package formula implements the Boolean bid-formula language from
// Section II of Martin, Gehrke, and Halpern, "Toward Expressive and
// Scalable Sponsored Search Auctions" (ICDE 2008).
//
// An advertiser's bid is a pair (formula, value): the advertiser pays
// value if the formula is true in the realized auction outcome.
// Formulas are Boolean combinations of the outcome predicates the
// paper makes available to each advertiser:
//
//	Slot j     — the advertiser's ad was placed in slot j (1-based)
//	Click      — the user clicked the advertiser's ad
//	Purchase   — the user purchased via the advertiser's ad
//	Heavy j    — slot j was assigned to a heavyweight advertiser
//	             (the Section III-F extension)
//	Adv(a) @ j — advertiser a (someone else) was placed in slot j;
//	             used only to express the m-dependent events of
//	             Theorem 3, which the tractable engine must reject
//
// The package provides an AST, a parser for a small infix syntax, an
// evaluator over concrete outcomes, and the dependence analysis that
// underlies Theorems 2 and 3 (is an event 1-dependent?).
package formula

import (
	"fmt"
	"sort"
	"strings"
)

// Outcome is one advertiser's view of a realized auction outcome. It
// carries everything needed to evaluate that advertiser's formulas:
// the slot the advertiser received (0 if none), whether the user
// clicked and purchased, the heavyweight pattern over slots, and —
// for evaluating m-dependent events in oracles and tests — the slots
// assigned to other advertisers.
type Outcome struct {
	// Slot is the 1-based slot assigned to the bidding advertiser,
	// or 0 if the advertiser received no slot.
	Slot int
	// Clicked reports whether the user clicked the advertiser's ad.
	Clicked bool
	// Purchased reports whether the user made a purchase via the ad.
	// Purchased implies Clicked in every reachable outcome.
	Purchased bool
	// HeavySlots is a bitmask over slots: bit j-1 is set when slot j
	// holds a heavyweight advertiser. Zero when the heavyweight model
	// is not in use.
	HeavySlots uint64
	// OtherSlots maps another advertiser's ID to the 1-based slot that
	// advertiser received. Advertisers absent from the map received no
	// slot. Only needed to evaluate formulas containing AdvSlot nodes.
	OtherSlots map[string]int
}

// Expr is a node in a bid-formula AST.
type Expr interface {
	// Eval reports whether the formula holds in the given outcome.
	Eval(o Outcome) bool
	// String renders the formula in the package's concrete syntax.
	// Parsing the result yields a structurally identical formula.
	String() string
	// appendDeps accumulates the advertiser labels the formula's truth
	// value may depend on (see Deps).
	appendDeps(set map[string]bool, heavy *bool)
}

// The sentinel label used in dependence sets for "the bidding
// advertiser himself".
const selfLabel = "\x00self"

// Const is the constant TRUE or FALSE.
type Const bool

// Eval implements Expr.
func (c Const) Eval(Outcome) bool { return bool(c) }

// String implements Expr.
func (c Const) String() string {
	if c {
		return "TRUE"
	}
	return "FALSE"
}

func (c Const) appendDeps(map[string]bool, *bool) {}

// Click is the predicate "the user clicked the advertiser's ad".
type Click struct{}

// Eval implements Expr.
func (Click) Eval(o Outcome) bool { return o.Clicked }

// String implements Expr.
func (Click) String() string { return "Click" }

func (Click) appendDeps(set map[string]bool, _ *bool) { set[selfLabel] = true }

// Purchase is the predicate "the user purchased via the ad".
type Purchase struct{}

// Eval implements Expr.
func (Purchase) Eval(o Outcome) bool { return o.Purchased }

// String implements Expr.
func (Purchase) String() string { return "Purchase" }

func (Purchase) appendDeps(set map[string]bool, _ *bool) { set[selfLabel] = true }

// Slot is the predicate "the advertiser's ad was placed in slot J".
// J is 1-based, matching the paper's Slot_1 … Slot_k.
type Slot struct{ J int }

// Eval implements Expr.
func (s Slot) Eval(o Outcome) bool { return o.Slot == s.J }

// String implements Expr.
func (s Slot) String() string { return fmt.Sprintf("Slot%d", s.J) }

func (s Slot) appendDeps(set map[string]bool, _ *bool) { set[selfLabel] = true }

// Heavy is the Section III-F predicate "slot J was assigned to a
// heavyweight advertiser".
type Heavy struct{ J int }

// Eval implements Expr.
func (h Heavy) Eval(o Outcome) bool { return o.HeavySlots&(1<<uint(h.J-1)) != 0 }

// String implements Expr.
func (h Heavy) String() string { return fmt.Sprintf("Heavy%d", h.J) }

func (h Heavy) appendDeps(_ map[string]bool, heavy *bool) { *heavy = true }

// AdvSlot is the predicate "advertiser Adv was placed in slot J".
// It references another advertiser's placement, so any formula that
// contains it is at least 2-dependent and falls outside the tractable
// fragment (Theorem 3). The engine's analyzer rejects such bids; the
// brute-force oracle can still evaluate them.
type AdvSlot struct {
	Adv string
	J   int
}

// Eval implements Expr.
func (a AdvSlot) Eval(o Outcome) bool { return o.OtherSlots[a.Adv] == a.J }

// String implements Expr.
func (a AdvSlot) String() string { return fmt.Sprintf("Adv(%s)@%d", a.Adv, a.J) }

func (a AdvSlot) appendDeps(set map[string]bool, _ *bool) { set[a.Adv] = true }

// Not is logical negation.
type Not struct{ X Expr }

// Eval implements Expr.
func (n Not) Eval(o Outcome) bool { return !n.X.Eval(o) }

// String implements Expr.
func (n Not) String() string { return "NOT " + paren(n.X) }

func (n Not) appendDeps(set map[string]bool, heavy *bool) { n.X.appendDeps(set, heavy) }

// And is logical conjunction.
type And struct{ X, Y Expr }

// Eval implements Expr.
func (a And) Eval(o Outcome) bool { return a.X.Eval(o) && a.Y.Eval(o) }

// String implements Expr.
func (a And) String() string { return parenOr(a.X) + " AND " + parenOr(a.Y) }

func (a And) appendDeps(set map[string]bool, heavy *bool) {
	a.X.appendDeps(set, heavy)
	a.Y.appendDeps(set, heavy)
}

// Or is logical disjunction.
type Or struct{ X, Y Expr }

// Eval implements Expr.
func (r Or) Eval(o Outcome) bool { return r.X.Eval(o) || r.Y.Eval(o) }

// String implements Expr.
func (r Or) String() string { return r.X.String() + " OR " + r.Y.String() }

func (r Or) appendDeps(set map[string]bool, heavy *bool) {
	r.X.appendDeps(set, heavy)
	r.Y.appendDeps(set, heavy)
}

// paren wraps compound sub-expressions in parentheses for unambiguous
// printing under a NOT.
func paren(e Expr) string {
	switch e.(type) {
	case And, Or:
		return "(" + e.String() + ")"
	}
	return e.String()
}

// parenOr wraps OR sub-expressions appearing under an AND.
func parenOr(e Expr) string {
	if _, ok := e.(Or); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Deps describes what a formula's truth value can depend on.
type Deps struct {
	// Self reports whether the formula references the bidding
	// advertiser's own placement, click, or purchase.
	Self bool
	// Others lists the labels of other advertisers whose placement the
	// formula references, sorted.
	Others []string
	// Heavy reports whether the formula references the heavyweight
	// pattern (a class-level dependence, Section III-F).
	Heavy bool
}

// Analyze computes the dependence set of e.
func Analyze(e Expr) Deps {
	set := make(map[string]bool)
	var heavy bool
	e.appendDeps(set, &heavy)
	d := Deps{Heavy: heavy}
	for label := range set {
		if label == selfLabel {
			d.Self = true
			continue
		}
		d.Others = append(d.Others, label)
	}
	sort.Strings(d.Others)
	return d
}

// MDependence returns m such that the event denoted by e is
// m-dependent in the sense of Definition 1: the number of advertisers
// whose slot assignment the event's probability can depend on. The
// heavyweight predicates do not count toward m (they depend on the
// class pattern, not on any individual advertiser's identity), but
// Deps.Heavy lets callers detect them.
func MDependence(e Expr) int {
	d := Analyze(e)
	m := len(d.Others)
	if d.Self {
		m++
	}
	return m
}

// OneDependent reports whether the event denoted by e is 1-dependent
// and free of heavyweight predicates, i.e. whether it lies in the
// fragment for which Theorem 2 makes winner determination a
// maximum-weight bipartite matching.
func OneDependent(e Expr) bool {
	d := Analyze(e)
	return len(d.Others) == 0 && !d.Heavy
}

// Above constructs the Theorem 3 event E_{i>i'}: the bidding
// advertiser gets some slot and is placed above advertiser other, who
// may or may not get a slot. Slots are numbered so that smaller j is
// higher on the page. k is the number of slots.
//
//	E = ∨_j ( Slot_j ∧ ( (∨_{j'>j} AdvSlot(other,j')) ∨ ∧_{j'} ¬AdvSlot(other,j') ) )
func Above(other string, k int) Expr {
	var whole Expr
	for j := 1; j <= k; j++ {
		// other strictly below slot j, or other unplaced.
		var below Expr = otherUnplaced(other, k)
		for jp := j + 1; jp <= k; jp++ {
			below = Or{below, AdvSlot{other, jp}}
		}
		term := And{Slot{j}, below}
		if whole == nil {
			whole = term
		} else {
			whole = Or{whole, term}
		}
	}
	if whole == nil {
		return Const(false)
	}
	return whole
}

// otherUnplaced builds ∧_j ¬AdvSlot(other, j).
func otherUnplaced(other string, k int) Expr {
	var e Expr = Not{AdvSlot{other, 1}}
	for j := 2; j <= k; j++ {
		e = And{e, Not{AdvSlot{other, j}}}
	}
	return e
}

// Unplaced is the event that the bidding advertiser received no slot:
// ∧_j ¬Slot_j over k slots, represented directly.
type Unplaced struct{}

// Eval implements Expr.
func (Unplaced) Eval(o Outcome) bool { return o.Slot == 0 }

// String implements Expr.
func (Unplaced) String() string { return "Unplaced" }

func (Unplaced) appendDeps(set map[string]bool, _ *bool) { set[selfLabel] = true }

// SlotIn constructs Slot_{js[0]} ∨ … ∨ Slot_{js[len-1]}, a common
// multi-feature bid shape ("top or bottom slot", Section I-A).
func SlotIn(js ...int) Expr {
	if len(js) == 0 {
		return Const(false)
	}
	var e Expr = Slot{js[0]}
	for _, j := range js[1:] {
		e = Or{e, Slot{j}}
	}
	return e
}

// Canonical returns a canonical string for use as a map key. Two
// formulas that print identically are structurally identical, so
// String already serves; Canonical exists to make that contract
// explicit at call sites.
func Canonical(e Expr) string { return e.String() }

// MustParse parses src and panics on error. For tests and literals.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("formula.MustParse(%q): %v", src, err))
	}
	return e
}

// normalizeSpace collapses runs of whitespace; used by the parser's
// error reporting.
func normalizeSpace(s string) string { return strings.Join(strings.Fields(s), " ") }
