package formula

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"Click", "Click"},
		{"Purchase", "Purchase"},
		{"Slot1", "Slot1"},
		{"slot12", "Slot12"},
		{"Heavy3", "Heavy3"},
		{"TRUE", "TRUE"},
		{"false", "FALSE"},
		{"Click AND Slot1", "Click AND Slot1"},
		{"Click ∧ Slot1", "Click AND Slot1"},
		{"Click & Slot1", "Click AND Slot1"},
		{"Click && Slot1", "Click AND Slot1"},
		{"Slot1 ∨ Slot2", "Slot1 OR Slot2"},
		{"Slot1 || Slot2", "Slot1 OR Slot2"},
		{"NOT Click", "NOT Click"},
		{"¬Click", "NOT Click"},
		{"!Click", "NOT Click"},
		{"Click AND (Slot1 OR Slot2)", "Click AND (Slot1 OR Slot2)"},
		{"NOT (Click AND Slot1)", "NOT (Click AND Slot1)"},
		{"Unplaced", "Unplaced"},
		{"Adv(nike)@2", "Adv(nike)@2"},
		{"Purchase AND Click AND Slot1", "Purchase AND Click AND Slot1"},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "AND", "Click AND", "Slot0", "Slot", "Heavy0",
		"(Click", "Click)", "Click OR OR Slot1", "Adv(", "Adv(x)@0", "Adv(x)",
		"Click Slot1",
	}
	for _, src := range bad {
		if e, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded with %v, want error", src, e)
		}
	}
}

func TestPrecedence(t *testing.T) {
	// NOT > AND > OR.
	e := MustParse("NOT Click AND Slot1 OR Purchase")
	// Parsed as ((NOT Click) AND Slot1) OR Purchase.
	o := Outcome{Clicked: true, Purchased: true}
	if !e.Eval(o) {
		t.Fatalf("expected Purchase branch to satisfy %s", e)
	}
	o = Outcome{Clicked: true, Slot: 1}
	if e.Eval(o) {
		t.Fatalf("Clicked should defeat NOT Click AND Slot1 in %s", e)
	}
	o = Outcome{Slot: 1}
	if !e.Eval(o) {
		t.Fatalf("unclicked slot 1 should satisfy %s", e)
	}
}

func TestStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		e := randomExpr(rng, 4)
		s := e.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(String(%v)) = error %v", s, err)
		}
		if back.String() != s {
			t.Fatalf("round trip changed %q to %q", s, back.String())
		}
		// Semantics preserved across random outcomes.
		for i := 0; i < 20; i++ {
			o := randomOutcome(rng)
			if e.Eval(o) != back.Eval(o) {
				t.Fatalf("round trip changed semantics of %q on %+v", s, o)
			}
		}
	}
}

func TestEvalPredicates(t *testing.T) {
	o := Outcome{Slot: 2, Clicked: true, Purchased: false, HeavySlots: 0b101,
		OtherSlots: map[string]int{"nike": 1}}
	checks := []struct {
		src  string
		want bool
	}{
		{"Slot2", true},
		{"Slot1", false},
		{"Click", true},
		{"Purchase", false},
		{"Heavy1", true},
		{"Heavy2", false},
		{"Heavy3", true},
		{"Unplaced", false},
		{"Adv(nike)@1", true},
		{"Adv(nike)@2", false},
		{"Adv(ghost)@1", false},
		{"Click AND NOT Purchase", true},
		{"Slot1 OR Slot2", true},
	}
	for _, c := range checks {
		if got := MustParse(c.src).Eval(o); got != c.want {
			t.Errorf("%s on %+v = %v, want %v", c.src, o, got, c.want)
		}
	}
}

func TestDeMorganProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomExpr(r, 3), randomExpr(r, 3)
		lhs := Not{And{a, b}}
		rhs := Or{Not{a}, Not{b}}
		for i := 0; i < 30; i++ {
			o := randomOutcome(rng)
			if lhs.Eval(o) != rhs.Eval(o) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDependenceAnalysis(t *testing.T) {
	cases := []struct {
		src   string
		m     int
		one   bool
		heavy bool
	}{
		{"TRUE", 0, true, false},
		{"Click", 1, true, false},
		{"Purchase AND Slot1", 1, true, false},
		{"Slot1 OR Slot15", 1, true, false},
		{"Click AND Adv(nike)@1", 2, false, false},
		{"Adv(nike)@1 AND Adv(adidas)@2", 2, false, false},
		{"Heavy1", 0, false, true},
		{"Slot2 AND NOT Heavy1", 1, false, true},
	}
	for _, c := range cases {
		e := MustParse(c.src)
		if m := MDependence(e); m != c.m {
			t.Errorf("MDependence(%s) = %d, want %d", c.src, m, c.m)
		}
		if one := OneDependent(e); one != c.one {
			t.Errorf("OneDependent(%s) = %v, want %v", c.src, one, c.one)
		}
		if h := Analyze(e).Heavy; h != c.heavy {
			t.Errorf("Analyze(%s).Heavy = %v, want %v", c.src, h, c.heavy)
		}
	}
}

// TestAboveEvent checks the Theorem 3 construction E_{i>i'} against a
// direct definition on all slot configurations.
func TestAboveEvent(t *testing.T) {
	const k = 4
	e := Above("rival", k)
	if MDependence(e) != 2 {
		t.Fatalf("Above must be 2-dependent, got %d", MDependence(e))
	}
	for mySlot := 0; mySlot <= k; mySlot++ {
		for rivalSlot := 0; rivalSlot <= k; rivalSlot++ {
			if mySlot == rivalSlot && mySlot != 0 {
				continue // impossible: one slot per advertiser
			}
			o := Outcome{Slot: mySlot, OtherSlots: map[string]int{}}
			if rivalSlot > 0 {
				o.OtherSlots["rival"] = rivalSlot
			}
			want := mySlot != 0 && (rivalSlot == 0 || rivalSlot > mySlot)
			if got := e.Eval(o); got != want {
				t.Errorf("Above: my=%d rival=%d got %v want %v", mySlot, rivalSlot, got, want)
			}
		}
	}
}

func TestBidsPaymentFig3(t *testing.T) {
	// Figure 3: pay 5 for Purchase, 2 for Slot1 ∨ Slot2 — the text
	// notes the advertiser pays 7 when both hold.
	bids := Bids{
		{MustParse("Purchase"), 5},
		{MustParse("Slot1 OR Slot2"), 2},
	}
	cases := []struct {
		o    Outcome
		want float64
	}{
		{Outcome{Slot: 1, Clicked: true, Purchased: true}, 7},
		{Outcome{Slot: 2, Clicked: true, Purchased: false}, 2},
		{Outcome{Slot: 3, Clicked: true, Purchased: true}, 5},
		{Outcome{Slot: 3, Clicked: false}, 0},
		{Outcome{}, 0},
	}
	for _, c := range cases {
		if got := bids.Payment(c.o); got != c.want {
			t.Errorf("payment in %+v = %g, want %g", c.o, got, c.want)
		}
	}
	if !bids.OneDependent() {
		t.Error("Figure 3 bids should be 1-dependent")
	}
}

func TestBidsMaxDependence(t *testing.T) {
	bids := Bids{
		{MustParse("Click"), 3},
		{Above("rival", 3), 10},
	}
	if bids.OneDependent() {
		t.Error("table with an Above bid must not be 1-dependent")
	}
	m, heavy := bids.MaxDependence()
	if m != 2 || heavy {
		t.Errorf("MaxDependence = (%d, %v), want (2, false)", m, heavy)
	}
}

func TestParseBids(t *testing.T) {
	src := `
# purchase bid
Purchase : 5
Slot1 OR Slot2 : 2.5

Click AND Slot1 : 4
`
	bids, err := ParseBids(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(bids) != 3 {
		t.Fatalf("got %d bids, want 3", len(bids))
	}
	if bids[1].Value != 2.5 || bids[1].F.String() != "Slot1 OR Slot2" {
		t.Errorf("bad second bid: %v %g", bids[1].F, bids[1].Value)
	}
	if _, err := ParseBids("Click 5"); err == nil {
		t.Error("missing colon should fail")
	}
	if _, err := ParseBids("Click : x"); err == nil {
		t.Error("bad value should fail")
	}
}

func TestSlotIn(t *testing.T) {
	e := SlotIn(1, 3)
	for slot, want := range map[int]bool{1: true, 2: false, 3: true, 0: false} {
		if got := e.Eval(Outcome{Slot: slot}); got != want {
			t.Errorf("SlotIn(1,3) at slot %d = %v, want %v", slot, got, want)
		}
	}
	if SlotIn().Eval(Outcome{Slot: 1}) {
		t.Error("empty SlotIn must be FALSE")
	}
}

// randomExpr builds a random formula of bounded depth.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(6) {
		case 0:
			return Click{}
		case 1:
			return Purchase{}
		case 2:
			return Slot{1 + rng.Intn(4)}
		case 3:
			return Heavy{1 + rng.Intn(4)}
		case 4:
			return Const(rng.Intn(2) == 0)
		default:
			return Unplaced{}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return Not{randomExpr(rng, depth-1)}
	case 1:
		return And{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	default:
		return Or{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	}
}

func randomOutcome(rng *rand.Rand) Outcome {
	o := Outcome{
		Slot:       rng.Intn(5), // 0..4
		Clicked:    rng.Intn(2) == 0,
		HeavySlots: uint64(rng.Intn(16)),
	}
	if o.Clicked {
		o.Purchased = rng.Intn(2) == 0
	}
	return o
}
