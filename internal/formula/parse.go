package formula

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a bid formula in the package's concrete syntax.
//
// Grammar (standard precedence: NOT binds tightest, then AND, then OR):
//
//	orExpr   := andExpr { ("OR" | "∨" | "|" | "||") andExpr }
//	andExpr  := notExpr { ("AND" | "∧" | "&" | "&&") notExpr }
//	notExpr  := ("NOT" | "¬" | "!") notExpr | atom
//	atom     := "(" orExpr ")" | predicate | "TRUE" | "FALSE"
//	predicate := "Click" | "Purchase" | "Unplaced"
//	           | "Slot" digits | "Heavy" digits
//	           | "Adv" "(" label ")" "@" digits
//
// Keywords are case-insensitive; SlotJ and HeavyJ require J ≥ 1.
func Parse(src string) (Expr, error) {
	p := &parser{toks: lex(src), src: src}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("formula: trailing input %q in %q", p.peek().text, normalizeSpace(src))
	}
	return e, nil
}

type token struct {
	text string
	pos  int
}

// lex splits src into tokens: identifiers (letters+digits), single
// symbolic operators, and parentheses. Unicode connectives are mapped
// to their ASCII keywords.
func lex(src string) []token {
	var toks []token
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(' || r == ')' || r == '@':
			toks = append(toks, token{string(r), i})
			i++
		case r == '∧':
			toks = append(toks, token{"AND", i})
			i++
		case r == '∨':
			toks = append(toks, token{"OR", i})
			i++
		case r == '¬' || r == '!':
			toks = append(toks, token{"NOT", i})
			i++
		case r == '&':
			toks = append(toks, token{"AND", i})
			i++
			if i < len(rs) && rs[i] == '&' {
				i++
			}
		case r == '|':
			toks = append(toks, token{"OR", i})
			i++
			if i < len(rs) && rs[i] == '|' {
				i++
			}
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_' || rs[j] == '-') {
				j++
			}
			toks = append(toks, token{string(rs[i:j]), i})
			i = j
		default:
			toks = append(toks, token{string(r), i})
			i++
		}
	}
	return toks
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) eof() bool { return p.i >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{"", len(p.src)}
	}
	return p.toks[p.i]
}

func (p *parser) next() token {
	t := p.peek()
	p.i++
	return t
}

// accept consumes the next token if it case-insensitively equals text.
func (p *parser) accept(text string) bool {
	if !p.eof() && strings.EqualFold(p.toks[p.i].text, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = Or{e, rhs}
	}
	return e, nil
}

func (p *parser) parseAnd() (Expr, error) {
	e, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		rhs, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		e = And{e, rhs}
	}
	return e, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{e}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	if p.eof() {
		return nil, fmt.Errorf("formula: unexpected end of input in %q", normalizeSpace(p.src))
	}
	if p.accept("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, fmt.Errorf("formula: missing ')' at offset %d in %q", p.peek().pos, normalizeSpace(p.src))
		}
		return e, nil
	}
	t := p.next()
	lower := strings.ToLower(t.text)
	switch lower {
	case "click":
		return Click{}, nil
	case "purchase":
		return Purchase{}, nil
	case "unplaced":
		return Unplaced{}, nil
	case "true":
		return Const(true), nil
	case "false":
		return Const(false), nil
	case "adv":
		return p.parseAdvSlot(t)
	}
	if j, ok := suffixIndex(lower, "slot"); ok {
		return Slot{j}, nil
	}
	if j, ok := suffixIndex(lower, "heavy"); ok {
		return Heavy{j}, nil
	}
	return nil, fmt.Errorf("formula: unexpected token %q at offset %d in %q", t.text, t.pos, normalizeSpace(p.src))
}

// parseAdvSlot parses the remainder of Adv(label)@j after the Adv
// keyword has been consumed.
func (p *parser) parseAdvSlot(kw token) (Expr, error) {
	if !p.accept("(") {
		return nil, fmt.Errorf("formula: expected '(' after Adv at offset %d", kw.pos)
	}
	label := p.next()
	if label.text == "" || label.text == ")" {
		return nil, fmt.Errorf("formula: expected advertiser label after Adv( at offset %d", kw.pos)
	}
	if !p.accept(")") {
		return nil, fmt.Errorf("formula: missing ')' after Adv(%s at offset %d", label.text, kw.pos)
	}
	if !p.accept("@") {
		return nil, fmt.Errorf("formula: expected '@slot' after Adv(%s) at offset %d", label.text, kw.pos)
	}
	jt := p.next()
	j, err := strconv.Atoi(jt.text)
	if err != nil || j < 1 {
		return nil, fmt.Errorf("formula: bad slot index %q after Adv(%s)@ at offset %d", jt.text, label.text, jt.pos)
	}
	return AdvSlot{label.text, j}, nil
}

// suffixIndex matches tokens of the form <kw><digits> with digits ≥ 1,
// e.g. slot3, heavy12.
func suffixIndex(lower, kw string) (int, bool) {
	if !strings.HasPrefix(lower, kw) || len(lower) == len(kw) {
		return 0, false
	}
	j, err := strconv.Atoi(lower[len(kw):])
	if err != nil || j < 1 {
		return 0, false
	}
	return j, true
}
