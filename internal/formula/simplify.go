package formula

// Simplify rewrites a formula into an equivalent, typically smaller
// one: negation-normal form with constant folding and local
// absorption. Bidding programs assemble formulas mechanically (the
// truth-table compression, strategy templates), so the engine
// benefits from cheap normalization before repeated evaluation.
//
// Guarantees: the result evaluates identically on every Outcome, and
// Simplify is idempotent on its own output for the rewrite set below.
func Simplify(e Expr) Expr {
	return fold(nnf(e, false))
}

// nnf pushes negations down to literals (De Morgan), tracking the
// current polarity.
func nnf(e Expr, negate bool) Expr {
	switch e := e.(type) {
	case Not:
		return nnf(e.X, !negate)
	case And:
		if negate {
			return Or{nnf(e.X, true), nnf(e.Y, true)}
		}
		return And{nnf(e.X, false), nnf(e.Y, false)}
	case Or:
		if negate {
			return And{nnf(e.X, true), nnf(e.Y, true)}
		}
		return Or{nnf(e.X, false), nnf(e.Y, false)}
	case Const:
		return Const(bool(e) != negate)
	default:
		if negate {
			return Not{e}
		}
		return e
	}
}

// fold applies bottom-up constant folding and local identities:
// x∧TRUE=x, x∧FALSE=FALSE, x∨TRUE=TRUE, x∨FALSE=x, x∧x=x, x∨x=x,
// x∧¬x=FALSE, x∨¬x=TRUE (syntactic x).
func fold(e Expr) Expr {
	switch e := e.(type) {
	case And:
		x, y := fold(e.X), fold(e.Y)
		if c, ok := x.(Const); ok {
			if bool(c) {
				return y
			}
			return Const(false)
		}
		if c, ok := y.(Const); ok {
			if bool(c) {
				return x
			}
			return Const(false)
		}
		if x.String() == y.String() {
			return x
		}
		if complementary(x, y) {
			return Const(false)
		}
		return And{x, y}
	case Or:
		x, y := fold(e.X), fold(e.Y)
		if c, ok := x.(Const); ok {
			if bool(c) {
				return Const(true)
			}
			return y
		}
		if c, ok := y.(Const); ok {
			if bool(c) {
				return Const(true)
			}
			return x
		}
		if x.String() == y.String() {
			return x
		}
		if complementary(x, y) {
			return Const(true)
		}
		return Or{x, y}
	case Not:
		x := fold(e.X)
		if c, ok := x.(Const); ok {
			return Const(!bool(c))
		}
		if n, ok := x.(Not); ok {
			return n.X
		}
		return Not{x}
	default:
		return e
	}
}

// complementary reports x == ¬y or ¬x == y syntactically.
func complementary(x, y Expr) bool {
	if n, ok := x.(Not); ok && n.X.String() == y.String() {
		return true
	}
	if n, ok := y.(Not); ok && n.X.String() == x.String() {
		return true
	}
	return false
}

// SimplifyBids normalizes every formula in a Bids table and merges
// rows whose normalized formulas coincide (summing values, preserving
// OR-bid semantics), dropping rows that simplify to FALSE or to value
// zero.
func SimplifyBids(b Bids) Bids {
	var out Bids
	index := make(map[string]int)
	for _, bid := range b {
		f := Simplify(bid.F)
		if c, ok := f.(Const); ok && !bool(c) {
			continue
		}
		key := f.String()
		if at, ok := index[key]; ok {
			out[at].Value += bid.Value
			continue
		}
		index[key] = len(out)
		out = append(out, Bid{F: f, Value: bid.Value})
	}
	// Drop zero-value rows (possibly created by merging +v and −v).
	kept := out[:0]
	for _, bid := range out {
		if bid.Value != 0 {
			kept = append(kept, bid)
		}
	}
	return kept
}
