package formula

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplifyBasics(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Click AND TRUE", "Click"},
		{"Click AND FALSE", "FALSE"},
		{"Click OR TRUE", "TRUE"},
		{"Click OR FALSE", "Click"},
		{"Click AND Click", "Click"},
		{"Click OR Click", "Click"},
		{"Click AND NOT Click", "FALSE"},
		{"Click OR NOT Click", "TRUE"},
		{"NOT NOT Click", "Click"},
		{"NOT (Click AND Slot1)", "NOT Click OR NOT Slot1"},
		{"NOT (Click OR Slot1)", "NOT Click AND NOT Slot1"},
		{"NOT TRUE", "FALSE"},
		{"NOT (Click AND TRUE)", "NOT Click"},
		{"(Click AND TRUE) OR (Slot1 AND FALSE)", "Click"},
	}
	for _, c := range cases {
		got := Simplify(MustParse(c.in)).String()
		if got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestSimplifyPreservesSemantics: the rewrite never changes the
// evaluation on any outcome.
func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 1000; trial++ {
		e := randomExpr(rng, 5)
		s := Simplify(e)
		for probe := 0; probe < 25; probe++ {
			o := randomOutcome(rng)
			if e.Eval(o) != s.Eval(o) {
				t.Fatalf("Simplify changed semantics:\n  in:  %s\n  out: %s\n  on %+v",
					e, s, o)
			}
		}
	}
}

// TestSimplifyIdempotent: simplifying twice is a no-op.
func TestSimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		once := Simplify(e)
		return Simplify(once).String() == once.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSimplifyBoundedGrowth: negation normal form can duplicate NOT
// nodes (De Morgan), but never more than doubles the formula.
func TestSimplifyBoundedGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 500; trial++ {
		e := randomExpr(rng, 5)
		if got, in := nodeCount(Simplify(e)), nodeCount(e); got > 2*in {
			t.Fatalf("Simplify grew %s (%d nodes) to %s (%d nodes)", e, in, Simplify(e), got)
		}
	}
}

func nodeCount(e Expr) int {
	switch e := e.(type) {
	case Not:
		return 1 + nodeCount(e.X)
	case And:
		return 1 + nodeCount(e.X) + nodeCount(e.Y)
	case Or:
		return 1 + nodeCount(e.X) + nodeCount(e.Y)
	default:
		return 1
	}
}

func TestSimplifyBids(t *testing.T) {
	b := Bids{
		{MustParse("Click AND TRUE"), 3},
		{MustParse("Click"), 2},           // merges with the row above
		{MustParse("Slot1 AND FALSE"), 9}, // drops
		{MustParse("Purchase"), 5},
		{MustParse("Purchase"), -5}, // cancels to zero and drops
	}
	out := SimplifyBids(b)
	if len(out) != 1 {
		t.Fatalf("SimplifyBids -> %v, want a single merged Click row", out)
	}
	if out[0].F.String() != "Click" || out[0].Value != 5 {
		t.Fatalf("merged row %v %g", out[0].F, out[0].Value)
	}
}

// TestSimplifyBidsPaymentEquivalent: compression never changes what
// an advertiser owes.
func TestSimplifyBidsPaymentEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 300; trial++ {
		var b Bids
		for i := 0; i < 1+rng.Intn(5); i++ {
			b = append(b, Bid{F: randomExpr(rng, 3), Value: float64(rng.Intn(10))})
		}
		s := SimplifyBids(b)
		for probe := 0; probe < 20; probe++ {
			o := randomOutcome(rng)
			if b.Payment(o) != s.Payment(o) {
				t.Fatalf("payment changed: %v -> %v on %+v", b, s, o)
			}
		}
	}
}

func TestTruthTableBidsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(4)
		tt := NewTruthTable(k)
		for slot := 0; slot <= k; slot++ {
			for _, cp := range reachable(slot) {
				if rng.Intn(2) == 0 {
					if err := tt.Set(slot, cp[0], cp[1], float64(rng.Intn(9))); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		bids := tt.Bids()
		// Every reachable outcome pays identically.
		for slot := 0; slot <= k; slot++ {
			for _, cp := range reachable(slot) {
				o := Outcome{Slot: slot, Clicked: cp[0], Purchased: cp[1]}
				if got, want := bids.Payment(o), tt.Payment(o); got != want {
					t.Fatalf("k=%d outcome %+v: bids pay %g, table says %g", k, o, got, want)
				}
			}
		}
		if !bids.OneDependent() {
			t.Fatal("truth-table bids must be 1-dependent")
		}
	}
}

func TestTruthTableSetValidation(t *testing.T) {
	tt := NewTruthTable(2)
	if err := tt.Set(3, false, false, 1); err == nil {
		t.Fatal("slot out of range accepted")
	}
	if err := tt.Set(1, false, true, 1); err == nil {
		t.Fatal("purchase without click accepted")
	}
	if err := tt.Set(0, true, false, 1); err == nil {
		t.Fatal("click without slot accepted")
	}
}

// TestFig2Shape reproduces the paper's Figure 2 rows: value 7 for
// (Purchase, Click, Slot1), 2 for (Click, Slot1, no purchase), 5 for
// (Purchase, Click, Slot3), 0 for (Click, Slot3, no purchase) — which
// is exactly the Figure 3 OR-bid {Purchase: 5, Slot1∨Slot2: 2}.
func TestFig2Shape(t *testing.T) {
	tt := NewTruthTable(3)
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(tt.Set(1, true, true, 7))
	check(tt.Set(1, true, false, 2))
	check(tt.Set(1, false, false, 2))
	check(tt.Set(2, true, true, 7))
	check(tt.Set(2, true, false, 2))
	check(tt.Set(2, false, false, 2))
	check(tt.Set(3, true, true, 5))
	check(tt.Set(0, false, false, 0))

	fig3 := Bids{
		{MustParse("Purchase"), 5},
		{MustParse("Slot1 OR Slot2"), 2},
	}
	for slot := 0; slot <= 3; slot++ {
		for _, cp := range reachable(slot) {
			o := Outcome{Slot: slot, Clicked: cp[0], Purchased: cp[1]}
			if tt.Payment(o) != fig3.Payment(o) {
				t.Fatalf("Figure 2 table and Figure 3 bids disagree on %+v: %g vs %g",
					o, tt.Payment(o), fig3.Payment(o))
			}
		}
	}
}
