package formula

import "fmt"

// TruthTable is the paper's Figure 2 representation: an explicit
// value for every truth assignment to the advertiser's predicates
// (Purchase, Click, Slot_1 … Slot_k). Its size is exponential in the
// number of predicates, which is why the paper compresses valuations
// into OR-bids on formulas; this type exists to express the
// conceptual model, convert it to a Bids table, and cross-check the
// compression.
type TruthTable struct {
	// Slots is k, the number of slot predicates.
	Slots int
	// Value maps an assignment index to the advertiser's value for
	// outcomes with that assignment. Indexing: bit 0 = Click, bit 1 =
	// Purchase, and the slot number occupies the remaining bits
	// (0 = unplaced, j = Slot_j); see Index.
	Value map[int]float64
}

// NewTruthTable returns an empty table over k slots.
func NewTruthTable(k int) *TruthTable {
	return &TruthTable{Slots: k, Value: make(map[int]float64)}
}

// Index encodes an outcome for table lookup. Contradictory
// assignments (a purchase without a click) do not arise from Outcome
// values.
func (t *TruthTable) Index(o Outcome) int {
	idx := o.Slot << 2
	if o.Clicked {
		idx |= 1
	}
	if o.Purchased {
		idx |= 2
	}
	return idx
}

// Set assigns a value to the outcome class (slot 0 = unplaced).
func (t *TruthTable) Set(slot int, clicked, purchased bool, v float64) error {
	if slot < 0 || slot > t.Slots {
		return fmt.Errorf("formula: slot %d out of range [0,%d]", slot, t.Slots)
	}
	if purchased && !clicked {
		return fmt.Errorf("formula: purchase without click is unreachable")
	}
	if clicked && slot == 0 {
		return fmt.Errorf("formula: click without a slot is unreachable")
	}
	t.Value[t.Index(Outcome{Slot: slot, Clicked: clicked, Purchased: purchased})] = v
	return nil
}

// Payment reads the advertiser's value for the outcome (0 when the
// class was never Set).
func (t *TruthTable) Payment(o Outcome) float64 {
	return t.Value[t.Index(o)]
}

// Bids compresses the table into an equivalent Bids table: one row
// per non-zero outcome class, whose formula is the minterm of the
// class — the direct constructive reading of the paper's remark that
// "conceptually, the advertiser associates a value with each truth
// assignment" while the run-time system stores OR-bids. The result
// pays exactly Payment(o) in every reachable outcome.
func (t *TruthTable) Bids() Bids {
	var out Bids
	// Deterministic order: slot, then click, then purchase.
	for slot := 0; slot <= t.Slots; slot++ {
		for _, cp := range reachable(slot) {
			o := Outcome{Slot: slot, Clicked: cp[0], Purchased: cp[1]}
			v := t.Value[t.Index(o)]
			if v == 0 {
				continue
			}
			out = append(out, Bid{F: minterm(t.Slots, slot, cp[0], cp[1]), Value: v})
		}
	}
	return out
}

// reachable lists the click/purchase combinations possible for a
// placement: an unplaced ad is never clicked.
func reachable(slot int) [][2]bool {
	if slot == 0 {
		return [][2]bool{{false, false}}
	}
	return [][2]bool{{false, false}, {true, false}, {true, true}}
}

// minterm builds the conjunction pinning exactly one outcome class.
// Slot position: Slot_j for a placement, Unplaced for none. Click and
// purchase are pinned with (possibly negated) literals; "no click"
// needs no purchase literal (purchases imply clicks).
func minterm(k, slot int, clicked, purchased bool) Expr {
	var pos Expr
	if slot == 0 {
		pos = Unplaced{}
	} else {
		pos = Slot{J: slot}
	}
	switch {
	case !clicked:
		return And{pos, Not{Click{}}}
	case clicked && !purchased:
		return And{pos, And{Click{}, Not{Purchase{}}}}
	default:
		return And{pos, Purchase{}}
	}
}
