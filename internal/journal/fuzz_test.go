package journal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// buildFuzzJournal writes a canonical multi-epoch journal (no
// compaction, so the journal holds the whole session) into dir and
// returns the raw journal and snapshot bytes.
func buildFuzzJournal(tb testing.TB, dir string) (journal, snap []byte) {
	tb.Helper()
	w, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		tb.Fatal(err)
	}
	const n, lanes = 12, 2
	if err := w.Begin(newZeroState(n, lanes)); err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for b := 0; b < 25; b++ {
		if b == 15 {
			if _, err := w.BeginEpoch(n, lanes, ReasonReset); err != nil {
				tb.Fatal(err)
			}
		}
		recs := make([]Spend, 0, 4)
		for j := 0; j < 4; j++ {
			recs = append(recs, Spend{Adv: uint32(rng.Intn(n)), Bits: bits(float64(rng.Intn(900)) / 4)})
		}
		if err := w.AppendSpend(w.Stats().Epoch, rng.Intn(lanes), uint64(b+1), 0, recs); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	journal, err = os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		tb.Fatal(err)
	}
	snap, err = os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		tb.Fatal(err)
	}
	return journal, snap
}

// FuzzJournalRecover is the adversarial-recovery contract: arbitrary
// truncation plus an arbitrary byte flip over a valid journal must (a)
// never panic, (b) never return a hard error, (c) report a corruption
// offset no later than the damage, and (d) recover exactly the state
// of the clean prefix that precedes the reported offset — the longest
// valid prefix, nothing more, nothing less.
func FuzzJournalRecover(f *testing.F) {
	f.Add(uint16(0), uint16(0), byte(0))
	f.Add(uint16(9999), uint16(8), byte(0x80))   // flip a length field
	f.Add(uint16(9999), uint16(0), byte(0xff))   // break the magic
	f.Add(uint16(50), uint16(9999), byte(0x01))  // truncate early
	f.Add(uint16(700), uint16(200), byte(0x10))  // truncate + flip
	f.Add(uint16(9999), uint16(120), byte(0x04)) // flip mid-record
	f.Fuzz(func(t *testing.T, truncAt, flipOff uint16, flipVal byte) {
		base := t.TempDir()
		clean, snap := buildFuzzJournal(t, base)

		mutated := append([]byte(nil), clean...)
		if int(truncAt) < len(mutated) {
			mutated = mutated[:truncAt]
		}
		flipped := -1
		if flipVal != 0 && len(mutated) > 0 {
			flipped = int(flipOff) % len(mutated)
			mutated[flipped] ^= flipVal
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, SnapshotFile), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, JournalFile), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir) // must not panic
		if err != nil {
			t.Fatalf("hard error on soft corruption: %v", err)
		}

		damaged := int(truncAt) < len(clean) || flipped >= 0
		if damaged && rec.CorruptOffset < 0 && flipped >= 0 {
			// A flip that recovery calls clean can only be a CRC
			// collision (probability 2^-32 per try); treat as failure
			// so a checksum regression cannot hide.
			t.Fatalf("flipped byte at %d not detected", flipped)
		}
		if rec.CorruptOffset >= 0 {
			if flipped >= 0 && rec.CorruptOffset > int64(flipped) {
				t.Fatalf("corruption reported at %d, after the flipped byte %d", rec.CorruptOffset, flipped)
			}
			if rec.CorruptReason == "" {
				t.Fatal("corruption reported without a reason")
			}
		}

		// Longest-valid-prefix equivalence: recovering the mutated
		// journal equals recovering its intact prefix. Bytes before
		// CorruptOffset are untouched (the flip lands inside the
		// record that stops replay), so the prefix is cut from the
		// clean bytes.
		end := int64(len(mutated))
		if rec.CorruptOffset >= 0 {
			end = rec.CorruptOffset
		}
		prefixDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(prefixDir, SnapshotFile), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(prefixDir, JournalFile), clean[:min(end, int64(len(clean)))], 0o644); err != nil {
			t.Fatal(err)
		}
		want, err := Recover(prefixDir)
		if err != nil {
			t.Fatal(err)
		}
		if (want.State == nil) != (rec.State == nil) {
			t.Fatalf("prefix state nil=%v, mutated state nil=%v", want.State == nil, rec.State == nil)
		}
		if want.State != nil {
			statesEqual(t, want.State, rec.State, "fuzz prefix")
		}
	})
}
