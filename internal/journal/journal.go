// Package journal makes budget spend durable: an append-only,
// checksummed, length-prefixed record log plus a periodically rewritten
// snapshot, from which Recover reconstructs the spend state of a
// budget.Ledger bit-exactly (snapshot base + replayed tail).
//
// # On-disk layout
//
// A journal directory holds two files:
//
//	spend.journal   magic "SSAJRN01", then a sequence of framed records
//	ledger.snap     magic "SSASNP01", then exactly one framed snapshot
//
// Every frame is
//
//	u32 payload length (little endian)
//	u32 CRC32 (IEEE) of the payload
//	payload bytes
//
// so a torn tail (partial frame, short payload, bit rot anywhere in the
// frame) is detected by the length/checksum pair and recovery stops at
// the last intact record — the longest valid prefix — without losing
// anything before it.
//
// Record payloads carry a session id (drawn at Begin time), a strictly
// increasing sequence number, and an epoch. The snapshot carries the
// session and the sequence number it covers, which makes the crash
// window between "snapshot renamed into place" and "journal truncated"
// harmless: replay skips records already covered by the snapshot
// (seq <= snapshot seq) and records from an older session entirely.
//
// # Durability contract
//
// Appends are written straight to the file descriptor — there is no
// user-space buffering — so every record handed to the Writer survives
// a process crash (SIGKILL included) as soon as AppendSpend returns.
// FsyncAlways additionally fsyncs per append and extends the guarantee
// to power loss, at a large throughput cost. What is *not* covered is
// spend still sitting in the budget lanes' batch buffers: that tail is
// bounded by the same K·R·P argument as snapshot staleness (see
// DESIGN.md "Durable budgets and crash recovery").
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

const (
	journalMagic = "SSAJRN01"
	snapMagic    = "SSASNP01"

	// JournalFile and SnapshotFile are the file names inside a journal
	// directory.
	JournalFile  = "spend.journal"
	SnapshotFile = "ledger.snap"
	snapshotTmp  = "ledger.snap.tmp"

	// maxRecordLen bounds a single frame's payload so a corrupted
	// length field cannot make recovery attempt a multi-gigabyte read.
	// Snapshots are the largest frames (8 bytes per advertiser per
	// lane); 256 MiB covers ~1e6 advertisers × 32 lanes.
	maxRecordLen = 256 << 20

	recKindEpoch = 1
	recKindSpend = 2

	// maxDims sanity-bounds the population/lane counts a record may
	// declare before recovery allocates state for them.
	maxN     = 1 << 26
	maxLanes = 1 << 16
)

// Fsync selects the writer's fsync policy.
type Fsync uint8

const (
	// FsyncNever (the default) never fsyncs on the append path.
	// Records still survive process crashes — they are in the kernel
	// page cache the moment AppendSpend returns — but not power loss.
	FsyncNever Fsync = iota
	// FsyncAlways fsyncs the journal after every append (and snapshots
	// are always fsynced before being renamed into place). Survives
	// power loss; costs a disk round-trip per batch.
	FsyncAlways
)

func (f Fsync) String() string {
	switch f {
	case FsyncNever:
		return "never"
	case FsyncAlways:
		return "always"
	}
	return fmt.Sprintf("Fsync(%d)", uint8(f))
}

// ParseFsync parses the -fsync flag values understood by auctionsim.
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "never":
		return FsyncNever, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want never or always)", s)
}

// Reason records why an epoch began, for diagnostics.
type Reason uint8

const (
	// ReasonBoot is the implicit first epoch of a fresh journal.
	ReasonBoot Reason = iota
	// ReasonChurn marks an advertiser-population rebuild: the old
	// ledger is gone and spend restarts from zero over a new world.
	ReasonChurn
	// ReasonReset marks a budget reset ("next day"): same population,
	// fresh ledger, exhausted advertisers re-admitted.
	ReasonReset
)

func (r Reason) String() string {
	switch r {
	case ReasonBoot:
		return "boot"
	case ReasonChurn:
		return "churn"
	case ReasonReset:
		return "reset"
	}
	return fmt.Sprintf("Reason(%d)", uint8(r))
}

// Spend is one advertiser charge inside a batch. Amounts travel as
// float64 bits so replay reproduces lane sums bit-exactly.
type Spend struct {
	Adv  uint32
	Bits uint64
}

// LedgerState is the journal's view of a budget ledger: per-lane
// cumulative spend (lane-major, so replaying additions in record order
// reproduces each lane's float64 sum bitwise), per-lane auction clocks
// and denial counters, and the journal cursor (session/seq/epoch) the
// state was captured at.
type LedgerState struct {
	Session uint64
	Seq     uint64
	Epoch   uint64
	N       int
	Lanes   int
	Cum     [][]float64 // [lane][advertiser] cumulative spend
	LaneT   []uint64    // per-lane auction counter
	Denied  []int64     // per-lane denied-charge counter
}

// TotalSpend sums all lanes' cumulative spend.
func (st *LedgerState) TotalSpend() float64 {
	var s float64
	for _, lane := range st.Cum {
		for _, v := range lane {
			s += v
		}
	}
	return s
}

// Spent sums advertiser i's spend across lanes in lane order — the
// same order budget.Ledger.ExactSpent uses, so the two agree bitwise.
func (st *LedgerState) Spent(i int) float64 {
	var s float64
	for _, lane := range st.Cum {
		s += lane[i]
	}
	return s
}

func (st *LedgerState) clone() *LedgerState {
	c := *st
	c.Cum = make([][]float64, len(st.Cum))
	for q := range st.Cum {
		c.Cum[q] = append([]float64(nil), st.Cum[q]...)
	}
	c.LaneT = append([]uint64(nil), st.LaneT...)
	c.Denied = append([]int64(nil), st.Denied...)
	return &c
}

func newZeroState(n, lanes int) *LedgerState {
	st := &LedgerState{
		N:      n,
		Lanes:  lanes,
		Cum:    make([][]float64, lanes),
		LaneT:  make([]uint64, lanes),
		Denied: make([]int64, lanes),
	}
	for q := range st.Cum {
		st.Cum[q] = make([]float64, n)
	}
	return st
}

// Options configures a Writer.
type Options struct {
	// Fsync policy; default FsyncNever.
	Fsync Fsync
	// SnapshotEvery is the number of journal bytes appended between
	// snapshot compactions. 0 means the 4 MiB default; negative
	// disables compaction entirely (the journal only shrinks at the
	// next Begin).
	SnapshotEvery int64
	// MaxBatch is the spend-record batch size the writer sizes its
	// encode buffer for (larger batches still work, they just grow the
	// buffer once). 0 means 1024. budget lanes use this as their batch
	// buffer capacity so the append path never allocates.
	MaxBatch int
}

const (
	defaultSnapshotEvery = 4 << 20
	defaultMaxBatch      = 1024
)

// Stats is a point-in-time summary of a Writer.
type Stats struct {
	Session      uint64
	Seq          uint64
	Epoch        uint64
	Records      int64 // framed records appended this session
	StaleDropped int64 // appends dropped because their epoch had passed
	Snapshots    int64 // compactions performed (excluding the Begin base)
	JournalBytes int64 // journal size since the last snapshot
	TotalSpend   float64
}

// Writer is the durable side of the journal: it owns the two files in
// a journal directory and mirrors every accepted record into an
// in-memory shadow LedgerState, which is both the snapshot source for
// compaction and the ground truth that recovery is tested against.
//
// All methods are safe for concurrent use. Errors on the append path
// are sticky: the first failure is kept, later appends become no-ops,
// and Err/Close surface it — a full disk degrades durability, never
// the auction path.
type Writer struct {
	mu   sync.Mutex
	dir  string
	opts Options
	jf   *os.File

	begun  bool
	closed bool
	err    error

	session uint64
	seq     uint64
	epoch   uint64
	reason  Reason

	shadow *LedgerState

	enc     []byte // preallocated frame encode buffer
	snapBuf []byte // preallocated snapshot encode buffer

	journalBytes int64
	records      int64
	stale        int64
	snapshots    int64

	// Telemetry hooks. fsyncRec (set once at engine construction, under
	// mu) receives per-append fsync latencies when the policy is
	// FsyncAlways; lastSnap is the wall-clock stamp of the most recent
	// snapshot, atomic so gauges can read it without taking mu.
	fsyncRec LatencyRecorder
	lastSnap atomic.Int64
}

// LatencyRecorder receives nanosecond latency observations — the shape
// of obs.Histogram.Record, declared here so the journal does not
// depend on the telemetry package.
type LatencyRecorder interface {
	Record(ns int64)
}

// SetFsyncRecorder installs a sink for fsync latencies on the
// FsyncAlways append path. Timing is taken only when a recorder is
// installed; pass nil to detach.
func (w *Writer) SetFsyncRecorder(r LatencyRecorder) {
	w.mu.Lock()
	w.fsyncRec = r
	w.mu.Unlock()
}

// LastSnapshotNanos returns the UnixNano stamp of the most recent
// snapshot written this session, or 0 before the first Begin. Safe to
// call without blocking the append path.
func (w *Writer) LastSnapshotNanos() int64 { return w.lastSnap.Load() }

// Open creates the journal directory if needed and opens (or creates)
// the journal file. No bytes are written until Begin.
func Open(dir string, opts Options) (*Writer, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = defaultMaxBatch
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	// A tmp snapshot left by a crash mid-compaction is garbage.
	_ = os.Remove(filepath.Join(dir, snapshotTmp))
	jf, err := os.OpenFile(filepath.Join(dir, JournalFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	w := &Writer{
		dir:  dir,
		opts: opts,
		jf:   jf,
		enc:  make([]byte, 0, 64+12*opts.MaxBatch),
	}
	return w, nil
}

// Dir returns the journal directory.
func (w *Writer) Dir() string { return w.dir }

// MaxBatch returns the batch size the writer is tuned for; budget
// lanes size their append buffers to it.
func (w *Writer) MaxBatch() int { return w.opts.MaxBatch }

// Begin starts a new session from st: it writes st as the base
// snapshot (atomically: tmp file, fsync, rename) and truncates the
// journal to an empty log. st is copied; it may be nil for an empty
// 0×0 base (useful only in tests — engines always pass the ledger's
// real dimensions). Sequence numbering continues from st.Seq so
// cursors remain monotone across restarts; the session id is always
// freshly drawn, which is what retires any pre-crash journal tail.
func (w *Writer) Begin(st *LedgerState) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("journal: Begin on closed writer")
	}
	if w.err != nil {
		return w.err
	}
	if st == nil {
		st = newZeroState(0, 0)
	}
	if st.N < 0 || st.N > maxN || st.Lanes < 0 || st.Lanes > maxLanes {
		return fmt.Errorf("journal: Begin: implausible dimensions n=%d lanes=%d", st.N, st.Lanes)
	}
	w.shadow = st.clone()
	if w.shadow.Epoch == 0 {
		w.shadow.Epoch = 1
	}
	w.session = uint64(time.Now().UnixNano())
	w.shadow.Session = w.session
	w.seq = w.shadow.Seq
	w.epoch = w.shadow.Epoch
	w.reason = ReasonBoot
	if err := w.writeSnapshotLocked(); err != nil {
		w.err = err
		return err
	}
	if err := w.resetJournalLocked(); err != nil {
		w.err = err
		return err
	}
	w.begun = true
	return nil
}

// BeginEpoch starts a new ledger epoch (churn rebuild or budget
// reset): the shadow state is replaced by an all-zero n×lanes state
// and an epoch record is journaled so replay performs the same reset.
// It returns the new epoch id; appends carrying an older epoch are
// dropped from then on (the pre-swap lanes' final flushes race the
// swap by design — their spend belongs to a discarded ledger).
//
// Errors are sticky like any append error; callers that cannot abort
// mid-swap may ignore the return and rely on Err/Close.
func (w *Writer) BeginEpoch(n, lanes int, reason Reason) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("journal: BeginEpoch on closed writer")
	}
	if !w.begun {
		return 0, fmt.Errorf("journal: BeginEpoch before Begin")
	}
	if n < 0 || n > maxN || lanes < 0 || lanes > maxLanes {
		return 0, fmt.Errorf("journal: BeginEpoch: implausible dimensions n=%d lanes=%d", n, lanes)
	}
	if w.err != nil {
		return 0, w.err
	}
	w.epoch++
	w.seq++
	w.reason = reason
	sh := newZeroState(n, lanes)
	sh.Session = w.session
	sh.Seq = w.seq
	sh.Epoch = w.epoch
	w.shadow = sh
	if err := w.appendEpochLocked(reason); err != nil {
		w.err = err
		return 0, err
	}
	return w.epoch, nil
}

// appendEpochLocked journals an epoch record at the writer's current
// cursor (session, seq, epoch, shadow dimensions).
func (w *Writer) appendEpochLocked(reason Reason) error {
	p := w.enc[:0]
	p = append(p, recKindEpoch)
	p = binary.LittleEndian.AppendUint64(p, w.session)
	p = binary.LittleEndian.AppendUint64(p, w.seq)
	p = binary.LittleEndian.AppendUint64(p, w.epoch)
	p = binary.LittleEndian.AppendUint32(p, uint32(w.shadow.N))
	p = binary.LittleEndian.AppendUint32(p, uint32(w.shadow.Lanes))
	p = append(p, byte(reason))
	w.enc = p
	return w.appendFrameLocked(p)
}

// AppendSpend journals one lane's batch of charges. epoch is the
// ledger epoch the charges belong to; a batch from a retired epoch is
// silently dropped (counted in Stats.StaleDropped) because its ledger
// has already been replaced. laneT and denied are the lane's current
// auction clock and denial counter — absolute values, not deltas, so
// replay is idempotent for them. recs amounts are float64 bits and are
// added to the shadow state in slice order, which is the lane's charge
// order; this is what makes recovery bitwise.
//
// The call does not allocate for batches up to MaxBatch.
func (w *Writer) AppendSpend(epoch uint64, lane int, laneT uint64, denied int64, recs []Spend) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.err != nil || !w.begun {
		// Sticky error (or misuse): the auction path must not stall on
		// a dead journal. Err/Close surface the condition.
		return w.err
	}
	if epoch != w.epoch {
		w.stale++
		return nil
	}
	sh := w.shadow
	if lane < 0 || lane >= sh.Lanes {
		w.err = fmt.Errorf("journal: AppendSpend: lane %d out of range [0,%d)", lane, sh.Lanes)
		return w.err
	}
	w.seq++
	p := w.enc[:0]
	p = append(p, recKindSpend)
	p = binary.LittleEndian.AppendUint64(p, w.session)
	p = binary.LittleEndian.AppendUint64(p, w.seq)
	p = binary.LittleEndian.AppendUint64(p, epoch)
	p = binary.LittleEndian.AppendUint32(p, uint32(lane))
	p = binary.LittleEndian.AppendUint64(p, laneT)
	p = binary.LittleEndian.AppendUint64(p, uint64(denied))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(recs)))
	cum := sh.Cum[lane]
	for _, r := range recs {
		if int(r.Adv) >= sh.N {
			w.err = fmt.Errorf("journal: AppendSpend: advertiser %d out of range [0,%d)", r.Adv, sh.N)
			return w.err
		}
		p = binary.LittleEndian.AppendUint32(p, r.Adv)
		p = binary.LittleEndian.AppendUint64(p, r.Bits)
		cum[r.Adv] += frombits(r.Bits)
	}
	w.enc = p
	sh.LaneT[lane] = laneT
	sh.Denied[lane] = denied
	sh.Seq = w.seq
	if err := w.appendFrameLocked(p); err != nil {
		w.err = err
		return err
	}
	if w.opts.SnapshotEvery > 0 && w.journalBytes >= w.opts.SnapshotEvery {
		if err := w.compactLocked(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// Sync forces the journal file to stable storage regardless of the
// fsync policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	if err := w.jf.Sync(); err != nil && w.err == nil {
		w.err = fmt.Errorf("journal: sync: %w", err)
	}
	return w.err
}

// Err returns the writer's sticky error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats returns a point-in-time summary.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := Stats{
		Session:      w.session,
		Seq:          w.seq,
		Epoch:        w.epoch,
		Records:      w.records,
		StaleDropped: w.stale,
		Snapshots:    w.snapshots,
		JournalBytes: w.journalBytes,
	}
	if w.shadow != nil {
		s.TotalSpend = w.shadow.TotalSpend()
	}
	return s
}

// State returns a copy of the writer's shadow state — the exact state
// Recover reproduces when the journal is intact.
func (w *Writer) State() *LedgerState {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.shadow == nil {
		return nil
	}
	return w.shadow.clone()
}

// Close flushes (fsync) and closes the journal. It is idempotent:
// the first call does the work, later calls return the same result.
// The sticky append error, if any, is what Close returns — a crashed
// disk is reported here at the latest, never swallowed.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.jf != nil {
		if err := w.jf.Sync(); err != nil && w.err == nil {
			w.err = fmt.Errorf("journal: close sync: %w", err)
		}
		if err := w.jf.Close(); err != nil && w.err == nil {
			w.err = fmt.Errorf("journal: close: %w", err)
		}
	}
	return w.err
}

// appendFrameLocked frames payload and writes it straight through to
// the journal fd (no user-space buffering: a SIGKILL after return
// cannot lose the record).
func (w *Writer) appendFrameLocked(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.jf.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if _, err := w.jf.Write(payload); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if w.opts.Fsync == FsyncAlways {
		var t0 time.Time
		if w.fsyncRec != nil {
			t0 = time.Now()
		}
		if err := w.jf.Sync(); err != nil {
			return fmt.Errorf("journal: append sync: %w", err)
		}
		if w.fsyncRec != nil {
			w.fsyncRec.Record(time.Since(t0).Nanoseconds())
		}
	}
	w.journalBytes += int64(8 + len(payload))
	w.records++
	return nil
}

// compactLocked rewrites the snapshot from the shadow state and
// truncates the journal. Crash-safe at every step: the snapshot is
// renamed into place only after an fsync, and if the process dies
// between the rename and the truncate, replay skips the journal
// records the new snapshot already covers (seq <= snapshot seq).
func (w *Writer) compactLocked() error {
	if err := w.writeSnapshotLocked(); err != nil {
		return err
	}
	if err := w.resetJournalLocked(); err != nil {
		return err
	}
	w.snapshots++
	return nil
}

func (w *Writer) writeSnapshotLocked() error {
	sh := w.shadow
	need := 8 + 8 + 1 + 8*6 + 8*len(sh.LaneT) + 8*len(sh.Denied) + 8*sh.N*sh.Lanes + 64
	if cap(w.snapBuf) < need {
		w.snapBuf = make([]byte, 0, need)
	}
	p := w.snapBuf[:0]
	p = append(p, snapMagic...)
	// Frame header goes at [8,16); payload follows.
	p = append(p, 0, 0, 0, 0, 0, 0, 0, 0)
	p = binary.LittleEndian.AppendUint64(p, w.session)
	p = binary.LittleEndian.AppendUint64(p, w.seq)
	p = binary.LittleEndian.AppendUint64(p, w.epoch)
	p = binary.LittleEndian.AppendUint32(p, uint32(sh.N))
	p = binary.LittleEndian.AppendUint32(p, uint32(sh.Lanes))
	snapNanos := time.Now().UnixNano()
	p = binary.LittleEndian.AppendUint64(p, uint64(snapNanos))
	for _, t := range sh.LaneT {
		p = binary.LittleEndian.AppendUint64(p, t)
	}
	for _, d := range sh.Denied {
		p = binary.LittleEndian.AppendUint64(p, uint64(d))
	}
	for _, lane := range sh.Cum {
		for _, v := range lane {
			p = binary.LittleEndian.AppendUint64(p, bits(v))
		}
	}
	payload := p[16:]
	binary.LittleEndian.PutUint32(p[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(p[12:16], crc32.ChecksumIEEE(payload))
	w.snapBuf = p

	tmp := filepath.Join(w.dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if _, err := f.Write(p); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, SnapshotFile)); err != nil {
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	w.lastSnap.Store(snapNanos)
	return nil
}

func (w *Writer) resetJournalLocked() error {
	if err := w.jf.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncate: %w", err)
	}
	if _, err := w.jf.Seek(0, 0); err != nil {
		return fmt.Errorf("journal: seek: %w", err)
	}
	if _, err := w.jf.Write([]byte(journalMagic)); err != nil {
		return fmt.Errorf("journal: header: %w", err)
	}
	w.journalBytes = 0
	// An epoch marker at the journal head carries the writer's current
	// cursor at the same seq the snapshot covers. With an intact
	// snapshot replay skips it (covered); if the snapshot is lost or
	// corrupted it seeds a zero-base state so the tail still lands —
	// best-effort rather than orphaned.
	if err := w.appendEpochLocked(w.reason); err != nil {
		return err
	}
	if w.opts.Fsync == FsyncAlways {
		if err := w.jf.Sync(); err != nil {
			return fmt.Errorf("journal: header sync: %w", err)
		}
	}
	return nil
}
