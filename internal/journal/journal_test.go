package journal

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// fill appends deterministic pseudo-random batches across lanes and
// returns nothing; the writer's shadow state is the ground truth.
func fill(t *testing.T, w *Writer, rng *rand.Rand, n, lanes, batches, perBatch int) {
	t.Helper()
	for b := 0; b < batches; b++ {
		lane := rng.Intn(lanes)
		recs := make([]Spend, 0, perBatch)
		for j := 0; j < perBatch; j++ {
			recs = append(recs, Spend{
				Adv:  uint32(rng.Intn(n)),
				Bits: bits(float64(rng.Intn(5000)) / 100),
			})
		}
		if err := w.AppendSpend(w.Stats().Epoch, lane, uint64(b+1), int64(b%3), recs); err != nil {
			t.Fatalf("AppendSpend: %v", err)
		}
	}
}

func statesEqual(t *testing.T, want, got *LedgerState, ctx string) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: recovered state is nil", ctx)
	}
	if got.N != want.N || got.Lanes != want.Lanes {
		t.Fatalf("%s: dims %dx%d, want %dx%d", ctx, got.N, got.Lanes, want.N, want.Lanes)
	}
	if got.Epoch != want.Epoch {
		t.Fatalf("%s: epoch %d, want %d", ctx, got.Epoch, want.Epoch)
	}
	for q := range want.Cum {
		if got.LaneT[q] != want.LaneT[q] {
			t.Fatalf("%s: lane %d clock %d, want %d", ctx, q, got.LaneT[q], want.LaneT[q])
		}
		if got.Denied[q] != want.Denied[q] {
			t.Fatalf("%s: lane %d denied %d, want %d", ctx, q, got.Denied[q], want.Denied[q])
		}
		for i := range want.Cum[q] {
			if math.Float64bits(got.Cum[q][i]) != math.Float64bits(want.Cum[q][i]) {
				t.Fatalf("%s: lane %d adv %d: %v (%#x), want %v (%#x) — recovery must be bitwise",
					ctx, q, i, got.Cum[q][i], math.Float64bits(got.Cum[q][i]),
					want.Cum[q][i], math.Float64bits(want.Cum[q][i]))
			}
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n, lanes = 40, 3
	if err := w.Begin(newZeroState(n, lanes)); err != nil {
		t.Fatal(err)
	}
	fill(t, w, rand.New(rand.NewSource(1)), n, lanes, 200, 7)
	want := w.State()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CorruptOffset != -1 {
		t.Fatalf("clean journal reported corrupt at %d (%s)", rec.CorruptOffset, rec.CorruptReason)
	}
	if !rec.SnapshotLoaded {
		t.Fatal("base snapshot not loaded")
	}
	if rec.Replayed != 200 {
		t.Fatalf("replayed %d records, want 200", rec.Replayed)
	}
	statesEqual(t, want, rec.State, "round trip")
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny compaction interval: every few batches rewrites the
	// snapshot and truncates the journal.
	w, err := Open(dir, Options{SnapshotEvery: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const n, lanes = 60, 4
	if err := w.Begin(newZeroState(n, lanes)); err != nil {
		t.Fatal(err)
	}
	fill(t, w, rand.New(rand.NewSource(2)), n, lanes, 500, 9)
	st := w.Stats()
	if st.Snapshots == 0 {
		t.Fatal("expected at least one compaction")
	}
	want := w.State()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 4<<10 {
		t.Fatalf("journal is %d bytes after compaction; truncation is not happening", info.Size())
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CorruptOffset != -1 {
		t.Fatalf("clean journal reported corrupt at %d (%s)", rec.CorruptOffset, rec.CorruptReason)
	}
	statesEqual(t, want, rec.State, "compacted")
}

func TestJournalEpochs(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n, lanes = 20, 2
	if err := w.Begin(newZeroState(n, lanes)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	fill(t, w, rng, n, lanes, 50, 5)
	oldEpoch := w.Stats().Epoch

	// Reset: new epoch over the same population.
	ep, err := w.BeginEpoch(n, lanes, ReasonReset)
	if err != nil {
		t.Fatal(err)
	}
	if ep != oldEpoch+1 {
		t.Fatalf("epoch %d after reset, want %d", ep, oldEpoch+1)
	}
	// A straggler flush from the retired ledger must be dropped.
	if err := w.AppendSpend(oldEpoch, 0, 99, 0, []Spend{{Adv: 1, Bits: bits(1e9)}}); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().StaleDropped; got != 1 {
		t.Fatalf("StaleDropped = %d, want 1", got)
	}
	fill(t, w, rng, n, lanes, 30, 5)

	// Churn: different population size.
	const n2, lanes2 = 35, 3
	if _, err := w.BeginEpoch(n2, lanes2, ReasonChurn); err != nil {
		t.Fatal(err)
	}
	fill(t, w, rng, n2, lanes2, 30, 5)

	want := w.State()
	if want.TotalSpend() >= 1e9 {
		t.Fatal("stale append leaked into shadow state")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CorruptOffset != -1 {
		t.Fatalf("clean journal reported corrupt at %d (%s)", rec.CorruptOffset, rec.CorruptReason)
	}
	statesEqual(t, want, rec.State, "epochs")
}

func TestJournalResume(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n, lanes = 25, 2
	if err := w.Begin(newZeroState(n, lanes)); err != nil {
		t.Fatal(err)
	}
	fill(t, w, rand.New(rand.NewSource(4)), n, lanes, 80, 6)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A second process resumes from the recovered state.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Begin(rec.State); err != nil {
		t.Fatal(err)
	}
	if got := w2.Stats().Seq; got != rec.State.Seq {
		t.Fatalf("resumed seq %d, want %d (cursors must stay monotone)", got, rec.State.Seq)
	}
	fill(t, w2, rand.New(rand.NewSource(5)), n, lanes, 80, 6)
	want := w2.State()
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, want, rec2.State, "resume")
	if rec2.State.TotalSpend() <= rec.State.TotalSpend() {
		t.Fatal("resumed session lost the base spend")
	}
}

// TestJournalSnapshotCovers simulates the crash window between
// "snapshot renamed into place" and "journal truncated": the journal
// still holds records the snapshot already includes, and replay must
// skip them instead of double-counting.
func TestJournalSnapshotCovers(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n, lanes = 30, 2
	if err := w.Begin(newZeroState(n, lanes)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	fill(t, w, rng, n, lanes, 60, 5)
	// White box: write the snapshot without truncating the journal —
	// exactly the state a crash between the two steps leaves behind.
	w.mu.Lock()
	if err := w.writeSnapshotLocked(); err != nil {
		w.mu.Unlock()
		t.Fatal(err)
	}
	w.mu.Unlock()
	fill(t, w, rng, n, lanes, 40, 5)
	want := w.State()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Covered != 61 { // 60 spend batches + the head epoch marker
		t.Fatalf("Covered = %d, want 61", rec.Covered)
	}
	if rec.Replayed != 40 {
		t.Fatalf("Replayed = %d, want 40", rec.Replayed)
	}
	statesEqual(t, want, rec.State, "snapshot covers")
}

// TestJournalSnapshotCorrupt: when the snapshot is damaged, recovery
// reports it and falls back to the journal alone. Within one
// uncompacted session that is still the complete, bit-exact state
// (the head epoch marker seeds the zero base).
func TestJournalSnapshotCorrupt(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n, lanes = 30, 2
	if err := w.Begin(newZeroState(n, lanes)); err != nil {
		t.Fatal(err)
	}
	fill(t, w, rand.New(rand.NewSource(7)), n, lanes, 100, 5)
	want := w.State()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotFile)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotErr == "" {
		t.Fatal("corrupted snapshot not reported")
	}
	if rec.SnapshotLoaded {
		t.Fatal("corrupted snapshot was loaded")
	}
	statesEqual(t, want, rec.State, "journal-only")
}

// TestJournalTornAndCorrupt drives the longest-valid-prefix contract
// with targeted damage; FuzzJournalRecover generalizes it.
func TestJournalTornAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n, lanes = 30, 2
	if err := w.Begin(newZeroState(n, lanes)); err != nil {
		t.Fatal(err)
	}
	fill(t, w, rand.New(rand.NewSource(8)), n, lanes, 120, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncate mid-payload", func(b []byte) []byte { return b[:len(b)-11] }},
		{"truncate mid-header", func(b []byte) []byte { return b[:len(b)/2] }},
		{"flip payload byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[3*len(c)/4] ^= 0x40
			return c
		}},
		{"flip length byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(journalMagic)] ^= 0x80 // first record's length field
			return c
		}},
		{"zero tail", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			for i := len(c) - 40; i < len(c); i++ {
				c[i] = 0
			}
			return c
		}},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := t.TempDir()
			if err := os.WriteFile(filepath.Join(d, SnapshotFile), snap, 0o644); err != nil {
				t.Fatal(err)
			}
			mutated := tc.mut(append([]byte(nil), clean...))
			if err := os.WriteFile(filepath.Join(d, JournalFile), mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			rec, err := Recover(d)
			if err != nil {
				t.Fatalf("Recover returned hard error on soft corruption: %v", err)
			}
			if rec.CorruptOffset < 0 {
				t.Fatal("corruption not reported")
			}
			if rec.CorruptReason == "" {
				t.Fatal("corruption reported without a reason")
			}
			// The recovered state must equal recovering the clean
			// prefix that precedes the damaged record.
			prefixDir := t.TempDir()
			if err := os.WriteFile(filepath.Join(prefixDir, SnapshotFile), snap, 0o644); err != nil {
				t.Fatal(err)
			}
			end := rec.CorruptOffset
			if end > int64(len(clean)) {
				end = int64(len(clean))
			}
			if err := os.WriteFile(filepath.Join(prefixDir, JournalFile), clean[:end], 0o644); err != nil {
				t.Fatal(err)
			}
			want, err := Recover(prefixDir)
			if err != nil {
				t.Fatal(err)
			}
			if want.State == nil {
				if rec.State != nil {
					t.Fatal("mutated recovery produced state, clean prefix did not")
				}
				return
			}
			statesEqual(t, want.State, rec.State, tc.name)
		})
	}
}

// TestJournalDuplicateEpoch: a hand-crafted duplicate of an epoch
// record (same seq replayed twice) must stop recovery at the
// duplicate — sequence numbers only move forward — without panicking.
func TestJournalDuplicateEpoch(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n, lanes = 10, 2
	if err := w.Begin(newZeroState(n, lanes)); err != nil {
		t.Fatal(err)
	}
	fill(t, w, rand.New(rand.NewSource(9)), n, lanes, 10, 3)
	if _, err := w.BeginEpoch(n, lanes, ReasonReset); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, JournalFile)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The final record is the reset epoch record; duplicate its frame.
	const epochFrame = 8 + 1 + 8 + 8 + 8 + 4 + 4 + 1
	dup := append(buf, buf[len(buf)-epochFrame:]...)
	if err := os.WriteFile(path, dup, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CorruptOffset != int64(len(buf)) {
		t.Fatalf("CorruptOffset = %d, want %d (the duplicated record)", rec.CorruptOffset, len(buf))
	}
	if rec.State == nil || rec.State.Epoch != 2 {
		t.Fatal("state before the duplicate was not recovered")
	}
}

// TestJournalStickyError: appends after the writer is poisoned are
// no-ops and Close surfaces the first error.
func TestJournalStickyError(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(newZeroState(5, 1)); err != nil {
		t.Fatal(err)
	}
	// Out-of-range advertiser poisons the writer.
	if err := w.AppendSpend(1, 0, 1, 0, []Spend{{Adv: 99, Bits: bits(1)}}); err == nil {
		t.Fatal("expected error for out-of-range advertiser")
	}
	first := w.Err()
	if first == nil {
		t.Fatal("error not sticky")
	}
	if err := w.AppendSpend(1, 0, 2, 0, []Spend{{Adv: 0, Bits: bits(1)}}); err != first {
		t.Fatalf("poisoned append returned %v, want the sticky %v", err, first)
	}
	if err := w.Close(); err != first {
		t.Fatalf("Close returned %v, want the sticky %v", err, first)
	}
	if err := w.Close(); err != first {
		t.Fatalf("second Close returned %v, want the sticky %v", err, first)
	}
}

func TestJournalRecoverEmptyDir(t *testing.T) {
	rec, err := Recover(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != nil || rec.SnapshotLoaded || rec.CorruptOffset != -1 {
		t.Fatalf("empty dir recovered %+v", rec)
	}
}

func TestParseFsync(t *testing.T) {
	if f, err := ParseFsync("never"); err != nil || f != FsyncNever {
		t.Fatalf("never -> %v, %v", f, err)
	}
	if f, err := ParseFsync("always"); err != nil || f != FsyncAlways {
		t.Fatalf("always -> %v, %v", f, err)
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}
