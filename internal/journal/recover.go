package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"
)

func bits(v float64) uint64     { return math.Float64bits(v) }
func frombits(b uint64) float64 { return math.Float64frombits(b) }
func crc32IEEE(p []byte) uint32 { return crc32.ChecksumIEEE(p) }

// Recovery is the result of replaying a journal directory.
type Recovery struct {
	// State is the recovered ledger state: snapshot base plus every
	// intact, in-session, uncovered journal record, applied in order.
	// Nil only when the directory holds neither a usable snapshot nor
	// a single usable record (a fresh or fully corrupted directory).
	State *LedgerState

	// SnapshotLoaded reports whether a snapshot seeded the state;
	// SnapshotSeq and SnapshotAge describe it.
	SnapshotLoaded bool
	SnapshotSeq    uint64
	SnapshotAge    time.Duration
	// SnapshotErr is non-empty when a snapshot file existed but was
	// unusable (recovery then proceeds from the journal alone).
	SnapshotErr string

	// Replayed counts journal records applied to the state. Covered
	// counts records skipped because the snapshot already includes
	// them (seq <= snapshot seq — the crash-between-rename-and-
	// truncate window). Stale counts records skipped for belonging to
	// an older session or a retired epoch. Orphaned counts spend
	// records with no state to land in (no snapshot and no epoch
	// record yet).
	Replayed int
	Covered  int
	Stale    int
	Orphaned int

	// CorruptOffset is the journal byte offset of the first record
	// that failed validation (torn frame, checksum mismatch,
	// implausible field), or -1 if the whole journal was intact.
	// Everything before the offset — the longest valid prefix — is in
	// State; CorruptReason says what stopped the replay.
	CorruptOffset int64
	CorruptReason string
}

// Recover replays the journal directory at dir and returns the
// recovered state. Corruption is never an error: the longest valid
// prefix is recovered and the damage is reported via CorruptOffset /
// CorruptReason / SnapshotErr. The returned error is reserved for
// real I/O failures (permissions, unreadable device).
func Recover(dir string) (*Recovery, error) {
	rec := &Recovery{CorruptOffset: -1}

	snap, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	switch {
	case err == nil:
		st, stamp, serr := decodeSnapshot(snap)
		if serr != nil {
			rec.SnapshotErr = serr.Error()
		} else {
			rec.State = st
			rec.SnapshotLoaded = true
			rec.SnapshotSeq = st.Seq
			if stamp > 0 {
				rec.SnapshotAge = time.Since(time.Unix(0, int64(stamp)))
			}
		}
	case os.IsNotExist(err):
		// Fresh directory or pre-snapshot crash; journal may still
		// carry everything.
	default:
		return nil, fmt.Errorf("journal: recover: %w", err)
	}

	buf, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: recover: %w", err)
	}
	replay(rec, buf)
	return rec, nil
}

// replay walks the framed records in buf, applying them to rec.State
// under the session/seq/epoch skip rules, and stops at the first
// record that fails validation.
func replay(rec *Recovery, buf []byte) {
	if len(buf) == 0 {
		// An empty journal (crash before the header write) is not
		// corruption: the snapshot, if any, stands alone.
		return
	}
	if len(buf) < len(journalMagic) || string(buf[:len(journalMagic)]) != journalMagic {
		rec.CorruptOffset = 0
		rec.CorruptReason = "bad journal magic"
		return
	}
	off := int64(len(journalMagic))
	for off < int64(len(buf)) {
		rest := buf[off:]
		if len(rest) < 8 {
			rec.CorruptOffset = off
			rec.CorruptReason = "torn frame header"
			return
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 || n > maxRecordLen {
			rec.CorruptOffset = off
			rec.CorruptReason = fmt.Sprintf("implausible record length %d", n)
			return
		}
		if int64(len(rest)) < 8+int64(n) {
			rec.CorruptOffset = off
			rec.CorruptReason = "torn record payload"
			return
		}
		payload := rest[8 : 8+n]
		if crc32IEEE(payload) != sum {
			rec.CorruptOffset = off
			rec.CorruptReason = "checksum mismatch"
			return
		}
		if reason := applyRecord(rec, payload); reason != "" {
			rec.CorruptOffset = off
			rec.CorruptReason = reason
			return
		}
		off += 8 + int64(n)
	}
}

// applyRecord decodes one checksummed payload and applies it to
// rec.State. A non-empty return is a validation failure (the payload
// checksummed correctly but declares something impossible) and stops
// the replay at this record.
func applyRecord(rec *Recovery, p []byte) string {
	if len(p) < 1 {
		return "empty record"
	}
	switch p[0] {
	case recKindEpoch:
		if len(p) != 1+8+8+8+4+4+1 {
			return fmt.Sprintf("epoch record has %d bytes", len(p))
		}
		session := binary.LittleEndian.Uint64(p[1:9])
		seq := binary.LittleEndian.Uint64(p[9:17])
		epoch := binary.LittleEndian.Uint64(p[17:25])
		n := int(binary.LittleEndian.Uint32(p[25:29]))
		lanes := int(binary.LittleEndian.Uint32(p[29:33]))
		if n > maxN || lanes > maxLanes {
			return fmt.Sprintf("implausible epoch dimensions n=%d lanes=%d", n, lanes)
		}
		if st := rec.State; st != nil {
			if session != st.Session {
				rec.Stale++
				return ""
			}
			if seq <= rec.SnapshotSeq {
				rec.Covered++
				return ""
			}
			if seq <= st.Seq {
				return fmt.Sprintf("sequence went backwards (%d after %d)", seq, st.Seq)
			}
		}
		st := newZeroState(n, lanes)
		st.Session = session
		st.Seq = seq
		st.Epoch = epoch
		rec.State = st
		rec.Replayed++
		return ""
	case recKindSpend:
		const fixed = 1 + 8 + 8 + 8 + 4 + 8 + 8 + 4
		if len(p) < fixed {
			return fmt.Sprintf("spend record has %d bytes", len(p))
		}
		session := binary.LittleEndian.Uint64(p[1:9])
		seq := binary.LittleEndian.Uint64(p[9:17])
		epoch := binary.LittleEndian.Uint64(p[17:25])
		lane := int(binary.LittleEndian.Uint32(p[25:29]))
		laneT := binary.LittleEndian.Uint64(p[29:37])
		denied := int64(binary.LittleEndian.Uint64(p[37:45]))
		count := int(binary.LittleEndian.Uint32(p[45:49]))
		if len(p) != fixed+12*count {
			return fmt.Sprintf("spend record declares %d charges in %d bytes", count, len(p))
		}
		st := rec.State
		if st == nil {
			// No snapshot and no epoch record yet: nowhere to land.
			rec.Orphaned++
			return ""
		}
		if session != st.Session {
			rec.Stale++
			return ""
		}
		if seq <= rec.SnapshotSeq {
			rec.Covered++
			return ""
		}
		if seq <= st.Seq {
			return fmt.Sprintf("sequence went backwards (%d after %d)", seq, st.Seq)
		}
		if epoch < st.Epoch {
			// A retired lane's final flush raced an epoch swap; the
			// writer normally drops these, but one can land if the
			// swap happened between the lane's epoch check and its
			// append. Its ledger is gone either way.
			st.Seq = seq
			rec.Stale++
			return ""
		}
		if epoch > st.Epoch {
			return fmt.Sprintf("spend for unbegun epoch %d (current %d)", epoch, st.Epoch)
		}
		if lane >= st.Lanes {
			return fmt.Sprintf("lane %d out of range [0,%d)", lane, st.Lanes)
		}
		cum := st.Cum[lane]
		q := p[fixed:]
		for i := 0; i < count; i++ {
			adv := binary.LittleEndian.Uint32(q[12*i : 12*i+4])
			if int(adv) >= st.N {
				return fmt.Sprintf("advertiser %d out of range [0,%d)", adv, st.N)
			}
		}
		for i := 0; i < count; i++ {
			adv := binary.LittleEndian.Uint32(q[12*i : 12*i+4])
			amt := binary.LittleEndian.Uint64(q[12*i+4 : 12*i+12])
			cum[adv] += frombits(amt)
		}
		st.LaneT[lane] = laneT
		st.Denied[lane] = denied
		st.Seq = seq
		rec.Replayed++
		return ""
	default:
		return fmt.Sprintf("unknown record kind %d", p[0])
	}
}

func decodeSnapshot(buf []byte) (*LedgerState, uint64, error) {
	if len(buf) < len(snapMagic)+8 || string(buf[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("bad snapshot magic")
	}
	n := binary.LittleEndian.Uint32(buf[8:12])
	sum := binary.LittleEndian.Uint32(buf[12:16])
	if n == 0 || n > maxRecordLen || int64(len(buf)) < 16+int64(n) {
		return nil, 0, fmt.Errorf("torn snapshot (payload %d bytes, file %d)", n, len(buf))
	}
	p := buf[16 : 16+n]
	if crc32IEEE(p) != sum {
		return nil, 0, fmt.Errorf("snapshot checksum mismatch")
	}
	const fixed = 8 + 8 + 8 + 4 + 4 + 8
	if len(p) < fixed {
		return nil, 0, fmt.Errorf("snapshot payload too short (%d bytes)", len(p))
	}
	session := binary.LittleEndian.Uint64(p[0:8])
	seq := binary.LittleEndian.Uint64(p[8:16])
	epoch := binary.LittleEndian.Uint64(p[16:24])
	nAdv := int(binary.LittleEndian.Uint32(p[24:28]))
	lanes := int(binary.LittleEndian.Uint32(p[28:32]))
	stamp := binary.LittleEndian.Uint64(p[32:40])
	if nAdv > maxN || lanes > maxLanes {
		return nil, 0, fmt.Errorf("implausible snapshot dimensions n=%d lanes=%d", nAdv, lanes)
	}
	want := fixed + 8*lanes + 8*lanes + 8*nAdv*lanes
	if len(p) != want {
		return nil, 0, fmt.Errorf("snapshot payload %d bytes, want %d for n=%d lanes=%d", len(p), want, nAdv, lanes)
	}
	st := newZeroState(nAdv, lanes)
	st.Session = session
	st.Seq = seq
	st.Epoch = epoch
	q := p[fixed:]
	for i := 0; i < lanes; i++ {
		st.LaneT[i] = binary.LittleEndian.Uint64(q[8*i : 8*i+8])
	}
	q = q[8*lanes:]
	for i := 0; i < lanes; i++ {
		st.Denied[i] = int64(binary.LittleEndian.Uint64(q[8*i : 8*i+8]))
	}
	q = q[8*lanes:]
	for lane := 0; lane < lanes; lane++ {
		cum := st.Cum[lane]
		for i := 0; i < nAdv; i++ {
			cum[i] = frombits(binary.LittleEndian.Uint64(q[8*i : 8*i+8]))
		}
		q = q[8*nAdv:]
	}
	return st, stamp, nil
}
