// Package kwmatch is the keyword-matching substrate Section IV takes
// as given: "search providers use their proprietary keyword matching
// algorithms to prune away advertisers who are not interested in the
// search keywords for the current auction." This package provides an
// open version: an inverted index from query tokens to the
// advertisers whose registered keywords mention them, with a
// relevance score per (advertiser, keyword) — the score that fills
// the relevance column of each program's Keywords table (Figure 4's
// boot 0.8 / shoe 0.2).
//
// Relevance of a registered keyword to a query is token overlap: the
// fraction of the keyword's tokens appearing in the query. A query
// for "red leather boot" gives keyword "leather boot" relevance 1 and
// keyword "boot polish kit" relevance 1/3.
package kwmatch

import (
	"bytes"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Index maps query tokens to registered advertiser keywords.
type Index struct {
	// postings[token] lists registrations whose keyword contains the
	// token.
	postings map[string][]posting
	// regs[advertiser] lists that advertiser's registrations, in
	// registration order, for relevance reporting.
	regs map[int][]Registration
	// flat assigns every registration a dense id so the
	// allocation-free query path can accumulate per-registration
	// counts in flat arrays instead of a map.
	flat []flatReg
}

type posting struct {
	advertiser int
	reg        int // index into regs[advertiser]
	flat       int // index into Index.flat
}

type flatReg struct {
	advertiser int
	reg        int // index into regs[advertiser]
	ntokens    int
}

// Registration is one (advertiser, keyword) interest.
type Registration struct {
	Keyword string
	tokens  []string
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string][]posting),
		regs:     make(map[int][]Registration),
	}
}

// Tokenize lowercases and splits on any non-letter/non-digit rune,
// dropping empty tokens and duplicates (order preserved).
func Tokenize(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	seen := make(map[string]bool, len(fields))
	out := fields[:0]
	for _, f := range fields {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// Register records that the advertiser is interested in keyword.
// Blank keywords (no tokens) are ignored.
func (x *Index) Register(advertiser int, keyword string) {
	tokens := Tokenize(keyword)
	if len(tokens) == 0 {
		return
	}
	reg := Registration{Keyword: keyword, tokens: tokens}
	x.regs[advertiser] = append(x.regs[advertiser], reg)
	idx := len(x.regs[advertiser]) - 1
	fid := len(x.flat)
	x.flat = append(x.flat, flatReg{advertiser, idx, len(tokens)})
	for _, tok := range tokens {
		x.postings[tok] = append(x.postings[tok], posting{advertiser, idx, fid})
	}
}

// Match is one scored (advertiser, keyword) hit for a query.
type Match struct {
	Advertiser int
	Keyword    string
	// Relevance is the fraction of the keyword's tokens found in the
	// query, in (0, 1].
	Relevance float64
}

// Query scores every registration sharing at least one token with
// the query and returns hits sorted by descending relevance (ties:
// ascending advertiser, then keyword). The advertisers appearing here
// are exactly the set whose bidding programs need to run — everyone
// else is pruned before program evaluation even starts.
func (x *Index) Query(query string) []Match {
	qTokens := Tokenize(query)
	type key struct{ adv, reg int }
	hits := make(map[key]int) // -> count of matched tokens
	for _, t := range qTokens {
		for _, p := range x.postings[t] {
			hits[key{p.advertiser, p.reg}]++
		}
	}
	out := make([]Match, 0, len(hits))
	for k, count := range hits {
		reg := x.regs[k.adv][k.reg]
		out = append(out, Match{
			Advertiser: k.adv,
			Keyword:    reg.Keyword,
			Relevance:  float64(count) / float64(len(reg.tokens)),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Relevance != out[b].Relevance {
			return out[a].Relevance > out[b].Relevance
		}
		if out[a].Advertiser != out[b].Advertiser {
			return out[a].Advertiser < out[b].Advertiser
		}
		return out[a].Keyword < out[b].Keyword
	})
	return out
}

// Interested returns the distinct advertisers with any hit for the
// query, ascending — the pruned program-evaluation set.
func (x *Index) Interested(query string) []int {
	seen := make(map[int]bool)
	for _, m := range x.Query(query) {
		seen[m.Advertiser] = true
	}
	out := make([]int, 0, len(seen))
	for adv := range seen {
		out = append(out, adv)
	}
	sort.Ints(out)
	return out
}

// Registrations returns the advertiser's registered keywords in
// registration order.
func (x *Index) Registrations(advertiser int) []Registration {
	return x.regs[advertiser]
}

// Scratch is the reusable state behind the allocation-free query path
// (ScoreInto/QueryInto). A zero Scratch is ready to use; its internal
// buffers grow to the index's registration count and the longest query
// seen, then stop allocating. A Scratch is not safe for concurrent use
// and must not be shared across goroutines without external locking.
type Scratch struct {
	count   []int32  // matched-token count per flat registration id
	stamp   []uint64 // epoch stamp marking count[f] as current
	epoch   uint64
	touched []int // flat ids touched this query, accumulation order
	tok     []byte
	seen    []byte // arena of this query's distinct tokens, back to back
	seenEnd []int  // seen[...seenEnd[i]] ends distinct token i
}

// ScoreInto scores the query exactly like Query but appends the hits
// to out (unsorted, in token-posting accumulation order) using only
// the caller's Scratch for working state: in steady state — warm
// Scratch, out with capacity — it performs zero heap allocations. The
// returned slice aliases out's array when capacity suffices.
func (x *Index) ScoreInto(query string, sc *Scratch, out []Match) []Match {
	if len(sc.stamp) < len(x.flat) {
		sc.stamp = make([]uint64, len(x.flat))
		sc.count = make([]int32, len(x.flat))
	}
	sc.epoch++
	sc.touched = sc.touched[:0]
	sc.seen = sc.seen[:0]
	sc.seenEnd = sc.seenEnd[:0]
	sc.tok = sc.tok[:0]
	for _, r := range query {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sc.tok = utf8.AppendRune(sc.tok, unicode.ToLower(r))
			continue
		}
		x.scoreToken(sc)
	}
	x.scoreToken(sc)
	for _, f := range sc.touched {
		fr := x.flat[f]
		out = append(out, Match{
			Advertiser: fr.advertiser,
			Keyword:    x.regs[fr.advertiser][fr.reg].Keyword,
			Relevance:  float64(sc.count[f]) / float64(fr.ntokens),
		})
	}
	return out
}

// scoreToken folds the token accumulated in sc.tok into the counts
// (skipping duplicates of earlier query tokens, matching Tokenize's
// dedup) and resets the token buffer.
func (x *Index) scoreToken(sc *Scratch) {
	if len(sc.tok) == 0 {
		return
	}
	start := 0
	for _, end := range sc.seenEnd {
		if bytes.Equal(sc.seen[start:end], sc.tok) {
			sc.tok = sc.tok[:0]
			return
		}
		start = end
	}
	sc.seen = append(sc.seen, sc.tok...)
	sc.seenEnd = append(sc.seenEnd, len(sc.seen))
	// m[string(b)] map reads do not copy the key — this lookup is
	// allocation-free.
	for _, p := range x.postings[string(sc.tok)] {
		if sc.stamp[p.flat] != sc.epoch {
			sc.stamp[p.flat] = sc.epoch
			sc.count[p.flat] = 0
			sc.touched = append(sc.touched, p.flat)
		}
		sc.count[p.flat]++
	}
	sc.tok = sc.tok[:0]
}

// QueryInto is the allocation-free twin of Query: identical hits in
// the identical order (descending relevance; ties ascending
// advertiser, then keyword), appended to out with all working state in
// the caller's Scratch. Steady state is zero heap allocations per
// call.
func (x *Index) QueryInto(query string, sc *Scratch, out []Match) []Match {
	base := len(out)
	out = x.ScoreInto(query, sc, out)
	hits := out[base:]
	for a := 1; a < len(hits); a++ {
		m := hits[a]
		b := a - 1
		for b >= 0 && matchLess(m, hits[b]) {
			hits[b+1] = hits[b]
			b--
		}
		hits[b+1] = m
	}
	return out
}

// matchLess is Query's sort order: a before b on higher relevance,
// then lower advertiser, then lexicographically smaller keyword.
func matchLess(a, b Match) bool {
	if a.Relevance != b.Relevance {
		return a.Relevance > b.Relevance
	}
	if a.Advertiser != b.Advertiser {
		return a.Advertiser < b.Advertiser
	}
	return a.Keyword < b.Keyword
}
