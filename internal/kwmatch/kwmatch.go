// Package kwmatch is the keyword-matching substrate Section IV takes
// as given: "search providers use their proprietary keyword matching
// algorithms to prune away advertisers who are not interested in the
// search keywords for the current auction." This package provides an
// open version: an inverted index from query tokens to the
// advertisers whose registered keywords mention them, with a
// relevance score per (advertiser, keyword) — the score that fills
// the relevance column of each program's Keywords table (Figure 4's
// boot 0.8 / shoe 0.2).
//
// Relevance of a registered keyword to a query is token overlap: the
// fraction of the keyword's tokens appearing in the query. A query
// for "red leather boot" gives keyword "leather boot" relevance 1 and
// keyword "boot polish kit" relevance 1/3.
package kwmatch

import (
	"sort"
	"strings"
	"unicode"
)

// Index maps query tokens to registered advertiser keywords.
type Index struct {
	// postings[token] lists registrations whose keyword contains the
	// token.
	postings map[string][]posting
	// regs[advertiser] lists that advertiser's registrations, in
	// registration order, for relevance reporting.
	regs map[int][]Registration
}

type posting struct {
	advertiser int
	reg        int // index into regs[advertiser]
}

// Registration is one (advertiser, keyword) interest.
type Registration struct {
	Keyword string
	tokens  []string
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string][]posting),
		regs:     make(map[int][]Registration),
	}
}

// Tokenize lowercases and splits on any non-letter/non-digit rune,
// dropping empty tokens and duplicates (order preserved).
func Tokenize(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	seen := make(map[string]bool, len(fields))
	out := fields[:0]
	for _, f := range fields {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// Register records that the advertiser is interested in keyword.
// Blank keywords (no tokens) are ignored.
func (x *Index) Register(advertiser int, keyword string) {
	tokens := Tokenize(keyword)
	if len(tokens) == 0 {
		return
	}
	reg := Registration{Keyword: keyword, tokens: tokens}
	x.regs[advertiser] = append(x.regs[advertiser], reg)
	idx := len(x.regs[advertiser]) - 1
	for _, tok := range tokens {
		x.postings[tok] = append(x.postings[tok], posting{advertiser, idx})
	}
}

// Match is one scored (advertiser, keyword) hit for a query.
type Match struct {
	Advertiser int
	Keyword    string
	// Relevance is the fraction of the keyword's tokens found in the
	// query, in (0, 1].
	Relevance float64
}

// Query scores every registration sharing at least one token with
// the query and returns hits sorted by descending relevance (ties:
// ascending advertiser, then keyword). The advertisers appearing here
// are exactly the set whose bidding programs need to run — everyone
// else is pruned before program evaluation even starts.
func (x *Index) Query(query string) []Match {
	qTokens := Tokenize(query)
	type key struct{ adv, reg int }
	hits := make(map[key]int) // -> count of matched tokens
	for _, t := range qTokens {
		for _, p := range x.postings[t] {
			hits[key{p.advertiser, p.reg}]++
		}
	}
	out := make([]Match, 0, len(hits))
	for k, count := range hits {
		reg := x.regs[k.adv][k.reg]
		out = append(out, Match{
			Advertiser: k.adv,
			Keyword:    reg.Keyword,
			Relevance:  float64(count) / float64(len(reg.tokens)),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Relevance != out[b].Relevance {
			return out[a].Relevance > out[b].Relevance
		}
		if out[a].Advertiser != out[b].Advertiser {
			return out[a].Advertiser < out[b].Advertiser
		}
		return out[a].Keyword < out[b].Keyword
	})
	return out
}

// Interested returns the distinct advertisers with any hit for the
// query, ascending — the pruned program-evaluation set.
func (x *Index) Interested(query string) []int {
	seen := make(map[int]bool)
	for _, m := range x.Query(query) {
		seen[m.Advertiser] = true
	}
	out := make([]int, 0, len(seen))
	for adv := range seen {
		out = append(out, adv)
	}
	sort.Ints(out)
	return out
}

// Registrations returns the advertiser's registered keywords in
// registration order.
func (x *Index) Registrations(advertiser int) []Registration {
	return x.regs[advertiser]
}
