package kwmatch

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Red Leather Boot", []string{"red", "leather", "boot"}},
		{"boot, boot; BOOT", []string{"boot"}},
		{"  ", nil},
		{"size-9 boot", []string{"size", "9", "boot"}},
		{"", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQueryRelevance(t *testing.T) {
	x := New()
	x.Register(1, "leather boot")
	x.Register(1, "boot polish kit")
	x.Register(2, "running shoe")
	x.Register(3, "boot")

	got := x.Query("red leather boot")
	// Expected: adv1 "leather boot" 1.0; adv3 "boot" 1.0;
	// adv1 "boot polish kit" 1/3; adv2 none.
	if len(got) != 3 {
		t.Fatalf("got %d matches: %v", len(got), got)
	}
	if got[0].Relevance != 1 || got[1].Relevance != 1 {
		t.Fatalf("top matches should have relevance 1: %v", got)
	}
	if got[0].Advertiser != 1 || got[1].Advertiser != 3 {
		t.Fatalf("tie order should be by advertiser: %v", got)
	}
	if got[2].Advertiser != 1 || got[2].Keyword != "boot polish kit" {
		t.Fatalf("partial match missing: %v", got)
	}
	if diff := got[2].Relevance - 1.0/3; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("partial relevance %g, want 1/3", got[2].Relevance)
	}
}

func TestInterestedPrunes(t *testing.T) {
	x := New()
	x.Register(0, "guitar strings")
	x.Register(1, "piano tuner")
	x.Register(2, "guitar amp")
	x.Register(3, "sheet music")
	got := x.Interested("cheap guitar")
	want := []int{0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Interested = %v, want %v", got, want)
	}
	if hits := x.Interested("vacuum cleaner"); len(hits) != 0 {
		t.Fatalf("unrelated query matched %v", hits)
	}
}

func TestFig4Relevances(t *testing.T) {
	// The Figure 4 flavor: an advertiser interested in "boot" and
	// "shoe"; a boot-heavy query should score boot fully and shoe not
	// at all (binary single-token keywords).
	x := New()
	x.Register(7, "boot")
	x.Register(7, "shoe")
	got := x.Query("winter boot sale")
	if len(got) != 1 || got[0].Keyword != "boot" || got[0].Relevance != 1 {
		t.Fatalf("query should hit only 'boot' fully: %v", got)
	}
}

func TestBlankRegistrationIgnored(t *testing.T) {
	x := New()
	x.Register(1, "   ")
	if regs := x.Registrations(1); len(regs) != 0 {
		t.Fatalf("blank keyword registered: %v", regs)
	}
}

// TestQueryIntoMatchesQuery pins the allocation-free path to the
// allocating one: identical hits in identical order across random
// registration sets and queries, reusing one Scratch and one buffer
// throughout.
func TestQueryIntoMatchesQuery(t *testing.T) {
	vocab := []string{"boot", "shoe", "red", "blue", "kit", "sale", "run", "walk", "size", "9"}
	rng := rand.New(rand.NewSource(602))
	var sc Scratch
	var buf []Match
	for trial := 0; trial < 200; trial++ {
		x := New()
		seen := map[string]bool{}
		for adv := 0; adv < 8; adv++ {
			for r := 0; r < 1+rng.Intn(3); r++ {
				nw := 1 + rng.Intn(3)
				words := make([]string, nw)
				for i := range words {
					words[i] = vocab[rng.Intn(len(vocab))]
				}
				kw := strings.Join(words, " ")
				if seen[kw] { // duplicate (adv,kw,rel) hits have no defined order
					continue
				}
				seen[kw] = true
				x.Register(adv, kw)
			}
		}
		qWords := make([]string, 1+rng.Intn(5))
		for i := range qWords {
			qWords[i] = vocab[rng.Intn(len(vocab))]
		}
		// Mixed case and punctuation separators exercise the inline
		// tokenizer against Tokenize.
		query := strings.ToUpper(strings.Join(qWords, ", "))

		want := x.Query(query)
		buf = x.QueryInto(query, &sc, buf[:0])
		if len(want) == 0 && len(buf) == 0 {
			continue
		}
		if !reflect.DeepEqual(buf, want) {
			t.Fatalf("trial %d: QueryInto = %v, Query = %v (query %q)", trial, buf, want, query)
		}
	}
}

// TestQueryIntoSteadyStateAllocs pins the router hot path's
// zero-allocation contract: once the Scratch and buffer are warm,
// QueryInto must not touch the heap.
func TestQueryIntoSteadyStateAllocs(t *testing.T) {
	x := New()
	for q := 0; q < 16; q++ {
		x.Register(q, "t"+string(rune('a'+q%8))+" t"+string(rune('a'+(q+1)%8)))
	}
	queries := []string{"ta tb", "tc", "TB, TD tc", "te tf ta", "zz none"}
	var sc Scratch
	var buf []Match
	for _, q := range queries { // warm the scratch and buffer
		buf = x.QueryInto(q, &sc, buf[:0])
	}
	n := testing.AllocsPerRun(200, func() {
		for _, q := range queries {
			buf = x.QueryInto(q, &sc, buf[:0])
		}
	})
	if n != 0 {
		t.Fatalf("QueryInto steady state allocated %.1f times per run, want 0", n)
	}
}

// TestQueryAgainstNaiveScan cross-checks the inverted index against a
// direct scan over random registrations.
func TestQueryAgainstNaiveScan(t *testing.T) {
	vocab := []string{"boot", "shoe", "red", "blue", "kit", "sale", "run", "walk"}
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 100; trial++ {
		x := New()
		type reg struct {
			adv int
			kw  string
		}
		var regs []reg
		for adv := 0; adv < 10; adv++ {
			for r := 0; r < 1+rng.Intn(3); r++ {
				nw := 1 + rng.Intn(3)
				words := make([]string, nw)
				for i := range words {
					words[i] = vocab[rng.Intn(len(vocab))]
				}
				kw := strings.Join(words, " ")
				x.Register(adv, kw)
				regs = append(regs, reg{adv, kw})
			}
		}
		qWords := make([]string, 1+rng.Intn(4))
		for i := range qWords {
			qWords[i] = vocab[rng.Intn(len(vocab))]
		}
		query := strings.Join(qWords, " ")

		// Naive relevance per registration.
		qSet := map[string]bool{}
		for _, tkn := range Tokenize(query) {
			qSet[tkn] = true
		}
		type hit struct {
			adv int
			kw  string
			rel float64
		}
		var want []hit
		for _, r := range regs {
			toks := Tokenize(r.kw)
			matched := 0
			for _, tkn := range toks {
				if qSet[tkn] {
					matched++
				}
			}
			if matched > 0 {
				want = append(want, hit{r.adv, r.kw, float64(matched) / float64(len(toks))})
			}
		}
		got := x.Query(query)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits, naive %d (query %q)", trial, len(got), len(want), query)
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].rel != want[b].rel {
				return want[a].rel > want[b].rel
			}
			if want[a].adv != want[b].adv {
				return want[a].adv < want[b].adv
			}
			return want[a].kw < want[b].kw
		})
		for i := range want {
			if got[i].Advertiser != want[i].adv || got[i].Keyword != want[i].kw ||
				got[i].Relevance != want[i].rel {
				t.Fatalf("trial %d hit %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
