// Package logical implements the "logical updates" machinery of
// Section IV-B: when many bidding programs adjust their state by the
// same operation (for example, every overspending ROI bidder
// decrements its bid by one), the programs are kept in a list sorted
// by their stored bid and the shared change is applied by bumping a
// single adjustment variable in O(1), instead of touching every
// program. Programs whose guard conditions will expire (bid reaching
// zero or its maximum, spending rate crossing the target) are moved
// between lists by triggers keyed on shared monotonic variables.
package logical

import (
	"repro/internal/oslist"
	"repro/internal/topk"
)

// Group is a set of members whose effective value is
// storedValue + Adj, with Adj shared by the whole group. Members are
// kept sorted by stored value; because a shared adjustment moves all
// effective values equally, the order never needs repair — this is
// exactly the paper's decrement/increment/constant list.
//
// Member IDs live in a fixed universe [0, universe) and the stored
// values are array-backed, so Effective — the hot random-access path
// of the threshold algorithm — is one bounds check and one load.
type Group struct {
	adj     float64
	list    *oslist.List
	stored  []float64
	present []bool
	size    int
}

// NewGroup returns an empty group over member IDs in [0, universe).
// seed perturbs the underlying treap.
func NewGroup(seed uint64, universe int) *Group {
	return &Group{
		list:    oslist.New(seed),
		stored:  make([]float64, universe),
		present: make([]bool, universe),
	}
}

// NewGroupSet returns count groups over a common universe whose
// sorted lists share one treap-node pool: a member migrating from one
// group of the set to another reuses the node its removal freed.
// Because the Section IV partition keeps every bidder in exactly one
// of a keyword's groups, the set's total membership is constant and
// membership churn allocates nothing once the lists are built. Group
// g of the set uses treap seed seed+g, matching count separate
// NewGroup calls with consecutive seeds.
func NewGroupSet(seed uint64, universe, count int) []*Group {
	pool := &oslist.Pool{}
	gs := make([]*Group, count)
	for g := range gs {
		gs[g] = &Group{
			list:    oslist.NewWithPool(seed+uint64(g), pool),
			stored:  make([]float64, universe),
			present: make([]bool, universe),
		}
	}
	return gs
}

// Adjust applies a logical update: every member's effective value
// changes by delta in O(1).
func (g *Group) Adjust(delta float64) { g.adj += delta }

// Adjustment returns the group's accumulated adjustment.
func (g *Group) Adjustment() float64 { return g.adj }

// Insert adds member id with the given current effective value. The
// id must lie in [0, universe) and must not already be a member.
func (g *Group) Insert(id int, effective float64) {
	stored := effective - g.adj
	g.stored[id] = stored
	g.present[id] = true
	g.size++
	g.list.Insert(oslist.Entry{ID: id, Score: stored})
}

// Remove deletes member id, returning its effective value at removal
// time. ok is false if id is not a member.
func (g *Group) Remove(id int) (effective float64, ok bool) {
	if id < 0 || id >= len(g.present) || !g.present[id] {
		return 0, false
	}
	stored := g.stored[id]
	g.present[id] = false
	g.size--
	g.list.Delete(oslist.Entry{ID: id, Score: stored})
	return stored + g.adj, true
}

// Effective returns member id's current effective value.
func (g *Group) Effective(id int) (float64, bool) {
	if id < 0 || id >= len(g.present) || !g.present[id] {
		return 0, false
	}
	return g.stored[id] + g.adj, true
}

// Contains reports membership.
func (g *Group) Contains(id int) bool {
	return id >= 0 && id < len(g.present) && g.present[id]
}

// Len returns the number of members.
func (g *Group) Len() int { return g.size }

// Cursor iterates the group's members in descending effective order.
func (g *Group) Cursor() *GroupCursor {
	c := &GroupCursor{}
	c.Reset(g)
	return c
}

// GroupCursor yields (id, effective value) in descending order. The
// zero value is valid to Reset.
type GroupCursor struct {
	group *Group
	cur   oslist.Cursor
}

// Reset repositions the cursor before the first member of g, reusing
// the traversal stack's storage.
func (c *GroupCursor) Reset(g *Group) {
	c.group = g
	c.cur.Reset(g.list)
}

// Next returns the next member, or ok=false when exhausted.
func (c *GroupCursor) Next() (id int, effective float64, ok bool) {
	e, ok := c.cur.Next()
	if !ok {
		return 0, 0, false
	}
	return e.ID, e.Score + c.group.adj, true
}

// MergedSource provides sorted access by descending effective value
// across several groups (a member belongs to exactly one group), as a
// ta.Source: the threshold algorithm's bid list is the merge of the
// increment, decrement, and constant lists for a keyword.
//
// A MergedSource is reusable: Reset re-seeds it over a (possibly
// different) group family, recycling the per-group cursors, their
// traversal stacks, and the merge heap, so the serving hot path runs
// one persistent source per engine instead of building one per slot
// per auction. The merge heap is hand-rolled rather than
// container/heap because the interface{} boxing of heap.Push/Pop
// allocates on every sorted access.
type MergedSource struct {
	groups  []*Group
	cursors []GroupCursor
	merge   []mergeItem
}

// NewMergedSource builds a merged sorted view over the groups as they
// stand now; mutations invalidate the source. Lookup resolves through
// whichever group currently holds the member.
func NewMergedSource(groups ...*Group) *MergedSource {
	s := &MergedSource{}
	s.Reset(groups)
	return s
}

// Reset re-seeds the source over groups as they stand now, reusing
// all internal storage; mutating any group invalidates the source
// until the next Reset. In steady state (same group count as the
// previous use) Reset performs no heap allocations.
func (s *MergedSource) Reset(groups []*Group) {
	s.groups = append(s.groups[:0], groups...)
	if cap(s.cursors) < len(groups) {
		s.cursors = make([]GroupCursor, len(groups))
	}
	s.cursors = s.cursors[:len(groups)]
	s.merge = s.merge[:0]
	for gi, g := range groups {
		c := &s.cursors[gi]
		c.Reset(g)
		if id, eff, ok := c.Next(); ok {
			s.merge = append(s.merge, mergeItem{id: id, eff: eff, cur: c})
		}
	}
	for i := len(s.merge)/2 - 1; i >= 0; i-- {
		s.down(i)
	}
}

// Next implements ta.Source sorted access.
func (s *MergedSource) Next() (int, float64, bool) {
	if len(s.merge) == 0 {
		return 0, 0, false
	}
	top := s.merge[0]
	if id, eff, ok := top.cur.Next(); ok {
		s.merge[0] = mergeItem{id: id, eff: eff, cur: top.cur}
		s.down(0)
	} else {
		last := len(s.merge) - 1
		s.merge[0] = s.merge[last]
		s.merge = s.merge[:last]
		if last > 0 {
			s.down(0)
		}
	}
	return top.id, top.eff, true
}

// Lookup implements ta.Source random access.
func (s *MergedSource) Lookup(id int) float64 {
	for _, g := range s.groups {
		if eff, ok := g.Effective(id); ok {
			return eff
		}
	}
	return 0
}

type mergeItem struct {
	id  int
	eff float64
	cur *GroupCursor
}

// mergeBefore orders the heap: higher effective value first, ties by
// ascending ID — the threshold algorithm's sorted-access order.
func mergeBefore(a, b mergeItem) bool {
	if a.eff != b.eff {
		return a.eff > b.eff
	}
	return a.id < b.id
}

func (s *MergedSource) down(i int) {
	h := s.merge
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && mergeBefore(h[l], h[best]) {
			best = l
		}
		if r < n && mergeBefore(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// TopEffective returns the k members with the highest effective
// values across the groups without running a full merge: it reads at
// most k entries from each group. Useful when a plain top-k (rather
// than full TA) over the merged lists is wanted.
func TopEffective(k int, groups ...*Group) []topk.Item {
	h := topk.NewHeap(k)
	for _, g := range groups {
		c := g.Cursor()
		for taken := 0; taken < k; taken++ {
			id, eff, ok := c.Next()
			if !ok {
				break
			}
			h.Offer(topk.Item{ID: id, Score: eff})
		}
	}
	return h.Items()
}
