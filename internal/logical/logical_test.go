package logical

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/racetest"
	"repro/internal/ta"
	"repro/internal/topk"
)

func TestGroupAdjustEqualsExplicit(t *testing.T) {
	// Model: explicit map of id -> value updated every step; group
	// applies one logical adjustment per step. Values must agree.
	rng := rand.New(rand.NewSource(51))
	g := NewGroup(1, 100)
	explicit := map[int]float64{}
	for id := 0; id < 50; id++ {
		v := rng.Float64() * 100
		g.Insert(id, v)
		explicit[id] = v
	}
	for step := 0; step < 200; step++ {
		delta := float64(rng.Intn(5) - 2)
		g.Adjust(delta)
		for id := range explicit {
			explicit[id] += delta
		}
		// Occasionally remove and re-insert a member (a "winner").
		if step%7 == 0 {
			id := rng.Intn(50)
			eff, ok := g.Remove(id)
			if !ok {
				t.Fatalf("missing member %d", id)
			}
			if math.Abs(eff-explicit[id]) > 1e-9 {
				t.Fatalf("step %d: removal saw %g, explicit %g", step, eff, explicit[id])
			}
			nv := rng.Float64() * 100
			g.Insert(id, nv)
			explicit[id] = nv
		}
	}
	for id, want := range explicit {
		got, ok := g.Effective(id)
		if !ok || math.Abs(got-want) > 1e-9 {
			t.Fatalf("id %d: group %g, explicit %g", id, got, want)
		}
	}
}

func TestGroupOrderPreservedUnderAdjust(t *testing.T) {
	g := NewGroup(2, 10)
	g.Insert(1, 10)
	g.Insert(2, 20)
	g.Adjust(-5)
	g.Insert(3, 12) // effective 12, stored 17
	c := g.Cursor()
	var ids []int
	for {
		id, _, ok := c.Next()
		if !ok {
			break
		}
		ids = append(ids, id)
	}
	// Effective: 2→15, 3→12, 1→5.
	want := []int{2, 3, 1}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order %v, want %v", ids, want)
		}
	}
}

func TestMergedSourceSortedAccess(t *testing.T) {
	inc, dec, con := NewGroup(3, 10), NewGroup(4, 10), NewGroup(5, 10)
	inc.Insert(0, 9)
	inc.Insert(1, 3)
	dec.Insert(2, 7)
	dec.Insert(3, 1)
	con.Insert(4, 5)
	src := NewMergedSource(inc, dec, con)
	var got []float64
	for {
		_, v, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []float64{9, 7, 5, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
	if v := src.Lookup(2); v != 7 {
		t.Fatalf("Lookup(2) = %g, want 7", v)
	}
	if v := src.Lookup(99); v != 0 {
		t.Fatalf("Lookup(missing) = %g, want 0", v)
	}
}

func TestMergedSourceAsTASource(t *testing.T) {
	// A merged group source must behave as a valid ta.Source; check
	// TA over (static attribute, merged bids) equals a naive scan.
	rng := rand.New(rand.NewSource(61))
	const n = 200
	w := make([]float64, n)
	bids := make([]float64, n)
	inc, dec, con := NewGroup(6, 200), NewGroup(7, 200), NewGroup(8, 200)
	groups := []*Group{inc, dec, con}
	for i := 0; i < n; i++ {
		w[i] = rng.Float64()
		bids[i] = float64(rng.Intn(50))
		groups[rng.Intn(3)].Insert(i, bids[i])
	}
	inc.Adjust(3)
	dec.Adjust(-2)
	for i := 0; i < n; i++ {
		if eff, ok := inc.Effective(i); ok {
			bids[i] = eff
		}
		if eff, ok := dec.Effective(i); ok {
			bids[i] = eff
		}
	}

	wItems := make([]topk.Item, n)
	for i := range wItems {
		wItems[i] = topk.Item{ID: i, Score: w[i]}
	}
	sortItems(wItems)
	wSource := &ta.SliceSource{Items: wItems, Get: func(id int) float64 { return w[id] }}
	bidSource := NewMergedSource(inc, dec, con)

	f := func(v []float64) float64 { return v[0] * v[1] }
	got, _ := ta.TopK(5, []ta.Source{wSource, bidSource}, f)

	h := topk.NewHeap(5)
	for i := 0; i < n; i++ {
		h.Offer(topk.Item{ID: i, Score: w[i] * bids[i]})
	}
	want := h.Items()
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("TA over merged source: got %v want %v", got, want)
		}
	}
}

func sortItems(items []topk.Item) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0; j-- {
			a, b := items[j-1], items[j]
			if a.Score > b.Score || (a.Score == b.Score && a.ID < b.ID) {
				break
			}
			items[j-1], items[j] = b, a
		}
	}
}

func TestTopEffective(t *testing.T) {
	a, b := NewGroup(9, 20), NewGroup(10, 20)
	for i := 0; i < 10; i++ {
		a.Insert(i, float64(i))
	}
	for i := 10; i < 20; i++ {
		b.Insert(i, float64(i))
	}
	b.Adjust(-100) // all of b now far below a
	got := TopEffective(3, a, b)
	want := []int{9, 8, 7}
	for i := range want {
		if got[i].ID != want[i] {
			t.Fatalf("TopEffective = %v, want IDs %v", got, want)
		}
	}
}

func TestTriggersFireInOrder(t *testing.T) {
	var tr Triggers
	var fired []int
	h := HandlerFunc(func(a, _ int) { fired = append(fired, a) })
	tr.Add(5, nil, 5, 0)
	tr.Add(2, nil, 2, 0)
	tr.Add(8, nil, 8, 0)
	if n := tr.Advance(4, h); n != 1 || len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("Advance(4): n=%d fired=%v", n, fired)
	}
	if n := tr.Advance(10, h); n != 2 {
		t.Fatalf("Advance(10): n=%d", n)
	}
	if fired[1] != 5 || fired[2] != 8 {
		t.Fatalf("firing order %v", fired)
	}
}

func TestTriggersPayload(t *testing.T) {
	var tr Triggers
	type pair struct{ a, b int }
	var fired []pair
	tr.Add(1, nil, 7, 3)
	tr.Add(2, nil, 9, -1)
	tr.Advance(5, HandlerFunc(func(a, b int) { fired = append(fired, pair{a, b}) }))
	want := []pair{{7, 3}, {9, -1}}
	if len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("payloads %v, want %v", fired, want)
	}
}

func TestTriggersStaleGeneration(t *testing.T) {
	var tr Triggers
	gen := 0
	fired := 0
	h := HandlerFunc(func(_, _ int) { fired++ })
	tr.Add(1, &gen, 0, 0)
	tr.Add(2, &gen, 0, 0)
	gen++ // both triggers now stale
	if n := tr.Advance(10, h); n != 0 || fired != 0 {
		t.Fatalf("stale triggers fired: n=%d fired=%d", n, fired)
	}
	tr.Add(3, &gen, 0, 0)
	if n := tr.Advance(10, h); n != 1 || fired != 1 {
		t.Fatalf("fresh trigger should fire: n=%d fired=%d", n, fired)
	}
}

func TestTriggersCascade(t *testing.T) {
	// A firing trigger registers another due trigger; it must fire in
	// the same Advance.
	var tr Triggers
	var fired []int
	var h HandlerFunc
	h = func(a, _ int) {
		fired = append(fired, a)
		if a == 1 {
			tr.Add(2, nil, 2, 0)
		}
	}
	tr.Add(1, nil, 1, 0)
	if n := tr.Advance(5, h); n != 2 {
		t.Fatalf("cascade: n=%d fired=%v", n, fired)
	}
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("cascade order %v", fired)
	}
}

func TestTriggersSameCriticalKeepInsertionOrder(t *testing.T) {
	var tr Triggers
	var fired []int
	for i := 0; i < 5; i++ {
		tr.Add(1, nil, i, 0)
	}
	tr.Advance(1, HandlerFunc(func(a, _ int) { fired = append(fired, a) }))
	for i := range fired {
		if fired[i] != i {
			t.Fatalf("same-critical firing order %v", fired)
		}
	}
}

// TestTriggersCompaction: stale registrations are swept when the
// queue would otherwise grow, so abandoned far-future triggers cannot
// inflate it for the life of the run — and live registrations survive
// the sweep.
func TestTriggersCompaction(t *testing.T) {
	var tr Triggers
	gen := 0
	for i := 0; i < 10000; i++ {
		tr.Add(float64(1000000+i), &gen, i, 0)
		gen++ // the registration just made is now stale
	}
	if tr.Len() > 64 {
		t.Fatalf("stale registrations not swept: Len = %d", tr.Len())
	}
	liveGen := 0
	tr.Add(5, &liveGen, 42, 7)
	for i := 0; i < 100; i++ {
		tr.Add(float64(2000000+i), &gen, i, 0)
		gen++
	}
	var fired [][2]int
	tr.Advance(10, HandlerFunc(func(a, b int) { fired = append(fired, [2]int{a, b}) }))
	if len(fired) != 1 || fired[0] != [2]int{42, 7} {
		t.Fatalf("live registration lost across compaction: fired %v", fired)
	}
}

// TestTriggersSteadyStateAllocs: with pre-grown capacity, a
// register/advance cycle allocates nothing — the property the §IV
// serving path relies on (registrations are index-based, the heap is
// hand-rolled, and firing goes through a Handler, so no closures and
// no interface boxing).
func TestTriggersSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	var tr Triggers
	tr.Grow(64)
	gen := 0
	fired := 0
	var h Handler = HandlerFunc(func(_, _ int) { fired++ })
	clock := 0.0
	allocs := testing.AllocsPerRun(500, func() {
		for i := 0; i < 8; i++ {
			tr.Add(clock+float64(i%3), &gen, i, 0)
		}
		clock += 3
		tr.Advance(clock, h)
	})
	if allocs != 0 {
		t.Fatalf("trigger cycle allocates %.2f objects/op, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("no triggers fired")
	}
}

// TestMergedSourceReset: one MergedSource re-seeded across mutations
// and across different group families must behave exactly like a
// freshly built source each time.
func TestMergedSourceReset(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n = 120
	gsA := NewGroupSet(1, n, 3)
	gsB := NewGroupSet(4, n, 3)
	for i := 0; i < n; i++ {
		gsA[rng.Intn(3)].Insert(i, float64(rng.Intn(40)))
		gsB[rng.Intn(3)].Insert(i, float64(rng.Intn(40)))
	}
	var reused MergedSource
	drain := func(s *MergedSource) []topk.Item {
		var out []topk.Item
		for {
			id, eff, ok := s.Next()
			if !ok {
				return out
			}
			out = append(out, topk.Item{ID: id, Score: eff})
		}
	}
	for round := 0; round < 6; round++ {
		gs := gsA
		if round%2 == 1 {
			gs = gsB
		}
		// Mutate between rounds: adjustments and a membership move.
		gs[0].Adjust(1)
		id := rng.Intn(n)
		for _, g := range gs {
			if eff, ok := g.Remove(id); ok {
				gs[rng.Intn(3)].Insert(id, eff)
				break
			}
		}
		reused.Reset(gs)
		got := drain(&reused)
		want := drain(NewMergedSource(gs[0], gs[1], gs[2]))
		if len(got) != len(want) {
			t.Fatalf("round %d: %d entries, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d entry %d: reused %+v, fresh %+v", round, i, got[i], want[i])
			}
		}
	}
}

// TestGroupSetRecyclesNodes: membership churn within a group set must
// not allocate once every list has been built — the pool guarantee
// the TALU engine's zero-allocation contract rests on.
func TestGroupSetRecyclesNodes(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	const n = 64
	gs := NewGroupSet(9, n, 3)
	for i := 0; i < n; i++ {
		gs[i%3].Insert(i, float64(i))
	}
	next := 0
	allocs := testing.AllocsPerRun(500, func() {
		id := next % n
		next++
		for gi, g := range gs {
			if eff, ok := g.Remove(id); ok {
				gs[(gi+1)%3].Insert(id, eff)
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("group-set churn allocates %.2f objects/op, want 0", allocs)
	}
}
