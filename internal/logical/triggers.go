package logical

// Triggers is a priority queue of registrations keyed on critical
// values of one shared monotonic variable (time, or the number of
// auctions a keyword has appeared in — Section IV-B). Advancing the
// variable fires, in order, every registration whose critical value
// has been reached.
//
// A registration is index-based: it carries two caller-defined ints
// (for the serving engine, a bidder and the keyword that scheduled
// the trigger) which Advance hands to a Handler. The engine resolves
// the indices back to the recompute it wants; nothing is captured, so
// registering a trigger allocates nothing beyond amortized growth of
// the queue itself — the closure-per-registration cost the §IV hot
// path cannot afford. The heap is hand-rolled rather than
// container/heap for the same reason: interface{} boxing in
// heap.Push/Pop allocates per operation.
//
// Triggers carry a generation tag so that stale registrations — for a
// program whose state was since recomputed, e.g. because it won an
// auction — can be skipped cheaply instead of searched for and
// removed.
type Triggers struct {
	items   []trigger
	nextSeq int
}

// Handler receives fired triggers: Advance calls FireTrigger with the
// two payload ints given at registration, for each due, non-stale
// registration.
type Handler interface {
	FireTrigger(a, b int)
}

// HandlerFunc adapts a plain function to the Handler interface.
type HandlerFunc func(a, b int)

// FireTrigger implements Handler.
func (f HandlerFunc) FireTrigger(a, b int) { f(a, b) }

// trigger is one registration.
type trigger struct {
	critical float64
	seq      int  // insertion order; makes firing order deterministic
	a, b     int  // caller payload (bidder, keyword in the engine)
	gen      *int // pointer to the owner's generation counter
	genAt    int  // generation at registration; stale if it moved
}

// Add registers payload (a, b) to fire once the variable reaches
// critical. gen, if non-nil, points to a generation counter: if *gen
// differs from its value at registration time when the trigger comes
// due, the trigger is stale and is discarded silently.
func (t *Triggers) Add(critical float64, gen *int, a, b int) {
	if len(t.items) == cap(t.items) && cap(t.items) > 0 {
		// About to grow: sweep stale registrations first. Stale
		// triggers never fire, so dropping them changes nothing except
		// bounding the queue to ~2× its live registrations — without
		// the sweep, far-future stale entries (a recomputed bidder's
		// abandoned t* crossings) accumulate for the whole run.
		t.compact()
	}
	item := trigger{critical: critical, seq: t.nextSeq, a: a, b: b, gen: gen}
	t.nextSeq++
	if gen != nil {
		item.genAt = *gen
	}
	t.items = append(t.items, item)
	t.up(len(t.items) - 1)
}

// compact drops stale registrations in place and restores the heap
// property. Firing order of the survivors is untouched (it depends
// only on critical and seq).
func (t *Triggers) compact() {
	live := t.items[:0]
	for _, item := range t.items {
		if item.gen != nil && *item.gen != item.genAt {
			continue
		}
		live = append(live, item)
	}
	t.items = live
	for i := len(live)/2 - 1; i >= 0; i-- {
		t.down(i)
	}
}

// Advance moves the shared variable to value, firing all due
// triggers in (critical, insertion) order through h. It returns the
// number of registrations actually fired (stale triggers are dropped
// without counting). Fired handlers may register new triggers; new
// registrations at or below value fire within the same Advance call.
func (t *Triggers) Advance(value float64, h Handler) int {
	fired := 0
	for len(t.items) > 0 && t.items[0].critical <= value {
		item := t.popMin()
		if item.gen != nil && *item.gen != item.genAt {
			continue // stale
		}
		h.FireTrigger(item.a, item.b)
		fired++
	}
	return fired
}

// Len returns the number of pending registrations, including stale
// ones not yet discarded.
func (t *Triggers) Len() int { return len(t.items) }

// Grow pre-reserves capacity for at least n pending registrations, so
// a caller that can bound its queue depth keeps Add allocation-free
// from the start instead of paying amortized growth during serving.
func (t *Triggers) Grow(n int) {
	if cap(t.items) < n {
		items := make([]trigger, len(t.items), n)
		copy(items, t.items)
		t.items = items
	}
}

// before orders registrations: lower critical first, ties by
// insertion order.
func before(a, b trigger) bool {
	if a.critical != b.critical {
		return a.critical < b.critical
	}
	return a.seq < b.seq
}

func (t *Triggers) up(i int) {
	h := t.items
	for i > 0 {
		parent := (i - 1) / 2
		if !before(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (t *Triggers) down(i int) {
	h := t.items
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && before(h[l], h[least]) {
			least = l
		}
		if r < n && before(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// popMin removes and returns the least registration under before.
func (t *Triggers) popMin() trigger {
	min := t.items[0]
	last := len(t.items) - 1
	t.items[0] = t.items[last]
	t.items = t.items[:last]
	if last > 0 {
		t.down(0)
	}
	return min
}
