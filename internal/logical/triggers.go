package logical

import "container/heap"

// Triggers is a priority queue of callbacks keyed on critical values
// of one shared monotonic variable (time, or the number of auctions a
// keyword has appeared in — Section IV-B). Advancing the variable
// fires, in order, every trigger whose critical value has been
// reached.
//
// Triggers carry a generation tag so that stale registrations — for a
// program whose state was since recomputed, e.g. because it won an
// auction — can be skipped cheaply instead of searched for and
// removed.
type Triggers struct {
	pq triggerHeap
}

// Trigger is one registered callback.
type trigger struct {
	critical float64
	seq      int // insertion order; makes firing order deterministic
	fn       func()
	gen      *int // pointer to the owner's generation counter
	genAt    int  // generation at registration; stale if it moved
}

// Add registers fn to fire once the variable reaches critical. gen,
// if non-nil, points to a generation counter: if *gen differs from
// its value at registration time when the trigger comes due, the
// trigger is stale and is discarded silently.
func (t *Triggers) Add(critical float64, gen *int, fn func()) {
	item := trigger{critical: critical, seq: t.pq.nextSeq, fn: fn, gen: gen}
	t.pq.nextSeq++
	if gen != nil {
		item.genAt = *gen
	}
	heap.Push(&t.pq, item)
}

// Advance moves the shared variable to value, firing all due
// triggers in (critical, insertion) order. It returns the number of
// callbacks actually invoked (stale triggers are dropped without
// counting). Callbacks may register new triggers; new registrations
// at or below value fire within the same Advance call.
func (t *Triggers) Advance(value float64) int {
	fired := 0
	for len(t.pq.items) > 0 && t.pq.items[0].critical <= value {
		item := heap.Pop(&t.pq).(trigger)
		if item.gen != nil && *item.gen != item.genAt {
			continue // stale
		}
		item.fn()
		fired++
	}
	return fired
}

// Len returns the number of pending registrations, including stale
// ones not yet discarded.
func (t *Triggers) Len() int { return len(t.pq.items) }

type triggerHeap struct {
	items   []trigger
	nextSeq int
}

func (h triggerHeap) Len() int { return len(h.items) }
func (h triggerHeap) Less(a, b int) bool {
	if h.items[a].critical != h.items[b].critical {
		return h.items[a].critical < h.items[b].critical
	}
	return h.items[a].seq < h.items[b].seq
}
func (h triggerHeap) Swap(a, b int) { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *triggerHeap) Push(x interface{}) {
	h.items = append(h.items, x.(trigger))
}
func (h *triggerHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
