package lp

import "fmt"

// AssignmentResult is the rounded solution of the winner-determination
// LP: an assignment of slots to advertisers plus the LP optimum.
type AssignmentResult struct {
	// AdvOf maps slot index -> advertiser index or -1.
	AdvOf []int
	// SlotOf maps advertiser index -> slot index or -1.
	SlotOf []int
	// Value is the LP objective value.
	Value float64
	// Iterations is the number of simplex pivots used.
	Iterations int
}

// SolveAssignment solves the winner-determination problem by linear
// programming — the paper's baseline method LP. Variables x_{ij}
// indicate advertiser i taking slot j; the constraints say each
// advertiser takes at most one slot and each slot holds at most one
// advertiser:
//
//	maximize   Σ_{ij} w[i][j]·x_{ij}
//	subject to Σ_j x_{ij} ≤ 1  for every advertiser i
//	           Σ_i x_{ij} ≤ 1  for every slot j
//	           x ≥ 0
//
// The constraint matrix is the clique matrix of a perfect graph, so
// by Chvátal's theorem the LP has an integral (0/1) optimum, and the
// simplex method lands on an integral vertex. Entries are rounded
// with tolerance when reading out the assignment; non-positive-weight
// placements are dropped, matching the matching package's convention.
func SolveAssignment(w [][]float64) (*AssignmentResult, error) {
	n := len(w)
	k := 0
	if n > 0 {
		k = len(w[0])
	}
	res := &AssignmentResult{
		AdvOf:  make([]int, k),
		SlotOf: make([]int, n),
	}
	for j := range res.AdvOf {
		res.AdvOf[j] = -1
	}
	for i := range res.SlotOf {
		res.SlotOf[i] = -1
	}
	if n == 0 || k == 0 {
		return res, nil
	}

	nv := n * k
	c := make([]float64, nv)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			// Clamp negative weights to zero: an optimal partial
			// matching never uses them, and clamping keeps the LP
			// optimum equal to the partial-matching optimum.
			if w[i][j] > 0 {
				c[i*k+j] = w[i][j]
			}
		}
	}
	cons := make([]Constraint, 0, n+k)
	for i := 0; i < n; i++ {
		a := make([]float64, nv)
		for j := 0; j < k; j++ {
			a[i*k+j] = 1
		}
		cons = append(cons, Constraint{A: a, Rel: LE, B: 1})
	}
	for j := 0; j < k; j++ {
		a := make([]float64, nv)
		for i := 0; i < n; i++ {
			a[i*k+j] = 1
		}
		cons = append(cons, Constraint{A: a, Rel: LE, B: 1})
	}
	sol, err := (&Problem{C: c, Cons: cons}).Solve()
	if err != nil {
		return nil, fmt.Errorf("lp: winner-determination LP: %w", err)
	}
	res.Iterations = sol.Iterations
	const half = 0.5
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			if sol.X[i*k+j] > half && w[i][j] > 0 {
				res.AdvOf[j] = i
				res.SlotOf[i] = j
				res.Value += w[i][j]
			}
		}
	}
	return res, nil
}
