// Package lp implements a general-purpose linear-programming solver —
// a dense two-phase primal simplex method — together with the
// assignment-LP formulation of winner determination used as the
// baseline method "LP" in the paper's evaluation (Section V).
//
// The paper solved this LP with the GNU Linear Programming Kit's
// simplex routine; this package is the from-scratch substitute. By a
// theorem of Chvátal the winner-determination LP always has an
// integral optimum (its constraint rows are the maximal cliques of a
// perfect graph), which the tests verify: the simplex solution is
// always 0/1 and matches the matching-based optimum.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is the relation of a constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // A·x ≤ B
	GE            // A·x ≥ B
	EQ            // A·x = B
)

// Constraint is one linear constraint over the problem's variables.
type Constraint struct {
	A   []float64
	Rel Rel
	B   float64
}

// Problem is a linear program: maximize C·x subject to the
// constraints and x ≥ 0.
type Problem struct {
	C    []float64
	Cons []Constraint
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrNoProgress = errors.New("lp: iteration limit reached")
)

const eps = 1e-9

// Solution is an optimal solution to a Problem.
type Solution struct {
	X   []float64
	Obj float64
	// Iterations is the total number of simplex pivots across both
	// phases, exposed for the benchmark harness.
	Iterations int
	// Duals holds the dual value (shadow price) of each ≤ constraint,
	// read from the reduced cost of its slack column at optimality;
	// entries for ≥ and = constraints are NaN (their duals would
	// require tracking surplus/artificial columns through phase 1).
	// For the winner-determination LP the slot constraints' duals are
	// market-clearing slot prices: complementary slackness makes every
	// matched edge satisfy w[i][j] = u_i + v_j exactly.
	Duals []float64
}

// Solve runs the two-phase primal simplex method and returns an
// optimal solution, or one of ErrInfeasible / ErrUnbounded.
func (p *Problem) Solve() (*Solution, error) {
	nv := len(p.C)
	for i, c := range p.Cons {
		if len(c.A) != nv {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.A), nv)
		}
	}
	t := newTableau(p)
	iters := 0
	if t.needPhase1 {
		n, err := t.phase1()
		iters += n
		if err != nil {
			return nil, err
		}
	}
	t.barArtificials = true
	t.installObjective(p.C)
	n, err := t.optimize()
	iters += n
	if err != nil {
		return nil, err
	}
	x := t.extract(nv)
	obj := 0.0
	for i, ci := range p.C {
		obj += ci * x[i]
	}
	return &Solution{X: x, Obj: obj, Iterations: iters, Duals: t.duals()}, nil
}

// tableau is a dense simplex tableau in canonical form: rows are
// constraints (equality form, b ≥ 0), columns are structural
// variables then slacks/surpluses then artificials then the RHS. Row
// z is the reduced-cost row of the current objective (maximization:
// optimal when all reduced costs ≤ 0... we store the negated
// convention below).
type tableau struct {
	m, cols    int // constraint rows; total variable columns (excl. RHS)
	a          [][]float64
	z          []float64 // objective row: z[j] = c_B·B⁻¹A_j − c_j; optimal when all ≥ −eps
	basis      []int     // basis[r] = column basic in row r
	artStart   int       // first artificial column, or cols if none
	slackOf    []int     // slackOf[r] = slack column of LE row r, or −1
	needPhase1 bool
	// barArtificials is set after phase 1: artificial columns may
	// never re-enter the basis during phase 2.
	barArtificials bool
}

func newTableau(p *Problem) *tableau {
	nv := len(p.C)
	m := len(p.Cons)
	// Count slack/surplus and artificial columns.
	nSlack, nArt := 0, 0
	for _, c := range p.Cons {
		if c.Rel != EQ {
			nSlack++
		}
		b, rel := c.B, c.Rel
		if b < 0 {
			rel = flip(rel)
		}
		// After normalizing b ≥ 0: LE rows get a slack that can start
		// basic; GE and EQ rows need an artificial.
		if rel != LE {
			nArt++
		}
	}
	t := &tableau{
		m:        m,
		cols:     nv + nSlack + nArt,
		artStart: nv + nSlack,
	}
	t.a = make([][]float64, m)
	t.z = make([]float64, t.cols+1)
	t.basis = make([]int, m)
	t.slackOf = make([]int, m)
	for r := range t.slackOf {
		t.slackOf[r] = -1
	}
	slackCol := nv
	artCol := t.artStart
	for r, c := range p.Cons {
		row := make([]float64, t.cols+1)
		sign := 1.0
		rel := c.Rel
		if c.B < 0 {
			sign = -1
			rel = flip(rel)
		}
		for j, aj := range c.A {
			row[j] = sign * aj
		}
		row[t.cols] = sign * c.B
		switch rel {
		case LE:
			row[slackCol] = 1
			t.basis[r] = slackCol
			t.slackOf[r] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[r] = artCol
			artCol++
			t.needPhase1 = true
		case EQ:
			row[artCol] = 1
			t.basis[r] = artCol
			artCol++
			t.needPhase1 = true
		}
		t.a[r] = row
	}
	return t
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// phase1 minimizes the sum of artificials. On success all artificials
// are zero (and driven out of the basis where possible).
func (t *tableau) phase1() (int, error) {
	// Objective: maximize −Σ artificials. Reduced costs must reflect
	// the initial basis (artificials basic with coefficient −1).
	for j := range t.z {
		t.z[j] = 0
	}
	for j := t.artStart; j < t.cols; j++ {
		t.z[j] = 1 // c_j = −1 → −c_j = 1 before basis adjustment below
	}
	// Subtract rows whose basic variable is artificial so basic
	// columns have zero reduced cost.
	for r, b := range t.basis {
		if b >= t.artStart {
			for j := 0; j <= t.cols; j++ {
				t.z[j] -= t.a[r][j]
			}
		}
	}
	iters, err := t.optimize()
	if err != nil {
		return iters, err
	}
	if t.z[t.cols] < -eps { // phase-1 objective value = −Σ artificials
		return iters, ErrInfeasible
	}
	// Pivot any artificial still (degenerately) basic out of the
	// basis. If no structural column has a non-zero entry in the row,
	// the constraint is redundant and the artificial stays basic at
	// value zero, which is harmless.
	for r, b := range t.basis {
		if b < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[r][j]) > eps {
				t.pivot(r, j)
				break
			}
		}
	}
	return iters, nil
}

// installObjective loads the phase-2 objective (maximize c·x) and
// makes the reduced costs consistent with the current basis.
// Artificial columns are barred from re-entering.
func (t *tableau) installObjective(c []float64) {
	for j := range t.z {
		t.z[j] = 0
	}
	for j, cj := range c {
		t.z[j] = -cj
	}
	// Eliminate basic columns from the objective row.
	for r, b := range t.basis {
		if math.Abs(t.z[b]) < eps {
			continue
		}
		f := t.z[b]
		for j := 0; j <= t.cols; j++ {
			t.z[j] -= f * t.a[r][j]
		}
	}
}

// maxIterFactor bounds total pivots at maxIterFactor·(m+cols) before
// giving up; Bland's rule (used after blandAfter pivots) guarantees
// termination, so the bound is a safety net against bugs only.
const (
	maxIterFactor = 50
	blandAfter    = 10000
)

// optimize runs primal simplex pivots until optimality.
func (t *tableau) optimize() (int, error) {
	limit := maxIterFactor * (t.m + t.cols)
	if limit < 1000 {
		limit = 1000
	}
	for iter := 0; iter < limit; iter++ {
		col := t.chooseColumn(iter >= blandAfter)
		if col < 0 {
			return iter, nil // optimal
		}
		row := t.chooseRow(col)
		if row < 0 {
			return iter, ErrUnbounded
		}
		t.pivot(row, col)
	}
	return limit, ErrNoProgress
}

// chooseColumn picks the entering column: most negative reduced cost
// (Dantzig) or the lowest-index negative one (Bland). Artificial
// columns never re-enter after phase 1.
func (t *tableau) chooseColumn(bland bool) int {
	limit := t.cols
	if t.barArtificials {
		limit = t.artStart
	}
	best, bestVal := -1, -eps
	for j := 0; j < limit; j++ {
		if t.z[j] < bestVal {
			if bland {
				return j
			}
			best, bestVal = j, t.z[j]
		}
	}
	return best
}

// chooseRow performs the ratio test for entering column col; returns
// −1 if the column is unbounded. Ties are broken toward the smallest
// basis index (Bland-compatible) so that the Bland fallback in
// chooseColumn yields a provably terminating rule.
func (t *tableau) chooseRow(col int) int {
	best := -1
	bestRatio := math.Inf(1)
	for r := 0; r < t.m; r++ {
		arc := t.a[r][col]
		if arc <= eps {
			continue
		}
		ratio := t.a[r][t.cols] / arc
		if ratio < bestRatio-eps {
			best, bestRatio = r, ratio
		} else if ratio < bestRatio+eps && best >= 0 {
			if t.basis[r] < t.basis[best] {
				best = r
			}
		}
	}
	return best
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	piv := t.a[row][col]
	inv := 1 / piv
	prow := t.a[row]
	for j := 0; j <= t.cols; j++ {
		prow[j] *= inv
	}
	prow[col] = 1
	for r := 0; r < t.m; r++ {
		if r == row {
			continue
		}
		f := t.a[r][col]
		if f == 0 {
			continue
		}
		arow := t.a[r]
		for j := 0; j <= t.cols; j++ {
			arow[j] -= f * prow[j]
		}
		arow[col] = 0
	}
	if f := t.z[col]; f != 0 {
		for j := 0; j <= t.cols; j++ {
			t.z[j] -= f * prow[j]
		}
		t.z[col] = 0
	}
	t.basis[row] = col
}

// duals reads the dual value of every LE constraint: the reduced
// cost of its slack column (c_B·B⁻¹·e_r − 0 = y_r).
func (t *tableau) duals() []float64 {
	out := make([]float64, t.m)
	for r := 0; r < t.m; r++ {
		if sc := t.slackOf[r]; sc >= 0 {
			out[r] = t.z[sc]
		} else {
			out[r] = math.NaN()
		}
	}
	return out
}

// extract reads the current values of the first nv variables.
func (t *tableau) extract(nv int) []float64 {
	x := make([]float64, nv)
	for r, b := range t.basis {
		if b < nv {
			x[b] = t.a[r][t.cols]
		}
	}
	return x
}
