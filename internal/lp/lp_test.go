package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matching"
)

const tol = 1e-6

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6 → x=4, y=0, obj 12.
	p := &Problem{
		C: []float64{3, 2},
		Cons: []Constraint{
			{A: []float64{1, 1}, Rel: LE, B: 4},
			{A: []float64{1, 3}, Rel: LE, B: 6},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Obj-12) > tol {
		t.Fatalf("obj %g, want 12 (x=%v)", s.Obj, s.X)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// max x + y s.t. 2x + y ≤ 4, x + 2y ≤ 4 → x=y=4/3, obj 8/3.
	p := &Problem{
		C: []float64{1, 1},
		Cons: []Constraint{
			{A: []float64{2, 1}, Rel: LE, B: 4},
			{A: []float64{1, 2}, Rel: LE, B: 4},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Obj-8.0/3) > tol {
		t.Fatalf("obj %g, want %g", s.Obj, 8.0/3)
	}
	if math.Abs(s.X[0]-4.0/3) > tol || math.Abs(s.X[1]-4.0/3) > tol {
		t.Fatalf("x = %v, want [4/3 4/3]", s.X)
	}
}

func TestEqualityConstraintNeedsPhase1(t *testing.T) {
	// max x + 2y s.t. x + y = 3, y ≤ 2 → x=1, y=2, obj 5.
	p := &Problem{
		C: []float64{1, 2},
		Cons: []Constraint{
			{A: []float64{1, 1}, Rel: EQ, B: 3},
			{A: []float64{0, 1}, Rel: LE, B: 2},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Obj-5) > tol {
		t.Fatalf("obj %g, want 5 (x=%v)", s.Obj, s.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// max -x s.t. x ≥ 2 → x=2, obj −2 (maximize −x means minimize x).
	p := &Problem{
		C:    []float64{-1},
		Cons: []Constraint{{A: []float64{1}, Rel: GE, B: 2}},
	}
	s := solveOK(t, p)
	if math.Abs(s.Obj+2) > tol {
		t.Fatalf("obj %g, want -2", s.Obj)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// −x ≤ −2 is x ≥ 2.
	p := &Problem{
		C:    []float64{-1},
		Cons: []Constraint{{A: []float64{-1}, Rel: LE, B: -2}},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-2) > tol {
		t.Fatalf("x = %v, want [2]", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		C: []float64{1},
		Cons: []Constraint{
			{A: []float64{1}, Rel: LE, B: 1},
			{A: []float64{1}, Rel: GE, B: 2},
		},
	}
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		C:    []float64{1, 0},
		Cons: []Constraint{{A: []float64{0, 1}, Rel: LE, B: 1}},
	}
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Multiple redundant constraints intersecting at the optimum.
	p := &Problem{
		C: []float64{1, 1},
		Cons: []Constraint{
			{A: []float64{1, 0}, Rel: LE, B: 1},
			{A: []float64{0, 1}, Rel: LE, B: 1},
			{A: []float64{1, 1}, Rel: LE, B: 2},
			{A: []float64{2, 2}, Rel: LE, B: 4},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Obj-2) > tol {
		t.Fatalf("obj %g, want 2", s.Obj)
	}
}

func TestRedundantEquality(t *testing.T) {
	// x + y = 2 twice; max x → x=2.
	p := &Problem{
		C: []float64{1, 0},
		Cons: []Constraint{
			{A: []float64{1, 1}, Rel: EQ, B: 2},
			{A: []float64{1, 1}, Rel: EQ, B: 2},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Obj-2) > tol {
		t.Fatalf("obj %g, want 2", s.Obj)
	}
}

func TestArityMismatch(t *testing.T) {
	p := &Problem{C: []float64{1}, Cons: []Constraint{{A: []float64{1, 2}, Rel: LE, B: 1}}}
	if _, err := p.Solve(); err == nil {
		t.Fatal("want arity error")
	}
}

func randWeights(rng *rand.Rand, n, k int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, k)
		for j := range w[i] {
			w[i][j] = rng.Float64() * 10
		}
	}
	return w
}

// TestAssignmentLPMatchesMatching is the Chvátal integrality check:
// the LP optimum equals the combinatorial matching optimum, and the
// extracted solution is a valid assignment.
func TestAssignmentLPMatchesMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(12)
		k := 1 + rng.Intn(5)
		w := randWeights(rng, n, k)
		res, err := SolveAssignment(w)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		want := matching.MaxWeight(w)
		if math.Abs(res.Value-want.Value) > 1e-6 {
			t.Fatalf("n=%d k=%d: LP %g != matching %g", n, k, res.Value, want.Value)
		}
		seen := map[int]bool{}
		for j, i := range res.AdvOf {
			if i < 0 {
				continue
			}
			if seen[i] {
				t.Fatalf("advertiser %d in two slots", i)
			}
			seen[i] = true
			if res.SlotOf[i] != j {
				t.Fatalf("inconsistent SlotOf/AdvOf")
			}
		}
	}
}

// TestAssignmentLPIntegrality verifies the LP vertex itself is 0/1,
// not merely that rounding recovers the optimum.
func TestAssignmentLPIntegrality(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(8)
		k := 1 + rng.Intn(4)
		w := randWeights(rng, n, k)
		nv := n * k
		c := make([]float64, nv)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				c[i*k+j] = w[i][j]
			}
		}
		var cons []Constraint
		for i := 0; i < n; i++ {
			a := make([]float64, nv)
			for j := 0; j < k; j++ {
				a[i*k+j] = 1
			}
			cons = append(cons, Constraint{A: a, Rel: LE, B: 1})
		}
		for j := 0; j < k; j++ {
			a := make([]float64, nv)
			for i := 0; i < n; i++ {
				a[i*k+j] = 1
			}
			cons = append(cons, Constraint{A: a, Rel: LE, B: 1})
		}
		s, err := (&Problem{C: c, Cons: cons}).Solve()
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range s.X {
			if math.Abs(x) > 1e-7 && math.Abs(x-1) > 1e-7 {
				t.Fatalf("fractional vertex component %g", x)
			}
		}
	}
}

func TestAssignmentLPEmpty(t *testing.T) {
	res, err := SolveAssignment(nil)
	if err != nil || res.Value != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
}

func TestQuickPropertyLPNeverBelowGreedy(t *testing.T) {
	// The LP optimum is an upper bound for any greedy single
	// assignment (pick the global best edge).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		k := 1 + rng.Intn(3)
		w := randWeights(rng, n, k)
		res, err := SolveAssignment(w)
		if err != nil {
			return false
		}
		bestEdge := 0.0
		for i := range w {
			for j := range w[i] {
				if w[i][j] > bestEdge {
					bestEdge = w[i][j]
				}
			}
		}
		return res.Value >= bestEdge-1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAssignmentDualsAreMarketPrices: at optimality the duals of the
// advertiser and slot constraints form a feasible dual (u_i + v_j ≥
// w_ij) with complementary slackness on matched edges — i.e. the slot
// duals are competitive-equilibrium slot prices.
func TestAssignmentDualsAreMarketPrices(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		k := 1 + rng.Intn(4)
		w := randWeights(rng, n, k)
		nv := n * k
		c := make([]float64, nv)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				c[i*k+j] = w[i][j]
			}
		}
		var cons []Constraint
		for i := 0; i < n; i++ {
			a := make([]float64, nv)
			for j := 0; j < k; j++ {
				a[i*k+j] = 1
			}
			cons = append(cons, Constraint{A: a, Rel: LE, B: 1})
		}
		for j := 0; j < k; j++ {
			a := make([]float64, nv)
			for i := 0; i < n; i++ {
				a[i*k+j] = 1
			}
			cons = append(cons, Constraint{A: a, Rel: LE, B: 1})
		}
		sol, err := (&Problem{C: c, Cons: cons}).Solve()
		if err != nil {
			t.Fatal(err)
		}
		u := sol.Duals[:n]
		v := sol.Duals[n:]
		var dualObj float64
		for i := 0; i < n; i++ {
			if u[i] < -tol {
				t.Fatalf("negative dual u[%d] = %g", i, u[i])
			}
			dualObj += u[i]
			for j := 0; j < k; j++ {
				if w[i][j] > u[i]+v[j]+1e-6 {
					t.Fatalf("dual infeasible: w[%d][%d]=%g > u+v=%g", i, j, w[i][j], u[i]+v[j])
				}
				// Complementary slackness on matched edges.
				if sol.X[i*k+j] > 0.5 && math.Abs(w[i][j]-u[i]-v[j]) > 1e-6 {
					t.Fatalf("CS violated on matched edge (%d,%d): w=%g u+v=%g",
						i, j, w[i][j], u[i]+v[j])
				}
			}
		}
		for j := 0; j < k; j++ {
			if v[j] < -tol {
				t.Fatalf("negative slot price v[%d] = %g", j, v[j])
			}
			dualObj += v[j]
		}
		// Strong duality: dual objective equals the primal optimum.
		if math.Abs(dualObj-sol.Obj) > 1e-6 {
			t.Fatalf("duality gap: dual %g, primal %g", dualObj, sol.Obj)
		}
	}
}
