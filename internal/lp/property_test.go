package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestRandomFeasibleLPs checks two semidecidable properties on random
// LPs with ≤ constraints and non-negative b (always feasible at 0):
// the returned point satisfies every constraint, and it weakly
// dominates a cloud of random feasible points (local optimality
// evidence without an external solver).
func TestRandomFeasibleLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 120; trial++ {
		nv := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := &Problem{C: make([]float64, nv)}
		for v := range p.C {
			p.C[v] = rng.NormFloat64()
		}
		for r := 0; r < m; r++ {
			a := make([]float64, nv)
			for v := range a {
				a[v] = rng.Float64() // non-negative rows keep it bounded when c>0 dims covered
			}
			p.Cons = append(p.Cons, Constraint{A: a, Rel: LE, B: rng.Float64() * 10})
		}
		// Ensure boundedness: add a box constraint on every variable.
		for v := 0; v < nv; v++ {
			a := make([]float64, nv)
			a[v] = 1
			p.Cons = append(p.Cons, Constraint{A: a, Rel: LE, B: 5 + rng.Float64()*10})
		}

		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Feasibility.
		for v, x := range sol.X {
			if x < -1e-7 {
				t.Fatalf("trial %d: x[%d] = %g negative", trial, v, x)
			}
		}
		for r, c := range p.Cons {
			dot := 0.0
			for v := range c.A {
				dot += c.A[v] * sol.X[v]
			}
			if dot > c.B+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %g > %g", trial, r, dot, c.B)
			}
		}
		// Dominance over random feasible points (rejection sampling).
		for probe := 0; probe < 200; probe++ {
			x := make([]float64, nv)
			for v := range x {
				x[v] = rng.Float64() * 5
			}
			feasible := true
			for _, c := range p.Cons {
				dot := 0.0
				for v := range c.A {
					dot += c.A[v] * x[v]
				}
				if dot > c.B {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			obj := 0.0
			for v := range x {
				obj += p.C[v] * x[v]
			}
			if obj > sol.Obj+1e-6 {
				t.Fatalf("trial %d: found feasible point with objective %g > claimed optimum %g",
					trial, obj, sol.Obj)
			}
		}
	}
}

// TestKnownOptimaBattery pins a set of textbook LPs.
func TestKnownOptimaBattery(t *testing.T) {
	cases := []struct {
		name string
		p    Problem
		want float64
	}{
		{
			// Klee–Minty-ish cube, d=3 (stress pivoting, optimum 100).
			name: "kleeminty3",
			p: Problem{
				C: []float64{100, 10, 1},
				Cons: []Constraint{
					{A: []float64{1, 0, 0}, Rel: LE, B: 1},
					{A: []float64{20, 1, 0}, Rel: LE, B: 100},
					{A: []float64{200, 20, 1}, Rel: LE, B: 10000},
				},
			},
			want: 10000,
		},
		{
			name: "transport",
			// min-style: maximize −cost of a 2×2 transportation LP with
			// equality supply/demand: supplies 3,2; demands 2,3;
			// costs 1,2 / 3,1 → optimal cost 2·1+1·2+2·1 = 6 → obj −6.
			p: Problem{
				C: []float64{-1, -2, -3, -1},
				Cons: []Constraint{
					{A: []float64{1, 1, 0, 0}, Rel: EQ, B: 3},
					{A: []float64{0, 0, 1, 1}, Rel: EQ, B: 2},
					{A: []float64{1, 0, 1, 0}, Rel: EQ, B: 2},
					{A: []float64{0, 1, 0, 1}, Rel: EQ, B: 3},
				},
			},
			want: -6,
		},
		{
			name: "mixedRelations",
			// max x+y s.t. x ≥ 1, y ≥ 1, x+y ≤ 5 → 5.
			p: Problem{
				C: []float64{1, 1},
				Cons: []Constraint{
					{A: []float64{1, 0}, Rel: GE, B: 1},
					{A: []float64{0, 1}, Rel: GE, B: 1},
					{A: []float64{1, 1}, Rel: LE, B: 5},
				},
			},
			want: 5,
		},
	}
	for _, c := range cases {
		sol, err := c.p.Solve()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(sol.Obj-c.want) > 1e-6 {
			t.Fatalf("%s: obj %g, want %g (x=%v)", c.name, sol.Obj, c.want, sol.X)
		}
	}
}

// TestInfeasibleEqualitySystem exercises phase 1's failure path on an
// inconsistent equality system.
func TestInfeasibleEqualitySystem(t *testing.T) {
	p := &Problem{
		C: []float64{1, 1},
		Cons: []Constraint{
			{A: []float64{1, 1}, Rel: EQ, B: 2},
			{A: []float64{1, 1}, Rel: EQ, B: 3},
		},
	}
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
