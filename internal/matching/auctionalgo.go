package matching

import "math"

// AuctionAssign solves the maximum-weight partial assignment with
// Bertsekas's auction algorithm — a third solver alongside the
// Hungarian kernel and the LP, fitting for a library about auctions:
// slots literally bid for advertisers.
//
// Slots act as bidders. The objects are the n advertisers plus k
// zero-value dummy objects ("stay empty"), all starting at price
// zero. An unassigned slot computes the net value (value − price) of
// every object, grabs the best, and raises its price by the bid
// increment (best − secondBest + ε), possibly evicting the previous
// holder. Within a single run every priced-up object remains held, so
// at termination ε-complementary slackness gives
//
//	value(assignment) ≥ OPT − k·ε.
//
// For integer weights any ε < 1/k therefore yields the exact optimum
// (the classic integrality argument); for real weights the result is
// ε-optimal. The simple forward auction is used deliberately — the
// asymmetric ε-scaling variant needs Bertsekas–Castañón reverse
// auctions to keep unheld objects' prices honest, and the run time
// O(k·n·maxW/ε) is already fine for the small-ε-relative-to-weights
// regime the engine needs.
func AuctionAssign(n, k int, weight func(i, j int) float64, eps float64) Assignment {
	advOf := make([]int, k)
	for j := range advOf {
		advOf[j] = -1
	}
	if n == 0 || k == 0 {
		return newAssignmentFunc(weight, n, advOf)
	}
	if eps <= 0 {
		eps = 1.0 / float64(k+1)
	}

	m := n + k // objects: advertisers then per-slot dummies
	// Clamp negatives: an empty slot always beats a negative edge.
	value := func(obj, j int) float64 {
		if obj >= n {
			return 0
		}
		v := weight(obj, j)
		if v < 0 {
			return 0
		}
		return v
	}

	price := make([]float64, m)
	holder := make([]int, m) // object -> slot holding it, or −1
	objOf := make([]int, k)  // slot -> object, or −1
	for o := range holder {
		holder[o] = -1
	}
	unassigned := make([]int, 0, k)
	for j := 0; j < k; j++ {
		objOf[j] = -1
		unassigned = append(unassigned, j)
	}

	for len(unassigned) > 0 {
		j := unassigned[len(unassigned)-1]
		unassigned = unassigned[:len(unassigned)-1]

		bestO := -1
		bestV, secondV := math.Inf(-1), math.Inf(-1)
		for o := 0; o < m; o++ {
			v := value(o, j) - price[o]
			if v > bestV {
				secondV = bestV
				bestV, bestO = v, o
			} else if v > secondV {
				secondV = v
			}
		}
		if math.IsInf(secondV, -1) {
			secondV = bestV // single-object degenerate case
		}
		price[bestO] += bestV - secondV + eps
		if prev := holder[bestO]; prev >= 0 {
			objOf[prev] = -1
			unassigned = append(unassigned, prev)
		}
		holder[bestO] = j
		objOf[j] = bestO
	}

	for j := 0; j < k; j++ {
		if o := objOf[j]; o >= 0 && o < n {
			advOf[j] = o
		}
	}
	dropNonPositiveFunc(weight, advOf)
	return newAssignmentFunc(weight, n, advOf)
}
