package matching

import (
	"math"
	"math/rand"
	"testing"
)

// TestAuctionAssignExactOnIntegers: with integer weights and
// ε < 1/k, ε-complementary slackness forces the exact optimum.
func TestAuctionAssignExactOnIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		k := 1 + rng.Intn(6)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, k)
			for j := range w[i] {
				w[i][j] = float64(rng.Intn(60) - 10)
			}
		}
		got := AuctionAssign(n, k, func(i, j int) float64 { return w[i][j] }, 0)
		checkValid(t, w, got)
		want := MaxWeight(w)
		if math.Abs(got.Value-want.Value) > 1e-9 {
			t.Fatalf("n=%d k=%d: auction %g != hungarian %g", n, k, got.Value, want.Value)
		}
	}
}

// TestAuctionAssignEpsOptimalOnFloats: with real weights the value is
// within k·ε of the optimum.
func TestAuctionAssignEpsOptimalOnFloats(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(30)
		k := 1 + rng.Intn(5)
		w := randMatrix(rng, n, k, true)
		const eps = 1e-4
		got := AuctionAssign(n, k, func(i, j int) float64 { return w[i][j] }, eps)
		checkValid(t, w, got)
		want := MaxWeight(w)
		if got.Value < want.Value-float64(k)*eps-1e-9 {
			t.Fatalf("n=%d k=%d: auction %g below eps-optimality bound of %g",
				n, k, got.Value, want.Value)
		}
		if got.Value > want.Value+1e-9 {
			t.Fatalf("n=%d k=%d: auction %g exceeds optimum %g", n, k, got.Value, want.Value)
		}
	}
}

func TestAuctionAssignEdgeCases(t *testing.T) {
	if a := AuctionAssign(0, 3, nil, 0); a.Value != 0 {
		t.Fatalf("empty: %+v", a)
	}
	w := [][]float64{{-1, -2}}
	a := AuctionAssign(1, 2, func(i, j int) float64 { return w[i][j] }, 0)
	if a.Value != 0 || a.AdvOf[0] != -1 || a.AdvOf[1] != -1 {
		t.Fatalf("all-negative: %+v", a)
	}
}

func TestAuctionAssignLargeSkew(t *testing.T) {
	// One advertiser dominates every slot; the auction must give him
	// exactly one slot (the best) and fill the rest with runners-up.
	w := [][]float64{
		{100, 90, 80},
		{10, 9, 8},
		{7, 6, 5},
		{4, 3, 2},
	}
	a := AuctionAssign(4, 3, func(i, j int) float64 { return w[i][j] }, 0)
	want := MaxWeight(w)
	if math.Abs(a.Value-want.Value) > 1e-6 {
		t.Fatalf("auction %g != %g", a.Value, want.Value)
	}
	if a.SlotOf[0] != 0 {
		t.Fatalf("dominant advertiser should take slot 0, got %d", a.SlotOf[0])
	}
}
