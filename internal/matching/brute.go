package matching

// BruteForce enumerates every partial assignment of slots to
// advertisers (each slot left empty or given a distinct advertiser)
// and returns one with maximum total weight. Its cost is
// O((n+1)·n·(n−1)⋯) ≈ O(n^k), usable only for tiny instances; it is
// the correctness oracle the fast solvers are tested against, and it
// corresponds to the paper's observation (Section III-F) that fully
// general valuations admit only brute-force winner determination.
func BruteForce(w [][]float64) Assignment {
	n := len(w)
	k := 0
	if n > 0 {
		k = len(w[0])
	}
	best := make([]int, k)
	cur := make([]int, k)
	for j := range best {
		best[j] = -1
		cur[j] = -1
	}
	used := make([]bool, n)
	bestVal := 0.0
	var rec func(j int, val float64)
	rec = func(j int, val float64) {
		if j == k {
			if val > bestVal {
				bestVal = val
				copy(best, cur)
			}
			return
		}
		// Leave slot j empty.
		cur[j] = -1
		rec(j+1, val)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur[j] = i
			rec(j+1, val+w[i][j])
			cur[j] = -1
			used[i] = false
		}
	}
	rec(0, 0)
	return newAssignment(w, n, best)
}

// EnumeratePartial calls fn with every partial assignment of k slots
// to n advertisers (advOf[j] = advertiser index or -1), reusing the
// same backing slice across calls. It underlies the general
// m-dependent brute-force oracle in the core package.
func EnumeratePartial(n, k int, fn func(advOf []int)) {
	cur := make([]int, k)
	for j := range cur {
		cur[j] = -1
	}
	used := make([]bool, n)
	var rec func(j int)
	rec = func(j int) {
		if j == k {
			fn(cur)
			return
		}
		cur[j] = -1
		rec(j + 1)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur[j] = i
			rec(j + 1)
			cur[j] = -1
			used[i] = false
		}
	}
	rec(0)
}
