package matching

// assignRows solves the maximum-weight assignment of nr rows to nc
// columns by shortest augmenting paths with potentials (the
// Jonker–Volgenant refinement of the Hungarian method of Kuhn and
// Munkres). Each row additionally owns a zero-weight dummy column, so
// a row may stay unassigned and negative-weight pairings are never
// forced (weights are clamped below at zero, which preserves the
// optimum of the partial-matching problem: a negative edge can always
// be dropped).
//
// The returned slice maps each row to its real column, or −1.
//
// Each of the nr phases initializes slack arrays over nc+nr columns,
// so the cost is Θ(nr·(nc+nr)) at best and O(nr·(nc+nr)²) in the
// worst case. Orientation therefore matters:
//
//   - the paper's method H runs rows = advertisers over the full
//     graph, whose Θ(n·(k+n)) ≥ Θ(n²) floor is exactly the
//     quadratic-in-n behavior that motivates the reduced algorithm;
//   - the reduced solve (method RH) runs rows = slots over the ≤ k²
//     candidates, giving the O(k⁵)-bounded tail of Section III-E.
//
// The solver body lives on Workspace.assignRows (workspace.go) so the
// serving engine can run it allocation-free; this wrapper serves the
// one-shot callers.
func assignRows(nr, nc int, weight func(r, c int) float64) []int {
	return NewWorkspace().assignRows(nr, nc, weight)
}

// solveJV solves the advertiser×slot assignment with rows =
// advertisers (method H's orientation) and returns slot → advertiser.
func solveJV(n, k int, weight func(i, j int) float64) []int {
	slotOf := assignRows(n, k, weight)
	advOf := make([]int, k)
	for j := range advOf {
		advOf[j] = -1
	}
	for i, j := range slotOf {
		if j >= 0 {
			advOf[j] = i
		}
	}
	return advOf
}

// The reduced solve (rows = slots — the right orientation when
// advertisers vastly outnumber slots) runs through
// Workspace.AssignCandidatesInto.
