package matching

// assignRows solves the maximum-weight assignment of nr rows to nc
// columns by shortest augmenting paths with potentials (the
// Jonker–Volgenant refinement of the Hungarian method of Kuhn and
// Munkres). Each row additionally owns a zero-weight dummy column, so
// a row may stay unassigned and negative-weight pairings are never
// forced (weights are clamped below at zero, which preserves the
// optimum of the partial-matching problem: a negative edge can always
// be dropped).
//
// The returned slice maps each row to its real column, or −1.
//
// Each of the nr phases initializes slack arrays over nc+nr columns,
// so the cost is Θ(nr·(nc+nr)) at best and O(nr·(nc+nr)²) in the
// worst case. Orientation therefore matters:
//
//   - the paper's method H runs rows = advertisers over the full
//     graph, whose Θ(n·(k+n)) ≥ Θ(n²) floor is exactly the
//     quadratic-in-n behavior that motivates the reduced algorithm;
//   - the reduced solve (method RH) runs rows = slots over the ≤ k²
//     candidates, giving the O(k⁵)-bounded tail of Section III-E.
func assignRows(nr, nc int, weight func(r, c int) float64) []int {
	m := nc + nr // columns: real ones, then one dummy per row
	cost := func(r, c int) float64 {
		if c >= nc {
			return 0
		}
		w := weight(r, c)
		if w <= 0 {
			return 0
		}
		return -w
	}

	const inf = 1e308
	u := make([]float64, nr)  // row potentials
	v := make([]float64, m+1) // column potentials; col m is the sentinel
	p := make([]int, m+1)     // p[c] = row matched to column c, −1 free
	way := make([]int, m+1)   // predecessor column on the alternating path
	minv := make([]float64, m+1)
	used := make([]bool, m+1)
	for c := range p {
		p[c] = -1
	}

	for r := 0; r < nr; r++ {
		p[m] = r
		c0 := m
		for c := 0; c <= m; c++ {
			minv[c] = inf
			used[c] = false
		}
		for {
			used[c0] = true
			r0 := p[c0]
			delta := inf
			c1 := -1
			for c := 0; c < m; c++ {
				if used[c] {
					continue
				}
				cur := cost(r0, c) - u[r0] - v[c]
				if cur < minv[c] {
					minv[c] = cur
					way[c] = c0
				}
				// Prefer free columns on ties: the dummy block gives
				// every row a zero-cost exit, and without this
				// preference Dijkstra chains through arbitrarily many
				// equal-cost matched dummies, degrading the phase from
				// O(path·m) to O(n·m).
				if minv[c] < delta || (minv[c] == delta && c1 >= 0 && p[c] < 0 && p[c1] >= 0) {
					delta = minv[c]
					c1 = c
				}
			}
			for c := 0; c <= m; c++ {
				if used[c] {
					u[p[c]] += delta
					v[c] -= delta
				} else {
					minv[c] -= delta
				}
			}
			c0 = c1
			if p[c0] < 0 {
				break
			}
		}
		for c0 != m {
			c1 := way[c0]
			p[c0] = p[c1]
			c0 = c1
		}
	}

	colOf := make([]int, nr)
	for r := range colOf {
		colOf[r] = -1
	}
	for c := 0; c < nc; c++ {
		if p[c] >= 0 {
			colOf[p[c]] = c
		}
	}
	return colOf
}

// solveJV solves the advertiser×slot assignment with rows =
// advertisers (method H's orientation) and returns slot → advertiser.
func solveJV(n, k int, weight func(i, j int) float64) []int {
	slotOf := assignRows(n, k, weight)
	advOf := make([]int, k)
	for j := range advOf {
		advOf[j] = -1
	}
	for i, j := range slotOf {
		if j >= 0 {
			advOf[j] = i
		}
	}
	return advOf
}

// solveJVBySlots solves the same problem with rows = slots — the
// right orientation when advertisers vastly outnumber slots, as in
// the reduced graph. It returns slot → advertiser.
func solveJVBySlots(n, k int, weight func(i, j int) float64) []int {
	return assignRows(k, n, func(j, i int) float64 { return weight(i, j) })
}
