// Package matching implements maximum-weight bipartite matching
// between advertisers and slots, the computational core of winner
// determination (Theorem 2 of the paper).
//
// Three exact solvers are provided:
//
//   - MaxWeight — the "straightforward" Hungarian method (paper's
//     method H): a shortest-augmenting-path assignment solver run on
//     the full bipartite graph, padded square so that every advertiser
//     may also remain unassigned. Its per-auction cost is Θ(n·max(n,k))
//     in the number of advertisers n, which is why it does not scale.
//
//   - MaxWeightReduced — the paper's contribution (method RH,
//     Section III-E): first find, for each slot, the k advertisers
//     with the highest expected revenue in that slot (O(nk log k) via
//     bounded heaps), take the union (≤ k² advertisers), and run the
//     Hungarian method on the reduced graph (O(k⁵)-bounded). An
//     optimal matching of the full graph always survives in the
//     reduced graph.
//
//   - BruteForce — exhaustive enumeration over all partial slot
//     assignments; the correctness oracle for tests (tiny inputs only).
//
// Weights may be negative; a negative edge is never part of an optimal
// assignment because advertisers and slots may both stay unassigned.
package matching

// Assignment is a partial matching of advertisers to slots.
type Assignment struct {
	// SlotOf maps advertiser index -> slot index, or -1 if the
	// advertiser received no slot.
	SlotOf []int
	// AdvOf maps slot index -> advertiser index, or -1 if the slot was
	// left empty.
	AdvOf []int
	// Value is the total weight of the matched edges.
	Value float64
}

// newAssignmentFunc assembles an Assignment from a slot->advertiser
// map, computing the total value through the weight function.
func newAssignmentFunc(weight func(i, j int) float64, n int, advOf []int) Assignment {
	slotOf := make([]int, n)
	for i := range slotOf {
		slotOf[i] = -1
	}
	var total float64
	for j, i := range advOf {
		if i >= 0 {
			slotOf[i] = j
			total += weight(i, j)
		}
	}
	return Assignment{SlotOf: slotOf, AdvOf: advOf, Value: total}
}

// newAssignment is newAssignmentFunc over a dense matrix.
func newAssignment(w [][]float64, n int, advOf []int) Assignment {
	return newAssignmentFunc(func(i, j int) float64 { return w[i][j] }, n, advOf)
}

// MaxWeight computes a maximum-weight partial assignment of n
// advertisers (rows of w) to k slots (columns of w) in which every
// advertiser receives at most one slot and every slot at most one
// advertiser. This is the paper's method H: the Hungarian algorithm
// applied "in a straightforward way" to the full bipartite graph.
func MaxWeight(w [][]float64) Assignment {
	n := len(w)
	k := 0
	if n > 0 {
		k = len(w[0])
	}
	return MaxWeightFunc(n, k, func(i, j int) float64 { return w[i][j] })
}

// MaxWeightFunc is MaxWeight with the weight matrix given as a
// function, avoiding materialization.
func MaxWeightFunc(n, k int, weight func(i, j int) float64) Assignment {
	if n == 0 || k == 0 {
		advOf := make([]int, k)
		for j := range advOf {
			advOf[j] = -1
		}
		return newAssignmentFunc(weight, n, advOf)
	}
	advOf := solveJV(n, k, weight)
	dropNonPositiveFunc(weight, advOf)
	return newAssignmentFunc(weight, n, advOf)
}

// dropNonPositiveFunc removes matched edges whose true weight is not
// strictly positive: leaving the slot empty has equal or higher value
// and avoids giving away free exposure.
func dropNonPositiveFunc(weight func(i, j int) float64, advOf []int) {
	for j, i := range advOf {
		if i >= 0 && weight(i, j) <= 0 {
			advOf[j] = -1
		}
	}
}
