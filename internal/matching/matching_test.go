package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const valueTol = 1e-7

func randMatrix(rng *rand.Rand, n, k int, negatives bool) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, k)
		for j := range w[i] {
			w[i][j] = rng.Float64() * 10
			if negatives && rng.Intn(4) == 0 {
				w[i][j] = -w[i][j]
			}
		}
	}
	return w
}

// checkValid verifies matching feasibility and value bookkeeping.
func checkValid(t *testing.T, w [][]float64, a Assignment) {
	t.Helper()
	n := len(w)
	seen := make(map[int]bool)
	var total float64
	for j, i := range a.AdvOf {
		if i < 0 {
			continue
		}
		if i >= n {
			t.Fatalf("slot %d assigned to out-of-range advertiser %d", j, i)
		}
		if seen[i] {
			t.Fatalf("advertiser %d assigned two slots", i)
		}
		seen[i] = true
		if a.SlotOf[i] != j {
			t.Fatalf("SlotOf[%d]=%d inconsistent with AdvOf[%d]=%d", i, a.SlotOf[i], j, i)
		}
		total += w[i][j]
	}
	for i, j := range a.SlotOf {
		if j >= 0 && a.AdvOf[j] != i {
			t.Fatalf("AdvOf[%d]=%d inconsistent with SlotOf[%d]=%d", j, a.AdvOf[j], i, j)
		}
	}
	if math.Abs(total-a.Value) > valueTol {
		t.Fatalf("Value %g != recomputed %g", a.Value, total)
	}
}

func TestMaxWeightAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(7)
		k := 1 + rng.Intn(4)
		w := randMatrix(rng, n, k, true)
		got := MaxWeight(w)
		want := BruteForce(w)
		checkValid(t, w, got)
		checkValid(t, w, want)
		if math.Abs(got.Value-want.Value) > valueTol {
			t.Fatalf("n=%d k=%d: MaxWeight %g != Brute %g for %v", n, k, got.Value, want.Value, w)
		}
	}
}

func TestReducedAgainstFull(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		k := 1 + rng.Intn(6)
		w := randMatrix(rng, n, k, true)
		full := MaxWeight(w)
		red := MaxWeightReduced(w)
		checkValid(t, w, red)
		if math.Abs(full.Value-red.Value) > valueTol {
			t.Fatalf("n=%d k=%d: reduced %g != full %g", n, k, red.Value, full.Value)
		}
	}
}

func TestReducedParallelAgainstFull(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(300)
		k := 1 + rng.Intn(6)
		p := 1 + rng.Intn(6)
		w := randMatrix(rng, n, k, false)
		full := MaxWeight(w)
		red := MaxWeightReducedParallel(w, p)
		checkValid(t, w, red)
		if math.Abs(full.Value-red.Value) > valueTol {
			t.Fatalf("n=%d k=%d p=%d: parallel reduced %g != full %g", n, k, p, red.Value, full.Value)
		}
	}
}

func TestQuickPropertyReducedEqualsBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6)
		k := 1 + rng.Intn(3)
		w := randMatrix(rng, n, k, true)
		return math.Abs(MaxWeightReduced(w).Value-BruteForce(w).Value) <= valueTol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReducedGraphPaperExample reproduces Figures 9–11: revenue
// matrix for Nike/Adidas/Reebok/Sketchers over two slots. The top two
// for slot 1 are Nike and Adidas; for slot 2, Adidas and Reebok. The
// optimum assigns Nike to slot 1 and Adidas to slot 2 for revenue 16.
func TestReducedGraphPaperExample(t *testing.T) {
	w := [][]float64{
		{9, 5}, // Nike
		{8, 7}, // Adidas
		{7, 6}, // Reebok
		{7, 4}, // Sketchers
	}
	a := MaxWeightReduced(w)
	if a.Value != 16 {
		t.Fatalf("optimal revenue %g, want 16", a.Value)
	}
	if a.AdvOf[0] != 0 || a.AdvOf[1] != 1 {
		t.Fatalf("assignment %v, want Nike→slot1, Adidas→slot2", a.AdvOf)
	}
	// Sketchers (index 3) is pruned from the reduced graph: it is in
	// no slot's top-2. The optimum must be found without it either way.
	b := MaxWeight(w)
	if b.Value != a.Value {
		t.Fatalf("H and RH disagree on the paper example: %g vs %g", b.Value, a.Value)
	}
}

func TestAllNegativeWeightsLeaveEverythingUnassigned(t *testing.T) {
	w := [][]float64{{-1, -2}, {-3, -0.5}}
	for name, a := range map[string]Assignment{
		"H":     MaxWeight(w),
		"RH":    MaxWeightReduced(w),
		"Brute": BruteForce(w),
	} {
		if a.Value != 0 {
			t.Errorf("%s: value %g, want 0", name, a.Value)
		}
		for j, i := range a.AdvOf {
			if i != -1 {
				t.Errorf("%s: slot %d assigned %d, want empty", name, j, i)
			}
		}
	}
}

func TestMoreSlotsThanAdvertisers(t *testing.T) {
	w := [][]float64{{5, 1, 3}} // one advertiser, three slots
	a := MaxWeight(w)
	checkValid(t, w, a)
	if a.Value != 5 || a.SlotOf[0] != 0 {
		t.Fatalf("got %+v, want advertiser in slot 0 for 5", a)
	}
	r := MaxWeightReduced(w)
	if r.Value != 5 {
		t.Fatalf("reduced got %g, want 5", r.Value)
	}
}

func TestEmptyInputs(t *testing.T) {
	for name, a := range map[string]Assignment{
		"H":     MaxWeight(nil),
		"RH":    MaxWeightReduced(nil),
		"Brute": BruteForce(nil),
	} {
		if a.Value != 0 || len(a.AdvOf) != 0 {
			t.Errorf("%s on empty: %+v", name, a)
		}
	}
}

func TestZeroWeightNotAssigned(t *testing.T) {
	w := [][]float64{{0, 0}, {0, 4}}
	a := MaxWeight(w)
	if a.AdvOf[0] != -1 {
		t.Fatalf("zero-weight slot should stay empty, got %v", a.AdvOf)
	}
	if a.Value != 4 {
		t.Fatalf("value %g, want 4", a.Value)
	}
}

func TestSeparableMatchesHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		k := 1 + rng.Intn(6)
		adv := make([]float64, n)
		slot := make([]float64, k)
		for i := range adv {
			adv[i] = rng.Float64() * 20
		}
		for j := range slot {
			slot[j] = rng.Float64()
		}
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, k)
			for j := range w[i] {
				w[i][j] = adv[i] * slot[j]
			}
		}
		fast := Separable(adv, slot)
		checkValid(t, w, fast)
		slow := MaxWeight(w)
		if math.Abs(fast.Value-slow.Value) > 1e-6 {
			t.Fatalf("separable %g != hungarian %g (n=%d k=%d)", fast.Value, slow.Value, n, k)
		}
	}
}

// TestIsSeparablePaperExamples uses the matrices of Figures 7 and 8.
func TestIsSeparablePaperExamples(t *testing.T) {
	nonSep := [][]float64{{0.7, 0.4}, {0.6, 0.3}} // Figure 7
	if _, _, ok := IsSeparable(nonSep, 1e-9); ok {
		t.Error("Figure 7 matrix reported separable")
	}
	sep := [][]float64{{0.8, 0.4}, {0.6, 0.3}} // Figure 8
	adv, slot, ok := IsSeparable(sep, 1e-9)
	if !ok {
		t.Fatal("Figure 8 matrix reported non-separable")
	}
	for i := range sep {
		for j := range sep[i] {
			if math.Abs(adv[i]*slot[j]-sep[i][j]) > 1e-9 {
				t.Fatalf("bad factorization at (%d,%d)", i, j)
			}
		}
	}
}

func TestIsSeparableZeroMatrix(t *testing.T) {
	w := [][]float64{{0, 0}, {0, 0}}
	if _, _, ok := IsSeparable(w, 1e-9); !ok {
		t.Error("zero matrix is trivially separable")
	}
}

func TestEnumeratePartialCount(t *testing.T) {
	// Number of partial assignments of k slots among n advertisers:
	// sum over s of C(k,s)·P(n,s). For n=3, k=2: 1 + 2·3 + 1·6 = 13.
	count := 0
	EnumeratePartial(3, 2, func([]int) { count++ })
	if count != 13 {
		t.Fatalf("EnumeratePartial(3,2) visited %d assignments, want 13", count)
	}
}
