//go:build !race

package matching

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under instrumentation.
const raceEnabled = false
