package matching

import (
	"repro/internal/topk"
)

// MaxWeightReduced is the paper's scalable winner-determination
// algorithm (Section III-E, method RH). For each slot it selects the
// k advertisers with the highest weight for that slot using a bounded
// heap (O(nk log k) total), takes the union of the selected
// advertisers (at most k² of them), and solves the assignment problem
// on the reduced bipartite graph (O(k⁵)-bounded).
//
// Correctness: if an optimal matching assigned some slot to an
// advertiser outside that slot's top-k list, at least one top-k
// advertiser for the slot is unmatched (only k−1 other slots exist),
// so the slot can be reassigned to them without lowering the value.
// Hence the reduced graph always contains an optimal matching.
func MaxWeightReduced(w [][]float64) Assignment {
	n := len(w)
	k := 0
	if n > 0 {
		k = len(w[0])
	}
	if n == 0 || k == 0 {
		return newAssignment(w, n, make([]int, 0, k))
	}
	lists := make([][]topk.Item, k)
	for j := 0; j < k; j++ {
		lists[j] = topk.Select(n, k, func(i int) float64 { return w[i][j] })
	}
	return solveOnLists(w, n, k, lists)
}

// MaxWeightReducedParallel is MaxWeightReduced with the per-slot
// top-k scans executed by p workers arranged as the aggregation tree
// of Section III-E.
func MaxWeightReducedParallel(w [][]float64, p int) Assignment {
	n := len(w)
	k := 0
	if n > 0 {
		k = len(w[0])
	}
	if n == 0 || k == 0 {
		return newAssignment(w, n, make([]int, 0, k))
	}
	lists := topk.ParallelSelect(n, k, p, func(i, j int) float64 { return w[i][j] })
	return solveOnLists(w, n, k, lists)
}

// SolveOnCandidates runs the reduced Hungarian step given externally
// computed per-slot candidate lists (each sorted descending by score).
// This is the k⁵-bounded tail of RH; the threshold-algorithm pipeline
// of Section IV feeds it lists obtained without scanning all n
// advertisers. weight(i, j) must return the same scores the lists
// were ranked by; n is the total advertiser count (for SlotOf sizing).
func SolveOnCandidates(n int, weight func(i, j int) float64, lists [][]topk.Item) Assignment {
	advOf, value := AssignCandidates(weight, lists)
	slotOf := make([]int, n)
	for i := range slotOf {
		slotOf[i] = -1
	}
	for j, i := range advOf {
		if i >= 0 {
			slotOf[i] = j
		}
	}
	return Assignment{SlotOf: slotOf, AdvOf: advOf, Value: value}
}

func solveOnLists(w [][]float64, n, k int, lists [][]topk.Item) Assignment {
	return SolveOnCandidates(n, func(i, j int) float64 { return w[i][j] }, lists)
}

// AssignCandidates is SolveOnCandidates without the O(n) SlotOf
// reverse index — the per-auction hot path needs only slot →
// advertiser. It returns the slot assignment and its total weight.
func AssignCandidates(weight func(i, j int) float64, lists [][]topk.Item) (advOf []int, value float64) {
	advOf = make([]int, len(lists))
	value = NewWorkspace().AssignCandidatesInto(weight, lists, advOf)
	return advOf, value
}
