package matching

import (
	"sort"

	"repro/internal/topk"
)

// Separable solves winner determination under the separability
// assumption of Section III-C: the weight of advertiser i in slot j
// factors as adv[i]·slot[j] with slot factors non-negative. The
// optimal assignment pairs the j-th largest advertiser factor with
// the j-th largest slot factor, which takes O(n log k) time using a
// bounded heap over advertisers — the fast path used by existing
// sponsored-search platforms (and the reason they cannot support the
// paper's richer bids).
//
// Advertisers with non-positive factors are left unassigned, as are
// slots whose factor is zero when paired with them (a zero-value
// placement is dropped, matching MaxWeight's convention).
func Separable(adv, slot []float64) Assignment {
	n, k := len(adv), len(slot)
	// Top-k advertisers by factor: O(n log k).
	top := topk.Select(n, k, func(i int) float64 { return adv[i] })

	// Slots ranked by descending factor: O(k log k).
	order := make([]int, k)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool {
		if slot[order[a]] != slot[order[b]] {
			return slot[order[a]] > slot[order[b]]
		}
		return order[a] < order[b]
	})

	advOf := make([]int, k)
	for j := range advOf {
		advOf[j] = -1
	}
	for r := 0; r < len(top) && r < k; r++ {
		if top[r].Score <= 0 || slot[order[r]] <= 0 {
			break // all remaining pairings have non-positive value
		}
		advOf[order[r]] = top[r].ID
	}

	slotOf := make([]int, n)
	for i := range slotOf {
		slotOf[i] = -1
	}
	var total float64
	for j, i := range advOf {
		if i >= 0 {
			slotOf[i] = j
			total += adv[i] * slot[j]
		}
	}
	return Assignment{SlotOf: slotOf, AdvOf: advOf, Value: total}
}

// IsSeparable reports whether the weight matrix w (n×k) factors as
// w[i][j] = adv[i]·slot[j] within the given relative tolerance, and
// returns factors when it does. The factorization is normalized so
// that the first slot with any non-zero column has factor 1.
//
// Separability is exactly the condition under which the platforms'
// existing sort-based allocation is optimal; the paper's Figures 7–8
// give a non-separable and a separable example.
func IsSeparable(w [][]float64, tol float64) (adv, slot []float64, ok bool) {
	n := len(w)
	if n == 0 {
		return nil, nil, true
	}
	k := len(w[0])
	adv = make([]float64, n)
	slot = make([]float64, k)

	// Find a reference column with a non-zero entry.
	refJ, refI := -1, -1
	for j := 0; j < k && refJ < 0; j++ {
		for i := 0; i < n; i++ {
			if w[i][j] != 0 {
				refJ, refI = j, i
				break
			}
		}
	}
	if refJ < 0 { // all-zero matrix
		return adv, slot, true
	}
	slot[refJ] = 1
	for i := 0; i < n; i++ {
		adv[i] = w[i][refJ]
	}
	for j := 0; j < k; j++ {
		if j == refJ {
			continue
		}
		slot[j] = w[refI][j] / w[refI][refJ]
	}
	// Verify every entry.
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			want := adv[i] * slot[j]
			diff := w[i][j] - want
			if diff < 0 {
				diff = -diff
			}
			scale := w[i][j]
			if scale < 0 {
				scale = -scale
			}
			if scale < 1 {
				scale = 1
			}
			if diff > tol*scale {
				return nil, nil, false
			}
		}
	}
	return adv, slot, true
}
