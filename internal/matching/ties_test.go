package matching

import (
	"math"
	"math/rand"
	"testing"
)

// Integer-valued matrices produce heavy score ties, stressing the
// solvers' degenerate paths (the random-float suites almost never
// tie).
func TestTieHeavyMatricesAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(6)
		k := 1 + rng.Intn(4)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, k)
			for j := range w[i] {
				w[i][j] = float64(rng.Intn(3)) // {0,1,2}: ties everywhere
			}
		}
		want := BruteForce(w).Value
		if got := MaxWeight(w).Value; math.Abs(got-want) > 1e-9 {
			t.Fatalf("H on ties: %g != %g for %v", got, want, w)
		}
		if got := MaxWeightReduced(w).Value; math.Abs(got-want) > 1e-9 {
			t.Fatalf("RH on ties: %g != %g for %v", got, want, w)
		}
	}
}

// TestUniformMatrix: every advertiser identical — any k distinct
// advertisers is optimal; value must be k·c.
func TestUniformMatrix(t *testing.T) {
	const n, k, c = 10, 4, 2.5
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, k)
		for j := range w[i] {
			w[i][j] = c
		}
	}
	for name, a := range map[string]Assignment{
		"H":  MaxWeight(w),
		"RH": MaxWeightReduced(w),
	} {
		if math.Abs(a.Value-k*c) > 1e-9 {
			t.Fatalf("%s: value %g, want %g", name, a.Value, float64(k)*c)
		}
		seen := map[int]bool{}
		for _, i := range a.AdvOf {
			if i < 0 || seen[i] {
				t.Fatalf("%s: invalid assignment %v", name, a.AdvOf)
			}
			seen[i] = true
		}
	}
}

// TestSingleColumn reduces to "pick the max" and exercises the k=1
// boundary of the reduction (top-1 list, 1×1 reduced graph).
func TestSingleColumn(t *testing.T) {
	w := [][]float64{{3}, {9}, {1}, {9}, {4}}
	a := MaxWeightReduced(w)
	if a.Value != 9 {
		t.Fatalf("value %g", a.Value)
	}
	if a.AdvOf[0] != 1 {
		t.Fatalf("tie at 9 should resolve to the lower index, got %d", a.AdvOf[0])
	}
}

// TestHugeValueRange guards the JV potentials against magnitude
// imbalance (the heavyweight solver adds large forcing constants).
func TestHugeValueRange(t *testing.T) {
	w := [][]float64{
		{1e12, 1e-6},
		{1e12 - 1, 2e-6},
	}
	a := MaxWeight(w)
	want := 1e12 + 2e-6
	if math.Abs(a.Value-want) > 1e-3 {
		t.Fatalf("value %g, want %g", a.Value, want)
	}
}

// TestAssignmentStableUnderRowPermutationValue: the optimal value is
// invariant under advertiser reordering.
func TestAssignmentStableUnderRowPermutationValue(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	for trial := 0; trial < 50; trial++ {
		n, k := 8, 3
		w := randMatrix(rng, n, k, true)
		base := MaxWeight(w).Value
		perm := rng.Perm(n)
		pw := make([][]float64, n)
		for i, p := range perm {
			pw[i] = w[p]
		}
		if got := MaxWeight(pw).Value; math.Abs(got-base) > 1e-9 {
			t.Fatalf("permutation changed optimum: %g vs %g", got, base)
		}
	}
}
