package matching

import (
	"repro/internal/topk"
)

// Workspace holds every scratch buffer the reduced Hungarian solve
// needs — the Jonker–Volgenant potential/slack arrays, the
// candidate-union marks, and per-slot top-k lists — so that a serving
// worker can run winner determination auction after auction without
// touching the allocator. A Workspace grows to the largest problem it
// has seen and then stays allocation-free; it is not safe for
// concurrent use (each worker owns one).
type Workspace struct {
	// Jonker–Volgenant scratch, sized to rows nr and columns
	// m = nc + nr (one dummy column per row) plus the sentinel.
	u, v, minv []float64
	p, way     []int
	used       []bool
	colOf      []int

	// Candidate-union scratch: mark[i] == stamp iff advertiser i is
	// already in cands for the current solve. The stamp avoids an O(n)
	// clear per auction.
	mark  []int
	stamp int
	cands []int

	// MaxWeightReduced conveniences: a bounded heap and per-slot lists
	// reused across calls.
	heap  *topk.Heap
	heapK int
	lists [][]topk.Item
	advOf []int
}

// NewWorkspace returns an empty workspace; buffers are grown on first
// use.
func NewWorkspace() *Workspace { return &Workspace{} }

// growFloats, growInts, growBools resize scratch slices, reusing the
// backing array whenever it is large enough.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// assignRows is the workspace-backed body of the package-level
// assignRows (see jv.go for the algorithm commentary). The returned
// slice is owned by the workspace and valid until the next call.
func (ws *Workspace) assignRows(nr, nc int, weight func(r, c int) float64) []int {
	m := nc + nr // columns: real ones, then one dummy per row
	cost := func(r, c int) float64 {
		if c >= nc {
			return 0
		}
		w := weight(r, c)
		if w <= 0 {
			return 0
		}
		return -w
	}

	const inf = 1e308
	ws.u = growFloats(ws.u, nr)
	ws.v = growFloats(ws.v, m+1)
	ws.minv = growFloats(ws.minv, m+1)
	ws.p = growInts(ws.p, m+1)
	ws.way = growInts(ws.way, m+1)
	ws.used = growBools(ws.used, m+1)
	u, v, p, way, minv, used := ws.u, ws.v, ws.p, ws.way, ws.minv, ws.used
	for r := 0; r < nr; r++ {
		u[r] = 0
	}
	for c := 0; c <= m; c++ {
		v[c] = 0
		p[c] = -1
	}

	for r := 0; r < nr; r++ {
		p[m] = r
		c0 := m
		for c := 0; c <= m; c++ {
			minv[c] = inf
			used[c] = false
		}
		for {
			used[c0] = true
			r0 := p[c0]
			delta := inf
			c1 := -1
			for c := 0; c < m; c++ {
				if used[c] {
					continue
				}
				cur := cost(r0, c) - u[r0] - v[c]
				if cur < minv[c] {
					minv[c] = cur
					way[c] = c0
				}
				// Prefer free columns on ties; see jv.go.
				if minv[c] < delta || (minv[c] == delta && c1 >= 0 && p[c] < 0 && p[c1] >= 0) {
					delta = minv[c]
					c1 = c
				}
			}
			for c := 0; c <= m; c++ {
				if used[c] {
					u[p[c]] += delta
					v[c] -= delta
				} else {
					minv[c] -= delta
				}
			}
			c0 = c1
			if p[c0] < 0 {
				break
			}
		}
		for c0 != m {
			c1 := way[c0]
			p[c0] = p[c1]
			c0 = c1
		}
	}

	ws.colOf = growInts(ws.colOf, nr)
	colOf := ws.colOf
	for r := range colOf {
		colOf[r] = -1
	}
	for c := 0; c < nc; c++ {
		if p[c] >= 0 {
			colOf[p[c]] = c
		}
	}
	return colOf
}

// AssignCandidatesInto is AssignCandidates running entirely in the
// workspace: the union of the candidate lists, the reduced
// Jonker–Volgenant solve, and the non-positive-edge drop reuse ws
// buffers, and the resulting slot → advertiser map is written into
// advOf (which must have len(lists) entries). In steady state the call
// performs zero heap allocations — the property BenchmarkMarketSteady
// state asserts. Returns the total weight of the matching.
func (ws *Workspace) AssignCandidatesInto(weight func(i, j int) float64, lists [][]topk.Item, advOf []int) (value float64) {
	k := len(lists)
	if len(advOf) != k {
		panic("matching: advOf length must equal the slot count")
	}
	ws.stamp++
	ws.cands = ws.cands[:0]
	for _, list := range lists {
		for _, it := range list {
			if it.ID >= len(ws.mark) {
				grown := growInts(nil, it.ID+1)
				copy(grown, ws.mark)
				ws.mark = grown
			}
			if ws.mark[it.ID] != ws.stamp {
				ws.mark[it.ID] = ws.stamp
				ws.cands = append(ws.cands, it.ID)
			}
		}
	}
	cands := ws.cands
	// Rows = slots, columns = candidates: the reduced orientation.
	advOfReduced := ws.assignRows(k, len(cands), func(j, ri int) float64 {
		return weight(cands[ri], j)
	})
	for j := 0; j < k; j++ {
		if ri := advOfReduced[j]; ri >= 0 {
			advOf[j] = cands[ri]
		} else {
			advOf[j] = -1
		}
	}
	dropNonPositiveFunc(weight, advOf)
	for j, i := range advOf {
		if i >= 0 {
			value += weight(i, j)
		}
	}
	return value
}

// SelectCandidates fills per-slot top-depth candidate lists for n
// advertisers into workspace-owned storage, reusing the bounded heap
// and the per-slot backing arrays. The returned slice (and the lists
// inside it) are valid until the next SelectCandidates or
// MaxWeightReduced call on ws.
func (ws *Workspace) SelectCandidates(n, k, depth int, weight func(i, j int) float64) [][]topk.Item {
	if ws.heap == nil || ws.heapK != depth {
		ws.heap = topk.NewHeap(depth)
		ws.heapK = depth
	}
	if cap(ws.lists) < k {
		ws.lists = make([][]topk.Item, k)
	}
	ws.lists = ws.lists[:k]
	for j := 0; j < k; j++ {
		jj := j
		ws.lists[j] = topk.SelectInto(ws.heap, ws.lists[j][:0], n,
			func(i int) float64 { return weight(i, jj) })
	}
	return ws.lists
}

// MaxWeightInto is MaxWeightFunc (the full-graph method-H solve,
// rows = advertisers) running entirely in the workspace: the
// Jonker–Volgenant scratch is reused and the slot → advertiser map is
// written into advOf, which must have k entries. Matched edges whose
// weight is not strictly positive are dropped, exactly as MaxWeight
// does. The returned value is the total weight of the kept edges,
// summed in slot order — bit-identical to MaxWeightFunc's
// Assignment.Value. In steady state the call performs zero heap
// allocations; it is the reuse point for callers that solve the same
// full graph repeatedly, such as the VCG counterfactuals and the
// heavyweight pattern enumeration.
func (ws *Workspace) MaxWeightInto(n, k int, weight func(i, j int) float64, advOf []int) (value float64) {
	if len(advOf) != k {
		panic("matching: advOf length must equal the slot count")
	}
	for j := range advOf {
		advOf[j] = -1
	}
	if n == 0 || k == 0 {
		return 0
	}
	slotOf := ws.assignRows(n, k, weight)
	for i, j := range slotOf {
		if j >= 0 {
			advOf[j] = i
		}
	}
	dropNonPositiveFunc(weight, advOf)
	for j, i := range advOf {
		if i >= 0 {
			value += weight(i, j)
		}
	}
	return value
}

// MaxWeightReduced is the package-level MaxWeightReduced running on
// the workspace's scratch buffers. Only the returned Assignment's own
// slices are freshly allocated (callers may retain them); all
// intermediate state is reused.
func (ws *Workspace) MaxWeightReduced(w [][]float64) Assignment {
	n := len(w)
	k := 0
	if n > 0 {
		k = len(w[0])
	}
	if n == 0 || k == 0 {
		return newAssignment(w, n, make([]int, 0, k))
	}
	weight := func(i, j int) float64 { return w[i][j] }
	lists := ws.SelectCandidates(n, k, k, weight)
	ws.advOf = growInts(ws.advOf, k)
	value := ws.AssignCandidatesInto(weight, lists, ws.advOf)
	advOf := make([]int, k)
	copy(advOf, ws.advOf)
	slotOf := make([]int, n)
	for i := range slotOf {
		slotOf[i] = -1
	}
	for j, i := range advOf {
		if i >= 0 {
			slotOf[i] = j
		}
	}
	return Assignment{SlotOf: slotOf, AdvOf: advOf, Value: value}
}
