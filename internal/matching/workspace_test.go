package matching

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/racetest"
	"repro/internal/topk"
)

// TestWorkspaceMatchesOneShot drives one long-lived Workspace over a
// stream of random instances of varying shape and demands bit-identical
// results to the one-shot MaxWeightReduced (which itself is validated
// against brute force in matching_test.go). Shape changes mid-stream
// exercise the buffer-growth paths.
func TestWorkspaceMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ws := NewWorkspace()
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(8)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, k)
			for j := range w[i] {
				w[i][j] = float64(rng.Intn(20)) - 2 // ties and negatives
			}
		}
		got := ws.MaxWeightReduced(w)
		want := MaxWeightReduced(w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d): workspace %+v != one-shot %+v", trial, n, k, got, want)
		}
	}
}

// TestWorkspaceAssignCandidatesInto checks the in-place variant against
// AssignCandidates on externally supplied candidate lists, including
// lists that only cover part of the advertiser population.
func TestWorkspaceAssignCandidatesInto(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	ws := NewWorkspace()
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(50)
		k := 1 + rng.Intn(6)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, k)
			for j := range w[i] {
				w[i][j] = rng.Float64() * 30
			}
		}
		weight := func(i, j int) float64 { return w[i][j] }
		lists := make([][]topk.Item, k)
		for j := 0; j < k; j++ {
			jj := j
			lists[j] = topk.Select(n, k+1, func(i int) float64 { return w[i][jj] })
		}
		wantAdv, wantVal := AssignCandidates(weight, lists)
		gotAdv := make([]int, k)
		gotVal := ws.AssignCandidatesInto(weight, lists, gotAdv)
		if !reflect.DeepEqual(gotAdv, wantAdv) || gotVal != wantVal {
			t.Fatalf("trial %d: got (%v, %g), want (%v, %g)", trial, gotAdv, gotVal, wantAdv, wantVal)
		}
	}
}

// TestWorkspaceSteadyStateAllocs: after one warmup call, repeated
// solves of same-shaped problems must not allocate. This is the
// micro-level guarantee behind the engine's allocation-free RH path.
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	const n, k = 500, 15
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, k)
		for j := range w[i] {
			w[i][j] = float64((i*131 + j*37) % 997)
		}
	}
	weight := func(i, j int) float64 { return w[i][j] }
	ws := NewWorkspace()
	advOf := make([]int, k)
	lists := ws.SelectCandidates(n, k, k+1, weight)
	ws.AssignCandidatesInto(weight, lists, advOf)
	allocs := testing.AllocsPerRun(50, func() {
		lists := ws.SelectCandidates(n, k, k+1, weight)
		ws.AssignCandidatesInto(weight, lists, advOf)
	})
	if allocs != 0 {
		t.Fatalf("steady-state reduced solve allocates %.1f objects/op, want 0", allocs)
	}
}
