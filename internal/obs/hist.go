package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
)

// Histogram bucket scheme: HDR-style log-scale over non-negative
// int64 values (nanoseconds on every serving path), with 2^subBits
// sub-buckets per power-of-two octave.
//
//   - Values below subCount (32) land in their own exact bucket.
//   - A value v >= 32 with floor(log2 v) = subBits+e lands in bucket
//     e*subCount + (v >> e): the octave is addressed by its top
//     subBits+1 mantissa bits, so every bucket spans at most
//     upper/lower = 1 + 1/subCount of its range.
//
// The quantile error bound follows directly: a reported quantile is
// the upper bound of its bucket, at most 1/subCount = 3.125% above
// any value the bucket holds. The largest int64 maps to bucket 1887,
// so the whole histogram is numBuckets (1888) atomic words — 15 KiB,
// allocated once at registration.
const (
	subBits    = 5
	subCount   = 1 << subBits // 32 sub-buckets per octave
	numBuckets = (63-subBits)*subCount + subCount

	// NumBuckets is the bucket count of every Histogram — exported so
	// the wire layer can bound-check transported snapshots.
	NumBuckets = numBuckets
)

// bucketOf maps a value to its bucket index. Negative values clamp
// to bucket 0 (latencies are non-negative; a clamped outlier is
// better than a panic on a clock step).
func bucketOf(v int64) int {
	if v < subCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 - subBits
	return e*subCount + int(v>>uint(e))
}

// bucketUpper returns the largest value mapping to bucket idx — the
// value a quantile read reports for it.
func bucketUpper(idx int) int64 {
	if idx < 2*subCount {
		return int64(idx)
	}
	e := uint(idx/subCount - 1)
	m := int64(idx%subCount + subCount)
	return (m+1)<<e - 1
}

// Histogram is a fixed-bucket log-scale histogram: Record is one
// atomic add on the value's bucket plus an atomic add on the running
// sum (and a rare CAS when a new maximum appears) — wait-free in the
// fast path, allocation-free always, safe for any number of
// concurrent writers. Snapshots are mergeable by elementwise
// addition.
type Histogram struct {
	name, help string
	buckets    [numBuckets]atomic.Int64
	count      atomic.Int64
	sum        atomic.Int64
	max        atomic.Int64
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations recorded so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the exact largest observation recorded so far (0 when
// empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Snapshot allocates and fills a snapshot (control path).
func (h *Histogram) Snapshot() *HistSnapshot {
	s := new(HistSnapshot)
	h.SnapshotInto(s)
	return s
}

// SnapshotInto copies the current state into s, overwriting it. The
// copy is not atomic across buckets — concurrent Records may or may
// not be included — but every included observation is counted exactly
// once, and after writers quiesce a snapshot is exact.
func (h *Histogram) SnapshotInto(s *HistSnapshot) {
	// Count is read first and the buckets after: a concurrent Record
	// bumps the bucket before it would be missing from Count, so
	// Quantile's rank (computed from Count) never walks past the
	// buckets' total.
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
}

// HistSnapshot is one histogram observation set: per-bucket counts
// plus total count, sum, and exact max. Snapshots merge by Merge and
// travel the wire as (index, count) pairs of the nonzero buckets.
type HistSnapshot struct {
	Counts [numBuckets]int64
	Count  int64
	Sum    int64
	Max    int64
}

// Merge adds other into s elementwise (Max by maximum).
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) under the repo's
// shared percentile convention (rank int(q*(count-1)) of the sorted
// sample, the same index engine.SummarizeLatencies uses): the upper
// bound of the bucket holding that rank, clamped to the exact Max.
// Empty snapshots report 0.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	rank := int64(q * float64(s.Count-1))
	var cum int64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum > rank {
			u := bucketUpper(i)
			if u > s.Max {
				u = s.Max
			}
			return u
		}
	}
	return s.Max
}

// appendProm renders the snapshot in Prometheus histogram text format
// (nonzero buckets only; cumulative counts remain correct).
func (s *HistSnapshot) appendProm(b []byte, name, help string) []byte {
	b = head(b, name, help, "histogram")
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		b = append(b, name...)
		b = append(b, `_bucket{le="`...)
		b = strconv.AppendInt(b, bucketUpper(i), 10)
		b = append(b, `"} `...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, `_bucket{le="+Inf"} `...)
	b = strconv.AppendInt(b, cum, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_sum "...)
	b = strconv.AppendInt(b, s.Sum, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count "...)
	b = strconv.AppendInt(b, s.Count, 10)
	b = append(b, '\n')
	return b
}
