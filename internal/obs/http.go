package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler builds the telemetry mux over a registry and an optional
// trace ring:
//
//	/metrics        Prometheus text exposition (Registry.Render)
//	/trace          JSON dump of the trace ring (404 when no ring)
//	/debug/pprof/*  the standard runtime profiles
//
// The /metrics handler serializes scrapes on the registry lock and
// writes the registry's reused render buffer — concurrent scrapers
// are safe and steady-state scraping does not allocate in Render
// itself.
func Handler(reg *Registry, ring *TraceRing) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Render's buffer is reused across scrapes; Write copies it
		// into the response before the next scrape can re-enter.
		w.Write(reg.Render())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		if ring == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		ring.DumpJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is a running telemetry endpoint; construct with Serve,
// stop with Close.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves the telemetry
// Handler on it in a background goroutine.
func Serve(addr string, reg *Registry, ring *TraceRing) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(reg, ring),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (with the real port when addr
// was ":0").
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint. In-flight scrapes are abandoned — this is
// a diagnostic listener, not a serving path.
func (s *HTTPServer) Close() error { return s.srv.Close() }
