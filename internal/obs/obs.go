// Package obs is the zero-allocation telemetry subsystem threaded
// through every serving layer: a Registry of preregistered counters,
// float counters, and render-time gauges; HDR-style log-scale latency
// Histograms (hist.go); a fixed-capacity per-auction TraceRing with a
// deterministic 1-in-N sampler (trace.go); and an HTTP exposition
// endpoint serving Prometheus text format plus net/http/pprof
// (http.go).
//
// # Memory model
//
// Write-side operations are wait-free and allocation-free: a Counter
// or FloatCounter is a fixed slice of cache-line-padded per-lane
// cells, and Add is a single atomic operation on the caller's lane.
// Lanes mirror the engine's shard partition — each serving shard owns
// one lane, so the hot path never contends on a shared cache line.
// Integer cells tolerate multiple writers (atomic add); float cells
// are single-writer per lane (load + store of the accumulated bits,
// the same discipline as the budget ledger's lanes), which keeps the
// accumulation order per lane identical to a local float accumulator
// — the property that lets stream.Stats remain bit-for-bit equal to
// the pre-registry accounting.
//
// Reads aggregate: Value sums the lanes in index order at call time.
// A live read may straddle concurrent writes (per-lane values are
// each atomically consistent, the cross-lane sum is not a snapshot);
// after a drain, when the writers have quiesced, reads are exact —
// the same live/drained contract every accounting identity in this
// repository already obeys.
//
// Gauges are the opposite trade: a Gauge is just a closure evaluated
// at render time (queue depth, connection count, journal lag), so it
// costs the hot path nothing at all.
//
// # Exposition
//
// Render produces Prometheus text format into a buffer owned by the
// Registry, reused across scrapes: after the first render, scraping
// allocates nothing either. Histograms render only their nonzero
// buckets (cumulative counts stay correct — Prometheus does not
// require exhaustive le coverage).
package obs

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// cell is one lane of a Counter: a single atomic word padded to a
// cache line so adjacent lanes never false-share.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// fcell is one lane of a FloatCounter: float64 bits in an atomic
// word, padded like cell.
type fcell struct {
	bits atomic.Uint64
	_    [56]byte
}

// Counter is a monotonically increasing integer metric with one cell
// per lane. Add is one atomic add — wait-free, allocation-free, and
// safe for multiple writers per lane (though the serving layers give
// each shard its own lane to keep cache lines private).
type Counter struct {
	name, help string
	cells      []cell

	// laneLabel/laneNames/laneFamily, when set via RenderLanes, add a
	// per-lane series family to the render alongside the aggregate
	// (the family name is derived once at registration so rendering
	// stays allocation-free).
	laneLabel  string
	laneNames  []string
	laneFamily string
}

// Add increments lane by d.
func (c *Counter) Add(lane int, d int64) { c.cells[lane].v.Add(d) }

// Inc increments lane by one.
func (c *Counter) Inc(lane int) { c.cells[lane].v.Add(1) }

// Lane returns lane i's current value.
func (c *Counter) Lane(i int) int64 { return c.cells[i].v.Load() }

// Lanes returns the number of lanes.
func (c *Counter) Lanes() int { return len(c.cells) }

// Value sums the lanes in index order.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// RenderLanes makes the render emit a per-lane series family in
// addition to the aggregate: the family is named by rewriting the
// "_total" suffix to "_by_<label>_total" (distinct metric names — a
// single family must not mix labeled and unlabeled series). names,
// when non-nil, provides the label values (defaults to lane indices).
// Returns c for chaining at registration time.
func (c *Counter) RenderLanes(label string, names []string) *Counter {
	c.laneLabel = label
	c.laneNames = names
	c.laneFamily = laneName(c.name, label)
	return c
}

// FloatCounter is a monotonically increasing float64 metric with one
// cell per lane. Add is a load + store of the accumulated bits —
// wait-free and allocation-free, but each lane must have a single
// writer (the owning shard goroutine), exactly like a budget lane.
type FloatCounter struct {
	name, help string
	cells      []fcell
}

// Add accumulates x into lane. Single writer per lane.
func (f *FloatCounter) Add(lane int, x float64) {
	c := &f.cells[lane].bits
	c.Store(math.Float64bits(math.Float64frombits(c.Load()) + x))
}

// Lane returns lane i's current value.
func (f *FloatCounter) Lane(i int) float64 {
	return math.Float64frombits(f.cells[i].bits.Load())
}

// Value sums the lanes in index order — the same order a sequential
// accumulation over the shards would use, so a drained Value is
// bit-for-bit the sum the legacy per-shard accounting produced.
func (f *FloatCounter) Value() float64 {
	var t float64
	for i := range f.cells {
		t += math.Float64frombits(f.cells[i].bits.Load())
	}
	return t
}

// Gauge is a render-time metric: fn is evaluated only when the
// registry renders, so a gauge costs the serving path nothing.
type Gauge struct {
	name, help string
	fn         func() float64
}

// Registry holds the preregistered instruments of one serving stack
// and renders them in Prometheus text format. Registration happens at
// construction time (engine/stream/server wiring); the write-side
// instrument methods are lock-free, and only registration and Render
// take the registry lock.
type Registry struct {
	mu       sync.Mutex
	names    map[string]struct{}
	counters []*Counter
	floats   []*FloatCounter
	gauges   []*Gauge
	hists    []*Histogram

	buf     []byte       // reused render buffer
	scratch HistSnapshot // reused histogram snapshot for renders
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) register(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.names[name] = struct{}{}
}

// Counter registers a new integer counter with lanes cells.
func (r *Registry) Counter(name, help string, lanes int) *Counter {
	if lanes <= 0 {
		lanes = 1
	}
	c := &Counter{name: name, help: help, cells: make([]cell, lanes)}
	r.register(name)
	r.mu.Lock()
	r.counters = append(r.counters, c)
	r.mu.Unlock()
	return c
}

// FloatCounter registers a new float counter with lanes single-writer
// cells.
func (r *Registry) FloatCounter(name, help string, lanes int) *FloatCounter {
	if lanes <= 0 {
		lanes = 1
	}
	f := &FloatCounter{name: name, help: help, cells: make([]fcell, lanes)}
	r.register(name)
	r.mu.Lock()
	r.floats = append(r.floats, f)
	r.mu.Unlock()
	return f
}

// Gauge registers a render-time gauge backed by fn. fn runs on the
// scraping goroutine and must be safe to call concurrently with
// serving (atomic loads, channel lengths, published snapshots).
func (r *Registry) Gauge(name, help string, fn func() float64) {
	g := &Gauge{name: name, help: help, fn: fn}
	r.register(name)
	r.mu.Lock()
	r.gauges = append(r.gauges, g)
	r.mu.Unlock()
}

// Histogram registers a new log-scale latency histogram (hist.go).
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help}
	r.register(name)
	r.mu.Lock()
	r.hists = append(r.hists, h)
	r.mu.Unlock()
	return h
}

// Render produces the registry's Prometheus text exposition into an
// internal buffer reused across calls and returns it. The returned
// slice is valid until the next Render; copy it to retain. After the
// first call, rendering allocates nothing.
func (r *Registry) Render() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.buf[:0]
	for _, c := range r.counters {
		b = head(b, c.name, c.help, "counter")
		b = append(b, c.name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, c.Value(), 10)
		b = append(b, '\n')
		if c.laneLabel != "" {
			b = append(b, "# TYPE "...)
			b = append(b, c.laneFamily...)
			b = append(b, " counter\n"...)
			for i := range c.cells {
				b = append(b, c.laneFamily...)
				b = append(b, '{')
				b = append(b, c.laneLabel...)
				b = append(b, `="`...)
				if c.laneNames != nil {
					b = append(b, c.laneNames[i]...)
				} else {
					b = strconv.AppendInt(b, int64(i), 10)
				}
				b = append(b, `"} `...)
				b = strconv.AppendInt(b, c.Lane(i), 10)
				b = append(b, '\n')
			}
		}
	}
	for _, f := range r.floats {
		b = head(b, f.name, f.help, "counter")
		b = append(b, f.name...)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, f.Value(), 'g', -1, 64)
		b = append(b, '\n')
	}
	for _, g := range r.gauges {
		b = head(b, g.name, g.help, "gauge")
		b = append(b, g.name...)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, g.fn(), 'g', -1, 64)
		b = append(b, '\n')
	}
	for _, h := range r.hists {
		h.SnapshotInto(&r.scratch)
		b = r.scratch.appendProm(b, h.name, h.help)
	}
	r.buf = b
	return b
}

// head appends the # HELP / # TYPE preamble of one metric family.
func head(b []byte, name, help, typ string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	return b
}

// laneName rewrites a counter family name for its per-lane series:
// "x_total" becomes "x_by_<label>_total" ("x" without the suffix
// becomes "x_by_<label>").
func laneName(name, label string) string {
	const suffix = "_total"
	if n := len(name) - len(suffix); n > 0 && name[n:] == suffix {
		return name[:n] + "_by_" + label + suffix
	}
	return name + "_by_" + label
}
