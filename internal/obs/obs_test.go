package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestBucketMapping: every representative value maps into a bucket
// whose bounds contain it, indices are monotone in the value, and the
// bucket's relative width never exceeds the documented 1/subCount
// error bound.
func TestBucketMapping(t *testing.T) {
	vals := []int64{0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 1000, 12345,
		1 << 20, 1<<20 + 7, 1 << 40, 1<<62 + 12345, math.MaxInt64}
	prev := -1
	prevV := int64(-1)
	for _, v := range vals {
		idx := bucketOf(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		if v > prevV && idx < prev {
			t.Fatalf("bucket index not monotone: bucketOf(%d)=%d < bucketOf(%d)=%d", v, idx, prevV, prev)
		}
		upper := bucketUpper(idx)
		if v > upper {
			t.Fatalf("value %d above its bucket upper %d (idx %d)", v, upper, idx)
		}
		if idx > 0 {
			lower := bucketUpper(idx-1) + 1
			if v < lower {
				t.Fatalf("value %d below its bucket lower %d (idx %d)", v, lower, idx)
			}
			if v >= 2*subCount {
				if rel := float64(upper-v) / float64(v); rel > 1.0/subCount {
					t.Fatalf("value %d: bucket upper %d exceeds the %v error bound (rel %v)",
						v, upper, 1.0/subCount, rel)
				}
			}
		}
		prev, prevV = idx, v
	}
	// Negative values clamp rather than panic.
	if bucketOf(-5) != 0 {
		t.Fatalf("negative value did not clamp to bucket 0")
	}
	if got := bucketUpper(numBuckets - 1); got != math.MaxInt64 {
		t.Fatalf("last bucket upper = %d, want MaxInt64", got)
	}
}

// TestHistogramQuantiles: recorded samples reproduce their exact
// quantiles within the bucket error bound, Max is exact, and the
// convention matches engine.SummarizeLatencies' rank choice.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	samples := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 2e6) // latency-shaped, ~2ms mean
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	snap := h.Snapshot()
	if snap.Count != int64(len(samples)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(samples))
	}
	if snap.Max != samples[len(samples)-1] {
		t.Fatalf("max = %d, want %d", snap.Max, samples[len(samples)-1])
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := snap.Quantile(q)
		if got < exact {
			t.Fatalf("q%v = %d below the exact order statistic %d", q, got, exact)
		}
		if exact >= 2*subCount {
			if rel := float64(got-exact) / float64(exact); rel > 1.0/subCount {
				t.Fatalf("q%v = %d vs exact %d: relative error %v above bound %v",
					q, got, exact, rel, 1.0/subCount)
			}
		}
	}
	var empty HistSnapshot
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty snapshot quantile must be 0")
	}
}

// TestHistogramMerge: merging two snapshots equals the snapshot of
// recording both sample sets into one histogram.
func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		v := int64(rng.Intn(1 << 20))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	sa, sb, sboth := a.Snapshot(), b.Snapshot(), both.Snapshot()
	sa.Merge(sb)
	if *sa != *sboth {
		t.Fatal("merged snapshot differs from jointly recorded snapshot")
	}
}

// TestCounterLanes: per-lane adds aggregate exactly, and concurrent
// writers on distinct lanes lose nothing.
func TestCounterLanes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t", 4)
	f := r.FloatCounter("test_rev_total", "t", 4)
	var wg sync.WaitGroup
	for lane := 0; lane < 4; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc(lane)
				f.Add(lane, 0.5)
			}
		}(lane)
	}
	wg.Wait()
	if c.Value() != 40000 {
		t.Fatalf("counter = %d, want 40000", c.Value())
	}
	if f.Value() != 20000 {
		t.Fatalf("float counter = %v, want 20000", f.Value())
	}
	if c.Lane(2) != 10000 {
		t.Fatalf("lane 2 = %d, want 10000", c.Lane(2))
	}
}

// TestFloatCounterBitExact: a lane's accumulation is bit-for-bit the
// same as a local float64 accumulator fed the same sequence, and
// Value sums lanes in index order — the property the stream layer's
// Revenue view depends on.
func TestFloatCounterBitExact(t *testing.T) {
	r := NewRegistry()
	f := r.FloatCounter("rev_total", "t", 3)
	rng := rand.New(rand.NewSource(9))
	locals := make([]float64, 3)
	for i := 0; i < 5000; i++ {
		lane := rng.Intn(3)
		x := rng.Float64() * 3.7
		f.Add(lane, x)
		locals[lane] += x
	}
	var want float64
	for i, l := range locals {
		if got := f.Lane(i); got != l {
			t.Fatalf("lane %d = %v, want bitwise %v", i, got, l)
		}
		want += l
	}
	if got := f.Value(); got != want {
		t.Fatalf("Value = %v, want bitwise %v", got, want)
	}
}

// TestRegistryRender: the Prometheus text output carries every
// registered family with parseable values, per-lane series render
// under the rewritten family name, and a second render reuses the
// buffer without allocating.
func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ssa_things_total", "things processed", 2)
	c.RenderLanes("shard", nil)
	c.Add(0, 3)
	c.Add(1, 4)
	f := r.FloatCounter("ssa_money_total", "money", 1)
	f.Add(0, 1.5)
	r.Gauge("ssa_depth", "queue depth", func() float64 { return 42 })
	h := r.Histogram("ssa_lat_ns", "latency")
	h.Record(100)
	h.Record(200000)

	out := string(r.Render())
	for _, want := range []string{
		"# TYPE ssa_things_total counter\nssa_things_total 7\n",
		`ssa_things_by_shard_total{shard="0"} 3`,
		`ssa_things_by_shard_total{shard="1"} 4`,
		"ssa_money_total 1.5",
		"ssa_depth 42",
		"# TYPE ssa_lat_ns histogram",
		`ssa_lat_ns_bucket{le="+Inf"} 2`,
		"ssa_lat_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Cumulative le counts are monotone and end at the count.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "ssa_lat_ns_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %d after %d", v, last)
		}
		last = v
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Render() }); allocs != 0 {
		t.Fatalf("steady-state render allocates %.2f objects/op, want 0", allocs)
	}
}

// TestRegistryDuplicatePanics: registering the same name twice is a
// wiring bug and must fail loudly.
func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "x", 1)
}

// TestTraceRing: wraparound retains the newest capacity events in
// order, sequence numbers are global, and the JSON dump is valid and
// ordered.
func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(16)
	if ring.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", ring.Cap())
	}
	for i := 0; i < 40; i++ {
		ev := TraceEvent{Keyword: int32(i), Start: int64(1000 + i)}
		ring.Append(&ev)
	}
	if ring.Total() != 40 || ring.Len() != 16 {
		t.Fatalf("total %d len %d, want 40/16", ring.Total(), ring.Len())
	}
	var buf bytes.Buffer
	if err := ring.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 16 {
		t.Fatalf("dumped %d events, want 16", len(events))
	}
	for i, ev := range events {
		wantSeq := int64(24 + i)
		if ev["seq"] != wantSeq || ev["keyword"] != wantSeq {
			t.Fatalf("event %d: seq=%d keyword=%d, want %d (oldest-first order)",
				i, ev["seq"], ev["keyword"], wantSeq)
		}
	}
}

// TestTracerDeterministic: the 1-in-N sampler fires on exactly the
// arrivals ≡ 1 (mod N), independent of wall clock.
func TestTracerDeterministic(t *testing.T) {
	tr := NewTracer(NewTraceRing(16), 8)
	var sampled []int
	for i := 1; i <= 64; i++ {
		if tr.Sample() {
			sampled = append(sampled, i)
		}
	}
	if len(sampled) != 8 {
		t.Fatalf("sampled %d of 64 at 1-in-8, want 8", len(sampled))
	}
	for k, i := range sampled {
		if i != 8*k+1 {
			t.Fatalf("sample %d at arrival %d, want %d", k, i, 8*k+1)
		}
	}
	all := NewTracer(NewTraceRing(16), 1)
	for i := 0; i < 5; i++ {
		if !all.Sample() {
			t.Fatal("1-in-1 tracer must sample everything")
		}
	}
	var nilTracer *Tracer
	if nilTracer.Sample() {
		t.Fatal("nil tracer must never sample")
	}
}

// TestHTTPEndpoint: /metrics serves the exposition, /trace dumps the
// ring, and the pprof index responds — all on one mux.
func TestHTTPEndpoint(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ssa_hits_total", "hits", 1)
	c.Add(0, 9)
	ring := NewTraceRing(16)
	ring.Append(&TraceEvent{Keyword: 3})
	srv, err := Serve("127.0.0.1:0", r, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "ssa_hits_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/trace"); !strings.Contains(out, `"keyword":3`) {
		t.Fatalf("/trace missing event:\n%s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%s", out)
	}
}

// TestObsPrimitiveAllocs: the write-side primitives — counter add,
// float add, histogram record, sampler check, ring append — allocate
// nothing.
func TestObsPrimitiveAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "a", 2)
	f := r.FloatCounter("b_total", "b", 2)
	h := r.Histogram("c_ns", "c")
	tr := NewTracer(NewTraceRing(64), 4)
	var ev TraceEvent
	allocs := testing.AllocsPerRun(2000, func() {
		c.Inc(1)
		f.Add(0, 1.25)
		h.Record(123456)
		if tr.Sample() {
			ev.Start = 1
			tr.Ring.Append(&ev)
		}
	})
	if allocs != 0 {
		t.Fatalf("obs primitives allocate %.2f objects/op, want 0", allocs)
	}
}
