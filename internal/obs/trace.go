package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// TraceEvent is one sampled per-auction trace record: fixed size, no
// pointers, so the ring is a flat array and appending is a struct
// copy. Timestamps are time.Now().UnixNano() values taken only when
// the auction was sampled; fields that a given layer does not stamp
// stay zero (the stream layer stamps Enqueue/Dequeue/Done around the
// queue hand-off, the market stamps Start/Solve/Price/Charge around
// its pipeline phases).
type TraceEvent struct {
	Seq     int64 // ring sequence number (total events ever appended)
	Keyword int32 // keyword id of the auction
	Shard   int32 // serving shard (-1 when unknown at the stamp site)
	Auction int64 // the market's auction counter at the sample

	Enqueue int64 // unix nanos: query admitted to the shard queue
	Dequeue int64 // unix nanos: worker picked the query up
	Start   int64 // unix nanos: market pipeline entered
	Solve   int64 // unix nanos: winner determination finished
	Price   int64 // unix nanos: pricing finished
	Charge  int64 // unix nanos: user simulation + charges finished
	Done    int64 // unix nanos: outcome delivered (stream layer)
}

// TraceRing is a fixed-capacity power-of-two ring of trace events:
// the newest capacity events are retained, older ones overwritten.
// Append copies the event under a mutex (sampled events are rare — a
// deterministic 1-in-N of traffic — so the lock is uncontended and
// the hot path of unsampled auctions never touches it), which keeps
// DumpJSON race-free against concurrent appends.
type TraceRing struct {
	mu     sync.Mutex
	events []TraceEvent
	next   int64
}

// NewTraceRing builds a ring holding the newest capacity events;
// capacity is rounded up to a power of two (minimum 16).
func NewTraceRing(capacity int) *TraceRing {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &TraceRing{events: make([]TraceEvent, n)}
}

// Cap returns the ring capacity.
func (r *TraceRing) Cap() int { return len(r.events) }

// Len returns the number of events currently retained.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < int64(len(r.events)) {
		return int(r.next)
	}
	return len(r.events)
}

// Total returns the number of events ever appended.
func (r *TraceRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Append stores one event (assigning its Seq), overwriting the
// oldest when full. ev is copied; the caller keeps ownership.
// Allocation-free.
func (r *TraceRing) Append(ev *TraceEvent) {
	r.mu.Lock()
	seq := r.next
	r.next++
	slot := &r.events[seq&int64(len(r.events)-1)]
	*slot = *ev
	slot.Seq = seq
	r.mu.Unlock()
}

// DumpJSON writes the retained events, oldest first, as a JSON array
// to w. It is a diagnostic path (the /trace HTTP endpoint and
// auctionsim -trace-sample's exit dump); it buffers the encoded bytes
// and holds the ring lock only while copying the events out.
func (r *TraceRing) DumpJSON(w io.Writer) error {
	r.mu.Lock()
	n := r.next
	start := int64(0)
	if n > int64(len(r.events)) {
		start = n - int64(len(r.events))
	}
	out := make([]TraceEvent, 0, n-start)
	for s := start; s < n; s++ {
		out = append(out, r.events[s&int64(len(r.events)-1)])
	}
	r.mu.Unlock()

	buf := make([]byte, 0, 1+len(out)*128)
	buf = append(buf, '[')
	for i := range out {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendEventJSON(buf, &out[i])
	}
	buf = append(buf, ']', '\n')
	_, err := w.Write(buf)
	return err
}

// appendEventJSON encodes one event without reflection (every field
// is an integer; encoding/json's struct walk buys nothing here).
func appendEventJSON(b []byte, ev *TraceEvent) []byte {
	field := func(b []byte, name string, v int64, first bool) []byte {
		if !first {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, name...)
		b = append(b, `":`...)
		return strconv.AppendInt(b, v, 10)
	}
	b = append(b, '{')
	b = field(b, "seq", ev.Seq, true)
	b = field(b, "keyword", int64(ev.Keyword), false)
	b = field(b, "shard", int64(ev.Shard), false)
	b = field(b, "auction", ev.Auction, false)
	b = field(b, "enqueue_ns", ev.Enqueue, false)
	b = field(b, "dequeue_ns", ev.Dequeue, false)
	b = field(b, "start_ns", ev.Start, false)
	b = field(b, "solve_ns", ev.Solve, false)
	b = field(b, "price_ns", ev.Price, false)
	b = field(b, "charge_ns", ev.Charge, false)
	b = field(b, "done_ns", ev.Done, false)
	return append(b, '}')
}

// Tracer pairs a ring with a deterministic 1-in-N sampler: the i-th
// Sample call (counting from 1, across all callers, in atomic-counter
// order) reports true exactly when i ≡ 1 (mod N). Determinism is by
// arrival index, not wall clock — replaying the same traffic through
// the same interleaving samples the same auctions. N <= 1 samples
// everything.
type Tracer struct {
	Ring  *TraceRing
	every int64
	n     atomic.Int64
}

// NewTracer builds a tracer sampling 1 in every auctions into ring.
func NewTracer(ring *TraceRing, every int) *Tracer {
	if every < 1 {
		every = 1
	}
	return &Tracer{Ring: ring, every: int64(every)}
}

// Every returns the sampling period N.
func (t *Tracer) Every() int { return int(t.every) }

// Sample advances the arrival counter and reports whether this
// arrival is sampled. One atomic add; allocation-free.
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	return t.n.Add(1)%t.every == 1%t.every
}
