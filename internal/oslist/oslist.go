// Package oslist implements an order-statistic treap keyed on
// (score, id): a balanced ordered collection with O(log n) insert,
// delete, rank, and select, plus descending iteration.
//
// It is the substrate for the sorted bid lists that Section IV's
// threshold algorithm and logical-update lists require: per-slot
// lists sorted by click probability, and per-keyword group lists
// sorted by stored bid, under continual single-element repositioning
// as winners' parameters change.
package oslist

// Entry is an element of the list. Entries are ordered by descending
// Score, ties broken by ascending ID, so iteration order is the
// "sorted access" order of the threshold algorithm.
type Entry struct {
	ID    int
	Score float64
}

// less orders a before b when a should be visited first (higher
// score; equal scores: lower ID).
func less(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

type node struct {
	entry    Entry
	priority uint64
	size     int
	left     *node
	right    *node
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) recalc() { n.size = 1 + size(n.left) + size(n.right) }

// List is an order-statistic treap. The zero value is NOT ready to
// use; construct with New.
type List struct {
	root *node
	rng  uint64
	pool *Pool
}

// Pool recycles treap nodes across the lists that share it: Delete
// returns the removed node to the pool and Insert draws from it
// before touching the allocator. A family of lists whose total
// membership is fixed — such as the increment/decrement/constant
// groups of one keyword, among which every bidder occupies exactly
// one slot — therefore stops allocating entirely once each list has
// been populated. A Pool is not safe for concurrent use; share it
// only among lists owned by the same goroutine.
type Pool struct {
	free *node // freed nodes chained through their left pointers
}

// New returns an empty list. seed perturbs treap priorities; any
// value (including 0) is fine.
func New(seed uint64) *List {
	return &List{rng: seed*2862933555777941757 + 3037000493}
}

// NewWithPool is New with a shared node pool. pool must not be nil.
func NewWithPool(seed uint64, pool *Pool) *List {
	l := New(seed)
	l.pool = pool
	return l
}

// nextPriority is xorshift64*, deterministic per list.
func (l *List) nextPriority() uint64 {
	x := l.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	l.rng = x
	return x * 2685821657736338717
}

// Len returns the number of entries.
func (l *List) Len() int { return size(l.root) }

// split partitions t into (before, after) where before holds entries
// visited strictly before pivot in iteration order.
func split(t *node, pivot Entry) (*node, *node) {
	if t == nil {
		return nil, nil
	}
	if less(t.entry, pivot) {
		l, r := split(t.right, pivot)
		t.right = l
		t.recalc()
		return t, r
	}
	l, r := split(t.left, pivot)
	t.left = r
	t.recalc()
	return l, t
}

// merge joins a and b where every entry of a precedes every entry of b.
func merge(a, b *node) *node {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.priority > b.priority:
		a.right = merge(a.right, b)
		a.recalc()
		return a
	default:
		b.left = merge(a, b.left)
		b.recalc()
		return b
	}
}

// Insert adds e to the list. Inserting an entry equal to an existing
// one (same ID and score) creates a duplicate; callers maintaining a
// set must Delete first.
func (l *List) Insert(e Entry) {
	var nn *node
	if l.pool != nil && l.pool.free != nil {
		nn = l.pool.free
		l.pool.free = nn.left
		*nn = node{entry: e, priority: l.nextPriority(), size: 1}
	} else {
		nn = &node{entry: e, priority: l.nextPriority(), size: 1}
	}
	a, b := split(l.root, e)
	l.root = merge(merge(a, nn), b)
}

// deleteNode removes one node whose entry equals e from t, returning
// the new subtree root and the removed node (nil if absent). It is a
// plain function — not a self-referential closure — so Delete stays
// off the heap.
func deleteNode(t *node, e Entry) (root, removed *node) {
	if t == nil {
		return nil, nil
	}
	if t.entry == e {
		return merge(t.left, t.right), t
	}
	if less(e, t.entry) {
		t.left, removed = deleteNode(t.left, e)
	} else {
		t.right, removed = deleteNode(t.right, e)
	}
	t.recalc()
	return t, removed
}

// Delete removes one entry equal to e, reporting whether it was found.
func (l *List) Delete(e Entry) bool {
	root, removed := deleteNode(l.root, e)
	l.root = root
	if removed == nil {
		return false
	}
	if l.pool != nil {
		*removed = node{left: l.pool.free}
		l.pool.free = removed
	}
	return true
}

// At returns the entry at position i in iteration order (0 = highest
// score). It panics if i is out of range.
func (l *List) At(i int) Entry {
	if i < 0 || i >= l.Len() {
		panic("oslist: index out of range")
	}
	t := l.root
	for {
		ls := size(t.left)
		switch {
		case i < ls:
			t = t.left
		case i == ls:
			return t.entry
		default:
			i -= ls + 1
			t = t.right
		}
	}
}

// Rank returns the number of entries visited strictly before e in
// iteration order (i.e. e's position if present).
func (l *List) Rank(e Entry) int {
	rank := 0
	t := l.root
	for t != nil {
		if less(t.entry, e) {
			rank += size(t.left) + 1
			t = t.right
		} else {
			t = t.left
		}
	}
	return rank
}

// Ascend calls fn for each entry in iteration order (descending
// score) until fn returns false.
func (l *List) Ascend(fn func(Entry) bool) {
	var rec func(t *node) bool
	rec = func(t *node) bool {
		if t == nil {
			return true
		}
		if !rec(t.left) {
			return false
		}
		if !fn(t.entry) {
			return false
		}
		return rec(t.right)
	}
	rec(l.root)
}

// Cursor iterates the list in sorted order with O(1) amortized
// advance using an explicit in-order traversal stack — the sorted
// access primitive of the threshold algorithm. The list must not be
// mutated while a cursor is live.
type Cursor struct {
	stack []*node
}

// NewCursor returns a cursor positioned before the first entry.
func (l *List) NewCursor() *Cursor {
	c := &Cursor{stack: make([]*node, 0, 16)}
	c.pushLeft(l.root)
	return c
}

// Reset repositions the cursor before the first entry of l, reusing
// the traversal stack's storage. The zero Cursor is valid to Reset.
func (c *Cursor) Reset(l *List) {
	c.stack = c.stack[:0]
	c.pushLeft(l.root)
}

func (c *Cursor) pushLeft(n *node) {
	for n != nil {
		c.stack = append(c.stack, n)
		n = n.left
	}
}

// Next returns the next entry in iteration order, or false when
// exhausted.
func (c *Cursor) Next() (Entry, bool) {
	if len(c.stack) == 0 {
		return Entry{}, false
	}
	n := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	c.pushLeft(n.right)
	return n.entry, true
}
