package oslist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// reference is a plain sorted-slice model of the list.
type reference []Entry

func (r reference) sorted() reference {
	out := make(reference, len(r))
	copy(out, r)
	sort.Slice(out, func(a, b int) bool { return less(out[a], out[b]) })
	return out
}

func collect(l *List) []Entry {
	var out []Entry
	l.Ascend(func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

func equalEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertDeleteAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := New(1)
	var ref reference
	for op := 0; op < 5000; op++ {
		if len(ref) == 0 || rng.Intn(3) != 0 {
			e := Entry{ID: rng.Intn(100), Score: float64(rng.Intn(20))}
			// Keep the model a set: skip duplicates.
			dup := false
			for _, x := range ref {
				if x == e {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			l.Insert(e)
			ref = append(ref, e)
		} else {
			victim := ref[rng.Intn(len(ref))]
			if !l.Delete(victim) {
				t.Fatalf("Delete(%v) missed an existing entry", victim)
			}
			for i, x := range ref {
				if x == victim {
					ref = append(ref[:i], ref[i+1:]...)
					break
				}
			}
		}
		if l.Len() != len(ref) {
			t.Fatalf("Len %d != reference %d", l.Len(), len(ref))
		}
	}
	if !equalEntries(collect(l), ref.sorted()) {
		t.Fatalf("final order mismatch:\n%v\n%v", collect(l), ref.sorted())
	}
}

func TestAtAndRank(t *testing.T) {
	l := New(2)
	entries := []Entry{{1, 10}, {2, 30}, {3, 20}, {4, 30}}
	for _, e := range entries {
		l.Insert(e)
	}
	// Order: (2,30), (4,30), (3,20), (1,10) — desc score, asc ID ties.
	wantOrder := []Entry{{2, 30}, {4, 30}, {3, 20}, {1, 10}}
	for i, want := range wantOrder {
		if got := l.At(i); got != want {
			t.Fatalf("At(%d) = %v, want %v", i, got, want)
		}
		if r := l.Rank(want); r != i {
			t.Fatalf("Rank(%v) = %d, want %d", want, r, i)
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range should panic")
		}
	}()
	New(0).At(0)
}

func TestDeleteMissing(t *testing.T) {
	l := New(3)
	l.Insert(Entry{1, 5})
	if l.Delete(Entry{1, 6}) {
		t.Fatal("deleted an entry with wrong score")
	}
	if l.Delete(Entry{2, 5}) {
		t.Fatal("deleted an entry with wrong ID")
	}
	if !l.Delete(Entry{1, 5}) {
		t.Fatal("failed to delete existing entry")
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d after emptying", l.Len())
	}
}

func TestCursor(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Insert(Entry{ID: i, Score: float64(i)})
	}
	c := l.NewCursor()
	for want := 9; want >= 0; want-- {
		e, ok := c.Next()
		if !ok || e.ID != want {
			t.Fatalf("cursor yielded (%v,%v), want ID %d", e, ok, want)
		}
	}
	if _, ok := c.Next(); ok {
		t.Fatal("cursor should be exhausted")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	l := New(6)
	for i := 0; i < 10; i++ {
		l.Insert(Entry{ID: i, Score: float64(i)})
	}
	count := 0
	l.Ascend(func(Entry) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Ascend visited %d, want 3", count)
	}
}

func TestQuickPropertySortedOrder(t *testing.T) {
	f := func(scores []float64, seed uint64) bool {
		l := New(seed)
		for i, s := range scores {
			if s != s {
				s = 0
			}
			l.Insert(Entry{ID: i, Score: s})
		}
		prev := Entry{}
		first := true
		okOrder := true
		l.Ascend(func(e Entry) bool {
			if !first && less(e, prev) {
				okOrder = false
				return false
			}
			prev, first = e, false
			return true
		})
		return okOrder && l.Len() == len(scores)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceIsLogarithmicish(t *testing.T) {
	// Insert a worst-case (sorted) sequence and check depth stays
	// far below linear — treap priorities should randomize shape.
	l := New(99)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		l.Insert(Entry{ID: i, Score: float64(i)})
	}
	depth := maxDepth(l.root)
	if depth > 80 { // ~4·log2(n) is a generous bound
		t.Fatalf("treap depth %d too large for n=%d", depth, n)
	}
}

func maxDepth(n *node) int {
	if n == nil {
		return 0
	}
	l, r := maxDepth(n.left), maxDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
