package probmodel

// HeavyModel is the Section III-F extension: advertisers are
// classified as heavyweights (famous) or lightweights, and the
// probability that an advertiser gets a click may depend on his slot
// *and* on which slots hold heavyweight advertisers — a famous
// competitor directly above a small advertiser siphons clicks away.
//
// The paper bounds the representation at O(k·2^(k−1)) by conditioning
// only on the heavyweight pattern over slots, never on individual
// competitor identities. This struct realizes exactly that: Factor is
// indexed by slot and by the pattern bitmask restricted to the other
// slots.
type HeavyModel struct {
	// Base is the pattern-independent model.
	Base *Model
	// IsHeavy classifies each advertiser.
	IsHeavy []bool
	// Factor scales the base click probability: Factor[j][p] applies
	// to an ad in slot j when the heavyweight pattern over the other
	// slots, compressed to k−1 bits by deleting bit j, is p. A nil
	// Factor means no pattern dependence (factor 1 everywhere).
	Factor [][]float64
}

// CompressPattern deletes bit j from the k-bit heavyweight pattern,
// producing the (k−1)-bit index used by Factor.
func CompressPattern(pattern uint64, j int) uint64 {
	low := pattern & ((1 << uint(j)) - 1)
	high := pattern >> uint(j+1)
	return low | high<<uint(j)
}

// ClickProb returns the probability that advertiser i in slot j gets
// a click when the heavyweight pattern over slots is pattern (bit j'
// set ⇔ slot j' holds a heavyweight). The result is clamped to [0,1].
func (h *HeavyModel) ClickProb(i, j int, pattern uint64) float64 {
	p := h.Base.Click[i][j]
	if h.Factor != nil {
		p *= h.Factor[j][CompressPattern(pattern, j)]
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// PurchaseProb returns P(purchase | click) for advertiser i in slot j
// under the given heavyweight pattern. The base purchase probability
// carries no pattern dependence (the paper's formulation conditions
// purchases on clicks and slots).
func (h *HeavyModel) PurchaseProb(i, j int, pattern uint64) float64 {
	return h.Base.Purchase[i][j]
}

// ShadowFactors builds a Factor table for the natural "shadowing"
// model: every heavyweight placed strictly above slot j multiplies
// the click probability of slot j's occupant by (1−shadow). This is
// the scenario the paper uses to motivate Section III-F.
func ShadowFactors(k int, shadow float64) [][]float64 {
	factor := make([][]float64, k)
	for j := 0; j < k; j++ {
		rows := 1 << uint(k-1)
		factor[j] = make([]float64, rows)
		for p := 0; p < rows; p++ {
			// Expand p back to a full pattern missing bit j, count
			// heavyweights in slots above j (bits 0..j−1 of the
			// compressed pattern are exactly slots 0..j−1).
			f := 1.0
			for b := 0; b < j; b++ {
				if p&(1<<uint(b)) != 0 {
					f *= 1 - shadow
				}
			}
			factor[j][p] = f
		}
	}
	return factor
}
