// Package probmodel holds the outcome probability models of
// Section III-A: for each advertiser and each slot, the probability
// that the user clicks the advertiser's ad, and — conditional on a
// click — the probability that the user makes a purchase. The paper's
// first-order assumption is that both probabilities depend only on
// the slot assigned to that advertiser (every click/purchase event is
// 1-dependent), which is what makes winner determination a bipartite
// matching.
//
// The package also provides the separable special case of
// Section III-C (click probability = advertiser factor × slot factor)
// and the heavyweight-conditional model of Section III-F, where click
// probability additionally depends on which slots hold heavyweight
// advertisers.
package probmodel

import "fmt"

// Model gives per-advertiser, per-slot click and purchase
// probabilities. Advertisers and slots are 0-indexed here; slot 0 is
// the topmost slot (the paper's Slot_1).
type Model struct {
	// Click[i][j] is the probability that advertiser i's ad is clicked
	// when shown in slot j.
	Click [][]float64
	// Purchase[i][j] is the probability of a purchase given a click on
	// advertiser i's ad in slot j. Purchases require clicks, matching
	// the paper's assumption that purchase probability depends on
	// whether the advertiser got a click and on the slot.
	Purchase [][]float64
}

// Validate checks matrix shapes and that all entries are
// probabilities.
func (m *Model) Validate() error {
	n := len(m.Click)
	if len(m.Purchase) != n {
		return fmt.Errorf("probmodel: click rows %d != purchase rows %d", n, len(m.Purchase))
	}
	for i := 0; i < n; i++ {
		if len(m.Click[i]) != len(m.Purchase[i]) {
			return fmt.Errorf("probmodel: advertiser %d: click cols %d != purchase cols %d",
				i, len(m.Click[i]), len(m.Purchase[i]))
		}
		if i > 0 && len(m.Click[i]) != len(m.Click[0]) {
			return fmt.Errorf("probmodel: advertiser %d has %d slots, advertiser 0 has %d",
				i, len(m.Click[i]), len(m.Click[0]))
		}
		for j := range m.Click[i] {
			if !isProb(m.Click[i][j]) {
				return fmt.Errorf("probmodel: click[%d][%d] = %v out of [0,1]", i, j, m.Click[i][j])
			}
			if !isProb(m.Purchase[i][j]) {
				return fmt.Errorf("probmodel: purchase[%d][%d] = %v out of [0,1]", i, j, m.Purchase[i][j])
			}
		}
	}
	return nil
}

func isProb(p float64) bool { return p >= 0 && p <= 1 }

// Slots returns the number of slots covered by the model.
func (m *Model) Slots() int {
	if len(m.Click) == 0 {
		return 0
	}
	return len(m.Click[0])
}

// Advertisers returns the number of advertisers covered by the model.
func (m *Model) Advertisers() int { return len(m.Click) }

// New allocates a zeroed model for n advertisers and k slots.
func New(n, k int) *Model {
	m := &Model{
		Click:    make([][]float64, n),
		Purchase: make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		m.Click[i] = make([]float64, k)
		m.Purchase[i] = make([]float64, k)
	}
	return m
}

// Separable is the Section III-C special case: the click probability
// of advertiser i in slot j is Adv[i]·Slot[j]. Existing platforms
// assume this form; the paper's Figure 8 is an instance
// (Nike 4, Adidas 3; slot factors 0.2 and 0.1).
type Separable struct {
	Adv  []float64
	Slot []float64
}

// ClickProb returns Adv[i]·Slot[j].
func (s *Separable) ClickProb(i, j int) float64 { return s.Adv[i] * s.Slot[j] }

// Materialize expands the separable form into a full Model with the
// given purchase-given-click probability applied uniformly.
func (s *Separable) Materialize(purchaseGivenClick float64) (*Model, error) {
	m := New(len(s.Adv), len(s.Slot))
	for i := range s.Adv {
		for j := range s.Slot {
			p := s.ClickProb(i, j)
			if !isProb(p) {
				return nil, fmt.Errorf("probmodel: separable product %v·%v out of [0,1] at (%d,%d)",
					s.Adv[i], s.Slot[j], i, j)
			}
			m.Click[i][j] = p
			m.Purchase[i][j] = purchaseGivenClick
		}
	}
	return m, nil
}
