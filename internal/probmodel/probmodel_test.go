package probmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	m := New(2, 3)
	if err := m.Validate(); err != nil {
		t.Fatalf("fresh model invalid: %v", err)
	}
	m.Click[1][2] = 1.5
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range click prob accepted")
	}
	m.Click[1][2] = 0.5
	m.Purchase[0][0] = -0.1
	if err := m.Validate(); err == nil {
		t.Fatal("negative purchase prob accepted")
	}
	m.Purchase[0][0] = 0

	ragged := &Model{Click: [][]float64{{0.1}, {0.1, 0.2}}, Purchase: [][]float64{{0.1}, {0.1, 0.2}}}
	if err := ragged.Validate(); err == nil {
		t.Fatal("ragged model accepted")
	}
	short := &Model{Click: [][]float64{{0.1}}, Purchase: [][]float64{}}
	if err := short.Validate(); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	uneven := &Model{Click: [][]float64{{0.1, 0.2}}, Purchase: [][]float64{{0.1}}}
	if err := uneven.Validate(); err == nil {
		t.Fatal("column mismatch accepted")
	}
}

func TestDimensions(t *testing.T) {
	m := New(4, 7)
	if m.Advertisers() != 4 || m.Slots() != 7 {
		t.Fatalf("dims %d×%d", m.Advertisers(), m.Slots())
	}
	empty := New(0, 0)
	if empty.Slots() != 0 {
		t.Fatal("empty model slots")
	}
}

func TestSeparableMaterialize(t *testing.T) {
	// Figure 8: Nike 4, Adidas 3; slots 0.2 and 0.1.
	s := &Separable{Adv: []float64{4, 3}, Slot: []float64{0.2, 0.1}}
	m, err := s.Materialize(0.25)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0.8, 0.4}, {0.6, 0.3}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(m.Click[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("click[%d][%d] = %g, want %g", i, j, m.Click[i][j], want[i][j])
			}
			if m.Purchase[i][j] != 0.25 {
				t.Fatalf("purchase[%d][%d] = %g", i, j, m.Purchase[i][j])
			}
		}
	}
	bad := &Separable{Adv: []float64{4}, Slot: []float64{0.5}}
	if _, err := bad.Materialize(0); err == nil {
		t.Fatal("product 2.0 accepted as probability")
	}
}

func TestCompressPattern(t *testing.T) {
	// pattern 0b1011 (slots 0,1,3 heavy), delete bit 1 → 0b101.
	if got := CompressPattern(0b1011, 1); got != 0b101 {
		t.Fatalf("CompressPattern = %b", got)
	}
	if got := CompressPattern(0b1011, 0); got != 0b101 {
		t.Fatalf("CompressPattern bit0 = %b", got)
	}
	if got := CompressPattern(0b1011, 3); got != 0b011 {
		t.Fatalf("CompressPattern bit3 = %b", got)
	}
}

func TestCompressPatternProperty(t *testing.T) {
	// Deleting bit j never lets bit j's value leak into the result.
	f := func(p uint16, jj uint8) bool {
		j := int(jj % 8)
		with := uint64(p) | 1<<uint(j)
		without := uint64(p) &^ (1 << uint(j))
		return CompressPattern(with, j) == CompressPattern(without, j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeavyModelShadow(t *testing.T) {
	base := New(1, 3)
	base.Click[0][0], base.Click[0][1], base.Click[0][2] = 0.6, 0.6, 0.6
	h := &HeavyModel{Base: base, Factor: ShadowFactors(3, 0.5)}
	// No heavyweights anywhere: base probability.
	if p := h.ClickProb(0, 2, 0); math.Abs(p-0.6) > 1e-12 {
		t.Fatalf("no-heavy prob %g", p)
	}
	// One heavyweight above slot 2 (slot 0): halved.
	if p := h.ClickProb(0, 2, 0b001); math.Abs(p-0.3) > 1e-12 {
		t.Fatalf("one-heavy-above prob %g", p)
	}
	// Two heavyweights above slot 2: quartered.
	if p := h.ClickProb(0, 2, 0b011); math.Abs(p-0.15) > 1e-12 {
		t.Fatalf("two-heavy-above prob %g", p)
	}
	// Heavyweight *below* slot 0 does not shadow it.
	if p := h.ClickProb(0, 0, 0b110); math.Abs(p-0.6) > 1e-12 {
		t.Fatalf("below-heavy prob %g", p)
	}
	// A heavyweight in the advertiser's own slot never counts.
	if p := h.ClickProb(0, 1, 0b010); math.Abs(p-0.6) > 1e-12 {
		t.Fatalf("own-slot prob %g", p)
	}
}

func TestHeavyModelClamps(t *testing.T) {
	base := New(1, 1)
	base.Click[0][0] = 0.9
	h := &HeavyModel{Base: base, Factor: [][]float64{{3.0}}}
	if p := h.ClickProb(0, 0, 0); p != 1 {
		t.Fatalf("clamp high: %g", p)
	}
	h.Factor[0][0] = -1
	if p := h.ClickProb(0, 0, 0); p != 0 {
		t.Fatalf("clamp low: %g", p)
	}
}

func TestHeavyModelNilFactor(t *testing.T) {
	base := New(1, 2)
	base.Click[0][0] = 0.4
	h := &HeavyModel{Base: base}
	if p := h.ClickProb(0, 0, 0b11); p != 0.4 {
		t.Fatalf("nil factor should be identity, got %g", p)
	}
}

func TestShadowFactorsShape(t *testing.T) {
	f := ShadowFactors(4, 0.25)
	if len(f) != 4 {
		t.Fatalf("len %d", len(f))
	}
	for j := range f {
		if len(f[j]) != 1<<3 {
			t.Fatalf("slot %d has %d patterns, want 8", j, len(f[j]))
		}
	}
	// Slot 0 is never shadowed.
	for _, v := range f[0] {
		if v != 1 {
			t.Fatalf("slot 0 factor %g", v)
		}
	}
	// Slot 3 with all three above heavy: (0.75)^3.
	want := 0.75 * 0.75 * 0.75
	if math.Abs(f[3][0b111]-want) > 1e-12 {
		t.Fatalf("slot 3 full shadow %g, want %g", f[3][0b111], want)
	}
}

func TestPurchaseProbIgnoresPattern(t *testing.T) {
	base := New(1, 2)
	base.Purchase[0][1] = 0.3
	h := &HeavyModel{Base: base, Factor: ShadowFactors(2, 0.9)}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		if p := h.PurchaseProb(0, 1, uint64(rng.Intn(4))); p != 0.3 {
			t.Fatalf("purchase prob %g", p)
		}
	}
}
