//go:build !race

// Package racetest reports whether the race detector is active, so
// allocation-accounting tests can skip themselves under
// instrumentation instead of every package carrying its own build-tag
// constant pair.
package racetest

// Enabled is true when the binary was built with -race.
const Enabled = false
