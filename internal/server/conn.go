package server

import (
	"bufio"
	"net"
	"sync"

	"repro/internal/engine"
	"repro/internal/stream"
	"repro/internal/wire"
)

// ctlSlots is the number of reusable control-response buffers per
// connection: stats, acks, rejections, and errors flow through these
// so even the reject path allocates nothing in steady state. Control
// responses are rare; the read loop blocks briefly if all are in
// flight.
const ctlSlots = 8

// slot is one in-flight auction request: its echoed ID, its reused
// encode buffer, and the preallocated completion callback handed to
// stream.SubmitFunc. For KindBatch, one slot covers the whole batch
// and the batch fields aggregate under bmu.
type slot struct {
	c   *conn
	idx int32
	id  uint64
	buf []byte
	cb  func(*engine.Outcome) // single-auction completion
	bcb func(*engine.Outcome) // batch per-query completion

	bmu        chan struct{} // 1-buffered semaphore guarding the batch fields
	bTotal     int
	bDone      int
	bSubmitted bool
	batch      wire.BatchResult
}

func (sl *slot) lock()   { sl.bmu <- struct{}{} }
func (sl *slot) unlock() { <-sl.bmu }

// conn is one admitted connection: a read loop decoding and
// dispatching requests, a writer goroutine draining finished slots,
// and the fixed slot window between them.
type conn struct {
	srv *Server
	nc  net.Conn
	fr  *wire.FrameReader
	bw  *bufio.Writer

	req wire.Request // reused decode target (read loop only)

	slots []slot
	free  chan int32 // released slot indexes

	ctlBufs [][]byte   // reusable control-response buffers
	ctlFree chan int32 // released control indexes

	// out carries finished responses to the writer: slot index i ≥ 0,
	// or control buffer j encoded as -(j+1). Its capacity is
	// window+ctlSlots — one outstanding completion per slot or
	// control buffer — so no sender (shard goroutine or read loop)
	// can ever block on it.
	out chan int32

	// pending counts acquired-but-unwritten responses: the read loop
	// alone Adds (at slot/control acquisition, before any completion
	// can fire) and the writer alone Dones (after release), so run's
	// Wait is exact.
	pending    sync.WaitGroup
	writerDone chan struct{}
}

func newConn(s *Server, nc net.Conn) *conn {
	w := s.cfg.window()
	c := &conn{
		srv:        s,
		nc:         nc,
		fr:         wire.NewFrameReader(bufio.NewReaderSize(nc, 64<<10), c0maxFrame(s)),
		bw:         bufio.NewWriterSize(nc, 64<<10),
		slots:      make([]slot, w),
		free:       make(chan int32, w),
		ctlBufs:    make([][]byte, ctlSlots),
		ctlFree:    make(chan int32, ctlSlots),
		out:        make(chan int32, w+ctlSlots),
		writerDone: make(chan struct{}),
	}
	for i := range c.slots {
		sl := &c.slots[i]
		sl.c = c
		sl.idx = int32(i)
		sl.bmu = make(chan struct{}, 1)
		sl.cb = func(out *engine.Outcome) {
			sl.buf = wire.AppendOutcomeResp(sl.buf[:0], sl.id, out)
			c.srv.mServed.Inc(0)
			c.out <- sl.idx
		}
		sl.bcb = func(out *engine.Outcome) {
			c.srv.mServed.Inc(0)
			sl.lock()
			sl.batch.Served++
			sl.batch.Revenue += out.Revenue
			for _, cl := range out.Clicked {
				if cl {
					sl.batch.Clicks++
				}
			}
			sl.bDone++
			fin := sl.bSubmitted && sl.bDone == sl.bTotal
			sl.unlock()
			if fin {
				c.finishBatch(sl)
			}
		}
		c.free <- int32(i)
	}
	for j := 0; j < ctlSlots; j++ {
		c.ctlFree <- int32(j)
	}
	return c
}

func c0maxFrame(s *Server) int {
	if s.cfg.MaxFrame > 0 {
		return s.cfg.MaxFrame
	}
	return wire.MaxFrame
}

// run drives the connection to completion: the read loop returns on
// EOF, protocol error, or server teardown (CloseRead); then every
// acquired response is awaited, the writer drains and flushes, and
// the socket closes.
func (c *conn) run() {
	go c.writeLoop()
	c.readLoop()
	c.pending.Wait() // all in-flight completions written & released
	close(c.out)
	<-c.writerDone
	c.nc.Close()
}

func (c *conn) readLoop() {
	for {
		p, err := c.fr.Next()
		if err != nil {
			return // EOF, torn frame, bad CRC, or teardown
		}
		if err := c.req.Decode(p); err != nil {
			// The stream position is untrustworthy after a decode
			// error: best-effort error response, then terminate.
			c.ctlError(c.req.ID, err.Error())
			return
		}
		if !c.handle() {
			return
		}
	}
}

// handle dispatches one decoded request; false terminates the
// connection (protocol violations only — application errors answer
// KindError and keep the connection).
func (c *conn) handle() bool {
	req := &c.req
	c.srv.mFrames.Inc(frameKindLane(req.Kind))
	switch req.Kind {
	case wire.KindAuction:
		c.auction(req.ID, req.Q)
	case wire.KindText:
		c.text(req.ID, req.Text)
	case wire.KindBatch:
		c.batch(req.ID, req.Qs)
	case wire.KindStats:
		ci := c.ctlAcquire()
		var ws wire.ServerStats
		c.srv.fillStats(&ws)
		c.ctlBufs[ci] = wire.AppendStatsResp(c.ctlBufs[ci][:0], req.ID, &ws)
		c.out <- -(ci + 1)
	case wire.KindStatsV2:
		ci := c.ctlAcquire()
		var ws wire.ServerStatsV2
		c.srv.fillStatsV2(&ws)
		c.ctlBufs[ci] = wire.AppendStatsV2Resp(c.ctlBufs[ci][:0], req.ID, &ws)
		c.out <- -(ci + 1)
	case wire.KindReset:
		if err := c.srv.st.ResetBudgets(); err != nil {
			c.ctlError(req.ID, err.Error())
		} else {
			c.ctlOK(req.ID)
		}
	case wire.KindAdd:
		idx, err := c.srv.st.AddAdvertiser(c.req.Adv)
		if err != nil {
			c.ctlError(req.ID, err.Error())
			break
		}
		ci := c.ctlAcquire()
		c.ctlBufs[ci] = wire.AppendAddedResp(c.ctlBufs[ci][:0], req.ID, idx)
		c.out <- -(ci + 1)
	case wire.KindRemove:
		if err := c.srv.st.RemoveAdvertiser(req.Q); err != nil {
			c.ctlError(req.ID, err.Error())
		} else {
			c.ctlOK(req.ID)
		}
	case wire.KindDrain:
		// Blocks until every queued auction (this connection's
		// included — their completions flow through the writer, not
		// this goroutine) has been served, then answers with the
		// final stats.
		c.srv.beginDrain()
		ci := c.ctlAcquire()
		var ws wire.ServerStats
		c.srv.fillStats(&ws)
		c.ctlBufs[ci] = wire.AppendStatsResp(c.ctlBufs[ci][:0], req.ID, &ws)
		c.out <- -(ci + 1)
	default:
		c.ctlError(req.ID, errUnknownKind.Error())
		return false
	}
	return true
}

// acquire takes a response slot, honoring the overload policy: Block
// waits (TCP backpressure), Shed returns -1 immediately on a full
// window.
func (c *conn) acquire() int32 {
	if c.srv.shed {
		select {
		case si := <-c.free:
			c.pending.Add(1)
			return si
		default:
			return -1
		}
	}
	si := <-c.free
	c.pending.Add(1)
	return si
}

func (c *conn) ctlAcquire() int32 {
	ci := <-c.ctlFree
	c.pending.Add(1)
	return ci
}

func (c *conn) ctlOK(id uint64) {
	ci := c.ctlAcquire()
	c.ctlBufs[ci] = wire.AppendOKResp(c.ctlBufs[ci][:0], id)
	c.out <- -(ci + 1)
}

func (c *conn) ctlError(id uint64, msg string) {
	ci := c.ctlAcquire()
	c.ctlBufs[ci] = wire.AppendErrorResp(c.ctlBufs[ci][:0], id, msg)
	c.out <- -(ci + 1)
}

func (c *conn) ctlRejected(id uint64, reason wire.RejectReason) {
	ci := c.ctlAcquire()
	c.ctlBufs[ci] = wire.AppendRejectedResp(c.ctlBufs[ci][:0], id, reason)
	c.out <- -(ci + 1)
}

// auction serves one KindAuction: count Submitted, take a window
// slot, hand the query to the stream layer with the slot's callback.
func (c *conn) auction(id uint64, q int) {
	s := c.srv
	if q < 0 || q >= s.keywords {
		c.ctlError(id, "keyword out of range")
		return
	}
	s.mSubmitted.Inc(0)
	if s.draining.Load() {
		s.mRejected.Inc(0)
		c.ctlRejected(id, wire.ReasonDraining)
		return
	}
	si := c.acquire()
	if si < 0 {
		s.mRejected.Inc(0)
		c.ctlRejected(id, wire.ReasonWindow)
		return
	}
	sl := &c.slots[si]
	sl.id = id
	switch s.st.SubmitFunc(q, sl.cb) {
	case stream.SubmitQueued:
		// sl.cb answers from the shard goroutine.
	case stream.SubmitShed:
		s.mShed.Inc(0)
		sl.buf = wire.AppendShedResp(sl.buf[:0], id)
		c.out <- si
	case stream.SubmitClosed:
		s.mRejected.Inc(0)
		sl.buf = wire.AppendRejectedResp(sl.buf[:0], id, wire.ReasonClosed)
		c.out <- si
	}
}

// text serves one KindText: route first (an unrouted query is counted
// Unrouted, never Submitted — mirroring the stream layer), then the
// auction path.
func (c *conn) text(id uint64, query []byte) {
	s := c.srv
	if s.draining.Load() {
		// During drain every text request is rejected at the
		// connection layer, routed or not.
		s.mSubmitted.Inc(0)
		s.mRejected.Inc(0)
		c.ctlRejected(id, wire.ReasonDraining)
		return
	}
	si := c.acquire()
	if si < 0 {
		s.mSubmitted.Inc(0)
		s.mRejected.Inc(0)
		c.ctlRejected(id, wire.ReasonWindow)
		return
	}
	sl := &c.slots[si]
	sl.id = id
	res := s.st.SubmitTextFunc(string(query), sl.cb)
	if res != stream.SubmitUnrouted {
		s.mSubmitted.Inc(0)
	}
	switch res {
	case stream.SubmitQueued:
	case stream.SubmitShed:
		s.mShed.Inc(0)
		sl.buf = wire.AppendShedResp(sl.buf[:0], id)
		c.out <- si
	case stream.SubmitClosed:
		s.mRejected.Inc(0)
		sl.buf = wire.AppendRejectedResp(sl.buf[:0], id, wire.ReasonClosed)
		c.out <- si
	case stream.SubmitUnrouted:
		s.mUnrouted.Inc(0)
		sl.buf = wire.AppendUnroutedResp(sl.buf[:0], id)
		c.out <- si
	}
}

// batch serves one KindBatch under a single window slot: each query
// is counted and dispatched individually (so the accounting identity
// is per query, exactly as for single auctions), and the response
// aggregates once the last query resolves. Completion is detected
// with the submitted-all flag: the last resolver — a shard callback
// or this read loop — observes bDone == bTotal with bSubmitted set
// and encodes the response; exactly one finisher wins.
func (c *conn) batch(id uint64, qs []int) {
	s := c.srv
	for _, q := range qs {
		if q < 0 || q >= s.keywords {
			c.ctlError(id, "keyword out of range")
			return
		}
	}
	if s.draining.Load() {
		s.mSubmitted.Add(0, int64(len(qs)))
		s.mRejected.Add(0, int64(len(qs)))
		ci := c.ctlAcquire()
		br := wire.BatchResult{Requested: len(qs), Rejected: len(qs)}
		c.ctlBufs[ci] = wire.AppendBatchResp(c.ctlBufs[ci][:0], id, &br)
		c.out <- -(ci + 1)
		return
	}
	si := c.acquire()
	if si < 0 {
		s.mSubmitted.Add(0, int64(len(qs)))
		s.mRejected.Add(0, int64(len(qs)))
		ci := c.ctlAcquire()
		br := wire.BatchResult{Requested: len(qs), Rejected: len(qs)}
		c.ctlBufs[ci] = wire.AppendBatchResp(c.ctlBufs[ci][:0], id, &br)
		c.out <- -(ci + 1)
		return
	}
	sl := &c.slots[si]
	sl.id = id
	sl.lock()
	sl.bTotal = len(qs)
	sl.bDone = 0
	sl.bSubmitted = false
	sl.batch = wire.BatchResult{Requested: len(qs)}
	sl.unlock()
	s.mSubmitted.Add(0, int64(len(qs)))
	for _, q := range qs {
		switch s.st.SubmitFunc(q, sl.bcb) {
		case stream.SubmitQueued:
		case stream.SubmitShed:
			s.mShed.Inc(0)
			sl.lock()
			sl.batch.Shed++
			sl.bDone++
			sl.unlock()
		case stream.SubmitClosed:
			s.mRejected.Inc(0)
			sl.lock()
			sl.batch.Rejected++
			sl.bDone++
			sl.unlock()
		}
	}
	sl.lock()
	sl.bSubmitted = true
	fin := sl.bDone == sl.bTotal
	sl.unlock()
	if fin {
		c.finishBatch(sl)
	}
}

func (c *conn) finishBatch(sl *slot) {
	sl.buf = wire.AppendBatchResp(sl.buf[:0], sl.id, &sl.batch)
	sl.c.out <- sl.idx
}

// writeLoop drains finished responses, flushing whenever the
// completion channel momentarily empties (classic batched-writer
// shape). A write error goes sticky: remaining completions still
// drain and release their slots — accounting and teardown never
// depend on the client reading.
func (c *conn) writeLoop() {
	defer close(c.writerDone)
	var werr error
	for {
		var idx int32
		var ok bool
		select {
		case idx, ok = <-c.out:
		default:
			if werr == nil {
				werr = c.bw.Flush()
			}
			idx, ok = <-c.out
		}
		if !ok {
			if werr == nil {
				c.bw.Flush()
			}
			return
		}
		var buf []byte
		if idx >= 0 {
			buf = c.slots[idx].buf
		} else {
			buf = c.ctlBufs[-(idx + 1)]
		}
		if werr == nil {
			if _, err := c.bw.Write(buf); err != nil {
				werr = err
			}
		}
		if idx >= 0 {
			c.free <- idx
		} else {
			c.ctlFree <- -(idx + 1)
		}
		c.pending.Done()
	}
}
