package server_test

// Loopback equivalence: outcomes served through the full socket path
// — client encode, TCP, frame decode, connection window, shard queue,
// auction, outcome encode, TCP, client decode — are byte-identical to
// the in-process engine serving the same streams. These are the wire
// twins of the stream layer's TestStreamMatchesBatchEngine /
// TestStreamChurnEquivalence / TestStreamBudgetResetEquivalence,
// pinned under -race by the CI network-soak job. A single synchronous
// client preserves one total submission order, so the per-keyword
// outcome sequences are directly comparable.

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/wire"
	"repro/internal/workload"
)

// toEngine converts a received wire outcome into an engine.Outcome so
// the comparison reuses engine's bit-level Equal. Floats cross the
// wire as Float64bits, so equality here is exactly the in-process
// contract.
func toEngine(o *wire.Outcome) *engine.Outcome {
	return &engine.Outcome{
		Query:         o.Query,
		Revenue:       o.Revenue,
		AdvOf:         append([]int(nil), o.AdvOf...),
		PricePerClick: append([]float64(nil), o.PricePerClick...),
		Clicked:       append([]bool(nil), o.Clicked...),
	}
}

// serveWire submits queries synchronously through c and returns the
// per-keyword outcome sequences.
func serveWire(t *testing.T, c *client.Conn, keywords int, queries []int) [][]*engine.Outcome {
	t.Helper()
	got := make([][]*engine.Outcome, keywords)
	var out wire.Outcome
	for i, q := range queries {
		if err := c.AuctionInto(q, &out); err != nil {
			t.Fatalf("auction %d (kw %d): %v", i, q, err)
		}
		got[out.Query] = append(got[out.Query], toEngine(&out))
	}
	return got
}

func comparePerKeyword(t *testing.T, label string, got, want [][]*engine.Outcome) {
	t.Helper()
	for q := range want {
		if len(got[q]) != len(want[q]) {
			t.Fatalf("%s: kw %d served %d auctions, want %d", label, q, len(got[q]), len(want[q]))
		}
		for a := range want[q] {
			if !got[q][a].Equal(want[q][a]) {
				t.Fatalf("%s: kw %d auction %d: wire %+v != in-process %+v",
					label, q, a, got[q][a], want[q][a])
			}
		}
	}
}

// TestServerLoopbackEquivalence: without churn, the networked server
// is the batch engine — for both serving methods and both shard
// shapes, every keyword's outcome sequence crossing the socket is
// byte-identical to Engine.ServeOutcomes over the same stream.
func TestServerLoopbackEquivalence(t *testing.T) {
	for _, method := range []engine.Method{engine.MethodRH, engine.MethodRHTALU} {
		for _, shards := range []int{1, 3} {
			inst := workload.Generate(rand.New(rand.NewSource(91)), 70, 5, 7)
			queries := inst.Queries(rand.New(rand.NewSource(92)), 800)
			ecfg := engine.Config{Shards: shards, QueueDepth: 8, Method: method, ClickSeed: 19}

			ref := engine.New(inst, ecfg)
			refOuts, st := ref.ServeOutcomes(queries)
			if st.Auctions != len(queries) {
				t.Fatalf("reference served %d of %d", st.Auctions, len(queries))
			}
			ref.Close()
			want := make([][]*engine.Outcome, inst.Keywords)
			for _, o := range refOuts {
				want[o.Query] = append(want[o.Query], o)
			}

			s := listen(t, inst, server.Config{Stream: stream.Config{Engine: ecfg}})
			c := dial(t, s, client.Options{Timeout: 30 * time.Second})
			got := serveWire(t, c, inst.Keywords, queries)
			fin := s.Close()
			if fin.Served != int64(len(queries)) {
				t.Fatalf("served %d of %d", fin.Served, len(queries))
			}
			checkIdentity(t, s)
			comparePerKeyword(t, method.String(), got, want)
		}
	}
}

// TestServerLoopbackChurnEquivalence: scripted add/remove events
// arrive as wire control requests between query phases, and every
// post-churn outcome crossing the socket is byte-identical to a
// freshly built engine over the post-churn population — the stream
// layer's churn contract, end to end through TCP.
func TestServerLoopbackChurnEquivalence(t *testing.T) {
	inst0 := workload.Generate(rand.New(rand.NewSource(93)), 50, 5, 6)
	rng := rand.New(rand.NewSource(94))
	qrng := rand.New(rand.NewSource(95))

	newcomerA := workload.RandomAdvertiser(rng, inst0.Slots, inst0.Keywords)
	newcomerB := workload.RandomAdvertiser(rng, inst0.Slots, inst0.Keywords)
	inst1, err := inst0.WithAdvertiser(newcomerA)
	if err != nil {
		t.Fatal(err)
	}
	inst2, err := inst1.WithoutAdvertiser(7)
	if err != nil {
		t.Fatal(err)
	}
	inst3, err := inst2.WithAdvertiser(newcomerB)
	if err != nil {
		t.Fatal(err)
	}

	phases := []struct {
		inst    *workload.Instance
		queries []int
	}{
		{inst0, inst0.Queries(qrng, 300)},
		{inst1, inst1.Queries(qrng, 250)},
		{inst2, inst2.Queries(qrng, 250)},
		{inst3, inst3.Queries(qrng, 200)},
	}
	ecfg := engine.Config{Shards: 3, QueueDepth: 4, Method: engine.MethodRHTALU, ClickSeed: 23}

	want := make([][]*engine.Outcome, inst0.Keywords)
	for _, ph := range phases {
		fresh := engine.New(ph.inst, ecfg)
		outs, st := fresh.ServeOutcomes(ph.queries)
		if st.Auctions != len(ph.queries) {
			t.Fatalf("reference served %d of %d", st.Auctions, len(ph.queries))
		}
		fresh.Close()
		for _, o := range outs {
			want[o.Query] = append(want[o.Query], o)
		}
	}

	s := listen(t, inst0, server.Config{Stream: stream.Config{Engine: ecfg}})
	c := dial(t, s, client.Options{Timeout: 30 * time.Second})
	got := make([][]*engine.Outcome, inst0.Keywords)
	for i, ph := range phases {
		phaseOuts := serveWire(t, c, inst0.Keywords, ph.queries)
		for q := range phaseOuts {
			got[q] = append(got[q], phaseOuts[q]...)
		}
		switch i {
		case 0:
			idx, err := c.AddAdvertiser(&newcomerA)
			if err != nil || idx != inst0.N {
				t.Fatalf("AddAdvertiser over the wire: idx=%d err=%v", idx, err)
			}
		case 1:
			if err := c.RemoveAdvertiser(7); err != nil {
				t.Fatal(err)
			}
		case 2:
			if _, err := c.AddAdvertiser(&newcomerB); err != nil {
				t.Fatal(err)
			}
		}
	}
	fin := s.Close()
	if fin.Epoch != 3 {
		t.Fatalf("drained at epoch %d, want 3", fin.Epoch)
	}
	if fin.Advertisers != inst3.N {
		t.Fatalf("Advertisers = %d, want %d", fin.Advertisers, inst3.N)
	}
	checkIdentity(t, s)
	comparePerKeyword(t, "churn", got, want)
}

// TestServerLoopbackBudgetResetEquivalence: a budget reset submitted
// as a wire control request lands as the same in-band fence —
// everything before it runs against the exhausted ledger, everything
// after against the fresh one, byte-identical to a batch engine
// resetting between the phases. Single shard and the periodic flusher
// pinned far beyond the test (budget gating reads boundedly-stale
// cross-lane publishes, so byte-level equivalence needs one total
// order on both sides). The server journals throughout; recovery
// after the drain must land on the post-reset epoch with bitwise lane
// totals.
func TestServerLoopbackBudgetResetEquivalence(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(96)), 40, 4, 5)
	workload.AttachBudgets(rand.New(rand.NewSource(97)), inst, 50)
	phase1 := inst.Queries(rand.New(rand.NewSource(98)), 1500)
	phase2 := inst.Queries(rand.New(rand.NewSource(99)), 700)
	ecfg := engine.Config{Shards: 1, QueueDepth: 8, Method: engine.MethodRHTALU, ClickSeed: 21,
		Budget: budget.Config{Policy: budget.PolicyHard, RefreshEvery: 4}}

	// Batch reference: serve, reset, serve again.
	ref := engine.New(inst, ecfg)
	refOuts1, _ := ref.ServeOutcomes(phase1)
	if _, preExhausted, _ := ref.Ledger().Totals(); preExhausted == 0 {
		t.Fatal("phase 1 exhausted nobody — the reset fence would be a no-op")
	}
	if ref.ResetBudgets() == nil {
		t.Fatal("reference ResetBudgets returned nil with budgets on")
	}
	refOuts2, _ := ref.ServeOutcomes(phase2)
	ref.Close()
	want := make([][]*engine.Outcome, inst.Keywords)
	for _, o := range append(refOuts1, refOuts2...) {
		want[o.Query] = append(want[o.Query], o)
	}

	dir := t.TempDir()
	w, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jcfg := ecfg
	jcfg.Journal = w
	s := listen(t, inst, server.Config{Stream: stream.Config{
		Engine:      jcfg,
		BudgetFlush: time.Hour, // no mid-test flush fence: one total order
	}})
	c := dial(t, s, client.Options{Timeout: 30 * time.Second})
	got := serveWire(t, c, inst.Keywords, phase1)
	if err := c.ResetBudgets(); err != nil {
		t.Fatalf("ResetBudgets over the wire: %v", err)
	}
	phase2Got := serveWire(t, c, inst.Keywords, phase2)
	for q := range phase2Got {
		got[q] = append(got[q], phase2Got[q]...)
	}
	fin := s.Close()
	if fin.Served != int64(len(phase1)+len(phase2)) {
		t.Fatalf("served %d of %d", fin.Served, len(phase1)+len(phase2))
	}
	checkIdentity(t, s)
	comparePerKeyword(t, "budget-reset", got, want)

	// The drain flushed the journal; recovery is the post-reset epoch.
	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CorruptOffset != -1 {
		t.Fatalf("clean drain recovered corrupt at %d (%s)", rec.CorruptOffset, rec.CorruptReason)
	}
	if rec.State.Epoch != 2 {
		t.Fatalf("recovered epoch %d, want 2 (boot + reset)", rec.State.Epoch)
	}
	led := s.Stream().Engine().Ledger()
	for i := 0; i < inst.N; i++ {
		if math.Float64bits(rec.State.Spent(i)) != math.Float64bits(led.ExactSpent(i)) {
			t.Fatalf("advertiser %d: recovered %v != post-reset ledger %v",
				i, rec.State.Spent(i), led.ExactSpent(i))
		}
	}
}
