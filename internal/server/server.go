// Package server is the networked serving tier: it puts a
// stream.Server behind TCP, speaking the internal/wire frame
// protocol, so separate OS processes (internal/client, auctionsim
// -connect) can drive auctions through a real socket path.
//
// # Layering
//
// Admission control now has two layers. The stream layer keeps its
// bounded per-shard queues and Block/Shed policy untouched. Above it,
// each connection enforces a fixed in-flight request window backed by
// preallocated response slots: under Block the read loop simply stops
// reading when the window is full — backpressure propagates through
// TCP flow control to the client — while under Shed a request
// arriving at a full window is answered KindRejected(ReasonWindow)
// immediately. A server-wide connection cap rejects surplus dials at
// the handshake (HandshakeFull) before any frame is read.
//
// # Accounting identity
//
// The connection layer counts every auction-carrying request exactly
// once: Submitted on arrival, then exactly one of Served (outcome
// delivered), Shed (dropped by the stream policy), or Rejected
// (refused at the connection layer — window full, draining, or the
// stream already closed). After a drain completes,
//
//	Submitted == Served + Shed + Rejected
//
// holds exactly, extending the stream layer's Submitted == Served +
// Shed identity across the socket: every slot callback fires before
// stream.Server.Close returns, and every immediate disposition is
// counted on the read loop that decided it.
//
// # Zero allocations in steady state
//
// The per-auction path allocates nothing after warmup: frames decode
// into a per-connection reused Request; a query rides the shard queue
// as a value (stream.SubmitFunc); the outcome is encoded on the shard
// goroutine into the request's preallocated slot buffer; and the
// writer goroutine hands finished slots back through a fixed free
// list. Slot and control completions travel as int32 indexes on a
// channel whose capacity equals the maximum number of outstanding
// completions, so a shard goroutine can never block on a slow
// connection. BenchmarkServerSteadyState gates this end to end.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Config tunes the networked tier; Stream configures the serving
// layer underneath it verbatim.
type Config struct {
	// Stream is the wrapped stream.Server configuration (engine,
	// overload policy, budget flush, ...). Its Overload policy also
	// selects the connection layer's window behavior: Block applies
	// TCP backpressure at a full window, Shed rejects immediately.
	Stream stream.Config
	// MaxConns caps admitted connections; surplus dials are rejected
	// at the handshake with HandshakeFull (default 64).
	MaxConns int
	// Window is the per-connection in-flight request window: the
	// number of preallocated response slots, and so the pipelining
	// depth one connection can reach (default 32).
	Window int
	// MaxFrame bounds accepted frame payloads (default
	// wire.MaxFrame).
	MaxFrame int
	// HandshakeTimeout bounds the magic exchange on a new connection
	// (default 5s).
	HandshakeTimeout time.Duration
	// DrainWriteTimeout bounds, per connection, the final response
	// writes during Close, so a client that stops reading cannot
	// wedge server teardown (default 5s).
	DrainWriteTimeout time.Duration
}

func (c *Config) maxConns() int {
	if c.MaxConns > 0 {
		return c.MaxConns
	}
	return 64
}

func (c *Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 32
}

func (c *Config) handshakeTimeout() time.Duration {
	if c.HandshakeTimeout > 0 {
		return c.HandshakeTimeout
	}
	return 5 * time.Second
}

func (c *Config) drainWriteTimeout() time.Duration {
	if c.DrainWriteTimeout > 0 {
		return c.DrainWriteTimeout
	}
	return 5 * time.Second
}

// Server is a listening networked serving tier. Construct with
// Listen; it accepts and serves immediately.
type Server struct {
	cfg      Config
	st       *stream.Server
	ln       net.Listener
	keywords int
	shed     bool // stream overload policy is Shed

	// Connection-layer accounting, registered into the engine's
	// telemetry registry (see the package comment for the identity
	// these maintain; Counters() is a view over them). mHandshake has
	// one lane per reject reason, mFrames one lane per request kind.
	mSubmitted *obs.Counter
	mServed    *obs.Counter
	mShed      *obs.Counter
	mRejected  *obs.Counter
	mUnrouted  *obs.Counter
	mHandshake *obs.Counter
	mFrames    *obs.Counter

	// conns stays a plain atomic: the handshake's admission decision
	// reads its own Add result, which a lane counter does not expose.
	conns atomic.Int64

	draining atomic.Bool

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup

	mu     sync.Mutex
	active map[*conn]struct{}

	drainOnce sync.Once
	drainedCh chan struct{}
	final     *stream.Stats

	closeOnce sync.Once
}

// Listen builds the stream server over inst, binds addr (e.g.
// "127.0.0.1:0"), and starts accepting.
func Listen(addr string, inst *workload.Instance, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s := &Server{
		cfg:       cfg,
		st:        stream.NewServer(inst, cfg.Stream),
		ln:        ln,
		keywords:  inst.Keywords,
		shed:      cfg.Stream.Overload == stream.Shed,
		active:    make(map[*conn]struct{}),
		drainedCh: make(chan struct{}),
	}
	reg := s.Registry()
	s.mSubmitted = reg.Counter("ssa_server_submitted_total",
		"auction-carrying requests admitted past decode", 1)
	s.mServed = reg.Counter("ssa_server_served_total",
		"requests answered with a full outcome", 1)
	s.mShed = reg.Counter("ssa_server_shed_total",
		"requests dropped by the stream Shed policy", 1)
	s.mRejected = reg.Counter("ssa_server_rejected_total",
		"requests refused at the connection layer", 1)
	s.mUnrouted = reg.Counter("ssa_server_unrouted_total",
		"text requests that matched no catalog keyword", 1)
	s.mHandshake = reg.Counter("ssa_server_handshake_rejects_total",
		"connections refused at the handshake", 2).
		RenderLanes("reason", []string{"draining", "full"})
	s.mFrames = reg.Counter("ssa_server_frames_total",
		"request frames dispatched, by kind", len(frameKindNames)).
		RenderLanes("kind", frameKindNames)
	reg.Gauge("ssa_server_connections",
		"currently admitted connections", func() float64 {
			return float64(s.conns.Load())
		})
	reg.Gauge("ssa_server_window_inflight",
		"occupied in-flight window slots across connections", func() float64 {
			var n int
			s.mu.Lock()
			for c := range s.active {
				n += len(c.slots) - len(c.free)
			}
			s.mu.Unlock()
			return float64(n)
		})
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Registry returns the telemetry registry shared by every layer under
// this server (engine, stream, connection) — what auctionsim's
// -metrics-addr endpoint renders.
func (s *Server) Registry() *obs.Registry {
	return s.st.Engine().Metrics().Registry
}

// Handshake-reject counter lanes.
const (
	hsDraining = iota
	hsFull
)

// frameKindNames label the mFrames lanes; frameKindLane maps a request
// kind to its lane (the last lane collects unknown kinds).
var frameKindNames = []string{
	"auction", "text", "batch", "stats", "statsv2",
	"reset", "add", "remove", "drain", "other",
}

func frameKindLane(k wire.Kind) int {
	switch k {
	case wire.KindAuction:
		return 0
	case wire.KindText:
		return 1
	case wire.KindBatch:
		return 2
	case wire.KindStats:
		return 3
	case wire.KindStatsV2:
		return 4
	case wire.KindReset:
		return 5
	case wire.KindAdd:
		return 6
	case wire.KindRemove:
		return 7
	case wire.KindDrain:
		return 8
	default:
		return 9
	}
}

// Addr returns the bound listen address (with the real port when
// addr was ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stream exposes the wrapped stream.Server — for inspection
// (Engine(), Ledger()) after drain, or for in-process submission
// alongside networked traffic.
func (s *Server) Stream() *stream.Server { return s.st }

// Drained returns a channel closed when a graceful drain — wire
// KindDrain or Close — has completed: intake stopped and every
// queued auction served. auctionsim -serve blocks on this.
func (s *Server) Drained() <-chan struct{} { return s.drainedCh }

// Counters returns the connection layer's admission counters. The
// identity submitted == served + shed + rejected is exact once Close
// has returned; live reads may observe in-flight requests between
// counts.
func (s *Server) Counters() (submitted, served, shed, rejected, unrouted int64) {
	return s.mSubmitted.Value(), s.mServed.Value(), s.mShed.Value(),
		s.mRejected.Value(), s.mUnrouted.Value()
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed by drain/Close
		}
		s.connWG.Add(1)
		go s.handleConn(nc)
	}
}

// handleConn performs the handshake — admission happens here, before
// any frame is read — then runs the connection's serve loops.
func (s *Server) handleConn(nc net.Conn) {
	defer s.connWG.Done()
	hsDeadline := time.Now().Add(s.cfg.handshakeTimeout())
	nc.SetDeadline(hsDeadline)
	var magic [len(wire.Magic)]byte
	if _, err := io.ReadFull(nc, magic[:]); err != nil || string(magic[:]) != wire.Magic {
		nc.Close()
		return
	}
	status := wire.HandshakeOK
	n := s.conns.Add(1)
	switch {
	case s.draining.Load():
		status = wire.HandshakeDraining
	case n > int64(s.cfg.maxConns()):
		status = wire.HandshakeFull
	}
	var hs [len(wire.Magic) + 1]byte
	copy(hs[:], wire.Magic)
	hs[len(wire.Magic)] = status
	if _, err := nc.Write(hs[:]); err != nil {
		status = wire.HandshakeFull // any failure: do not admit
	}
	if status != wire.HandshakeOK {
		switch status {
		case wire.HandshakeDraining:
			s.mHandshake.Inc(hsDraining)
		case wire.HandshakeFull:
			s.mHandshake.Inc(hsFull)
		}
		s.conns.Add(-1)
		nc.Close()
		return
	}
	nc.SetDeadline(time.Time{})
	defer s.conns.Add(-1)

	c := newConn(s, nc)
	s.mu.Lock()
	s.active[c] = struct{}{}
	s.mu.Unlock()
	c.run()
	s.mu.Lock()
	delete(s.active, c)
	s.mu.Unlock()
}

// beginDrain executes the graceful drain exactly once: stop
// accepting, mark draining (new auction requests are counted
// Submitted+Rejected), then close the stream layer — which serves
// every queued auction and fires every slot callback before
// returning — and publish the final stream stats.
func (s *Server) beginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.ln.Close()
		s.final = s.st.Close()
		close(s.drainedCh)
	})
}

// Close gracefully drains and tears the server down: accept stops,
// the stream layer drains, every connection's pending responses are
// written (bounded by DrainWriteTimeout), and all connection
// goroutines join. Idempotent; returns the final stream stats.
func (s *Server) Close() *stream.Stats {
	s.closeOnce.Do(func() {
		s.beginDrain()
		// Unblock idle read loops; give writers a bounded window to
		// flush pending responses to slow clients.
		wdl := time.Now().Add(s.cfg.drainWriteTimeout())
		s.mu.Lock()
		for c := range s.active {
			c.nc.SetWriteDeadline(wdl)
			if tc, ok := c.nc.(*net.TCPConn); ok {
				tc.CloseRead()
			} else {
				c.nc.SetReadDeadline(time.Now())
			}
		}
		s.mu.Unlock()
		s.acceptWG.Wait()
		s.connWG.Wait()
	})
	return s.final
}

// streamStats snapshots the stream layer — live before a drain, the
// final drained snapshot after.
func (s *Server) streamStats() *stream.Stats {
	if s.draining.Load() {
		// After beginDrain, st.Close's snapshot is authoritative. The
		// drainedCh gate avoids racing the drain itself.
		select {
		case <-s.drainedCh:
			return s.final
		default:
		}
	}
	return s.st.Stats()
}

// fillStats assembles the wire stats snapshot (control path: the
// stream snapshot allocates).
func (s *Server) fillStats(ws *wire.ServerStats) {
	ws.Submitted, ws.Served, ws.Shed, ws.Rejected, ws.Unrouted = s.Counters()
	ws.Conns = s.conns.Load()
	st := s.streamStats()
	ws.StreamSubmitted = st.Submitted
	ws.StreamServed = st.Served
	ws.StreamShed = st.Shed
	ws.StreamPending = st.Pending
	ws.Revenue = st.Revenue
	ws.Clicks = int64(st.Clicks)
	ws.Filled = int64(st.Filled)
	ws.TotalSlots = int64(st.TotalSlots)
	ws.Epoch = int64(st.Epoch)
	ws.Advertisers = int64(st.Advertisers)
	ws.BudgetSpent = st.BudgetSpent
	ws.BudgetExhausted = int64(st.BudgetExhausted)
	ws.BudgetDenied = st.BudgetDenied
	ws.P50 = st.P50.Nanoseconds()
	ws.P95 = st.P95.Nanoseconds()
	ws.P99 = st.P99.Nanoseconds()
	ws.WindowThroughput = st.WindowThroughput
}

// fillStatsV2 assembles the extended wire snapshot: the v1 fields plus
// the serving latency histogram's totals and nonzero buckets (control
// path: the snapshot and bucket slice allocate).
func (s *Server) fillStatsV2(ws *wire.ServerStatsV2) {
	s.fillStats(&ws.ServerStats)
	var hs obs.HistSnapshot
	s.st.Engine().Metrics().Latency.SnapshotInto(&hs)
	ws.HistCount = hs.Count
	ws.HistSum = hs.Sum
	ws.HistMax = hs.Max
	ws.Buckets = ws.Buckets[:0]
	for i, c := range hs.Counts {
		if c != 0 {
			ws.Buckets = append(ws.Buckets, wire.HistBucket{Index: i, Count: c})
		}
	}
}

var errUnknownKind = errors.New("server: unknown request kind")
