package server_test

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/racetest"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/wire"
	"repro/internal/workload"
)

func listen(t *testing.T, inst *workload.Instance, cfg server.Config) *server.Server {
	t.Helper()
	s, err := server.Listen("127.0.0.1:0", inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dial(t *testing.T, s *server.Server, opts client.Options) *client.Conn {
	t.Helper()
	c, err := client.Dial(s.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// checkIdentity asserts the connection-layer accounting identity
// after a drain: Submitted == Served + Shed + Rejected exactly.
func checkIdentity(t *testing.T, s *server.Server) (submitted, served, shed, rejected int64) {
	t.Helper()
	submitted, served, shed, rejected, _ = s.Counters()
	if submitted != served+shed+rejected {
		t.Fatalf("identity violated: submitted=%d != served=%d + shed=%d + rejected=%d",
			submitted, served, shed, rejected)
	}
	return
}

// TestServerBasic: a round trip through the full socket path — the
// outcome arrives with the query echoed and the accounting identity
// holds after drain.
func TestServerBasic(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(1)), 60, 4, 8)
	s := listen(t, inst, server.Config{Stream: stream.Config{
		Engine: engine.Config{Shards: 2, QueueDepth: 32, Method: engine.MethodRH, ClickSeed: 7},
	}})
	c := dial(t, s, client.Options{Timeout: 10 * time.Second})

	var out wire.Outcome
	for i := 0; i < 200; i++ {
		q := i % inst.Keywords
		if err := c.AuctionInto(q, &out); err != nil {
			t.Fatalf("auction %d: %v", i, err)
		}
		if out.Query != q {
			t.Fatalf("auction %d: echoed query %d, want %d", i, out.Query, q)
		}
		if len(out.AdvOf) != inst.Slots || len(out.PricePerClick) != inst.Slots || len(out.Clicked) != inst.Slots {
			t.Fatalf("auction %d: slot arrays %d/%d/%d, want %d", i,
				len(out.AdvOf), len(out.PricePerClick), len(out.Clicked), inst.Slots)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 200 || st.Served != 200 || st.Conns != 1 {
		t.Fatalf("stats: %+v", st)
	}
	s.Close()
	sub, served, _, _ := checkIdentity(t, s)
	if sub != 200 || served != 200 {
		t.Fatalf("submitted=%d served=%d, want 200/200", sub, served)
	}
}

// TestServerTextBatchControl: text routing (routed and unrouted),
// batch aggregation, and churn + reset control requests over the
// wire.
func TestServerTextBatchControl(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(2)), 40, 3, 4)
	s := listen(t, inst, server.Config{Stream: stream.Config{
		Engine: engine.Config{
			Shards: 2, QueueDepth: 16, Method: engine.MethodRHTALU, ClickSeed: 3,
			KeywordNames: []string{"red shoes", "blue shoes", "green hats", "umbrellas"},
		},
	}})
	c := dial(t, s, client.Options{Timeout: 10 * time.Second})

	var out wire.Outcome
	if err := c.TextInto("cheap red shoes online", &out); err != nil {
		t.Fatalf("routed text: %v", err)
	}
	if out.Query != 0 {
		t.Fatalf("routed text hit keyword %d, want 0", out.Query)
	}
	if err := c.TextInto("quantum chromodynamics", &out); !errors.Is(err, client.ErrUnrouted) {
		t.Fatalf("unrouted text: %v, want ErrUnrouted", err)
	}

	qs := []int{0, 1, 2, 3, 0, 1}
	br, err := c.Batch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if br.Requested != len(qs) || br.Served != len(qs) || br.Shed != 0 || br.Rejected != 0 {
		t.Fatalf("batch result: %+v", br)
	}
	if br.Revenue <= 0 {
		t.Fatalf("batch revenue %v, want > 0", br.Revenue)
	}

	add := workload.Advertiser{
		Value:     append([]int(nil), inst.Value[0]...),
		ClickProb: append([]float64(nil), inst.ClickProb[0]...),
		Target:    1,
	}
	idx, err := c.AddAdvertiser(&add)
	if err != nil {
		t.Fatal(err)
	}
	if idx != inst.N { // churn appends at the end
		t.Fatalf("added at index %d, want %d", idx, inst.N)
	}
	if err := c.RemoveAdvertiser(idx); err != nil {
		t.Fatal(err)
	}
	// Budgets are off: the reset must surface the stream layer's
	// error as a typed server error, not kill the connection.
	if err := c.ResetBudgets(); err == nil {
		t.Fatal("ResetBudgets with budgets off succeeded")
	}
	if err := c.AuctionInto(0, &out); err != nil {
		t.Fatalf("connection unusable after application error: %v", err)
	}

	s.Close()
	sub, _, _, _ := checkIdentity(t, s)
	_, _, _, _, unrouted := s.Counters()
	if unrouted != 1 {
		t.Fatalf("unrouted=%d, want 1", unrouted)
	}
	if want := int64(1 + len(qs) + 1); sub != want { // text + batch + post-error auction
		t.Fatalf("submitted=%d, want %d", sub, want)
	}
}

// TestServerMaxConns: the connection cap rejects surplus dials at the
// handshake with HandshakeFull, and a slot frees when a connection
// closes.
func TestServerMaxConns(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(3)), 20, 3, 4)
	s := listen(t, inst, server.Config{
		MaxConns: 1,
		Stream:   stream.Config{Engine: engine.Config{Shards: 1, QueueDepth: 8, Method: engine.MethodRH}},
	})
	c1 := dial(t, s, client.Options{})
	if _, err := client.Dial(s.Addr(), client.Options{}); !errors.Is(err, client.ErrServerFull) {
		t.Fatalf("second dial: %v, want ErrServerFull", err)
	}
	c1.Close()
	// The slot frees asynchronously with connection teardown.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := client.Dial(s.Addr(), client.Options{})
		if err == nil {
			c2.Close()
			break
		}
		if !errors.Is(err, client.ErrServerFull) || time.Now().After(deadline) {
			t.Fatalf("redial after close: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerDrain: a wire drain returns final stats satisfying the
// identity, later dials are rejected with HandshakeDraining, and
// auctions on surviving connections are rejected with ReasonDraining.
func TestServerDrain(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(4)), 30, 3, 5)
	s := listen(t, inst, server.Config{Stream: stream.Config{
		Engine: engine.Config{Shards: 2, QueueDepth: 16, Method: engine.MethodRH, ClickSeed: 1},
	}})
	load := dial(t, s, client.Options{Timeout: 10 * time.Second})
	ctl := dial(t, s, client.Options{Timeout: 30 * time.Second})

	var out wire.Outcome
	for i := 0; i < 50; i++ {
		if err := load.AuctionInto(i%inst.Keywords, &out); err != nil {
			t.Fatal(err)
		}
	}
	final, err := ctl.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if final.Submitted != final.Served+final.Shed+final.Rejected {
		t.Fatalf("drain stats identity: %+v", final)
	}
	if final.Served != 50 {
		t.Fatalf("drain served=%d, want 50", final.Served)
	}
	// The drain closed the listener, so a new dial is refused at the
	// TCP layer; ErrDraining covers the window where a connection was
	// accepted before the listener closed.
	if _, err := client.Dial(s.Addr(), client.Options{}); err == nil {
		t.Fatal("post-drain dial succeeded")
	}
	err = load.AuctionInto(0, &out)
	if !errors.Is(err, client.ErrRejected) {
		t.Fatalf("post-drain auction: %v, want ErrRejected", err)
	}
	select {
	case <-s.Drained():
	default:
		t.Fatal("Drained channel not closed after wire drain")
	}
	s.Close()
	checkIdentity(t, s)
}

// TestServerProtocolErrors: garbage and corruption at the socket
// level terminate the connection without disturbing the server —
// wrong magic, a corrupted frame CRC, and an oversized declared
// length all end in a closed connection, and a healthy client still
// serves afterwards.
func TestServerProtocolErrors(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(5)), 20, 3, 4)
	s := listen(t, inst, server.Config{Stream: stream.Config{
		Engine: engine.Config{Shards: 1, QueueDepth: 8, Method: engine.MethodRH},
	}})

	expectClosed := func(t *testing.T, nc net.Conn) {
		t.Helper()
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 256)
		for {
			if _, err := nc.Read(buf); err != nil {
				if err == io.EOF {
					return
				}
				t.Fatalf("want EOF from server, got %v", err)
			}
		}
	}

	t.Run("bad magic", func(t *testing.T) {
		nc, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		nc.Write([]byte("NOTMAGIC"))
		expectClosed(t, nc)
	})
	t.Run("bad crc", func(t *testing.T) {
		nc, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		nc.Write([]byte(wire.Magic))
		hs := make([]byte, len(wire.Magic)+1)
		if _, err := io.ReadFull(nc, hs); err != nil {
			t.Fatal(err)
		}
		frame := wire.AppendAuctionReq(nil, 1, 0)
		frame[len(frame)-1] ^= 0xFF
		nc.Write(frame)
		expectClosed(t, nc)
	})
	t.Run("oversized frame", func(t *testing.T) {
		nc, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		nc.Write([]byte(wire.Magic))
		hs := make([]byte, len(wire.Magic)+1)
		if _, err := io.ReadFull(nc, hs); err != nil {
			t.Fatal(err)
		}
		nc.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
		expectClosed(t, nc)
	})

	c := dial(t, s, client.Options{Timeout: 5 * time.Second})
	var out wire.Outcome
	if err := c.AuctionInto(0, &out); err != nil {
		t.Fatalf("server unhealthy after protocol abuse: %v", err)
	}
}

// TestServerIdentityUnderShed: concurrent pipelined clients hammer a
// deliberately tiny server under the Shed policy — sheds and window
// rejections both occur — and after drain the identity is exact, and
// the client-side disposition counts agree with the server's
// counters exactly (nothing lost crossing the socket).
func TestServerIdentityUnderShed(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(6)), 40, 3, 6)
	s := listen(t, inst, server.Config{
		Window: 4,
		Stream: stream.Config{
			Overload: stream.Shed,
			Engine:   engine.Config{Shards: 2, QueueDepth: 4, Method: engine.MethodRH, ClickSeed: 2},
		},
	})
	const conns, workers, perWorker = 3, 4, 300
	var served, shed, rejected atomic.Int64
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		c := dial(t, s, client.Options{Window: 8, Timeout: 30 * time.Second})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				var out wire.Outcome
				for i := 0; i < perWorker; i++ {
					err := c.AuctionInto(rng.Intn(inst.Keywords), &out)
					switch {
					case err == nil:
						served.Add(1)
					case errors.Is(err, client.ErrShed):
						shed.Add(1)
					case errors.Is(err, client.ErrRejected):
						rejected.Add(1)
					default:
						t.Errorf("auction: %v", err)
						return
					}
				}
			}(int64(ci*workers + w))
		}
	}
	wg.Wait()
	s.Close()
	sub, srvServed, srvShed, srvRejected := checkIdentity(t, s)
	if sub != conns*workers*perWorker {
		t.Fatalf("submitted=%d, want %d", sub, conns*workers*perWorker)
	}
	if served.Load() != srvServed || shed.Load() != srvShed || rejected.Load() != srvRejected {
		t.Fatalf("client-side counts served=%d shed=%d rejected=%d disagree with server %d/%d/%d",
			served.Load(), shed.Load(), rejected.Load(), srvServed, srvShed, srvRejected)
	}
	// The stream layer's own identity must also hold beneath.
	st := s.Stream().Stats()
	if st.Submitted != st.Served+st.Shed {
		t.Fatalf("stream identity: %+v", st)
	}
}

// TestServerSteadyStateAllocs: the full loopback round trip — client
// encode, socket write, server decode, shard queue, auction, outcome
// encode on the shard goroutine, socket write back, client decode and
// copy-out — allocates nothing per auction once warm. This is the
// test-side twin of the BenchmarkServerSteadyState CI gate.
func TestServerSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	inst := workload.Generate(rand.New(rand.NewSource(7)), 100, 5, 8)
	s := listen(t, inst, server.Config{Stream: stream.Config{
		Engine: engine.Config{Shards: 2, QueueDepth: 64, Method: engine.MethodRH, ClickSeed: 5},
	}})
	c := dial(t, s, client.Options{})
	var out wire.Outcome
	for i := 0; i < 2048; i++ {
		if err := c.AuctionInto(i%inst.Keywords, &out); err != nil {
			t.Fatal(err)
		}
	}
	next := 0
	allocs := testing.AllocsPerRun(1500, func() {
		if err := c.AuctionInto(next%inst.Keywords, &out); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if allocs != 0 {
		t.Fatalf("steady-state networked auction allocates %.2f objects/op, want 0", allocs)
	}
}
