package sqlmini

import "repro/internal/table"

// Stmt is a statement node.
type Stmt interface{ stmt() }

// CreateTrigger registers Body to run after every insert into Table.
type CreateTrigger struct {
	Name  string
	Table string
	Body  []Stmt
}

// If is an IF / ELSEIF… / ELSE / ENDIF chain.
type If struct {
	Branches []CondBranch
	Else     []Stmt
}

// CondBranch is one guarded branch of an If.
type CondBranch struct {
	Cond Expr
	Body []Stmt
}

// Update is UPDATE Table SET … [WHERE …].
type Update struct {
	Table string
	Sets  []SetClause
	Where Expr // nil means every row
}

// SetClause is one "col = expr" assignment.
type SetClause struct {
	Col string
	Val Expr
}

// Insert is INSERT INTO Table VALUES (…).
type Insert struct {
	Table  string
	Values []Expr
}

// Delete is DELETE FROM Table [WHERE …].
type Delete struct {
	Table string
	Where Expr
}

// SetScalar is SET name = expr, assigning a scalar variable.
type SetScalar struct {
	Name string
	Val  Expr
}

func (*CreateTrigger) stmt() {}
func (*If) stmt()            {}
func (*Update) stmt()        {}
func (*Insert) stmt()        {}
func (*Delete) stmt()        {}
func (*SetScalar) stmt()     {}

// Expr is an expression node.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ V table.Value }

// ColRef references a column (optionally qualified by a table name or
// alias) or, failing column resolution, a scalar variable.
type ColRef struct {
	Qualifier string // "" when unqualified
	Name      string
	tok       tok
}

// Binary is a binary operation: + - * / = <> < <= > >= AND OR.
type Binary struct {
	Op   string
	L, R Expr
	tok  tok
}

// Unary is NOT x or -x.
type Unary struct {
	Op  string
	X   Expr
	tok tok
}

// SubQuery is a scalar aggregate subquery:
// ( SELECT AGG(arg) FROM Table [Alias] [WHERE cond] ).
type SubQuery struct {
	Agg   string // MAX, MIN, SUM, COUNT, AVG
	Arg   Expr   // nil for COUNT(*)
	Table string
	Alias string
	Where Expr // nil means every row
	tok   tok
}

func (*Lit) expr()      {}
func (*ColRef) expr()   {}
func (*Binary) expr()   {}
func (*Unary) expr()    {}
func (*SubQuery) expr() {}
