package sqlmini

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// Program is a compiled bidding program.
type Program struct {
	Source string
	Stmts  []Stmt
}

// Compile parses src into a Program.
func Compile(src string) (*Program, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{Source: src, Stmts: stmts}, nil
}

// Install executes the program's top-level statements against db.
// CREATE TRIGGER statements register their bodies on the named table;
// other statements execute immediately. A bidding program is
// installed once per advertiser; thereafter inserting into its Query
// table fires the trigger each auction (Section II-B's flow).
func (p *Program) Install(db *table.DB) error {
	return runStmts(db, nil, p.Stmts)
}

// scope is one level of name resolution: a row of a table visible
// under the table's name or an alias. parent scopes hold outer rows
// for correlated subqueries.
type scope struct {
	name   string // alias if given, else table name
	tbl    *table.Table
	row    table.Row
	parent *scope
}

func runStmts(db *table.DB, sc *scope, stmts []Stmt) error {
	for _, s := range stmts {
		if err := runStmt(db, sc, s); err != nil {
			return err
		}
	}
	return nil
}

func runStmt(db *table.DB, sc *scope, s Stmt) error {
	switch s := s.(type) {
	case *CreateTrigger:
		tbl, ok := db.Table(s.Table)
		if !ok {
			return fmt.Errorf("sqlmini: CREATE TRIGGER %s: no table %q", s.Name, s.Table)
		}
		body := s.Body
		tbl.OnInsert(func(inserted table.Row) error {
			// The inserted row is visible as NEW and under the table name.
			rowScope := &scope{name: "NEW", tbl: tbl, row: inserted, parent: sc}
			return runStmts(db, rowScope, body)
		})
		return nil

	case *If:
		for _, br := range s.Branches {
			v, err := evalExpr(db, sc, br.Cond)
			if err != nil {
				return err
			}
			if v.Truthy() {
				return runStmts(db, sc, br.Body)
			}
		}
		return runStmts(db, sc, s.Else)

	case *Update:
		return runUpdate(db, sc, s)

	case *Insert:
		tbl, ok := db.Table(s.Table)
		if !ok {
			return fmt.Errorf("sqlmini: INSERT: no table %q", s.Table)
		}
		row := make(table.Row, len(s.Values))
		for i, e := range s.Values {
			v, err := evalExpr(db, sc, e)
			if err != nil {
				return err
			}
			row[i] = v
		}
		return tbl.Insert(row)

	case *Delete:
		tbl, ok := db.Table(s.Table)
		if !ok {
			return fmt.Errorf("sqlmini: DELETE: no table %q", s.Table)
		}
		kept := tbl.Rows[:0]
		for _, row := range tbl.Rows {
			match := true
			if s.Where != nil {
				v, err := evalExpr(db, &scope{name: tbl.Name, tbl: tbl, row: row, parent: sc}, s.Where)
				if err != nil {
					return err
				}
				match = v.Truthy()
			}
			if !match {
				kept = append(kept, row)
			}
		}
		tbl.Rows = kept
		return nil

	case *SetScalar:
		v, err := evalExpr(db, sc, s.Val)
		if err != nil {
			return err
		}
		db.SetScalar(s.Name, v)
		return nil

	default:
		return fmt.Errorf("sqlmini: unknown statement %T", s)
	}
}

// runUpdate evaluates the WHERE predicate for every row against the
// pre-statement state, then applies the SET clauses row by row. Each
// row's SET expressions see that row's pre-update values (standard
// SQL); scalar subqueries in SET clauses see the table as already
// updated for earlier rows, which is irrelevant for the paper's
// programs (their subqueries never aggregate the column being set of
// the table being updated within the same statement... they do read
// Keywords while updating Bids, and read Keywords.roi while updating
// Keywords.bid, both safe).
func runUpdate(db *table.DB, sc *scope, s *Update) error {
	tbl, ok := db.Table(s.Table)
	if !ok {
		return fmt.Errorf("sqlmini: UPDATE: no table %q", s.Table)
	}
	colIdx := make([]int, len(s.Sets))
	for i, set := range s.Sets {
		ci, ok := tbl.Col(set.Col)
		if !ok {
			return fmt.Errorf("sqlmini: UPDATE %s: no column %q", s.Table, set.Col)
		}
		colIdx[i] = ci
	}
	// Pass 1: decide matches on the pre-statement state.
	matched := make([]bool, len(tbl.Rows))
	for r, row := range tbl.Rows {
		matched[r] = true
		if s.Where != nil {
			v, err := evalExpr(db, &scope{name: tbl.Name, tbl: tbl, row: row, parent: sc}, s.Where)
			if err != nil {
				return err
			}
			matched[r] = v.Truthy()
		}
	}
	// Pass 2: apply SETs.
	for r, row := range tbl.Rows {
		if !matched[r] {
			continue
		}
		rowScope := &scope{name: tbl.Name, tbl: tbl, row: row, parent: sc}
		newVals := make([]table.Value, len(s.Sets))
		for i, set := range s.Sets {
			v, err := evalExpr(db, rowScope, set.Val)
			if err != nil {
				return err
			}
			newVals[i] = v
		}
		for i, ci := range colIdx {
			row[ci] = newVals[i]
		}
	}
	return nil
}

// evalExpr evaluates e in the given database and scope chain.
func evalExpr(db *table.DB, sc *scope, e Expr) (table.Value, error) {
	switch e := e.(type) {
	case *Lit:
		return e.V, nil

	case *ColRef:
		return resolve(db, sc, e)

	case *Unary:
		v, err := evalExpr(db, sc, e.X)
		if err != nil {
			return table.N(), err
		}
		switch e.Op {
		case "NOT":
			return table.B(!v.Truthy()), nil
		case "-":
			if v.Kind != table.Float {
				return table.N(), errAt(e.tok, "unary '-' needs a number, got %v", v)
			}
			return table.F(-v.F), nil
		}
		return table.N(), errAt(e.tok, "unknown unary operator %q", e.Op)

	case *Binary:
		return evalBinary(db, sc, e)

	case *SubQuery:
		return evalSubQuery(db, sc, e)

	default:
		return table.N(), fmt.Errorf("sqlmini: unknown expression %T", e)
	}
}

func evalBinary(db *table.DB, sc *scope, e *Binary) (table.Value, error) {
	// Short-circuit logical operators.
	switch e.Op {
	case "AND":
		l, err := evalExpr(db, sc, e.L)
		if err != nil {
			return table.N(), err
		}
		if !l.Truthy() {
			return table.B(false), nil
		}
		r, err := evalExpr(db, sc, e.R)
		if err != nil {
			return table.N(), err
		}
		return table.B(r.Truthy()), nil
	case "OR":
		l, err := evalExpr(db, sc, e.L)
		if err != nil {
			return table.N(), err
		}
		if l.Truthy() {
			return table.B(true), nil
		}
		r, err := evalExpr(db, sc, e.R)
		if err != nil {
			return table.N(), err
		}
		return table.B(r.Truthy()), nil
	}
	l, err := evalExpr(db, sc, e.L)
	if err != nil {
		return table.N(), err
	}
	r, err := evalExpr(db, sc, e.R)
	if err != nil {
		return table.N(), err
	}
	switch e.Op {
	case "+", "-", "*", "/":
		if l.Kind != table.Float || r.Kind != table.Float {
			return table.N(), errAt(e.tok, "arithmetic %q needs numbers, got %v and %v", e.Op, l, r)
		}
		switch e.Op {
		case "+":
			return table.F(l.F + r.F), nil
		case "-":
			return table.F(l.F - r.F), nil
		case "*":
			return table.F(l.F * r.F), nil
		default:
			if r.F == 0 {
				return table.N(), errAt(e.tok, "division by zero")
			}
			return table.F(l.F / r.F), nil
		}
	case "=":
		return table.B(l.Equal(r)), nil
	case "<>":
		if l.Kind == table.Null || r.Kind == table.Null {
			return table.B(false), nil
		}
		return table.B(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		c, err := l.Compare(r)
		if err != nil {
			return table.N(), errAt(e.tok, "%v", err)
		}
		switch e.Op {
		case "<":
			return table.B(c < 0), nil
		case "<=":
			return table.B(c <= 0), nil
		case ">":
			return table.B(c > 0), nil
		default:
			return table.B(c >= 0), nil
		}
	}
	return table.N(), errAt(e.tok, "unknown operator %q", e.Op)
}

// resolve looks a name up through the scope chain (columns first,
// innermost scope first), then among scalar variables.
func resolve(db *table.DB, sc *scope, ref *ColRef) (table.Value, error) {
	for s := sc; s != nil; s = s.parent {
		if ref.Qualifier != "" && !strings.EqualFold(ref.Qualifier, s.name) && !strings.EqualFold(ref.Qualifier, s.tbl.Name) {
			continue
		}
		if ci, ok := s.tbl.Col(ref.Name); ok {
			return s.row[ci], nil
		}
		if ref.Qualifier != "" {
			return table.N(), errAt(ref.tok, "table %s has no column %q", s.name, ref.Name)
		}
	}
	if ref.Qualifier == "" {
		if v, ok := db.Scalar(ref.Name); ok {
			return v, nil
		}
	}
	return table.N(), errAt(ref.tok, "unknown name %q", refName(ref))
}

func refName(ref *ColRef) string {
	if ref.Qualifier != "" {
		return ref.Qualifier + "." + ref.Name
	}
	return ref.Name
}

// evalSubQuery computes a scalar aggregate over the subquery's table.
// Following the paper's example semantics (Figure 6), SUM, COUNT, and
// AVG over an empty selection yield 0, while MAX and MIN yield NULL.
func evalSubQuery(db *table.DB, sc *scope, sq *SubQuery) (table.Value, error) {
	tbl, ok := db.Table(sq.Table)
	if !ok {
		return table.N(), errAt(sq.tok, "subquery: no table %q", sq.Table)
	}
	name := sq.Alias
	if name == "" {
		name = tbl.Name
	}
	var (
		count int
		sum   float64
		best  table.Value
		have  bool
	)
	for _, row := range tbl.Rows {
		rowScope := &scope{name: name, tbl: tbl, row: row, parent: sc}
		if sq.Where != nil {
			v, err := evalExpr(db, rowScope, sq.Where)
			if err != nil {
				return table.N(), err
			}
			if !v.Truthy() {
				continue
			}
		}
		if sq.Arg == nil { // COUNT(*)
			count++
			continue
		}
		v, err := evalExpr(db, rowScope, sq.Arg)
		if err != nil {
			return table.N(), err
		}
		if v.Kind == table.Null {
			continue // aggregates skip NULLs
		}
		count++
		switch sq.Agg {
		case "SUM", "AVG":
			if v.Kind != table.Float {
				return table.N(), errAt(sq.tok, "%s needs numeric values, got %v", sq.Agg, v)
			}
			sum += v.F
		case "MAX":
			if !have {
				best, have = v, true
			} else if c, err := v.Compare(best); err != nil {
				return table.N(), errAt(sq.tok, "%v", err)
			} else if c > 0 {
				best = v
			}
		case "MIN":
			if !have {
				best, have = v, true
			} else if c, err := v.Compare(best); err != nil {
				return table.N(), errAt(sq.tok, "%v", err)
			} else if c < 0 {
				best = v
			}
		}
	}
	switch sq.Agg {
	case "COUNT":
		return table.F(float64(count)), nil
	case "SUM":
		return table.F(sum), nil
	case "AVG":
		if count == 0 {
			return table.F(0), nil
		}
		return table.F(sum / float64(count)), nil
	default: // MAX, MIN
		if !have {
			return table.N(), nil
		}
		return best, nil
	}
}

// Eval evaluates a standalone expression against db with no row
// scope; only scalars and subqueries can be referenced.
func Eval(db *table.DB, e Expr) (table.Value, error) { return evalExpr(db, nil, e) }
