// Package sqlmini implements the paper's bidding-program language
// (Section II-B): a small SQL dialect with triggers, conditionals,
// and updates — "simple SQL updates without recursion and
// side-effects" — interpreted against the in-memory tables of
// internal/table. The running example is the ROI-equalizing program
// of Figure 5, which this package executes verbatim.
//
// Supported statements:
//
//	CREATE TRIGGER name AFTER INSERT ON Table { stmt… }
//	IF expr THEN stmt… [ELSEIF expr THEN stmt…]… [ELSE stmt…] ENDIF ;
//	UPDATE Table SET col = expr [, col = expr]… [WHERE expr] ;
//	INSERT INTO Table VALUES ( expr, … ) ;
//	DELETE FROM Table [WHERE expr] ;
//	SET scalar = expr ;
//
// Expressions include literals, column references (optionally
// qualified by a table name or alias), scalar variables, arithmetic,
// comparisons, AND/OR/NOT, and scalar aggregate subqueries
// ( SELECT MAX(K.roi) FROM Keywords K [WHERE …] ) with aggregates
// MAX, MIN, SUM, COUNT, and AVG.
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) { } , ; = <> <= >= < > + - * / .
)

type tok struct {
	kind tokKind
	text string
	line int
	col  int
}

// Error is a parse or runtime error with source position when known.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("sqlmini: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return "sqlmini: " + e.Msg
}

func errAt(t tok, format string, args ...interface{}) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src. Comments run from "--" to end of line.
func lex(src string) ([]tok, error) {
	var toks []tok
	line, col := 1, 1
	rs := []rune(src)
	i := 0
	advance := func(n int) {
		for ; n > 0; n-- {
			if rs[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			advance(1)
		case r == '-' && i+1 < len(rs) && rs[i+1] == '-':
			for i < len(rs) && rs[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(r) || r == '_':
			start, sl, sc := i, line, col
			for i < len(rs) && (unicode.IsLetter(rs[i]) || unicode.IsDigit(rs[i]) || rs[i] == '_') {
				advance(1)
			}
			toks = append(toks, tok{tokIdent, string(rs[start:i]), sl, sc})
		case unicode.IsDigit(r) || (r == '.' && i+1 < len(rs) && unicode.IsDigit(rs[i+1])):
			start, sl, sc := i, line, col
			seenDot := false
			for i < len(rs) && (unicode.IsDigit(rs[i]) || (rs[i] == '.' && !seenDot)) {
				if rs[i] == '.' {
					// A dot followed by a non-digit is a qualifier dot,
					// not a decimal point.
					if i+1 >= len(rs) || !unicode.IsDigit(rs[i+1]) {
						break
					}
					seenDot = true
				}
				advance(1)
			}
			toks = append(toks, tok{tokNumber, string(rs[start:i]), sl, sc})
		case r == '\'':
			sl, sc := line, col
			advance(1)
			start := i
			for i < len(rs) && rs[i] != '\'' {
				advance(1)
			}
			if i >= len(rs) {
				return nil, &Error{Line: sl, Col: sc, Msg: "unterminated string literal"}
			}
			toks = append(toks, tok{tokString, string(rs[start:i]), sl, sc})
			advance(1)
		case strings.ContainsRune("(){},;=+-*/.", r):
			toks = append(toks, tok{tokSymbol, string(r), line, col})
			advance(1)
		case r == '<':
			sl, sc := line, col
			advance(1)
			text := "<"
			if i < len(rs) && (rs[i] == '=' || rs[i] == '>') {
				text += string(rs[i])
				advance(1)
			}
			toks = append(toks, tok{tokSymbol, text, sl, sc})
		case r == '>':
			sl, sc := line, col
			advance(1)
			text := ">"
			if i < len(rs) && rs[i] == '=' {
				text += "="
				advance(1)
			}
			toks = append(toks, tok{tokSymbol, text, sl, sc})
		case r == '!':
			sl, sc := line, col
			advance(1)
			if i < len(rs) && rs[i] == '=' {
				advance(1)
				toks = append(toks, tok{tokSymbol, "<>", sl, sc})
			} else {
				return nil, &Error{Line: sl, Col: sc, Msg: "unexpected '!'"}
			}
		default:
			return nil, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", r)}
		}
	}
	toks = append(toks, tok{tokEOF, "", line, col})
	return toks, nil
}

// isKw reports whether t is the given keyword (case-insensitive).
func isKw(t tok, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
