package sqlmini

import (
	"strconv"
	"strings"

	"repro/internal/table"
)

// Parse compiles a bidding-program source into a statement list.
func Parse(src string) ([]Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for !p.atEOF() {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// ParseExpr compiles a single expression (for tests and ad-hoc
// evaluation).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errAt(p.peek(), "trailing input %q", p.peek().text)
	}
	return e, nil
}

type parser struct {
	toks []tok
	i    int
}

func (p *parser) peek() tok   { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) next() tok {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// acceptKw consumes the next token if it is the given keyword.
func (p *parser) acceptKw(kw string) bool {
	if isKw(p.peek(), kw) {
		p.i++
		return true
	}
	return false
}

// acceptSym consumes the next token if it is the given symbol.
func (p *parser) acceptSym(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return errAt(p.peek(), "expected %s, found %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

func (p *parser) expectSym(sym string) error {
	if !p.acceptSym(sym) {
		return errAt(p.peek(), "expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent(what string) (tok, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return t, errAt(t, "expected %s, found %q", what, t.text)
	}
	p.i++
	return t, nil
}

// endOfStmt consumes an optional ';'.
func (p *parser) endOfStmt() { p.acceptSym(";") }

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case isKw(t, "CREATE"):
		return p.parseCreateTrigger()
	case isKw(t, "IF"):
		return p.parseIf()
	case isKw(t, "UPDATE"):
		return p.parseUpdate()
	case isKw(t, "INSERT"):
		return p.parseInsert()
	case isKw(t, "DELETE"):
		return p.parseDelete()
	case isKw(t, "SET"):
		return p.parseSetScalar()
	default:
		return nil, errAt(t, "expected a statement, found %q", t.text)
	}
}

// parseCreateTrigger: CREATE TRIGGER name AFTER INSERT ON tbl { body }
func (p *parser) parseCreateTrigger() (Stmt, error) {
	p.next() // CREATE
	if err := p.expectKw("TRIGGER"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("trigger name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AFTER"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.acceptSym("}") {
		if p.atEOF() {
			return nil, errAt(p.peek(), "unterminated trigger body (missing '}')")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	p.endOfStmt()
	return &CreateTrigger{Name: name.text, Table: tbl.text, Body: body}, nil
}

// parseIf: IF c THEN s… {ELSEIF c THEN s…} [ELSE s…] ENDIF ;
func (p *parser) parseIf() (Stmt, error) {
	p.next() // IF
	node := &If{}
	for {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		var body []Stmt
		for !isKw(p.peek(), "ELSEIF") && !isKw(p.peek(), "ELSE") && !isKw(p.peek(), "ENDIF") {
			if p.atEOF() {
				return nil, errAt(p.peek(), "unterminated IF (missing ENDIF)")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			body = append(body, s)
		}
		node.Branches = append(node.Branches, CondBranch{Cond: cond, Body: body})
		if p.acceptKw("ELSEIF") {
			continue
		}
		break
	}
	if p.acceptKw("ELSE") {
		for !isKw(p.peek(), "ENDIF") {
			if p.atEOF() {
				return nil, errAt(p.peek(), "unterminated ELSE (missing ENDIF)")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			node.Else = append(node.Else, s)
		}
	}
	if err := p.expectKw("ENDIF"); err != nil {
		return nil, err
	}
	p.endOfStmt()
	return node, nil
}

// parseUpdate: UPDATE tbl SET col = e {, col = e} [WHERE e] ;
func (p *parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	tbl, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: tbl.text}
	for {
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Sets = append(u.Sets, SetClause{Col: col.text, Val: val})
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	p.endOfStmt()
	return u, nil
}

// parseInsert: INSERT INTO tbl VALUES ( e, … ) ;
func (p *parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	ins := &Insert{Table: tbl.text}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, e)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	p.endOfStmt()
	return ins, nil
}

// parseDelete: DELETE FROM tbl [WHERE e] ;
func (p *parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: tbl.text}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	p.endOfStmt()
	return d, nil
}

// parseSetScalar: SET name = e ;
func (p *parser) parseSetScalar() (Stmt, error) {
	p.next() // SET
	name, err := p.expectIdent("scalar name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("="); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.endOfStmt()
	return &SetScalar{Name: name.text, Val: val}, nil
}

// Expression grammar, loosest to tightest:
// or → and → not → comparison → additive → multiplicative → unary → atom.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for isKw(p.peek(), "OR") {
		t := p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = &Binary{Op: "OR", L: e, R: r, tok: t}
	}
	return e, nil
}

func (p *parser) parseAnd() (Expr, error) {
	e, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for isKw(p.peek(), "AND") {
		t := p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		e = &Binary{Op: "AND", L: e, R: r, tok: t}
	}
	return e, nil
}

func (p *parser) parseNot() (Expr, error) {
	if isKw(p.peek(), "NOT") {
		t := p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x, tok: t}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	e, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: t.text, L: e, R: r, tok: t}, nil
		}
	}
	return e, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	e, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return e, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		e = &Binary{Op: t.text, L: e, R: r, tok: t}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/") {
			return e, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e = &Binary{Op: t.text, L: e, R: r, tok: t}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x, tok: t}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errAt(t, "bad number %q", t.text)
		}
		return &Lit{table.F(f)}, nil
	case t.kind == tokString:
		p.next()
		return &Lit{table.S(t.text)}, nil
	case isKw(t, "TRUE"):
		p.next()
		return &Lit{table.B(true)}, nil
	case isKw(t, "FALSE"):
		p.next()
		return &Lit{table.B(false)}, nil
	case isKw(t, "NULL"):
		p.next()
		return &Lit{table.N()}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		if isKw(p.peek(), "SELECT") {
			return p.parseSubQuery(t)
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.next()
		if p.acceptSym(".") {
			col, err := p.expectIdent("column name after '.'")
			if err != nil {
				return nil, err
			}
			return &ColRef{Qualifier: t.text, Name: col.text, tok: t}, nil
		}
		return &ColRef{Name: t.text, tok: t}, nil
	default:
		return nil, errAt(t, "expected an expression, found %q", t.text)
	}
}

// parseSubQuery parses, after the opening '(':
// SELECT AGG ( expr | * ) FROM tbl [alias] [WHERE expr] )
func (p *parser) parseSubQuery(open tok) (Expr, error) {
	p.next() // SELECT
	aggTok, err := p.expectIdent("aggregate function")
	if err != nil {
		return nil, err
	}
	agg := strings.ToUpper(aggTok.text)
	switch agg {
	case "MAX", "MIN", "SUM", "COUNT", "AVG":
	default:
		return nil, errAt(aggTok, "unsupported aggregate %q (want MAX, MIN, SUM, COUNT, or AVG)", aggTok.text)
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	sq := &SubQuery{Agg: agg, tok: open}
	if p.acceptSym("*") {
		if agg != "COUNT" {
			return nil, errAt(aggTok, "%s(*) is only valid for COUNT", agg)
		}
	} else {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sq.Arg = arg
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	sq.Table = tbl.text
	// Optional alias: an identifier that is not WHERE and not the
	// closing parenthesis.
	if t := p.peek(); t.kind == tokIdent && !isKw(t, "WHERE") {
		p.next()
		sq.Alias = t.text
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sq.Where = w
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return sq, nil
}
