package sqlmini

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// Format renders statements back to source. The output reparses to a
// structurally identical program (round-trip property under test),
// which makes programs storable, diffable, and displayable by the
// provider's tooling.
func Format(stmts []Stmt) string {
	var sb strings.Builder
	for i, s := range stmts {
		if i > 0 {
			sb.WriteByte('\n')
		}
		writeStmt(&sb, s, 0)
	}
	return sb.String()
}

// FormatProgram renders a compiled program.
func (p *Program) Format() string { return Format(p.Stmts) }

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func writeStmt(sb *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *CreateTrigger:
		indent(sb, depth)
		fmt.Fprintf(sb, "CREATE TRIGGER %s AFTER INSERT ON %s {\n", s.Name, s.Table)
		for _, inner := range s.Body {
			writeStmt(sb, inner, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *If:
		indent(sb, depth)
		for i, br := range s.Branches {
			if i == 0 {
				sb.WriteString("IF ")
			} else {
				indent(sb, depth)
				sb.WriteString("ELSEIF ")
			}
			sb.WriteString(ExprString(br.Cond))
			sb.WriteString(" THEN\n")
			for _, inner := range br.Body {
				writeStmt(sb, inner, depth+1)
			}
		}
		if len(s.Else) > 0 {
			indent(sb, depth)
			sb.WriteString("ELSE\n")
			for _, inner := range s.Else {
				writeStmt(sb, inner, depth+1)
			}
		}
		indent(sb, depth)
		sb.WriteString("ENDIF;\n")
	case *Update:
		indent(sb, depth)
		fmt.Fprintf(sb, "UPDATE %s SET ", s.Table)
		for i, set := range s.Sets {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "%s = %s", set.Col, ExprString(set.Val))
		}
		if s.Where != nil {
			sb.WriteString(" WHERE ")
			sb.WriteString(ExprString(s.Where))
		}
		sb.WriteString(";\n")
	case *Insert:
		indent(sb, depth)
		fmt.Fprintf(sb, "INSERT INTO %s VALUES (", s.Table)
		for i, e := range s.Values {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(ExprString(e))
		}
		sb.WriteString(");\n")
	case *Delete:
		indent(sb, depth)
		fmt.Fprintf(sb, "DELETE FROM %s", s.Table)
		if s.Where != nil {
			sb.WriteString(" WHERE ")
			sb.WriteString(ExprString(s.Where))
		}
		sb.WriteString(";\n")
	case *SetScalar:
		indent(sb, depth)
		fmt.Fprintf(sb, "SET %s = %s;\n", s.Name, ExprString(s.Val))
	default:
		indent(sb, depth)
		fmt.Fprintf(sb, "-- unknown statement %T\n", s)
	}
}

// ExprString renders an expression in source syntax with minimal
// parentheses (children of lower precedence get wrapped).
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e, 0)
	return sb.String()
}

// Precedence levels, loosest first (mirrors the parser).
const (
	precOr = iota
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precUnary
	precAtom
)

func exprPrec(e Expr) int {
	switch e := e.(type) {
	case *Binary:
		switch e.Op {
		case "OR":
			return precOr
		case "AND":
			return precAnd
		case "=", "<>", "<", "<=", ">", ">=":
			return precCmp
		case "+", "-":
			return precAdd
		default:
			return precMul
		}
	case *Unary:
		if e.Op == "NOT" {
			return precNot
		}
		return precUnary
	default:
		return precAtom
	}
}

func writeExpr(sb *strings.Builder, e Expr, parent int) {
	prec := exprPrec(e)
	wrap := prec < parent
	if wrap {
		sb.WriteByte('(')
	}
	switch e := e.(type) {
	case *Lit:
		if e.V.Kind == table.String {
			sb.WriteByte('\'')
			sb.WriteString(e.V.S)
			sb.WriteByte('\'')
		} else {
			sb.WriteString(e.V.String())
		}
	case *ColRef:
		sb.WriteString(refName(e))
	case *Unary:
		if e.Op == "NOT" {
			sb.WriteString("NOT ")
			writeExpr(sb, e.X, prec+1)
		} else {
			// Arithmetic negation: parenthesize any non-atom child —
			// "--x" would lex as a comment, and "-a*b" would rebind.
			sb.WriteString(e.Op)
			writeExpr(sb, e.X, precAtom)
		}
	case *Binary:
		lp, rp := prec, prec+1
		if prec == precCmp {
			// Comparisons are non-associative in the grammar: both
			// children must bind tighter than the comparison itself.
			lp = prec + 1
		}
		writeExpr(sb, e.L, lp)
		sb.WriteByte(' ')
		sb.WriteString(e.Op)
		sb.WriteByte(' ')
		// Right child one level tighter for left-associative operators
		// so "a - (b - c)" keeps its parentheses.
		writeExpr(sb, e.R, rp)
	case *SubQuery:
		sb.WriteString("( SELECT ")
		sb.WriteString(e.Agg)
		sb.WriteByte('(')
		if e.Arg == nil {
			sb.WriteByte('*')
		} else {
			writeExpr(sb, e.Arg, 0)
		}
		sb.WriteString(") FROM ")
		sb.WriteString(e.Table)
		if e.Alias != "" {
			sb.WriteByte(' ')
			sb.WriteString(e.Alias)
		}
		if e.Where != nil {
			sb.WriteString(" WHERE ")
			writeExpr(sb, e.Where, 0)
		}
		sb.WriteString(" )")
	default:
		fmt.Fprintf(sb, "/*unknown %T*/", e)
	}
	if wrap {
		sb.WriteByte(')')
	}
}
