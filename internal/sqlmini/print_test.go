package sqlmini

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/table"
)

// randExpr generates a random expression AST (no position tokens, so
// reflect.DeepEqual compares structure cleanly after zeroTok).
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return &Lit{table.F(float64(rng.Intn(100)))}
		case 1:
			return &Lit{table.S("str")}
		case 2:
			return &ColRef{Name: "col"}
		default:
			return &ColRef{Qualifier: "K", Name: "roi"}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return &Unary{Op: "NOT", X: randExpr(rng, depth-1)}
	case 1:
		return &Unary{Op: "-", X: randExpr(rng, depth-1)}
	case 2:
		aggs := []string{"MAX", "MIN", "SUM", "COUNT", "AVG"}
		sq := &SubQuery{Agg: aggs[rng.Intn(len(aggs))], Table: "T", Alias: "K"}
		if sq.Agg == "COUNT" && rng.Intn(2) == 0 {
			// COUNT(*)
		} else {
			sq.Arg = randExpr(rng, depth-1)
		}
		if rng.Intn(2) == 0 {
			sq.Where = randExpr(rng, depth-1)
		}
		return sq
	default:
		ops := []string{"OR", "AND", "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/"}
		return &Binary{
			Op: ops[rng.Intn(len(ops))],
			L:  randExpr(rng, depth-1),
			R:  randExpr(rng, depth-1),
		}
	}
}

func randStmt(rng *rand.Rand, depth int) Stmt {
	switch rng.Intn(6) {
	case 0:
		u := &Update{Table: "T", Sets: []SetClause{{Col: "col", Val: randExpr(rng, 2)}}}
		if rng.Intn(2) == 0 {
			u.Sets = append(u.Sets, SetClause{Col: "other", Val: randExpr(rng, 2)})
		}
		if rng.Intn(2) == 0 {
			u.Where = randExpr(rng, 2)
		}
		return u
	case 1:
		return &Insert{Table: "T", Values: []Expr{randExpr(rng, 2), randExpr(rng, 1)}}
	case 2:
		d := &Delete{Table: "T"}
		if rng.Intn(2) == 0 {
			d.Where = randExpr(rng, 2)
		}
		return d
	case 3:
		return &SetScalar{Name: "x", Val: randExpr(rng, 2)}
	case 4:
		if depth > 0 {
			node := &If{Branches: []CondBranch{{Cond: randExpr(rng, 2), Body: []Stmt{randStmt(rng, depth-1)}}}}
			if rng.Intn(2) == 0 {
				node.Branches = append(node.Branches,
					CondBranch{Cond: randExpr(rng, 2), Body: []Stmt{randStmt(rng, depth-1)}})
			}
			if rng.Intn(2) == 0 {
				node.Else = []Stmt{randStmt(rng, depth-1)}
			}
			return node
		}
		return &SetScalar{Name: "y", Val: randExpr(rng, 1)}
	default:
		if depth > 0 {
			return &CreateTrigger{Name: "t", Table: "Q",
				Body: []Stmt{randStmt(rng, depth-1), randStmt(rng, depth-1)}}
		}
		return &SetScalar{Name: "z", Val: randExpr(rng, 1)}
	}
}

// zeroTok clears parser position tokens so the reparsed AST compares
// equal to the generated one.
func zeroTok(e Expr) {
	switch e := e.(type) {
	case *ColRef:
		e.tok = tok{}
	case *Unary:
		e.tok = tok{}
		zeroTok(e.X)
	case *Binary:
		e.tok = tok{}
		zeroTok(e.L)
		zeroTok(e.R)
	case *SubQuery:
		e.tok = tok{}
		if e.Arg != nil {
			zeroTok(e.Arg)
		}
		if e.Where != nil {
			zeroTok(e.Where)
		}
	}
}

func zeroTokStmt(s Stmt) {
	switch s := s.(type) {
	case *CreateTrigger:
		for _, inner := range s.Body {
			zeroTokStmt(inner)
		}
	case *If:
		for _, br := range s.Branches {
			zeroTok(br.Cond)
			for _, inner := range br.Body {
				zeroTokStmt(inner)
			}
		}
		for _, inner := range s.Else {
			zeroTokStmt(inner)
		}
	case *Update:
		for i := range s.Sets {
			zeroTok(s.Sets[i].Val)
		}
		if s.Where != nil {
			zeroTok(s.Where)
		}
	case *Insert:
		for _, e := range s.Values {
			zeroTok(e)
		}
	case *Delete:
		if s.Where != nil {
			zeroTok(s.Where)
		}
	case *SetScalar:
		zeroTok(s.Val)
	}
}

// TestFormatRoundTripRandomASTs: Format(ast) reparses to the same AST
// (modulo source positions) — 500 random programs.
func TestFormatRoundTripRandomASTs(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 500; trial++ {
		var prog []Stmt
		for i := 0; i < 1+rng.Intn(3); i++ {
			prog = append(prog, randStmt(rng, 2))
		}
		src := Format(prog)
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\nsource:\n%s", trial, err, src)
		}
		for _, s := range back {
			zeroTokStmt(s)
		}
		if !reflect.DeepEqual(prog, back) {
			src2 := Format(back)
			t.Fatalf("trial %d: round trip changed the AST.\nfirst:\n%s\nsecond:\n%s", trial, src, src2)
		}
	}
}

// TestFormatFig5Stable: formatting the Figure 5 program and
// re-formatting its reparse is a fixed point.
func TestFormatFig5Stable(t *testing.T) {
	prog, err := Compile(fig5Program)
	if err != nil {
		t.Fatal(err)
	}
	once := Format(prog.Stmts)
	back, err := Parse(once)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, once)
	}
	twice := Format(back)
	if once != twice {
		t.Fatalf("Format not stable:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
	if !strings.Contains(once, "CREATE TRIGGER bid AFTER INSERT ON Query") {
		t.Fatalf("formatted program lost its trigger header:\n%s", once)
	}
}

// TestExprStringParens: minimal parenthesization keeps semantics.
func TestExprStringParens(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"2 - 3 - 4", "2 - 3 - 4"},
		{"2 - (3 - 4)", "2 - (3 - 4)"},
		{"NOT (a AND b)", "NOT (a AND b)"},
		{"a AND (b OR c)", "a AND (b OR c)"},
		{"-(1 + 2)", "-(1 + 2)"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got := ExprString(e); got != c.want {
			t.Errorf("ExprString(%s) = %s, want %s", c.src, got, c.want)
		}
	}
}
