package sqlmini

import (
	"testing"

	"repro/internal/table"
)

// TestTriggerSeesInsertedRowAsNEW: trigger bodies can read the
// freshly inserted row under the NEW alias (and the table name).
func TestTriggerSeesInsertedRowAsNEW(t *testing.T) {
	db := table.NewDB()
	db.Add(table.New("Query",
		table.Column{Name: "kw", Kind: table.String},
		table.Column{Name: "weight", Kind: table.Float}))
	db.Add(table.New("Log",
		table.Column{Name: "kw", Kind: table.String},
		table.Column{Name: "double", Kind: table.Float}))
	prog, err := Compile(`
CREATE TRIGGER remember AFTER INSERT ON Query
{
  INSERT INTO Log VALUES ( NEW.kw, NEW.weight * 2 );
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	q, _ := db.Table("Query")
	if err := q.Insert(table.Row{table.S("boot"), table.F(3)}); err != nil {
		t.Fatal(err)
	}
	lg, _ := db.Table("Log")
	if len(lg.Rows) != 1 || lg.Rows[0][0].S != "boot" || lg.Rows[0][1].F != 6 {
		t.Fatalf("log rows %v", lg.Rows)
	}
}

// TestBudgetGuardedProgram: the "daily budget" constraint the paper's
// introduction names as a pre-defined parameter becomes a one-line
// guard in the language — the program zeroes its bids once spending
// reaches the budget.
func TestBudgetGuardedProgram(t *testing.T) {
	db := table.NewDB()
	kw := table.New("Keywords",
		table.Column{Name: "text", Kind: table.String},
		table.Column{Name: "bid", Kind: table.Float},
		table.Column{Name: "relevance", Kind: table.Float})
	kw.Insert(table.Row{table.S("boot"), table.F(7), table.F(1)})
	kw.Insert(table.Row{table.S("shoe"), table.F(4), table.F(0)})
	db.Add(kw)
	db.Add(table.New("Query", table.Column{Name: "kw", Kind: table.String}))
	db.SetScalar("amtSpent", table.F(0))
	db.SetScalar("budget", table.F(100))

	prog, err := Compile(`
CREATE TRIGGER spendcap AFTER INSERT ON Query
{
  IF amtSpent >= budget THEN
    UPDATE Keywords SET bid = 0;
  ENDIF;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	q, _ := db.Table("Query")

	// Under budget: bids untouched.
	if err := q.Insert(table.Row{table.S("boot")}); err != nil {
		t.Fatal(err)
	}
	if kw.Rows[0][1].F != 7 {
		t.Fatalf("bid changed while under budget: %v", kw.Rows[0][1])
	}
	// Budget exhausted: every bid zeroed.
	db.SetScalar("amtSpent", table.F(100))
	if err := q.Insert(table.Row{table.S("boot")}); err != nil {
		t.Fatal(err)
	}
	for _, row := range kw.Rows {
		if row[1].F != 0 {
			t.Fatalf("bid not zeroed at budget: %v", row)
		}
	}
}

// TestCascadingTriggers: a trigger's INSERT fires the target table's
// own triggers (depth-one cascade; the language forbids recursion
// only in the sense of self-recursive queries, and the paper's
// programs use triggers to be notified of wins, clicks, and
// purchases).
func TestCascadingTriggers(t *testing.T) {
	db := table.NewDB()
	db.Add(table.New("A", table.Column{Name: "x", Kind: table.Float}))
	db.Add(table.New("B", table.Column{Name: "x", Kind: table.Float}))
	db.Add(table.New("C", table.Column{Name: "x", Kind: table.Float}))
	prog, err := Compile(`
CREATE TRIGGER aToB AFTER INSERT ON A { INSERT INTO B VALUES ( NEW.x + 1 ); }
CREATE TRIGGER bToC AFTER INSERT ON B { INSERT INTO C VALUES ( NEW.x * 10 ); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	a, _ := db.Table("A")
	if err := a.Insert(table.Row{table.F(4)}); err != nil {
		t.Fatal(err)
	}
	c, _ := db.Table("C")
	if len(c.Rows) != 1 || c.Rows[0][0].F != 50 {
		t.Fatalf("cascade produced %v, want [[50]]", c.Rows)
	}
}

// TestWinNotificationTriggers models the paper's "SQL triggers can be
// used ... to notify programs if they received a slot, click, or
// purchase": the provider inserts into a Wins table; the program
// reacts by raising its bid on the winning keyword.
func TestWinNotificationTriggers(t *testing.T) {
	db := table.NewDB()
	kw := table.New("Keywords",
		table.Column{Name: "text", Kind: table.String},
		table.Column{Name: "bid", Kind: table.Float})
	kw.Insert(table.Row{table.S("boot"), table.F(5)})
	kw.Insert(table.Row{table.S("shoe"), table.F(5)})
	db.Add(kw)
	db.Add(table.New("Wins",
		table.Column{Name: "kw", Kind: table.String},
		table.Column{Name: "slot", Kind: table.Float}))
	prog, err := Compile(`
CREATE TRIGGER celebrate AFTER INSERT ON Wins
{
  UPDATE Keywords SET bid = bid + 2 WHERE text = NEW.kw AND NEW.slot <= 3;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	wins, _ := db.Table("Wins")
	if err := wins.Insert(table.Row{table.S("boot"), table.F(1)}); err != nil {
		t.Fatal(err)
	}
	if err := wins.Insert(table.Row{table.S("shoe"), table.F(9)}); err != nil {
		t.Fatal(err)
	}
	if kw.Rows[0][1].F != 7 {
		t.Fatalf("boot bid %v, want 7 (win in slot 1)", kw.Rows[0][1])
	}
	if kw.Rows[1][1].F != 5 {
		t.Fatalf("shoe bid %v, want 5 (win in slot 9 ignored)", kw.Rows[1][1])
	}
}

// TestMultipleTriggersFireInOrder: two triggers on one table run in
// registration order.
func TestMultipleTriggersFireInOrder(t *testing.T) {
	db := table.NewDB()
	db.Add(table.New("T", table.Column{Name: "x", Kind: table.Float}))
	db.SetScalar("acc", table.F(1))
	prog, err := Compile(`
CREATE TRIGGER first AFTER INSERT ON T { SET acc = acc * 10; }
CREATE TRIGGER second AFTER INSERT ON T { SET acc = acc + 1; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")
	if err := tbl.Insert(table.Row{table.F(0)}); err != nil {
		t.Fatal(err)
	}
	// (1·10)+1 = 11, not (1+1)·10 = 20.
	if v, _ := db.Scalar("acc"); v.F != 11 {
		t.Fatalf("acc = %v, want 11", v)
	}
}
