package sqlmini

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// Select is a read-only query over one table:
//
//	SELECT expr [, expr]… FROM tbl [alias]
//	       [WHERE expr] [ORDER BY expr [DESC]] [LIMIT n]
//
// It is not a statement in bidding programs (programs are update-only,
// per the paper's "simple SQL updates" language); it exists for the
// provider's tooling — inspecting Keywords and Bids tables, driving
// cmd/bidlang, and tests.
type Select struct {
	Exprs   []Expr
	Table   string
	Alias   string
	Where   Expr // nil: every row
	OrderBy Expr // nil: table order
	Desc    bool
	Limit   int // ≤0: no limit
}

// ParseSelect parses a standalone SELECT query.
func ParseSelect(src string) (*Select, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	q := &Select{}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Exprs = append(q.Exprs, e)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	q.Table = tbl.text
	if t := p.peek(); t.kind == tokIdent &&
		!isKw(t, "WHERE") && !isKw(t, "ORDER") && !isKw(t, "LIMIT") {
		p.next()
		q.Alias = t.text
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		ob, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.OrderBy = ob
		if p.acceptKw("DESC") {
			q.Desc = true
		} else {
			p.acceptKw("ASC")
		}
	}
	if p.acceptKw("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, errAt(t, "LIMIT needs a number, found %q", t.text)
		}
		var n int
		if _, err := fmt.Sscanf(t.text, "%d", &n); err != nil || n < 0 {
			return nil, errAt(t, "bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	p.endOfStmt()
	if !p.atEOF() {
		return nil, errAt(p.peek(), "trailing input %q", p.peek().text)
	}
	return q, nil
}

// Run evaluates the query against db.
func (q *Select) Run(db *table.DB) ([][]table.Value, error) {
	tbl, ok := db.Table(q.Table)
	if !ok {
		return nil, fmt.Errorf("sqlmini: SELECT: no table %q", q.Table)
	}
	name := q.Alias
	if name == "" {
		name = tbl.Name
	}
	type scored struct {
		row table.Row
		key table.Value
	}
	var picked []scored
	for _, row := range tbl.Rows {
		sc := &scope{name: name, tbl: tbl, row: row}
		if q.Where != nil {
			v, err := evalExpr(db, sc, q.Where)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		s := scored{row: row}
		if q.OrderBy != nil {
			k, err := evalExpr(db, sc, q.OrderBy)
			if err != nil {
				return nil, err
			}
			s.key = k
		}
		picked = append(picked, s)
	}
	if q.OrderBy != nil {
		// Stable insertion sort keeps table order among equal keys and
		// surfaces comparison errors deterministically.
		for i := 1; i < len(picked); i++ {
			for j := i; j > 0; j-- {
				c, err := picked[j].key.Compare(picked[j-1].key)
				if err != nil {
					return nil, fmt.Errorf("sqlmini: ORDER BY: %v", err)
				}
				if q.Desc {
					c = -c
				}
				if c >= 0 {
					break
				}
				picked[j], picked[j-1] = picked[j-1], picked[j]
			}
		}
	}
	if q.Limit > 0 && len(picked) > q.Limit {
		picked = picked[:q.Limit]
	}
	out := make([][]table.Value, 0, len(picked))
	for _, s := range picked {
		sc := &scope{name: name, tbl: tbl, row: s.row}
		vals := make([]table.Value, len(q.Exprs))
		for c, e := range q.Exprs {
			v, err := evalExpr(db, sc, e)
			if err != nil {
				return nil, err
			}
			vals[c] = v
		}
		out = append(out, vals)
	}
	return out, nil
}

// Query parses and runs a SELECT in one call.
func Query(db *table.DB, src string) ([][]table.Value, error) {
	q, err := ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return q.Run(db)
}

// FormatRows renders query results as tab-separated lines.
func FormatRows(rows [][]table.Value) string {
	var sb strings.Builder
	for i, row := range rows {
		if i > 0 {
			sb.WriteByte('\n')
		}
		for c, v := range row {
			if c > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(v.String())
		}
	}
	return sb.String()
}
