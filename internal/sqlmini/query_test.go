package sqlmini

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func queryDB(t *testing.T) *table.DB {
	t.Helper()
	db := table.NewDB()
	kw := table.New("Keywords",
		table.Column{Name: "text", Kind: table.String},
		table.Column{Name: "bid", Kind: table.Float},
		table.Column{Name: "roi", Kind: table.Float})
	rows := []struct {
		text string
		bid  float64
		roi  float64
	}{
		{"boot", 4, 2},
		{"shoe", 8, 1},
		{"sock", 1, 3},
		{"lace", 8, 0.5},
	}
	for _, r := range rows {
		if err := kw.Insert(table.Row{table.S(r.text), table.F(r.bid), table.F(r.roi)}); err != nil {
			t.Fatal(err)
		}
	}
	db.Add(kw)
	db.SetScalar("minBid", table.F(2))
	return db
}

func TestQueryBasics(t *testing.T) {
	db := queryDB(t)
	rows, err := Query(db, "SELECT text, bid FROM Keywords WHERE bid >= minBid ORDER BY bid DESC")
	if err != nil {
		t.Fatal(err)
	}
	got := FormatRows(rows)
	// shoe and lace tie at 8: stable sort keeps table order.
	want := "shoe\t8\nlace\t8\nboot\t4"
	if got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestQueryLimitAndAsc(t *testing.T) {
	db := queryDB(t)
	rows, err := Query(db, "SELECT text FROM Keywords ORDER BY roi ASC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if FormatRows(rows) != "lace\nshoe" {
		t.Fatalf("got %q", FormatRows(rows))
	}
}

func TestQueryExpressionsAndAlias(t *testing.T) {
	db := queryDB(t)
	rows, err := Query(db, "SELECT K.text, K.bid * K.roi FROM Keywords K WHERE K.bid * K.roi > 3 ORDER BY K.bid * K.roi DESC")
	if err != nil {
		t.Fatal(err)
	}
	if FormatRows(rows) != "boot\t8\nshoe\t8\nlace\t4" {
		t.Fatalf("got %q", FormatRows(rows))
	}
}

func TestQuerySubqueryProjection(t *testing.T) {
	db := queryDB(t)
	rows, err := Query(db,
		"SELECT text FROM Keywords WHERE roi = ( SELECT MAX(K.roi) FROM Keywords K )")
	if err != nil {
		t.Fatal(err)
	}
	if FormatRows(rows) != "sock" {
		t.Fatalf("got %q", FormatRows(rows))
	}
}

func TestQueryNoOrder(t *testing.T) {
	db := queryDB(t)
	rows, err := Query(db, "SELECT text FROM Keywords")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0][0].S != "boot" {
		t.Fatalf("table order broken: %v", rows)
	}
}

func TestQueryErrors(t *testing.T) {
	db := queryDB(t)
	bad := []string{
		"SELECT FROM Keywords",
		"SELECT text",                          // no FROM
		"SELECT text FROM Missing",             // unknown table
		"SELECT zzz FROM Keywords",             // unknown column
		"SELECT text FROM Keywords LIMIT boot", // bad limit
		"SELECT text FROM Keywords ORDER BY text extra",
		"SELECT text FROM Keywords ORDER BY bid = 1", // bool order key
	}
	for _, src := range bad {
		if _, err := Query(db, src); err == nil {
			t.Errorf("Query(%q) unexpectedly succeeded", src)
		}
	}
}

func TestQueryErrorPositions(t *testing.T) {
	_, err := ParseSelect("SELECT text FROM Keywords LIMIT x")
	if err == nil || !strings.Contains(err.Error(), "LIMIT") {
		t.Fatalf("err = %v", err)
	}
}
