package sqlmini

import (
	"math"
	"strings"
	"testing"

	"repro/internal/table"
)

// fig5Program is the ROI-equalizing strategy of Figure 5 in our
// dialect. The paper's line 11 contains a typo (`<` where the
// overspending branch clearly needs `>`); we use the corrected
// comparison, as the surrounding prose ("lines 13–19 decreases his
// bids ... if he is overspending") dictates.
const fig5Program = `
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi = ( SELECT MIN( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value = ( SELECT SUM( K.bid )
                FROM Keywords K
                WHERE K.relevance > 0.7
                  AND K.formula = Bids.formula );
}
`

// fig4DB builds the advertiser database in the state of Figure 4:
// Keywords(text, formula, maxbid, roi, bid, relevance) with rows
// boot/shoe, plus a Bids table over the two formulas and a Query
// table whose inserts fire the trigger.
func fig4DB() *table.DB {
	db := table.NewDB()
	kw := table.New("Keywords",
		table.Column{Name: "text", Kind: table.String},
		table.Column{Name: "formula", Kind: table.String},
		table.Column{Name: "maxbid", Kind: table.Float},
		table.Column{Name: "roi", Kind: table.Float},
		table.Column{Name: "bid", Kind: table.Float},
		table.Column{Name: "relevance", Kind: table.Float},
	)
	kw.Insert(table.Row{table.S("boot"), table.S("Click AND Slot1"), table.F(5), table.F(2), table.F(4), table.F(0.8)})
	kw.Insert(table.Row{table.S("shoe"), table.S("Click"), table.F(6), table.F(1), table.F(8), table.F(0.2)})
	db.Add(kw)

	bids := table.New("Bids",
		table.Column{Name: "formula", Kind: table.String},
		table.Column{Name: "value", Kind: table.Float},
	)
	bids.Insert(table.Row{table.S("Click AND Slot1"), table.F(0)})
	bids.Insert(table.Row{table.S("Click"), table.F(0)})
	db.Add(bids)

	db.Add(table.New("Query",
		table.Column{Name: "kw", Kind: table.String},
	))
	return db
}

func install(t *testing.T, db *table.DB, src string) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatalf("install: %v", err)
	}
}

func fireQuery(t *testing.T, db *table.DB) {
	t.Helper()
	q, _ := db.Table("Query")
	if err := q.Insert(table.Row{table.S("boot")}); err != nil {
		t.Fatalf("trigger run: %v", err)
	}
}

func bidsValues(t *testing.T, db *table.DB) map[string]float64 {
	t.Helper()
	bids, _ := db.Table("Bids")
	out := map[string]float64{}
	for _, r := range bids.Rows {
		out[r[0].S] = r[1].F
	}
	return out
}

// TestFig5ProgramProducesFig6Bids reproduces the paper's worked
// example: with the Keywords table in the Figure 4 state after lines
// 1–20 (we pin spending exactly on target so the IF changes nothing),
// the Bids table must come out as Figure 6: Click∧Slot1 → 4, Click → 0.
func TestFig5ProgramProducesFig6Bids(t *testing.T) {
	db := fig4DB()
	db.SetScalar("amtSpent", table.F(10))
	db.SetScalar("time", table.F(5))
	db.SetScalar("targetSpendRate", table.F(2)) // exactly on target
	install(t, db, fig5Program)
	fireQuery(t, db)
	got := bidsValues(t, db)
	if got["Click AND Slot1"] != 4 || got["Click"] != 0 {
		t.Fatalf("Bids = %v, want Click AND Slot1→4, Click→0 (Figure 6)", got)
	}
}

// TestFig5Underspending exercises lines 3–10: underspending bumps the
// max-ROI relevant keyword (boot, roi 2, bid 4 < maxbid 5) to 5.
func TestFig5Underspending(t *testing.T) {
	db := fig4DB()
	db.SetScalar("amtSpent", table.F(1))
	db.SetScalar("time", table.F(5))
	db.SetScalar("targetSpendRate", table.F(2)) // 0.2 < 2: underspending
	install(t, db, fig5Program)
	fireQuery(t, db)
	kw, _ := db.Table("Keywords")
	if kw.Rows[0][4].F != 5 {
		t.Fatalf("boot bid = %v, want 5", kw.Rows[0][4])
	}
	if kw.Rows[1][4].F != 8 {
		t.Fatalf("shoe bid = %v, want unchanged 8 (roi not max)", kw.Rows[1][4])
	}
	got := bidsValues(t, db)
	if got["Click AND Slot1"] != 5 || got["Click"] != 0 {
		t.Fatalf("Bids = %v, want 5 and 0", got)
	}
}

// TestFig5Overspending exercises lines 11–19: overspending decrements
// the min-ROI relevant keyword. shoe has min roi but relevance 0.2 > 0
// qualifies; its bid drops from 8 to 7.
func TestFig5Overspending(t *testing.T) {
	db := fig4DB()
	db.SetScalar("amtSpent", table.F(100))
	db.SetScalar("time", table.F(5))
	db.SetScalar("targetSpendRate", table.F(2)) // 20 > 2: overspending
	install(t, db, fig5Program)
	fireQuery(t, db)
	kw, _ := db.Table("Keywords")
	if kw.Rows[1][4].F != 7 {
		t.Fatalf("shoe bid = %v, want 7", kw.Rows[1][4])
	}
	if kw.Rows[0][4].F != 4 {
		t.Fatalf("boot bid = %v, want unchanged 4", kw.Rows[0][4])
	}
}

// TestFig5GuardsRespectBounds: an underspending advertiser must not
// raise a bid past maxbid, and an overspending one must not go
// negative.
func TestFig5GuardsRespectBounds(t *testing.T) {
	db := fig4DB()
	kw, _ := db.Table("Keywords")
	kw.Rows[0][4] = table.F(5) // boot at maxbid already
	db.SetScalar("amtSpent", table.F(0))
	db.SetScalar("time", table.F(5))
	db.SetScalar("targetSpendRate", table.F(2))
	install(t, db, fig5Program)
	fireQuery(t, db)
	if kw.Rows[0][4].F != 5 {
		t.Fatalf("boot bid %v exceeded maxbid", kw.Rows[0][4])
	}

	db2 := fig4DB()
	kw2, _ := db2.Table("Keywords")
	kw2.Rows[1][4] = table.F(0) // shoe at zero
	db2.SetScalar("amtSpent", table.F(100))
	db2.SetScalar("time", table.F(5))
	db2.SetScalar("targetSpendRate", table.F(2))
	install(t, db2, fig5Program)
	fireQuery(t, db2)
	if kw2.Rows[1][4].F != 0 {
		t.Fatalf("shoe bid %v went negative", kw2.Rows[1][4])
	}
}

func TestExpressionEvaluation(t *testing.T) {
	db := table.NewDB()
	db.SetScalar("x", table.F(7))
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2.5},
		{"-x + 10", 3},
		{"2 - 3 - 4", -5}, // left associative
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		v, err := Eval(db, e)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if math.Abs(v.F-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %g", c.src, v, c.want)
		}
	}
}

func TestComparisonAndLogic(t *testing.T) {
	db := table.NewDB()
	cases := []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"'a' < 'b'", true},
		{"1 = 1 AND 2 = 2", true},
		{"1 = 2 OR 2 = 2", true},
		{"NOT 1 = 2", true},
		{"1 <> 2", true},
		{"NULL = NULL", false},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		v, err := Eval(db, e)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if v.Truthy() != c.want {
			t.Errorf("%s = %v, want %v", c.src, v, c.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	db := table.NewDB()
	tbl := table.New("T", table.Column{Name: "a", Kind: table.Float})
	for _, f := range []float64{3, 1, 4, 1, 5} {
		tbl.Insert(table.Row{table.F(f)})
	}
	db.Add(tbl)
	cases := []struct {
		src  string
		want float64
	}{
		{"( SELECT MAX(a) FROM T )", 5},
		{"( SELECT MIN(a) FROM T )", 1},
		{"( SELECT SUM(a) FROM T )", 14},
		{"( SELECT AVG(a) FROM T )", 2.8},
		{"( SELECT COUNT(*) FROM T )", 5},
		{"( SELECT COUNT(a) FROM T WHERE a > 2 )", 3},
		{"( SELECT SUM(a) FROM T WHERE a > 100 )", 0}, // empty SUM is 0
		{"( SELECT AVG(a) FROM T WHERE a > 100 )", 0},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		v, err := Eval(db, e)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if math.Abs(v.F-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %g", c.src, v, c.want)
		}
	}
	// Empty MAX is NULL.
	e, _ := ParseExpr("( SELECT MAX(a) FROM T WHERE a > 100 )")
	v, err := Eval(db, e)
	if err != nil || v.Kind != table.Null {
		t.Errorf("empty MAX = %v (%v), want NULL", v, err)
	}
}

func TestInsertDeleteStatements(t *testing.T) {
	db := table.NewDB()
	db.Add(table.New("T",
		table.Column{Name: "a", Kind: table.Float},
		table.Column{Name: "b", Kind: table.String}))
	prog, err := Compile(`
INSERT INTO T VALUES (1, 'x');
INSERT INTO T VALUES (2, 'y');
INSERT INTO T VALUES (3, 'x');
DELETE FROM T WHERE b = 'x' AND a > 1;
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows after delete: %d, want 2", len(tbl.Rows))
	}
}

func TestSetScalarStatement(t *testing.T) {
	db := table.NewDB()
	db.SetScalar("x", table.F(1))
	prog, err := Compile(`SET x = x + 41;`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Scalar("x")
	if v.F != 42 {
		t.Fatalf("x = %v, want 42", v)
	}
}

func TestUpdateSeesPreUpdateRow(t *testing.T) {
	db := table.NewDB()
	tbl := table.New("T",
		table.Column{Name: "a", Kind: table.Float},
		table.Column{Name: "b", Kind: table.Float})
	tbl.Insert(table.Row{table.F(1), table.F(10)})
	db.Add(tbl)
	prog, err := Compile(`UPDATE T SET a = b, b = a;`) // swap
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][0].F != 10 || tbl.Rows[0][1].F != 1 {
		t.Fatalf("swap failed: %v", tbl.Rows[0])
	}
}

func TestIfElseChain(t *testing.T) {
	db := table.NewDB()
	db.SetScalar("x", table.F(5))
	db.SetScalar("out", table.F(0))
	prog, err := Compile(`
IF x < 3 THEN SET out = 1;
ELSEIF x < 10 THEN SET out = 2;
ELSE SET out = 3;
ENDIF;
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Scalar("out")
	if v.F != 2 {
		t.Fatalf("out = %v, want 2", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"UPDATE",
		"UPDATE T SET",
		"IF 1 THEN SET x = 1;", // missing ENDIF
		"CREATE TRIGGER t AFTER INSERT ON T { SET x = 1;",
		"INSERT INTO T VALUES (1",
		"SET x =",
		"( SELECT MEDIAN(a) FROM T )",
		"1 +* 2",
		"'unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			if _, err2 := ParseExpr(src); err2 == nil {
				t.Errorf("Parse(%q) unexpectedly succeeded", src)
			}
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	db := table.NewDB()
	db.Add(table.New("T", table.Column{Name: "a", Kind: table.Float}))
	cases := []string{
		"UPDATE Missing SET a = 1;",
		"UPDATE T SET zzz = 1;",
		"INSERT INTO Missing VALUES (1);",
		"DELETE FROM Missing;",
	}
	for _, src := range cases {
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if err := prog.Install(db); err == nil {
			t.Errorf("%q: want runtime error", src)
		}
	}
	// Division by zero and unknown names are expression errors.
	for _, src := range []string{"1 / 0", "nosuchvar + 1"} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Eval(db, e); err == nil {
			t.Errorf("%q: want eval error", src)
		}
	}
}

func TestCommentsAndCase(t *testing.T) {
	db := table.NewDB()
	db.SetScalar("x", table.F(0))
	prog, err := Compile(`
-- a comment line
set X = 1; -- trailing comment (scalar names are case-sensitive,
           -- keywords are not)
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	if v, ok := db.Scalar("X"); !ok || v.F != 1 {
		t.Fatalf("X = %v %v", v, ok)
	}
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	_, err := Parse("UPDATE T SET a = ;")
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error %v should carry a source position", err)
	}
}
