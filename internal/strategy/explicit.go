package strategy

import (
	"runtime"

	"repro/internal/lp"
	"repro/internal/matching"
	"repro/internal/topk"
	"repro/internal/workload"
)

// explicitEngine evaluates every bidding program on every auction:
// the straightforward implementation of the Section II flow, used by
// methods LP, H, and RH. Its per-auction cost is Θ(n·keywords) before
// winner determination even starts — the cost Section IV eliminates.
type explicitEngine struct {
	inst *workload.Instance
	bid  [][]int // bid[i][q], integral by construction
}

func newExplicitEngine(inst *workload.Instance) *explicitEngine {
	e := &explicitEngine{inst: inst, bid: make([][]int, inst.N)}
	for i := range e.bid {
		e.bid[i] = make([]int, inst.Keywords)
		copy(e.bid[i], inst.InitialBid[i])
	}
	return e
}

// step runs every advertiser's ROI program for the auction on keyword
// q at time t: the native equivalent of firing the Figure 5 trigger
// once per advertiser. Only the query keyword has positive relevance,
// so only its bid can change.
func (e *explicitEngine) step(q int, t float64, acct *Accounting) {
	for i := 0; i < e.inst.N; i++ {
		status := spendStatus(acct.SpentTotal[i], t, e.inst.Target[i])
		switch bidMode(e.inst, acct, i, q, e.bid[i][q], status) {
		case modeInc:
			e.bid[i][q]++
		case modeDec:
			e.bid[i][q]--
		}
	}
}

// RunAuction advances the world by one auction on keyword q:
// program evaluation, winner determination, GSP pricing, user
// simulation, and accounting.
func (w *World) RunAuction(q int) *Outcome {
	w.t++
	t := float64(w.t)
	k := w.Inst.Slots

	var lists [][]topk.Item
	var advOf []int

	if w.talu != nil {
		lists, advOf = w.talu.prepare(q, t)
	} else {
		w.ex.step(q, t, w.acct)
		score := func(i, j int) float64 {
			return w.Inst.ClickProb[i][j] * float64(w.ex.bid[i][q])
		}

		// Candidate lists (k+1 deep) serve both the reduced matching
		// and GSP pricing; see pricePerSlot for why k+1 suffices.
		switch w.Method {
		case MethodRH:
			lists = make([][]topk.Item, k)
			for j := 0; j < k; j++ {
				j := j
				lists[j] = topk.Select(w.Inst.N, k+1, func(i int) float64 { return score(i, j) })
			}
			advOf, _ = matching.AssignCandidates(score, lists)
		case MethodRHParallel:
			lists = topk.ParallelSelectDepth(w.Inst.N, k, k+1, runtime.GOMAXPROCS(0), score)
			advOf, _ = matching.AssignCandidates(score, lists)
		case MethodH:
			advOf = matching.MaxWeightFunc(w.Inst.N, k, score).AdvOf
			lists = scanLists(w.Inst.N, k, score)
		case MethodLP:
			m := make([][]float64, w.Inst.N)
			for i := range m {
				m[i] = make([]float64, k)
				for j := 0; j < k; j++ {
					m[i][j] = score(i, j)
				}
			}
			res, err := lp.SolveAssignment(m)
			if err != nil {
				// The assignment LP is always feasible and bounded; an
				// error here is a solver bug worth crashing on.
				panic("strategy: assignment LP failed: " + err.Error())
			}
			w.LPStats += res.Iterations
			advOf = res.AdvOf
			lists = scanLists(w.Inst.N, k, score)
		default:
			panic("strategy: unknown method")
		}
	}

	out := &Outcome{
		Query:         q,
		AdvOf:         advOf,
		PricePerClick: make([]float64, k),
		Clicked:       make([]bool, k),
	}

	// Generalized second pricing: the winner of slot j pays, per
	// click, the highest competing score for that slot divided by his
	// own click probability — the amount that prices the slot at its
	// best alternative use — capped at his own bid (Section V's
	// "slight generalization of generalized second-pricing").
	assigned := make(map[int]bool, k)
	for _, i := range advOf {
		if i >= 0 {
			assigned[i] = true
		}
	}
	for j, i := range advOf {
		if i < 0 {
			continue
		}
		runner := 0.0
		for _, it := range lists[j] {
			if !assigned[it.ID] {
				runner = it.Score
				break
			}
		}
		price := runner / w.Inst.ClickProb[i][j]
		if bid := float64(w.Bid(i, q)); price > bid {
			price = bid
		}
		out.PricePerClick[j] = price
	}

	// User action: one uniform draw per slot (always k draws, so
	// worlds with equal click seeds stay aligned), a click when the
	// draw falls under the winner's click probability.
	var clickedWinners []int
	for j := 0; j < k; j++ {
		u := w.rng.Float64()
		i := advOf[j]
		if i < 0 || u >= w.Inst.ClickProb[i][j] {
			continue
		}
		out.Clicked[j] = true
		price := out.PricePerClick[j]
		out.Revenue += price
		w.acct.SpentTotal[i] += price
		w.acct.SpentKw[i][q] += price
		w.acct.GainedKw[i][q] += float64(w.Inst.Value[i][q])
		clickedWinners = append(clickedWinners, i)
	}

	if w.talu != nil {
		w.talu.afterAuction(t, clickedWinners)
	}
	return out
}

// scanLists materializes per-slot top-(k+1) candidate lists by a full
// scan — the pricing helper for the full-graph methods.
func scanLists(n, k int, score func(i, j int) float64) [][]topk.Item {
	lists := make([][]topk.Item, k)
	for j := 0; j < k; j++ {
		j := j
		lists[j] = topk.Select(n, k+1, func(i int) float64 { return score(i, j) })
	}
	return lists
}
