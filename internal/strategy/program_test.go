package strategy

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sqlmini"
	"repro/internal/table"
	"repro/internal/workload"
)

// The Figure 5 program in the sqlmini dialect (with the paper's
// line-11 typo corrected: the overspending branch compares with >).
const fig5Source = `
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi = ( SELECT MIN( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value = ( SELECT SUM( K.bid )
                FROM Keywords K
                WHERE K.relevance > 0.7
                  AND K.formula = Bids.formula );
}
`

// advertiserDB mirrors one advertiser of the simulation as a bidding
// program's private database.
type advertiserDB struct {
	db  *table.DB
	kw  *table.Table
	bid *table.Table
	qt  *table.Table
}

func newAdvertiserDB(t *testing.T, inst *workload.Instance, i int) *advertiserDB {
	t.Helper()
	db := table.NewDB()
	kw := table.New("Keywords",
		table.Column{Name: "text", Kind: table.String},
		table.Column{Name: "formula", Kind: table.String},
		table.Column{Name: "maxbid", Kind: table.Float},
		table.Column{Name: "roi", Kind: table.Float},
		table.Column{Name: "bid", Kind: table.Float},
		table.Column{Name: "relevance", Kind: table.Float},
	)
	for q := 0; q < inst.Keywords; q++ {
		kw.Insert(table.Row{
			table.S(fmt.Sprintf("kw%d", q)),
			table.S("Click"),
			table.F(float64(inst.Value[i][q])),
			table.F(1), // smoothed ROI with zero history
			table.F(float64(inst.InitialBid[i][q])),
			table.F(0),
		})
	}
	db.Add(kw)
	bids := table.New("Bids",
		table.Column{Name: "formula", Kind: table.String},
		table.Column{Name: "value", Kind: table.Float},
	)
	bids.Insert(table.Row{table.S("Click"), table.F(0)})
	db.Add(bids)
	qt := table.New("Query", table.Column{Name: "kw", Kind: table.String})
	db.Add(qt)
	db.SetScalar("targetSpendRate", table.F(float64(inst.Target[i])))

	prog, err := sqlmini.Compile(fig5Source)
	if err != nil {
		t.Fatalf("compile Figure 5: %v", err)
	}
	if err := prog.Install(db); err != nil {
		t.Fatalf("install Figure 5: %v", err)
	}
	return &advertiserDB{db: db, kw: kw, bid: bids, qt: qt}
}

// syncProviderState pushes the provider-maintained variables into the
// program's world before an auction: relevance of the query keyword,
// per-keyword ROI, amount spent, and time (Section II-B says the
// provider maintains these automatically for each program).
func (a *advertiserDB) syncProviderState(inst *workload.Instance, acct *Accounting, i, q int, t float64) {
	for kwIdx, row := range a.kw.Rows {
		rel := 0.0
		if kwIdx == q {
			rel = 1.0
		}
		row[5] = table.F(rel)
		row[3] = table.F(acct.ROIOf(i, kwIdx))
	}
	a.db.SetScalar("amtSpent", table.F(acct.SpentTotal[i]))
	a.db.SetScalar("time", table.F(t))
}

// TestNativeStrategyMatchesFig5Program runs a full explicit-engine
// world and, in lockstep, the interpreted Figure 5 SQL program for a
// sample of advertisers. After every auction the program's Keywords
// bids and its output Bids table must equal the native engine's bids
// exactly: the benchmarked native ROI strategy *is* the paper's
// program.
func TestNativeStrategyMatchesFig5Program(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	inst := workload.Generate(rng, 25, 3, 5)
	queries := inst.Queries(rand.New(rand.NewSource(23)), 400)
	w := NewWorld(inst, MethodRH, 42)

	sample := []int{0, 7, 24}
	dbs := make(map[int]*advertiserDB, len(sample))
	for _, i := range sample {
		dbs[i] = newAdvertiserDB(t, inst, i)
	}

	for a, q := range queries {
		tNow := float64(a + 1)
		// Fire each sampled program with the pre-auction provider state.
		for _, i := range sample {
			dbs[i].syncProviderState(inst, w.Accounting(), i, q, tNow)
			if err := dbs[i].qt.Insert(table.Row{table.S(fmt.Sprintf("kw%d", q))}); err != nil {
				t.Fatalf("auction %d: program run: %v", a, err)
			}
		}
		w.RunAuction(q)
		for _, i := range sample {
			for kwIdx, row := range dbs[i].kw.Rows {
				progBid := int(row[4].F)
				nativeBid := w.Bid(i, kwIdx)
				if progBid != nativeBid {
					t.Fatalf("auction %d advertiser %d kw %d: program bid %d, native bid %d",
						a, i, kwIdx, progBid, nativeBid)
				}
			}
			// The program's Bids table row for "Click" must equal the
			// query keyword's bid (relevance 1 > 0.7; others 0).
			if got, want := int(dbs[i].bid.Rows[0][1].F), w.Bid(i, q); got != want {
				t.Fatalf("auction %d advertiser %d: Bids.value %d, native %d", a, i, got, want)
			}
		}
	}
}
