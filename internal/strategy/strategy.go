// Package strategy implements the ROI-equalizing dynamic bidding
// strategy of Section II-C and the full auction simulation of the
// paper's evaluation (Section V): every bidder runs the heuristic of
// Figure 5; queries trigger bid updates; winner determination runs
// under one of the four evaluated methods (LP, H, RH, RHTALU); a
// generalized second-price rule charges advertisers who receive
// clicks; and the provider-maintained per-keyword ROI statistics feed
// back into the strategy.
//
// Two engines produce the bids each auction:
//
//   - the explicit engine evaluates every bidding program on every
//     auction (methods LP, H, RH);
//   - the TALU engine (threshold algorithm + logical updates,
//     Section IV) maintains per-keyword increment/decrement/constant
//     lists with shared adjustment variables and trigger queues, and
//     finds the per-slot top-k bidders with the threshold algorithm,
//     never touching most programs (method RHTALU).
//
// The two engines are exactly equivalent — a property test drives
// both over the same trace and demands identical bids, allocations,
// and charges.
package strategy

import (
	"math/rand"

	"repro/internal/workload"
)

// Method selects the winner-determination pipeline of Section V.
type Method int

// The four methods of Figure 12, plus the parallel-RH ablation.
const (
	// MethodLP solves the per-auction assignment LP with the simplex
	// method.
	MethodLP Method = iota
	// MethodH runs the Hungarian algorithm on the full bipartite graph.
	MethodH
	// MethodRH runs the reduced-graph algorithm of Section III-E.
	MethodRH
	// MethodRHTALU is RH plus the program-evaluation reductions of
	// Section IV (threshold algorithm + logical updates).
	MethodRHTALU
	// MethodRHParallel is RH with the tree-parallel top-k scan.
	MethodRHParallel
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodLP:
		return "LP"
	case MethodH:
		return "H"
	case MethodRH:
		return "RH"
	case MethodRHTALU:
		return "RHTALU"
	case MethodRHParallel:
		return "RH-parallel"
	default:
		return "Method(?)"
	}
}

// roi is the provider-maintained return-on-investment statistic for
// one (advertiser, keyword) pair: total value gained over total spend,
// add-one smoothed so it is defined before any spending occurs (the
// paper leaves the zero-spend case unspecified; smoothing gives every
// keyword the identical neutral ROI of 1 at the start, which the
// MAX/MIN selections of the Figure 5 program then treat as ties, as
// its SQL semantics dictate).
func roi(gained, spent float64) float64 { return (gained + 1) / (spent + 1) }

// spendStatus compares the advertiser's realized spending rate with
// the target: −1 under, 0 on target, +1 over.
func spendStatus(spentTotal float64, t float64, target int) int {
	rate := spentTotal / t
	switch {
	case rate < float64(target):
		return -1
	case rate > float64(target):
		return 1
	default:
		return 0
	}
}

// Accounting is the provider-maintained advertiser state (Section
// II-B notes amounts spent, budgets, and per-keyword ROI are
// maintained by the search provider for every program).
type Accounting struct {
	SpentTotal []float64   // per advertiser
	SpentKw    [][]float64 // per advertiser, keyword
	GainedKw   [][]float64 // per advertiser, keyword
}

func newAccounting(n, keywords int) *Accounting {
	a := &Accounting{
		SpentTotal: make([]float64, n),
		SpentKw:    make([][]float64, n),
		GainedKw:   make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		a.SpentKw[i] = make([]float64, keywords)
		a.GainedKw[i] = make([]float64, keywords)
	}
	return a
}

// roiOf returns the smoothed ROI of advertiser i on keyword q.
func (a *Accounting) roiOf(i, q int) float64 {
	return roi(a.GainedKw[i][q], a.SpentKw[i][q])
}

// roiRange returns the max and min smoothed ROI over advertiser i's
// keywords.
func (a *Accounting) roiRange(i int) (maxR, minR float64) {
	maxR, minR = a.roiOf(i, 0), a.roiOf(i, 0)
	for q := 1; q < len(a.SpentKw[i]); q++ {
		r := a.roiOf(i, q)
		if r > maxR {
			maxR = r
		}
		if r < minR {
			minR = r
		}
	}
	return maxR, minR
}

// modeConst, modeInc, modeDec name a bidder's current behavior for
// one keyword: what the Figure 5 program would do to that keyword's
// bid on a matching query.
const (
	modeConst = 0
	modeInc   = 1
	modeDec   = 2
)

// bidMode computes the behavior of bidder i for keyword q given the
// current bid: the direct transliteration of the Figure 5 guards.
func bidMode(inst *workload.Instance, acct *Accounting, i, q int, bid int, status int) int {
	switch status {
	case -1: // underspending: increment the max-ROI keyword if below max bid
		maxR, _ := acct.roiRange(i)
		if acct.roiOf(i, q) == maxR && bid < inst.Value[i][q] {
			return modeInc
		}
	case 1: // overspending: decrement the min-ROI keyword if above zero
		_, minR := acct.roiRange(i)
		if acct.roiOf(i, q) == minR && bid > 0 {
			return modeDec
		}
	}
	return modeConst
}

// Outcome reports one auction's results.
type Outcome struct {
	// Query is the keyword of this auction.
	Query int
	// AdvOf maps slot index to advertiser index or −1.
	AdvOf []int
	// PricePerClick is the GSP charge for each slot's winner.
	PricePerClick []float64
	// Clicked marks the slots whose ads were clicked.
	Clicked []bool
	// Revenue is the total amount charged this auction.
	Revenue float64
}

// World is one running auction market: an instance, the accounting
// state, and the bid engine for the chosen method. Distinct Worlds
// over the same instance, query stream, and click seed evolve
// identically (up to winner-determination ties), which is how the
// four methods are compared on equal footing.
type World struct {
	Inst   *workload.Instance
	Method Method

	t    int // auctions processed
	acct *Accounting
	rng  *rand.Rand // user click simulation

	ex   *explicitEngine
	talu *taluEngine

	// LPStats accumulates simplex iterations (method LP only).
	LPStats int
}

// NewWorld builds a fresh world. clickSeed drives the simulated user
// clicks; two worlds with equal instances and seeds see identical
// users.
func NewWorld(inst *workload.Instance, method Method, clickSeed int64) *World {
	w := &World{
		Inst:   inst,
		Method: method,
		acct:   newAccounting(inst.N, inst.Keywords),
		rng:    rand.New(rand.NewSource(clickSeed)),
	}
	if method == MethodRHTALU {
		w.talu = newTALUEngine(inst, w.acct)
	} else {
		w.ex = newExplicitEngine(inst)
	}
	return w
}

// Bid returns advertiser i's current bid for keyword q — used by the
// engine-equivalence tests.
func (w *World) Bid(i, q int) int {
	if w.talu != nil {
		return w.talu.bid(i, q)
	}
	return w.ex.bid[i][q]
}

// Accounting exposes the provider-maintained state (read-only use).
func (w *World) Accounting() *Accounting { return w.acct }

// Auctions returns the number of auctions processed.
func (w *World) Auctions() int { return w.t }

// ProgramEvaluations returns the cumulative number of per-advertiser
// strategy evaluations the world has performed. The explicit engine
// (LP, H, RH) runs every program on every auction — n·t evaluations —
// while the TALU engine re-evaluates a program only when it wins a
// click or one of its triggers fires (Section IV's point, made
// quantitative).
func (w *World) ProgramEvaluations() int64 {
	if w.talu != nil {
		return w.talu.recomputes
	}
	return int64(w.Inst.N) * int64(w.t)
}
