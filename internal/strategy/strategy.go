// Package strategy implements the ROI-equalizing dynamic bidding
// strategy of Section II-C and the full auction simulation of the
// paper's evaluation (Section V): every bidder runs the heuristic of
// Figure 5; queries trigger bid updates; winner determination runs
// under one of the four evaluated methods (LP, H, RH, RHTALU); a
// generalized second-price rule charges advertisers who receive
// clicks; and the provider-maintained per-keyword ROI statistics feed
// back into the strategy.
//
// Two engines produce the bids each auction:
//
//   - the explicit engine evaluates every bidding program on every
//     auction (methods LP, H, RH);
//   - the TALU engine (threshold algorithm + logical updates,
//     Section IV) maintains per-keyword increment/decrement/constant
//     lists with shared adjustment variables and trigger queues, and
//     finds the per-slot top-k bidders with the threshold algorithm,
//     never touching most programs (method RHTALU).
//
// The two engines are exactly equivalent — a property test drives
// both over the same trace and demands identical bids, allocations,
// and charges.
//
// The package is a thin sequential facade: the pipeline itself lives
// in internal/engine, whose Market type is the sequential unit of the
// concurrent sharded serving engine. A World is exactly one Market
// driven from a single goroutine; the facade exists so that the
// simulation-facing name and the long-standing World API survive the
// engine refactor unchanged, and so that the engine's
// sequential-equivalence tests have a canonical reference to compare
// against.
package strategy

import (
	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Method selects the winner-determination pipeline of Section V.
type Method = engine.Method

// The four methods of Figure 12, plus the parallel-RH ablation.
const (
	// MethodLP solves the per-auction assignment LP with the simplex
	// method.
	MethodLP = engine.MethodLP
	// MethodH runs the Hungarian algorithm on the full bipartite graph.
	MethodH = engine.MethodH
	// MethodRH runs the reduced-graph algorithm of Section III-E.
	MethodRH = engine.MethodRH
	// MethodRHTALU is RH plus the program-evaluation reductions of
	// Section IV (threshold algorithm + logical updates).
	MethodRHTALU = engine.MethodRHTALU
	// MethodRHParallel is RH with the tree-parallel top-k scan.
	MethodRHParallel = engine.MethodRHParallel
	// MethodHeavy is the Section III-F heavyweight path: 2^k pattern
	// enumeration through a reused core.HeavyDeterminer, with click
	// probabilities conditioned on the realized pattern.
	MethodHeavy = engine.MethodHeavy
)

// Pricing selects the payment rule (generalized second pricing or
// Vickrey opportunity costs).
type Pricing = engine.Pricing

// Payment rules.
const (
	// PricingGSP is the generalized second-price rule of Section V.
	PricingGSP = engine.PricingGSP
	// PricingVCG charges Vickrey opportunity costs via one
	// counterfactual winner-determination solve per winner.
	PricingVCG = engine.PricingVCG
)

// Outcome reports one auction's results.
type Outcome = engine.Outcome

// Accounting is the provider-maintained advertiser state (Section
// II-B): amounts spent and per-keyword spend/gain from which the
// smoothed ROI statistics derive.
type Accounting = engine.Accounting

// World is one running auction market — an engine.Market driven
// sequentially. RunAuction advances it one auction at a time;
// distinct Worlds over the same instance, query stream, and click
// seed evolve identically, which is how the four methods are compared
// on equal footing.
type World = engine.Market

// NewWorld builds a fresh world. clickSeed drives the simulated user
// clicks; two worlds with equal instances and seeds see identical
// users.
func NewWorld(inst *workload.Instance, method Method, clickSeed int64) *World {
	return engine.NewMarket(inst, method, clickSeed)
}

// NewWorldPriced is NewWorld with an explicit payment rule.
func NewWorldPriced(inst *workload.Instance, method Method, pricing Pricing, clickSeed int64) *World {
	return engine.NewMarketPriced(inst, method, pricing, clickSeed)
}

// NewWorldBudget is NewWorldPriced with budget enforcement: the world
// owns a single-lane budget.Ledger over inst.Budget (a sequential
// world serves every keyword from one market, so its one lane is the
// advertiser's global spend — cross-keyword budgets are exact here,
// with no snapshot staleness), and gated advertisers sit out auctions
// per the configured policy. Inspect the ledger via
// World.BudgetLane().Ledger().
func NewWorldBudget(inst *workload.Instance, method Method, pricing Pricing, clickSeed int64, cfg budget.Config) *World {
	led := budget.NewLedger(inst.N, 1, inst.Budget, cfg)
	return engine.NewMarketBudget(inst, method, pricing, clickSeed, led.Lane(0))
}

// WorldOpts bundles every world-construction knob — engine.MarketOpts
// under the simulation-facing name. The zero value of each field is
// its historical default.
type WorldOpts = engine.MarketOpts

// NewWorldOpts builds a world from an options bundle; the positional
// constructors above are thin wrappers over it. Use it to set
// HeavyParallelism (the MethodHeavy pattern-enumeration worker count)
// on a sequential world.
func NewWorldOpts(inst *workload.Instance, o WorldOpts) *World {
	return engine.NewMarketOpts(inst, o)
}
