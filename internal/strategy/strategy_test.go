package strategy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// runWorlds drives one world per method over the same instance,
// query stream, and click seed.
func runWorlds(t *testing.T, inst *workload.Instance, queries []int, methods []Method) map[Method][]*Outcome {
	t.Helper()
	out := make(map[Method][]*Outcome)
	for _, m := range methods {
		w := NewWorld(inst, m, 12345)
		var outcomes []*Outcome
		for _, q := range queries {
			outcomes = append(outcomes, w.RunAuction(q))
		}
		out[m] = outcomes
	}
	return out
}

// TestExplicitEnginesAgree: LP, H, and RH share the explicit bid
// engine, so their allocations' expected values — and hence the whole
// simulation trajectory — must coincide auction by auction.
func TestExplicitEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	inst := workload.Generate(rng, 40, 4, 5)
	queries := inst.Queries(rand.New(rand.NewSource(7)), 300)
	res := runWorlds(t, inst, queries, []Method{MethodLP, MethodH, MethodRH, MethodRHParallel})
	for a := 0; a < len(queries); a++ {
		lpO, hO, rhO, rpO := res[MethodLP][a], res[MethodH][a], res[MethodRH][a], res[MethodRHParallel][a]
		for j := range hO.AdvOf {
			if hO.AdvOf[j] != rhO.AdvOf[j] || hO.AdvOf[j] != lpO.AdvOf[j] || hO.AdvOf[j] != rpO.AdvOf[j] {
				t.Fatalf("auction %d slot %d: allocations diverge LP=%d H=%d RH=%d RHpar=%d",
					a, j, lpO.AdvOf[j], hO.AdvOf[j], rhO.AdvOf[j], rpO.AdvOf[j])
			}
		}
		if math.Abs(hO.Revenue-rhO.Revenue) > 1e-9 || math.Abs(hO.Revenue-lpO.Revenue) > 1e-9 {
			t.Fatalf("auction %d: revenue diverges LP=%g H=%g RH=%g", a, lpO.Revenue, hO.Revenue, rhO.Revenue)
		}
	}
}

// TestTALUEquivalence is the central Section IV correctness claim:
// the threshold-algorithm/logical-update engine must reproduce the
// explicit engine exactly — same allocations, same prices, same
// clicks, same revenue, and same bid trajectories — over long mixed
// traces, across several instance shapes.
func TestTALUEquivalence(t *testing.T) {
	shapes := []struct {
		n, k, kws, auctions int
		seed                int64
	}{
		{10, 2, 3, 400, 1},
		{50, 5, 10, 600, 2},
		{120, 15, 10, 400, 3},
		{30, 3, 1, 500, 4}, // single keyword: every auction hits the same lists
	}
	for _, s := range shapes {
		rng := rand.New(rand.NewSource(s.seed))
		inst := workload.Generate(rng, s.n, s.k, s.kws)
		queries := inst.Queries(rand.New(rand.NewSource(s.seed+100)), s.auctions)

		exW := NewWorld(inst, MethodRH, 999)
		taW := NewWorld(inst, MethodRHTALU, 999)
		for a, q := range queries {
			exO := exW.RunAuction(q)
			taO := taW.RunAuction(q)
			for j := range exO.AdvOf {
				if exO.AdvOf[j] != taO.AdvOf[j] {
					t.Fatalf("shape %+v auction %d slot %d: RH adv %d, RHTALU adv %d",
						s, a, j, exO.AdvOf[j], taO.AdvOf[j])
				}
				if math.Abs(exO.PricePerClick[j]-taO.PricePerClick[j]) > 1e-9 {
					t.Fatalf("shape %+v auction %d slot %d: price %g vs %g",
						s, a, j, exO.PricePerClick[j], taO.PricePerClick[j])
				}
				if exO.Clicked[j] != taO.Clicked[j] {
					t.Fatalf("shape %+v auction %d slot %d: click divergence", s, a, j)
				}
			}
			if math.Abs(exO.Revenue-taO.Revenue) > 1e-9 {
				t.Fatalf("shape %+v auction %d: revenue %g vs %g", s, a, exO.Revenue, taO.Revenue)
			}
			// Full bid-vector equality each auction.
			for i := 0; i < inst.N; i++ {
				for q2 := 0; q2 < inst.Keywords; q2++ {
					if eb, tb := exW.Bid(i, q2), taW.Bid(i, q2); eb != tb {
						t.Fatalf("shape %+v auction %d: bid[%d][%d] explicit %d, talu %d",
							s, a, i, q2, eb, tb)
					}
				}
			}
		}
	}
}

// TestBidsStayInBounds: bids never leave [0, value] under either
// engine (the Figure 5 guards).
func TestBidsStayInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	inst := workload.Generate(rng, 60, 5, 8)
	queries := inst.Queries(rand.New(rand.NewSource(11)), 800)
	for _, m := range []Method{MethodRH, MethodRHTALU} {
		w := NewWorld(inst, m, 5)
		for _, q := range queries {
			w.RunAuction(q)
			for i := 0; i < inst.N; i++ {
				b := w.Bid(i, q)
				if b < 0 || b > inst.Value[i][q] {
					t.Fatalf("%v: bid[%d][%d]=%d outside [0,%d]", m, i, q, b, inst.Value[i][q])
				}
			}
		}
	}
}

// TestPricingProperties: GSP charges never exceed the winner's bid,
// are non-negative, and revenue sums the clicked slots' prices.
func TestPricingProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	inst := workload.Generate(rng, 80, 6, 10)
	queries := inst.Queries(rand.New(rand.NewSource(13)), 400)
	w := NewWorld(inst, MethodRH, 77)
	for _, q := range queries {
		o := w.RunAuction(q)
		var sum float64
		for j, i := range o.AdvOf {
			if i < 0 {
				if o.PricePerClick[j] != 0 || o.Clicked[j] {
					t.Fatalf("empty slot %d has price/click", j)
				}
				continue
			}
			if o.PricePerClick[j] < 0 {
				t.Fatalf("negative price %g", o.PricePerClick[j])
			}
			if bid := float64(w.Bid(i, q)); o.PricePerClick[j] > bid+1e-9 {
				t.Fatalf("price %g exceeds bid %g", o.PricePerClick[j], bid)
			}
			if o.Clicked[j] {
				sum += o.PricePerClick[j]
			}
		}
		if math.Abs(sum-o.Revenue) > 1e-9 {
			t.Fatalf("revenue %g != clicked price sum %g", o.Revenue, sum)
		}
	}
}

// TestAccountingInvariants: total spend equals total revenue charged,
// and per-keyword spend sums to the total per advertiser.
func TestAccountingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	inst := workload.Generate(rng, 50, 4, 6)
	queries := inst.Queries(rand.New(rand.NewSource(17)), 500)
	w := NewWorld(inst, MethodRHTALU, 31)
	var revenue float64
	for _, q := range queries {
		revenue += w.RunAuction(q).Revenue
	}
	acct := w.Accounting()
	var spent float64
	for i := 0; i < inst.N; i++ {
		spent += acct.SpentTotal[i]
		var kwSum float64
		for q := 0; q < inst.Keywords; q++ {
			kwSum += acct.SpentKw[i][q]
		}
		if math.Abs(kwSum-acct.SpentTotal[i]) > 1e-6 {
			t.Fatalf("advertiser %d: keyword spend %g != total %g", i, kwSum, acct.SpentTotal[i])
		}
	}
	if math.Abs(spent-revenue) > 1e-6 {
		t.Fatalf("total spend %g != provider revenue %g", spent, revenue)
	}
	if w.Auctions() != len(queries) {
		t.Fatalf("auction count %d", w.Auctions())
	}
}

// TestBidsActuallyMove guards against a degenerate simulation where
// no bid ever changes (which would make the TALU equivalence test
// vacuous).
func TestBidsActuallyMove(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	inst := workload.Generate(rng, 30, 3, 4)
	w := NewWorld(inst, MethodRH, 7)
	start := make([][]int, inst.N)
	for i := range start {
		start[i] = make([]int, inst.Keywords)
		for q := range start[i] {
			start[i][q] = w.Bid(i, q)
		}
	}
	queries := inst.Queries(rand.New(rand.NewSource(19)), 300)
	for _, q := range queries {
		w.RunAuction(q)
	}
	changedUp, changedDown := 0, 0
	for i := range start {
		for q := range start[i] {
			d := w.Bid(i, q) - start[i][q]
			if d > 0 {
				changedUp++
			}
			if d < 0 {
				changedDown++
			}
		}
	}
	if changedUp == 0 || changedDown == 0 {
		t.Fatalf("degenerate dynamics: %d increments, %d decrements", changedUp, changedDown)
	}
}

func TestMethodStrings(t *testing.T) {
	for m, want := range map[Method]string{
		MethodLP: "LP", MethodH: "H", MethodRH: "RH",
		MethodRHTALU: "RHTALU", MethodRHParallel: "RH-parallel",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}

// TestTALUEquivalenceZipfQueries re-runs the engine-equivalence check
// under a heavily skewed query stream: one keyword dominates, so its
// trigger queue and group lists absorb nearly all the churn while the
// tail keywords go quiet — a regime the uniform stream never enters.
func TestTALUEquivalenceZipfQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	inst := workload.Generate(rng, 80, 6, 10)
	queries := inst.QueriesZipf(rand.New(rand.NewSource(19)), 700, 1.3)
	exW := NewWorld(inst, MethodRH, 555)
	taW := NewWorld(inst, MethodRHTALU, 555)
	for a, q := range queries {
		exO := exW.RunAuction(q)
		taO := taW.RunAuction(q)
		if math.Abs(exO.Revenue-taO.Revenue) > 1e-9 {
			t.Fatalf("auction %d (kw %d): revenue %g vs %g", a, q, exO.Revenue, taO.Revenue)
		}
		for j := range exO.AdvOf {
			if exO.AdvOf[j] != taO.AdvOf[j] {
				t.Fatalf("auction %d slot %d: %d vs %d", a, j, exO.AdvOf[j], taO.AdvOf[j])
			}
		}
	}
	for i := 0; i < inst.N; i++ {
		for q := 0; q < inst.Keywords; q++ {
			if exW.Bid(i, q) != taW.Bid(i, q) {
				t.Fatalf("bid[%d][%d]: %d vs %d", i, q, exW.Bid(i, q), taW.Bid(i, q))
			}
		}
	}
}

// TestTALUTouchesFewPrograms quantifies Section IV: over a long run,
// the TALU engine must evaluate orders of magnitude fewer programs
// than the explicit engine, while producing identical auctions (the
// equivalence tests above).
func TestTALUTouchesFewPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	inst := workload.Generate(rng, 2000, 15, 10)
	queries := inst.Queries(rand.New(rand.NewSource(23)), 1000)
	ex := NewWorld(inst, MethodRH, 3)
	ta := NewWorld(inst, MethodRHTALU, 3)
	for _, q := range queries {
		ex.RunAuction(q)
		ta.RunAuction(q)
	}
	exEvals, taEvals := ex.ProgramEvaluations(), ta.ProgramEvaluations()
	if exEvals != 2000*1000 {
		t.Fatalf("explicit engine evaluations %d, want n·t", exEvals)
	}
	if taEvals*10 > exEvals {
		t.Fatalf("TALU evaluated %d programs vs explicit %d; expected ≥10x reduction",
			taEvals, exEvals)
	}
	t.Logf("program evaluations: explicit %d, TALU %d (%.1fx reduction)",
		exEvals, taEvals, float64(exEvals)/float64(taEvals))
}
