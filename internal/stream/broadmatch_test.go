package stream

import (
	"math/rand"
	"testing"

	"repro/internal/broadmatch"
	"repro/internal/engine"
	"repro/internal/racetest"
	"repro/internal/workload"
)

// broadIdentity asserts the broad-match accounting identity after a
// drain: Submitted == Served + Shed + Unrouted + Overmatched, exact.
func broadIdentity(t *testing.T, label string, st *Stats) {
	t.Helper()
	if st.Submitted != st.Served+st.Shed+st.Unrouted+st.Overmatched {
		t.Fatalf("%s: broad identity broken: submitted %d != served %d + shed %d + unrouted %d + overmatched %d",
			label, st.Submitted, st.Served, st.Shed, st.Unrouted, st.Overmatched)
	}
	if st.Pending != 0 {
		t.Fatalf("%s: pending %d after drain", label, st.Pending)
	}
}

// TestBroadmatchNeutralMatchesExactRouter pins the off switch through
// the streaming layer: with neutral knobs (threshold 1, squash 1,
// reserve 0) a broad server's per-keyword outcome sequences are
// byte-identical to an exact-routing server fed the same text stream,
// across RH/TALU × shards 1/3 — and both accounting identities hold
// after the drain. Run under -race in CI's broadmatch equivalence
// step.
func TestBroadmatchNeutralMatchesExactRouter(t *testing.T) {
	for _, method := range []engine.Method{engine.MethodRH, engine.MethodRHTALU} {
		for _, shards := range []int{1, 3} {
			inst := workload.Generate(rand.New(rand.NewSource(51)), 70, 5, 7)
			names := workload.BigramKeywordNames(inst.Keywords)
			// Exact bigram names route identically in both modes
			// (relevance 1, a single admitted candidate); the junk
			// queries are unrouted in both.
			qrng := rand.New(rand.NewSource(52))
			texts := make([]string, 900)
			for i := range texts {
				if qrng.Intn(10) == 0 {
					texts[i] = "no such tokens"
				} else {
					texts[i] = names[qrng.Intn(inst.Keywords)]
				}
			}
			ecfg := engine.Config{Shards: shards, QueueDepth: 8, Method: method, ClickSeed: 19, KeywordNames: names}
			bcfg := ecfg
			bcfg.Broadmatch = broadmatch.Config{Enabled: true, Threshold: 1, Squash: 1, Seed: 61}

			sinkA, gotA := collectPerKeyword(inst.Keywords)
			exact := NewServer(inst, Config{Engine: ecfg, Sink: sinkA})
			for _, s := range texts {
				exact.SubmitText(s)
			}
			stA := exact.Close()

			sinkB, gotB := collectPerKeyword(inst.Keywords)
			broad := NewServer(inst, Config{Engine: bcfg, Sink: sinkB})
			for _, s := range texts {
				broad.SubmitText(s)
			}
			stB := broad.Close()

			label := method.String() + "/shards=" + string(rune('0'+shards))
			comparePerKeyword(t, label, gotB, gotA)
			if stA.Submitted != stA.Served+stA.Shed {
				t.Fatalf("%s: exact identity broken: %+v", label, stA)
			}
			broadIdentity(t, label, stB)
			if stB.Overmatched != 0 {
				t.Fatalf("%s: neutral broad match overmatched %d", label, stB.Overmatched)
			}
			if stA.Unrouted != stB.Unrouted || stA.Served != stB.Served ||
				stA.Revenue != stB.Revenue || stA.Clicks != stB.Clicks {
				t.Fatalf("%s: stats diverged: exact %+v, broad %+v", label, stA, stB)
			}
		}
	}
}

// broadStreamRun drives one seeded broad-match server over a
// deterministic text stream and returns its per-keyword outcomes and
// final stats.
func broadStreamRun(t *testing.T, method engine.Method, shards int) ([][]*engine.Outcome, *Stats) {
	t.Helper()
	inst := workload.Generate(rand.New(rand.NewSource(53)), 70, 5, 7)
	names := workload.BigramKeywordNames(inst.Keywords)
	ecfg := engine.Config{
		Shards: shards, QueueDepth: 16, Method: method, ClickSeed: 23,
		KeywordNames: names,
		Broadmatch:   broadmatch.Config{Enabled: true, Threshold: 0.4, Squash: 0.5, Seed: 71},
		Reserve:      2,
	}
	texts := workload.TextQueries(rand.New(rand.NewSource(54)), inst.Keywords, 1200, 3, 1.2)
	sink, got := collectPerKeyword(inst.Keywords)
	s := NewServer(inst, Config{Engine: ecfg, Sink: sink})
	for _, q := range texts {
		s.SubmitText(q)
	}
	return got, s.Close()
}

// TestBroadmatchReplayDeterminism pins the seeded-run contract: two
// servers with identical broad-match configuration over the identical
// Zipf text stream produce byte-identical per-keyword outcome
// sequences and identical counters — match draws are hashes, not
// shared RNG state, so concurrency cannot perturb them.
func TestBroadmatchReplayDeterminism(t *testing.T) {
	for _, method := range []engine.Method{engine.MethodRH, engine.MethodRHTALU} {
		gotA, stA := broadStreamRun(t, method, 3)
		gotB, stB := broadStreamRun(t, method, 3)
		comparePerKeyword(t, "replay/"+method.String(), gotB, gotA)
		broadIdentity(t, "replay/"+method.String(), stA)
		if stA.Submitted != stB.Submitted || stA.Served != stB.Served ||
			stA.Unrouted != stB.Unrouted || stA.Overmatched != stB.Overmatched ||
			stA.Revenue != stB.Revenue || stA.Clicks != stB.Clicks {
			t.Fatalf("replay/%v: counters diverged: %+v vs %+v", method, stA, stB)
		}
		if stA.Overmatched == 0 {
			t.Fatalf("replay/%v: broad stream never overmatched — threshold too tight to test fan-out", method)
		}
		// Shard count is a pure performance knob under broad match too:
		// the router resolves one winner before sharding, so per-keyword
		// sequences cannot depend on the shard topology. (Aggregate
		// Revenue is summed in shard order and may differ in the last
		// ulp; the per-keyword comparison is the byte-level contract.)
		gotC, stC := broadStreamRun(t, method, 1)
		comparePerKeyword(t, "shards/"+method.String(), gotC, gotA)
		if stC.Served != stA.Served || stC.Clicks != stA.Clicks || stC.Filled != stA.Filled {
			t.Fatalf("shards/%v: counters diverged across shard counts: %+v vs %+v", method, stC, stA)
		}
	}
}

// TestBroadmatchShedIdentity pins the accounting identity when the
// Shed policy actually drops queries: a deliberately tiny queue and a
// burst of submissions force sheds, and the drained identity must
// still balance exactly.
func TestBroadmatchShedIdentity(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(55)), 70, 5, 7)
	names := workload.BigramKeywordNames(inst.Keywords)
	ecfg := engine.Config{
		Shards: 2, QueueDepth: 2, Method: engine.MethodRH, ClickSeed: 29,
		KeywordNames: names,
		Broadmatch:   broadmatch.Config{Enabled: true, Threshold: 0.4, Squash: 0.5, Seed: 73},
	}
	texts := workload.TextQueries(rand.New(rand.NewSource(56)), inst.Keywords, 3000, 3, 1.2)
	s := NewServer(inst, Config{Engine: ecfg, Overload: Shed})
	shed := 0
	for _, q := range texts {
		if s.SubmitTextFunc(q, nil) == SubmitShed {
			shed++
		}
	}
	st := s.Close()
	broadIdentity(t, "shed", st)
	if int64(shed) != st.Shed {
		t.Fatalf("shed count mismatch: submit-side %d, stats %d", shed, st.Shed)
	}
	if st.Shed == 0 {
		t.Fatal("tiny queues never shed — the shed leg of the identity went untested")
	}
}

// TestBroadmatchSteadyStateAllocs pins the router-path allocation
// contract end to end: SubmitText through broad-match routing, the
// shard queue, the weighted auction, and the rolling window must not
// allocate once warm.
func TestBroadmatchSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	inst := workload.Generate(rand.New(rand.NewSource(57)), 300, 8, 6)
	names := workload.BigramKeywordNames(inst.Keywords)
	s := NewServer(inst, Config{
		Engine: engine.Config{
			Shards: 2, QueueDepth: 64, Method: engine.MethodRH, ClickSeed: 9,
			KeywordNames: names,
			Broadmatch:   broadmatch.Config{Enabled: true, Threshold: 0.4, Squash: 0.5, Seed: 81},
			Reserve:      3,
		},
		Window: 256,
	})
	texts := workload.TextQueries(rand.New(rand.NewSource(58)), inst.Keywords, 4096, 3, 1.2)
	for _, q := range texts[:2048] {
		s.SubmitText(q)
	}
	next := 2048
	allocs := testing.AllocsPerRun(1500, func() {
		s.SubmitText(texts[next%len(texts)])
		next++
	})
	st := s.Close()
	if allocs != 0 {
		t.Fatalf("steady-state broad-match submit allocates %.2f objects/op, want 0", allocs)
	}
	broadIdentity(t, "allocs", st)
}
