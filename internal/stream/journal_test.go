package stream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/workload"
)

// TestStreamBudgetResetEquivalence: a budget reset submitted mid-
// stream lands as an in-band fence, so the per-keyword outcome split
// is exact — everything submitted before ResetBudgets runs against
// the exhausted ledger, everything after against the fresh one, and
// the whole sequence is byte-identical to a batch engine that serves
// the same phases around an Engine.ResetBudgets call. Single shard
// and no periodic flusher: budget gating reads boundedly-stale
// cross-lane publishes, so byte-level equivalence needs one total
// order on both sides. The streamed server journals throughout;
// recovery after the drain must land on the post-reset epoch with
// bitwise lane totals.
func TestStreamBudgetResetEquivalence(t *testing.T) {
	inst := budgetedInstance(81, 40, 4, 5, 50)
	phase1 := inst.Queries(rand.New(rand.NewSource(82)), 1500)
	phase2 := inst.Queries(rand.New(rand.NewSource(83)), 700)
	ecfg := engine.Config{Shards: 1, QueueDepth: 8, Method: engine.MethodRHTALU, ClickSeed: 21,
		Budget: budget.Config{Policy: budget.PolicyHard, RefreshEvery: 4}}

	// Batch reference: serve, reset, serve again.
	ref := engine.New(inst, ecfg)
	refOuts1, _ := ref.ServeOutcomes(phase1)
	if _, preExhausted, _ := ref.Ledger().Totals(); preExhausted == 0 {
		t.Fatal("phase 1 exhausted nobody — the reset fence would be a no-op")
	}
	if ref.ResetBudgets() == nil {
		t.Fatal("reference ResetBudgets returned nil with budgets on")
	}
	refOuts2, _ := ref.ServeOutcomes(phase2)
	ref.Close()
	want := make([][]*engine.Outcome, inst.Keywords)
	for _, o := range append(refOuts1, refOuts2...) {
		want[o.Query] = append(want[o.Query], o)
	}

	dir := t.TempDir()
	w, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jcfg := ecfg
	jcfg.Journal = w
	sink, got := collectPerKeyword(inst.Keywords)
	s := NewServer(inst, Config{Engine: jcfg, Sink: sink})
	for _, q := range phase1 {
		s.Submit(q)
	}
	if err := s.ResetBudgets(); err != nil {
		t.Fatal(err)
	}
	for _, q := range phase2 {
		s.Submit(q)
	}
	st := s.Close()
	if st.Served != int64(len(phase1)+len(phase2)) {
		t.Fatalf("served %d of %d", st.Served, len(phase1)+len(phase2))
	}
	comparePerKeyword(t, "budget-reset", got, want)

	// The drain flushed the journal; recovery is the post-reset epoch.
	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CorruptOffset != -1 {
		t.Fatalf("clean drain recovered corrupt at %d (%s)", rec.CorruptOffset, rec.CorruptReason)
	}
	if rec.State.Epoch != 2 {
		t.Fatalf("recovered epoch %d, want 2 (boot + reset)", rec.State.Epoch)
	}
	led := s.Engine().Ledger()
	for i := 0; i < inst.N; i++ {
		if math.Float64bits(rec.State.Spent(i)) != math.Float64bits(led.ExactSpent(i)) {
			t.Fatalf("advertiser %d: recovered %v != post-reset ledger %v",
				i, rec.State.Spent(i), led.ExactSpent(i))
		}
	}
}

// TestStreamResetBudgetsErrors: the reset call fails cleanly on a
// budget-less server and on a closed one.
func TestStreamResetBudgetsErrors(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(84)), 20, 3, 4)
	s := NewServer(inst, Config{Engine: engine.Config{Shards: 2, ClickSeed: 1}})
	if err := s.ResetBudgets(); err == nil {
		t.Fatal("ResetBudgets succeeded without budgets")
	}
	s.Close()
	if err := s.ResetBudgets(); err == nil {
		t.Fatal("ResetBudgets succeeded on a closed server")
	}
}

// TestStreamCloseIdempotentJournal is TestStreamCloseEmpty's journaled
// sibling: the first Close drains, flushes the lanes' batches, and
// closes the journal; the second Close is a no-op that returns the
// same snapshot and appends nothing further. The engine owns the
// writer, so an extra caller-side Close is also a nil-error no-op.
func TestStreamCloseIdempotentJournal(t *testing.T) {
	inst := budgetedInstance(85, 30, 4, 5, 60)
	dir := t.TempDir()
	w, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(inst, Config{Engine: engine.Config{Shards: 2, QueueDepth: 8,
		Method: engine.MethodRH, ClickSeed: 3, Journal: w,
		Budget: budget.Config{Policy: budget.PolicyHard, RefreshEvery: 8}}})
	for _, q := range inst.Queries(rand.New(rand.NewSource(86)), 900) {
		s.Submit(q)
	}
	st := s.Close()
	records := w.Stats().Records
	if records == 0 {
		t.Fatal("drained server journaled nothing")
	}
	if again := s.Close(); again != st {
		t.Fatal("second Close returned a different snapshot")
	}
	if got := w.Stats().Records; got != records {
		t.Fatalf("second Close appended records: %d -> %d", records, got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("extra writer Close after the engine's: %v", err)
	}
	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	led := s.Engine().Ledger()
	for i := 0; i < inst.N; i++ {
		if math.Float64bits(rec.State.Spent(i)) != math.Float64bits(led.ExactSpent(i)) {
			t.Fatalf("advertiser %d: recovered %v != drained ledger %v",
				i, rec.State.Spent(i), led.ExactSpent(i))
		}
	}
}
