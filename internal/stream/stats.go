package stream

import (
	"time"
)

// Stats is one snapshot of a streaming server — taken live by Stats()
// or flushed final by Close(). Unlike the batch engine.Stats, counts
// are cumulative over the server's whole life. Since PR 10 every
// figure here is a view over the engine's telemetry registry
// (engine.Metrics): the counters read the same per-shard lanes the
// serving path writes, and the latency percentiles are quantiles of
// the lifetime latency histogram. The view preserves the drained
// accounting identities bit for bit — see TestStatsViewMatchesRegistry.
type Stats struct {
	// Submitted counts every query accepted by Submit/SubmitText into
	// the admission stage: the ones served plus the ones shed plus the
	// ones still queued. After Close the queues are drained, so
	// Submitted == Served + Shed exactly.
	Submitted int64
	// Served is the number of auctions completed.
	Served int64
	// Shed counts queries dropped by the Shed overload policy, per the
	// admission contract: counted at the moment of rejection, never
	// silently lost.
	Shed int64
	// Pending is Submitted − Served − Shed (under broad match also
	// minus Unrouted and Overmatched): queries sitting in shard
	// queues at snapshot time (always 0 in a Close flush).
	Pending int64
	// Unrouted counts SubmitText queries that matched no catalog
	// keyword; they never enter a queue. Under exact routing they are
	// not in Submitted (the historical identity Submitted == Served +
	// Shed); under broad match every text query is an admission unit,
	// so Unrouted is inside Submitted and the drained identity becomes
	// Submitted == Served + Shed + Unrouted + Overmatched.
	Unrouted int64
	// Overmatched counts broad-match candidates that matched a query
	// but lost the impression to a higher-relevance market — matched
	// but unserved, inside Submitted. Always 0 under exact routing.
	Overmatched int64

	// Revenue, Clicks, Filled, and TotalSlots aggregate the served
	// auctions, exactly as the batch engine counts them.
	Revenue    float64
	Clicks     int
	Filled     int
	TotalSlots int

	// Epoch counts churn fences published; each shard applies its
	// fence at its next auction boundary, so a live snapshot may show
	// PerShard entries still behind Epoch. After Close every shard has
	// drained its fences and all agree with Epoch. Advertisers is the
	// published (post-fence) population size.
	Epoch       int
	Advertisers int

	// Budget counters, populated only when the engine runs a budget
	// policy; they read the published ledger snapshot (the current
	// churn epoch's ledger), so live figures trail true spend by the
	// lanes' unpublished windows and are exact after a drain.
	// BudgetSpent is total published spend, BudgetExhausted the number
	// of budgeted advertisers at or over their cap, and BudgetDenied
	// the cumulative published count of gate denials (one per
	// consulted advertiser-auction pair that was blocked).
	BudgetSpent     float64
	BudgetExhausted int
	BudgetDenied    int64

	// Elapsed spans server start to this snapshot (to Close for the
	// final flush); Throughput is lifetime Served/Elapsed.
	Elapsed    time.Duration
	Throughput float64

	// WindowThroughput summarizes the rolling window: completion rate
	// over the most recent Window auctions per shard, bounded by
	// WindowAge. The latency percentiles are quantiles of the engine's
	// lifetime latency histogram (obs.Histogram, 32 sub-buckets per
	// octave): each is a bucket upper bound, so the reported value is
	// within 3.2% above the true quantile. Max is tracked exactly.
	WindowThroughput   float64
	P50, P95, P99, Max time.Duration

	// PerShard breaks the aggregate down by worker shard.
	PerShard []ShardStats
}

// ShardStats is one shard's slice of a snapshot.
type ShardStats struct {
	Served int
	Shed   int64
	Queued int // queue length at snapshot time
	Epoch  int
}

// window is a fixed-size ring of recent auction completion timestamps,
// owned by one shard worker and read under the shard's stats lock. It
// backs WindowThroughput only; latencies go to the engine's telemetry
// histogram, which is where the percentiles come from. Writing is one
// array store and one increment: nothing on the hot path allocates or
// contends beyond the shard's own lock.
type window struct {
	done []int64 // completion time, unix nanos
	n    int64   // samples ever written
}

func newWindow(size int) *window {
	return &window{done: make([]int64, size)}
}

func (w *window) add(done int64) {
	w.done[w.n%int64(len(w.done))] = done
	w.n++
}

// count returns the number of valid samples in the ring.
func (w *window) count() int {
	if w.n < int64(len(w.done)) {
		return int(w.n)
	}
	return len(w.done)
}

// appendTo copies the valid samples into the destination slice.
func (w *window) appendTo(done []int64) []int64 {
	return append(done, w.done[:w.count()]...)
}

// summarize fills a snapshot's window throughput from the merged
// per-shard completion stamps. Samples completed before cutoff (unix
// nanos) are discarded first: a shard left cold by skewed traffic
// retains arbitrarily old ring entries, and "rolling" must mean
// recent, not merely last-N-per-shard.
func (st *Stats) summarize(done []int64, cutoff int64) {
	w := 0
	for _, d := range done {
		if d >= cutoff {
			done[w] = d
			w++
		}
	}
	done = done[:w]
	if len(done) < 2 {
		return
	}
	lo, hi := done[0], done[0]
	for _, d := range done[1:] {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi > lo {
		st.WindowThroughput = float64(len(done)-1) / (time.Duration(hi - lo)).Seconds()
	}
}
