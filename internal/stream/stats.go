package stream

import (
	"time"

	"repro/internal/engine"
)

// Stats is one snapshot of a streaming server — taken live by Stats()
// or flushed final by Close(). Unlike the batch engine.Stats, counts
// are cumulative over the server's whole life and the latency and
// throughput figures come from a rolling window of the most recent
// auctions, which is what a long-running server's operator actually
// watches.
type Stats struct {
	// Submitted counts every query accepted by Submit/SubmitText into
	// the admission stage: the ones served plus the ones shed plus the
	// ones still queued. After Close the queues are drained, so
	// Submitted == Served + Shed exactly.
	Submitted int64
	// Served is the number of auctions completed.
	Served int64
	// Shed counts queries dropped by the Shed overload policy, per the
	// admission contract: counted at the moment of rejection, never
	// silently lost.
	Shed int64
	// Pending is Submitted − Served − Shed (under broad match also
	// minus Unrouted and Overmatched): queries sitting in shard
	// queues at snapshot time (always 0 in a Close flush).
	Pending int64
	// Unrouted counts SubmitText queries that matched no catalog
	// keyword; they never enter a queue. Under exact routing they are
	// not in Submitted (the historical identity Submitted == Served +
	// Shed); under broad match every text query is an admission unit,
	// so Unrouted is inside Submitted and the drained identity becomes
	// Submitted == Served + Shed + Unrouted + Overmatched.
	Unrouted int64
	// Overmatched counts broad-match candidates that matched a query
	// but lost the impression to a higher-relevance market — matched
	// but unserved, inside Submitted. Always 0 under exact routing.
	Overmatched int64

	// Revenue, Clicks, Filled, and TotalSlots aggregate the served
	// auctions, exactly as the batch engine counts them.
	Revenue    float64
	Clicks     int
	Filled     int
	TotalSlots int

	// Epoch counts churn fences published; each shard applies its
	// fence at its next auction boundary, so a live snapshot may show
	// PerShard entries still behind Epoch. After Close every shard has
	// drained its fences and all agree with Epoch. Advertisers is the
	// published (post-fence) population size.
	Epoch       int
	Advertisers int

	// Budget counters, populated only when the engine runs a budget
	// policy; they read the published ledger snapshot (the current
	// churn epoch's ledger), so live figures trail true spend by the
	// lanes' unpublished windows and are exact after a drain.
	// BudgetSpent is total published spend, BudgetExhausted the number
	// of budgeted advertisers at or over their cap, and BudgetDenied
	// the cumulative published count of gate denials (one per
	// consulted advertiser-auction pair that was blocked).
	BudgetSpent     float64
	BudgetExhausted int
	BudgetDenied    int64

	// Elapsed spans server start to this snapshot (to Close for the
	// final flush); Throughput is lifetime Served/Elapsed.
	Elapsed    time.Duration
	Throughput float64

	// WindowThroughput and the percentiles summarize the rolling
	// window: the most recent Window auctions per shard.
	WindowThroughput   float64
	P50, P95, P99, Max time.Duration

	// PerShard breaks the aggregate down by worker shard.
	PerShard []ShardStats
}

// ShardStats is one shard's slice of a snapshot.
type ShardStats struct {
	Served int
	Shed   int64
	Queued int // queue length at snapshot time
	Epoch  int
}

// window is a fixed-size ring of recent auction samples — completion
// timestamp and service latency — owned by one shard worker and read
// under the shard's stats lock. Writing is two array stores and one
// increment: nothing on the hot path allocates or contends beyond the
// shard's own lock.
type window struct {
	done []int64 // completion time, unix nanos
	lat  []int64 // service latency, nanos
	n    int64   // samples ever written
}

func newWindow(size int) *window {
	return &window{done: make([]int64, size), lat: make([]int64, size)}
}

func (w *window) add(done, lat int64) {
	i := w.n % int64(len(w.lat))
	w.done[i] = done
	w.lat[i] = lat
	w.n++
}

// count returns the number of valid samples in the ring.
func (w *window) count() int {
	if w.n < int64(len(w.lat)) {
		return int(w.n)
	}
	return len(w.lat)
}

// appendTo copies the valid samples into the two destination slices.
func (w *window) appendTo(done, lat []int64) ([]int64, []int64) {
	c := w.count()
	return append(done, w.done[:c]...), append(lat, w.lat[:c]...)
}

// summarize fills a snapshot's rolling-window figures from the merged
// per-shard samples: percentiles over the latencies (the engine's
// shared convention), and window throughput from the completion
// -timestamp span. Samples completed before cutoff (unix nanos) are
// discarded first: a shard left cold by skewed traffic retains
// arbitrarily old ring entries, and "rolling" must mean recent, not
// merely last-N-per-shard.
func (st *Stats) summarize(done, lat []int64, cutoff int64) {
	w := 0
	for i, d := range done {
		if d >= cutoff {
			done[w], lat[w] = d, lat[i]
			w++
		}
	}
	done, lat = done[:w], lat[:w]
	if len(lat) == 0 {
		return
	}
	st.P50, st.P95, st.P99, st.Max = engine.SummarizeLatencies(lat)

	lo, hi := done[0], done[0]
	for _, d := range done[1:] {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi > lo && len(done) > 1 {
		st.WindowThroughput = float64(len(done)-1) / (time.Duration(hi - lo)).Seconds()
	}
}
