// Package stream is the open-world serving layer: a long-running
// Server wrapping engine.Engine that turns the closed-batch Serve
// model into continuous ingestion — the system the paper's premise
// (§I, §V: queries and budgets arrive over time against an evolving
// advertiser base) actually calls for, and the shape Feldman &
// Muthukrishnan's survey frames sponsored search as.
//
// # Worker model
//
// Where Engine.Serve spins up goroutines per batch, a Server starts
// one persistent worker per engine shard at construction, each
// draining a bounded channel of query items for the keywords that
// shard owns. Submit routes a keyword query to its shard's queue;
// SubmitText routes free text through the engine's keyword index
// first. Per-keyword FIFO order — and with it the engine's sequential
// -equivalence contract — is preserved exactly as in batch mode,
// because a keyword still lives on exactly one shard.
//
// # Admission control
//
// The queues are bounded, and Config.Overload picks what saturation
// means: Block (backpressure — Submit waits for space, nothing is
// ever dropped) or Shed (Submit never blocks — a query that finds its
// shard's queue full is rejected immediately and counted in that
// shard's shed tally). Shed queries are accounted, never silently
// lost: after Close, Submitted == Served + Shed exactly.
//
// # Live churn
//
// AddAdvertiser and RemoveAdvertiser change the population while the
// server runs. A churn builds the post-churn workload.Instance and
// enqueues an epoch fence in-band into every shard's queue; each
// worker applies the fence between auctions (never tearing one) by
// rebuilding its markets over the new instance via
// engine.RebuildShard. Because a rebuilt market is exactly what a
// fresh engine.New over the post-churn instance would build, the
// server's post-fence outcomes are byte-identical to a freshly
// constructed engine serving the same per-keyword subsequences — the
// contract the churn equivalence test pins under -race. Queries
// submitted before a churn call run against the old population,
// queries after it against the new one, per shard, in submission
// order.
//
// # Budget durability
//
// With a journal configured (Config.Engine.Journal), budget spend
// survives the process: lanes batch their charges and flush on every
// publish trigger — the count-based refresh, the BudgetFlush time
// fences, and drain — so journal staleness obeys the same K·R·P bound
// as snapshot staleness. Churn rebuilds and ResetBudgets begin fresh
// journal epochs, and Close flushes and closes the journal exactly
// once (Close is idempotent). ResetBudgets is the "next day"
// operation: a fresh ledger re-admits exhausted advertisers through
// in-band fences while bid state continues undisturbed.
//
// # Drain
//
// Close stops intake (subsequent Submits are rejected without being
// counted), drains every queue to empty, joins the workers, and
// flushes the final Stats snapshot — rolling-window p50/p95/p99
// latency and throughput over the last Config.Window auctions per
// shard, lifetime totals, and the per-shard breakdown.
package stream

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Policy selects what a full shard queue means to Submit.
type Policy int

const (
	// Block applies backpressure: Submit waits for queue space; no
	// query is ever dropped.
	Block Policy = iota
	// Shed keeps the submitter wait-free: a query arriving at a full
	// queue is dropped and counted in Stats.Shed.
	Shed
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Shed:
		return "shed"
	default:
		return "Policy(?)"
	}
}

// Config tunes a streaming server.
type Config struct {
	// Engine configures the wrapped serving engine: shards, per-shard
	// queue depth, winner-determination method, payment rule, click
	// seed, and keyword names for text routing.
	Engine engine.Config
	// Overload picks the admission policy at queue saturation
	// (default Block).
	Overload Policy
	// Window is the per-shard rolling-window size, in auctions, behind
	// the latency percentiles and window throughput (default 1024).
	Window int
	// WindowAge bounds the age of rolling-window samples: auctions
	// completed longer ago than this are excluded from the window
	// percentiles and throughput (default 10s). Without it, a shard
	// left cold by skewed traffic would contribute arbitrarily old
	// samples and drag the "recent" figures toward history. Lifetime
	// totals are unaffected.
	WindowAge time.Duration
	// BudgetFlush is the period of the time-based budget flush: every
	// this often an in-band flush fence is offered to each shard
	// queue, and the serving worker publishes its markets' unpublished
	// spend into the shared ledger snapshot at its next auction
	// boundary — bounding snapshot staleness by wall clock even on
	// shards whose keywords see little traffic (the auction-count
	// refresh alone never fires there). Only meaningful when the
	// engine's budget policy is enabled; default 250ms.
	BudgetFlush time.Duration
	// Sink, when non-nil, observes every auction outcome on the
	// serving shard's goroutine. The outcome is owned by the keyword's
	// market and valid only for the duration of the call; Clone it to
	// retain. The callback must not call back into the Server.
	Sink func(*engine.Outcome)
}

// itemKind tags a shard-queue entry.
type itemKind uint8

const (
	itemQuery itemKind = iota
	itemChurn
	itemFlush
	itemReset
)

// Fence-counter lanes (ssa_stream_fences_total).
const (
	fenceChurn = iota
	fenceFlush
	fenceReset
)

// item is one shard-queue entry: a keyword query, an epoch fence
// carrying the post-churn population and its fresh budget ledger, a
// budget flush fence, or a budget-reset fence carrying the fresh
// ledger that re-admits exhausted advertisers. A query item may carry
// a per-query completion callback (SubmitFunc) invoked on the shard
// goroutine with the auction's outcome.
type item struct {
	kind  itemKind
	q     int
	epoch int
	// rel and w are the query's broad-match relevance and squashed
	// pricing weight (both 1 for keyword queries and exact-routed
	// text — the byte-identical path).
	rel, w float64
	inst   *workload.Instance
	led    *budget.Ledger
	fn     func(*engine.Outcome)
}

// shard is one persistent worker's state: its feed queue and the
// worker-side window ring and epoch guarded by mu (locked briefly per
// auction; Stats snapshots under the same lock). Serving counts live
// in the engine's telemetry lanes (one lane per shard), shed counts in
// the server's shed counter lanes.
type shard struct {
	id int
	ch chan item

	mu    sync.Mutex
	epoch int
	win   *window
}

// Server is the long-running streaming front end. Construct with
// NewServer; it is live immediately. Submit/SubmitText may be called
// from any goroutine; churn and Close may run concurrently with
// submission (ordering between concurrent callers is the callers'
// own).
type Server struct {
	eng      *engine.Engine
	cfg      Config
	keywords int // catalog size; immutable (only advertisers churn)
	shards   []*shard
	wg       sync.WaitGroup
	start    time.Time

	// Admission and fence counters, registered into the engine's
	// telemetry registry at construction (Stats is a view over them;
	// the wait-free lane writes replace the pre-PR-10 atomics).
	// mShed has one lane per shard; mFences one lane per fence kind
	// (churn, flush, reset), counted as each worker applies them.
	mSubmitted   *obs.Counter
	mUnrouted    *obs.Counter
	mOvermatched *obs.Counter
	mShed        *obs.Counter
	mFences      *obs.Counter
	lat          *obs.Histogram

	// mu guards the admission gate (closed) and the churn state
	// (inst, epoch); Submit holds it shared, churn and Close exclusive.
	// Critically, no blocking channel send ever happens under an
	// exclusive hold of mu, so Shed-policy Submit stays wait-free even
	// while a churn or Close is in progress.
	mu     sync.RWMutex
	inst   *workload.Instance
	epoch  int
	closed bool

	// churnMu serializes the fence-publication phase of churn, the
	// budget flusher's fence offers, and Close's queue-closing against
	// each other, outside mu: fences for successive epochs land in
	// every shard queue in epoch order, and a queue is never closed
	// mid-publication. Lock order: churnMu before mu.
	churnMu sync.Mutex

	// flushStop ends the periodic budget flusher (closed once, in
	// Close); nil when the flusher never started.
	flushStop chan struct{}

	closeOnce sync.Once
	closedAt  time.Time
	final     *Stats
}

// NewServer builds a streaming server over inst and starts its
// persistent shard workers.
func NewServer(inst *workload.Instance, cfg Config) *Server {
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	if cfg.WindowAge <= 0 {
		cfg.WindowAge = 10 * time.Second
	}
	s := &Server{
		eng:      engine.New(inst, cfg.Engine),
		cfg:      cfg,
		keywords: inst.Keywords,
		inst:     inst,
		start:    time.Now(),
	}
	reg := s.eng.Metrics().Registry
	s.mSubmitted = reg.Counter("ssa_stream_submitted_total",
		"queries accepted by the admission stage", 1)
	s.mUnrouted = reg.Counter("ssa_stream_unrouted_total",
		"text queries that matched no catalog keyword", 1)
	s.mOvermatched = reg.Counter("ssa_stream_overmatched_total",
		"broad-match candidates that lost the impression", 1)
	s.mShed = reg.Counter("ssa_stream_shed_total",
		"queries dropped by the Shed overload policy", s.eng.Shards()).
		RenderLanes("shard", nil)
	s.mFences = reg.Counter("ssa_stream_fences_total",
		"control fences applied at auction boundaries", 3).
		RenderLanes("kind", []string{"churn", "flush", "reset"})
	s.lat = s.eng.Metrics().Latency
	s.shards = make([]*shard, s.eng.Shards())
	for i := range s.shards {
		s.shards[i] = &shard{
			id:  i,
			ch:  make(chan item, s.eng.QueueDepth()),
			win: newWindow(cfg.Window),
		}
		s.wg.Add(1)
		go s.worker(s.shards[i])
	}
	if s.eng.Ledger() != nil {
		d := cfg.BudgetFlush
		if d <= 0 {
			d = 250 * time.Millisecond
		}
		s.flushStop = make(chan struct{})
		s.wg.Add(1)
		go s.budgetFlusher(d)
	}
	return s
}

// budgetFlusher periodically offers an in-band flush fence to every
// shard queue, bounding budget-snapshot staleness by wall clock. The
// offers are non-blocking: a saturated queue misses a round (its
// backlog of auctions is about to publish on the count-based refresh
// anyway) rather than wedging the flusher. churnMu excludes Close's
// queue-closing, so a fence is never sent on a closed channel.
func (s *Server) budgetFlusher(period time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-ticker.C:
		}
		s.churnMu.Lock()
		s.mu.RLock()
		closed := s.closed
		s.mu.RUnlock()
		if closed {
			s.churnMu.Unlock()
			return
		}
		for _, sh := range s.shards {
			select {
			case sh.ch <- item{kind: itemFlush}:
			default:
			}
		}
		s.churnMu.Unlock()
	}
}

// worker is one shard's persistent serving loop: queries run through
// the engine's shared per-auction step (engine.ServeOne), epoch
// fences rebuild the shard's markets between auctions. Exits when the
// queue is closed and drained.
func (s *Server) worker(sh *shard) {
	defer s.wg.Done()
	// The auction itself runs outside sh.mu — this goroutine is the
	// shard's sole runner, so only the window publication needs the
	// lock (one ring store). A Stats snapshot therefore never waits
	// behind an in-flight auction, and a slow auction (heavy+VCG is
	// ~30ms) never holds snapshots hostage. Serving totals go to the
	// engine's telemetry lanes inside ServeOneWeighted; the latency
	// lands in the shared histogram — both wait-free.
	var tot engine.Totals
	for it := range sh.ch {
		switch it.kind {
		case itemChurn:
			s.eng.RebuildShard(sh.id, it.inst, it.led)
			s.mFences.Inc(fenceChurn)
			sh.mu.Lock()
			sh.epoch = it.epoch
			sh.mu.Unlock()
			continue
		case itemFlush:
			s.eng.FlushShard(sh.id)
			s.mFences.Inc(fenceFlush)
			continue
		case itemReset:
			s.eng.ResetShardBudgets(sh.id, it.led)
			s.mFences.Inc(fenceReset)
			sh.mu.Lock()
			sh.epoch = it.epoch
			sh.mu.Unlock()
			continue
		}
		t0 := time.Now()
		out := s.eng.ServeOneWeighted(it.q, it.rel, it.w, &tot)
		now := time.Now()
		s.lat.Record(int64(now.Sub(t0)))
		sh.mu.Lock()
		sh.win.add(now.UnixNano())
		sh.mu.Unlock()
		if it.fn != nil {
			it.fn(out)
		}
		if s.cfg.Sink != nil {
			s.cfg.Sink(out)
		}
	}
	// Drain flush: the queue is closed and empty, so this is the
	// shard's final word — after every worker exits, the published
	// ledger snapshot equals the exact per-market totals.
	s.eng.FlushShard(sh.id)
}

// SubmitResult classifies how SubmitFunc (and SubmitTextFunc)
// disposed of a query.
type SubmitResult uint8

const (
	// SubmitQueued: the query was admitted and will be served; its
	// callback (if any) will run exactly once. Counted in
	// Stats.Submitted.
	SubmitQueued SubmitResult = iota
	// SubmitShed: Shed policy and a full shard queue — the query was
	// dropped and counted in Stats.Submitted and Stats.Shed; the
	// callback never runs.
	SubmitShed
	// SubmitClosed: the server is closed; nothing was counted and the
	// callback never runs.
	SubmitClosed
	// SubmitUnrouted (SubmitTextFunc only): the text matched no
	// catalog keyword — counted in Stats.Unrouted, never queued.
	// Under broad match it is additionally counted in
	// Stats.Submitted (every broad query is an admission unit).
	SubmitUnrouted
)

// Submit offers one keyword query for service. It reports true when
// the query was queued (it will be served), false when it was shed
// (Shed policy, full queue — counted in Stats.Shed) or the server is
// closed (not counted at all). Under Block it waits for queue space
// and, on an open server, always returns true.
func (s *Server) Submit(q int) bool {
	return s.SubmitFunc(q, nil) == SubmitQueued
}

// SubmitFunc offers one keyword query for service with a per-query
// completion callback: when the result is SubmitQueued, fn (if
// non-nil) is invoked exactly once with the auction's outcome, on the
// serving shard's goroutine, after the shard's stats are updated and
// before Config.Sink. The outcome is owned by the keyword's market
// and valid only for the duration of the call; Clone it to retain.
// fn must not call back into the Server. Admission accounting is
// identical to Submit — Submitted counts SubmitQueued and SubmitShed,
// Shed counts SubmitShed, a closed server counts nothing — so
// Submitted == Served + Shed still holds exactly after Close.
func (s *Server) SubmitFunc(q int, fn func(*engine.Outcome)) SubmitResult {
	if q < 0 || q >= s.keywords {
		panic(fmt.Sprintf("stream: query keyword %d out of range [0,%d)", q, s.keywords))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return SubmitClosed
	}
	sh := s.shards[s.eng.ShardOf(q)]
	s.mSubmitted.Inc(0)
	it := item{kind: itemQuery, q: q, rel: 1, w: 1, fn: fn}
	if s.cfg.Overload == Shed {
		select {
		case sh.ch <- it:
			return SubmitQueued
		default:
			s.mShed.Inc(sh.id)
			return SubmitShed
		}
	}
	sh.ch <- it
	return SubmitQueued
}

// SubmitText routes a free-text search through the keyword index and
// submits the matched keyword. Unrouted text (no catalog keyword
// shares a token) is counted in Stats.Unrouted and reported false; it
// never enters a queue. Like Submit, a closed server rejects without
// counting anything.
func (s *Server) SubmitText(query string) bool {
	return s.SubmitTextFunc(query, nil) == SubmitQueued
}

// SubmitTextFunc is SubmitFunc for free-text queries: the text is
// routed through the keyword index first, and SubmitUnrouted reports
// a query that matched no catalog keyword (counted in Stats.Unrouted
// unless the server is closed, in which case SubmitClosed). With
// broad match enabled (Config.Engine.Broadmatch), routing fans the
// query out instead — see submitBroad for the accounting.
func (s *Server) SubmitTextFunc(query string, fn func(*engine.Outcome)) SubmitResult {
	if s.eng.Broadmatch() != nil {
		return s.submitBroad(query, fn)
	}
	q, ok := s.eng.RouteText(query)
	if !ok {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if s.closed {
			return SubmitClosed
		}
		s.mUnrouted.Inc(0)
		return SubmitUnrouted
	}
	return s.SubmitFunc(q, fn)
}

// submitBroad is SubmitTextFunc's broad-match path: the query fans
// out to every admitted candidate market, the winner (highest
// relevance, ties to the lowest keyword id) is physically served —
// admission-controlled exactly like Submit, with its relevance and
// squashed weight riding the queue item — and the losing candidates
// are counted in Stats.Overmatched: matched, but not serving the
// impression. Every (query, admitted market) pair is one admission
// unit and an unmatched query is one Unrouted unit, so after Close
//
//	Submitted == Served + Shed + Unrouted + Overmatched
//
// exactly — the broad-match accounting identity. (Exact routing keeps
// the historical identity Submitted == Served + Shed, with Unrouted
// counted outside Submitted.)
func (s *Server) submitBroad(query string, fn func(*engine.Outcome)) SubmitResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return SubmitClosed
	}
	best, matched, ok := s.eng.RouteBroad(query)
	if !ok {
		s.mSubmitted.Inc(0)
		s.mUnrouted.Inc(0)
		return SubmitUnrouted
	}
	s.mSubmitted.Add(0, int64(matched))
	if matched > 1 {
		s.mOvermatched.Add(0, int64(matched-1))
	}
	sh := s.shards[s.eng.ShardOf(best.Keyword)]
	it := item{kind: itemQuery, q: best.Keyword, rel: best.Relevance, w: best.Weight, fn: fn}
	if s.cfg.Overload == Shed {
		select {
		case sh.ch <- it:
			return SubmitQueued
		default:
			s.mShed.Inc(sh.id)
			return SubmitShed
		}
	}
	sh.ch <- it
	return SubmitQueued
}

// AddAdvertiser admits a into the live population and returns its
// advertiser index (the highest index of the post-churn instance).
// The change is applied per shard at the next auction boundary via an
// in-band epoch fence: queries submitted before this call see the old
// population, queries submitted after it see the new one.
func (s *Server) AddAdvertiser(a workload.Advertiser) (int, error) {
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	next, err := s.applyChurn(func(cur *workload.Instance) (*workload.Instance, error) {
		return cur.WithAdvertiser(a)
	})
	if err != nil {
		return 0, fmt.Errorf("stream: AddAdvertiser: %w", err)
	}
	return next.N - 1, nil
}

// RemoveAdvertiser evicts advertiser i from the live population;
// advertisers above i shift down one index, exactly as in
// workload.Instance.WithoutAdvertiser. Applied at auction boundaries
// like AddAdvertiser.
func (s *Server) RemoveAdvertiser(i int) error {
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	if _, err := s.applyChurn(func(cur *workload.Instance) (*workload.Instance, error) {
		return cur.WithoutAdvertiser(i)
	}); err != nil {
		return fmt.Errorf("stream: RemoveAdvertiser: %w", err)
	}
	return nil
}

// applyChurn derives and publishes the post-churn instance under
// churnMu: the churn state flips under a brief exclusive hold of mu,
// then one fence is pushed into every shard queue with mu released —
// fences always use blocking sends (population changes are rare
// control traffic that must never be shed), and doing so outside mu
// keeps Shed-policy Submit wait-free even against a fence stuck
// behind a saturated queue. churnMu keeps successive epochs' fences
// in order in every queue and excludes Close's queue-closing.
func (s *Server) applyChurn(derive func(*workload.Instance) (*workload.Instance, error)) (*workload.Instance, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("server is closed")
	}
	next, err := derive(s.inst)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.inst = next
	s.epoch++
	epoch := s.epoch
	// A fresh population gets a fresh budget ledger (nil when budgets
	// are off), mirroring the fresh-market churn contract; the ledger
	// rides the fence so each shard switches population and ledger at
	// the same auction boundary.
	led := s.eng.NewLedger(next)
	s.eng.SetInstance(next, led)
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.ch <- item{kind: itemChurn, epoch: epoch, inst: next, led: led}
	}
	return next, nil
}

// ResetBudgets performs a live budget reset ("next day"): a fresh
// ledger — journaled as a reset epoch when the engine has a journal —
// replaces the current one, re-admitting exhausted advertisers while
// every market's bid state continues undisturbed. Like churn, the
// swap is applied per shard at the next auction boundary via an
// in-band fence: queries submitted before this call are charged to
// the old ledger, queries after it to the new one, per shard, in
// submission order. Returns an error when budgets are off or the
// server is closed.
func (s *Server) ResetBudgets() error {
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("stream: ResetBudgets: server is closed")
	}
	led := s.eng.NewResetLedger()
	if led == nil {
		s.mu.Unlock()
		return fmt.Errorf("stream: ResetBudgets: budgets are not enabled")
	}
	s.epoch++
	epoch := s.epoch
	s.eng.SetInstance(s.inst, led)
	s.mu.Unlock()
	// Blocking sends outside mu, exactly like churn fences: resets are
	// rare control traffic that must never be shed, and churnMu keeps
	// them ordered against churns and excludes Close's queue-closing.
	for _, sh := range s.shards {
		sh.ch <- item{kind: itemReset, epoch: epoch, led: led}
	}
	return nil
}

// Instance returns the current advertiser population (the post-churn
// instance once all pending fences are applied).
func (s *Server) Instance() *workload.Instance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inst
}

// Engine exposes the wrapped serving engine for inspection (markets,
// accounting). Safe to use only after Close, or for read paths that
// tolerate concurrent serving.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Shards returns the number of persistent worker shards.
func (s *Server) Shards() int { return len(s.shards) }

// Stats takes a live snapshot: cumulative admission and serving
// counters, the current churn epoch, and rolling-window latency and
// throughput over the most recent auctions.
func (s *Server) Stats() *Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshotLocked(time.Since(s.start))
}

// snapshotLocked assembles a Stats under at least a read-hold of s.mu.
// Counts come from the telemetry registry's lanes: integer lanes are
// read in shard order, and Revenue sums the float lanes in the same
// order the legacy per-shard accumulation used, so a drained snapshot
// is bit-for-bit what the pre-registry accounting produced.
func (s *Server) snapshotLocked(elapsed time.Duration) *Stats {
	st := &Stats{
		Unrouted:    s.mUnrouted.Value(),
		Overmatched: s.mOvermatched.Value(),
		Epoch:       s.epoch,
		Advertisers: s.inst.N,
		Elapsed:     elapsed,
		PerShard:    make([]ShardStats, len(s.shards)),
	}
	m := s.eng.Metrics()
	var done []int64
	for i, sh := range s.shards {
		shed := s.mShed.Lane(i)
		served := m.Auctions.Lane(i)
		sh.mu.Lock()
		epoch := sh.epoch
		done = sh.win.appendTo(done)
		sh.mu.Unlock()
		st.PerShard[i] = ShardStats{Served: int(served), Shed: shed, Queued: len(sh.ch), Epoch: epoch}
		st.Served += served
		st.Shed += shed
		st.Revenue += m.Revenue.Lane(i)
		st.Clicks += int(m.Clicks.Lane(i))
		st.Filled += int(m.Filled.Lane(i))
		st.TotalSlots += int(m.Slots.Lane(i))
	}
	if led := s.eng.Ledger(); led != nil {
		st.BudgetSpent, st.BudgetExhausted, st.BudgetDenied = led.Totals()
	}
	// Submitted is read after the served/shed tallies: every query those
	// counted was admission-counted first, so a live snapshot's Pending
	// (Submitted − Served − Shed) can overstate the queues by in-flight
	// admissions but never go negative.
	st.Submitted = s.mSubmitted.Value()
	st.Pending = st.Submitted - st.Served - st.Shed - st.Overmatched
	if s.eng.Broadmatch() != nil {
		// Broad match counts unrouted queries inside Submitted; exact
		// routing does not (Overmatched is always 0 there, so the
		// subtraction above is a no-op).
		st.Pending -= st.Unrouted
	}
	if elapsed > 0 {
		st.Throughput = float64(st.Served) / elapsed.Seconds()
	}
	var hs obs.HistSnapshot
	s.lat.SnapshotInto(&hs)
	if hs.Count > 0 {
		st.P50 = time.Duration(hs.Quantile(0.50))
		st.P95 = time.Duration(hs.Quantile(0.95))
		st.P99 = time.Duration(hs.Quantile(0.99))
		st.Max = time.Duration(hs.Max)
	}
	st.summarize(done, time.Now().Add(-s.cfg.WindowAge).UnixNano())
	return st
}

// Close gracefully drains the server: intake stops (concurrent and
// subsequent Submits are rejected and not counted), every queued
// query is served, pending churn fences are applied, the workers
// exit, and the final Stats is flushed and returned. Close is
// idempotent; later calls return the same final snapshot.
func (s *Server) Close() *Stats {
	s.closeOnce.Do(func() {
		s.churnMu.Lock()
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		// No submitter can hold mu now and churnMu excludes an
		// in-flight fence publication, so no further sends can race
		// the close: drain is exact.
		for _, sh := range s.shards {
			close(sh.ch)
		}
		s.churnMu.Unlock()
		if s.flushStop != nil {
			close(s.flushStop)
		}
		s.wg.Wait()
		// Workers are gone: release the markets' background resources
		// (heavyweight pattern-solver pools). Post-churn markets are
		// covered too — RebuildShard closes the markets it replaces,
		// and the engine's slice holds the current generation.
		s.eng.Close()
		s.closedAt = time.Now()
		s.mu.RLock()
		s.final = s.snapshotLocked(s.closedAt.Sub(s.start))
		s.mu.RUnlock()
	})
	return s.final
}
