package stream

import (
	"flag"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/racetest"
	"repro/internal/workload"
)

// soakDur is the length of the randomized soak (TestStreamSoak); CI's
// race-enabled soak step raises it (go test ./internal/stream -race
// -soak=5s).
var soakDur = flag.Duration("soak", 600*time.Millisecond, "duration of the randomized streaming soak")

// collectPerKeyword returns a Sink that clones every outcome into a
// per-keyword sequence. A keyword is served by exactly one shard
// goroutine, so the per-keyword slices need no locking; reading them
// is safe once Close has returned.
func collectPerKeyword(keywords int) (func(*engine.Outcome), [][]*engine.Outcome) {
	got := make([][]*engine.Outcome, keywords)
	return func(out *engine.Outcome) {
		got[out.Query] = append(got[out.Query], out.Clone())
	}, got
}

// phasedReference serves each phase's query subsequence through a
// freshly built engine over that phase's population — the literal
// "freshly built engine with the post-churn population" of the churn
// contract — and returns the expected per-keyword outcome sequences,
// concatenated across phases.
func phasedReference(t *testing.T, cfg engine.Config, phases []struct {
	inst    *workload.Instance
	queries []int
}) [][]*engine.Outcome {
	t.Helper()
	keywords := phases[0].inst.Keywords
	want := make([][]*engine.Outcome, keywords)
	for _, ph := range phases {
		fresh := engine.New(ph.inst, cfg)
		outs, st := fresh.ServeOutcomes(ph.queries)
		if st.Auctions != len(ph.queries) {
			t.Fatalf("reference engine served %d of %d", st.Auctions, len(ph.queries))
		}
		for _, o := range outs {
			want[o.Query] = append(want[o.Query], o)
		}
	}
	return want
}

func comparePerKeyword(t *testing.T, label string, got, want [][]*engine.Outcome) {
	t.Helper()
	for q := range want {
		if len(got[q]) != len(want[q]) {
			t.Fatalf("%s: kw %d served %d auctions, want %d", label, q, len(got[q]), len(want[q]))
		}
		for a := range want[q] {
			if !got[q][a].Equal(want[q][a]) {
				t.Fatalf("%s: kw %d auction %d: streamed %+v != fresh-engine %+v",
					label, q, a, got[q][a], want[q][a])
			}
		}
	}
}

// TestStreamMatchesBatchEngine: without churn, the streaming server is
// the batch engine — every keyword's outcome sequence is byte-identical
// to Engine.ServeOutcomes over the same stream. Run under -race this
// also exercises the persistent workers against concurrent Stats.
func TestStreamMatchesBatchEngine(t *testing.T) {
	for _, method := range []engine.Method{engine.MethodRH, engine.MethodRHTALU} {
		inst := workload.Generate(rand.New(rand.NewSource(31)), 70, 5, 7)
		queries := inst.Queries(rand.New(rand.NewSource(32)), 800)
		ecfg := engine.Config{Shards: 3, QueueDepth: 8, Method: method, ClickSeed: 19}
		sink, got := collectPerKeyword(inst.Keywords)
		s := NewServer(inst, Config{Engine: ecfg, Sink: sink})
		done := make(chan struct{})
		go func() { // concurrent observer: snapshots must never tear
			defer close(done)
			for i := 0; i < 50; i++ {
				s.Stats()
				time.Sleep(time.Millisecond)
			}
		}()
		for _, q := range queries {
			if !s.Submit(q) {
				t.Fatal("Block-policy Submit rejected a query on an open server")
			}
		}
		st := s.Close()
		<-done
		if st.Submitted != int64(len(queries)) || st.Served != int64(len(queries)) ||
			st.Shed != 0 || st.Pending != 0 {
			t.Fatalf("accounting: %+v", st)
		}
		want := phasedReference(t, ecfg, []struct {
			inst    *workload.Instance
			queries []int
		}{{inst, queries}})
		comparePerKeyword(t, method.String(), got, want)
	}
}

// TestStreamChurnEquivalence is the churn contract, pinned under
// -race: scripted add/remove events are applied mid-stream with
// queries still in flight (no quiescing), and every post-churn
// outcome must be byte-identical to a freshly built engine over the
// post-churn population serving the same subsequences. The in-band
// epoch fence makes the phase split exact per keyword: everything
// submitted before a churn call runs against the old population,
// everything after against the new one.
func TestStreamChurnEquivalence(t *testing.T) {
	for _, method := range []engine.Method{engine.MethodRH, engine.MethodRHTALU} {
		inst0 := workload.Generate(rand.New(rand.NewSource(33)), 50, 5, 6)
		rng := rand.New(rand.NewSource(34))
		qrng := rand.New(rand.NewSource(35))

		newcomerA := workload.RandomAdvertiser(rng, inst0.Slots, inst0.Keywords)
		newcomerB := workload.RandomAdvertiser(rng, inst0.Slots, inst0.Keywords)
		inst1, err := inst0.WithAdvertiser(newcomerA)
		if err != nil {
			t.Fatal(err)
		}
		inst2, err := inst1.WithoutAdvertiser(7)
		if err != nil {
			t.Fatal(err)
		}
		inst3, err := inst2.WithAdvertiser(newcomerB)
		if err != nil {
			t.Fatal(err)
		}

		phases := []struct {
			inst    *workload.Instance
			queries []int
		}{
			{inst0, inst0.Queries(qrng, 300)},
			{inst1, inst1.Queries(qrng, 250)},
			{inst2, inst2.Queries(qrng, 250)},
			{inst3, inst3.Queries(qrng, 200)},
		}

		for _, shards := range []int{1, 3} {
			ecfg := engine.Config{Shards: shards, QueueDepth: 4, Method: method, ClickSeed: 23}
			sink, got := collectPerKeyword(inst0.Keywords)
			s := NewServer(inst0, Config{Engine: ecfg, Sink: sink})

			for i, ph := range phases {
				for _, q := range ph.queries {
					s.Submit(q)
				}
				// Churn immediately — queries from this phase are still
				// queued; the fence must split the phases exactly anyway.
				switch i {
				case 0:
					idx, err := s.AddAdvertiser(newcomerA)
					if err != nil || idx != inst0.N {
						t.Fatalf("AddAdvertiser: idx=%d err=%v", idx, err)
					}
				case 1:
					if err := s.RemoveAdvertiser(7); err != nil {
						t.Fatal(err)
					}
				case 2:
					if _, err := s.AddAdvertiser(newcomerB); err != nil {
						t.Fatal(err)
					}
				}
			}
			st := s.Close()

			if st.Epoch != 3 {
				t.Fatalf("method=%v shards=%d: epoch %d, want 3", method, shards, st.Epoch)
			}
			for i, ps := range st.PerShard {
				if ps.Epoch != 3 {
					t.Fatalf("method=%v shard %d drained at epoch %d, want 3", method, i, ps.Epoch)
				}
			}
			if !reflect.DeepEqual(s.Instance(), inst3) {
				t.Fatalf("method=%v shards=%d: final population differs from the scripted post-churn instance", method, shards)
			}
			if st.Advertisers != inst3.N {
				t.Fatalf("Advertisers = %d, want %d", st.Advertisers, inst3.N)
			}

			want := phasedReference(t, ecfg, phases)
			comparePerKeyword(t, method.String(), got, want)
		}
	}
}

// TestStreamChurnEquivalenceHeavy extends the churn contract to the
// Section III-F serving path: the epoch fence rebuilds heavyweight
// markets (persistent HeavyDeterminer state included) exactly as a
// fresh engine would build them.
func TestStreamChurnEquivalenceHeavy(t *testing.T) {
	inst0 := workload.GenerateHeavy(rand.New(rand.NewSource(36)), 24, 4, 3, 0.3, 0.4)
	rng := rand.New(rand.NewSource(37))
	qrng := rand.New(rand.NewSource(38))
	joiner := workload.RandomAdvertiser(rng, inst0.Slots, inst0.Keywords)
	joiner.Heavy = true
	inst1, err := inst0.WithAdvertiser(joiner)
	if err != nil {
		t.Fatal(err)
	}
	phases := []struct {
		inst    *workload.Instance
		queries []int
	}{
		{inst0, inst0.Queries(qrng, 120)},
		{inst1, inst1.Queries(qrng, 120)},
	}
	ecfg := engine.Config{Shards: 2, QueueDepth: 4, Method: engine.MethodHeavy, ClickSeed: 29}
	sink, got := collectPerKeyword(inst0.Keywords)
	s := NewServer(inst0, Config{Engine: ecfg, Sink: sink})
	for _, q := range phases[0].queries {
		s.Submit(q)
	}
	if _, err := s.AddAdvertiser(joiner); err != nil {
		t.Fatal(err)
	}
	for _, q := range phases[1].queries {
		s.Submit(q)
	}
	s.Close()
	want := phasedReference(t, ecfg, phases)
	comparePerKeyword(t, "heavy", got, want)
}

// TestStreamShedAccounting: under the Shed policy every submission is
// accounted exactly once — Submitted == Served + Shed after the drain
// — the rejected submissions are the ones Submit reported false, and
// saturating a 1-deep queue from a tight loop must actually shed.
func TestStreamShedAccounting(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(39)), 300, 8, 4)
	s := NewServer(inst, Config{
		Engine:   engine.Config{Shards: 2, QueueDepth: 1, Method: engine.MethodRH, ClickSeed: 3},
		Overload: Shed,
	})
	const n = 4000
	qs := inst.Queries(rand.New(rand.NewSource(40)), n)
	rejected := 0
	for _, q := range qs {
		if !s.Submit(q) {
			rejected++
		}
	}
	st := s.Close()
	if st.Submitted != n {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, n)
	}
	if st.Served+st.Shed != st.Submitted || st.Pending != 0 {
		t.Fatalf("shed accounting leak: served %d + shed %d != submitted %d (pending %d)",
			st.Served, st.Shed, st.Submitted, st.Pending)
	}
	if int64(rejected) != st.Shed {
		t.Fatalf("Submit reported %d rejections, stats counted %d shed", rejected, st.Shed)
	}
	if st.Shed == 0 {
		t.Fatal("tight-loop submission into 1-deep queues shed nothing")
	}
	if st.Served == 0 {
		t.Fatal("no auctions served")
	}
	var perShard int64
	for _, ps := range st.PerShard {
		perShard += int64(ps.Served) + ps.Shed
	}
	if perShard != st.Submitted {
		t.Fatalf("per-shard breakdown sums to %d, want %d", perShard, st.Submitted)
	}
}

// TestStreamCloseSemantics: Close drains everything queued, later
// Closes return the same flushed snapshot, and a closed server
// rejects submissions (uncounted) and churn (error).
func TestStreamCloseSemantics(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(41)), 40, 4, 5)
	s := NewServer(inst, Config{Engine: engine.Config{Shards: 2, QueueDepth: 16, Method: engine.MethodRH, ClickSeed: 5}})
	qs := inst.Queries(rand.New(rand.NewSource(42)), 500)
	for _, q := range qs {
		s.Submit(q)
	}
	st := s.Close() // likely still queued work: drain must serve it all
	if st.Served != int64(len(qs)) || st.Pending != 0 {
		t.Fatalf("drain incomplete: served %d of %d (pending %d)", st.Served, len(qs), st.Pending)
	}
	if again := s.Close(); again != st {
		t.Fatal("second Close did not return the flushed snapshot")
	}
	if s.Submit(3) {
		t.Fatal("Submit accepted on a closed server")
	}
	if s.Stats().Submitted != st.Submitted {
		t.Fatal("post-close Submit was counted")
	}
	if s.SubmitText("zzz unroutable junk") {
		t.Fatal("SubmitText accepted on a closed server")
	}
	if s.Stats().Unrouted != st.Unrouted {
		t.Fatal("post-close SubmitText was counted in Unrouted")
	}
	if _, err := s.AddAdvertiser(workload.RandomAdvertiser(rand.New(rand.NewSource(43)), inst.Slots, inst.Keywords)); err == nil {
		t.Fatal("AddAdvertiser accepted on a closed server")
	}
	if err := s.RemoveAdvertiser(0); err == nil {
		t.Fatal("RemoveAdvertiser accepted on a closed server")
	}
}

// TestStreamTextRouting: SubmitText under a mixed routed/unrouted
// stream — unrouted text is counted in Unrouted, never queued, and
// the routed subsequence's outcomes are exactly the keyword-submitted
// ones.
func TestStreamTextRouting(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(44)), 40, 4, 3)
	names := []string{"leather boot", "running shoe", "garden hose"}
	ecfg := engine.Config{Shards: 2, Method: engine.MethodRH, ClickSeed: 7, KeywordNames: names}
	sink, got := collectPerKeyword(inst.Keywords)
	s := NewServer(inst, Config{Engine: ecfg, Sink: sink})

	junk := []string{"quantum gravity", "", "zzz"}
	rng := rand.New(rand.NewSource(45))
	var routedKw []int
	wantUnrouted := 0
	for i := 0; i < 600; i++ {
		if rng.Intn(3) == 0 {
			if s.SubmitText(junk[rng.Intn(len(junk))]) {
				t.Fatal("unrouted text reported accepted")
			}
			wantUnrouted++
		} else {
			kw := rng.Intn(len(names))
			if !s.SubmitText(names[kw]) {
				t.Fatal("routed text rejected under Block policy")
			}
			routedKw = append(routedKw, kw)
		}
	}
	st := s.Close()
	if st.Unrouted != int64(wantUnrouted) {
		t.Fatalf("Unrouted = %d, want %d", st.Unrouted, wantUnrouted)
	}
	if st.Submitted != int64(len(routedKw)) || st.Served != int64(len(routedKw)) {
		t.Fatalf("routed accounting: submitted %d served %d, want %d", st.Submitted, st.Served, len(routedKw))
	}
	want := phasedReference(t, ecfg, []struct {
		inst    *workload.Instance
		queries []int
	}{{inst, routedKw}})
	comparePerKeyword(t, "text", got, want)
}

// TestStreamSteadyStateAllocs: the streaming auction path — Submit,
// channel hand-off, ServeOne in the persistent worker, rolling-window
// bookkeeping — performs zero heap allocations per query in steady
// state, extending the engine's allocation-free guarantee to the
// open-world layer.
func TestStreamSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	inst := workload.Generate(rand.New(rand.NewSource(46)), 300, 8, 6)
	s := NewServer(inst, Config{
		Engine: engine.Config{Shards: 2, QueueDepth: 64, Method: engine.MethodRH, ClickSeed: 9},
		Window: 256,
	})
	qs := inst.Queries(rand.New(rand.NewSource(47)), 4096)
	for _, q := range qs[:2048] {
		s.Submit(q)
	}
	next := 2048
	allocs := testing.AllocsPerRun(1500, func() {
		s.Submit(qs[next%len(qs)])
		next++
	})
	st := s.Close()
	if allocs != 0 {
		t.Fatalf("steady-state streamed auction allocates %.2f objects/op, want 0", allocs)
	}
	if st.Served != st.Submitted {
		t.Fatalf("drain lost queries: %d served of %d", st.Served, st.Submitted)
	}
}

// TestStreamWindowRing: the rolling window wraps, keeping only the
// newest completion stamps, and the age cutoff excludes stale entries
// from shards that have gone cold. (Latency percentiles left the ring
// in PR 10 — they now come from the telemetry histogram, pinned by
// TestStreamHistogramPercentiles.)
func TestStreamWindowRing(t *testing.T) {
	w := newWindow(4)
	for i := 1; i <= 6; i++ {
		w.add(int64(i * 1000))
	}
	if w.count() != 4 {
		t.Fatalf("count = %d, want 4", w.count())
	}
	// Samples 3..6 survive the wrap: 4 completions spanning 3000..6000
	// ns → 3 intervals over 3µs = 1e6/s.
	var st Stats
	st.summarize(w.appendTo(nil), 0)
	if want := 1e9 / 1000.0; st.WindowThroughput != want {
		t.Fatalf("window throughput = %v, want %v", st.WindowThroughput, want)
	}
	// Age cutoff: only completions at/after 5000 remain (5000, 6000).
	var recent Stats
	recent.summarize(w.appendTo(nil), 5000)
	if want := 1e9 / 1000.0; recent.WindowThroughput != want {
		t.Fatalf("cutoff throughput = %v, want %v", recent.WindowThroughput, want)
	}
	// Fully stale input yields zeroed figures.
	var stale Stats
	stale.summarize(w.appendTo(nil), 99999)
	if stale.WindowThroughput != 0 {
		t.Fatalf("stale-only window not zeroed: %+v", stale)
	}
}

// TestStreamHistogramPercentiles: the snapshot's latency percentiles
// are quantiles of the engine's telemetry histogram — nonzero once
// auctions have been served, with Max ≥ P99 ≥ P95 ≥ P50 > 0 and Max
// exact (every recorded latency is ≤ Max).
func TestStreamHistogramPercentiles(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(57)), 200, 8, 5)
	s := NewServer(inst, Config{
		Engine: engine.Config{Shards: 2, QueueDepth: 32, Method: engine.MethodRH, ClickSeed: 3},
	})
	qs := inst.Queries(rand.New(rand.NewSource(58)), 3000)
	for _, q := range qs {
		s.Submit(q)
	}
	st := s.Close()
	if st.P50 <= 0 || st.P95 < st.P50 || st.P99 < st.P95 || st.Max < st.P99 {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v p99=%v max=%v", st.P50, st.P95, st.P99, st.Max)
	}
	if got := s.Engine().Metrics().Latency.Count(); got != int64(st.Served) {
		t.Fatalf("histogram count %d != served %d", got, st.Served)
	}
}

// TestStreamSoak is the randomized race soak CI runs with -race and a
// longer -soak: concurrent submitters (keyword and text), a churner
// alternating admissions and evictions, and a stats poller all hammer
// a Shed-policy server; the drain must still account every query and
// land every shard on the final epoch.
func TestStreamSoak(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(48)), 120, 6, 8)
	names := []string{"alpha boot", "beta shoe", "gamma hose", "delta lamp", "epsilon desk", "zeta chair", "eta stove", "theta rug"}
	s := NewServer(inst, Config{
		Engine:   engine.Config{Shards: 4, QueueDepth: 8, Method: engine.MethodRHTALU, ClickSeed: 11, KeywordNames: names},
		Overload: Shed,
		Window:   512,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var rejected atomic.Int64

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(4) == 0 {
					s.SubmitText(names[rng.Intn(len(names))])
				} else if !s.Submit(rng.Intn(inst.Keywords)) {
					rejected.Add(1)
				}
			}
		}(int64(100 + w))
	}
	wg.Add(1)
	go func() { // churner: the server is the only population authority
		defer wg.Done()
		rng := rand.New(rand.NewSource(200))
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if rng.Intn(2) == 0 {
				if _, err := s.AddAdvertiser(workload.RandomAdvertiser(rng, inst.Slots, inst.Keywords)); err != nil {
					t.Errorf("soak AddAdvertiser: %v", err)
					return
				}
			} else if n := s.Instance().N; n > 1 {
				if err := s.RemoveAdvertiser(rng.Intn(n)); err != nil {
					t.Errorf("soak RemoveAdvertiser: %v", err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // poller
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			st := s.Stats()
			if st.Pending < 0 || st.Served+st.Shed+st.Pending != st.Submitted {
				t.Errorf("live snapshot violated the accounting identity: %+v", st)
				return
			}
		}
	}()

	time.Sleep(*soakDur)
	close(stop)
	wg.Wait()
	st := s.Close()

	if st.Served+st.Shed != st.Submitted || st.Pending != 0 {
		t.Fatalf("soak accounting leak: %+v", st)
	}
	if st.Served == 0 {
		t.Fatal("soak served nothing")
	}
	for i, ps := range st.PerShard {
		if ps.Epoch != st.Epoch {
			t.Fatalf("shard %d drained at epoch %d, server at %d", i, ps.Epoch, st.Epoch)
		}
	}
	if st.Advertisers != s.Instance().N {
		t.Fatalf("Advertisers %d != instance N %d", st.Advertisers, s.Instance().N)
	}
	t.Logf("soak: submitted=%d served=%d shed=%d unrouted=%d epochs=%d advertisers=%d p99=%v",
		st.Submitted, st.Served, st.Shed, st.Unrouted, st.Epoch, st.Advertisers, st.P99)
}

// budgetedInstance draws a Section V population with attached budgets
// scaled so a meaningful fraction of advertisers exhaust their caps
// within a few thousand auctions.
func budgetedInstance(seed int64, n, k, keywords int, meanAuctions float64) *workload.Instance {
	inst := workload.Generate(rand.New(rand.NewSource(seed)), n, k, keywords)
	workload.AttachBudgets(rand.New(rand.NewSource(seed+1)), inst, meanAuctions)
	return inst
}

// TestStreamBudgetLedgerExactness: after a graceful drain the
// published ledger snapshot is exact — every worker's final flush has
// landed — and the ledger totals equal the per-market accounting sums
// bitwise, advertiser by advertiser. The snapshot totals feed the
// Stats budget counters, which must agree with the drained ledger.
func TestStreamBudgetLedgerExactness(t *testing.T) {
	inst := budgetedInstance(71, 80, 6, 7, 60)
	s := NewServer(inst, Config{
		Engine: engine.Config{Shards: 3, QueueDepth: 16, Method: engine.MethodRHTALU, ClickSeed: 9,
			Budget: budget.Config{Policy: budget.PolicyHard, RefreshEvery: 32}},
		BudgetFlush: 5 * time.Millisecond,
	})
	queries := inst.Queries(rand.New(rand.NewSource(72)), 6000)
	for _, q := range queries {
		s.Submit(q)
	}
	st := s.Close()
	if st.Served != int64(len(queries)) {
		t.Fatalf("served %d of %d", st.Served, len(queries))
	}

	led := s.Engine().Ledger()
	if led == nil {
		t.Fatal("budget-enabled server has no ledger")
	}
	var snapTotal float64
	exhausted := 0
	for i := 0; i < inst.N; i++ {
		var want float64
		for q := 0; q < inst.Keywords; q++ {
			want += s.Engine().KeywordMarket(q).Accounting().SpentTotal[i]
		}
		if got := led.ExactSpent(i); got != want {
			t.Fatalf("advertiser %d: ledger %v != Σ per-market spend %v", i, got, want)
		}
		// Drained snapshot: every lane flushed, so the published value
		// differs from exact only by float summation order.
		if snap := led.Spent(i); math.Abs(snap-led.ExactSpent(i)) > 1e-6 {
			t.Fatalf("advertiser %d: drained snapshot %v far from exact %v", i, snap, led.ExactSpent(i))
		}
		snapTotal += led.Spent(i)
		if led.Exhausted(i) {
			exhausted++
		}
	}
	if exhausted == 0 {
		t.Fatal("no advertiser exhausted its budget — the trace does not exercise enforcement")
	}
	if st.BudgetExhausted != exhausted {
		t.Fatalf("Stats.BudgetExhausted %d != ledger count %d", st.BudgetExhausted, exhausted)
	}
	if math.Abs(st.BudgetSpent-snapTotal) > 1e-6 {
		t.Fatalf("Stats.BudgetSpent %v != snapshot total %v", st.BudgetSpent, snapTotal)
	}
	if st.BudgetDenied == 0 {
		t.Fatal("no denials recorded despite exhausted advertisers")
	}
	t.Logf("drain: spent=%.1f exhausted=%d denied=%d", st.BudgetSpent, st.BudgetExhausted, st.BudgetDenied)
}

// TestStreamBudgetChurnFreshLedger: a churn rebuilds the ledger with
// the population, exactly as it rebuilds markets — the post-churn
// ledger covers the new advertiser count and starts from zero spend,
// and the drain exactness contract holds for the post-churn epoch.
func TestStreamBudgetChurnFreshLedger(t *testing.T) {
	inst := budgetedInstance(73, 30, 4, 5, 50)
	s := NewServer(inst, Config{
		Engine: engine.Config{Shards: 2, QueueDepth: 8, Method: engine.MethodRH, ClickSeed: 4,
			Budget: budget.Config{Policy: budget.PolicyHard, RefreshEvery: 8}},
	})
	for _, q := range inst.Queries(rand.New(rand.NewSource(74)), 800) {
		s.Submit(q)
	}
	oldLed := s.Engine().Ledger()
	a := workload.RandomAdvertiser(rand.New(rand.NewSource(75)), inst.Slots, inst.Keywords)
	a.Budget = 123
	idx, err := s.AddAdvertiser(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range inst.Queries(rand.New(rand.NewSource(76)), 800) {
		s.Submit(q)
	}
	s.Close()

	led := s.Engine().Ledger()
	if led == oldLed {
		t.Fatal("churn did not build a fresh ledger")
	}
	if led.N() != inst.N+1 {
		t.Fatalf("post-churn ledger covers %d advertisers, want %d", led.N(), inst.N+1)
	}
	if got := led.Budget(idx); got != 123 {
		t.Fatalf("newcomer budget %v, want 123", got)
	}
	for i := 0; i < led.N(); i++ {
		var want float64
		for q := 0; q < inst.Keywords; q++ {
			want += s.Engine().KeywordMarket(q).Accounting().SpentTotal[i]
		}
		if got := led.ExactSpent(i); got != want {
			t.Fatalf("post-churn advertiser %d: ledger %v != accounting %v", i, got, want)
		}
	}
}

// TestStreamCloseEmpty: a server closed without ever serving traffic
// must flush well-defined statistics — zero counts, zero percentiles,
// no NaN, no panic — and so must a live snapshot of an idle server.
// The rolling window is empty in both cases.
func TestStreamCloseEmpty(t *testing.T) {
	inst := workload.Generate(rand.New(rand.NewSource(77)), 20, 3, 4)
	s := NewServer(inst, Config{Engine: engine.Config{Shards: 2, ClickSeed: 1}})
	live := s.Stats()
	st := s.Close()
	for name, snap := range map[string]*Stats{"live": live, "final": st} {
		if snap.Submitted != 0 || snap.Served != 0 || snap.Shed != 0 || snap.Pending != 0 || snap.Unrouted != 0 {
			t.Fatalf("%s: idle server counted traffic: %+v", name, snap)
		}
		if snap.P50 != 0 || snap.P95 != 0 || snap.P99 != 0 || snap.Max != 0 {
			t.Fatalf("%s: empty window produced percentiles: %+v", name, snap)
		}
		for metric, v := range map[string]float64{
			"Throughput": snap.Throughput, "WindowThroughput": snap.WindowThroughput,
			"Revenue": snap.Revenue, "BudgetSpent": snap.BudgetSpent,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v != 0 {
				t.Fatalf("%s: %s = %v on an idle server, want 0", name, metric, v)
			}
		}
		if len(snap.PerShard) != s.Shards() {
			t.Fatalf("%s: %d shard entries, want %d", name, len(snap.PerShard), s.Shards())
		}
	}
	// Idempotent re-close returns the same snapshot.
	if again := s.Close(); again != st {
		t.Fatal("second Close returned a different snapshot")
	}
}

// TestStreamSoakBudget is the budget-enabled churn soak CI runs under
// -race alongside TestStreamSoak: concurrent submitters against a
// budgeted Shed-policy server with the periodic flusher ticking fast,
// a churner replacing the population (and hence the ledger) live, and
// a stats poller reading the budget counters throughout. The drain
// must preserve the admission identity and the post-churn ledger
// exactness.
func TestStreamSoakBudget(t *testing.T) {
	inst := budgetedInstance(78, 100, 6, 8, 40)
	s := NewServer(inst, Config{
		Engine: engine.Config{Shards: 4, QueueDepth: 8, Method: engine.MethodRHTALU, ClickSeed: 13,
			Budget: budget.Config{Policy: budget.PolicyPaced, RefreshEvery: 16, Horizon: 2000, Seed: 6}},
		Overload:    Shed,
		Window:      256,
		BudgetFlush: time.Millisecond,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Submit(rng.Intn(inst.Keywords))
			}
		}(int64(300 + w))
	}
	wg.Add(1)
	go func() { // churner: budgeted newcomers in, random evictions out
		defer wg.Done()
		rng := rand.New(rand.NewSource(400))
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if rng.Intn(2) == 0 {
				a := workload.RandomAdvertiser(rng, inst.Slots, inst.Keywords)
				a.Budget = workload.RandomBudget(rng, a.Target, 40)
				if _, err := s.AddAdvertiser(a); err != nil {
					t.Errorf("soak AddAdvertiser: %v", err)
					return
				}
			} else if n := s.Instance().N; n > 1 {
				if err := s.RemoveAdvertiser(rng.Intn(n)); err != nil {
					t.Errorf("soak RemoveAdvertiser: %v", err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // poller exercising the budget counters concurrently
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			st := s.Stats()
			if st.BudgetSpent < 0 || math.IsNaN(st.BudgetSpent) || st.BudgetDenied < 0 {
				t.Errorf("budget counters corrupt: %+v", st)
				return
			}
			if st.Pending < 0 || st.Served+st.Shed+st.Pending != st.Submitted {
				t.Errorf("live snapshot violated the accounting identity: %+v", st)
				return
			}
		}
	}()

	time.Sleep(*soakDur)
	close(stop)
	wg.Wait()
	st := s.Close()
	if st.Served+st.Shed != st.Submitted || st.Pending != 0 {
		t.Fatalf("soak accounting leak: %+v", st)
	}
	if st.Served == 0 {
		t.Fatal("soak served nothing")
	}
	led := s.Engine().Ledger()
	for i := 0; i < led.N(); i++ {
		var want float64
		for q := 0; q < s.Instance().Keywords; q++ {
			want += s.Engine().KeywordMarket(q).Accounting().SpentTotal[i]
		}
		if got := led.ExactSpent(i); got != want {
			t.Fatalf("post-soak advertiser %d: ledger %v != accounting %v", i, got, want)
		}
	}
	t.Logf("budget soak: served=%d shed=%d epochs=%d spent=%.1f denied=%d exhausted=%d",
		st.Served, st.Shed, st.Epoch, st.BudgetSpent, st.BudgetDenied, st.BudgetExhausted)
}
