package ta

import "repro/internal/topk"

// Runner is a reusable threshold-algorithm executor over a fixed
// object universe [0, n). It replaces TopK's per-call map with a
// generation-stamped array and reuses its scratch buffers, cutting
// the per-auction allocation cost when TA runs k times per auction
// (once per slot, Section IV-A).
type Runner struct {
	stamp []uint32
	gen   uint32

	frontier     []float64
	haveFrontier []bool
	exhausted    []bool
	vals         []float64
}

// NewRunner returns a Runner for object IDs in [0, n).
func NewRunner(n int) *Runner {
	return &Runner{stamp: make([]uint32, n)}
}

// TopK is TopK with reusable state. Semantics match the package-level
// function exactly; results for IDs outside [0, n) are undefined.
func (r *Runner) TopK(k int, sources []Source, f func(values []float64) float64) ([]topk.Item, Stats) {
	var stats Stats
	m := len(sources)
	if cap(r.vals) < m {
		r.frontier = make([]float64, m)
		r.haveFrontier = make([]bool, m)
		r.exhausted = make([]bool, m)
		r.vals = make([]float64, m)
	}
	frontier := r.frontier[:m]
	haveFrontier := r.haveFrontier[:m]
	exhausted := r.exhausted[:m]
	vals := r.vals[:m]
	for t := 0; t < m; t++ {
		haveFrontier[t] = false
		exhausted[t] = false
	}
	r.gen++
	gen := r.gen
	heap := topk.NewHeap(k)

	score := func(id int) float64 {
		for t := 0; t < m; t++ {
			vals[t] = sources[t].Lookup(id)
		}
		stats.RandomAccesses += m
		return f(vals)
	}

	for {
		progressed := false
		for t := 0; t < m; t++ {
			if exhausted[t] {
				continue
			}
			id, v, ok := sources[t].Next()
			if !ok {
				exhausted[t] = true
				continue
			}
			stats.SortedAccesses++
			progressed = true
			frontier[t] = v
			haveFrontier[t] = true
			if r.stamp[id] != gen {
				r.stamp[id] = gen
				stats.Seen++
				heap.Offer(topk.Item{ID: id, Score: score(id)})
			}
		}
		if !progressed {
			break
		}
		ready := true
		for t := 0; t < m; t++ {
			if !haveFrontier[t] && !exhausted[t] {
				ready = false
				break
			}
			vals[t] = frontier[t]
			if !haveFrontier[t] {
				vals[t] = 0
			}
		}
		if !ready {
			continue
		}
		if heap.Len() >= k && heap.Min().Score >= f(vals) {
			break
		}
	}
	return heap.Items(), stats
}
