package ta

import "repro/internal/topk"

// Runner is a reusable threshold-algorithm executor over a fixed
// object universe [0, n). It replaces TopK's per-call map with a
// generation-stamped array and reuses its scratch buffers, cutting
// the per-auction allocation cost when TA runs k times per auction
// (once per slot, Section IV-A).
type Runner struct {
	stamp []uint32
	gen   uint32

	frontier     []float64
	haveFrontier []bool
	exhausted    []bool
	vals         []float64

	heap  *topk.Heap
	heapK int
}

// NewRunner returns a Runner for object IDs in [0, n).
func NewRunner(n int) *Runner {
	return &Runner{stamp: make([]uint32, n)}
}

// TopK is TopK with reusable state. Semantics match the package-level
// function exactly; results for IDs outside [0, n) are undefined. The
// returned slice is freshly allocated; hot paths use TopKInto.
func (r *Runner) TopK(k int, sources []Source, f func(values []float64) float64) ([]topk.Item, Stats) {
	return r.TopKInto(k, sources, f, nil)
}

// TopKInto is TopK appending the result to dst — callers pass
// dst = previousResult[:0] to recycle the backing array, exactly the
// topk.SelectInto convention. The bounded heap is owned by the runner
// (re-created only when k changes between calls), so a steady-state
// call with stable k and sources performs zero heap allocations.
// Result ordering is identical to TopK: descending score, ties by
// ascending ID.
func (r *Runner) TopKInto(k int, sources []Source, f func(values []float64) float64, dst []topk.Item) ([]topk.Item, Stats) {
	var stats Stats
	m := len(sources)
	if cap(r.vals) < m {
		r.frontier = make([]float64, m)
		r.haveFrontier = make([]bool, m)
		r.exhausted = make([]bool, m)
		r.vals = make([]float64, m)
	}
	frontier := r.frontier[:m]
	haveFrontier := r.haveFrontier[:m]
	exhausted := r.exhausted[:m]
	vals := r.vals[:m]
	for t := 0; t < m; t++ {
		haveFrontier[t] = false
		exhausted[t] = false
	}
	r.gen++
	gen := r.gen
	if r.heap == nil || r.heapK != k {
		r.heap = topk.NewHeap(k)
		r.heapK = k
	}
	heap := r.heap
	heap.Reset()

	for {
		progressed := false
		for t := 0; t < m; t++ {
			if exhausted[t] {
				continue
			}
			id, v, ok := sources[t].Next()
			if !ok {
				exhausted[t] = true
				continue
			}
			stats.SortedAccesses++
			progressed = true
			frontier[t] = v
			haveFrontier[t] = true
			if r.stamp[id] != gen {
				r.stamp[id] = gen
				stats.Seen++
				// Random access on every source (inlined — a score
				// closure here would be a per-call allocation).
				for u := 0; u < m; u++ {
					vals[u] = sources[u].Lookup(id)
				}
				stats.RandomAccesses += m
				heap.Offer(topk.Item{ID: id, Score: f(vals)})
			}
		}
		if !progressed {
			break
		}
		ready := true
		for t := 0; t < m; t++ {
			if !haveFrontier[t] && !exhausted[t] {
				ready = false
				break
			}
			vals[t] = frontier[t]
			if !haveFrontier[t] {
				vals[t] = 0
			}
		}
		if !ready {
			continue
		}
		if heap.Len() >= k && heap.Min().Score >= f(vals) {
			break
		}
	}
	return heap.DrainDesc(dst), stats
}
