package ta

import (
	"math/rand"
	"testing"

	"repro/internal/racetest"
	"repro/internal/topk"
)

// resetSources rewinds every SliceSource so one fixture can feed
// repeated TA runs.
func resetSources(sources []Source) {
	for _, s := range sources {
		s.(*SliceSource).Reset()
	}
}

// TestRunnerMatchesTopK: the reusable runner must return exactly what
// the package-level TopK returns — items, order, and stats — across
// repeated calls on the same runner, including k changes.
func TestRunnerMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const n = 300
	vals := make([][]float64, n)
	for i := range vals {
		vals[i] = []float64{rng.Float64(), float64(rng.Intn(50))}
	}
	sources := buildSources(vals)
	r := NewRunner(n)
	for round, k := range []int{5, 16, 5, 1, 16} {
		resetSources(sources)
		want, wantStats := TopK(k, sources, product)
		resetSources(sources)
		got, gotStats := r.TopK(k, sources, product)
		if gotStats != wantStats {
			t.Fatalf("round %d (k=%d): runner stats %+v, TopK stats %+v", round, k, gotStats, wantStats)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d (k=%d): %d items, want %d", round, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d (k=%d) item %d: runner %+v, TopK %+v", round, k, i, got[i], want[i])
			}
		}
	}
}

// TestRunnerTopKIntoReusesDst: TopKInto must append into the passed
// slice region (the SelectInto convention) and keep reusing its
// backing array.
func TestRunnerTopKIntoReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	const n, k = 200, 8
	vals := make([][]float64, n)
	for i := range vals {
		vals[i] = []float64{rng.Float64(), rng.Float64()}
	}
	sources := buildSources(vals)
	r := NewRunner(n)
	var dst []topk.Item
	var firstBacking *topk.Item
	for round := 0; round < 5; round++ {
		resetSources(sources)
		var stats Stats
		dst, stats = r.TopKInto(k, sources, product, dst[:0])
		if len(dst) != k {
			t.Fatalf("round %d: %d items, want %d", round, len(dst), k)
		}
		if stats.Seen == 0 {
			t.Fatalf("round %d: stats not populated", round)
		}
		if round == 0 {
			firstBacking = &dst[0]
		} else if &dst[0] != firstBacking {
			t.Fatalf("round %d: backing array was reallocated", round)
		}
		resetSources(sources)
		want, _ := TopK(k, sources, product)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("round %d item %d: %+v, want %+v", round, i, dst[i], want[i])
			}
		}
	}
}

// TestRunnerSteadyStateAllocs: with stable k and reused dst, a
// TopKInto call performs zero heap allocations — the per-slot cost
// the §IV serving path pays k times per auction.
func TestRunnerSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	rng := rand.New(rand.NewSource(83))
	const n, k = 500, 16
	vals := make([][]float64, n)
	for i := range vals {
		vals[i] = []float64{rng.Float64(), float64(rng.Intn(50))}
	}
	sources := buildSources(vals)
	r := NewRunner(n)
	var dst []topk.Item
	dst, _ = r.TopKInto(k, sources, product, dst[:0]) // warm the heap + buffers
	allocs := testing.AllocsPerRun(200, func() {
		resetSources(sources)
		dst, _ = r.TopKInto(k, sources, product, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state TopKInto allocates %.2f objects/op, want 0", allocs)
	}
}
