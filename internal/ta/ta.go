// Package ta implements the threshold algorithm of Fagin, Lotem, and
// Naor ("Optimal aggregation algorithms for middleware", PODS 2001),
// which Section IV-A uses to find the top-k advertisers for a slot
// without evaluating every advertiser: sorted lists are maintained on
// each advertiser-specific parameter, the aggregation function is
// monotone, and the algorithm stops as soon as k objects are known to
// score at least the threshold computed from the list frontiers.
//
// The algorithm is instance optimal among algorithms that make no
// "wild guesses" (random accesses to objects never seen under sorted
// access).
package ta

import "repro/internal/topk"

// Source is one sorted attribute list over a common universe of
// object IDs. Sorted access must yield objects in non-increasing
// attribute order; Lookup provides random access for objects
// discovered through other sources.
type Source interface {
	// Next returns the next (id, value) pair under sorted access, or
	// ok=false when the list is exhausted.
	Next() (id int, value float64, ok bool)
	// Lookup returns the attribute value of an arbitrary object.
	Lookup(id int) float64
}

// Stats reports how much work a TopK call performed, for the
// benchmark harness and the instance-optimality tests.
type Stats struct {
	SortedAccesses int
	RandomAccesses int
	Seen           int
}

// TopK runs the threshold algorithm over the sources and returns the
// k objects with the highest aggregate score f(v₁,…,v_m), sorted by
// descending score (ties by ascending ID). f must be monotone
// non-decreasing in every argument; the values slice passed to f is
// reused across calls and must not be retained.
//
// Fewer than k results are returned only if the sources expose fewer
// than k distinct objects.
func TopK(k int, sources []Source, f func(values []float64) float64) ([]topk.Item, Stats) {
	var stats Stats
	m := len(sources)
	heap := topk.NewHeap(k)
	seen := make(map[int]bool)
	frontier := make([]float64, m)
	haveFrontier := make([]bool, m)
	exhausted := make([]bool, m)
	vals := make([]float64, m)

	score := func(id int) float64 {
		for t := 0; t < m; t++ {
			vals[t] = sources[t].Lookup(id)
		}
		// Lookups on the source that produced the object under sorted
		// access are counted as random accesses too; correcting for
		// the one free value would complicate Source for no benefit.
		stats.RandomAccesses += m
		return f(vals)
	}

	for {
		progressed := false
		for t := 0; t < m; t++ {
			if exhausted[t] {
				continue
			}
			id, v, ok := sources[t].Next()
			if !ok {
				exhausted[t] = true
				continue
			}
			stats.SortedAccesses++
			progressed = true
			frontier[t] = v
			haveFrontier[t] = true
			if !seen[id] {
				seen[id] = true
				stats.Seen++
				heap.Offer(topk.Item{ID: id, Score: score(id)})
			}
		}
		if !progressed {
			break // every list exhausted
		}
		// Threshold: best possible score of any unseen object. Sources
		// not yet read (no frontier) contribute their first value on
		// the next round, so no stop decision can be made before every
		// live source has a frontier.
		ready := true
		for t := 0; t < m; t++ {
			if !haveFrontier[t] && !exhausted[t] {
				ready = false
				break
			}
			vals[t] = frontier[t]
			if !haveFrontier[t] {
				// Source exhausted before producing anything: it holds
				// no objects, so no unseen object has any value here;
				// use 0 as the floor (scores are non-negative in our
				// setting). Callers with negative attribute ranges
				// should wrap sources so empty lists cannot occur.
				vals[t] = 0
			}
		}
		if !ready {
			continue
		}
		tau := f(vals)
		if heap.Len() >= k && heap.Min().Score >= tau {
			break
		}
	}
	return heap.Items(), stats
}

// SliceSource adapts a pre-sorted []topk.Item (descending score) plus
// a random-access function into a Source.
type SliceSource struct {
	Items  []topk.Item
	Get    func(id int) float64
	cursor int
}

// Next implements Source.
func (s *SliceSource) Next() (int, float64, bool) {
	if s.cursor >= len(s.Items) {
		return 0, 0, false
	}
	it := s.Items[s.cursor]
	s.cursor++
	return it.ID, it.Score, true
}

// Lookup implements Source.
func (s *SliceSource) Lookup(id int) float64 { return s.Get(id) }

// Reset rewinds the cursor so the source can be reused.
func (s *SliceSource) Reset() { s.cursor = 0 }
