package ta

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/topk"
)

// buildSources creates m sorted SliceSources over n objects with the
// given attribute matrix vals[obj][attr].
func buildSources(vals [][]float64) []Source {
	if len(vals) == 0 {
		return nil
	}
	m := len(vals[0])
	sources := make([]Source, m)
	for t := 0; t < m; t++ {
		items := make([]topk.Item, len(vals))
		for i := range vals {
			items[i] = topk.Item{ID: i, Score: vals[i][t]}
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].Score != items[b].Score {
				return items[a].Score > items[b].Score
			}
			return items[a].ID < items[b].ID
		})
		attr := t
		sources[t] = &SliceSource{Items: items, Get: func(id int) float64 { return vals[id][attr] }}
	}
	return sources
}

func naive(vals [][]float64, k int, f func([]float64) float64) []topk.Item {
	h := topk.NewHeap(k)
	buf := make([]float64, 0, 8)
	for i := range vals {
		buf = buf[:0]
		buf = append(buf, vals[i]...)
		h.Offer(topk.Item{ID: i, Score: f(buf)})
	}
	return h.Items()
}

func product(v []float64) float64 {
	p := 1.0
	for _, x := range v {
		p *= x
	}
	return p
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func TestTopKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(60)
		m := 1 + rng.Intn(4)
		k := 1 + rng.Intn(8)
		vals := make([][]float64, n)
		for i := range vals {
			vals[i] = make([]float64, m)
			for t := range vals[i] {
				vals[i][t] = rng.Float64() * 10
			}
		}
		f := product
		if trial%2 == 0 {
			f = sum
		}
		got, _ := TopK(k, buildSources(vals), f)
		want := naive(vals, k, f)
		if !sameScores(got, want) {
			t.Fatalf("n=%d m=%d k=%d:\n got %v\nwant %v", n, m, k, got, want)
		}
	}
}

// sameScores compares result sets by score sequence; ties may order
// IDs differently between TA's early stop and the naive scan only at
// equal scores, which both break by ascending ID among *seen* items —
// compare exactly first, fall back to score comparison.
func sameScores(a, b []topk.Item) bool {
	if reflect.DeepEqual(a, b) {
		return true
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

func TestTopKEarlyTermination(t *testing.T) {
	// One dominant object per list frontier: TA should stop long
	// before scanning all n objects.
	const n = 10000
	vals := make([][]float64, n)
	for i := range vals {
		vals[i] = []float64{float64(i), float64(i)}
	}
	_, stats := TopK(3, buildSources(vals), sum)
	if stats.SortedAccesses > 40 {
		t.Fatalf("TA did %d sorted accesses; expected early stop", stats.SortedAccesses)
	}
}

func TestTopKStopsOnExhaustion(t *testing.T) {
	vals := [][]float64{{1, 1}, {2, 2}}
	got, _ := TopK(5, buildSources(vals), sum)
	if len(got) != 2 {
		t.Fatalf("want 2 results when universe smaller than k, got %v", got)
	}
}

func TestTopKZeroScores(t *testing.T) {
	vals := [][]float64{{0, 5}, {0, 3}, {0, 1}}
	got, _ := TopK(2, buildSources(vals), product)
	for _, it := range got {
		if it.Score != 0 {
			t.Fatalf("all products are zero, got %v", got)
		}
	}
	if len(got) != 2 {
		t.Fatalf("want 2 results, got %d", len(got))
	}
}

func TestTopKSingleSource(t *testing.T) {
	vals := [][]float64{{3}, {9}, {1}, {7}}
	got, stats := TopK(2, buildSources(vals), sum)
	want := []topk.Item{{ID: 1, Score: 9}, {ID: 3, Score: 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if stats.SortedAccesses > 3 {
		t.Fatalf("single sorted list should stop after k+1 accesses, did %d", stats.SortedAccesses)
	}
}

func TestQuickPropertyTopK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		k := 1 + rng.Intn(5)
		vals := make([][]float64, n)
		for i := range vals {
			vals[i] = []float64{rng.Float64(), rng.Float64()}
		}
		got, _ := TopK(k, buildSources(vals), product)
		return sameScores(got, naive(vals, k, product))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSourceReset(t *testing.T) {
	s := &SliceSource{Items: []topk.Item{{ID: 0, Score: 1}}, Get: func(int) float64 { return 1 }}
	if _, _, ok := s.Next(); !ok {
		t.Fatal("first Next failed")
	}
	if _, _, ok := s.Next(); ok {
		t.Fatal("expected exhaustion")
	}
	s.Reset()
	if _, _, ok := s.Next(); !ok {
		t.Fatal("Reset did not rewind")
	}
}
